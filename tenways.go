// Package tenways is a laboratory for the ten ways to waste a parallel
// computer (Yelick, ISCA 2009 keynote). It pairs each canonical waste mode
// with a wasteful and a remedied implementation, models their time and —
// central to the keynote — their energy on parameterised machines from a
// 2009 laptop to a projected exascale node, and regenerates the full
// evaluation suite of tables and figures described in DESIGN.md.
//
// Three entry points cover most uses:
//
//   - Wastes and RunWaste: the catalogue of the ten modes and their
//     demonstrators on a chosen machine.
//   - NewLab: the experiment registry; Run("T1", ...) through
//     Run("F25", ...) regenerate every table and figure.
//   - Audit: run your own parallel loop under the instrumented runtime and
//     get a diagnosis of which wastes it exhibits.
//
// The chaos surface (Scenario, NewJitter, NewStraggler, NewSpike) injects
// seeded, deterministic noise and faults into simulated worlds so the
// remedies can be tested against extrinsic waste too; see examples/chaos.
//
// The tune surface (Tunables, TunableByID, DiagnoseOn) searches each
// remedy's parameter space — block sizes, message sizes, replication
// factors, checkpoint intervals, algorithm choices — for the machine at
// hand instead of trusting hard-coded constants; see examples/tune.
//
// The heavy machinery (cache and network simulators, the PGAS runtime, the
// collectives, the kernels) lives under internal/; this package re-exports
// the stable surface.
package tenways

import (
	"tenways/internal/chaos"
	"tenways/internal/collective"
	"tenways/internal/core"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pdes"
	"tenways/internal/pgas"
	"tenways/internal/report"
	"tenways/internal/sched"
	"tenways/internal/trace"
	"tenways/internal/tune"
	"tenways/internal/waste"
	"tenways/internal/workload"
)

// Machine is a parameterised machine description (cores, clock, caches,
// DRAM, interconnect, energy constants). Build your own or use a preset.
type Machine = machine.Spec

// Machines returns the built-in machine presets: laptop2009,
// petascale2009, petascale2009-proportional, and exascale.
func Machines() []*Machine { return machine.Presets() }

// MachineByName returns the named preset, or nil if unknown.
func MachineByName(name string) *Machine { return machine.Preset(name) }

// Laptop2009 returns the 2009 dual-core laptop preset.
func Laptop2009() *Machine { return machine.Laptop2009() }

// Petascale2009 returns the 2009 petascale-node preset (the default
// machine of the evaluation suite).
func Petascale2009() *Machine { return machine.Petascale2009() }

// Exascale returns the projected exascale-node preset.
func Exascale() *Machine { return machine.Exascale() }

// WasteMode is one of the ten ways: its identity, the keynote sentence it
// reifies, and a runnable wasteful/remedied demonstrator.
type WasteMode = waste.Mode

// WasteOutcome pairs the demonstrator's two variants.
type WasteOutcome = waste.Outcome

// Wastes returns the ten ways in canonical order, W1 through W10.
func Wastes() []WasteMode { return waste.Modes() }

// RunWaste runs one waste mode's demonstrator on the given machine.
func RunWaste(id string, m *Machine) (WasteOutcome, error) {
	mode, err := waste.ByID(id)
	if err != nil {
		return WasteOutcome{}, err
	}
	return mode.Run(m)
}

// Lab is the experiment registry that regenerates the evaluation suite.
type Lab = core.Lab

// Config parameterises experiment runs (machine choice, quick mode).
type Config = core.Config

// Output is an experiment's result: a table, a figure, or both.
type Output = core.Output

// PDESSyncKind selects the partitioned discrete-event engine's
// synchronisation discipline for the experiments that run it (F28–F30):
// conservative lookahead windows or optimistic Time Warp. It implements
// flag.Value, so commands can register it directly.
type PDESSyncKind = pdes.SyncKind

// The two engine synchronisation disciplines.
const (
	PDESSyncConservative = pdes.SyncConservative
	PDESSyncOptimistic   = pdes.SyncOptimistic
)

// ParsePDESSyncKind parses "conservative" or "optimistic".
func ParsePDESSyncKind(s string) (PDESSyncKind, error) { return pdes.ParseSyncKind(s) }

// Experiment is one registered table or figure generator.
type Experiment = core.Experiment

// NewLab returns the full evaluation suite: T1–T10 and F1–F27.
func NewLab() *Lab { return core.NewLab() }

// RunOptions parameterises Lab.RunAll: worker-pool width, the experiment
// subset, and an optional in-order result stream.
type RunOptions = core.RunOptions

// RunResult is one experiment's outcome under Lab.RunAll: output, error,
// wall time, and the experiment's own metrics snapshot.
type RunResult = core.RunResult

// LabReport is the machine-readable record of a suite run (wastelab -json).
type LabReport = core.LabReport

// RunRecord is one experiment's entry in a LabReport.
type RunRecord = core.RunRecord

// NewLabReport assembles the JSON report for a completed RunAll.
func NewLabReport(cfg Config, workers int, results []RunResult) *LabReport {
	return core.NewLabReport(cfg, workers, results)
}

// Renderer writes tables and figures in one output format; see
// RendererByName and Output.RenderWith.
type Renderer = report.Renderer

// RendererByName returns the renderer for "ascii", "markdown", "csv", or
// "json" (with "text" and "md" aliases).
func RendererByName(name string) (Renderer, error) { return report.RendererByName(name) }

// RenderFormats lists the selectable renderer names.
func RenderFormats() []string { return report.Formats() }

// Metrics is a registry of counters, gauges, and histograms — the
// dependency-free observability layer every subsystem records into. Thread
// one through Config.Obs to attribute a run's metrics, or leave it nil for
// the process-wide default.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// DefaultMetrics returns the process-wide default registry.
func DefaultMetrics() *Metrics { return obs.Default() }

// MetricsSnapshot is a registry's state at one instant: plain maps, safe
// to marshal, compare, and merge.
type MetricsSnapshot = obs.Snapshot

// Injector perturbs a simulated run: after a rank spends d busy seconds
// ending at virtual time now, Delay returns the extra seconds stolen from
// it. All built-in injectors are seeded and deterministic.
type Injector = chaos.Injector

// Scenario composes injectors and link faults into one perturbation plan;
// arm it on a World with Scenario.Arm. An empty scenario injects nothing
// and leaves runs bit-identical to unperturbed ones.
type Scenario = chaos.Scenario

// NewScenario returns an empty chaos scenario.
func NewScenario() *Scenario { return chaos.NewScenario() }

// JitterDist selects a jitter injector's delay distribution.
type JitterDist = chaos.Dist

// The jitter distributions.
const (
	JitterUniform     JitterDist = chaos.Uniform
	JitterExponential JitterDist = chaos.Exponential
	JitterBursty      JitterDist = chaos.Bursty
)

// NewJitter creates a seeded per-rank compute-jitter injector with expected
// injected time frac·(busy time) for worlds of up to ranks ranks.
func NewJitter(dist JitterDist, frac float64, seed uint64, ranks int) Injector {
	return chaos.NewJitter(dist, frac, seed, ranks)
}

// NewStraggler creates an injector that permanently slows one rank by the
// given factor (2 = half speed).
func NewStraggler(rank int, factor float64) Injector {
	return chaos.NewStraggler(rank, factor)
}

// NewSpike creates a one-shot injector: a single delay of duration seconds
// hits rank's first busy period completing at or after virtual time at.
func NewSpike(rank int, at, duration float64) Injector {
	return chaos.NewSpike(rank, at, duration)
}

// Pool is the measured-plane parallel runtime: a fixed-width worker pool
// with static, chunked, guided, and work-stealing loop schedulers.
type Pool = sched.Pool

// NewPool creates a pool of the given width, attributing time to rec
// (which may be nil).
func NewPool(workers int, rec *Recorder) *Pool { return sched.NewPool(workers, rec) }

// Recorder attributes measured wall-clock time to waste categories.
type Recorder = trace.Recorder

// NewRecorder creates a recorder for n workers.
func NewRecorder(workers int) *Recorder { return trace.NewRecorder(workers) }

// Breakdown is a snapshot of a Recorder.
type Breakdown = trace.Breakdown

// Category is one bucket of attributed time in a Breakdown.
type Category = trace.Category

// NoiseCategory is the category injected chaos time is charged to; query a
// Breakdown with Of/Fraction(NoiseCategory) to see what the injectors cost.
const NoiseCategory = trace.Noise

// Advice is one diagnosed waste mode with evidence and a remedy.
type Advice = core.Advice

// Diagnose maps a measured trace breakdown to the waste modes it exhibits,
// most severe first.
func Diagnose(b Breakdown) []Advice { return core.Diagnose(b) }

// DiagnoseOn is Diagnose with the remedies concretised for a machine:
// every matched waste mode that has a registered tunable gets the tuner's
// parameter choice for that machine appended to its remedy. quick shrinks
// the tuned problem models.
func DiagnoseOn(b Breakdown, m *Machine, quick bool) ([]Advice, error) {
	return core.DiagnoseOn(b, m, quick)
}

// Tunable is one registered remedy parameter: its search space, the
// previously hard-coded default, and a machine-aware model objective.
type Tunable = tune.Tunable

// TuneOptions configures a tunable search (strategy, budget, workers,
// shared cache); the zero value selects the tunable's natural strategy.
type TuneOptions = tune.Options

// TuneResult is a completed search: the chosen point, the full evaluation
// trace, and the modeled time/energy at the optimum.
type TuneResult = tune.Result

// Tunables returns the registered remedy parameters (matmul block size,
// aggregation size, allreduce algorithm, replication factor, chunk size,
// checkpoint interval). quick shrinks the modeled problems.
func Tunables(quick bool) []Tunable { return tune.Tunables(quick) }

// TunableByID returns the named tunable ("W1-block", "F25-interval", ...;
// the waste-mode id alone also matches), case-insensitively.
func TunableByID(id string, quick bool) (Tunable, error) { return tune.ByID(id, quick) }

// TuneStrategy is a pluggable parameter search (grid, golden-section,
// hill-climbing).
type TuneStrategy = tune.Strategy

// TuneGrid returns the exhaustive-sweep strategy — the oracle every
// smarter search is judged against.
func TuneGrid() TuneStrategy { return tune.Grid{} }

// TuneGolden returns the golden-section strategy for unimodal
// single-axis objectives: O(log range) evaluations.
func TuneGolden() TuneStrategy { return tune.GoldenSection{} }

// TuneCache memoizes objective evaluations across tuning runs; share one
// to make repeated tunes of the same (machine, tunable) free.
type TuneCache = tune.Cache

// NewTuneCache returns an empty evaluation cache.
func NewTuneCache() *TuneCache { return tune.NewCache() }

// StencilResult is the outcome of an integrated stencil campaign.
type StencilResult = core.StencilResult

// StencilCampaign simulates a row-block-decomposed Jacobi stencil on the
// machine with either the wasteful stack (redundant transfers, no overlap,
// global barriers) or the remedied stack. See core.StencilCampaign.
func StencilCampaign(m *Machine, ranks, gridN, steps int, wasteful bool) (StencilResult, error) {
	return core.StencilCampaign(m, ranks, gridN, steps, wasteful)
}

// World is the simulated PGAS runtime: write your own rank programs
// against a machine model and get deterministic time, energy, and a
// diagnosable breakdown. See examples/simulate.
type World = pgas.World

// Rank is the per-process view of a World.
type Rank = pgas.Rank

// Handle is an outstanding split-phase operation.
type Handle = pgas.Handle

// NewWorld creates a simulated world of the given rank count on the
// machine, with the default (topology-free LogGP + NIC serialisation) cost
// model.
func NewWorld(ranks int, m *Machine) *World {
	return pgas.NewWorld(ranks, m, nil, nil)
}

// Comm provides collective operations (barriers, broadcasts, allreduces)
// to a simulated rank.
type Comm = collective.Comm

// NewComm creates a rank's collective context; call once per rank at the
// top of the rank body.
func NewComm(r *Rank) *Comm { return collective.New(r) }

// SortResult is the outcome of a distributed-sort campaign.
type SortResult = core.SortResult

// SortCampaign simulates a distributed sample sort (real keys through the
// simulated network, global order verified) with either the wasteful or
// the remedied communication stack. See core.SortCampaign.
func SortCampaign(m *Machine, ranks, keysPerRank int, wasteful bool) (SortResult, error) {
	return core.SortCampaign(m, ranks, keysPerRank, wasteful)
}

// BFSResult is the outcome of a distributed BFS campaign.
type BFSResult = core.BFSResult

// BFSCampaign simulates a Graph500-style distributed BFS over the graph
// generator's output with either stack; distances are verified against the
// sequential reference. See core.BFSCampaign.
func BFSCampaign(m *Machine, ranks int, g *Graph, wasteful bool) (BFSResult, error) {
	return core.BFSCampaign(m, ranks, g, wasteful)
}

// Graph is an adjacency-list graph (see RMAT and UniformGraph generators).
type Graph = workload.Graph

// RMAT generates a scale-free directed graph with 2^scale vertices and
// about edgeFactor·2^scale edges (the Graph500 workload).
func RMAT(seed uint64, scale, edgeFactor int) *Graph {
	return workload.RMAT(seed, scale, edgeFactor)
}

// Audit runs fn with an instrumented pool of the given width and returns
// the time breakdown plus the diagnosis. It is the quickest way to ask
// "where is my parallel loop wasting time?".
func Audit(workers int, fn func(p *Pool)) (Breakdown, []Advice) {
	rec := trace.NewRecorder(workers)
	pool := sched.NewPool(workers, rec)
	fn(pool)
	b := rec.Breakdown()
	return b, core.Diagnose(b)
}
