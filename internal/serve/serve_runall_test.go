package serve

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func decodeRunAll(t *testing.T, body []byte) runAllResponse {
	t.Helper()
	var resp runAllResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad /v1/runall body: %v\n%s", err, body)
	}
	return resp
}

func TestRunAllSweepsSuiteThroughCache(t *testing.T) {
	lab := &stubLab{}
	_, ts := newTestServer(t, lab, Options{})

	code, _, body := get(t, ts.URL+"/v1/runall?quick=true")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	resp := decodeRunAll(t, body)
	if len(resp.Results) != 8 || resp.Failed != 0 {
		t.Fatalf("got %d results, %d failed, want 8/0:\n%s", len(resp.Results), resp.Failed, body)
	}
	for i, rec := range resp.Results {
		if rec.Cached {
			t.Errorf("first sweep: %s already cached", rec.ID)
		}
		if rec.Table == nil {
			t.Errorf("%s missing table", rec.ID)
		}
		if want := lab.Experiments()[i].ID; rec.ID != want {
			t.Errorf("result[%d] = %s, want %s (registration order)", i, rec.ID, want)
		}
	}
	if got := lab.runs.Load(); got != 8 {
		t.Fatalf("lab ran %d times, want 8", got)
	}

	// The sweep populated the same per-experiment cache /v1/run uses: a
	// second sweep (and a single run) costs zero lab evaluations.
	_, _, body = get(t, ts.URL+"/v1/runall?quick=true")
	for _, rec := range decodeRunAll(t, body).Results {
		if !rec.Cached {
			t.Errorf("second sweep: %s not served from cache", rec.ID)
		}
	}
	if code, hdr, _ := get(t, ts.URL+"/v1/run?id=E3&quick=true"); code != 200 || hdr.Get("X-Cache") != "hit" {
		t.Errorf("single run after sweep: status %d, X-Cache %q, want 200/hit", code, hdr.Get("X-Cache"))
	}
	if got := lab.runs.Load(); got != 8 {
		t.Fatalf("after cached sweeps lab ran %d times, want still 8", got)
	}
}

func TestRunAllSubsetKeepsRequestOrder(t *testing.T) {
	_, ts := newTestServer(t, &stubLab{}, Options{})
	code, _, body := get(t, ts.URL+"/v1/runall?ids=E5,e2")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	resp := decodeRunAll(t, body)
	if len(resp.Results) != 2 || resp.Results[0].ID != "E5" || resp.Results[1].ID != "E2" {
		t.Fatalf("subset results wrong:\n%s", body)
	}
}

func TestRunAllUnknownIDIs404(t *testing.T) {
	_, ts := newTestServer(t, &stubLab{}, Options{})
	if code, _, body := get(t, ts.URL+"/v1/runall?ids=E2,NOPE"); code != 404 {
		t.Fatalf("status %d, want 404: %s", code, body)
	}
}

func TestRunAllRecordsSoftFailures(t *testing.T) {
	lab := &stubLab{fail: errors.New("boom")}
	_, ts := newTestServer(t, lab, Options{})
	code, _, body := get(t, ts.URL+"/v1/runall?ids=E1,E2")
	if code != 200 {
		t.Fatalf("status %d, want 200 with soft errors: %s", code, body)
	}
	resp := decodeRunAll(t, body)
	if resp.Failed != 2 {
		t.Fatalf("Failed = %d, want 2:\n%s", resp.Failed, body)
	}
	for _, rec := range resp.Results {
		if !strings.Contains(rec.Error, "boom") {
			t.Errorf("%s error = %q, want the lab failure", rec.ID, rec.Error)
		}
	}
}

func TestRunAllTextFormat(t *testing.T) {
	_, ts := newTestServer(t, &stubLab{}, Options{})
	code, hdr, body := get(t, ts.URL+"/v1/runall?ids=E1,E4&format=ascii")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	out := string(body)
	if !strings.Contains(out, "== E1: stub E1") || !strings.Contains(out, "== E4: stub E4") {
		t.Fatalf("text output missing experiment headers:\n%s", out)
	}
}
