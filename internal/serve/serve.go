// Package serve is the lab-as-a-service layer: a long-running HTTP/JSON
// daemon (cmd/wastelabd) that exposes the experiment registry, the
// diagnosis engine, and the autotuner to other systems — the paper
// abstract's "interactions with users or other systems" made first-class.
//
// The request path composes the repo's own remedies instead of the naive
// stack it warns about:
//
//   - a sharded, LRU-bounded, generation-keyed result cache
//     (internal/cache) keyed machine+experiment+params+seed, so repeated
//     identical requests are W2 (redundant work) that never happens twice;
//   - a hand-rolled singleflight so N concurrent identical requests
//     coalesce into one lab evaluation (redundant *concurrent* work);
//   - a bounded admission queue feeding the underlying Lab: Parallel slots
//     run, QueueDepth callers wait, and everyone past that is rejected
//     early with 429 + Retry-After rather than queued without bound —
//     load shedding applied to ourselves;
//   - per-request timeouts threaded through context;
//   - per-CPU sharded obs counters on the hot path (queue depth, wait
//     time, hit ratio, coalesce count, in-flight gauge) so observability
//     itself stays off the profile (W5/W9).
//
// The same policies are modeled deterministically in virtual time by
// internal/serve/sim, which experiment T12 uses to render the daemon's
// own waste modes with the suite's T-tables.
package serve

import (
	"context"
	"time"

	"tenways/internal/cache"
	"tenways/internal/core"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/tune"
)

// Lab is the slice of core.Lab the daemon serves; *core.Lab implements it,
// and tests substitute counting stubs.
type Lab interface {
	// Experiments lists the registered experiments in registration order.
	Experiments() []core.Experiment
	// Get resolves an experiment id (case-insensitively).
	Get(id string) (core.Experiment, error)
	// RunContext executes one experiment under ctx.
	RunContext(ctx context.Context, id string, cfg core.Config) (core.Output, error)
}

// Options parameterises a Server. The zero value selects the defaults.
type Options struct {
	// Parallel bounds the lab runs executing concurrently; <= 0 selects 4.
	Parallel int
	// QueueDepth bounds the callers waiting for a slot beyond the running
	// ones; past it requests are rejected with 429. <= 0 selects 64.
	QueueDepth int
	// CacheSize bounds the result cache in entries; <= 0 selects 1024.
	CacheSize int
	// DefaultTimeout bounds a request that does not pick its own timeout;
	// <= 0 selects 2 minutes.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request ?timeout= parameter; <= 0 selects 10
	// minutes.
	MaxTimeout time.Duration
	// Machine is the default machine preset name for requests that do not
	// pick one; empty selects petascale2009.
	Machine string
	// Obs receives the daemon's own metrics (the serve.* instruments
	// rendered by /metrics); nil creates a fresh registry.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Parallel <= 0 {
		o.Parallel = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 2 * time.Minute
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.Machine == "" {
		o.Machine = "petascale2009"
	}
	if o.Obs == nil {
		o.Obs = obs.NewRegistry()
	}
	return o
}

// Server is the daemon state: the lab, the result cache, the in-flight
// coalescing table, the admission queue, and the instruments. Create one
// with New and mount Handler on an http.Server.
type Server struct {
	lab       Lab
	opts      Options
	reg       *obs.Registry
	cache     *cache.Cache[any]
	flight    *flight
	adm       *admission
	tuneCache *tune.Cache

	// Hot-path instruments, resolved once so request handling touches only
	// atomics (and the sharded ones mostly core-private lines).
	reqs, hits, misses, coalesced, rejected, timeouts, errs, notModified *obs.ShardedCounter
	queueWait, runSec                                                    *obs.Timer
}

// New returns a Server over the lab. A nil lab selects core.NewLab().
func New(lab Lab, opts Options) *Server {
	if lab == nil {
		lab = core.NewLab()
	}
	opts = opts.withDefaults()
	reg := opts.Obs
	return &Server{
		lab:         lab,
		opts:        opts,
		reg:         reg,
		cache:       cache.New[any](opts.CacheSize, 0),
		flight:      newFlight(),
		adm:         newAdmission(opts.Parallel, opts.QueueDepth),
		tuneCache:   tune.NewCache(),
		reqs:        reg.Sharded("serve.requests"),
		hits:        reg.Sharded("serve.cache_hits"),
		misses:      reg.Sharded("serve.cache_misses"),
		coalesced:   reg.Sharded("serve.coalesced"),
		rejected:    reg.Sharded("serve.rejected"),
		timeouts:    reg.Sharded("serve.timeouts"),
		errs:        reg.Sharded("serve.errors"),
		notModified: reg.Sharded("serve.not_modified"),
		queueWait:   reg.Timer("serve.queue_wait_seconds"),
		runSec:      reg.Timer("serve.run_seconds"),
	}
}

// Metrics returns the daemon's registry (the one /metrics renders).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// InvalidateCache bumps the result cache's generation, making every cached
// result a miss (O(1); stale entries are reclaimed lazily).
func (s *Server) InvalidateCache() { s.cache.Bump() }

// defaultMachine resolves the server's default machine spec.
func (s *Server) defaultMachine() *machine.Spec { return machine.Preset(s.opts.Machine) }
