package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errQueueFull is returned by acquire when the wait queue is at capacity;
// the handler maps it to 429 + Retry-After. Rejecting at the door instead
// of queueing without bound is the daemon applying the lab's own W2/W10
// advice to itself: work that cannot start soon is waste-in-waiting.
var errQueueFull = errors.New("serve: admission queue full")

// admission is the bounded two-stage gate in front of the lab: `parallel`
// slots run, up to `queueDepth` callers wait for a slot, and everyone past
// that is rejected immediately.
type admission struct {
	slots chan struct{}
	// waiting counts callers parked between the fast path and a slot; it
	// is the /metrics queue-depth gauge and the overflow test's probe.
	waiting atomic.Int64
	depth   int64
}

func newAdmission(parallel, queueDepth int) *admission {
	return &admission{slots: make(chan struct{}, parallel), depth: int64(queueDepth)}
}

// acquire obtains a run slot, waiting in the bounded queue if necessary.
// It returns the release function and the time spent waiting, errQueueFull
// when the queue is at capacity, or ctx.Err() when the caller's deadline
// expires while queued.
func (a *admission) acquire(ctx context.Context) (release func(), waited time.Duration, err error) {
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		return a.release, 0, nil
	default:
	}
	if a.waiting.Add(1) > a.depth {
		a.waiting.Add(-1)
		return nil, 0, errQueueFull
	}
	defer a.waiting.Add(-1)
	start := time.Now()
	select {
	case a.slots <- struct{}{}:
		return a.release, time.Since(start), nil
	case <-ctx.Done():
		return nil, time.Since(start), ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// queued returns the current number of waiting callers.
func (a *admission) queued() int64 { return a.waiting.Load() }

// running returns the number of occupied run slots.
func (a *admission) running() int { return len(a.slots) }
