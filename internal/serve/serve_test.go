package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tenways/internal/core"
	"tenways/internal/pdes"
	"tenways/internal/report"
)

// stubLab implements Lab with a controllable gate so tests can hold runs
// in flight, and an atomic counter so they can assert how many underlying
// evaluations actually happened.
type stubLab struct {
	runs atomic.Int64
	// gate, when non-nil, blocks RunContext until closed (or ctx expires).
	gate chan struct{}
	// fail, when non-nil, is returned by every RunContext call.
	fail error
}

func (l *stubLab) Experiments() []core.Experiment {
	out := make([]core.Experiment, 0, 8)
	for i := 1; i <= 8; i++ {
		id := "E" + strconv.Itoa(i)
		out = append(out, core.Experiment{ID: id, Title: "stub " + id})
	}
	return out
}

func (l *stubLab) Get(id string) (core.Experiment, error) {
	for _, e := range l.Experiments() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return core.Experiment{}, errors.New("unknown experiment " + id)
}

func (l *stubLab) RunContext(ctx context.Context, id string, cfg core.Config) (core.Output, error) {
	l.runs.Add(1)
	if l.fail != nil {
		return core.Output{}, l.fail
	}
	if l.gate != nil {
		select {
		case <-l.gate:
		case <-ctx.Done():
			return core.Output{}, ctx.Err()
		}
	}
	t := report.NewTable(id, "stub output", "k", "v")
	t.AddRow("seed", strconv.FormatUint(cfg.Seed, 10))
	return core.Output{Table: t}, nil
}

func newTestServer(t *testing.T, lab Lab, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(lab, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

// counterValue digs a counter out of a /metrics JSON body.
func counterValue(t *testing.T, body []byte, name string) float64 {
	t.Helper()
	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad /metrics body: %v\n%s", err, body)
	}
	if v, ok := snap.Counters[name]; ok {
		return float64(v)
	}
	return snap.Gauges[name]
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, &stubLab{}, Options{})
	code, _, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, &stubLab{}, Options{})
	code, _, body := get(t, ts.URL+"/v1/experiments")
	if code != http.StatusOK {
		t.Fatalf("experiments = %d: %s", code, body)
	}
	var exps []struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	if err := json.Unmarshal(body, &exps); err != nil {
		t.Fatalf("bad body: %v", err)
	}
	if len(exps) != 8 || exps[0].ID != "E1" || exps[7].ID != "E8" {
		t.Fatalf("unexpected catalog: %+v", exps)
	}
}

func TestRunEndpointAndCacheHit(t *testing.T) {
	lab := &stubLab{}
	_, ts := newTestServer(t, lab, Options{})

	code, hdr, body := get(t, ts.URL+"/v1/run?id=E1&seed=7")
	if code != http.StatusOK {
		t.Fatalf("run = %d: %s", code, body)
	}
	if got := hdr.Get("X-Cache"); got != "miss" {
		t.Fatalf("first run X-Cache = %q, want miss", got)
	}
	var resp struct {
		ID     string `json:"id"`
		Cached bool   `json:"cached"`
		Table  *report.Table
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad body: %v", err)
	}
	if resp.ID != "E1" || resp.Cached || resp.Table == nil {
		t.Fatalf("unexpected response: %+v", resp)
	}

	// Identical request: answered from cache, no second evaluation.
	code, hdr, body = get(t, ts.URL+"/v1/run?id=E1&seed=7")
	if code != http.StatusOK {
		t.Fatalf("cached run = %d: %s", code, body)
	}
	if got := hdr.Get("X-Cache"); got != "hit" {
		t.Fatalf("second run X-Cache = %q, want hit", got)
	}
	if n := lab.runs.Load(); n != 1 {
		t.Fatalf("lab ran %d times, want 1", n)
	}

	// Different seed: a genuinely new run.
	if code, _, _ = get(t, ts.URL+"/v1/run?id=E1&seed=8"); code != http.StatusOK {
		t.Fatalf("new-seed run = %d", code)
	}
	if n := lab.runs.Load(); n != 2 {
		t.Fatalf("lab ran %d times, want 2", n)
	}
}

func TestRunEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, &stubLab{}, Options{})
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/run", http.StatusBadRequest},
		{"/v1/run?id=nope", http.StatusNotFound},
		{"/v1/run?id=E1&machine=nope", http.StatusBadRequest},
		{"/v1/run?id=E1&seed=banana", http.StatusBadRequest},
		{"/v1/run?id=E1&quick=banana", http.StatusBadRequest},
		{"/v1/run?id=E1&timeout=banana", http.StatusBadRequest},
		{"/v1/run?id=E1&format=nope", http.StatusBadRequest},
		{"/v1/run?id=E1&sync=banana", http.StatusBadRequest},
	} {
		if code, _, body := get(t, ts.URL+tc.url); code != tc.want {
			t.Errorf("%s = %d, want %d (%s)", tc.url, code, tc.want, body)
		}
	}
}

// TestRunSyncParam: ?sync= routes through the shared pdes parser, lands in
// the experiment's core.Config, and is part of the cache identity — the
// optimistic and conservative runs of the same experiment never share an
// entry. An engine-config rejection surfaces as a 400, not a 500.
func TestRunSyncParam(t *testing.T) {
	lab := &syncEchoLab{}
	_, ts := newTestServer(t, lab, Options{})

	code, _, body := get(t, ts.URL+"/v1/run?id=E1&sync=optimistic")
	if code != http.StatusOK {
		t.Fatalf("sync=optimistic run = %d: %s", code, body)
	}
	if !bytes.Contains(body, []byte(`"optimistic"`)) {
		t.Fatalf("run config did not carry the sync kind: %s", body)
	}
	// The conservative twin must miss the optimistic run's cache entry.
	if code, hdr, _ := get(t, ts.URL+"/v1/run?id=E1"); code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("conservative run after optimistic: code=%d X-Cache=%q, want 200 miss", code, hdr.Get("X-Cache"))
	}
	if n := lab.runs.Load(); n != 2 {
		t.Fatalf("lab ran %d times, want 2 (one per sync kind)", n)
	}

	lab.fail = fmt.Errorf("%w: stub rejection", pdes.ErrConfig)
	if code, _, body := get(t, ts.URL+"/v1/run?id=E2&sync=optimistic"); code != http.StatusBadRequest {
		t.Fatalf("engine-config rejection = %d, want 400 (%s)", code, body)
	}
}

// syncEchoLab echoes cfg.PDESSync into its table so tests can see what the
// handler actually passed down.
type syncEchoLab struct{ stubLab }

func (l *syncEchoLab) RunContext(ctx context.Context, id string, cfg core.Config) (core.Output, error) {
	l.runs.Add(1)
	if l.fail != nil {
		return core.Output{}, l.fail
	}
	tbl := report.NewTable(id, "stub output", "k", "v")
	tbl.AddRow("sync", cfg.PDESSync.String())
	return core.Output{Table: tbl}, nil
}

func TestRunEndpointLabError(t *testing.T) {
	lab := &stubLab{fail: errors.New("boom")}
	_, ts := newTestServer(t, lab, Options{})
	code, _, body := get(t, ts.URL+"/v1/run?id=E1")
	if code != http.StatusInternalServerError {
		t.Fatalf("failed run = %d: %s", code, body)
	}
	if !bytes.Contains(body, []byte("boom")) {
		t.Fatalf("error body does not mention cause: %s", body)
	}
}

// TestCoalescing is the satellite's core claim: 32 concurrent identical
// requests cost exactly one lab evaluation.
func TestCoalescing(t *testing.T) {
	lab := &stubLab{gate: make(chan struct{})}
	srv, ts := newTestServer(t, lab, Options{Parallel: 2})

	const n = 32
	var wg sync.WaitGroup
	codes := make([]int, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			code, _, _ := get(t, ts.URL+"/v1/run?id=E1&seed=42")
			codes[i] = code
		}(i)
	}

	// One leader computes; the other 31 park behind it. The flight's
	// waiter count (the serve.coalesce_waiting gauge) makes the parked
	// followers observable before we open the gate.
	waitFor(t, "31 coalesced waiters", func() bool { return srv.flight.waiters() == n-1 })
	if got := lab.runs.Load(); got != 1 {
		t.Fatalf("while gated: %d lab runs in flight, want 1", got)
	}
	close(lab.gate)
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d = %d, want 200", i, code)
		}
	}
	if got := lab.runs.Load(); got != 1 {
		t.Fatalf("after coalescing: %d lab runs, want exactly 1", got)
	}

	// The coalesce counter recorded the 31 followers, and a repeat request
	// is now a cache hit.
	_, _, body := get(t, ts.URL+"/metrics")
	if got := counterValue(t, body, "serve.coalesced"); got != n-1 {
		t.Fatalf("serve.coalesced = %v, want %d", got, n-1)
	}
	code, hdr, _ := get(t, ts.URL+"/v1/run?id=E1&seed=42")
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("repeat = %d X-Cache=%q, want 200 hit", code, hdr.Get("X-Cache"))
	}
	if got := lab.runs.Load(); got != 1 {
		t.Fatalf("after cached repeat: %d lab runs, want 1", got)
	}
}

// TestAdmissionOverflow fills every run slot and every queue position with
// distinct requests, then asserts the next one is shed with 429 and a
// Retry-After hint.
func TestAdmissionOverflow(t *testing.T) {
	lab := &stubLab{gate: make(chan struct{})}
	srv, ts := newTestServer(t, lab, Options{Parallel: 1, QueueDepth: 2})

	// E1 occupies the single run slot; E2 and E3 fill the queue. Distinct
	// ids keep the requests out of each other's coalescing sets.
	var wg sync.WaitGroup
	for _, id := range []string{"E1", "E2", "E3"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			get(t, ts.URL+"/v1/run?id="+id)
		}(id)
	}
	waitFor(t, "slot busy and queue full", func() bool {
		return srv.adm.running() == 1 && srv.adm.queued() == 2
	})

	code, hdr, body := get(t, ts.URL+"/v1/run?id=E4")
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request = %d: %s", code, body)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After = %q, want integer in [1,60]", hdr.Get("Retry-After"))
	}

	close(lab.gate)
	wg.Wait()

	_, _, mbody := get(t, ts.URL+"/metrics")
	if got := counterValue(t, mbody, "serve.rejected"); got != 1 {
		t.Fatalf("serve.rejected = %v, want 1", got)
	}
	// With load drained the shed request succeeds on retry.
	if code, _, _ := get(t, ts.URL+"/v1/run?id=E4"); code != http.StatusOK {
		t.Fatalf("post-drain retry = %d, want 200", code)
	}
}

// TestMetricsDeterministic asserts consecutive idle scrapes are
// byte-identical: scrapes must not perturb the metrics they report.
func TestMetricsDeterministic(t *testing.T) {
	_, ts := newTestServer(t, &stubLab{}, Options{})
	// Put some real traffic on the instruments first.
	get(t, ts.URL+"/v1/run?id=E1")
	get(t, ts.URL+"/v1/run?id=E1")
	get(t, ts.URL+"/v1/experiments")

	_, _, a := get(t, ts.URL+"/metrics")
	_, _, b := get(t, ts.URL+"/metrics")
	if !bytes.Equal(a, b) {
		t.Fatalf("consecutive idle /metrics scrapes differ:\n%s\n---\n%s", a, b)
	}
	if !json.Valid(a) {
		t.Fatalf("/metrics is not valid JSON: %s", a)
	}
	// The text rendering works too.
	code, _, txt := get(t, ts.URL+"/metrics?format=text")
	if code != http.StatusOK || len(txt) == 0 {
		t.Fatalf("text metrics = %d (%d bytes)", code, len(txt))
	}
}

func TestRunTimeout(t *testing.T) {
	lab := &stubLab{gate: make(chan struct{})} // never opened: run hangs
	defer close(lab.gate)
	_, ts := newTestServer(t, lab, Options{})
	code, _, body := get(t, ts.URL+"/v1/run?id=E1&timeout=30ms")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out run = %d: %s", code, body)
	}
	_, _, mbody := get(t, ts.URL+"/metrics")
	if got := counterValue(t, mbody, "serve.timeouts"); got != 1 {
		t.Fatalf("serve.timeouts = %v, want 1", got)
	}
}

func TestInvalidateCache(t *testing.T) {
	lab := &stubLab{}
	srv, ts := newTestServer(t, lab, Options{})
	get(t, ts.URL+"/v1/run?id=E1")
	srv.InvalidateCache()
	_, hdr, _ := get(t, ts.URL+"/v1/run?id=E1")
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("post-invalidate X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	if n := lab.runs.Load(); n != 2 {
		t.Fatalf("lab ran %d times, want 2 after invalidation", n)
	}
}

func TestDiagnoseEndpoint(t *testing.T) {
	_, ts := newTestServer(t, &stubLab{}, Options{})
	// A breakdown dominated by sync-wait should surface at least one mode.
	req := `{"workers":[{"compute":4,"sync-wait":5,"idle":1},{"compute":6,"sync-wait":3,"idle":1}]}`
	resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatalf("POST diagnose: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose = %d: %s", resp.StatusCode, body)
	}
	var advice []struct {
		Mode     string  `json:"mode"`
		Severity float64 `json:"severity"`
	}
	if err := json.Unmarshal(body, &advice); err != nil {
		t.Fatalf("bad body: %v\n%s", err, body)
	}
	if len(advice) == 0 {
		t.Fatalf("no advice for a sync-dominated breakdown: %s", body)
	}

	// Unknown category and empty body are client errors.
	for _, bad := range []string{`{"workers":[{"nope":1}]}`, `{"workers":[]}`, `not json`} {
		resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatalf("POST diagnose: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("diagnose(%q) = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, &stubLab{}, Options{})
	resp, err := http.Post(ts.URL+"/v1/run?id=E1", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("POST run: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/run = %d, want 405", resp.StatusCode)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Parallel != 4 || o.QueueDepth != 64 || o.CacheSize != 1024 ||
		o.DefaultTimeout != 2*time.Minute || o.MaxTimeout != 10*time.Minute ||
		o.Machine != "petascale2009" || o.Obs == nil {
		t.Fatalf("unexpected defaults: %+v", o)
	}
}

func TestRealLabSatisfiesInterface(t *testing.T) {
	var _ Lab = core.NewLab()
}

// TestRunETagRevalidation covers the conditional-GET path on /v1/run: the
// first response carries a format-qualified ETag, revalidating with
// If-None-Match (including weak and list forms) gets a bodyless 304, a
// different format never matches the JSON tag, and a stale tag gets the
// full body again.
func TestRunETagRevalidation(t *testing.T) {
	_, ts := newTestServer(t, &stubLab{}, Options{})
	url := ts.URL + "/v1/run?id=E1"

	code, hdr, body := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("first GET: status %d: %s", code, body)
	}
	etag := hdr.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `-json"`) {
		t.Fatalf("ETag = %q, want a quoted json-suffixed tag", etag)
	}

	revalidate := func(t *testing.T, url, inm string) (int, http.Header, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", inm)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, b
	}

	for _, inm := range []string{etag, "W/" + etag, `"zzz", ` + etag, "*"} {
		code, hdr, body := revalidate(t, url, inm)
		if code != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, code)
		}
		if len(body) != 0 {
			t.Fatalf("If-None-Match %q: 304 carried a %d-byte body", inm, len(body))
		}
		if hdr.Get("ETag") != etag {
			t.Fatalf("304 ETag = %q, want %q", hdr.Get("ETag"), etag)
		}
	}

	// The JSON tag must not validate the text rendering: same cached entry,
	// different representation.
	code, hdr, body = revalidate(t, url+"&format=text", etag)
	if code != http.StatusOK {
		t.Fatalf("format=text with json tag: status %d, want 200", code)
	}
	if len(body) == 0 {
		t.Fatal("format=text with json tag: empty body")
	}
	textTag := hdr.Get("ETag")
	if textTag == etag || !strings.HasSuffix(textTag, `-text"`) {
		t.Fatalf("text ETag = %q, want a distinct -text tag (json was %q)", textTag, etag)
	}

	// A stale tag re-serves the body.
	code, _, body = revalidate(t, url, `"deadbeef-json"`)
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("stale tag: status %d, body %d bytes, want full 200", code, len(body))
	}

	_, _, metrics := get(t, ts.URL+"/metrics")
	if n := counterValue(t, metrics, "serve.not_modified"); n != 4 {
		t.Fatalf("serve.not_modified = %v, want 4 (one per matching revalidation)", n)
	}
}
