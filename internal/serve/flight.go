package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// call is one in-flight computation: followers block on done and read the
// leader's result.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// flight coalesces concurrent identical requests: the first caller for a
// key becomes the leader and computes; every caller that arrives while the
// leader is in flight waits for the leader's result instead of repeating
// the work (hand-rolled singleflight, stdlib only). N concurrent identical
// runs therefore cost one lab evaluation — the concurrent twin of the
// result cache's W2 remedy.
type flight struct {
	mu    sync.Mutex
	calls map[string]*call
	// waiting counts followers currently parked behind a leader; /metrics
	// exposes it as the serve.coalesce_waiting gauge.
	waiting atomic.Int64
}

func newFlight() *flight { return &flight{calls: make(map[string]*call)} }

// do runs fn under the key, coalescing with an in-flight leader if one
// exists. It returns fn's result, and coalesced=true when this caller
// followed a leader rather than computing. A follower whose ctx expires
// stops waiting and returns ctx.Err(); the leader (whose own ctx governs
// fn) keeps running for the remaining followers.
func (f *flight) do(ctx context.Context, key string, fn func() (any, error)) (val any, coalesced bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		f.waiting.Add(1)
		defer f.waiting.Add(-1)
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// inflight returns the number of distinct keys currently being computed.
func (f *flight) inflight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// waiters returns the number of followers currently parked behind leaders.
func (f *flight) waiters() int64 { return f.waiting.Load() }
