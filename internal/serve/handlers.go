package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"tenways/internal/core"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pdes"
	"tenways/internal/report"
	"tenways/internal/trace"
	"tenways/internal/tune"
)

// Handler returns the daemon's routing table:
//
//	GET  /healthz          liveness probe
//	GET  /metrics          the daemon's obs.Snapshot (json; ?format=text)
//	GET  /v1/experiments   the experiment catalog
//	GET  /v1/run           run one experiment (?id, ?machine, ?seed, ?quick,
//	                       ?sync, ?format, ?timeout) through cache + coalescing +
//	                       admission; sets a per-format ETag and answers
//	                       If-None-Match revalidations with a bodyless 304
//	GET  /v1/runall        run many experiments (?ids=F1,F2,... or the whole
//	                       suite) through the same per-experiment path
//	POST /v1/diagnose      map a trace breakdown to waste modes
//	GET  /v1/tune          tune one remedy parameter (?id, ?machine, ?quick)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/runall", s.handleRunAll)
	mux.HandleFunc("POST /v1/diagnose", s.handleDiagnose)
	mux.HandleFunc("GET /v1/tune", s.handleTune)
	return mux
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(blob, '\n'))
}

func (s *Server) writeErr(w http.ResponseWriter, status int, msg string) {
	if status >= http.StatusInternalServerError {
		s.errs.Inc()
	}
	writeJSON(w, status, apiError{Error: msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleMetrics renders the daemon registry. Scrapes do not count
// themselves into serve.requests, so an idle daemon's /metrics is
// byte-stable across consecutive scrapes.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	s.reg.Gauge("serve.queue_depth").Set(float64(s.adm.queued()))
	s.reg.Gauge("serve.inflight").Set(float64(s.adm.running()))
	s.reg.Gauge("serve.coalesce_waiting").Set(float64(s.flight.waiters()))
	s.reg.Gauge("serve.cache_entries").Set(float64(st.Len))
	s.reg.Gauge("serve.cache_evictions").Set(float64(st.Evictions))
	s.reg.Gauge("serve.cache_hit_ratio").Set(st.HitRatio())
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, snap.String())
		io.WriteString(w, "\n")
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// experimentInfo is one /v1/experiments entry.
type experimentInfo struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Measured bool   `json:"measured,omitempty"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	s.reqs.Inc()
	exps := s.lab.Experiments()
	out := make([]experimentInfo, 0, len(exps))
	for _, e := range exps {
		out = append(out, experimentInfo{ID: e.ID, Title: e.Title, Measured: e.Measured})
	}
	writeJSON(w, http.StatusOK, out)
}

// runEntry is the cached unit of work for /v1/run: the experiment output
// plus the run's own metrics snapshot and wall time.
type runEntry struct {
	Output  core.Output
	Metrics obs.Snapshot
	WallMS  float64
	// Hash fingerprints Output+Metrics once at creation; handleRun derives
	// the ETag from it, so revalidation never re-serialises the entry.
	Hash string
}

// hashEntry fingerprints the stable content of a run entry. WallMS and the
// transport fields (Cached, Coalesced) are deliberately excluded: serving
// the same cached entity again must yield the same validator even though
// those bookkeeping fields differ per response.
func hashEntry(e *runEntry) string {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	enc.Encode(e.Output)
	enc.Encode(e.Metrics)
	return strconv.FormatUint(h.Sum64(), 16)
}

// etagFor is the strong validator for one entry rendered in one format.
// The format is part of the tag because the same cached entry serves every
// rendering, and a client that revalidates its text copy must not get a
// 304 for the JSON body it never saw.
func etagFor(ent *runEntry, format string) string {
	if format == "" {
		format = "json"
	}
	return `"` + ent.Hash + "-" + format + `"`
}

// ifNoneMatchHas reports whether an If-None-Match header names the tag.
// Weak-comparison per RFC 9110 §8.8.3.2: a W/ prefix on the client's copy
// still matches, and "*" matches any current representation.
func ifNoneMatchHas(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimPrefix(strings.TrimSpace(part), "W/")
		if part != "" && (part == "*" || part == etag) {
			return true
		}
	}
	return false
}

// runResponse is the /v1/run JSON body.
type runResponse struct {
	ID        string         `json:"id"`
	Title     string         `json:"title"`
	Machine   string         `json:"machine"`
	Seed      uint64         `json:"seed,omitempty"`
	Quick     bool           `json:"quick,omitempty"`
	Cached    bool           `json:"cached"`
	Coalesced bool           `json:"coalesced,omitempty"`
	WallMS    float64        `json:"wall_ms"`
	Table     *report.Table  `json:"table,omitempty"`
	Figure    *report.Figure `json:"figure,omitempty"`
	Metrics   obs.Snapshot   `json:"metrics"`
}

// reqParams are the run-shaped query parameters shared by /v1/run and
// /v1/tune.
type reqParams struct {
	spec    *machine.Spec
	seed    uint64
	quick   bool
	sync    pdes.SyncKind
	timeout time.Duration
}

// params parses machine/seed/quick/sync/timeout, writing the 400 itself on
// malformed input.
func (s *Server) params(w http.ResponseWriter, r *http.Request) (reqParams, bool) {
	q := r.URL.Query()
	p := reqParams{timeout: s.opts.DefaultTimeout}
	name := q.Get("machine")
	if name == "" {
		name = s.opts.Machine
	}
	if p.spec = machine.Preset(name); p.spec == nil {
		s.writeErr(w, http.StatusBadRequest, "unknown machine "+strconv.Quote(name))
		return p, false
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, "bad seed "+strconv.Quote(v))
			return p, false
		}
		p.seed = seed
	}
	if v := q.Get("quick"); v != "" {
		quick, err := strconv.ParseBool(v)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, "bad quick "+strconv.Quote(v))
			return p, false
		}
		p.quick = quick
	}
	if v := q.Get("sync"); v != "" {
		sync, err := pdes.ParseSyncKind(v)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, err.Error())
			return p, false
		}
		p.sync = sync
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			s.writeErr(w, http.StatusBadRequest, "bad timeout "+strconv.Quote(v))
			return p, false
		}
		if d > s.opts.MaxTimeout {
			d = s.opts.MaxTimeout
		}
		p.timeout = d
	}
	return p, true
}

// runKey builds the result-cache / coalescing key for a run request. The
// format parameter is deliberately absent: rendering is cheap, so one
// cached result serves every format.
func runKey(m string, id string, seed uint64, quick bool, sync pdes.SyncKind) string {
	return "run|" + m + "|" + id + "|" + strconv.FormatUint(seed, 10) + "|" + strconv.FormatBool(quick) + "|" + sync.String()
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	id := r.URL.Query().Get("id")
	if id == "" {
		s.writeErr(w, http.StatusBadRequest, "missing id parameter")
		return
	}
	e, err := s.lab.Get(id)
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	p, ok := s.params(w, r)
	if !ok {
		return
	}
	format := r.URL.Query().Get("format")
	var renderer report.Renderer
	if format != "" && format != "json" {
		if renderer, err = report.RendererByName(format); err != nil {
			s.writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), p.timeout)
	defer cancel()
	key := runKey(p.spec.Name, e.ID, p.seed, p.quick, p.sync)
	cfg := core.Config{Machine: p.spec, Quick: p.quick, Seed: p.seed, PDESSync: p.sync}
	ent, cached, coalesced, err := s.runShared(ctx, key, e.ID, cfg)
	if err != nil {
		s.writeRunErr(w, err)
		return
	}
	w.Header().Set("X-Cache", cacheHeader(cached))
	etag := etagFor(ent, format)
	w.Header().Set("ETag", etag)
	if ifNoneMatchHas(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	resp := runResponse{
		ID:        e.ID,
		Title:     e.Title,
		Machine:   p.spec.Name,
		Seed:      p.seed,
		Quick:     p.quick,
		Cached:    cached,
		Coalesced: coalesced,
		WallMS:    ent.WallMS,
		Table:     ent.Output.Table,
		Figure:    ent.Output.Figure,
		Metrics:   ent.Metrics,
	}
	if renderer != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := ent.Output.RenderWith(w, renderer); err != nil {
			s.errs.Inc()
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// runAllRecord is one experiment's entry in a /v1/runall response.
type runAllRecord struct {
	ID        string         `json:"id"`
	Title     string         `json:"title"`
	Cached    bool           `json:"cached"`
	Coalesced bool           `json:"coalesced,omitempty"`
	WallMS    float64        `json:"wall_ms"`
	Error     string         `json:"error,omitempty"`
	Table     *report.Table  `json:"table,omitempty"`
	Figure    *report.Figure `json:"figure,omitempty"`
}

// runAllResponse is the /v1/runall JSON body.
type runAllResponse struct {
	Machine string         `json:"machine"`
	Seed    uint64         `json:"seed,omitempty"`
	Quick   bool           `json:"quick,omitempty"`
	Failed  int            `json:"failed"`
	Results []runAllRecord `json:"results"`
}

// handleRunAll runs a set of experiments (?ids=F1,F2,... — default the whole
// suite) through exactly the per-experiment path /v1/run uses: each id gets
// its own cache key, coalescing flight, and admission slot, so a runall
// neither bypasses the result cache nor holds more than one slot at a time.
// Per-experiment failures are recorded softly in the response; only a spent
// request deadline stops the sweep, with the unreached experiments reported
// as such.
func (s *Server) handleRunAll(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	p, ok := s.params(w, r)
	if !ok {
		return
	}
	var exps []core.Experiment
	if v := r.URL.Query().Get("ids"); v != "" {
		for _, id := range strings.Split(v, ",") {
			e, err := s.lab.Get(strings.TrimSpace(id))
			if err != nil {
				s.writeErr(w, http.StatusNotFound, err.Error())
				return
			}
			exps = append(exps, e)
		}
	} else {
		exps = s.lab.Experiments()
	}
	format := r.URL.Query().Get("format")
	var renderer report.Renderer
	if format != "" && format != "json" {
		var err error
		if renderer, err = report.RendererByName(format); err != nil {
			s.writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), p.timeout)
	defer cancel()
	resp := runAllResponse{Machine: p.spec.Name, Seed: p.seed, Quick: p.quick,
		Results: make([]runAllRecord, 0, len(exps))}
	cfg := core.Config{Machine: p.spec, Quick: p.quick, Seed: p.seed, PDESSync: p.sync}
	for i, e := range exps {
		rec := runAllRecord{ID: e.ID, Title: e.Title}
		if err := ctx.Err(); err != nil {
			// Deadline spent: report this and every remaining experiment as
			// unreached rather than serving a silently truncated sweep.
			for _, rest := range exps[i:] {
				resp.Results = append(resp.Results, runAllRecord{
					ID: rest.ID, Title: rest.Title, Error: "not run: " + err.Error()})
				resp.Failed++
			}
			break
		}
		key := runKey(p.spec.Name, e.ID, p.seed, p.quick, p.sync)
		ent, cached, coalesced, err := s.runShared(ctx, key, e.ID, cfg)
		if err != nil {
			rec.Error = err.Error()
			resp.Failed++
		} else {
			rec.Cached = cached
			rec.Coalesced = coalesced
			rec.WallMS = ent.WallMS
			rec.Table = ent.Output.Table
			rec.Figure = ent.Output.Figure
		}
		resp.Results = append(resp.Results, rec)
	}

	if renderer != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, rec := range resp.Results {
			fmt.Fprintf(w, "== %s: %s\n", rec.ID, rec.Title)
			if rec.Error != "" {
				fmt.Fprintf(w, "error: %s\n\n", rec.Error)
				continue
			}
			out := core.Output{Table: rec.Table, Figure: rec.Figure}
			if err := out.RenderWith(w, renderer); err != nil {
				s.errs.Inc()
				return
			}
			fmt.Fprintln(w)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// runShared is the shared request path: result cache, then singleflight
// coalescing, then the bounded admission queue, then the lab itself.
func (s *Server) runShared(ctx context.Context, key, id string, cfg core.Config) (ent *runEntry, cached, coalesced bool, err error) {
	if v, ok := s.cache.Get(key); ok {
		s.hits.Inc()
		return v.(*runEntry), true, false, nil
	}
	s.misses.Inc()
	v, coalesced, err := s.flight.do(ctx, key, func() (any, error) {
		release, waited, err := s.adm.acquire(ctx)
		s.queueWait.Observe(waited.Seconds())
		if err != nil {
			return nil, err
		}
		defer release()
		reg := obs.NewRegistry()
		cfg.Obs = reg
		stop := s.runSec.Start()
		out, err := s.lab.RunContext(ctx, id, cfg)
		wall := stop()
		if err != nil {
			return nil, err
		}
		e := &runEntry{Output: out, Metrics: reg.Snapshot(), WallMS: float64(wall) / float64(time.Millisecond)}
		e.Hash = hashEntry(e)
		s.cache.Put(key, e)
		return e, nil
	})
	if coalesced {
		s.coalesced.Inc()
	}
	if err != nil {
		return nil, false, coalesced, err
	}
	return v.(*runEntry), false, coalesced, nil
}

// writeRunErr maps request-path errors to status codes: queue overflow to
// 429 + Retry-After, deadline to 504, client cancellation to 499-ish 503,
// engine configuration rejections (pdes.ErrConfig) to 400.
func (s *Server) writeRunErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, pdes.ErrConfig):
		s.writeErr(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, errQueueFull):
		s.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "admission queue full; retry later"})
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "request deadline exceeded"})
	case errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "request cancelled"})
	default:
		s.writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

// retryAfterSeconds estimates when a rejected caller should retry: the
// mean observed run time, scaled by the queue the caller would sit behind,
// clamped to [1s, 60s]. With no completed runs yet it answers 1.
func (s *Server) retryAfterSeconds() int {
	h := s.reg.Histogram("serve.run_seconds")
	n := h.Count()
	if n == 0 {
		return 1
	}
	mean := h.Sum() / float64(n)
	backlog := float64(s.adm.queued())/float64(s.opts.Parallel) + 1
	sec := int(math.Ceil(mean * backlog))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// diagnoseRequest is the /v1/diagnose POST body: per-worker seconds by
// trace category name (compute, sync-wait, comm-wait, steal, serial, idle,
// noise). A single entry diagnoses aggregate fractions only; several
// entries also expose load imbalance.
type diagnoseRequest struct {
	Workers []map[string]float64 `json:"workers"`
	// Tuned concretises matched remedies with the autotuner's parameter
	// choice for the requested machine (slower: it runs the tuner).
	Tuned bool `json:"tuned,omitempty"`
	// Quick shrinks the tuned problem models.
	Quick bool `json:"quick,omitempty"`
	// Machine names the preset Tuned tunes for; empty selects the server
	// default.
	Machine string `json:"machine,omitempty"`
}

// adviceResponse is one diagnosed waste mode, JSON-shaped.
type adviceResponse struct {
	ModeID   string  `json:"mode"`
	Name     string  `json:"name"`
	Severity float64 `json:"severity"`
	Evidence string  `json:"evidence"`
	Remedy   string  `json:"remedy"`
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	var req diagnoseRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, "bad body: "+err.Error())
		return
	}
	if len(req.Workers) == 0 {
		s.writeErr(w, http.StatusBadRequest, "need at least one workers entry")
		return
	}
	byName := make(map[string]trace.Category, len(trace.Categories()))
	for _, c := range trace.Categories() {
		byName[c.String()] = c
	}
	var b trace.Breakdown
	b.PerWorker = make([]trace.WorkerTimes, len(req.Workers))
	for i, wm := range req.Workers {
		names := make([]string, 0, len(wm))
		for name := range wm {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c, ok := byName[name]
			if !ok {
				s.writeErr(w, http.StatusBadRequest,
					"unknown category "+strconv.Quote(name)+" (known: "+categoryNames()+")")
				return
			}
			d := time.Duration(wm[name] * float64(time.Second))
			b.PerWorker[i].ByCategory[c] += d
			b.Total[c] += d
		}
	}
	var (
		advice []core.Advice
		err    error
	)
	if req.Tuned {
		name := req.Machine
		if name == "" {
			name = s.opts.Machine
		}
		spec := machine.Preset(name)
		if spec == nil {
			s.writeErr(w, http.StatusBadRequest, "unknown machine "+strconv.Quote(name))
			return
		}
		// Tuning is real work: go through admission like a run.
		release, waited, aerr := s.adm.acquire(r.Context())
		s.queueWait.Observe(waited.Seconds())
		if aerr != nil {
			s.writeRunErr(w, aerr)
			return
		}
		advice, err = core.DiagnoseOn(b, spec, req.Quick)
		release()
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
	} else {
		advice = core.Diagnose(b)
	}
	out := make([]adviceResponse, 0, len(advice))
	for _, a := range advice {
		out = append(out, adviceResponse(a))
	}
	writeJSON(w, http.StatusOK, out)
}

func categoryNames() string {
	cats := trace.Categories()
	names := make([]string, 0, len(cats))
	for _, c := range cats {
		names = append(names, c.String())
	}
	return strings.Join(names, ", ")
}

// tuneResponse is the /v1/tune JSON body.
type tuneResponse struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	Machine     string  `json:"machine"`
	Quick       bool    `json:"quick,omitempty"`
	Cached      bool    `json:"cached"`
	Strategy    string  `json:"strategy"`
	Default     string  `json:"default"`
	DefaultCost float64 `json:"default_cost_s"`
	Tuned       string  `json:"tuned"`
	TunedCost   float64 `json:"tuned_cost_s"`
	Evaluations int     `json:"evaluations"`
	CacheHits   int     `json:"cache_hits"`
	SavingPct   float64 `json:"saving_pct"`
	WallMS      float64 `json:"wall_ms"`
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	id := r.URL.Query().Get("id")
	if id == "" {
		s.writeErr(w, http.StatusBadRequest, "missing id parameter")
		return
	}
	p, ok := s.params(w, r)
	if !ok {
		return
	}
	tn, err := tune.ByID(id, p.quick)
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.timeout)
	defer cancel()
	key := "tune|" + p.spec.Name + "|" + tn.ID + "|" + strconv.FormatBool(p.quick)
	ent, cached, coalesced, err := s.tuneShared(ctx, key, tn, p)
	if err != nil {
		s.writeRunErr(w, err)
		return
	}
	w.Header().Set("X-Cache", cacheHeader(cached))
	resp := *ent
	resp.Cached = cached
	_ = coalesced
	writeJSON(w, http.StatusOK, resp)
}

// tuneShared runs one tunable search through the same cache + coalescing +
// admission path as /v1/run.
func (s *Server) tuneShared(ctx context.Context, key string, tn tune.Tunable, p reqParams) (ent *tuneResponse, cached, coalesced bool, err error) {
	if v, ok := s.cache.Get(key); ok {
		s.hits.Inc()
		return v.(*tuneResponse), true, false, nil
	}
	s.misses.Inc()
	v, coalesced, err := s.flight.do(ctx, key, func() (any, error) {
		release, waited, err := s.adm.acquire(ctx)
		s.queueWait.Observe(waited.Seconds())
		if err != nil {
			return nil, err
		}
		defer release()
		stop := s.runSec.Start()
		res, err := tn.Tune(p.spec, tune.Options{Cache: s.tuneCache, Obs: s.reg})
		if err != nil {
			stop()
			return nil, err
		}
		def, err := tn.Objective(p.spec)(tn.Default)
		wall := stop()
		if err != nil {
			return nil, err
		}
		saving := 0.0
		if def.Seconds > 0 {
			saving = 100 * (1 - res.Best.Cost.Seconds/def.Seconds)
		}
		e := &tuneResponse{
			ID:          tn.ID,
			Title:       tn.Title,
			Machine:     p.spec.Name,
			Quick:       p.quick,
			Strategy:    res.Strategy,
			Default:     tn.DefaultLabel(),
			DefaultCost: def.Seconds,
			Tuned:       res.Describe(),
			TunedCost:   res.Best.Cost.Seconds,
			Evaluations: res.Evaluations,
			CacheHits:   res.CacheHits,
			SavingPct:   saving,
			WallMS:      float64(wall) / float64(time.Millisecond),
		}
		s.cache.Put(key, e)
		return e, nil
	})
	if coalesced {
		s.coalesced.Inc()
	}
	if err != nil {
		return nil, false, coalesced, err
	}
	return v.(*tuneResponse), false, coalesced, nil
}
