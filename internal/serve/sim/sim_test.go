package sim

import (
	"reflect"
	"strconv"
	"testing"
)

func catalog(n int) []Job {
	jobs := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		// Zipf-ish popularity: job 0 is requested most; heavier jobs rarer.
		jobs = append(jobs, Job{
			Key:     "job-" + strconv.Itoa(i),
			Service: 0.2 + 0.05*float64(i),
			Weight:  1 / float64(i+1),
		})
	}
	return jobs
}

func baseConfig() Config {
	return Config{
		Seed:       2009,
		Clients:    32,
		Requests:   2000,
		Workers:    4,
		QueueDepth: 8,
		CacheSize:  64,
		Coalesce:   true,
		Catalog:    catalog(24),
		ThinkMean:  0.05,
		BurstFrac:  0.5,
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(baseConfig())
	b := Simulate(baseConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different stats:\n%+v\n%+v", a, b)
	}
	if a.Issued == 0 || a.Served == 0 || a.Runs == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
}

func TestSimulateSeedMatters(t *testing.T) {
	a := Simulate(baseConfig())
	cfg := baseConfig()
	cfg.Seed = 7
	b := Simulate(cfg)
	if reflect.DeepEqual(a, b) {
		t.Fatalf("different seeds produced identical stats: %+v", a)
	}
}

func TestConservation(t *testing.T) {
	s := Simulate(baseConfig())
	// Every issued request is eventually served, rejected, or (at shutdown)
	// still parked as a coalesced waiter behind a flight that finished after
	// the budget ran out — those are answered by complete(), so:
	if s.Served+s.Rejected > s.Issued {
		t.Fatalf("served %d + rejected %d exceeds issued %d", s.Served, s.Rejected, s.Issued)
	}
	if s.CacheHits+s.Coalesced+s.Runs > s.Issued {
		t.Fatalf("hits %d + coalesced %d + runs %d exceeds issued %d",
			s.CacheHits, s.Coalesced, s.Runs, s.Issued)
	}
	if s.Makespan <= 0 || s.BusySum <= 0 {
		t.Fatalf("degenerate times: %+v", s)
	}
	if f := s.IdleFraction(4); f < 0 || f >= 1 {
		t.Fatalf("idle fraction %v out of range", f)
	}
}

func TestCacheReducesRuns(t *testing.T) {
	with := Simulate(baseConfig())
	cfg := baseConfig()
	cfg.CacheSize = 0
	without := Simulate(cfg)
	if with.CacheHits == 0 {
		t.Fatalf("cache enabled but no hits: %+v", with)
	}
	if without.CacheHits != 0 {
		t.Fatalf("cache disabled but hits recorded: %+v", without)
	}
	if with.Runs >= without.Runs {
		t.Fatalf("cache did not reduce runs: with=%d without=%d", with.Runs, without.Runs)
	}
}

func TestCoalesceReducesRuns(t *testing.T) {
	// No cache isolates coalescing's contribution; a tiny catalog makes
	// concurrent identical requests common.
	cfg := baseConfig()
	cfg.CacheSize = 0
	cfg.Catalog = catalog(3)
	with := Simulate(cfg)
	cfg.Coalesce = false
	without := Simulate(cfg)
	if with.Coalesced == 0 {
		t.Fatalf("coalescing enabled but never used: %+v", with)
	}
	if with.Runs >= without.Runs {
		t.Fatalf("coalescing did not reduce runs: with=%d without=%d", with.Runs, without.Runs)
	}
}

func TestSmallQueueRejects(t *testing.T) {
	cfg := baseConfig()
	cfg.CacheSize = 0
	cfg.Coalesce = false
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s := Simulate(cfg)
	if s.Rejected == 0 {
		t.Fatalf("overloaded single worker never rejected: %+v", s)
	}
}

func TestMoreWorkersLessIdlePerRequest(t *testing.T) {
	cfg := baseConfig()
	cfg.CacheSize = 0
	cfg.Coalesce = false
	one := Simulate(Config{Seed: cfg.Seed, Clients: cfg.Clients, Requests: cfg.Requests,
		Workers: 1, QueueDepth: 64, Catalog: cfg.Catalog, ThinkMean: cfg.ThinkMean})
	eight := Simulate(Config{Seed: cfg.Seed, Clients: cfg.Clients, Requests: cfg.Requests,
		Workers: 8, QueueDepth: 64, Catalog: cfg.Catalog, ThinkMean: cfg.ThinkMean})
	if eight.Makespan >= one.Makespan {
		t.Fatalf("8 workers not faster than 1: %v >= %v", eight.Makespan, one.Makespan)
	}
	if eight.MeanWait() >= one.MeanWait() {
		t.Fatalf("8 workers not less queueing than 1: %v >= %v", eight.MeanWait(), one.MeanWait())
	}
}

func TestZeroConfig(t *testing.T) {
	if s := Simulate(Config{}); s != (Stats{}) {
		t.Fatalf("zero config should be a no-op, got %+v", s)
	}
}
