// Package sim is the daemon turned experiment: a deterministic,
// closed-loop load generator that drives the wastelabd request-path
// policies — result cache, request coalescing, bounded admission — in
// virtual time and measures the waste modes the daemon itself exhibits:
// idle workers (W10), queueing overhead (W3/W7 territory), and redundant
// work avoided or not by the cache (W2).
//
// The policies are the daemon's own: the cache is the very
// internal/cache implementation the server mounts (single-threaded use is
// deterministic), and the admission rule — run up to Workers, queue up to
// QueueDepth, reject the rest — mirrors serve.admission decision for
// decision. What differs is the clock: events advance virtual time under
// a seeded event loop, so a fixed seed reproduces the run byte for byte
// regardless of host scheduling — the property experiment T12's tables
// need and a wall-clock benchmark cannot give.
//
// Arrivals are closed-loop and bursty: each simulated client issues a
// request, waits for its completion (or rejection), thinks for a seeded
// exponential time perturbed by a chaos.Bursty jitter injector — the
// abstract's "interactions with users or other systems" — and issues the
// next one.
package sim

import (
	"container/heap"

	"tenways/internal/cache"
	"tenways/internal/chaos"
	"tenways/internal/workload"
)

// Job is one entry of the request population: a cache key, the virtual
// service seconds one evaluation costs, and a popularity weight.
type Job struct {
	Key     string
	Service float64
	Weight  float64
}

// Config parameterises one simulated daemon run.
type Config struct {
	// Seed drives every random draw; same seed, same Stats.
	Seed uint64
	// Clients is the closed-loop population size.
	Clients int
	// Requests bounds the total requests issued across all clients.
	Requests int
	// Workers is the admission parallelism (serve.Options.Parallel).
	Workers int
	// QueueDepth bounds the waiters (serve.Options.QueueDepth).
	QueueDepth int
	// CacheSize bounds the result cache in entries; 0 disables caching.
	CacheSize int
	// Coalesce enables request coalescing of identical in-flight keys.
	Coalesce bool
	// Catalog is the request population; draws are weighted by popularity.
	Catalog []Job
	// ThinkMean is the mean think time between a client's requests.
	ThinkMean float64
	// BurstFrac is the chaos.Bursty jitter fraction added to think times
	// (0 disables the bursts and leaves plain exponential thinking).
	BurstFrac float64
	// RetryAfter is the client back-off after a 429, in virtual seconds.
	RetryAfter float64
}

// Stats is the outcome of one simulated run. All times are virtual
// seconds.
type Stats struct {
	Issued    int // requests issued, rejected ones included
	Served    int // requests answered (from cache, coalesced, or run)
	Rejected  int // 429s: admission queue full
	CacheHits int
	Coalesced int
	Runs      int // underlying lab evaluations performed
	Makespan  float64
	WaitSum   float64 // queue wait of admitted runs
	BusySum   float64 // worker-busy virtual seconds
}

// IdleFraction returns the fraction of worker capacity spent idle.
func (s Stats) IdleFraction(workers int) float64 {
	cap := float64(workers) * s.Makespan
	if cap <= 0 {
		return 0
	}
	f := 1 - s.BusySum/cap
	if f < 0 {
		return 0
	}
	return f
}

// HitRatio returns cache hits per issued request.
func (s Stats) HitRatio() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Issued)
}

// MeanWait returns the mean queue wait per underlying run.
func (s Stats) MeanWait() float64 {
	if s.Runs == 0 {
		return 0
	}
	return s.WaitSum / float64(s.Runs)
}

// Throughput returns served requests per virtual second.
func (s Stats) Throughput() float64 {
	if s.Makespan <= 0 {
		return 0
	}
	return float64(s.Served) / s.Makespan
}

// event kinds.
const (
	evIssue    = iota // a client issues its next request
	evComplete        // a running evaluation finishes
)

// event is one entry of the virtual-time event queue. seq breaks time ties
// deterministically (FIFO in schedule order).
type event struct {
	t      float64
	seq    uint64
	kind   int
	client int
	fl     *flightState // evComplete: the finishing flight
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// flightState is one admitted-or-queued evaluation: the leading client
// plus every client coalesced onto it.
type flightState struct {
	job      Job
	leader   int
	waiters  []int
	enqueued float64 // when it entered the admission queue
}

// sim is the mutable world of one Simulate call.
type sim struct {
	cfg     Config
	rng     *workload.Rand
	jitter  *chaos.Jitter
	events  eventHeap
	seq     uint64
	now     float64
	cache   *cache.Cache[struct{}]
	inUse   map[string]*flightState // Coalesce: key -> in-flight evaluation
	queue   []*flightState          // admission FIFO
	busy    int
	cumW    []float64 // cumulative catalog weights for weighted draws
	totW    float64
	stats   Stats
	stopped bool // request budget exhausted; clients retire as they finish
}

// Simulate runs the configured closed loop to completion and returns its
// statistics. Two calls with equal Config produce identical Stats.
func Simulate(cfg Config) Stats {
	if cfg.Clients <= 0 || cfg.Requests <= 0 || cfg.Workers <= 0 || len(cfg.Catalog) == 0 {
		return Stats{}
	}
	if cfg.ThinkMean <= 0 {
		cfg.ThinkMean = 0.05
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 4 * cfg.ThinkMean
	}
	s := &sim{
		cfg:   cfg,
		rng:   workload.NewRand(cfg.Seed),
		inUse: make(map[string]*flightState),
	}
	if cfg.BurstFrac > 0 {
		s.jitter = chaos.NewJitter(chaos.Bursty, cfg.BurstFrac, cfg.Seed+1, cfg.Clients)
	}
	if cfg.CacheSize > 0 {
		// The daemon's own cache implementation, driven in virtual time.
		s.cache = cache.New[struct{}](cfg.CacheSize, 1)
	}
	s.cumW = make([]float64, len(cfg.Catalog))
	for i, j := range cfg.Catalog {
		w := j.Weight
		if w <= 0 {
			w = 1
		}
		s.totW += w
		s.cumW[i] = s.totW
	}
	// Clients start staggered by their first think time.
	for c := 0; c < cfg.Clients; c++ {
		s.schedule(s.think(c), evIssue, c, nil)
	}
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.t
		switch e.kind {
		case evIssue:
			s.issue(e.client)
		case evComplete:
			s.complete(e.fl)
		}
	}
	s.stats.Makespan = s.now
	return s.stats
}

func (s *sim) schedule(t float64, kind, client int, fl *flightState) {
	s.seq++
	heap.Push(&s.events, &event{t: t, seq: s.seq, kind: kind, client: client, fl: fl})
}

// think returns the absolute virtual time of the client's next issue.
func (s *sim) think(client int) float64 {
	d := s.cfg.ThinkMean * s.rng.Exp()
	if s.jitter != nil {
		d += s.jitter.Delay(client, s.now, s.cfg.ThinkMean)
	}
	return s.now + d
}

// draw picks a job by popularity weight.
func (s *sim) draw() Job {
	r := s.rng.Float64() * s.totW
	for i, c := range s.cumW {
		if r < c {
			return s.cfg.Catalog[i]
		}
	}
	return s.cfg.Catalog[len(s.cfg.Catalog)-1]
}

// clientDone schedules the client's next request, or retires it when the
// request budget is spent.
func (s *sim) clientDone(client int) {
	if s.stopped {
		return
	}
	s.schedule(s.think(client), evIssue, client, nil)
}

// issue is the daemon request path in virtual time: cache, coalesce,
// admission, queue, reject — the same decision order as serve.Server.
func (s *sim) issue(client int) {
	if s.stats.Issued >= s.cfg.Requests {
		s.stopped = true
		return
	}
	s.stats.Issued++
	job := s.draw()

	// Result cache fast path.
	if s.cache != nil {
		if _, ok := s.cache.Get(job.Key); ok {
			s.stats.CacheHits++
			s.stats.Served++
			s.clientDone(client)
			return
		}
	}
	// Coalesce onto an identical in-flight evaluation.
	if s.cfg.Coalesce {
		if fl, ok := s.inUse[job.Key]; ok {
			fl.waiters = append(fl.waiters, client)
			s.stats.Coalesced++
			return
		}
	}
	fl := &flightState{job: job, leader: client}
	if s.cfg.Coalesce {
		s.inUse[job.Key] = fl
	}
	// Admission: run, queue, or reject.
	switch {
	case s.busy < s.cfg.Workers:
		s.start(fl)
	case len(s.queue) < s.cfg.QueueDepth:
		fl.enqueued = s.now
		s.queue = append(s.queue, fl)
	default:
		if s.cfg.Coalesce {
			delete(s.inUse, job.Key)
		}
		s.stats.Rejected++
		// The rejected client honours Retry-After and comes back.
		if !s.stopped {
			s.schedule(s.now+s.cfg.RetryAfter, evIssue, client, nil)
		}
	}
}

// start begins one evaluation on a free worker.
func (s *sim) start(fl *flightState) {
	s.busy++
	s.stats.Runs++
	s.stats.BusySum += fl.job.Service
	s.schedule(s.now+fl.job.Service, evComplete, fl.leader, fl)
}

// complete finishes an evaluation: publish to the cache, answer the leader
// and every coalesced waiter, then hand the freed worker to the queue.
func (s *sim) complete(fl *flightState) {
	s.busy--
	if s.cfg.Coalesce {
		delete(s.inUse, fl.job.Key)
	}
	if s.cache != nil {
		s.cache.Put(fl.job.Key, struct{}{})
	}
	s.stats.Served += 1 + len(fl.waiters)
	s.clientDone(fl.leader)
	for _, c := range fl.waiters {
		s.clientDone(c)
	}
	if len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.stats.WaitSum += s.now - next.enqueued
		s.start(next)
	}
}
