// Package pgas is a partitioned-global-address-space runtime in the UPC
// tradition, executing on the deterministic simulation kernel of
// internal/sim with message costs from a pluggable network model. Rank
// programs are plain Go functions; Put/Get move real data between ranks'
// partitions (so algorithms are checked for correctness, not just timed),
// while the runtime advances virtual time and charges the energy meter for
// every flop computed, byte moved, and second spent idle.
//
// The runtime exposes both blocking and split-phase (async) one-sided
// operations; the contrast between them is the W6 (overlap) experiment.
//
// The package holds no package-level mutable state: all state lives in the
// World, so distinct Worlds may run concurrently from different goroutines.
// internal/tune relies on this to evaluate world-building objectives on a
// parallel worker pool. (A single World is still single-threaded — it is a
// deterministic simulation, not a thread-safe container.)
package pgas

import (
	"fmt"
	"sync/atomic"

	"tenways/internal/energy"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/sim"
)

// CostModel abstracts per-message time and energy. netsim.Model implements
// it; SimpleCost adapts a bare machine.Spec.
type CostModel interface {
	MsgTime(src, dst int, bytes float64) float64
	MsgEnergy(src, dst int, bytes float64) float64
}

// SimpleCost is the topology-free LogGP cost model taken directly from a
// machine spec: every pair of ranks is one hop apart.
type SimpleCost struct{ Spec *machine.Spec }

// MsgTime implements CostModel.
func (c SimpleCost) MsgTime(src, dst int, bytes float64) float64 {
	if src == dst {
		return 2 * c.Spec.Net.OverheadSec
	}
	return c.Spec.MsgTimeSec(bytes)
}

// MsgEnergy implements CostModel.
func (c SimpleCost) MsgEnergy(src, dst int, bytes float64) float64 {
	if src == dst {
		return 0
	}
	return c.Spec.MsgEnergyJ(bytes)
}

// Perturber injects extra virtual-time delay into ranks' busy periods — the
// hook the chaos subsystem uses to model OS jitter, stragglers, and one-shot
// delay spikes. After a rank spends d busy seconds ending at virtual time
// now, the runtime asks the perturber for extra seconds of stolen time; the
// extra is charged to the Noise trace category (and to busy static power:
// the core is running, just not running the application). A nil perturber
// (the default) leaves every run byte-identical to an unperturbed one.
type Perturber interface {
	ComputeDelay(rank int, now, d float64) float64
}

// Stats aggregates world-wide communication activity.
type Stats struct {
	Messages  int64
	BytesSent int64
	Signals   int64
	Gets      int64
	Puts      int64
	Sends     int64
}

// World is one simulation instance: a set of ranks, a global address space
// partitioned across them, a cost model, and an energy meter.
type World struct {
	N     int
	spec  *machine.Spec
	cost  CostModel
	meter *energy.Meter

	k        *sim.Kernel
	segments map[string][][]float64
	flags    []map[string]*flagVar
	boxes    []map[string]*mailbox
	busy     []float64 // per-rank busy seconds
	txFree   []float64 // per-rank send-side NIC free time (bandwidth gap)
	rxFree   []float64 // per-rank receive-side NIC free time
	attr     []attrLedger
	rankSent []int64 // bytes sent per rank
	stats    Stats
	perturb  Perturber
	obs      *obs.Registry
}

type flagVar struct {
	count int64
	cond  *sim.Cond
}

type mailbox struct {
	queue [][]float64
	cond  *sim.Cond
}

// NewWorld creates a world of n ranks on the given machine with the given
// cost model (nil means SimpleCost over the spec) and meter (nil allocates
// a private one).
func NewWorld(n int, spec *machine.Spec, cost CostModel, meter *energy.Meter) *World {
	if cost == nil {
		cost = SimpleCost{Spec: spec}
	}
	if meter == nil {
		meter = energy.NewMeter()
	}
	w := &World{
		N:        n,
		spec:     spec,
		cost:     cost,
		meter:    meter,
		k:        sim.NewKernel(),
		segments: make(map[string][][]float64),
		flags:    make([]map[string]*flagVar, n),
		boxes:    make([]map[string]*mailbox, n),
		busy:     make([]float64, n),
		txFree:   make([]float64, n),
		rxFree:   make([]float64, n),
		attr:     make([]attrLedger, n),
		rankSent: make([]int64, n),
		obs:      obs.Default(),
	}
	w.k.SetMetrics(w.obs)
	for i := range w.flags {
		w.flags[i] = make(map[string]*flagVar)
		w.boxes[i] = make(map[string]*mailbox)
	}
	return w
}

// Alloc creates a named segment with perRank elements in every rank's
// partition. It must be called before Run.
func (w *World) Alloc(name string, perRank int) {
	if _, dup := w.segments[name]; dup {
		panic(fmt.Sprintf("pgas: segment %q already allocated", name))
	}
	seg := make([][]float64, w.N)
	for i := range seg {
		seg[i] = make([]float64, perRank)
	}
	w.segments[name] = seg
}

// Meter returns the world's energy meter.
func (w *World) Meter() *energy.Meter { return w.meter }

// SetPerturber arms the world with a delay injector (nil disarms). Call
// before Run; the chaos package's Scenario.Arm does this.
func (w *World) SetPerturber(p Perturber) { w.perturb = p }

// SetObs redirects the world's metrics — the sim kernel's event-loop
// counters and the world's message stats — to the given registry. Worlds
// default to obs.Default(); the lab runner injects a per-experiment
// registry so concurrent experiments never mix their metrics. Call before
// Run; nil restores the default.
func (w *World) SetObs(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	w.obs = reg
	w.k.SetMetrics(reg)
}

// Obs returns the registry this world records into (never nil).
func (w *World) Obs() *obs.Registry { return w.obs }

// Now returns the current virtual time in seconds. Useful to time-gated
// cost-model wrappers (link faults) that need the clock of the world they
// wrap.
func (w *World) Now() float64 { return w.k.Now() }

// RankBytesSent returns a copy of the per-rank sent-byte ledger, the input
// to communication-imbalance analysis: a rank sending far more than the
// mean is a decomposition smell even when compute is balanced.
func (w *World) RankBytesSent() []int64 {
	out := make([]int64, w.N)
	for i := range out {
		out[i] = atomic.LoadInt64(&w.rankSent[i])
	}
	return out
}

// CommImbalance returns max/mean − 1 over per-rank sent bytes (0 when no
// traffic or perfectly balanced).
func (w *World) CommImbalance() float64 {
	var max, sum int64
	for i := 0; i < w.N; i++ {
		b := atomic.LoadInt64(&w.rankSent[i])
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(w.N)
	return float64(max)/mean - 1
}

// Stats returns a snapshot of communication statistics.
func (w *World) Stats() Stats {
	return Stats{
		Messages:  atomic.LoadInt64(&w.stats.Messages),
		BytesSent: atomic.LoadInt64(&w.stats.BytesSent),
		Signals:   atomic.LoadInt64(&w.stats.Signals),
		Gets:      atomic.LoadInt64(&w.stats.Gets),
		Puts:      atomic.LoadInt64(&w.stats.Puts),
		Sends:     atomic.LoadInt64(&w.stats.Sends),
	}
}

// Run executes body on every rank and returns the simulated makespan in
// seconds. After the run, the meter additionally holds each rank's idle
// energy (makespan − busy time, at the machine's idle watts) and busy
// energy is charged as compute happens.
func (w *World) Run(body func(r *Rank)) (float64, error) {
	end, err := w.k.Run(w.N, func(p *sim.Proc) {
		body(&Rank{w: w, p: p})
	})
	st := w.Stats()
	w.obs.Counter("pgas.messages").Add(st.Messages)
	w.obs.Counter("pgas.bytes_sent").Add(st.BytesSent)
	if err != nil {
		return end, err
	}
	for i := 0; i < w.N; i++ {
		idle := end - w.busy[i]
		if idle < 0 {
			idle = 0
		}
		w.meter.Add(energy.Idle, w.spec.IdleEnergyJ(idle))
	}
	return end, nil
}

// Rank is the per-process view of the world.
type Rank struct {
	w *World
	p *sim.Proc
}

// ID returns the rank number in [0, N).
func (r *Rank) ID() int { return r.p.ID() }

// N returns the number of ranks.
func (r *Rank) N() int { return r.w.N }

// Now returns the current virtual time in seconds.
func (r *Rank) Now() float64 { return r.p.Now() }

// World returns the enclosing world.
func (r *Rank) World() *World { return r.w }

// Local returns this rank's partition of the named segment. Mutating it is
// free (it models register/cache-resident work); charge the cost separately
// with Compute.
func (r *Rank) Local(name string) []float64 {
	seg, ok := r.w.segments[name]
	if !ok {
		panic(fmt.Sprintf("pgas: unknown segment %q", name))
	}
	return seg[r.ID()]
}

// Compute advances virtual time for a kernel that executes the given flops
// and moves the given bytes through local DRAM, taking the roofline maximum
// of the two (compute and memory streams overlap within a node). Energy is
// charged for both components, plus busy static power for the duration.
func (r *Rank) Compute(flops, dramBytes float64) {
	tf := r.w.spec.FlopTimeSec(flops)
	tm := dramBytes / r.w.spec.DRAM.BytesPerSec
	t := tf
	if tm > t {
		t = tm
	}
	r.w.meter.Add(energy.Flops, r.w.spec.FlopEnergyJ(flops))
	if dramBytes > 0 {
		r.w.meter.Add(energy.DRAM, r.w.spec.DRAMEnergyJ(dramBytes))
	}
	r.Lapse(t)
}

// Lapse advances virtual time by d seconds of busy work, charging busy
// static power. When a perturber is armed, the injected extra time follows
// the busy period: it burns busy power (the core is running OS or noise
// work) and is attributed to the Noise category, not to compute.
func (r *Rank) Lapse(d float64) {
	r.w.meter.Add(energy.Static, r.w.spec.BusyEnergyJ(d))
	r.w.busy[r.ID()] += d
	r.chargeCompute(d)
	r.p.Advance(d)
	if pert := r.w.perturb; pert != nil {
		if extra := pert.ComputeDelay(r.ID(), r.p.Now(), d); extra > 0 {
			r.w.meter.Add(energy.Static, r.w.spec.BusyEnergyJ(extra))
			r.w.busy[r.ID()] += extra
			r.chargeNoise(extra)
			r.p.Advance(extra)
		}
	}
}

// Idle advances virtual time by d seconds without doing work (waiting on an
// external system, W10); idle energy is charged at run end via the busy
// ledger, so nothing extra is charged here.
func (r *Rank) Idle(d float64) { r.p.Advance(d) }

// Spin advances virtual time by d seconds of busy-waiting: no useful work,
// but full busy power — the W10 anti-pattern.
func (r *Rank) Spin(d float64) {
	r.w.meter.Add(energy.Static, r.w.spec.BusyEnergyJ(d))
	r.w.busy[r.ID()] += d
	r.chargeWait(d)
	r.p.Advance(d)
}

// arrival computes when a message issued now by this rank lands at dst,
// with both NICs modeled as serial resources in the LogGP spirit:
//
//   - the sender cannot inject a message until the previous one's bytes
//     have left its NIC (the bandwidth gap G), so pipelined chunks cannot
//     exceed wire bandwidth;
//   - each delivery occupies the receiver's NIC for the larger of the
//     software overhead o and the message's drain time, so floods of
//     messages queue up at their destination.
//
// Local transfers skip both NICs.
func (r *Rank) arrival(dst int, bytes float64) float64 {
	return r.w.arrivalFrom(r.ID(), dst, r.p.Now(), bytes)
}

func (w *World) arrivalFrom(src, dst int, issue, bytes float64) float64 {
	if dst == src {
		return issue + w.cost.MsgTime(src, dst, bytes)
	}
	bw := w.spec.Net.BytesPerSec
	start := issue
	if w.txFree[src] > start {
		start = w.txFree[src]
	}
	w.txFree[src] = start + bytes/bw
	t := start + w.cost.MsgTime(src, dst, bytes)
	occ := w.spec.Net.OverheadSec
	if drain := bytes / bw; drain > occ {
		occ = drain
	}
	if queued := w.rxFree[dst] + occ; queued > t {
		t = queued
	}
	w.rxFree[dst] = t
	return t
}

func (r *Rank) chargeMsg(dst int, bytes float64) {
	atomic.AddInt64(&r.w.stats.Messages, 1)
	atomic.AddInt64(&r.w.stats.BytesSent, int64(bytes))
	atomic.AddInt64(&r.w.rankSent[r.ID()], int64(bytes))
	r.w.meter.Add(energy.Network, r.w.cost.MsgEnergy(r.ID(), dst, bytes))
}

// Put copies vals into rank dst's partition of the segment at off,
// blocking until the transfer completes (data is visible at dst from the
// completion time onward).
func (r *Rank) Put(dst int, name string, off int, vals []float64) {
	h := r.PutAsync(dst, name, off, vals)
	h.Wait()
}

// PutAsync begins a one-sided put and returns immediately after the send
// overhead; the returned handle's Wait blocks until remote completion. The
// data is captured at issue time (source buffer may be reused).
func (r *Rank) PutAsync(dst int, name string, off int, vals []float64) *Handle {
	seg, ok := r.w.segments[name]
	if !ok {
		panic(fmt.Sprintf("pgas: unknown segment %q", name))
	}
	bytes := float64(8 * len(vals))
	r.chargeMsg(dst, bytes)
	atomic.AddInt64(&r.w.stats.Puts, 1)
	data := append([]float64(nil), vals...)
	done := r.arrival(dst, bytes)
	r.w.kernel().At(done, func() {
		copy(seg[dst][off:off+len(data)], data)
	})
	// The initiator pays only its software overhead before continuing.
	r.Lapse(r.overhead())
	return &Handle{r: r, done: done}
}

// PutSignal performs a one-sided put that additionally increments the named
// flag at dst when — and only when — the data has landed, the UPC-style
// "put with remote completion notification". It returns after the send
// overhead like PutAsync; receivers pair it with WaitSignal and may then
// read the segment safely.
func (r *Rank) PutSignal(dst int, name string, off int, vals []float64, flag string) *Handle {
	seg, ok := r.w.segments[name]
	if !ok {
		panic(fmt.Sprintf("pgas: unknown segment %q", name))
	}
	bytes := float64(8 * len(vals))
	r.chargeMsg(dst, bytes)
	atomic.AddInt64(&r.w.stats.Puts, 1)
	atomic.AddInt64(&r.w.stats.Signals, 1)
	data := append([]float64(nil), vals...)
	done := r.arrival(dst, bytes)
	w := r.w
	w.kernel().At(done, func() {
		copy(seg[dst][off:off+len(data)], data)
		fv := w.flag(dst, flag)
		fv.count++
		fv.cond.Broadcast()
	})
	r.Lapse(r.overhead())
	return &Handle{r: r, done: done}
}

// Get copies n elements from rank src's partition at off into a fresh
// slice, blocking for a request/response round trip.
func (r *Rank) Get(src int, name string, off, n int) []float64 {
	h, out := r.GetAsync(src, name, off, n)
	h.Wait()
	return out
}

// GetAsync begins a one-sided get. The returned slice is filled by the time
// the handle's Wait returns; reading it earlier is a race in the simulated
// program (and will read zeros).
func (r *Rank) GetAsync(src int, name string, off, n int) (*Handle, []float64) {
	seg, ok := r.w.segments[name]
	if !ok {
		panic(fmt.Sprintf("pgas: unknown segment %q", name))
	}
	out := make([]float64, n)
	bytes := float64(8 * n)
	// Request: a small message to src; response: the data back.
	const reqBytes = 16
	r.chargeMsg(src, reqBytes)
	atomic.AddInt64(&r.w.stats.Gets, 1)
	tReq := r.arrival(src, reqBytes)
	me := r.ID()
	w := r.w
	// The response is injected by src when the request arrives; compute
	// its delivery (including NIC queueing) now so the handle can wait.
	done := w.arrivalFrom(src, me, tReq, bytes)
	k := w.kernel()
	k.At(tReq, func() {
		// Data is read at the moment the request arrives at src.
		data := append([]float64(nil), seg[src][off:off+n]...)
		atomic.AddInt64(&w.stats.Messages, 1)
		atomic.AddInt64(&w.stats.BytesSent, int64(bytes))
		w.meter.Add(energy.Network, w.cost.MsgEnergy(src, me, bytes))
		k.At(done, func() { copy(out, data) })
	})
	r.Lapse(r.overhead())
	return &Handle{r: r, done: done}, out
}

// Signal increments the named flag at rank dst (fire-and-forget small
// message); receivers block on WaitSignal.
func (r *Rank) Signal(dst int, flag string) {
	const sigBytes = 8
	r.chargeMsg(dst, sigBytes)
	atomic.AddInt64(&r.w.stats.Signals, 1)
	t := r.arrival(dst, sigBytes)
	w := r.w
	w.kernel().At(t, func() {
		fv := w.flag(dst, flag)
		fv.count++
		fv.cond.Broadcast()
	})
	r.Lapse(r.overhead())
}

// WaitSignal blocks until the local named flag has been signalled at least
// count times in total.
func (r *Rank) WaitSignal(flag string, count int64) {
	fv := r.w.flag(r.ID(), flag)
	t0 := r.p.Now()
	for fv.count < count {
		r.p.Wait(fv.cond)
	}
	r.chargeWait(r.p.Now() - t0)
}

// SignalCount returns the local flag's current count without blocking.
func (r *Rank) SignalCount(flag string) int64 {
	return r.w.flag(r.ID(), flag).count
}

// Send delivers a copy of vals into dst's named mailbox after one message
// time (two-sided messaging in the MPI style, on the same cost model as the
// one-sided operations). The sender continues after its software overhead.
// Messages from one sender to one box arrive in issue order when they have
// equal size; messages from different senders interleave by delivery time.
func (r *Rank) Send(dst int, box string, vals []float64) {
	bytes := float64(8 * len(vals))
	r.chargeMsg(dst, bytes)
	atomic.AddInt64(&r.w.stats.Sends, 1)
	data := append([]float64(nil), vals...)
	t := r.arrival(dst, bytes)
	w := r.w
	w.kernel().At(t, func() {
		mb := w.mailbox(dst, box)
		mb.queue = append(mb.queue, data)
		mb.cond.Broadcast()
	})
	r.Lapse(r.overhead())
}

// Recv blocks until the local named mailbox is non-empty and dequeues the
// oldest message.
func (r *Rank) Recv(box string) []float64 {
	mb := r.w.mailbox(r.ID(), box)
	t0 := r.p.Now()
	for len(mb.queue) == 0 {
		r.p.Wait(mb.cond)
	}
	r.chargeWait(r.p.Now() - t0)
	msg := mb.queue[0]
	mb.queue = mb.queue[1:]
	return msg
}

func (w *World) mailbox(rank int, name string) *mailbox {
	mb, ok := w.boxes[rank][name]
	if !ok {
		mb = &mailbox{cond: w.k.NewCond()}
		w.boxes[rank][name] = mb
	}
	return mb
}

func (w *World) flag(rank int, name string) *flagVar {
	fv, ok := w.flags[rank][name]
	if !ok {
		fv = &flagVar{cond: w.k.NewCond()}
		w.flags[rank][name] = fv
	}
	return fv
}

func (w *World) kernel() *sim.Kernel { return w.k }

func (r *Rank) overhead() float64 { return r.w.spec.Net.OverheadSec }

// Handle represents an outstanding split-phase operation.
type Handle struct {
	r    *Rank
	done float64
}

// Wait blocks until the operation's completion time.
func (h *Handle) Wait() {
	t0 := h.r.p.Now()
	h.r.p.AdvanceTo(h.done)
	h.r.chargeWait(h.r.p.Now() - t0)
}

// Done reports whether the operation has already completed.
func (h *Handle) Done() bool { return h.r.p.Now() >= h.done }

// WaitAll waits for every handle.
func WaitAll(hs ...*Handle) {
	for _, h := range hs {
		h.Wait()
	}
}
