package pgas

import (
	"time"

	"tenways/internal/trace"
)

// Virtual-time attribution: the world ledgers each rank's simulated seconds
// into the same categories the measured plane's trace.Recorder uses, so
// core.Diagnose works identically on simulated runs. Busy time is charged
// by Lapse/Compute/Spin; waiting primitives charge comm-wait, except
// within a Sync section (used by the collective barriers), which
// re-classifies waits as sync-wait.

// attrLedger is one rank's virtual-second totals.
type attrLedger struct {
	compute   float64
	commWait  float64
	syncWait  float64
	noise     float64
	syncDepth int
}

// Sync marks fn as synchronisation: waits inside it are attributed to
// sync-wait instead of comm-wait. The collective package wraps its
// barriers with it; applications can mark their own phases.
func (r *Rank) Sync(fn func()) {
	l := &r.w.attr[r.ID()]
	l.syncDepth++
	fn()
	l.syncDepth--
}

// chargeWait attributes d virtual seconds of blocking to the rank.
func (r *Rank) chargeWait(d float64) {
	if d <= 0 {
		return
	}
	l := &r.w.attr[r.ID()]
	if l.syncDepth > 0 {
		l.syncWait += d
	} else {
		l.commWait += d
	}
}

// chargeCompute attributes d virtual seconds of useful work.
func (r *Rank) chargeCompute(d float64) {
	r.w.attr[r.ID()].compute += d
}

// chargeNoise attributes d virtual seconds of injected delay (OS jitter,
// stragglers, chaos spikes) — time the core was busy but the application
// made no progress.
func (r *Rank) chargeNoise(d float64) {
	r.w.attr[r.ID()].noise += d
}

// Breakdown converts the world's virtual-time ledgers into a
// trace.Breakdown (1 virtual second = 1s of trace time): per-rank compute,
// comm-wait, and sync-wait, plus the idle tail up to the makespan. Call
// after Run; pass Run's returned makespan.
func (w *World) Breakdown(makespan float64) trace.Breakdown {
	b := trace.Breakdown{
		Wall:      secsToDur(makespan),
		PerWorker: make([]trace.WorkerTimes, w.N),
	}
	for i := 0; i < w.N; i++ {
		l := w.attr[i]
		set := func(cat trace.Category, secs float64) {
			d := secsToDur(secs)
			b.PerWorker[i].ByCategory[cat] = d
			b.Total[cat] += d
		}
		set(trace.Compute, l.compute)
		set(trace.CommWait, l.commWait)
		set(trace.SyncWait, l.syncWait)
		set(trace.Noise, l.noise)
		idle := makespan - l.compute - l.commWait - l.syncWait - l.noise
		if idle > 0 {
			set(trace.Idle, idle)
		}
	}
	return b
}

func secsToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
