package pgas

import (
	"math"
	"testing"
	"testing/quick"

	"tenways/internal/energy"
	"tenways/internal/machine"
	"tenways/internal/netsim"
)

func spec() *machine.Spec { return machine.Petascale2009() }

func TestPutDeliversData(t *testing.T) {
	w := NewWorld(2, spec(), nil, nil)
	w.Alloc("x", 4)
	var got []float64
	_, err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Put(1, "x", 1, []float64{7, 8})
			r.Signal(1, "done")
		case 1:
			r.WaitSignal("done", 1)
			got = append([]float64(nil), r.Local("x")...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 7, 8, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestGetFetchesRemoteData(t *testing.T) {
	w := NewWorld(2, spec(), nil, nil)
	w.Alloc("x", 2)
	var got []float64
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 1 {
			r.Local("x")[0] = 42
			r.Local("x")[1] = 43
			r.Signal(0, "ready")
		} else {
			r.WaitSignal("ready", 1)
			got = r.Get(1, "x", 0, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 || got[1] != 43 {
		t.Fatalf("got %v", got)
	}
}

func TestBlockingPutTakesMessageTime(t *testing.T) {
	s := spec()
	w := NewWorld(2, s, nil, nil)
	w.Alloc("x", 128)
	end, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Put(1, "x", 0, make([]float64, 128))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := s.MsgTimeSec(128 * 8)
	if math.Abs(end-want) > 1e-12 {
		t.Fatalf("end = %g, want %g", end, want)
	}
}

func TestAsyncPutOverlaps(t *testing.T) {
	// Overlapped: issue the put, compute, then wait. Total time should be
	// max(compute, message) + overhead, clearly less than their sum.
	s := spec()
	compute := 5e-5
	n := 1024
	msg := s.MsgTimeSec(float64(8 * n))

	blocking := NewWorld(2, s, nil, nil)
	blocking.Alloc("x", n)
	tBlock, err := blocking.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Put(1, "x", 0, make([]float64, n))
			r.Lapse(compute)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	overlap := NewWorld(2, s, nil, nil)
	overlap.Alloc("x", n)
	tOver, err := overlap.Run(func(r *Rank) {
		if r.ID() == 0 {
			h := r.PutAsync(1, "x", 0, make([]float64, n))
			r.Lapse(compute)
			h.Wait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tOver >= tBlock {
		t.Fatalf("overlap (%g) should beat blocking (%g)", tOver, tBlock)
	}
	if tBlock < msg+compute-1e-12 {
		t.Fatalf("blocking should serialise: %g < %g", tBlock, msg+compute)
	}
}

func TestSignalCounts(t *testing.T) {
	w := NewWorld(3, spec(), nil, nil)
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.WaitSignal("go", 2)
			if r.SignalCount("go") < 2 {
				t.Error("count below waited threshold")
			}
		} else {
			r.Signal(0, "go")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Signals != 2 {
		t.Fatalf("signals = %d", w.Stats().Signals)
	}
}

func TestStatsCountMessages(t *testing.T) {
	w := NewWorld(2, spec(), nil, nil)
	w.Alloc("x", 8)
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Put(1, "x", 0, make([]float64, 8))
			r.Get(1, "x", 0, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Puts != 1 || st.Gets != 1 {
		t.Fatalf("puts=%d gets=%d", st.Puts, st.Gets)
	}
	// put(64B) + get request(16B) + get response(64B)
	if st.Messages != 3 {
		t.Fatalf("messages = %d, want 3", st.Messages)
	}
	if st.BytesSent != 64+16+64 {
		t.Fatalf("bytes = %d", st.BytesSent)
	}
}

func TestEnergyAccounting(t *testing.T) {
	s := spec()
	m := energy.NewMeter()
	w := NewWorld(2, s, nil, m)
	w.Alloc("x", 64)
	end, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(1e6, 1e5)
			r.Put(1, "x", 0, make([]float64, 64))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b := m.Breakdown()
	if b.Joules(energy.Flops) <= 0 || b.Joules(energy.DRAM) <= 0 ||
		b.Joules(energy.Network) <= 0 || b.Joules(energy.Idle) <= 0 {
		t.Fatalf("missing components: %v", b)
	}
	// Rank 1 is idle for the whole run; rank 0 idles only while blocked on
	// the put (its busy ledger covers compute + overhead).
	if b.Joules(energy.Idle) < s.IdleEnergyJ(end)*0.9 {
		t.Fatalf("idle energy too small: %v (end=%g)", b, end)
	}
}

func TestComputeRooflineMax(t *testing.T) {
	s := spec()
	w := NewWorld(1, s, nil, nil)
	flops := 1e6
	bytes := 1e9 // heavily bandwidth bound
	end, err := w.Run(func(r *Rank) { r.Compute(flops, bytes) })
	if err != nil {
		t.Fatal(err)
	}
	want := bytes / s.DRAM.BytesPerSec
	if math.Abs(end-want) > 1e-12 {
		t.Fatalf("bandwidth-bound time = %g, want %g", end, want)
	}
}

func TestSpinVersusIdleEnergy(t *testing.T) {
	s := spec()
	mSpin := energy.NewMeter()
	w1 := NewWorld(1, s, nil, mSpin)
	if _, err := w1.Run(func(r *Rank) { r.Spin(1.0) }); err != nil {
		t.Fatal(err)
	}
	mIdle := energy.NewMeter()
	w2 := NewWorld(1, s, nil, mIdle)
	if _, err := w2.Run(func(r *Rank) { r.Idle(1.0) }); err != nil {
		t.Fatal(err)
	}
	if mSpin.Total() <= mIdle.Total() {
		t.Fatalf("spinning (%g J) must cost more than blocking idle (%g J)",
			mSpin.Total(), mIdle.Total())
	}
	if math.Abs(mIdle.Total()-s.IdleEnergyJ(1.0)) > 1e-9 {
		t.Fatalf("idle energy = %g", mIdle.Total())
	}
}

func TestNetsimCostModelIntegration(t *testing.T) {
	s := spec()
	topo := netsim.NewRing(4)
	model := netsim.NewModel(s.Net, topo)
	w := NewWorld(4, s, model, nil)
	w.Alloc("x", 1)
	var tNear, tFar float64
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			start := r.Now()
			r.Put(1, "x", 0, []float64{1})
			tNear = r.Now() - start
			start = r.Now()
			r.Put(2, "x", 0, []float64{1})
			tFar = r.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tFar <= tNear {
		t.Fatalf("2-hop put (%g) should be slower than 1-hop (%g)", tFar, tNear)
	}
}

func TestUnknownSegmentPanics(t *testing.T) {
	w := NewWorld(1, spec(), nil, nil)
	_, err := w.Run(func(r *Rank) { r.Local("nope") })
	if err == nil {
		t.Fatal("expected error from panic in rank body")
	}
}

func TestDuplicateAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w := NewWorld(1, spec(), nil, nil)
	w.Alloc("x", 1)
	w.Alloc("x", 1)
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() float64 {
		w := NewWorld(8, spec(), nil, nil)
		w.Alloc("x", 8)
		end, err := w.Run(func(r *Rank) {
			next := (r.ID() + 1) % r.N()
			r.Put(next, "x", 0, make([]float64, 8))
			r.Signal(next, "tok")
			r.WaitSignal("tok", 1)
			r.Compute(1e5, 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %g vs %g", a, b)
	}
}

// Property: a ring "pass the token" among n ranks completes and its
// makespan grows with n (each hop adds latency).
func TestTokenRingScalesProperty(t *testing.T) {
	times := map[int]float64{}
	for _, n := range []int{2, 4, 8} {
		w := NewWorld(n, spec(), nil, nil)
		end, err := w.Run(func(r *Rank) {
			if r.ID() == 0 {
				r.Signal(1%r.N(), "tok")
				r.WaitSignal("tok", 1)
			} else {
				r.WaitSignal("tok", 1)
				r.Signal((r.ID()+1)%r.N(), "tok")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		times[n] = end
	}
	if !(times[2] < times[4] && times[4] < times[8]) {
		t.Fatalf("token ring times not increasing: %v", times)
	}
}

// Property: total bytes reported equals 8× elements put plus fixed message
// framing for gets/signals, for arbitrary put sizes.
func TestBytesAccountingProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 16 {
			sizes = sizes[:16]
		}
		w := NewWorld(2, spec(), nil, nil)
		maxN := 0
		total := 0
		for _, s := range sizes {
			n := int(s)%64 + 1
			total += n
			if n > maxN {
				maxN = n
			}
		}
		w.Alloc("x", maxN)
		_, err := w.Run(func(r *Rank) {
			if r.ID() != 0 {
				return
			}
			for _, s := range sizes {
				n := int(s)%64 + 1
				r.Put(1, "x", 0, make([]float64, n))
			}
		})
		if err != nil {
			return false
		}
		return w.Stats().BytesSent == int64(8*total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReceiverNICSerializesFlood(t *testing.T) {
	// 16 ranks signal rank 0 simultaneously: arrivals must be spaced by at
	// least the receive overhead, so the last lands no earlier than ~15·o
	// after the first.
	s := spec()
	n := 16
	w := NewWorld(n, s, nil, nil)
	end, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.WaitSignal("flood", int64(n-1))
			return
		}
		r.Signal(0, "flood")
	})
	if err != nil {
		t.Fatal(err)
	}
	minEnd := s.MsgTimeSec(8) + float64(n-2)*s.Net.OverheadSec
	if end < minEnd*0.99 {
		t.Fatalf("flood completed at %g, below NIC-serialised bound %g", end, minEnd)
	}
	// A single signal is NOT delayed by the NIC model.
	w2 := NewWorld(2, s, nil, nil)
	end2, err := w2.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.WaitSignal("one", 1)
			return
		}
		r.Signal(0, "one")
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end2-s.MsgTimeSec(8)) > 1e-12 {
		t.Fatalf("single message delayed: %g vs %g", end2, s.MsgTimeSec(8))
	}
}

func TestPutSignalDataBeforeSignal(t *testing.T) {
	// The signal must never be observable before the data: receivers that
	// wake on the flag read the freshly landed values.
	w := NewWorld(2, spec(), nil, nil)
	w.Alloc("x", 3)
	var got []float64
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.PutSignal(1, "x", 0, []float64{9, 8, 7}, "ready")
			return
		}
		r.WaitSignal("ready", 1)
		got = append([]float64(nil), r.Local("x")...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[2] != 7 {
		t.Fatalf("signal observable before data: %v", got)
	}
}

func TestSendRecvFIFO(t *testing.T) {
	w := NewWorld(2, spec(), nil, nil)
	var got []float64
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 1; i <= 3; i++ {
				r.Send(1, "box", []float64{float64(i)})
			}
			return
		}
		for i := 0; i < 3; i++ {
			got = append(got, r.Recv("box")[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != float64(i+1) {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestHandleDoneAndWaitAll(t *testing.T) {
	w := NewWorld(2, spec(), nil, nil)
	w.Alloc("x", 16)
	_, err := w.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		h1 := r.PutAsync(1, "x", 0, make([]float64, 8))
		h2 := r.PutAsync(1, "x", 8, make([]float64, 8))
		if h1.Done() {
			t.Error("handle done immediately after issue")
		}
		WaitAll(h1, h2)
		if !h1.Done() || !h2.Done() {
			t.Error("handles not done after WaitAll")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldAccessors(t *testing.T) {
	w := NewWorld(3, spec(), nil, nil)
	if w.Meter() == nil {
		t.Fatal("nil meter")
	}
	_, err := w.Run(func(r *Rank) {
		if r.World() != w {
			t.Error("World() mismatch")
		}
		if r.N() != 3 {
			t.Errorf("N = %d", r.N())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimpleCostLocal(t *testing.T) {
	c := SimpleCost{Spec: spec()}
	if c.MsgTime(2, 2, 100) >= c.MsgTime(2, 3, 100) {
		t.Fatal("local message should be cheaper than remote")
	}
	if c.MsgEnergy(2, 2, 100) != 0 {
		t.Fatal("local message should cost no network energy")
	}
}
