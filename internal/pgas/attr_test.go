package pgas

import (
	"math"
	"testing"
	"time"

	"tenways/internal/trace"
)

func durSecs(d time.Duration) float64 { return float64(d) / float64(time.Second) }

func TestBreakdownComputeOnly(t *testing.T) {
	w := NewWorld(2, spec(), nil, nil)
	end, err := w.Run(func(r *Rank) { r.Lapse(0.5) })
	if err != nil {
		t.Fatal(err)
	}
	b := w.Breakdown(end)
	if math.Abs(durSecs(b.Of(trace.Compute))-1.0) > 1e-9 {
		t.Fatalf("compute = %v", b.Of(trace.Compute))
	}
	if b.Of(trace.CommWait) != 0 || b.Of(trace.SyncWait) != 0 {
		t.Fatalf("unexpected waits: %v", b)
	}
}

func TestBreakdownCommWait(t *testing.T) {
	s := spec()
	w := NewWorld(2, s, nil, nil)
	end, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Lapse(1e-3)
			r.Signal(1, "go")
		} else {
			r.WaitSignal("go", 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b := w.Breakdown(end)
	// Rank 1 waited ~the whole run.
	waited := durSecs(b.PerWorker[1].ByCategory[trace.CommWait])
	if waited < 0.9e-3 {
		t.Fatalf("rank 1 comm-wait = %g, want ~1ms", waited)
	}
}

func TestBreakdownSyncSection(t *testing.T) {
	w := NewWorld(2, spec(), nil, nil)
	end, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Lapse(2e-3)
			r.Signal(1, "bar")
		} else {
			r.Sync(func() { r.WaitSignal("bar", 1) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b := w.Breakdown(end)
	if b.PerWorker[1].ByCategory[trace.SyncWait] == 0 {
		t.Fatal("Sync section wait not attributed to sync-wait")
	}
	if b.PerWorker[1].ByCategory[trace.CommWait] != 0 {
		t.Fatal("Sync section wait leaked into comm-wait")
	}
}

func TestBreakdownIdleResidual(t *testing.T) {
	w := NewWorld(2, spec(), nil, nil)
	end, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Lapse(1e-3)
		}
		// Rank 1 does nothing: its whole run is idle residual.
	})
	if err != nil {
		t.Fatal(err)
	}
	b := w.Breakdown(end)
	if durSecs(b.PerWorker[1].ByCategory[trace.Idle]) < 0.9e-3 {
		t.Fatalf("idle residual = %v", b.PerWorker[1].ByCategory[trace.Idle])
	}
}

func TestBreakdownHandleWaitIsCommWait(t *testing.T) {
	w := NewWorld(2, spec(), nil, nil)
	w.Alloc("x", 4096)
	end, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			h := r.PutAsync(1, "x", 0, make([]float64, 4096))
			h.Wait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b := w.Breakdown(end)
	if b.PerWorker[0].ByCategory[trace.CommWait] == 0 {
		t.Fatal("handle wait not attributed")
	}
}

func TestBreakdownSpinCountsAsWait(t *testing.T) {
	w := NewWorld(1, spec(), nil, nil)
	end, err := w.Run(func(r *Rank) { r.Spin(1e-3) })
	if err != nil {
		t.Fatal(err)
	}
	b := w.Breakdown(end)
	if b.Of(trace.CommWait) == 0 {
		t.Fatal("spin should count as waiting")
	}
	if b.Of(trace.Compute) != 0 {
		t.Fatal("spin is not useful compute")
	}
}

// fixedPerturber injects a constant extra delay after every busy period on
// one rank — the minimal Perturber for attribution tests.
type fixedPerturber struct {
	rank  int
	extra float64
}

func (f fixedPerturber) ComputeDelay(rank int, now, d float64) float64 {
	if rank == f.rank {
		return f.extra
	}
	return 0
}

func TestPerturberChargesNoise(t *testing.T) {
	w := NewWorld(2, spec(), nil, nil)
	w.SetPerturber(fixedPerturber{rank: 1, extra: 2e-3})
	end, err := w.Run(func(r *Rank) { r.Lapse(1e-3) })
	if err != nil {
		t.Fatal(err)
	}
	b := w.Breakdown(end)
	if got := durSecs(b.PerWorker[1].ByCategory[trace.Noise]); math.Abs(got-2e-3) > 1e-9 {
		t.Fatalf("rank 1 noise = %g, want 2e-3", got)
	}
	if b.PerWorker[0].ByCategory[trace.Noise] != 0 {
		t.Fatal("unperturbed rank charged noise")
	}
	if got := durSecs(b.PerWorker[1].ByCategory[trace.Compute]); math.Abs(got-1e-3) > 1e-9 {
		t.Fatalf("noise leaked into compute: %g", got)
	}
	// The injected delay stretches the makespan.
	if end < 3e-3-1e-9 {
		t.Fatalf("makespan %g did not absorb injected delay", end)
	}
}

func TestNilPerturberIdentical(t *testing.T) {
	run := func(arm bool) float64 {
		w := NewWorld(2, spec(), nil, nil)
		if arm {
			w.SetPerturber(nil)
		}
		end, err := w.Run(func(r *Rank) { r.Lapse(1e-3) })
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("nil perturber changed the run: %g vs %g", a, b)
	}
}

func TestRankBytesAndCommImbalance(t *testing.T) {
	w := NewWorld(4, spec(), nil, nil)
	w.Alloc("x", 64)
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			// Rank 0 sends everything: maximal imbalance.
			for d := 1; d < 4; d++ {
				r.Put(d, "x", 0, make([]float64, 64))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := w.RankBytesSent()
	if sent[0] != 3*64*8 || sent[1] != 0 {
		t.Fatalf("rank bytes = %v", sent)
	}
	// max/mean - 1 = (1536)/(384) - 1 = 3
	if got := w.CommImbalance(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("comm imbalance = %g", got)
	}

	balanced := NewWorld(4, spec(), nil, nil)
	balanced.Alloc("x", 8)
	_, err = balanced.Run(func(r *Rank) {
		r.Put((r.ID()+1)%4, "x", 0, make([]float64, 8))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := balanced.CommImbalance(); math.Abs(got) > 1e-9 {
		t.Fatalf("balanced imbalance = %g", got)
	}
	empty := NewWorld(2, spec(), nil, nil)
	if _, err := empty.Run(func(r *Rank) {}); err != nil {
		t.Fatal(err)
	}
	if empty.CommImbalance() != 0 {
		t.Fatal("no-traffic imbalance should be 0")
	}
}
