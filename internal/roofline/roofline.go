// Package roofline implements the roofline performance model: the
// attainable flop rate of a kernel on a machine is the minimum of the
// machine's peak and its memory bandwidth times the kernel's arithmetic
// intensity. The keynote's W8 — mismatching the algorithm to the machine
// balance — is exactly operating far below the ridge point.
package roofline

import "tenways/internal/machine"

// Point is one kernel placed on a machine's roofline.
type Point struct {
	Kernel    string
	Intensity float64 // flops per DRAM byte
	// Attainable is the model bound in flop/s for a full node.
	Attainable float64
	// Bound names the limiting resource: "memory" or "compute".
	Bound string
}

// Attainable returns the roofline bound in flop/s for a kernel of the
// given arithmetic intensity (flops/byte) on the machine.
func Attainable(s *machine.Spec, intensity float64) float64 {
	mem := s.DRAM.BytesPerSec * intensity
	peak := s.PeakFlopsPerNode()
	if mem < peak {
		return mem
	}
	return peak
}

// Classify places a named kernel on the machine's roofline.
func Classify(s *machine.Spec, kernel string, intensity float64) Point {
	p := Point{Kernel: kernel, Intensity: intensity, Attainable: Attainable(s, intensity)}
	if intensity < s.RidgeIntensity() {
		p.Bound = "memory"
	} else {
		p.Bound = "compute"
	}
	return p
}

// Efficiency returns the fraction of node peak the kernel can attain.
func Efficiency(s *machine.Spec, intensity float64) float64 {
	return Attainable(s, intensity) / s.PeakFlopsPerNode()
}

// TimeSec returns the model execution time of `flops` total flops at the
// given intensity on one node.
func TimeSec(s *machine.Spec, flops, intensity float64) float64 {
	return flops / Attainable(s, intensity)
}

// Sweep returns attainable flop/s at each intensity — one roofline curve.
func Sweep(s *machine.Spec, intensities []float64) []float64 {
	out := make([]float64, len(intensities))
	for i, ai := range intensities {
		out[i] = Attainable(s, ai)
	}
	return out
}
