package roofline

import (
	"math"
	"testing"
	"testing/quick"

	"tenways/internal/machine"
)

func TestAttainableTwoRegimes(t *testing.T) {
	s := machine.Petascale2009()
	ridge := s.RidgeIntensity()
	// Well below the ridge: bandwidth bound.
	low := Attainable(s, ridge/10)
	if math.Abs(low-s.DRAM.BytesPerSec*ridge/10) > 1e-6*low {
		t.Fatalf("below ridge should be bw*AI: %g", low)
	}
	// Well above: compute bound at peak.
	high := Attainable(s, ridge*10)
	if high != s.PeakFlopsPerNode() {
		t.Fatalf("above ridge should be peak: %g", high)
	}
	// Monotone non-decreasing in intensity.
	if low > high {
		t.Fatal("roofline not monotone")
	}
}

func TestClassify(t *testing.T) {
	s := machine.Petascale2009()
	ridge := s.RidgeIntensity()
	p := Classify(s, "triad", ridge/100)
	if p.Bound != "memory" {
		t.Fatalf("triad should be memory bound, got %s", p.Bound)
	}
	q := Classify(s, "nbody", ridge*100)
	if q.Bound != "compute" {
		t.Fatalf("nbody should be compute bound, got %s", q.Bound)
	}
	if p.Kernel != "triad" || p.Intensity != ridge/100 {
		t.Fatal("point fields not set")
	}
}

func TestEfficiencyAtRidgeIsOne(t *testing.T) {
	s := machine.Laptop2009()
	if e := Efficiency(s, s.RidgeIntensity()); math.Abs(e-1) > 1e-9 {
		t.Fatalf("efficiency at ridge = %g", e)
	}
	if e := Efficiency(s, s.RidgeIntensity()/2); math.Abs(e-0.5) > 1e-9 {
		t.Fatalf("efficiency at ridge/2 = %g", e)
	}
}

func TestTimeSec(t *testing.T) {
	s := machine.Laptop2009()
	flops := 1e9
	at := Attainable(s, 100)
	if got := TimeSec(s, flops, 100); math.Abs(got-flops/at) > 1e-15 {
		t.Fatalf("time = %g", got)
	}
}

func TestSweepMatchesPointwise(t *testing.T) {
	s := machine.Exascale()
	ais := []float64{0.1, 1, 10, 100}
	ys := Sweep(s, ais)
	for i, ai := range ais {
		if ys[i] != Attainable(s, ai) {
			t.Fatalf("sweep[%d] mismatch", i)
		}
	}
}

func TestExascaleRidgeFartherRight(t *testing.T) {
	// The keynote's point: future machines demand higher intensity.
	if machine.Exascale().RidgeIntensity() <= machine.Laptop2009().RidgeIntensity() {
		t.Fatal("exascale ridge should exceed laptop ridge")
	}
}

func TestAttainableMonotoneProperty(t *testing.T) {
	s := machine.Petascale2009()
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return Attainable(s, lo) <= Attainable(s, hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
