package tune

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"tenways/internal/machine"
)

func TestSpaceEnumeration(t *testing.T) {
	s := NewSpace(IntRange("a", 1, 3, 1), Choice("b", "x", "y"))
	if s.Size() != 6 {
		t.Fatalf("Size = %d, want 6", s.Size())
	}
	pts := s.Points()
	if len(pts) != 6 {
		t.Fatalf("Points len = %d, want 6", len(pts))
	}
	// Lexicographic: first axis slowest.
	if s.Int(pts[0], "a") != 1 || s.Str(pts[0], "b") != "x" {
		t.Fatalf("first point = %s", s.Describe(pts[0]))
	}
	if s.Int(pts[5], "a") != 3 || s.Str(pts[5], "b") != "y" {
		t.Fatalf("last point = %s", s.Describe(pts[5]))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		if seen[p.Key()] {
			t.Fatalf("duplicate point %s", p.Key())
		}
		seen[p.Key()] = true
		if err := s.Check(p); err != nil {
			t.Fatalf("Check(%s): %v", p.Key(), err)
		}
	}
}

func TestLogRangeIncludesEndpoints(t *testing.T) {
	a := LogRange("w", 1, 48, 4)
	want := []int{1, 4, 16, 48}
	var got []int
	for i := 0; i < a.Len(); i++ {
		got = append(got, a.IntAt(i))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LogRange values = %v, want %v", got, want)
	}
}

func TestNeighbors(t *testing.T) {
	s := NewSpace(IntRange("a", 0, 4, 1), IntRange("b", 0, 4, 1))
	n := s.Neighbors(Point{2, 2})
	if len(n) != 4 {
		t.Fatalf("interior neighbors = %d, want 4", len(n))
	}
	n = s.Neighbors(Point{0, 0})
	if len(n) != 2 {
		t.Fatalf("corner neighbors = %d, want 2", len(n))
	}
}

// quadratic returns a unimodal objective with its minimum at index opt,
// counting true evaluations.
func quadratic(opt int, evals *int64) Objective {
	return func(p Point) (Cost, error) {
		atomic.AddInt64(evals, 1)
		d := float64(p[0] - opt)
		return Cost{Seconds: 1 + d*d}, nil
	}
}

func TestGridFindsOptimum(t *testing.T) {
	s := NewSpace(IntRange("k", 0, 47, 1))
	var evals int64
	res, err := Minimize(s, quadratic(31, &evals), Options{Strategy: Grid{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Point[0] != 31 {
		t.Fatalf("grid best = %s, want k=31", s.Describe(res.Best.Point))
	}
	if res.Evaluations != 48 || evals != 48 {
		t.Fatalf("grid evals = %d (true %d), want 48", res.Evaluations, evals)
	}
}

func TestGoldenSectionConvergesFast(t *testing.T) {
	// Acceptance criterion: golden-section finds the optimum of a unimodal
	// 48-point axis in at most 15 evaluations, where grid needs all 48.
	for _, opt := range []int{0, 7, 23, 31, 47} {
		s := NewSpace(IntRange("k", 0, 47, 1))
		var evals int64
		res, err := Minimize(s, quadratic(opt, &evals), Options{Strategy: GoldenSection{}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Point[0] != opt {
			t.Errorf("opt=%d: golden best = %s", opt, s.Describe(res.Best.Point))
		}
		if evals > 15 {
			t.Errorf("opt=%d: golden used %d evals, want <= 15", opt, evals)
		}
	}
}

func TestGoldenSectionMatchesGridOnTunables(t *testing.T) {
	// On every registered unimodal tunable and machine preset, golden-section
	// must land within 10% of the grid oracle's cost.
	for _, tn := range Tunables(true) {
		if !tn.Unimodal {
			continue
		}
		for _, m := range machine.Presets() {
			oracle, err := tn.Tune(m, Options{Strategy: Grid{}})
			if err != nil {
				t.Fatalf("%s/%s grid: %v", tn.ID, m.Name, err)
			}
			golden, err := tn.Tune(m, Options{Strategy: GoldenSection{}})
			if err != nil {
				t.Fatalf("%s/%s golden: %v", tn.ID, m.Name, err)
			}
			if golden.Best.Cost.Seconds > 1.10*oracle.Best.Cost.Seconds {
				t.Errorf("%s on %s: golden %.3g > 1.10 x oracle %.3g (golden %s, oracle %s)",
					tn.ID, m.Name, golden.Best.Cost.Seconds, oracle.Best.Cost.Seconds,
					tn.Space.Describe(golden.Best.Point), tn.Space.Describe(oracle.Best.Point))
			}
		}
	}
}

func TestTunedNeverLosesToDefault(t *testing.T) {
	for _, tn := range Tunables(true) {
		for _, m := range machine.Presets() {
			res, err := tn.Tune(m, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", tn.ID, m.Name, err)
			}
			def, err := tn.Objective(m)(tn.Default)
			if err != nil {
				t.Fatalf("%s/%s default: %v", tn.ID, m.Name, err)
			}
			if res.Best.Cost.Seconds > def.Seconds*(1+1e-12) {
				t.Errorf("%s on %s: tuned %.6g worse than default %.6g",
					tn.ID, m.Name, res.Best.Cost.Seconds, def.Seconds)
			}
		}
	}
}

func TestCacheMakesRepeatTuningFree(t *testing.T) {
	// Acceptance criterion: repeated tune of the same (machine, tunable)
	// through a shared cache costs zero extra evaluations.
	s := NewSpace(IntRange("k", 0, 47, 1))
	var evals int64
	cache := NewCache()
	obj := quadratic(13, &evals)
	opts := Options{Strategy: GoldenSection{}, Cache: cache, CacheKey: "m|t"}
	first, err := Minimize(s, obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := evals
	second, err := Minimize(s, obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	if evals != before {
		t.Fatalf("repeat tuning cost %d extra evaluations, want 0", evals-before)
	}
	if second.Evaluations != 0 {
		t.Fatalf("repeat Result.Evaluations = %d, want 0", second.Evaluations)
	}
	if second.CacheHits == 0 {
		t.Fatalf("repeat CacheHits = 0, want > 0")
	}
	if !reflect.DeepEqual(first.Best.Point, second.Best.Point) {
		t.Fatalf("repeat best %v != first best %v", second.Best.Point, first.Best.Point)
	}
}

func TestInBatchDedup(t *testing.T) {
	s := NewSpace(IntRange("k", 0, 9, 1))
	var evals int64
	res, err := Minimize(s, quadratic(4, &evals), Options{
		Strategy: stubStrategy{func(r *Run) error {
			_, err := r.Eval([]Point{{3}, {3}, {3}, {5}})
			return err
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if evals != 2 {
		t.Fatalf("true evals = %d, want 2 (duplicates deduped)", evals)
	}
	if res.Evaluations != 2 || res.CacheHits != 2 {
		t.Fatalf("Evaluations=%d CacheHits=%d, want 2 and 2", res.Evaluations, res.CacheHits)
	}
}

type stubStrategy struct{ f func(r *Run) error }

func (s stubStrategy) Name() string          { return "stub" }
func (s stubStrategy) Search(r *Run) error   { return s.f(r) }

func TestParallelEvalDeterministic(t *testing.T) {
	s := NewSpace(IntRange("k", 0, 63, 1))
	obj := func(p Point) (Cost, error) {
		return Cost{Seconds: math.Sin(float64(p[0]))}, nil
	}
	run := func(workers int) Result {
		res, err := Minimize(s, obj, Options{Strategy: Grid{}, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Best.Point, b.Best.Point) {
		t.Fatalf("workers=1 best %v != workers=8 best %v", a.Best.Point, b.Best.Point)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if !reflect.DeepEqual(a.Trace[i].Point, b.Trace[i].Point) || a.Trace[i].Cost != b.Trace[i].Cost {
			t.Fatalf("trace[%d] differs: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
}

func TestBudgetStopsSearch(t *testing.T) {
	s := NewSpace(IntRange("k", 0, 99, 1))
	var evals int64
	res, err := Minimize(s, quadratic(50, &evals), Options{Strategy: Grid{}, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("want Exhausted after budget cut")
	}
	if evals != 10 {
		t.Fatalf("true evals = %d, want exactly the budget 10", evals)
	}
	if len(res.Trace) != 10 {
		t.Fatalf("trace len = %d, want 10", len(res.Trace))
	}
}

func TestHillClimbFindsGoodPoint(t *testing.T) {
	// Separable 2-D bowl: hill climbing from any start reaches the optimum.
	s := NewSpace(IntRange("a", 0, 15, 1), IntRange("b", 0, 15, 1))
	obj := func(p Point) (Cost, error) {
		da, db := float64(p[0]-11), float64(p[1]-3)
		return Cost{Seconds: da*da + db*db}, nil
	}
	res, err := Minimize(s, obj, Options{Strategy: HillClimb{Restarts: 3}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Point[0] != 11 || res.Best.Point[1] != 3 {
		t.Fatalf("hillclimb best = %v, want [11 3]", res.Best.Point)
	}
	if res.Evaluations >= s.Size() {
		t.Fatalf("hillclimb used %d evals, no better than grid's %d", res.Evaluations, s.Size())
	}
}

func TestObjectiveErrorPropagates(t *testing.T) {
	s := NewSpace(IntRange("k", 0, 9, 1))
	boom := errors.New("boom")
	_, err := Minimize(s, func(p Point) (Cost, error) {
		if p[0] == 5 {
			return Cost{}, boom
		}
		return Cost{Seconds: 1}, nil
	}, Options{Strategy: Grid{}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestBestSoFarMonotone(t *testing.T) {
	s := NewSpace(IntRange("k", 0, 47, 1))
	var evals int64
	res, err := Minimize(s, quadratic(20, &evals), Options{Strategy: HillClimb{Restarts: 2}})
	if err != nil {
		t.Fatal(err)
	}
	curve := res.BestSoFar()
	if len(curve) != len(res.Trace) {
		t.Fatalf("curve len %d != trace len %d", len(curve), len(res.Trace))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("best-so-far rose at %d: %g > %g", i, curve[i], curve[i-1])
		}
	}
	if curve[len(curve)-1] != res.Best.Cost.Seconds {
		t.Fatalf("curve end %g != best %g", curve[len(curve)-1], res.Best.Cost.Seconds)
	}
}

func TestByIDCaseInsensitive(t *testing.T) {
	for _, id := range []string{"w1-block", "W1-BLOCK", "w1", "F25-interval", "f25"} {
		if _, err := ByID(id, true); err != nil {
			t.Errorf("ByID(%q): %v", id, err)
		}
	}
	if _, err := ByID("nope", true); err == nil {
		t.Error("ByID(nope) succeeded, want error")
	}
}

func TestAutoStrategySelection(t *testing.T) {
	if s := Auto(NewSpace(IntRange("k", 0, 47, 1))); s.Name() != (GoldenSection{}).Name() {
		t.Errorf("long numeric axis: Auto = %s, want golden-section", s.Name())
	}
	if s := Auto(NewSpace(Choice("alg", "a", "b", "c"))); s.Name() != (Grid{}).Name() {
		t.Errorf("small space: Auto = %s, want grid", s.Name())
	}
	big := NewSpace(IntRange("a", 0, 15, 1), IntRange("b", 0, 15, 1))
	if s := Auto(big); s.Name() != (HillClimb{Restarts: 3}).Name() {
		t.Errorf("multi-dim space: Auto = %s, want hill-climb", s.Name())
	}
}

func TestF25GoldenBeatsGridOnEvals(t *testing.T) {
	// The flagship acceptance check: golden-section tunes the checkpoint
	// interval in <= 15 evaluations; grid needs the whole axis.
	tn, err := ByID("F25-interval", false)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Petascale2009()
	grid, err := tn.Tune(m, Options{Strategy: Grid{}})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := tn.Tune(m, Options{Strategy: GoldenSection{}})
	if err != nil {
		t.Fatal(err)
	}
	if grid.Evaluations != tn.Space.Size() {
		t.Errorf("grid evals = %d, want full sweep %d", grid.Evaluations, tn.Space.Size())
	}
	if golden.Evaluations > 15 {
		t.Errorf("golden evals = %d, want <= 15", golden.Evaluations)
	}
	if golden.Best.Cost.Seconds > 1.10*grid.Best.Cost.Seconds {
		t.Errorf("golden %.4g > 1.10 x oracle %.4g", golden.Best.Cost.Seconds, grid.Best.Cost.Seconds)
	}
}

func TestTunablesDescribe(t *testing.T) {
	for _, tn := range Tunables(true) {
		if err := tn.Space.Check(tn.Default); err != nil {
			t.Errorf("%s default invalid: %v", tn.ID, err)
		}
		if tn.DefaultLabel() == "" {
			t.Errorf("%s has empty default label", tn.ID)
		}
		if tn.Title == "" || tn.ModeID == "" {
			t.Errorf("%s missing title or mode", tn.ID)
		}
	}
	if len(Tunables(false)) != len(Tunables(true)) {
		t.Error("quick and full registries disagree on tunable count")
	}
}

func ExampleMinimize() {
	space := NewSpace(IntRange("k", 0, 47, 1))
	res, _ := Minimize(space, func(p Point) (Cost, error) {
		d := float64(p[0] - 31)
		return Cost{Seconds: 1 + d*d}, nil
	}, Options{Strategy: GoldenSection{}})
	fmt.Printf("best %s after %d evaluations\n", space.Describe(res.Best.Point), res.Evaluations)
	// Output: best k=31 after 8 evaluations
}
