package tune

import "sync"

// Cache memoizes objective evaluations across tuning runs. Keys combine
// the workload/machine identity (the Options.CacheKey prefix) with the
// canonical point key, so a cache can safely be shared between strategies,
// repeated runs, and different tunables: a repeated tune of the same point
// performs zero fresh evaluations.
type Cache struct {
	mu sync.Mutex
	m  map[string]Cost
}

// NewCache returns an empty evaluation cache.
func NewCache() *Cache { return &Cache{m: make(map[string]Cost)} }

// Get returns the memoized cost for key, if present.
func (c *Cache) Get(key string) (Cost, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

// Put memoizes the cost for key.
func (c *Cache) Put(key string, v Cost) {
	c.mu.Lock()
	c.m[key] = v
	c.mu.Unlock()
}

// Len returns the number of memoized evaluations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
