package tune

import "tenways/internal/cache"

// defaultCacheEntries bounds a tuning cache. Remedy-parameter spaces hold
// at most a few hundred points per (machine, tunable), so this never
// evicts within a run; the bound exists so a cache shared by a
// long-running process (the wastelabd daemon tunes on demand) cannot grow
// without limit — the unboundedness the original map-backed Cache had.
const defaultCacheEntries = 4096

// Cache memoizes objective evaluations across tuning runs. Keys combine
// the workload/machine identity (the Options.CacheKey prefix) with the
// canonical point key, so a cache can safely be shared between strategies,
// repeated runs, and different tunables: a repeated tune of the same point
// performs zero fresh evaluations.
//
// Cache is a thin wrapper over the generalized internal/cache (sharded,
// LRU-bounded, generation-keyed); unlike the original unbounded map it
// evicts least-recently-used evaluations past its capacity. Keep the
// capacity comfortably above a search's working set — Run.Eval re-reads
// a batch's results from the cache when committing them.
type Cache struct {
	c *cache.Cache[Cost]
}

// NewCache returns an evaluation cache with the default bound.
func NewCache() *Cache { return NewCacheSized(defaultCacheEntries) }

// NewCacheSized returns an evaluation cache bounded to capacity entries
// (<= 0 selects the default bound).
func NewCacheSized(capacity int) *Cache {
	if capacity <= 0 {
		capacity = defaultCacheEntries
	}
	return &Cache{c: cache.New[Cost](capacity, 0)}
}

// Get returns the memoized cost for key, if present.
func (c *Cache) Get(key string) (Cost, bool) { return c.c.Get(key) }

// Put memoizes the cost for key.
func (c *Cache) Put(key string, v Cost) { c.c.Put(key, v) }

// Len returns the number of memoized evaluations.
func (c *Cache) Len() int { return c.c.Len() }
