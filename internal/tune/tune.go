package tune

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"tenways/internal/obs"
	"tenways/internal/workload"
)

// Cost is the modeled outcome of one candidate: Seconds is the objective
// the strategies minimize; Joules rides along for reporting (the keynote's
// second axis).
type Cost struct {
	Seconds float64
	Joules  float64
}

// Objective evaluates one candidate point. Implementations must be
// deterministic (same point, same cost) and safe to call from multiple
// goroutines: the runner evaluates candidates in parallel on a bounded
// worker pool.
type Objective func(p Point) (Cost, error)

// Eval is one entry of a tuning run's trace.
type Eval struct {
	Point  Point
	Cost   Cost
	Cached bool // satisfied by the memo cache, no objective call
}

// Result is a completed tuning run.
type Result struct {
	Space       *Space
	Strategy    string
	Best        Eval
	Trace       []Eval // in evaluation-request order (deterministic)
	Evaluations int    // fresh objective calls (cache hits excluded)
	CacheHits   int
	Exhausted   bool // the evaluation budget ran out before convergence
}

// BestSoFar returns the running minimum of the trace's objective — the
// convergence curve plotted by F26.
func (r Result) BestSoFar() []float64 {
	out := make([]float64, len(r.Trace))
	best := 0.0
	for i, e := range r.Trace {
		if i == 0 || e.Cost.Seconds < best {
			best = e.Cost.Seconds
		}
		out[i] = best
	}
	return out
}

// Describe renders the chosen point.
func (r Result) Describe() string { return r.Space.Describe(r.Best.Point) }

// Options parameterises a tuning run.
type Options struct {
	// Strategy picks the search; nil selects automatically: GoldenSection
	// for a single numeric axis, Grid for small spaces, HillClimb
	// otherwise.
	Strategy Strategy
	// Budget caps fresh objective evaluations; 0 means unlimited. When the
	// budget runs out the strategy stops early and the best point seen so
	// far is returned with Exhausted set.
	Budget int
	// Workers bounds the parallel evaluation pool; <= 0 selects 4.
	Workers int
	// Seed drives randomized strategies (hill-climb restarts).
	Seed uint64
	// Cache, when non-nil, memoizes evaluations across runs. A run always
	// dedupes within itself even without one.
	Cache *Cache
	// CacheKey identifies the (machine, workload) the objective models, so
	// a shared cache never conflates different problems.
	CacheKey string
	// Seeds are points evaluated before the strategy starts — typically
	// the hand-picked default, so the tuner never returns something worse
	// than the status quo.
	Seeds []Point
	// Obs receives the run's tuning metrics (tune.evaluations,
	// tune.cache_hits); nil selects the process-wide default registry.
	Obs *obs.Registry
}

// ErrBudget is returned by Run.Eval when the evaluation budget is
// exhausted; strategies treat it as a stop signal and Minimize converts it
// into Result.Exhausted rather than an error.
var ErrBudget = errors.New("tune: evaluation budget exhausted")

// Strategy is a pluggable search: it requests evaluations through the Run
// until it converges or the budget stops it.
type Strategy interface {
	Name() string
	Search(r *Run) error
}

// Run is the strategy's view of an in-progress tuning: it evaluates
// candidates through the memo cache on the bounded worker pool and records
// the trace.
type Run struct {
	space    *Space
	obj      Objective
	opts     Options
	cache    *Cache
	rng      *workload.Rand
	trace    []Eval
	evals    int
	hits     int
	workerCh chan struct{}
}

// Space returns the space under search.
func (r *Run) Space() *Space { return r.space }

// Rand returns the run's seeded deterministic random stream.
func (r *Run) Rand() *workload.Rand { return r.rng }

// Remaining returns the remaining evaluation budget, or -1 when unlimited.
func (r *Run) Remaining() int {
	if r.opts.Budget <= 0 {
		return -1
	}
	if n := r.opts.Budget - r.evals; n > 0 {
		return n
	}
	return 0
}

func (r *Run) key(p Point) string { return r.opts.CacheKey + "|" + p.Key() }

// Eval evaluates the given candidates and returns their costs in request
// order. Cached points cost nothing; fresh points run in parallel on the
// bounded pool, deduplicated within the batch. If the budget cannot cover
// the fresh points, the batch is trimmed to fit, its results are recorded,
// and ErrBudget is returned alongside the evaluated prefix's costs.
func (r *Run) Eval(points []Point) ([]Cost, error) {
	for _, p := range points {
		if err := r.space.Check(p); err != nil {
			return nil, err
		}
	}
	type slot struct {
		cost   Cost
		cached bool
		fresh  bool // this index performs the objective call
		err    error
	}
	slots := make([]slot, len(points))
	leaders := map[string]bool{} // cache keys already fresh in this batch
	budgetHit := false
	n := len(points)
	fresh := 0
	for i, p := range points {
		k := r.key(p)
		if c, ok := r.cache.Get(k); ok {
			slots[i] = slot{cost: c, cached: true}
			continue
		}
		if leaders[k] {
			// Duplicate within the batch: follow the leader, count as hit.
			slots[i] = slot{cached: true}
			continue
		}
		if r.opts.Budget > 0 && r.evals+fresh+1 > r.opts.Budget {
			// Trim the batch: everything from here on is unevaluated.
			budgetHit = true
			n = i
			break
		}
		leaders[k] = true
		slots[i].fresh = true
		fresh++
	}
	// Run the fresh evaluations on the bounded pool.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if !slots[i].fresh {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.workerCh <- struct{}{}
			defer func() { <-r.workerCh }()
			c, err := r.obj(points[i])
			slots[i].cost, slots[i].err = c, err
		}(i)
	}
	wg.Wait()
	// Commit results in request order: fill duplicate followers, publish
	// to the cache, record the trace deterministically.
	costs := make([]Cost, 0, n)
	for i := 0; i < n; i++ {
		s := &slots[i]
		k := r.key(points[i])
		if s.fresh {
			if s.err != nil {
				return nil, fmt.Errorf("tune: %s: %w", r.space.Describe(points[i]), s.err)
			}
			r.cache.Put(k, s.cost)
			r.evals++
		} else if s.cached {
			if c, ok := r.cache.Get(k); ok {
				s.cost = c
			}
			r.hits++
		}
		r.trace = append(r.trace, Eval{Point: points[i].Clone(), Cost: s.cost, Cached: !s.fresh})
		costs = append(costs, s.cost)
	}
	if budgetHit {
		return costs, ErrBudget
	}
	return costs, nil
}

// Eval1 evaluates a single point.
func (r *Run) Eval1(p Point) (Cost, error) {
	cs, err := r.Eval([]Point{p})
	if len(cs) == 1 {
		return cs[0], err
	}
	return Cost{}, err
}

// Auto returns the automatic strategy choice for a space: GoldenSection
// for one numeric axis with enough points to beat enumeration, Grid for
// small spaces, HillClimb for large multi-dimensional ones.
func Auto(s *Space) Strategy {
	if s.Dims() == 1 && s.axes[0].Numeric() && s.axes[0].Len() > 4 {
		return GoldenSection{}
	}
	if s.Size() <= 64 {
		return Grid{}
	}
	return HillClimb{Restarts: 3}
}

// Minimize searches the space for the point with the lowest
// Cost.Seconds. The options' seed points (typically the hand-picked
// default) are evaluated first, so the result never loses to them. A
// budget exhaustion is not an error: the best point found so far is
// returned with Exhausted set.
func Minimize(space *Space, obj Objective, opts Options) (Result, error) {
	if space == nil || space.Dims() == 0 {
		return Result{}, errors.New("tune: empty space")
	}
	if obj == nil {
		return Result{}, errors.New("tune: nil objective")
	}
	strategy := opts.Strategy
	if strategy == nil {
		strategy = Auto(space)
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewCache()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 2009
	}
	run := &Run{
		space:    space,
		obj:      obj,
		opts:     opts,
		cache:    cache,
		rng:      workload.NewRand(seed),
		workerCh: make(chan struct{}, workers),
	}
	exhausted := false
	if len(opts.Seeds) > 0 {
		if _, err := run.Eval(opts.Seeds); err == ErrBudget {
			exhausted = true
		} else if err != nil {
			return Result{}, err
		}
	}
	if !exhausted {
		if err := strategy.Search(run); err == ErrBudget {
			exhausted = true
		} else if err != nil {
			return Result{}, err
		}
	}
	if len(run.trace) == 0 {
		return Result{}, errors.New("tune: strategy evaluated no points")
	}
	best := run.trace[0]
	for _, e := range run.trace[1:] {
		if e.Cost.Seconds < best.Cost.Seconds {
			best = e
		}
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.Default()
	}
	reg.Counter("tune.evaluations").Add(int64(run.evals))
	reg.Counter("tune.cache_hits").Add(int64(run.hits))
	return Result{
		Space:       space,
		Strategy:    strategy.Name(),
		Best:        best,
		Trace:       run.trace,
		Evaluations: run.evals,
		CacheHits:   run.hits,
		Exhausted:   exhausted,
	}, nil
}

// sortPointsStable orders points lexicographically; used by strategies
// that collect candidate sets from maps to keep evaluation order
// deterministic.
func sortPointsStable(ps []Point) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
