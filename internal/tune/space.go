// Package tune is the autotuning subsystem: it picks remedy parameters —
// cache block sizes, message aggregation sizes, replication factors, chunk
// granularities, checkpoint intervals, collective algorithms — from the
// machine model instead of hard-coding them. The whole point of the
// parameterised machines is that these optima are *derivable* from machine
// balance; tune makes that derivation mechanical.
//
// The pieces: a Space of search Axes (integer ranges, log-scaled ranges,
// enumerated choices), pluggable search Strategies (exhaustive Grid,
// GoldenSection for unimodal single-axis objectives, random-restart
// HillClimb for multi-dimensional spaces), a memoizing evaluation Cache
// keyed on (machine, workload, point), deterministic parallel candidate
// evaluation on a bounded worker pool, and a budget/early-stop policy.
// Minimize runs a strategy and returns a Result with the chosen point, the
// full evaluation trace, and the modeled time/energy at the optimum.
// registry.go registers tunables for the existing remedies.
package tune

import (
	"fmt"
	"strings"
)

// Axis is one dimension of a search space: an ordered list of numeric
// candidates or an enumerated set of named choices. Axes are finite by
// construction so every strategy can fall back to enumerating them.
type Axis struct {
	name string
	ints []int    // ordered numeric candidates (numeric axes)
	strs []string // named options (choice axes)
}

// IntRange returns a numeric axis covering lo..hi inclusive in steps of
// step (minimum 1).
func IntRange(name string, lo, hi, step int) Axis {
	if step < 1 {
		step = 1
	}
	a := Axis{name: name}
	for v := lo; v <= hi; v += step {
		a.ints = append(a.ints, v)
	}
	return a
}

// LogRange returns a geometrically spaced numeric axis: lo, lo·factor,
// lo·factor², … up to and including hi (appended if the progression skips
// it). factor must be ≥ 2. Log scaling is the natural shape for block and
// message sizes, whose objectives vary over decades.
func LogRange(name string, lo, hi, factor int) Axis {
	if factor < 2 {
		factor = 2
	}
	a := Axis{name: name}
	for v := lo; v <= hi; v *= factor {
		a.ints = append(a.ints, v)
	}
	if n := len(a.ints); n == 0 || a.ints[n-1] != hi {
		a.ints = append(a.ints, hi)
	}
	return a
}

// Explicit returns a numeric axis over the given values (kept in the given
// order, which should be ascending for unimodal search to make sense).
func Explicit(name string, vals ...int) Axis {
	return Axis{name: name, ints: append([]int(nil), vals...)}
}

// Choice returns an enumerated axis over named options (e.g. allreduce
// algorithms).
func Choice(name string, opts ...string) Axis {
	return Axis{name: name, strs: append([]string(nil), opts...)}
}

// Name returns the axis name.
func (a Axis) Name() string { return a.name }

// Numeric reports whether the axis holds ordered numbers (as opposed to
// enumerated choices).
func (a Axis) Numeric() bool { return a.strs == nil }

// Len returns the number of candidate values on the axis.
func (a Axis) Len() int {
	if a.Numeric() {
		return len(a.ints)
	}
	return len(a.strs)
}

// IntAt returns the i-th numeric candidate.
func (a Axis) IntAt(i int) int { return a.ints[i] }

// StrAt returns the i-th choice.
func (a Axis) StrAt(i int) string { return a.strs[i] }

// label renders the i-th candidate for humans.
func (a Axis) label(i int) string {
	if a.Numeric() {
		return fmt.Sprintf("%s=%d", a.name, a.ints[i])
	}
	return fmt.Sprintf("%s=%s", a.name, a.strs[i])
}

// Point is one candidate in a Space: an index into each axis, in axis
// order. Index form keeps points canonical (hashable for the cache) and
// gives ordered-neighbourhood structure to numeric axes, which is what
// golden-section and hill-climbing search over.
type Point []int

// Key returns the canonical cache key fragment for the point.
func (p Point) Key() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, "/")
}

// Clone returns an independent copy of the point.
func (p Point) Clone() Point { return append(Point(nil), p...) }

// Space is a finite multi-dimensional search space.
type Space struct {
	axes []Axis
}

// NewSpace builds a space from the given axes. Every axis must be
// non-empty and names must be unique.
func NewSpace(axes ...Axis) *Space {
	seen := map[string]bool{}
	for _, a := range axes {
		if a.Len() == 0 {
			panic(fmt.Sprintf("tune: axis %q is empty", a.name))
		}
		if seen[a.name] {
			panic(fmt.Sprintf("tune: duplicate axis %q", a.name))
		}
		seen[a.name] = true
	}
	return &Space{axes: append([]Axis(nil), axes...)}
}

// Axes returns the space's axes in order.
func (s *Space) Axes() []Axis { return s.axes }

// Dims returns the number of axes.
func (s *Space) Dims() int { return len(s.axes) }

// Size returns the number of points in the full grid.
func (s *Space) Size() int {
	n := 1
	for _, a := range s.axes {
		n *= a.Len()
	}
	return n
}

// axis returns the named axis and its position.
func (s *Space) axis(name string) (Axis, int) {
	for i, a := range s.axes {
		if a.name == name {
			return a, i
		}
	}
	panic(fmt.Sprintf("tune: unknown axis %q", name))
}

// Int returns the numeric value of the named axis at point p.
func (s *Space) Int(p Point, name string) int {
	a, i := s.axis(name)
	return a.IntAt(p[i])
}

// Str returns the choice of the named axis at point p.
func (s *Space) Str(p Point, name string) string {
	a, i := s.axis(name)
	return a.StrAt(p[i])
}

// Describe renders a point as "name=value, name=value" for tables and
// advice text.
func (s *Space) Describe(p Point) string {
	parts := make([]string, len(s.axes))
	for i, a := range s.axes {
		parts[i] = a.label(p[i])
	}
	return strings.Join(parts, ", ")
}

// Check validates that p indexes the space.
func (s *Space) Check(p Point) error {
	if len(p) != len(s.axes) {
		return fmt.Errorf("tune: point has %d coordinates, space has %d axes", len(p), len(s.axes))
	}
	for i, v := range p {
		if v < 0 || v >= s.axes[i].Len() {
			return fmt.Errorf("tune: coordinate %d = %d outside axis %q (len %d)",
				i, v, s.axes[i].name, s.axes[i].Len())
		}
	}
	return nil
}

// Points enumerates the full grid in lexicographic order (first axis
// slowest). The order is deterministic, which keeps parallel grid
// evaluation reproducible.
func (s *Space) Points() []Point {
	out := make([]Point, 0, s.Size())
	p := make(Point, len(s.axes))
	var rec func(d int)
	rec = func(d int) {
		if d == len(s.axes) {
			out = append(out, p.Clone())
			return
		}
		for i := 0; i < s.axes[d].Len(); i++ {
			p[d] = i
			rec(d + 1)
		}
	}
	rec(0)
	return out
}

// Neighbors returns the points one index step away from p along each axis
// (the hill-climbing neighbourhood), in deterministic order.
func (s *Space) Neighbors(p Point) []Point {
	out := make([]Point, 0, 2*len(s.axes))
	for d := range s.axes {
		if p[d] > 0 {
			q := p.Clone()
			q[d]--
			out = append(out, q)
		}
		if p[d] < s.axes[d].Len()-1 {
			q := p.Clone()
			q[d]++
			out = append(out, q)
		}
	}
	return out
}
