package tune

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"tenways/internal/chaos"
	"tenways/internal/collective"
	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/pdes"
	"tenways/internal/pgas"
	"tenways/internal/sched"
	"tenways/internal/waste"
	"tenways/internal/workload"
)

// Tunable is one registered remedy parameter: its search space, the
// hand-picked default the code used to hard-code, and an objective that
// models a candidate on a machine. The registry replaces the suite's
// scattered constants with machine-derived optima.
type Tunable struct {
	ID       string // e.g. "W1-block"
	ModeID   string // the waste mode / experiment the parameter remedies
	Title    string
	Space    *Space
	Default  Point // the previously hard-coded constant
	Unimodal bool  // single numeric axis with a unimodal objective: golden-section applies
	// Quick records which registry variant built this tunable. Quick and
	// full variants model different workloads over different axes, so the
	// flag is part of the evaluation-cache identity.
	Quick bool

	objective func(m *machine.Spec) Objective
}

// Objective binds the tunable's model to a machine.
func (t Tunable) Objective(m *machine.Spec) Objective { return t.objective(m) }

// DefaultLabel renders the hand-picked default.
func (t Tunable) DefaultLabel() string { return t.Space.Describe(t.Default) }

// Strategy returns the tunable's natural search: golden-section where the
// objective is unimodal along a single axis, otherwise the automatic
// choice.
func (t Tunable) Strategy() Strategy {
	if t.Unimodal {
		return GoldenSection{}
	}
	return Auto(t.Space)
}

// Tune searches the tunable's space on the machine. Unset options get the
// tunable's defaults: its natural strategy, a cache key identifying
// (machine, tunable), and the hand-picked default as a seed point so the
// result never loses to the status quo.
func (t Tunable) Tune(m *machine.Spec, opts Options) (Result, error) {
	if opts.Strategy == nil {
		opts.Strategy = t.Strategy()
	}
	if opts.CacheKey == "" {
		// quick is part of the key: the quick and full registries model
		// different workloads on different axes under the same ID, and a
		// shared long-lived cache (the daemon's) must never serve one
		// variant's point costs to the other.
		opts.CacheKey = m.Name + "|" + t.ID + "|quick=" + strconv.FormatBool(t.Quick)
	}
	if opts.Seeds == nil {
		opts.Seeds = []Point{t.Default}
	}
	return Minimize(t.Space, t.objective(m), opts)
}

// Tunables returns the registered remedy parameters. quick shrinks the
// modeled problems (and with them the spaces) for tests and -short runs;
// quick and full tunables model different workloads under the same IDs, so
// the flag is stamped onto every tunable and carried into the default
// evaluation-cache key — a shared cache can hold both variants.
func Tunables(quick bool) []Tunable {
	ts := []Tunable{
		w1Block(quick),
		w7Aggregation(quick),
		t3Allreduce(quick),
		f13Replication(quick),
		f4Chunk(quick),
		f25Checkpoint(quick),
		f28Partitions(quick),
		f28Lookahead(quick),
		f29Bucket(quick),
		f30Interval(quick),
	}
	for i := range ts {
		ts[i].Quick = quick
	}
	return ts
}

// ByID returns the named tunable, case-insensitively. The full ID
// ("W1-block"), its experiment prefix ("W1"), and the remedied waste mode
// ("F4-chunk" remedies W4) all match.
func ByID(id string, quick bool) (Tunable, error) {
	known := make([]string, 0, len(Tunables(quick)))
	for _, t := range Tunables(quick) {
		prefix, _, _ := strings.Cut(t.ID, "-")
		if strings.EqualFold(t.ID, id) || strings.EqualFold(t.ModeID, id) || strings.EqualFold(prefix, id) {
			return t, nil
		}
		known = append(known, t.ID)
	}
	return Tunable{}, fmt.Errorf("tune: unknown tunable %q (known: %v)", id, known)
}

// indexOf locates value v on the numeric axis, panicking if absent — used
// to express defaults by value rather than by index.
func indexOf(a Axis, v int) int {
	for i := 0; i < a.Len(); i++ {
		if a.IntAt(i) == v {
			return i
		}
	}
	panic(fmt.Sprintf("tune: default %d not on axis %q", v, a.Name()))
}

// w1Block tunes the matmul cache-block size (W1/F1): too small re-walks
// the block descriptors, too large spills the cache — the optimum follows
// the machine's cache geometry.
func w1Block(quick bool) Tunable {
	n := 96
	axis := Explicit("block", 4, 6, 8, 12, 16, 24, 32, 48, 96)
	if quick {
		n = 48
		axis = Explicit("block", 4, 8, 16, 24, 48)
	}
	space := NewSpace(axis)
	return Tunable{
		ID:       "W1-block",
		ModeID:   "W1",
		Title:    fmt.Sprintf("matmul cache-block size (n=%d, traced)", n),
		Space:    space,
		Default:  Point{indexOf(axis, 8)},
		Unimodal: true,
		objective: func(m *machine.Spec) Objective {
			return func(p Point) (Cost, error) {
				res, _, err := waste.MatmulLocality(m, n, space.Int(p, "block"))
				if err != nil {
					return Cost{}, err
				}
				return Cost{Seconds: res.Seconds, Joules: res.Joules}, nil
			}
		},
	}
}

// w7Aggregation tunes the message-aggregation size (W7/F7): the optimum
// tracks the machine's n½ knee, not any fixed buffer constant.
func w7Aggregation(quick bool) Tunable {
	words := 1 << 16
	axis := LogRange("msg-words", 1, words, 4)
	if quick {
		words = 1 << 12
		axis = LogRange("msg-words", 1, words, 4)
	}
	space := NewSpace(axis)
	return Tunable{
		ID:       "W7-msg",
		ModeID:   "W7",
		Title:    fmt.Sprintf("message aggregation size (%d words rank0→rank1)", words),
		Space:    space,
		Default:  Point{indexOf(axis, 1024)},
		Unimodal: true,
		objective: func(m *machine.Spec) Objective {
			return func(p Point) (Cost, error) {
				res, err := waste.BulkTransfer(m, words, space.Int(p, "msg-words"))
				if err != nil {
					return Cost{}, err
				}
				return Cost{Seconds: res.Seconds, Joules: res.Joules}, nil
			}
		},
	}
}

// t3Allreduce tunes allreduce algorithm selection (T3/F14) as an
// enumerated choice: which algorithm wins depends on the machine's α/β
// ratio and the vector size.
func t3Allreduce(quick bool) Tunable {
	p, vecWords := 64, 16384
	if quick {
		p, vecWords = 16, 1024
	}
	space := NewSpace(Choice("alg", collective.AllreduceAlgorithms()...))
	return Tunable{
		ID:      "T3-allreduce",
		ModeID:  "T3",
		Title:   fmt.Sprintf("allreduce algorithm (P=%d, %d words)", p, vecWords),
		Space:   space,
		Default: Point{0}, // flat — the naive hard-coded choice
		objective: func(m *machine.Spec) Objective {
			return func(pt Point) (Cost, error) {
				alg := space.Str(pt, "alg")
				w := pgas.NewWorld(p, m, nil, nil)
				x := make([]float64, vecWords)
				var innerErr error
				secs, err := w.Run(func(r *pgas.Rank) {
					c := collective.New(r)
					if _, e := c.AllreduceByName(alg, x, collective.Sum); e != nil && r.ID() == 0 {
						innerErr = e
					}
				})
				if err != nil {
					return Cost{}, err
				}
				if innerErr != nil {
					return Cost{}, innerErr
				}
				return Cost{Seconds: secs, Joules: w.Meter().Total()}, nil
			}
		},
	}
}

// f13Replication tunes the 2.5D matmul replication factor c (F13): more
// replicas cut communication volume per the Ballard–Demmel bound at the
// price of memory.
func f13Replication(quick bool) Tunable {
	n, p := 8192, 4096
	if quick {
		n, p = 2048, 512
	}
	cs := make([]int, 0, bits.Len(uint(kernels.MaxReplication(p))))
	for c := 1; c <= kernels.MaxReplication(p); c *= 2 {
		cs = append(cs, c)
	}
	axis := Explicit("c", cs...)
	space := NewSpace(axis)
	return Tunable{
		ID:       "F13-c",
		ModeID:   "F13",
		Title:    fmt.Sprintf("2.5D matmul replication factor (n=%d, p=%d)", n, p),
		Space:    space,
		Default:  Point{0}, // c=1: SUMMA, no replication
		Unimodal: true,
		objective: func(m *machine.Spec) Objective {
			return func(pt Point) (Cost, error) {
				mm := kernels.CommAvoidingMatMul{N: n, P: p, C: space.Int(pt, "c")}
				return Cost{Seconds: mm.CommSeconds(m), Joules: mm.CommJoules(m)}, nil
			}
		},
	}
}

// chunkGrabSec models the cost of one grab on the chunked scheduler's
// shared counter: a coherence round trip to the machine's outermost
// shared cache level (DRAM latency when nothing is shared).
func chunkGrabSec(m *machine.Spec) float64 {
	lat := m.DRAM.LatencyCycles
	for _, l := range m.Levels {
		if l.Shared {
			lat = l.LatencyCycles
		}
	}
	return 2 * lat * m.CycleSec()
}

// f4Chunk tunes the dynamic-scheduling chunk size (W4/F4): tiny chunks
// serialise on the shared counter, huge chunks re-create static imbalance
// under skewed costs; the optimum follows the machine's coherence latency.
func f4Chunk(quick bool) Tunable {
	nTasks, workers := 4096, 16
	if quick {
		nTasks, workers = 1024, 8
	}
	axis := LogRange("chunk", 1, 512, 2)
	if quick {
		axis = LogRange("chunk", 1, 256, 2)
	}
	space := NewSpace(axis)
	// 100ns tasks with mild skew: fine enough that counter serialisation
	// punishes tiny chunks, skewed enough that huge heavy-first chunks
	// re-create imbalance — an interior, machine-dependent optimum.
	costs := workload.NewTaskDist(chaos.DefaultSeed).ZipfSorted(nTasks, 0.5, 1e-7)
	return Tunable{
		ID:       "F4-chunk",
		ModeID:   "W4",
		Title:    fmt.Sprintf("self-scheduling chunk size (%d Zipf tasks, %d workers)", nTasks, workers),
		Space:    space,
		Default:  Point{indexOf(axis, 64)},
		Unimodal: true,
		objective: func(m *machine.Spec) Objective {
			grab := chunkGrabSec(m)
			return func(pt Point) (Cost, error) {
				mk := sched.PredictChunked(costs, workers, space.Int(pt, "chunk"), grab)
				return Cost{Seconds: mk}, nil
			}
		},
	}
}

// f25Checkpoint tunes the checkpoint interval (F25): the classic U-curve
// between per-checkpoint overhead and expected replay. The objective
// averages the campaign makespan over a spread of failure steps, so the
// tuner cannot cheat by checkpointing right before one known failure.
func f25Checkpoint(quick bool) Tunable {
	ranks, steps := 8, 48
	failSteps := []int{7, 17, 29, 41}
	if quick {
		ranks, steps = 4, 24
		failSteps = []int{5, 11, 17, 23}
	}
	const stepSec = 1e-3
	axis := IntRange("interval", 1, steps, 1)
	space := NewSpace(axis)
	return Tunable{
		ID:       "F25-interval",
		ModeID:   "F25",
		Title:    fmt.Sprintf("checkpoint interval (%d ranks, %d steps, failure-averaged)", ranks, steps),
		Space:    space,
		Default:  Point{indexOf(axis, 8)},
		Unimodal: true,
		objective: func(m *machine.Spec) Objective {
			return func(pt Point) (Cost, error) {
				interval := space.Int(pt, "interval")
				total := 0.0
				for _, fail := range failSteps {
					res, err := chaos.RunCheckpointCampaign(m, chaos.CheckpointConfig{
						Ranks: ranks, Steps: steps, StepSec: stepSec,
						Interval: interval, CkptSec: 0.5 * stepSec,
						FailStep: fail, FailRank: ranks / 2, RestartSec: 4 * stepSec,
					})
					if err != nil {
						return Cost{}, err
					}
					total += res.Makespan
				}
				return Cost{Seconds: total / float64(len(failSteps))}, nil
			}
		},
	}
}

// f28Model derives the partitioned-engine cost model for the F28 idle-wave
// campaign: per-event and per-partition costs from the machine's clock, the
// halo delay (and with it the window count) from its network parameters.
func f28Model(m *machine.Spec, quick bool) (pdes.CostModel, float64) {
	ranks, steps := 1<<18, 12
	if quick {
		ranks, steps = 1<<14, 8
	}
	const compute = 50e-6
	delta := m.Net.AlphaSec + 2*m.Net.OverheadSec + 128/m.Net.BytesPerSec
	return pdes.CostModel{
		Events:     ranks * steps * 3, // one completion + two offset-1 halos per rank-step
		Ranks:      ranks,
		Horizon:    float64(steps) * (compute + delta),
		EventSec:   25 * m.CycleSec(),    // heap pop + handler, per log2(depth) level
		BarrierSec: 20000 * m.CycleSec(), // per-window worker wakeup and GVT reduction
		PartSec:    400 * m.CycleSec(),   // per-partition per-window batch scan
		BucketSec:  150 * m.CycleSec(),   // ladder rung advance: frontier scan + slab swap
		SnapSec:    60 * m.CycleSec(),    // time-warp per-rank snapshot/restore copy
	}, delta
}

// f28Partitions tunes the pdes engine's partition count (F28): few
// partitions mean deep heaps and idle cores, many mean per-window scan cost
// across the P x P batch matrix — the optimum follows the machine's core
// count and clock, not any hard-coded 8.
func f28Partitions(quick bool) Tunable {
	axis := LogRange("parts", 1, 256, 2)
	space := NewSpace(axis)
	ranks := f28Ranks(quick)
	return Tunable{
		ID:       "F28-parts",
		ModeID:   "F28",
		Title:    fmt.Sprintf("pdes partition count (idle wave, %d ranks, modeled)", ranks),
		Space:    space,
		Default:  Point{indexOf(axis, 8)}, // the engine's hard-coded default
		Unimodal: true,
		objective: func(m *machine.Spec) Objective {
			model, delta := f28Model(m, quick)
			return func(p Point) (Cost, error) {
				return Cost{Seconds: model.Wall(space.Int(p, "parts"), m.CoresPerNode, delta)}, nil
			}
		},
	}
}

// f28Lookahead tunes the window width as a divisor of the workload's halo
// delay (the widest legal lookahead): narrower windows only add barriers,
// so the tuner should drive the divisor back to 1 from the conservative
// default — the monotone degenerate case of the U-curve, worth covering in
// T9 because the temptation to over-synchronise is the waste W3 names.
func f28Lookahead(quick bool) Tunable {
	axis := Explicit("win-div", 1, 2, 4, 8, 16, 32, 64)
	space := NewSpace(axis)
	ranks := f28Ranks(quick)
	return Tunable{
		ID:       "F28-look",
		ModeID:   "F28",
		Title:    fmt.Sprintf("pdes window width, as delay/divisor (idle wave, %d ranks, modeled)", ranks),
		Space:    space,
		Default:  Point{indexOf(axis, 8)},
		Unimodal: true,
		objective: func(m *machine.Spec) Objective {
			model, delta := f28Model(m, quick)
			return func(p Point) (Cost, error) {
				look := delta / float64(space.Int(p, "win-div"))
				return Cost{Seconds: model.Wall(8, m.CoresPerNode, look)}, nil
			}
		},
	}
}

// f29Bucket tunes the ladder queue's bucket width (F29), expressed as a
// divisor of the halo delay: wide buckets degenerate toward one big sorted
// heap (per-event cost grows with per-bucket occupancy), narrow buckets
// pay the rung-advance scan per handful of events — a genuine U-curve, so
// golden-section applies.
func f29Bucket(quick bool) Tunable {
	axis := Explicit("bucket-div", 1, 2, 4, 8, 16, 32, 64, 128, 256)
	space := NewSpace(axis)
	ranks := f28Ranks(quick)
	return Tunable{
		ID:       "F29-bucket",
		ModeID:   "F29",
		Title:    fmt.Sprintf("pdes ladder bucket width, as delay/divisor (idle wave, %d ranks, modeled)", ranks),
		Space:    space,
		Default:  Point{indexOf(axis, 4)}, // the engine's Lookahead/4 default
		Unimodal: true,
		objective: func(m *machine.Spec) Objective {
			model, delta := f28Model(m, quick)
			return func(p Point) (Cost, error) {
				bucket := delta / float64(space.Int(p, "bucket-div"))
				return Cost{Seconds: model.LadderWall(8, m.CoresPerNode, delta, bucket)}, nil
			}
		},
	}
}

// f30Interval tunes the Time-Warp checkpoint interval (F30), in events per
// segment: interval 1 snapshots before every event, huge intervals pay the
// coast-forward replay on every rollback — the optimistic engine's own
// F25-shaped U-curve, unimodal, so golden-section applies. The rollback
// density is the F30 campaign's observed episodes-per-committed-event on
// the spiked idle wave.
func f30Interval(quick bool) Tunable {
	axis := LogRange("interval", 1, 4096, 2)
	space := NewSpace(axis)
	ranks := f28Ranks(quick)
	const rollbackFrac = 0.01
	return Tunable{
		ID:       "F30-interval",
		ModeID:   "F30",
		Title:    fmt.Sprintf("pdes time-warp checkpoint interval (idle wave, %d ranks, modeled)", ranks),
		Space:    space,
		Default:  Point{indexOf(axis, 64)}, // the engine's defaultCheckpointInterval
		Unimodal: true,
		objective: func(m *machine.Spec) Objective {
			model, delta := f28Model(m, quick)
			return func(p Point) (Cost, error) {
				iv := space.Int(p, "interval")
				return Cost{Seconds: model.TimeWarpWall(8, m.CoresPerNode, iv, delta, rollbackFrac)}, nil
			}
		},
	}
}

// f28Ranks returns the F28 model's rank count, for titles.
func f28Ranks(quick bool) int {
	if quick {
		return 1 << 14
	}
	return 1 << 18
}
