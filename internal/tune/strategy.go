package tune

import "fmt"

// Grid exhaustively evaluates the full space — the oracle every other
// strategy is judged against. Candidates run in parallel on the bounded
// pool; the trace order is the deterministic lexicographic enumeration.
type Grid struct{}

// Name implements Strategy.
func (Grid) Name() string { return "grid" }

// Search implements Strategy.
func (Grid) Search(r *Run) error {
	_, err := r.Eval(r.Space().Points())
	return err
}

// GoldenSection searches a single ordered numeric axis assuming the
// objective is unimodal along it — the shape of block-size, aggregation
// and checkpoint-interval trade-offs. It keeps one interior probe alive
// across iterations (the golden-ratio invariant), so each shrink of the
// bracket costs one fresh evaluation and convergence takes O(log range)
// evaluations where the grid needs the full sweep.
type GoldenSection struct{}

// Name implements Strategy.
func (GoldenSection) Name() string { return "golden" }

// invphi is 1/φ, the bracket shrink factor.
const invphi = 0.6180339887498949

// Search implements Strategy.
func (g GoldenSection) Search(r *Run) error {
	s := r.Space()
	if s.Dims() != 1 || !s.Axes()[0].Numeric() {
		return fmt.Errorf("tune: golden-section needs exactly one numeric axis, space has %d axes", s.Dims())
	}
	lo, hi := 0, s.Axes()[0].Len()-1
	probe := func(i int) (float64, error) {
		c, err := r.Eval1(Point{i})
		return c.Seconds, err
	}
	interior := func(a, b int) (int, int) {
		span := float64(b - a)
		c := b - int(span*invphi+0.5)
		d := a + int(span*invphi+0.5)
		if c < a+1 {
			c = a + 1
		}
		if d > b-1 {
			d = b - 1
		}
		if c >= d {
			c, d = a+1, b-1
		}
		return c, d
	}
	if hi-lo > 2 {
		c, d := interior(lo, hi)
		fc, err := probe(c)
		if err != nil {
			return err
		}
		fd, err := probe(d)
		if err != nil {
			return err
		}
		for hi-lo > 2 && c < d {
			if fc <= fd {
				hi = d
				d = c
				fd = fc
				c, _ = interior(lo, hi)
				if c >= d {
					break
				}
				if fc, err = probe(c); err != nil {
					return err
				}
			} else {
				lo = c
				c = d
				fc = fd
				_, d = interior(lo, hi)
				if c >= d {
					break
				}
				if fd, err = probe(d); err != nil {
					return err
				}
			}
		}
	}
	// Sweep the collapsed bracket: at most a handful of points, most of
	// them already cached.
	final := make([]Point, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		final = append(final, Point{i})
	}
	_, err := r.Eval(final)
	return err
}

// HillClimb is random-restart steepest-descent over the index space: from
// each seeded random start it evaluates the full ±1 neighbourhood (in
// parallel) and moves to the best improving neighbour until no neighbour
// improves, then restarts. It is the default for multi-dimensional spaces
// where neither enumeration nor unimodality applies.
type HillClimb struct {
	// Restarts is the number of random starts; <= 0 selects 3.
	Restarts int
}

// Name implements Strategy.
func (h HillClimb) Name() string { return "hillclimb" }

// Search implements Strategy.
func (h HillClimb) Search(r *Run) error {
	restarts := h.Restarts
	if restarts <= 0 {
		restarts = 3
	}
	s := r.Space()
	for try := 0; try < restarts; try++ {
		cur := make(Point, s.Dims())
		for d, a := range s.Axes() {
			cur[d] = r.Rand().Intn(a.Len())
		}
		fcur, err := r.Eval1(cur)
		if err != nil {
			return err
		}
		for {
			neigh := s.Neighbors(cur)
			costs, err := r.Eval(neigh)
			if err != nil {
				return err
			}
			bestI := -1
			for i, c := range costs {
				if c.Seconds < fcur.Seconds && (bestI < 0 || c.Seconds < costs[bestI].Seconds) {
					bestI = i
				}
			}
			if bestI < 0 {
				break // local optimum
			}
			cur, fcur = neigh[bestI], costs[bestI]
		}
	}
	return nil
}
