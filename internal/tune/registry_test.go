package tune

import (
	"testing"

	"tenways/internal/machine"
)

// TestQuickAndFullDontShareCacheEntries pins the daemon-shaped bug: a
// long-lived shared Cache served a quick tunable's point costs to the full
// variant of the same ID (same axis indices, different modeled workload).
// With Quick in the default cache key, the full tune after a quick tune
// must do its own evaluations and see different costs.
func TestQuickAndFullDontShareCacheEntries(t *testing.T) {
	m := machine.Petascale2009()
	cache := NewCache()

	pick := func(quick bool) Tunable {
		t.Helper()
		tn, err := ByID("F28-parts", quick)
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}

	quick, err := pick(true).Tune(m, Options{Cache: cache, Strategy: Grid{}})
	if err != nil {
		t.Fatal(err)
	}
	if quick.Evaluations == 0 {
		t.Fatal("quick tune did no evaluations")
	}

	full, err := pick(false).Tune(m, Options{Cache: cache, Strategy: Grid{}})
	if err != nil {
		t.Fatal(err)
	}
	if full.Evaluations == 0 {
		t.Fatalf("full tune after quick tune did 0 evaluations (%d cache hits): the cache served the quick variant's costs", full.CacheHits)
	}
	if full.Best.Cost.Seconds == quick.Best.Cost.Seconds {
		t.Fatalf("full and quick best costs identical (%g): the variants are not being modeled separately", full.Best.Cost.Seconds)
	}

	// Same variant through the same cache stays free, as before.
	again, err := pick(false).Tune(m, Options{Cache: cache, Strategy: Grid{}})
	if err != nil {
		t.Fatal(err)
	}
	if again.Evaluations != 0 {
		t.Fatalf("repeat full tune cost %d evaluations, want 0", again.Evaluations)
	}
}

// TestF28TunablesShape sanity-checks the new engine tunables: the lookahead
// divisor tunes back to 1 (the widest legal window) and the partition
// optimum is at least the machine's core count on every preset.
func TestF28TunablesShape(t *testing.T) {
	for _, m := range machine.Presets() {
		look, err := ByID("F28-look", true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := look.Tune(m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if div := look.Space.Int(res.Best.Point, "win-div"); div != 1 {
			t.Errorf("%s: tuned window divisor = %d, want 1 (narrower windows only add barriers)", m.Name, div)
		}

		parts, err := ByID("F28-parts", true)
		if err != nil {
			t.Fatal(err)
		}
		res, err = parts.Tune(m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if p := parts.Space.Int(res.Best.Point, "parts"); p <= 1 {
			t.Errorf("%s: tuned partition count %d, want > 1 (partitioning should beat the single heap)", m.Name, p)
		}
		serial, err := parts.Objective(m)(Point{0})
		if err != nil {
			t.Fatalf("%s serial point: %v", m.Name, err)
		}
		if res.Best.Cost.Seconds >= serial.Seconds {
			t.Errorf("%s: tuned cost %g no better than serial %g", m.Name, res.Best.Cost.Seconds, serial.Seconds)
		}
	}
}

// TestF29BucketShape checks the ladder bucket-width tunable on every
// preset: the modeled cost is unimodal along the divisor axis (the
// golden-section prerequisite), and the tuned point never loses to the
// engine's hard-coded Lookahead/4 default or to either axis extreme.
func TestF29BucketShape(t *testing.T) {
	for _, m := range machine.Presets() {
		tn, err := ByID("F29-bucket", true)
		if err != nil {
			t.Fatal(err)
		}
		obj := tn.Objective(m)
		costs := make([]float64, tn.Space.Axes()[0].Len())
		for i := range costs {
			c, err := obj(Point{i})
			if err != nil {
				t.Fatalf("%s point %d: %v", m.Name, i, err)
			}
			costs[i] = c.Seconds
		}
		rising := false
		for i := 1; i < len(costs); i++ {
			if costs[i] > costs[i-1] {
				rising = true
			} else if rising {
				t.Fatalf("%s: F29-bucket objective not unimodal: dips again at index %d (%v)", m.Name, i, costs)
			}
		}
		res, err := tn.Tune(m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		def, err := obj(tn.Default)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Cost.Seconds > def.Seconds {
			t.Errorf("%s: tuned bucket cost %g worse than default %g", m.Name, res.Best.Cost.Seconds, def.Seconds)
		}
		if res.Best.Cost.Seconds > costs[0] || res.Best.Cost.Seconds > costs[len(costs)-1] {
			t.Errorf("%s: tuned cost %g loses to an axis extreme (%g, %g)", m.Name, res.Best.Cost.Seconds, costs[0], costs[len(costs)-1])
		}
	}
}
