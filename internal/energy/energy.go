// Package energy provides joule accounting for the tenways modeled plane.
// A Meter accumulates energy by component (flops, each memory level,
// network, idle/static power) as cost-model code charges it; a Breakdown is
// the immutable result. The keynote's headline metric — how much science per
// joule — is computed by SciencePerJoule.
package energy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Component names used across the suite. Additional free-form components
// are allowed; these constants keep the common ones spelled consistently.
const (
	Flops   = "flops"
	DRAM    = "dram"
	Network = "network"
	Idle    = "idle"
	Static  = "static"
)

// Meter accumulates joules by component. It is safe for concurrent use, so
// the measured plane's workers and the DES's processes can share one.
type Meter struct {
	mu sync.Mutex
	j  map[string]float64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{j: make(map[string]float64)}
}

// Add charges joules to the named component. Negative charges are rejected
// with a panic: energy only accumulates, and a negative charge is always a
// cost-model bug.
func (m *Meter) Add(component string, joules float64) {
	if joules < 0 {
		panic(fmt.Sprintf("energy: negative charge %g to %q", joules, component))
	}
	m.mu.Lock()
	m.j[component] += joules
	m.mu.Unlock()
}

// AddMeter merges all of other's accumulated energy into m.
func (m *Meter) AddMeter(other *Meter) {
	ob := other.Breakdown()
	m.mu.Lock()
	for _, c := range ob.Components {
		m.j[c.Name] += c.Joules
	}
	m.mu.Unlock()
}

// Total returns the sum over all components.
func (m *Meter) Total() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := 0.0
	for _, v := range m.j {
		t += v
	}
	return t
}

// Reset clears all accumulated energy.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.j = make(map[string]float64)
	m.mu.Unlock()
}

// Breakdown returns an immutable snapshot sorted by descending joules
// (ties broken by name for determinism).
func (m *Meter) Breakdown() Breakdown {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := Breakdown{}
	for name, v := range m.j {
		b.Components = append(b.Components, ComponentJoules{Name: name, Joules: v})
		b.TotalJoules += v
	}
	sort.Slice(b.Components, func(i, k int) bool {
		ci, ck := b.Components[i], b.Components[k]
		if ci.Joules != ck.Joules {
			return ci.Joules > ck.Joules
		}
		return ci.Name < ck.Name
	})
	return b
}

// ComponentJoules is one component's share of a Breakdown.
type ComponentJoules struct {
	Name   string
	Joules float64
}

// Breakdown is a snapshot of a meter.
type Breakdown struct {
	TotalJoules float64
	Components  []ComponentJoules
}

// Joules returns the named component's energy, 0 if absent.
func (b Breakdown) Joules(component string) float64 {
	for _, c := range b.Components {
		if c.Name == component {
			return c.Joules
		}
	}
	return 0
}

// Fraction returns the named component's share of the total, 0 when the
// total is zero.
func (b Breakdown) Fraction(component string) float64 {
	if b.TotalJoules == 0 {
		return 0
	}
	return b.Joules(component) / b.TotalJoules
}

// String renders "total [name=x name=y ...]" with 4-significant-digit values.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%.4gJ [", b.TotalJoules)
	for i, c := range b.Components {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%.4g", c.Name, c.Joules)
	}
	sb.WriteString("]")
	return sb.String()
}

// EDP returns the energy–delay product, the classic combined metric for
// comparing designs that trade time against energy: joules × seconds.
// Lower is better; unlike joules alone it cannot be gamed by simply
// running slower at lower power.
func EDP(joules, seconds float64) float64 { return joules * seconds }

// SciencePerJoule is the keynote's integrated metric: units of useful work
// (application-defined "science", e.g. simulated timesteps, solved systems)
// per joule consumed. Returns 0 when joules is 0 to keep tables clean.
func SciencePerJoule(scienceUnits, joules float64) float64 {
	if joules == 0 {
		return 0
	}
	return scienceUnits / joules
}
