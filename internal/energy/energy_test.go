package energy

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestMeterAddAndTotal(t *testing.T) {
	m := NewMeter()
	m.Add(Flops, 1.5)
	m.Add(DRAM, 2.5)
	m.Add(Flops, 0.5)
	if got := m.Total(); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("total = %g", got)
	}
	b := m.Breakdown()
	if got := b.Joules(Flops); got != 2.0 {
		t.Fatalf("flops = %g", got)
	}
	if got := b.Joules("missing"); got != 0 {
		t.Fatalf("missing component = %g", got)
	}
}

func TestMeterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative charge")
		}
	}()
	NewMeter().Add(Flops, -1)
}

func TestBreakdownSortedDescending(t *testing.T) {
	m := NewMeter()
	m.Add("a", 1)
	m.Add("b", 3)
	m.Add("c", 2)
	b := m.Breakdown()
	if b.Components[0].Name != "b" || b.Components[1].Name != "c" || b.Components[2].Name != "a" {
		t.Fatalf("order = %+v", b.Components)
	}
}

func TestBreakdownTieBrokenByName(t *testing.T) {
	m := NewMeter()
	m.Add("z", 1)
	m.Add("a", 1)
	b := m.Breakdown()
	if b.Components[0].Name != "a" {
		t.Fatalf("tie order = %+v", b.Components)
	}
}

func TestFraction(t *testing.T) {
	m := NewMeter()
	m.Add(DRAM, 3)
	m.Add(Flops, 1)
	b := m.Breakdown()
	if got := b.Fraction(DRAM); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("fraction = %g", got)
	}
	var empty Breakdown
	if empty.Fraction(DRAM) != 0 {
		t.Fatal("empty fraction should be 0")
	}
}

func TestAddMeter(t *testing.T) {
	a := NewMeter()
	a.Add(Flops, 1)
	b := NewMeter()
	b.Add(Flops, 2)
	b.Add(Network, 5)
	a.AddMeter(b)
	bd := a.Breakdown()
	if bd.Joules(Flops) != 3 || bd.Joules(Network) != 5 {
		t.Fatalf("merged = %v", bd)
	}
}

func TestReset(t *testing.T) {
	m := NewMeter()
	m.Add(Idle, 9)
	m.Reset()
	if m.Total() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add(Flops, 0.001)
			}
		}()
	}
	wg.Wait()
	if got := m.Total(); math.Abs(got-8) > 1e-6 {
		t.Fatalf("concurrent total = %g", got)
	}
}

func TestString(t *testing.T) {
	m := NewMeter()
	m.Add(DRAM, 2)
	s := m.Breakdown().String()
	if !strings.Contains(s, "dram=2") || !strings.Contains(s, "2J") {
		t.Fatalf("string = %q", s)
	}
}

func TestSciencePerJoule(t *testing.T) {
	if got := SciencePerJoule(100, 4); got != 25 {
		t.Fatalf("got %g", got)
	}
	if got := SciencePerJoule(100, 0); got != 0 {
		t.Fatalf("zero joules: got %g", got)
	}
}

// Property: total equals sum of components, and merging meters is additive.
func TestMeterAdditivityProperty(t *testing.T) {
	f := func(charges []float64) bool {
		m := NewMeter()
		sum := 0.0
		for i, c := range charges {
			c = math.Abs(c)
			if math.IsNaN(c) || math.IsInf(c, 0) || c > 1e12 {
				continue
			}
			name := []string{Flops, DRAM, Network}[i%3]
			m.Add(name, c)
			sum += c
		}
		b := m.Breakdown()
		compSum := 0.0
		for _, c := range b.Components {
			compSum += c.Joules
		}
		return math.Abs(b.TotalJoules-sum) < 1e-6*(1+sum) &&
			math.Abs(compSum-sum) < 1e-6*(1+sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEDP(t *testing.T) {
	if got := EDP(10, 2); got != 20 {
		t.Fatalf("EDP = %g", got)
	}
	// EDP penalises slow-but-frugal the same as fast-but-hungry.
	if EDP(5, 4) != EDP(10, 2) {
		t.Fatal("EDP symmetry")
	}
}
