package core

// T12: the daemon measures itself. A deterministic closed-loop load
// generator (internal/serve/sim) replays wastelabd's request-path policies
// — result cache, request coalescing, bounded admission — in virtual time
// under bursty client arrivals, and the table shows how each policy layer
// moves the daemon's own waste modes: redundant evaluations (W2), worker
// idleness (W10), and unbounded queueing. The simulator shares the real
// internal/cache implementation the server mounts; only the clock is
// virtual, so a fixed seed reproduces the table byte for byte at any
// -parallel width.

import (
	"context"
	"strconv"

	"tenways/internal/report"
	"tenways/internal/serve/sim"
)

// t12Catalog builds the request population: a Zipf-ish popularity skew
// (few hot experiments, a long cool tail) over evaluations whose virtual
// service times grow down the tail.
func t12Catalog(n int) []sim.Job {
	jobs := make([]sim.Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, sim.Job{
			Key:     "exp-" + strconv.Itoa(i),
			Service: 0.25 + 0.05*float64(i),
			Weight:  1 / float64(i+1),
		})
	}
	return jobs
}

func runT12(ctx context.Context, cfg Config) (Output, error) {
	clients, requests, catalog := 48, 6000, 32
	if cfg.Quick {
		clients, requests, catalog = 16, 800, 12
	}
	base := sim.Config{
		Seed:       cfg.seed(),
		Clients:    clients,
		Requests:   requests,
		Workers:    4,
		QueueDepth: 8,
		Catalog:    t12Catalog(catalog),
		ThinkMean:  0.05,
		BurstFrac:  0.5,
	}

	// Policy ladder: each row switches one more of the daemon's remedies
	// on. "naive" queues deep with no reuse; the last row is wastelabd's
	// actual configuration.
	rows := []struct {
		label string
		mut   func(c sim.Config) sim.Config
	}{
		{"naive: no cache, no coalescing, deep queue", func(c sim.Config) sim.Config {
			c.QueueDepth = requests // effectively unbounded: queue, never shed
			return c
		}},
		{"+ result cache (1024 entries)", func(c sim.Config) sim.Config {
			c.QueueDepth = requests
			c.CacheSize = 1024
			return c
		}},
		{"+ request coalescing", func(c sim.Config) sim.Config {
			c.QueueDepth = requests
			c.CacheSize = 1024
			c.Coalesce = true
			return c
		}},
		{"+ bounded admission (shed past 8 waiters)", func(c sim.Config) sim.Config {
			c.CacheSize = 1024
			c.Coalesce = true
			return c
		}},
	}

	t := report.NewTable("T12",
		"wastelabd under closed-loop bursty load: each request-path policy layer vs the daemon's waste modes "+
			"(seed "+strconv.FormatUint(base.Seed, 10)+", "+
			strconv.Itoa(clients)+" clients, "+strconv.Itoa(requests)+" requests, "+
			strconv.Itoa(base.Workers)+" workers)",
		"daemon policy", "lab runs", "cache hit", "coalesced", "shed (429)",
		"mean queue wait", "worker idle", "served/s", "makespan")
	for _, row := range rows {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		st := sim.Simulate(row.mut(base))
		t.AddRow(
			row.label,
			strconv.Itoa(st.Runs),
			report.FormatG(100*st.HitRatio())+"%",
			strconv.Itoa(st.Coalesced),
			strconv.Itoa(st.Rejected),
			report.FormatSeconds(st.MeanWait()),
			report.FormatG(100*st.IdleFraction(base.Workers))+"%",
			report.FormatG(st.Throughput()),
			report.FormatSeconds(st.Makespan),
		)
	}
	return Output{Table: t}, nil
}
