package core

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// renderAll renders every non-Measured result keyed by ID — the byte-level
// fingerprint parallel runs must reproduce. Measured experiments (T10,
// F27) report host wall time, so their cells legitimately differ.
func renderAll(t *testing.T, results []RunResult) map[string]string {
	t.Helper()
	out := make(map[string]string, len(results))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		if r.Measured {
			continue
		}
		var sb strings.Builder
		if err := r.Output.Render(&sb); err != nil {
			t.Fatal(err)
		}
		out[r.ID] = sb.String()
	}
	return out
}

// TestRunAllParallelMatchesSerial is the suite's parallelism proof: eight
// workers over the full suite must produce byte-identical tables to the
// serial run. Run under -race this also exercises every experiment's
// shared-state discipline.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison is not -short material")
	}
	l := NewLab()
	cfg := Config{Quick: true}
	serial, err := l.RunAll(context.Background(), cfg, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := l.RunAll(context.Background(), cfg, RunOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, serial)
	got := renderAll(t, parallel)
	if len(got) != len(want) {
		t.Fatalf("parallel rendered %d experiments, serial %d", len(got), len(want))
	}
	for id, s := range want {
		if got[id] != s {
			t.Errorf("%s differs between serial and 8-worker runs:\nserial:\n%s\nparallel:\n%s", id, s, got[id])
		}
	}
	// Results must come back in registration order regardless of the
	// completion order, and every run must carry metrics.
	ids := l.IDs()
	for i, r := range parallel {
		if r.ID != ids[i] {
			t.Fatalf("results[%d] = %s, want %s", i, r.ID, ids[i])
		}
		if r.Metrics.Empty() {
			t.Errorf("%s: empty metrics snapshot", r.ID)
		}
		if r.Metrics.Counter("lab.runs") != 1 {
			t.Errorf("%s: lab.runs = %d, want 1", r.ID, r.Metrics.Counter("lab.runs"))
		}
	}
}

func TestRunAllSubsetAndOrder(t *testing.T) {
	l := NewLab()
	ids := []string{"F3", "T1", "T4"}
	results, err := l.RunAll(context.Background(), Config{Quick: true}, RunOptions{Workers: 2, IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d", len(results), len(ids))
	}
	for i, r := range results {
		if r.ID != ids[i] {
			t.Fatalf("results[%d] = %s, want %s (IDs order must be preserved)", i, r.ID, ids[i])
		}
		if r.Wall <= 0 {
			t.Errorf("%s: non-positive wall time", r.ID)
		}
	}
	if _, err := l.RunAll(context.Background(), Config{Quick: true}, RunOptions{IDs: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestRunAllOnResultStreamsInOrder(t *testing.T) {
	l := NewLab()
	ids := []string{"T4", "T1", "F16"}
	var mu sync.Mutex
	var seen []string
	_, err := l.RunAll(context.Background(), Config{Quick: true}, RunOptions{
		Workers: 3,
		IDs:     ids,
		OnResult: func(r RunResult) {
			mu.Lock()
			seen = append(seen, r.ID)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(seen, ",") != strings.Join(ids, ",") {
		t.Fatalf("OnResult order = %v, want %v", seen, ids)
	}
}

// TestRunAllFailSoft registers a panicking and a failing experiment in a
// private lab and checks the rest of the suite still completes.
func TestRunAllFailSoft(t *testing.T) {
	l := &Lab{byID: make(map[string]Experiment)}
	l.register(Experiment{ID: "OK", Title: "fine", Run: runT1})
	l.register(Experiment{ID: "BOOM", Title: "panics", Run: func(context.Context, Config) (Output, error) {
		panic("kaboom")
	}})
	l.register(Experiment{ID: "OK2", Title: "also fine", Run: runT2})
	results, err := l.RunAll(context.Background(), Config{Quick: true}, RunOptions{Workers: 2})
	if err == nil {
		t.Fatal("expected aggregate error")
	}
	if !strings.Contains(err.Error(), "BOOM") || strings.Contains(err.Error(), "OK2") {
		t.Fatalf("aggregate error should name only the failed id: %v", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy experiments failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", results[1].Err)
	}
	if results[1].Metrics.Counter("lab.failures") != 1 {
		t.Fatal("failure not counted in the experiment's metrics")
	}
}

func TestRunAllCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := NewLab().RunAll(ctx, Config{Quick: true}, RunOptions{Workers: 4, IDs: []string{"T1", "T2", "T3"}})
	if err == nil {
		t.Fatal("expected aggregate error under a cancelled context")
	}
	for _, r := range results {
		if r.Err == nil {
			t.Fatalf("%s ran under a cancelled context", r.ID)
		}
	}
}

func TestLabReportRoundTrip(t *testing.T) {
	l := NewLab()
	cfg := Config{Quick: true}
	results, err := l.RunAll(context.Background(), cfg, RunOptions{Workers: 2, IDs: []string{"T1", "F16"}})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewLabReport(cfg, 2, results)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back LabReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Machine != cfg.machine().Name || back.Workers != 2 || len(back.Results) != 2 {
		t.Fatalf("round trip lost identity: %+v", back)
	}
	for i, rec := range back.Results {
		if rec.ID != results[i].ID {
			t.Fatalf("record %d id = %s, want %s", i, rec.ID, results[i].ID)
		}
		if rec.WallMS <= 0 {
			t.Fatalf("%s: wall_ms = %g", rec.ID, rec.WallMS)
		}
		if rec.Metrics.Counter("lab.runs") != 1 {
			t.Fatalf("%s: metrics lost in round trip", rec.ID)
		}
	}
	if rt := back.Results[0].Table; rt == nil || len(rt.Rows) == 0 {
		t.Fatal("T1 table lost in round trip")
	}
	if fg := back.Results[1].Figure; fg == nil || len(fg.Series) == 0 {
		t.Fatal("F16 figure lost in round trip")
	}
	if ids := back.FailedIDs(); len(ids) != 0 {
		t.Fatalf("unexpected failures: %v", ids)
	}
}
