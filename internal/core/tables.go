package core

import (
	"context"

	"fmt"

	"tenways/internal/collective"
	"tenways/internal/energy"
	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pgas"
	"tenways/internal/report"
	"tenways/internal/roofline"
	"tenways/internal/waste"
)

// runT1 regenerates the headline table: every waste mode's time and energy
// factor on the configured machine.
func runT1(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	t := report.NewTable("T1",
		fmt.Sprintf("the ten ways on %s: wasteful vs remedied", spec.Name),
		"id", "waste", "t-wasteful", "t-remedied", "time-factor", "energy-factor", "note")
	for _, m := range waste.Modes() {
		out, err := m.Run(spec)
		if err != nil {
			return Output{}, fmt.Errorf("%s: %w", m.ID, err)
		}
		t.AddRow(
			m.ID,
			m.Name,
			report.FormatSeconds(out.Wasteful.Seconds),
			report.FormatSeconds(out.Remedied.Seconds),
			report.FormatFactor(out.TimeFactor()),
			report.FormatFactor(out.EnergyFactor()),
			out.Wasteful.Detail,
		)
	}
	return Output{Table: t}, nil
}

// runT2 regenerates the machine-balance table for all presets.
func runT2(context.Context, Config) (Output, error) {
	t := report.NewTable("T2", "machine balance across presets",
		"machine", "nodes", "cores/node", "GF/s node", "DRAM GB/s", "bytes/flop",
		"ridge AI", "pJ/flop", "DRAM pJ/B", "idle/busy", "alpha", "n1/2")
	for _, s := range machine.Presets() {
		t.AddRow(
			s.Name,
			fmt.Sprintf("%d", s.Nodes),
			fmt.Sprintf("%d", s.CoresPerNode),
			report.FormatG(s.PeakFlopsPerNode()/1e9),
			report.FormatG(s.DRAM.BytesPerSec/1e9),
			report.FormatG(s.MachineBalance()),
			report.FormatG(s.RidgeIntensity()),
			report.FormatG(s.PJPerFlop),
			report.FormatG(s.DRAM.PJPerByte),
			report.FormatG(s.Power.IdleWatts/s.Power.BusyWatts),
			report.FormatSeconds(s.Net.AlphaSec),
			report.FormatBytes(s.HalfBandwidthBytes()),
		)
	}
	return Output{Table: t}, nil
}

// barrierTime runs one barrier collective on p simulated ranks.
func barrierTime(reg *obs.Registry, spec *machine.Spec, p int, bar func(*collective.Comm)) (float64, error) {
	w := pgas.NewWorld(p, spec, nil, nil)
	w.SetObs(reg)
	return w.Run(func(r *pgas.Rank) { bar(collective.New(r)) })
}

// allreduceTime runs one allreduce of m words on p simulated ranks,
// dispatching the algorithm by name through the same table the T3 tunable
// searches.
func allreduceTime(reg *obs.Registry, spec *machine.Spec, p, m int, alg string) (float64, error) {
	w := pgas.NewWorld(p, spec, nil, nil)
	w.SetObs(reg)
	x := make([]float64, m)
	var innerErr error
	end, err := w.Run(func(r *pgas.Rank) {
		c := collective.New(r)
		if _, e := c.AllreduceByName(alg, x, collective.Sum); e != nil && r.ID() == 0 {
			innerErr = e
		}
	})
	if err != nil {
		return 0, err
	}
	return end, innerErr
}

// runT3 regenerates the collective-algorithm comparison.
func runT3(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	ps := []int{4, 16, 64, 256}
	if cfg.Quick {
		ps = []int{4, 16, 64}
	}
	headers := []string{"operation"}
	for _, p := range ps {
		headers = append(headers, fmt.Sprintf("P=%d", p))
	}
	t := report.NewTable("T3",
		fmt.Sprintf("modeled collective latency on %s", spec.Name), headers...)

	barriers := []struct {
		name string
		fn   func(*collective.Comm)
	}{
		{"barrier central", (*collective.Comm).BarrierCentral},
		{"barrier dissemination", (*collective.Comm).BarrierDissemination},
		{"barrier tree", (*collective.Comm).BarrierTree},
	}
	for _, b := range barriers {
		row := []string{b.name}
		for _, p := range ps {
			secs, err := barrierTime(cfg.metrics(), spec, p, b.fn)
			if err != nil {
				return Output{}, err
			}
			row = append(row, report.FormatSeconds(secs))
		}
		t.AddRow(row...)
	}
	for _, size := range []struct {
		label string
		words int
	}{{"allreduce 8B", 1}, {"allreduce 128KiB", 16384}} {
		for _, alg := range []string{"flat", "rdouble", "ring"} {
			row := []string{fmt.Sprintf("%s %s", size.label, alg)}
			for _, p := range ps {
				secs, err := allreduceTime(cfg.metrics(), spec, p, size.words, alg)
				if err != nil {
					return Output{}, err
				}
				row = append(row, report.FormatSeconds(secs))
			}
			t.AddRow(row...)
		}
	}
	return Output{Table: t}, nil
}

// kernelIntensities lists the T4/F8 kernels with their per-byte flop
// intensities (standard streaming models, 8-byte words).
func kernelIntensities() []struct {
	Name string
	AI   float64
} {
	fftN := 1 << 20
	nbodyN := 4096
	return []struct {
		Name string
		AI   float64
	}{
		{"stream triad", kernels.TriadFlops(1) / kernels.TriadBytes(1)},
		{"dot product", kernels.DotFlops(1) / kernels.DotBytes(1)},
		{"spmv (csr)", kernels.SpMVFlops(1) / kernels.SpMVBytes(1)},
		{"jacobi 2d", kernels.Jacobi2DFlops(1024) / kernels.Jacobi2DBytes(1024)},
		{"fft 1M", kernels.FFTFlops(fftN) / firstOf(kernels.FFTBytes(fftN, 3<<20))},
		{"matmul blocked b=64", 2 * 64 / 8.0 / 3}, // 2b flops per 24 bytes streamed per block row
		{"n-body direct 4k", kernels.NBodyIntensity(nbodyN)},
	}
}

func firstOf(a, _ float64) float64 { return a }

// runT4 regenerates the kernel roofline table.
func runT4(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	t := report.NewTable("T4",
		fmt.Sprintf("kernel arithmetic intensity and roofline bound on %s (ridge %.2f flops/byte)",
			spec.Name, spec.RidgeIntensity()),
		"kernel", "AI flops/byte", "attainable GF/s", "% of peak", "bound")
	for _, k := range kernelIntensities() {
		p := roofline.Classify(spec, k.Name, k.AI)
		t.AddRow(
			k.Name,
			report.FormatG(k.AI),
			report.FormatG(p.Attainable/1e9),
			fmt.Sprintf("%.1f%%", 100*roofline.Efficiency(spec, k.AI)),
			p.Bound,
		)
	}
	return Output{Table: t}, nil
}

// runT5 regenerates the science-per-joule table: the integrated stencil on
// every machine preset, wasteful stack versus remedied stack.
func runT5(ctx context.Context, cfg Config) (Output, error) {
	p, gridN, steps := 32, 2048, 10
	if cfg.Quick {
		p, gridN, steps = 8, 512, 5
	}
	t := report.NewTable("T5",
		fmt.Sprintf("stencil science per joule (%d ranks, %d^2 grid, %d steps)", p, gridN, steps),
		"machine", "stack", "time", "energy", "EDP", "steps/J", "improvement")
	for _, spec := range machine.Presets() {
		w, err := stencilCampaign(cfg.metrics(), spec, p, gridN, steps, true)
		if err != nil {
			return Output{}, err
		}
		r, err := stencilCampaign(cfg.metrics(), spec, p, gridN, steps, false)
		if err != nil {
			return Output{}, err
		}
		t.AddRow(spec.Name, "wasteful",
			report.FormatSeconds(w.Seconds), report.FormatJoules(w.Joules),
			report.FormatG(energy.EDP(w.Joules, w.Seconds)),
			report.FormatG(w.StepsPerJoule()), "")
		t.AddRow(spec.Name, "remedied",
			report.FormatSeconds(r.Seconds), report.FormatJoules(r.Joules),
			report.FormatG(energy.EDP(r.Joules, r.Seconds)),
			report.FormatG(r.StepsPerJoule()),
			report.FormatFactor(energy.SciencePerJoule(float64(r.Steps), r.Joules)/
				energy.SciencePerJoule(float64(w.Steps), w.Joules)))
	}
	return Output{Table: t}, nil
}
