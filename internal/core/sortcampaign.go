package core

import (
	"context"

	"fmt"
	"math"
	"sort"

	"tenways/internal/collective"
	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pgas"
	"tenways/internal/report"
	"tenways/internal/workload"
)

// SortResult is the outcome of one distributed-sort campaign.
type SortResult struct {
	Seconds   float64
	Joules    float64
	Keys      int
	WireBytes int64
	Messages  int64
}

// KeysPerJoule returns the campaign's science-per-joule metric.
func (r SortResult) KeysPerJoule() float64 {
	if r.Joules == 0 {
		return 0
	}
	return float64(r.Keys) / r.Joules
}

// SortCampaign simulates a distributed sample sort of perRank keys per
// rank on p ranks: local sort, splitter broadcast, all-to-all personalised
// key exchange, local merge. Real keys move through the simulated network
// and global sortedness is verified, so the campaign is a correctness test
// of the whole pgas/collective stack as well as a cost model.
//
// The wasteful stack broadcasts splitters flat from rank 0, exchanges keys
// in 32-word chunks (W7), and central-barriers between phases (W3); the
// remedied stack uses the binomial broadcast, bulk exchange, and no extra
// barriers.
func SortCampaign(spec *machine.Spec, p, perRank int, wasteful bool) (SortResult, error) {
	return sortCampaign(obs.Default(), spec, p, perRank, wasteful)
}

func sortCampaign(reg *obs.Registry, spec *machine.Spec, p, perRank int, wasteful bool) (SortResult, error) {
	w := pgas.NewWorld(p, spec, nil, nil)
	w.SetObs(reg)
	var firstErr error
	results := make([][]float64, p)
	makespan, err := w.Run(func(r *pgas.Rank) {
		c := collective.New(r)
		me := r.ID()
		rng := workload.NewRand(uint64(me)*0x9e3779b9 + 2009)
		keys := make([]float64, perRank)
		for i := range keys {
			keys[i] = rng.Float64()
		}
		// Phase 1: local sort.
		sort.Float64s(keys)
		r.Compute(kernels.SortFlopsApprox(perRank), float64(16*perRank))
		if wasteful {
			c.BarrierCentral()
		}
		// Phase 2: splitters. Rank 0 proposes uniform splitters (its view
		// of a sorted sample); everyone receives them.
		var splitters []float64
		if me == 0 {
			splitters = make([]float64, p-1)
			for i := range splitters {
				splitters[i] = float64(i+1) / float64(p)
			}
		} else {
			splitters = make([]float64, p-1)
		}
		if wasteful {
			splitters = c.BroadcastFlat(splitters)
			c.BarrierCentral()
		} else {
			splitters = c.BroadcastTree(splitters)
		}
		// Phase 3: partition and exchange.
		blocks := make([][]float64, p)
		for _, k := range keys {
			d := sort.SearchFloat64s(splitters, k)
			blocks[d] = append(blocks[d], k)
		}
		r.Compute(float64(perRank)*math.Log2(float64(p)+1), float64(8*perRank))
		chunk := 0
		if wasteful {
			chunk = 32
		}
		recv := c.AlltoallPersonalized(blocks, chunk)
		if wasteful {
			c.BarrierCentral()
		}
		// Phase 4: local merge.
		total := 0
		for _, b := range recv {
			total += len(b)
		}
		mine := make([]float64, 0, total)
		for _, b := range recv {
			mine = append(mine, b...)
		}
		sort.Float64s(mine)
		r.Compute(kernels.SortFlopsApprox(len(mine)), float64(16*len(mine)))
		results[me] = mine
	})
	if err != nil {
		return SortResult{}, err
	}
	// Verify global sortedness and conservation.
	total := 0
	last := -1.0
	for i := 0; i < p; i++ {
		for _, v := range results[i] {
			if v < last {
				firstErr = fmt.Errorf("core: sort campaign order violated at rank %d", i)
			}
			last = v
			total++
		}
	}
	if total != p*perRank {
		firstErr = fmt.Errorf("core: sort campaign lost keys: %d of %d", total, p*perRank)
	}
	if firstErr != nil {
		return SortResult{}, firstErr
	}
	st := w.Stats()
	return SortResult{
		Seconds:   makespan,
		Joules:    w.Meter().Total(),
		Keys:      total,
		WireBytes: st.BytesSent,
		Messages:  st.Messages,
	}, nil
}

// runF18 sweeps rank count for the distributed sort, wasteful versus
// remedied stack.
func runF18(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	perRank := 2048
	ps := []int{2, 4, 8, 16, 32}
	if cfg.Quick {
		perRank = 256
		ps = []int{2, 8}
	}
	f := report.NewFigure("F18",
		fmt.Sprintf("distributed sample sort of %d keys/rank vs ranks", perRank),
		"ranks", "seconds / keys-per-joule")
	for _, p := range ps {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		f.Xs = append(f.Xs, float64(p))
	}
	var wasteful, remedied, keysJW, keysJR []float64
	for _, p := range ps {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		wres, err := sortCampaign(cfg.metrics(), spec, p, perRank, true)
		if err != nil {
			return Output{}, err
		}
		rres, err := sortCampaign(cfg.metrics(), spec, p, perRank, false)
		if err != nil {
			return Output{}, err
		}
		wasteful = append(wasteful, wres.Seconds)
		remedied = append(remedied, rres.Seconds)
		keysJW = append(keysJW, wres.KeysPerJoule())
		keysJR = append(keysJR, rres.KeysPerJoule())
	}
	f.AddSeries("wasteful-seconds", wasteful)
	f.AddSeries("remedied-seconds", remedied)
	f.AddSeries("wasteful-keys/J", keysJW)
	f.AddSeries("remedied-keys/J", keysJR)
	return Output{Figure: f}, nil
}
