package core

import (
	"context"

	"fmt"

	"tenways/internal/collective"
	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pgas"
	"tenways/internal/report"
	"tenways/internal/workload"
)

// BFSResult is the outcome of one distributed BFS campaign.
type BFSResult struct {
	Seconds   float64
	Joules    float64
	Edges     int
	Levels    int
	WireBytes int64
}

// TEPS returns traversed edges per second, the Graph500 metric.
func (r BFSResult) TEPS() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.Edges) / r.Seconds
}

// BFSCampaign simulates a level-synchronous distributed breadth-first
// search of an R-MAT graph block-partitioned over p ranks, from vertex 0.
// Each level every rank expands its local slice of the frontier, sends
// discovered vertices to their owners via an all-to-all personalised
// exchange, and the ranks agree on termination with an allreduce of the
// next frontier's size. Real vertex ids move through the simulated
// network; the resulting distance vector is verified against the
// sequential reference, so this campaign is an end-to-end correctness test
// of pgas + collective under an irregular workload.
//
// The wasteful stack chunks the exchange into 16-word messages (W7), uses
// the flat allreduce (serialised at rank 0), and inserts a central barrier
// per level (W3); the remedied stack sends bulk and uses recursive
// doubling with no extra barrier (p must be a power of two for it).
func BFSCampaign(spec *machine.Spec, p int, g *workload.Graph, wasteful bool) (BFSResult, error) {
	return bfsCampaign(obs.Default(), spec, p, g, wasteful)
}

func bfsCampaign(reg *obs.Registry, spec *machine.Spec, p int, g *workload.Graph, wasteful bool) (BFSResult, error) {
	if !wasteful && p&(p-1) != 0 {
		return BFSResult{}, fmt.Errorf("core: remedied BFS needs power-of-two ranks, got %d", p)
	}
	n := g.N
	if n%p != 0 {
		// The floor-arithmetic owner map is only consistent with the block
		// bounds when the partition is exact.
		return BFSResult{}, fmt.Errorf("core: BFS needs p (%d) to divide the vertex count (%d)", p, n)
	}
	owner := func(v int) int { return v * p / n }
	lo := func(rk int) int { return rk * n / p }

	w := pgas.NewWorld(p, spec, nil, nil)
	w.SetObs(reg)
	dist := make([][]int, p) // per-rank local distance slices
	levels := 0
	var innerErr error
	makespan, err := w.Run(func(r *pgas.Rank) {
		c := collective.New(r)
		me := r.ID()
		myLo, myHi := lo(me), lo(me+1)
		local := make([]int, myHi-myLo)
		for i := range local {
			local[i] = -1
		}
		var frontier []int // local vertices in the current level
		if owner(0) == me {
			local[0-myLo] = 0
			frontier = append(frontier, 0)
		}
		for level := 1; ; level++ {
			// Expand: bucket discovered neighbours by owner.
			blocks := make([][]float64, p)
			edges := 0
			for _, u := range frontier {
				for _, v := range g.Adj[u] {
					blocks[owner(v)] = append(blocks[owner(v)], float64(v))
					edges++
				}
			}
			r.Compute(float64(4*edges+8*len(frontier)), float64(16*edges))
			chunk := 0
			if wasteful {
				chunk = 16
			}
			recv := c.AlltoallPersonalized(blocks, chunk)
			// Absorb: claim unvisited local vertices.
			frontier = frontier[:0]
			for _, blk := range recv {
				for _, fv := range blk {
					v := int(fv)
					if local[v-myLo] == -1 {
						local[v-myLo] = level
						frontier = append(frontier, v)
					}
				}
			}
			r.Compute(float64(4*len(frontier)+1), float64(8*len(frontier)))
			// Terminate when the global frontier is empty.
			count := []float64{float64(len(frontier))}
			if wasteful {
				count = c.AllreduceFlat(count, collective.Sum)
				c.BarrierCentral()
			} else {
				out, err := c.AllreduceRecursiveDoubling(count, collective.Sum)
				if err != nil {
					innerErr = err
					return
				}
				count = out
			}
			if count[0] == 0 {
				if me == 0 {
					levels = level
				}
				break
			}
		}
		dist[me] = local
	})
	if err != nil {
		return BFSResult{}, err
	}
	if innerErr != nil {
		return BFSResult{}, innerErr
	}
	// Verify against the sequential reference.
	want := kernels.BFS(g, 0)
	reached := 0
	for rk := 0; rk < p; rk++ {
		base := lo(rk)
		for i, d := range dist[rk] {
			if d != want[base+i] {
				return BFSResult{}, fmt.Errorf("core: BFS mismatch at vertex %d: %d vs %d",
					base+i, d, want[base+i])
			}
			if d >= 0 {
				reached++
			}
		}
	}
	_ = reached
	st := w.Stats()
	return BFSResult{
		Seconds:   makespan,
		Joules:    w.Meter().Total(),
		Edges:     g.NumEdges(),
		Levels:    levels,
		WireBytes: st.BytesSent,
	}, nil
}

// runF21 sweeps rank count for the distributed BFS on an R-MAT graph.
func runF21(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	scale, edgeFactor := 12, 8
	ps := []int{2, 4, 8, 16, 32}
	if cfg.Quick {
		scale = 9
		ps = []int{2, 8}
	}
	g := workload.RMAT(2009, scale, edgeFactor)
	f := report.NewFigure("F21",
		fmt.Sprintf("distributed BFS on R-MAT scale %d (%d edges) vs ranks", scale, g.NumEdges()),
		"ranks", "seconds / MTEPS")
	var wSecs, rSecs, wTeps, rTeps []float64
	for _, p := range ps {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		f.Xs = append(f.Xs, float64(p))
		wres, err := bfsCampaign(cfg.metrics(), spec, p, g, true)
		if err != nil {
			return Output{}, err
		}
		rres, err := bfsCampaign(cfg.metrics(), spec, p, g, false)
		if err != nil {
			return Output{}, err
		}
		wSecs = append(wSecs, wres.Seconds)
		rSecs = append(rSecs, rres.Seconds)
		wTeps = append(wTeps, wres.TEPS()/1e6)
		rTeps = append(rTeps, rres.TEPS()/1e6)
	}
	f.AddSeries("wasteful-seconds", wSecs)
	f.AddSeries("remedied-seconds", rSecs)
	f.AddSeries("wasteful-MTEPS", wTeps)
	f.AddSeries("remedied-MTEPS", rTeps)
	return Output{Figure: f}, nil
}
