package core

import (
	"bytes"
	"testing"

	"tenways/internal/obs"
	"tenways/internal/pdes"
)

// TestF28ByteIdenticalAcrossEngineConfigs renders F28 under several engine
// partition/worker counts and requires byte-identical output: the whole
// point of the conservative engine is that parallelism is invisible in the
// virtual results.
func TestF28ByteIdenticalAcrossEngineConfigs(t *testing.T) {
	orig := f28Engine
	defer func() { f28Engine = orig }()

	lab := NewLab()
	render := func(cfg pdes.Config) string {
		t.Helper()
		f28Engine = cfg
		out, err := lab.Run("F28", Config{Quick: true, Obs: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("F28 with parts=%d workers=%d: %v", cfg.Partitions, cfg.Workers, err)
		}
		var buf bytes.Buffer
		if err := out.Render(&buf); err != nil {
			t.Fatalf("render: %v", err)
		}
		return buf.String()
	}

	base := render(pdes.Config{Partitions: 1, Workers: 1})
	if base == "" {
		t.Fatal("F28 rendered nothing")
	}
	for _, cfg := range []pdes.Config{
		{Partitions: 8, Workers: 8},
		{Partitions: 5, Workers: 3},
		{Partitions: 64, Workers: 2},
		{Partitions: 8, Workers: 8, Sync: pdes.SyncOptimistic},
	} {
		if got := render(cfg); got != base {
			t.Errorf("parts=%d workers=%d sync=%v output differs from serial baseline:\n%s\n--- baseline ---\n%s",
				cfg.Partitions, cfg.Workers, cfg.Sync, got, base)
		}
	}
}

// TestF30SpeculationObserved runs the Time-Warp experiment in quick mode:
// runF30 itself enforces the contract (byte-identical committed results
// per regime, rollbacks in at least one spiked regime), so the test mainly
// asserts those checks trip on nothing and the table carries every regime.
func TestF30SpeculationObserved(t *testing.T) {
	lab := NewLab()
	out, err := lab.Run("F30", Config{Quick: true, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("F30: %v", err)
	}
	if out.Table == nil {
		t.Fatal("F30 produced no table")
	}
	if got := len(out.Table.Rows); got != 5 {
		t.Fatalf("F30 table has %d rows, want 5 regimes", got)
	}
	var buf bytes.Buffer
	if err := out.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
}
