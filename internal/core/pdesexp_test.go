package core

import (
	"bytes"
	"testing"

	"tenways/internal/obs"
	"tenways/internal/pdes"
)

// TestF28ByteIdenticalAcrossEngineConfigs renders F28 under several engine
// partition/worker counts and requires byte-identical output: the whole
// point of the conservative engine is that parallelism is invisible in the
// virtual results.
func TestF28ByteIdenticalAcrossEngineConfigs(t *testing.T) {
	orig := f28Engine
	defer func() { f28Engine = orig }()

	lab := NewLab()
	render := func(cfg pdes.Config) string {
		t.Helper()
		f28Engine = cfg
		out, err := lab.Run("F28", Config{Quick: true, Obs: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("F28 with parts=%d workers=%d: %v", cfg.Partitions, cfg.Workers, err)
		}
		var buf bytes.Buffer
		if err := out.Render(&buf); err != nil {
			t.Fatalf("render: %v", err)
		}
		return buf.String()
	}

	base := render(pdes.Config{Partitions: 1, Workers: 1})
	if base == "" {
		t.Fatal("F28 rendered nothing")
	}
	for _, cfg := range []pdes.Config{
		{Partitions: 8, Workers: 8},
		{Partitions: 5, Workers: 3},
		{Partitions: 64, Workers: 2},
	} {
		if got := render(cfg); got != base {
			t.Errorf("parts=%d workers=%d output differs from serial baseline:\n%s\n--- baseline ---\n%s",
				cfg.Partitions, cfg.Workers, got, base)
		}
	}
}
