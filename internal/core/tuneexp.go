package core

import (
	"context"

	"fmt"

	"tenways/internal/machine"
	"tenways/internal/report"
	"tenways/internal/tune"
)

// The tuning experiments (T9, F26) evaluate the internal/tune subsystem:
// does searching the remedy-parameter spaces actually beat the hand-picked
// constants the suite used to hard-code, and how fast do the strategies
// converge?

// runT9 tabulates, for every registered tunable on every machine preset,
// the modeled cost at the hand-picked default, at the tuner's choice, and
// at the exhaustive-grid oracle. The tuned column never loses to the
// default (the default is seeded into every search) and should sit within
// a few percent of the oracle at a fraction of its evaluations.
func runT9(ctx context.Context, cfg Config) (Output, error) {
	machines := tableMachines(cfg)
	tbl := report.NewTable("T9",
		"autotuned remedy parameters: modeled cost at default vs tuned vs exhaustive oracle",
		"tunable", "machine", "default", "tuned", "default cost", "tuned cost", "oracle cost", "evals", "saving")
	cache := tune.NewCache()
	for _, tn := range tune.Tunables(cfg.Quick) {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		for _, m := range machines {
			def, err := tn.Objective(m)(tn.Default)
			if err != nil {
				return Output{}, err
			}
			tuned, err := tn.Tune(m, tune.Options{Cache: cache, Obs: cfg.metrics()})
			if err != nil {
				return Output{}, err
			}
			oracle, err := tn.Tune(m, tune.Options{Strategy: tune.Grid{}, Cache: cache, Obs: cfg.metrics()})
			if err != nil {
				return Output{}, err
			}
			saving := 0.0
			if def.Seconds > 0 {
				saving = 1 - tuned.Best.Cost.Seconds/def.Seconds
			}
			tbl.AddRow(tn.ID, m.Name,
				tn.DefaultLabel(), tn.Space.Describe(tuned.Best.Point),
				report.FormatSeconds(def.Seconds),
				report.FormatSeconds(tuned.Best.Cost.Seconds),
				report.FormatSeconds(oracle.Best.Cost.Seconds),
				fmt.Sprintf("%d", tuned.Evaluations),
				fmt.Sprintf("%.1f%%", 100*saving))
		}
	}
	return Output{Table: tbl}, nil
}

// tableMachines picks the presets T9 sweeps: all of them, or just the
// configured machine in quick mode.
func tableMachines(cfg Config) []*machine.Spec {
	if cfg.Quick {
		return []*machine.Spec{cfg.machine()}
	}
	return machine.Presets()
}

// runF26 plots tuner convergence on the checkpoint-interval tunable (the
// largest single-axis space): best-so-far modeled cost against evaluation
// count, one series per strategy. Golden-section reaches the grid's floor
// in O(log range) evaluations; hill climbing sits in between.
func runF26(ctx context.Context, cfg Config) (Output, error) {
	m := cfg.machine()
	tn, err := tune.ByID("F25-interval", cfg.Quick)
	if err != nil {
		return Output{}, err
	}
	strategies := []tune.Strategy{tune.Grid{}, tune.GoldenSection{}, tune.HillClimb{Restarts: 3}}
	f := report.NewFigure("F26",
		fmt.Sprintf("tuner convergence on %s (%s, machine %s)", tn.ID, tn.Title, m.Name),
		"evaluations", "best-so-far cost (ms)")
	var curves [][]float64
	maxLen := 0
	for _, s := range strategies {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		// Fresh cache per strategy: each pays for its own evaluations.
		res, err := tn.Tune(m, tune.Options{Strategy: s, Cache: tune.NewCache(), Obs: cfg.metrics()})
		if err != nil {
			return Output{}, err
		}
		curve := res.BestSoFar()
		curves = append(curves, curve)
		if len(curve) > maxLen {
			maxLen = len(curve)
		}
	}
	for i := 1; i <= maxLen; i++ {
		f.Xs = append(f.Xs, float64(i))
	}
	for i, s := range strategies {
		curve := curves[i]
		ys := make([]float64, maxLen)
		for j := 0; j < maxLen; j++ {
			// A strategy that already stopped holds its final best.
			k := j
			if k >= len(curve) {
				k = len(curve) - 1
			}
			ys[j] = curve[k] * 1e3
		}
		f.AddSeries(fmt.Sprintf("%s (%d evals)", s.Name(), len(curve)), ys)
	}
	return Output{Figure: f}, nil
}
