package core

import (
	"context"

	"fmt"

	"tenways/internal/collective"
	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pgas"
	"tenways/internal/report"
)

// CGCampaignResult is the outcome of one modeled distributed CG run.
type CGCampaignResult struct {
	Seconds    float64
	Joules     float64
	Iterations int
	Allreduces int64
}

// SecondsPerIteration returns the average modeled iteration time.
func (r CGCampaignResult) SecondsPerIteration() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return r.Seconds / float64(r.Iterations)
}

// CGCampaign models `iters` iterations of distributed conjugate gradient
// on a gridN×gridN Laplacian, row-block decomposed over p ranks (power of
// two): per iteration a halo exchange feeds the SpMV and the two inner
// products cost allreduces. sStep > 1 selects the communication-avoiding
// s-step formulation: one allreduce round (of 2·s fused scalars) every
// sStep iterations, at ~1.5× the local flops — Yelick's communication-
// avoiding Krylov trade, which wins once allreduce latency dominates.
func CGCampaign(spec *machine.Spec, p, gridN, iters, sStep int) (CGCampaignResult, error) {
	return cgCampaign(obs.Default(), spec, p, gridN, iters, sStep)
}

func cgCampaign(reg *obs.Registry, spec *machine.Spec, p, gridN, iters, sStep int) (CGCampaignResult, error) {
	if p&(p-1) != 0 {
		return CGCampaignResult{}, fmt.Errorf("core: CGCampaign needs power-of-two ranks, got %d", p)
	}
	if sStep < 1 {
		sStep = 1
	}
	model := kernels.CGCommModel{GridN: gridN, P: p, S: sStep}
	words := model.HaloWordsPerIteration() / 2
	if words == 0 {
		words = 1
	}
	w := pgas.NewWorld(p, spec, nil, nil)
	w.SetObs(reg)
	w.Alloc("halo", 2*words)
	buf := make([]float64, words)
	scalars := make([]float64, 2*sStep)
	var innerErr error
	makespan, err := w.Run(func(r *pgas.Rank) {
		c := collective.New(r)
		id := r.ID()
		var synced int64
		for it := 0; it < iters; it++ {
			// Halo exchange for the SpMV.
			expect := int64(0)
			if id > 0 {
				r.PutSignal(id-1, "halo", words, buf, "halo")
				expect++
			}
			if id < p-1 {
				r.PutSignal(id+1, "halo", 0, buf, "halo")
				expect++
			}
			synced += expect
			// Local SpMV + vector ops overlap the halo's flight.
			r.Compute(model.FlopsPerIteration(), model.FlopsPerIteration()*1.2)
			r.WaitSignal("halo", synced)
			// Inner products: standard CG reduces twice per iteration;
			// s-step fuses 2·s scalars into one round every s iterations.
			if sStep == 1 {
				for k := 0; k < 2; k++ {
					if _, err := c.AllreduceRecursiveDoubling(scalars[:1], collective.Sum); err != nil {
						innerErr = err
						return
					}
				}
			} else if (it+1)%sStep == 0 {
				if _, err := c.AllreduceRecursiveDoubling(scalars, collective.Sum); err != nil {
					innerErr = err
					return
				}
			}
		}
	})
	if err != nil {
		return CGCampaignResult{}, err
	}
	if innerErr != nil {
		return CGCampaignResult{}, innerErr
	}
	return CGCampaignResult{
		Seconds:    makespan,
		Joules:     w.Meter().Total(),
		Iterations: iters,
		Allreduces: w.Stats().Sends, // every allreduce message is a Send
	}, nil
}

// runF19 sweeps rank count for standard versus s-step CG.
func runF19(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	gridN, iters := 2048, 20
	ps := []int{2, 4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		gridN, iters = 512, 8
		ps = []int{2, 8, 32}
	}
	f := report.NewFigure("F19",
		fmt.Sprintf("distributed CG on a %d^2 Laplacian: time/iteration vs ranks", gridN),
		"ranks", "seconds-per-iteration")
	var std, ca []float64
	for _, p := range ps {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		f.Xs = append(f.Xs, float64(p))
		s, err := cgCampaign(cfg.metrics(), spec, p, gridN, iters, 1)
		if err != nil {
			return Output{}, err
		}
		c, err := cgCampaign(cfg.metrics(), spec, p, gridN, iters, 4)
		if err != nil {
			return Output{}, err
		}
		std = append(std, s.SecondsPerIteration())
		ca = append(ca, c.SecondsPerIteration())
	}
	f.AddSeries("standard-cg", std)
	f.AddSeries("s-step-cg-s4", ca)
	return Output{Figure: f}, nil
}
