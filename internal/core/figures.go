package core

import (
	"context"

	"fmt"

	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/report"
	"tenways/internal/roofline"
	"tenways/internal/waste"
)

// runF1 sweeps the matmul block size through the cache simulator.
func runF1(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	n := 96
	blocks := []int{4, 8, 16, 32, 48, 96}
	if cfg.Quick {
		n = 48
		blocks = []int{4, 16, 48}
	}
	f := report.NewFigure("F1",
		fmt.Sprintf("matmul n=%d: traffic and time vs block size on %s", n, spec.Name),
		"block", "seconds / MiB")
	var times, traffic []float64
	for _, b := range blocks {
		f.Xs = append(f.Xs, float64(b))
		res, dram, err := waste.MatmulLocality(spec, n, b)
		if err != nil {
			return Output{}, err
		}
		times = append(times, res.Seconds)
		traffic = append(traffic, float64(dram)/(1<<20))
	}
	f.AddSeries("modeled-seconds", times)
	f.AddSeries("dram-MiB", traffic)
	return Output{Figure: f}, nil
}

// runF2 sweeps the redundant-transfer factor of the halo exchange.
func runF2(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	p, gridN, steps := 16, 1024, 10
	if cfg.Quick {
		p, gridN, steps = 8, 256, 5
	}
	factors := []int{1, 2, 4, 8, 16, 32}
	f := report.NewFigure("F2",
		fmt.Sprintf("halo exchange on %d ranks: cost vs redundant-transfer factor", p),
		"resend-factor", "seconds / MiB")
	var times, wire []float64
	base := kernels.HaloModel{N: gridN, P: p}.HaloWords() / 2
	for _, k := range factors {
		f.Xs = append(f.Xs, float64(k))
		res, bytes, err := waste.HaloExchange(spec, p, gridN, steps, base*k)
		if err != nil {
			return Output{}, err
		}
		times = append(times, res.Seconds)
		wire = append(wire, float64(bytes)/(1<<20))
	}
	f.AddSeries("modeled-seconds", times)
	f.AddSeries("wire-MiB", wire)
	return Output{Figure: f}, nil
}

// runF3 sweeps rank count for global-barrier vs neighbour synchronisation.
func runF3(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	ps := []int{4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		ps = []int{4, 16, 64}
	}
	f := report.NewFigure("F3", "substep sync cost vs ranks", "ranks", "seconds")
	var global, neighbour []float64
	for _, p := range ps {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		f.Xs = append(f.Xs, float64(p))
		g, err := waste.OversyncSweep(spec, p, 5, 4, true)
		if err != nil {
			return Output{}, err
		}
		n, err := waste.OversyncSweep(spec, p, 5, 4, false)
		if err != nil {
			return Output{}, err
		}
		global = append(global, g.Seconds)
		neighbour = append(neighbour, n.Seconds)
	}
	f.AddSeries("global-barrier", global)
	f.AddSeries("neighbour-sync", neighbour)
	return Output{Figure: f}, nil
}

// runF4 sweeps the Zipf skew exponent for static vs dynamic scheduling.
func runF4(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	skews := []float64{0, 0.4, 0.8, 1.2, 1.6, 2.0}
	f := report.NewFigure("F4", "parallel efficiency vs task-cost skew (16 workers)",
		"zipf-exponent", "efficiency")
	var static, dynamic []float64
	for _, s := range skews {
		f.Xs = append(f.Xs, s)
		out, err := waste.Imbalance(spec, 16, s)
		if err != nil {
			return Output{}, err
		}
		// Efficiency = ideal/actual; ideal is the dynamic lower bound of
		// total/P which both share, so report relative to the better one.
		best := out.Remedied.Seconds
		static = append(static, best/out.Wasteful.Seconds)
		dynamic = append(dynamic, 1.0)
	}
	f.AddSeries("static-efficiency", static)
	f.AddSeries("dynamic-efficiency", dynamic)
	return Output{Figure: f}, nil
}

// runF5 sweeps core count for locked vs sharded updates.
func runF5(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	cores := []int{1, 2, 4, 8, 16, 32}
	const updates = 1 << 18
	f := report.NewFigure("F5", "update throughput vs cores", "cores", "updates/s")
	var locked, sharded []float64
	for _, p := range cores {
		f.Xs = append(f.Xs, float64(p))
		l := waste.Serialization(spec, p, updates, true)
		s := waste.Serialization(spec, p, updates, false)
		locked = append(locked, updates/l.Seconds)
		sharded = append(sharded, updates/s.Seconds)
	}
	f.AddSeries("global-lock", locked)
	f.AddSeries("sharded", sharded)
	return Output{Figure: f}, nil
}

// runF6 sweeps the compute/communication ratio for blocking vs overlap.
func runF6(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	ratios := []float64{0.25, 0.5, 1, 2, 4}
	p, steps, words := 8, 20, 4096
	if cfg.Quick {
		p, steps = 4, 5
	}
	msgTime := spec.MsgTimeSec(float64(8 * words))
	f := report.NewFigure("F6", "exchange+compute time vs compute/comm ratio",
		"compute/comm", "seconds")
	var blocking, overlap []float64
	for _, ratio := range ratios {
		f.Xs = append(f.Xs, ratio)
		flops := ratio * msgTime * spec.PeakFlopsPerCore()
		b, err := waste.OverlapExchange(spec, p, steps, words, flops, false)
		if err != nil {
			return Output{}, err
		}
		o, err := waste.OverlapExchange(spec, p, steps, words, flops, true)
		if err != nil {
			return Output{}, err
		}
		blocking = append(blocking, b.Seconds)
		overlap = append(overlap, o.Seconds)
	}
	f.AddSeries("blocking", blocking)
	f.AddSeries("overlapped", overlap)
	return Output{Figure: f}, nil
}

// runF7 sweeps message size for moving a fixed volume.
func runF7(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	words := 1 << 16
	msgSizes := []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}
	if cfg.Quick {
		words = 1 << 12
		msgSizes = []int{1, 16, 256, 4096}
	}
	f := report.NewFigure("F7",
		fmt.Sprintf("moving %d words rank0->rank1 vs message size (n1/2 = %s)",
			words, report.FormatBytes(spec.HalfBandwidthBytes())),
		"message-words", "seconds")
	var times, effBW []float64
	for _, m := range msgSizes {
		if m > words {
			continue
		}
		f.Xs = append(f.Xs, float64(m))
		res, err := waste.BulkTransfer(spec, words, m)
		if err != nil {
			return Output{}, err
		}
		times = append(times, res.Seconds)
		effBW = append(effBW, float64(8*words)/res.Seconds/1e9)
	}
	f.AddSeries("modeled-seconds", times)
	f.AddSeries("effective-GB/s", effBW)
	return Output{Figure: f}, nil
}

// runF8 sweeps arithmetic intensity producing every preset's roofline.
func runF8(context.Context, Config) (Output, error) {
	ais := []float64{1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1, 2, 4, 8, 16, 32, 64}
	f := report.NewFigure("F8", "rooflines of all machine presets",
		"flops/byte", "GF/s")
	f.Xs = ais
	for _, spec := range machine.Presets() {
		ys := make([]float64, len(ais))
		for i, ai := range ais {
			ys[i] = roofline.Attainable(spec, ai) / 1e9
		}
		f.AddSeries(spec.Name, ys)
	}
	return Output{Figure: f}, nil
}

// runF9 sweeps the per-core counter stride through the coherence model.
func runF9(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	strides := []int{8, 16, 32, 64, 128}
	iters := 2000
	if cfg.Quick {
		iters = 300
	}
	f := report.NewFigure("F9", "per-core counters: cost vs stride (4 cores)",
		"stride-bytes", "seconds / events")
	var times, invs []float64
	for _, s := range strides {
		f.Xs = append(f.Xs, float64(s))
		res, inv, err := waste.FalseSharing(spec, 4, iters, s)
		if err != nil {
			return Output{}, err
		}
		times = append(times, res.Seconds)
		invs = append(invs, float64(inv))
	}
	f.AddSeries("modeled-seconds", times)
	f.AddSeries("invalidations", invs)
	return Output{Figure: f}, nil
}

// runF10 sweeps the idle fraction for spin/block × proportionality.
func runF10(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	prop := spec.WithProportionalPower(0.1)
	idles := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9}
	const total = 1.0 // one second of wall time per point
	const rounds = 10
	f := report.NewFigure("F10", "energy vs idle fraction", "idle-fraction", "joules")
	var spin, block, blockProp []float64
	for _, idle := range idles {
		f.Xs = append(f.Xs, idle)
		busy := (total / rounds) * (1 - idle)
		wait := (total / rounds) * idle
		spin = append(spin, waste.IdleEnergy(spec, busy, wait, rounds, true).Joules)
		block = append(block, waste.IdleEnergy(spec, busy, wait, rounds, false).Joules)
		blockProp = append(blockProp, waste.IdleEnergy(prop, busy, wait, rounds, false).Joules)
	}
	f.AddSeries("spin", spin)
	f.AddSeries("block", block)
	f.AddSeries("block-proportional", blockProp)
	return Output{Figure: f}, nil
}

// runF11 strong-scales the integrated stencil: fixed 2048² grid.
func runF11(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	gridN, steps := 2048, 10
	ps := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		gridN, steps = 512, 5
		ps = []int{1, 4, 16, 64}
	}
	f := report.NewFigure("F11",
		fmt.Sprintf("strong scaling: %d^2 stencil, %d steps", gridN, steps),
		"ranks", "seconds")
	var wasteful, remedied, ideal []float64
	var t1 float64
	for i, p := range ps {
		f.Xs = append(f.Xs, float64(p))
		w, err := stencilCampaign(cfg.metrics(), spec, p, gridN, steps, true)
		if err != nil {
			return Output{}, err
		}
		r, err := stencilCampaign(cfg.metrics(), spec, p, gridN, steps, false)
		if err != nil {
			return Output{}, err
		}
		if i == 0 {
			t1 = r.Seconds * float64(p)
		}
		wasteful = append(wasteful, w.Seconds)
		remedied = append(remedied, r.Seconds)
		ideal = append(ideal, t1/float64(p))
	}
	f.AddSeries("wasteful-stack", wasteful)
	f.AddSeries("remedied-stack", remedied)
	f.AddSeries("ideal", ideal)
	return Output{Figure: f}, nil
}

// runF12 weak-scales the integrated stencil: 64 rows per rank.
func runF12(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	rowsPerRank, steps := 64, 10
	ps := []int{1, 2, 4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		steps = 5
		ps = []int{1, 4, 16, 64}
	}
	f := report.NewFigure("F12",
		fmt.Sprintf("weak scaling: %d rows/rank, %d steps", rowsPerRank, steps),
		"ranks", "seconds")
	var wasteful, remedied []float64
	for _, p := range ps {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		f.Xs = append(f.Xs, float64(p))
		gridN := rowsPerRank * p
		w, err := stencilCampaign(cfg.metrics(), spec, p, gridN, steps, true)
		if err != nil {
			return Output{}, err
		}
		r, err := stencilCampaign(cfg.metrics(), spec, p, gridN, steps, false)
		if err != nil {
			return Output{}, err
		}
		wasteful = append(wasteful, w.Seconds)
		remedied = append(remedied, r.Seconds)
	}
	f.AddSeries("wasteful-stack", wasteful)
	f.AddSeries("remedied-stack", remedied)
	return Output{Figure: f}, nil
}

// runF13 sweeps the 2.5D replication factor.
func runF13(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	const n, p = 8192, 4096
	cs := []int{1, 2, 4, 8, 16}
	f := report.NewFigure("F13",
		fmt.Sprintf("2.5D matmul model: n=%d, p=%d", n, p),
		"replication-c", "words / seconds / GiB")
	var words, times, mem []float64
	for _, c := range cs {
		f.Xs = append(f.Xs, float64(c))
		m := kernels.CommAvoidingMatMul{N: n, P: p, C: c}
		words = append(words, m.WordsPerProc())
		times = append(times, m.CommSeconds(spec))
		mem = append(mem, 8*m.MemoryPerProcWords()/(1<<30))
	}
	f.AddSeries("words-per-proc", words)
	f.AddSeries("comm-seconds", times)
	f.AddSeries("memory-GiB", mem)
	return Output{Figure: f}, nil
}

// runF14 sweeps rank count for the three allreduce algorithms.
func runF14(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	ps := []int{2, 4, 8, 16, 32, 64, 128, 256}
	words := 4096
	if cfg.Quick {
		ps = []int{2, 8, 32}
		words = 512
	}
	f := report.NewFigure("F14",
		fmt.Sprintf("allreduce of %d words vs ranks", words),
		"ranks", "seconds")
	var flat, rd, ring []float64
	for _, p := range ps {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		f.Xs = append(f.Xs, float64(p))
		for _, alg := range []string{"flat", "rdouble", "ring"} {
			secs, err := allreduceTime(cfg.metrics(), spec, p, words, alg)
			if err != nil {
				return Output{}, err
			}
			switch alg {
			case "flat":
				flat = append(flat, secs)
			case "rdouble":
				rd = append(rd, secs)
			case "ring":
				ring = append(ring, secs)
			}
		}
	}
	f.AddSeries("flat", flat)
	f.AddSeries("recursive-doubling", rd)
	f.AddSeries("ring", ring)
	return Output{Figure: f}, nil
}
