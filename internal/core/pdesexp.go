package core

import (
	"context"
	"fmt"
	"time"

	"tenways/internal/netsim"
	"tenways/internal/pdes"
	"tenways/internal/report"
)

// f28Engine is the engine configuration F28 runs under. It is a package
// variable so the determinism tests can vary the partition and worker
// count and assert byte-identical output; none of its fields may influence
// the table. The lookahead is always the workload's minimum halo delay.
var f28Engine = pdes.Config{Partitions: 8, Workers: 8}

// runF28 reruns the F22 idle-wave physics at cluster scale on the
// partitioned engine: up to 2^20 simulated ranks run a blocking halo chain,
// one delay spike on rank 0 launches the wave, and a linear fit of each
// rank's first off-schedule step entry measures the propagation speed that
// the analytic model (arXiv:2103.03175) predicts as d_max/(c+delta_max).
// F22 shows the wave on 24 ranks; F28 shows the model still holds when the
// chain is five orders of magnitude longer than the wavefront.
func runF28(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	const compute = 50e-6
	const words = 16
	bytes := float64(words * 8)
	base := spec.Net.AlphaSec + 2*spec.Net.OverheadSec + bytes/spec.Net.BytesPerSec
	perHop := spec.Net.AlphaSec / 4

	steps := 12
	n1, n2 := 1<<20, 1<<18
	if cfg.Quick {
		steps = 8
		n1, n2 = 1<<14, 1<<12
	}
	// The torus variant scales each offset's delay by its hop count at an
	// interior pair, keeping the per-offset delay uniform across ranks (the
	// quiet cadence must be rank-independent for the fit to see only the
	// wave).
	torusDelay := func(n, off int) float64 {
		side := 1
		for side*side < n {
			side *= 2
		}
		topo := netsim.NewTorus2D(side, n/side)
		mid := n / 2
		return base + float64(netsim.Hops(topo, mid, mid+off)-1)*perHop
	}

	variants := []struct {
		name   string
		ranks  int
		offs   []int
		delays []float64
	}{
		{"logGP d={1}", n1, []int{1}, []float64{base}},
		{"logGP d={1,4}", n2, []int{1, 4}, []float64{base, base}},
		{"torus d={1,4}", n2, []int{1, 4}, []float64{torusDelay(n2, 1), torusDelay(n2, 4)}},
	}

	tbl := report.NewTable("F28",
		fmt.Sprintf("idle-wave speed at scale: one %s spike on rank 0 of a blocking halo chain (c=%s, %d-byte halos); measured = 1/slope of rank vs first off-schedule step entry, analytic = d_max/(c+delta_max)",
			report.FormatSeconds(3*compute), report.FormatSeconds(compute), int(bytes)),
		"variant", "ranks", "d_max", "events", "measured v (ranks/s)", "analytic v", "ratio", "R2")
	for _, v := range variants {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		w, err := pdes.NewIdleWave(v.ranks, steps, compute, 3*compute, v.offs, v.delays)
		if err != nil {
			return Output{}, fmt.Errorf("F28 %s: %w", v.name, err)
		}
		eng := f28Engine
		eng.Lookahead = w.MinDelay()
		eng.Sync = cfg.PDESSync
		eng.Obs = cfg.metrics()
		res, err := pdes.Run(w, eng)
		if err != nil {
			return Output{}, fmt.Errorf("F28 %s: %w", v.name, err)
		}
		speed, fit, _, err := w.WaveSpeed()
		if err != nil {
			return Output{}, fmt.Errorf("F28 %s: %w", v.name, err)
		}
		analytic := w.AnalyticSpeed()
		tbl.AddRow(v.name,
			fmt.Sprintf("%d", v.ranks),
			fmt.Sprintf("%d", v.offs[len(v.offs)-1]),
			fmt.Sprintf("%d", res.Events),
			report.FormatG(speed),
			report.FormatG(analytic),
			report.FormatFactor(speed/analytic),
			fmt.Sprintf("%.4f", fit.R2),
		)
	}
	return Output{Table: tbl}, nil
}

// runF29 turns the engine's own hot path into a waste-mode table: the same
// idle-wave workload under each combination of queue discipline (binary
// heap vs ladder) and window barrier (chan hand-off vs padded
// sense-reversing), measured on the host. The wasteful corner is PR 6's
// engine verbatim; the remedied corner is the current default. The virtual
// columns (events, windows, virtual time) are asserted identical across
// all four runs — the rewrite may only change wall time, never results.
// Measured: wall and speedup cells are host wall-clock and vary run to
// run.
func runF29(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	const compute = 50e-6
	delay := spec.Net.AlphaSec + 2*spec.Net.OverheadSec + 128/spec.Net.BytesPerSec

	ranks, steps := 1<<16, 8
	if cfg.Quick {
		ranks, steps = 1<<12, 6
	}

	// Workers > 1 so the barrier actually synchronises; 4 strided workers
	// over 8 partitions is the engine's own default shape for this table.
	rows := []struct {
		name    string
		queue   pdes.QueueKind
		barrier pdes.BarrierKind
	}{
		{"heap queue + chan barrier (wasteful)", pdes.QueueHeap, pdes.BarrierChan},
		{"heap queue + sense barrier", pdes.QueueHeap, pdes.BarrierSense},
		{"ladder queue + chan barrier", pdes.QueueLadder, pdes.BarrierChan},
		{"ladder queue + sense barrier (remedied)", pdes.QueueLadder, pdes.BarrierSense},
	}

	tbl := report.NewTable("F29",
		fmt.Sprintf("engine hot-path disciplines on the idle wave (%d ranks, %d steps, c=%s, 8 partitions, 4 workers, measured): binary heap vs ladder queue, chan vs sense-reversing window barrier; virtual results byte-identical across rows by construction",
			ranks, steps, report.FormatSeconds(compute)),
		"configuration", "events", "windows", "virtual s", "wall ms", "Mev/s", "speedup")

	var baseEvents, baseWindows uint64
	var baseVT, baseWall float64
	for i, row := range rows {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		w, err := pdes.NewIdleWave(ranks, steps, compute, 3*compute, []int{1}, []float64{delay})
		if err != nil {
			return Output{}, fmt.Errorf("F29 %s: %w", row.name, err)
		}
		eng := pdes.Config{
			Partitions: 8, Workers: 4,
			Lookahead: w.MinDelay(),
			Queue:     row.queue,
			Barrier:   row.barrier,
			Sync:      cfg.PDESSync,
			Obs:       cfg.metrics(),
		}
		start := time.Now()
		res, err := pdes.Run(w, eng)
		wall := time.Since(start).Seconds()
		if err != nil {
			return Output{}, fmt.Errorf("F29 %s: %w", row.name, err)
		}
		if i == 0 {
			baseEvents, baseWindows, baseVT, baseWall = res.Events, res.Windows, res.VirtualTime, wall
		} else if res.Events != baseEvents || res.Windows != baseWindows || res.VirtualTime != baseVT {
			return Output{}, fmt.Errorf(
				"F29 %s: virtual results diverged from the wasteful baseline (events %d vs %d, windows %d vs %d, vt %g vs %g) — the disciplines must be result-identical",
				row.name, res.Events, baseEvents, res.Windows, baseWindows, res.VirtualTime, baseVT)
		}
		if wall <= 0 {
			wall = 1e-9
		}
		tbl.AddRow(row.name,
			fmt.Sprintf("%d", res.Events),
			fmt.Sprintf("%d", res.Windows),
			report.FormatSeconds(res.VirtualTime),
			fmt.Sprintf("%.2f", wall*1e3),
			fmt.Sprintf("%.2f", float64(res.Events)/wall/1e6),
			report.FormatFactor(baseWall/wall),
		)
	}
	return Output{Table: tbl}, nil
}

// runF30 tables the optimistic Time-Warp engine against the conservative
// window engine on the same spiked idle wave across noise and lookahead
// regimes. The committed virtual results are byte-identical by
// construction — the table's waste metric is committed-event efficiency
// (committed/executed): every handler invocation speculation later rolls
// back is work the machine did and threw away, the optimistic cousin of
// the idle waves the conservative engine spends on barriers instead.
// Measured: the wall columns are host wall-clock and vary run to run.
func runF30(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	const compute = 50e-6
	base := spec.Net.AlphaSec + 2*spec.Net.OverheadSec + 128/spec.Net.BytesPerSec

	ranks, steps := 1<<16, 8
	if cfg.Quick {
		ranks, steps = 1<<12, 6
	}

	// Noise axis: spike magnitude (how hard the straggler hits).
	// Lookahead axis: the halo delay itself — tighter delay means narrower
	// windows, so speculation has more chances to run ahead and be wrong.
	regimes := []struct {
		name  string
		spike float64
		delay float64
	}{
		{"quiet, wide lookahead", 0, base},
		{"quiet, tight lookahead", 0, base / 4},
		{"spiked 3c, wide lookahead", 3 * compute, base},
		{"spiked 8c, wide lookahead", 8 * compute, base},
		{"spiked 8c, tight lookahead", 8 * compute, base / 4},
	}

	tbl := report.NewTable("F30",
		fmt.Sprintf("optimistic Time-Warp vs conservative windows on the idle wave (%d ranks, %d steps, c=%s, 8 partitions, 4 workers, measured): committed results byte-identical, efficiency = committed/executed counts the speculated work rollback threw away",
			ranks, steps, report.FormatSeconds(compute)),
		"regime", "events", "executed", "rollbacks", "rolled back", "efficiency", "cons ms", "opt ms", "opt/cons")

	var spikedRollbacks uint64
	for _, rg := range regimes {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		run := func(sync pdes.SyncKind) (pdes.Result, []float64, float64, error) {
			w, err := pdes.NewIdleWave(ranks, steps, compute, rg.spike, []int{1, 4}, []float64{rg.delay, 1.5 * rg.delay})
			if err != nil {
				return pdes.Result{}, nil, 0, err
			}
			eng := pdes.Config{
				Partitions: 8, Workers: 4,
				Lookahead: w.MinDelay(),
				Sync:      sync,
				Obs:       cfg.metrics(),
			}
			start := time.Now()
			res, err := pdes.Run(w, eng)
			wall := time.Since(start).Seconds()
			if err != nil {
				return pdes.Result{}, nil, 0, err
			}
			arr := make([]float64, ranks)
			for r := range arr {
				arr[r] = w.Arrival(r)
			}
			return res, arr, wall, nil
		}
		cres, carr, cwall, err := run(pdes.SyncConservative)
		if err != nil {
			return Output{}, fmt.Errorf("F30 %s (conservative): %w", rg.name, err)
		}
		ores, oarr, owall, err := run(pdes.SyncOptimistic)
		if err != nil {
			return Output{}, fmt.Errorf("F30 %s (optimistic): %w", rg.name, err)
		}
		if ores.Events != cres.Events || ores.VirtualTime != cres.VirtualTime {
			return Output{}, fmt.Errorf(
				"F30 %s: optimistic committed results diverged (events %d vs %d, vt %g vs %g) — Time Warp must be result-identical",
				rg.name, ores.Events, cres.Events, ores.VirtualTime, cres.VirtualTime)
		}
		for r := range carr {
			if carr[r] != oarr[r] {
				return Output{}, fmt.Errorf("F30 %s: rank %d wave arrival diverged (%g vs %g)", rg.name, r, carr[r], oarr[r])
			}
		}
		if rg.spike > 0 {
			spikedRollbacks += ores.Rollbacks
		}
		if cwall <= 0 {
			cwall = 1e-9
		}
		if owall <= 0 {
			owall = 1e-9
		}
		tbl.AddRow(rg.name,
			fmt.Sprintf("%d", ores.Events),
			fmt.Sprintf("%d", ores.Executed),
			fmt.Sprintf("%d", ores.Rollbacks),
			fmt.Sprintf("%d", ores.RolledBack),
			fmt.Sprintf("%.3f", ores.Efficiency()),
			fmt.Sprintf("%.2f", cwall*1e3),
			fmt.Sprintf("%.2f", owall*1e3),
			report.FormatFactor(owall/cwall),
		)
	}
	if spikedRollbacks == 0 {
		return Output{}, fmt.Errorf("F30: no rollbacks in any spiked regime — speculation never ran ahead, the table shows nothing")
	}
	return Output{Table: tbl}, nil
}
