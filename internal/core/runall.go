package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"tenways/internal/obs"
	"tenways/internal/report"
)

// RunOptions parameterises a parallel suite run.
type RunOptions struct {
	// Workers bounds the experiments running concurrently; <= 0 runs
	// serially (one worker). Experiments are deterministic simulations, so
	// any worker count produces identical tables — only wall time changes.
	Workers int
	// IDs selects the experiments to run, in the given order; nil or empty
	// selects the full suite in registration order.
	IDs []string
	// OnResult, when non-nil, is called once per experiment in IDs order
	// (not completion order) as results become available, from the
	// goroutine that called RunAll. Use it to stream output while later
	// experiments still run.
	OnResult func(RunResult)
}

// RunResult is one experiment's outcome under RunAll.
type RunResult struct {
	ID       string
	Title    string
	Measured bool // see Experiment.Measured
	Output   Output
	Err      error
	Wall     time.Duration
	// Metrics is the experiment's own registry snapshot: every run records
	// at least the lab.* instruments, plus whatever subsystems it touched
	// (sim.*, pgas.*, collective.*, sched.*, chaos.*, tune.*).
	Metrics obs.Snapshot
}

// RunAll executes the selected experiments on a bounded worker pool and
// returns their results in IDs order regardless of completion order.
//
// Each experiment gets a fresh obs.Registry threaded through Config.Obs,
// so its metrics snapshot is attributable even while other experiments run
// concurrently. Failures are soft: a panicking or failing experiment is
// recorded in its RunResult and the rest of the suite still runs; the
// returned error is an aggregate naming the failed IDs (nil when all
// succeeded). Cancelling ctx stops new experiments from starting and marks
// unstarted ones with the context error.
func (l *Lab) RunAll(ctx context.Context, cfg Config, opts RunOptions) ([]RunResult, error) {
	ids := opts.IDs
	if len(ids) == 0 {
		ids = l.IDs()
	}
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, err := l.Get(id)
		if err != nil {
			return nil, err
		}
		exps[i] = e
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(exps) {
		workers = len(exps)
	}

	results := make([]RunResult, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = runOne(ctx, exps[i], cfg)
				close(done[i])
			}
		}()
	}
	go func() {
		for i := range exps {
			//lint:ignore chanbatch work queue by design: workers grab one experiment index at a time, batching would serialise pickup
			idxCh <- i
		}
		close(idxCh)
	}()

	// Deliver results in IDs order as they land; this also awaits them all.
	for i := range exps {
		<-done[i]
		if opts.OnResult != nil {
			opts.OnResult(results[i])
		}
	}
	wg.Wait()

	//lint:ignore prealloc failures are the rare case; preallocating for the usual empty list would waste
	var failed []string
	for _, r := range results {
		if r.Err != nil {
			failed = append(failed, r.ID)
		}
	}
	if len(failed) > 0 {
		return results, fmt.Errorf("core: %d of %d experiments failed: %s",
			len(failed), len(results), strings.Join(failed, ", "))
	}
	return results, nil
}

// runOne executes a single experiment with its own metrics registry,
// converting panics into errors so one broken experiment cannot take down
// a parallel suite run.
func runOne(ctx context.Context, e Experiment, cfg Config) RunResult {
	res := RunResult{ID: e.ID, Title: e.Title, Measured: e.Measured}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	start := time.Now()
	if err := ctx.Err(); err != nil {
		res.Err = err
	} else {
		res.Output, res.Err = runRecovered(ctx, e, cfg)
	}
	res.Wall = time.Since(start)
	reg.Counter("lab.runs").Inc()
	if res.Err != nil {
		reg.Counter("lab.failures").Inc()
	}
	reg.Timer("lab.wall_seconds").Observe(res.Wall.Seconds())
	res.Metrics = reg.Snapshot()
	return res
}

func runRecovered(ctx context.Context, e Experiment, cfg Config) (out Output, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = Output{}
			err = fmt.Errorf("core: %s panicked: %v", e.ID, r)
		}
	}()
	return e.Run(ctx, cfg)
}

// RunRecord is one experiment's outcome in a LabReport, shaped for JSON.
type RunRecord struct {
	ID       string         `json:"id"`
	Title    string         `json:"title"`
	Measured bool           `json:"measured,omitempty"`
	WallMS   float64        `json:"wall_ms"`
	Error    string         `json:"error,omitempty"`
	Table    *report.Table  `json:"table,omitempty"`
	Figure   *report.Figure `json:"figure,omitempty"`
	Metrics  obs.Snapshot   `json:"metrics"`
}

// LabReport is a machine-readable record of one suite run — what wastelab
// -json emits and cmd/benchjson embeds alongside Go benchmark results.
type LabReport struct {
	Machine string      `json:"machine"`
	Quick   bool        `json:"quick,omitempty"`
	Seed    uint64      `json:"seed,omitempty"`
	Workers int         `json:"workers"`
	Results []RunRecord `json:"results"`
}

// NewLabReport assembles the JSON report for a completed RunAll.
func NewLabReport(cfg Config, workers int, results []RunResult) *LabReport {
	rep := &LabReport{
		Machine: cfg.machine().Name,
		Quick:   cfg.Quick,
		Seed:    cfg.Seed,
		Workers: workers,
		Results: make([]RunRecord, 0, len(results)),
	}
	for _, r := range results {
		rec := RunRecord{
			ID:       r.ID,
			Title:    r.Title,
			Measured: r.Measured,
			WallMS:   float64(r.Wall) / float64(time.Millisecond),
			Table:    r.Output.Table,
			Figure:   r.Output.Figure,
			Metrics:  r.Metrics,
		}
		if r.Err != nil {
			rec.Error = r.Err.Error()
		}
		rep.Results = append(rep.Results, rec)
	}
	return rep
}

// FailedIDs returns the IDs of the failed records, sorted.
func (r *LabReport) FailedIDs() []string {
	//lint:ignore prealloc failures are the rare case; preallocating for the usual empty list would waste
	var out []string
	for _, rec := range r.Results {
		if rec.Error != "" {
			out = append(out, rec.ID)
		}
	}
	sort.Strings(out)
	return out
}
