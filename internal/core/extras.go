package core

import (
	"context"

	"fmt"

	"tenways/internal/amdahl"
	"tenways/internal/dag"
	"tenways/internal/energy"
	"tenways/internal/mem"
	"tenways/internal/netsim"
	"tenways/internal/report"
)

// runT6 evaluates collective schedules under topology contention: the same
// traffic pattern costs wildly different amounts depending on how well the
// schedule's rounds match the wires — the keynote's hardware/software
// co-design point in communication form.
func runT6(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	p := 16
	bytes := float64(64 << 10)
	topos := []netsim.Topology{
		netsim.NewFullyConnected(p),
		netsim.NewTorus2D(4, p/4),
		netsim.NewFatTree2(p, 4),
		netsim.NewDragonfly(p, 4),
		netsim.NewRing(p),
	}
	schedules := []struct {
		name   string
		rounds [][]netsim.Transfer
	}{
		{"alltoall one-shot", netsim.AlltoallOneShot(p, bytes)},
		{"alltoall pairwise", netsim.AlltoallPairwise(p, bytes)},
		{"allgather ring", netsim.AllgatherRing(p, bytes)},
		{"broadcast binomial", netsim.BroadcastBinomialRounds(p, bytes)},
	}
	headers := []string{"schedule"}
	for _, t := range topos {
		headers = append(headers, t.Name())
	}
	tbl := report.NewTable("T6",
		fmt.Sprintf("collective schedules under contention (P=%d, %s blocks)",
			p, report.FormatBytes(bytes)),
		headers...)
	for _, s := range schedules {
		row := []string{s.name}
		for _, topo := range topos {
			m := netsim.NewModel(spec.Net, topo)
			row = append(row, report.FormatSeconds(m.ScheduleCost(s.rounds)))
		}
		tbl.AddRow(row...)
	}
	return Output{Table: tbl}, nil
}

// runF15 schedules four DAG shapes across worker counts and plots achieved
// speedup against the work/span ceiling: the shape of the task graph, not
// the machine, bounds what parallelism can possibly buy.
func runF15(ctx context.Context, cfg Config) (Output, error) {
	ps := []int{1, 2, 4, 8, 16, 32, 64}
	if cfg.Quick {
		ps = []int{1, 4, 16}
	}
	shapes := []struct {
		name string
		d    *dag.DAG
	}{
		{"chain", dag.Chain(256, 1e-4)},
		{"fan-out", dag.FanOut(256, 1e-4)},
		{"fork-join", dag.ForkJoin(16, 16, 1e-4)},
		{"random-layered", dag.RandomLayered(2009, 16, 16, 1.0)},
	}
	f := report.NewFigure("F15", "DAG speedup vs workers (greedy list scheduling)",
		"workers", "speedup")
	for _, p := range ps {
		f.Xs = append(f.Xs, float64(p))
	}
	for _, sh := range shapes {
		var ys []float64
		s1, err := sh.d.ScheduleGreedy(1)
		if err != nil {
			return Output{}, err
		}
		for _, p := range ps {
			s, err := sh.d.ScheduleGreedy(p)
			if err != nil {
				return Output{}, err
			}
			ys = append(ys, s1.Makespan/s.Makespan)
		}
		par, err := sh.d.Parallelism()
		if err != nil {
			return Output{}, err
		}
		f.AddSeries(fmt.Sprintf("%s (T1/Tinf=%.3g)", sh.name, par), ys)
	}
	return Output{Figure: f}, nil
}

// runF16 plots the analytic speedup laws the W5 experiment instantiates:
// Amdahl versus Gustafson across serial fractions.
func runF16(context.Context, Config) (Output, error) {
	ps := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	f := report.NewFigure("F16", "speedup laws: Amdahl (fixed size) vs Gustafson (scaled)",
		"processors", "speedup")
	for _, p := range ps {
		f.Xs = append(f.Xs, float64(p))
	}
	for _, frac := range []float64{0.01, 0.05, 0.2} {
		var am, gu []float64
		for _, p := range ps {
			am = append(am, amdahl.Speedup(frac, p))
			gu = append(gu, amdahl.Gustafson(frac, p))
		}
		f.AddSeries(fmt.Sprintf("amdahl f=%.2g", frac), am)
		f.AddSeries(fmt.Sprintf("gustafson f=%.2g", frac), gu)
	}
	return Output{Figure: f}, nil
}

// runF17 is the prefetcher ablation: a hardware next-line prefetcher hides
// the latency of a sequential stream but moves every byte anyway, so the
// energy waste of poor locality survives the hardware fix — W1 must be
// fixed in software.
func runF17(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	n := uint64(4 << 20)
	if cfg.Quick {
		n = 1 << 20
	}
	strides := []uint64{8, 64, 128, 256, 512}
	f := report.NewFigure("F17",
		"scan of a buffer: prefetcher ablation (time and DRAM energy)",
		"stride-bytes", "seconds / joules")
	var tOff, tOn, eOff, eOn []float64
	for _, stride := range strides {
		f.Xs = append(f.Xs, float64(stride))
		for _, prefetch := range []bool{false, true} {
			h, err := mem.NewHierarchy(spec, 1)
			if err != nil {
				return Output{}, err
			}
			if prefetch {
				h.EnablePrefetch()
			}
			for a := uint64(0); a < n; a += stride {
				h.Read(0, a, 8)
			}
			m := energy.NewMeter()
			h.ChargeEnergy(m)
			if prefetch {
				tOn = append(tOn, h.TimeSec())
				eOn = append(eOn, m.Total())
			} else {
				tOff = append(tOff, h.TimeSec())
				eOff = append(eOff, m.Total())
			}
		}
	}
	f.AddSeries("seconds-no-prefetch", tOff)
	f.AddSeries("seconds-prefetch", tOn)
	f.AddSeries("joules-no-prefetch", eOff)
	f.AddSeries("joules-prefetch", eOn)
	return Output{Figure: f}, nil
}

// runT7 places each kernel's measured-and-modeled serial fraction
// interpretation onto the suite: it reports, for the integrated stencil at
// several scales, the speedup, the Karp–Flatt serial fraction, and whether
// the fraction grows (overhead-bound) — the measurement-to-model bridge.
func runT7(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	gridN, steps := 1024, 10
	if cfg.Quick {
		gridN, steps = 512, 5
	}
	base, err := stencilCampaign(cfg.metrics(), spec, 1, gridN, steps, false)
	if err != nil {
		return Output{}, err
	}
	tbl := report.NewTable("T7",
		fmt.Sprintf("Karp–Flatt analysis of the stencil (%d^2 grid) on %s", gridN, spec.Name),
		"ranks", "stack", "speedup", "efficiency", "karp-flatt serial fraction")
	var ps []int
	speedupsRemedied := make([]float64, 0, 5)
	for _, p := range []int{2, 4, 8, 16, 32} {
		for _, wasteful := range []bool{true, false} {
			res, err := stencilCampaign(cfg.metrics(), spec, p, gridN, steps, wasteful)
			if err != nil {
				return Output{}, err
			}
			s := base.Seconds / res.Seconds
			if s > float64(p) {
				s = float64(p) // clamp modelling artefacts at the linear bound
			}
			kf, err := amdahl.KarpFlatt(s, p)
			kfCell := "n/a"
			if err == nil {
				kfCell = report.FormatG(kf)
			}
			stack := "remedied"
			if wasteful {
				stack = "wasteful"
			} else {
				ps = append(ps, p)
				speedupsRemedied = append(speedupsRemedied, s)
			}
			tbl.AddRow(fmt.Sprintf("%d", p), stack,
				report.FormatFactor(s),
				fmt.Sprintf("%.0f%%", 100*amdahl.Efficiency(s, p)),
				kfCell)
		}
	}
	if f, growing, err := amdahl.FitSerialFraction(ps, speedupsRemedied); err == nil {
		trend := "stable (inherent serial work)"
		if growing {
			trend = "growing (communication overhead)"
		}
		tbl.AddRow("fit", "remedied", "", "", fmt.Sprintf("%s, %s", report.FormatG(f), trend))
	}
	return Output{Table: tbl}, nil
}
