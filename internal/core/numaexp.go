package core

import (
	"context"

	"tenways/internal/energy"
	"tenways/internal/mem"
	"tenways/internal/report"
)

// numaStream homes a buffer according to the initialisation pattern, then
// measures a partitioned parallel stream over 4 cores (2 domains),
// returning modeled seconds and joules.
func numaStream(cfg Config, remoteFactor float64, placement mem.Placement, serialInit bool, bytes uint64) (float64, float64, error) {
	spec := *cfg.machine()
	spec.NUMA.Domains = 2
	spec.NUMA.RemoteLatencyFactor = remoteFactor
	if spec.NUMA.RemotePJFactor < 1 {
		spec.NUMA.RemotePJFactor = 1
	}
	const cores = 4
	h, err := mem.NewHierarchy(&spec, cores)
	if err != nil {
		return 0, 0, err
	}
	h.EnableNUMA(placement)
	part := bytes / cores
	// Initialisation touches every page first.
	if serialInit {
		for a := uint64(0); a < bytes; a += 64 {
			h.Write(0, a, 8)
		}
	} else {
		for c := 0; c < cores; c++ {
			base := uint64(c) * part
			for a := base; a < base+part; a += 64 {
				h.Write(c, a, 8)
			}
		}
	}
	// Measure the compute phase only: placement decisions are made during
	// initialisation, their cost is paid during compute.
	h.ResetStats()
	// Compute phase: each core streams its own partition repeatedly. The
	// buffer exceeds cache, so traffic goes to (possibly remote) DRAM.
	for rep := 0; rep < 2; rep++ {
		for c := 0; c < cores; c++ {
			base := uint64(c) * part
			for a := base; a < base+part; a += 64 {
				h.Read(c, a, 8)
			}
		}
	}
	m := energy.NewMeter()
	h.ChargeEnergy(m)
	return h.TimeSec(), m.Total(), nil
}

// runF20 sweeps the NUMA remote-latency factor for three placement
// disciplines: first-touch with parallel initialisation (every page
// local), interleaving (placement-oblivious, half the traffic remote), and
// first-touch after serial initialisation (the classic bug: one core
// touches everything, so every core outside its domain runs fully remote).
// With two domains the latter two average the same remote fraction in this
// latency-additive model — the bandwidth-saturation component of the
// serial-init pathology is out of scope, as DESIGN.md notes — so the
// figure's claim is first-touch-parallel strictly wins and the gap scales
// with the remote factor.
func runF20(ctx context.Context, cfg Config) (Output, error) {
	factors := []float64{1, 1.5, 2, 3, 4}
	// The buffer must exceed the machine's LLC so the measured compute
	// phase streams from (possibly remote) DRAM rather than from cache.
	bytes := uint64(32 << 20)
	if cfg.Quick {
		bytes = 16 << 20
		factors = []float64{1, 2, 4}
	}
	f := report.NewFigure("F20",
		"NUMA placement: modeled stream time vs remote-latency factor (4 cores, 2 domains)",
		"remote-latency-factor", "seconds")
	var good, interleave, bad []float64
	for _, rf := range factors {
		f.Xs = append(f.Xs, rf)
		tGood, _, err := numaStream(cfg, rf, mem.PlacementFirstTouch, false, bytes)
		if err != nil {
			return Output{}, err
		}
		tInt, _, err := numaStream(cfg, rf, mem.PlacementInterleave, false, bytes)
		if err != nil {
			return Output{}, err
		}
		tBad, _, err := numaStream(cfg, rf, mem.PlacementFirstTouch, true, bytes)
		if err != nil {
			return Output{}, err
		}
		good = append(good, tGood)
		interleave = append(interleave, tInt)
		bad = append(bad, tBad)
	}
	f.AddSeries("first-touch-parallel-init", good)
	f.AddSeries("interleaved", interleave)
	f.AddSeries("first-touch-serial-init", bad)
	return Output{Figure: f}, nil
}
