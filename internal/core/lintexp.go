package core

// T11: the lab audits its own source. wastevet's rule set runs over the
// whole module and the table maps each rule to the waste mode it guards,
// with three counts per rule: findings at the analyzer's introduction
// (before the repo-wide cleanup landed), unsuppressed findings now, and
// acknowledged //lint:ignore waivers now. A clean tree shows zeros in the
// "now" column; the "at-intro" column preserves how much source-level
// waste the ten-ways mirrors found in a repo that was already trying to
// avoid them.

import (
	"context"
	"strconv"
	"sync"

	"tenways/internal/lint"
	"tenways/internal/report"
)

// t11Baseline records per-rule finding counts from the analyzer's first
// run over the repo, before the cleanup pass. Frozen history, not
// recomputed: the "before" column of the before/after comparison.
var t11Baseline = map[string]int{
	"prealloc":  26,
	"sprintf":   17,
	"atomicpad": 3,
	"chanbatch": 1,
}

// The scan parses and type-checks the whole module (~2s); the suite runs
// repeatedly in tests (serial vs parallel byte-identity), so the result is
// computed once per process. Source doesn't change mid-process, so the
// memo also keeps T11 byte-identical across RunAll invocations.
var (
	t11Once sync.Once
	t11Res  *lint.Result
	t11Err  error
)

func t11Scan() (*lint.Result, error) {
	t11Once.Do(func() {
		l, err := lint.NewLoader()
		if err != nil {
			t11Err = err
			return
		}
		pkgs, err := l.Load(l.Root() + "/...")
		if err != nil {
			t11Err = err
			return
		}
		t11Res, t11Err = lint.Analyze(lint.DefaultConfig(), l.Root(), pkgs)
	})
	return t11Res, t11Err
}

func runT11(ctx context.Context, cfg Config) (Output, error) {
	res, err := t11Scan()
	if err != nil {
		return Output{}, err
	}
	total, sup := res.Counts()
	reg := cfg.metrics()
	reg.Counter("lint.findings").Add(int64(len(res.Findings)))
	reg.Counter("lint.unsuppressed").Add(int64(len(res.Unsuppressed())))
	reg.Counter("lint.files").Add(int64(res.Files))
	reg.Counter("lint.packages").Add(int64(res.Packages))

	t := report.NewTable("T11",
		"wastevet self-audit: rule-to-waste-mode map with finding counts at analyzer introduction vs now",
		"rule", "guards", "enforces", "at-intro", "now", "suppressed")
	var sumIntro, sumNow, sumSup int
	for _, r := range lint.Rules() {
		name := r.Name()
		now := total[name] - sup[name]
		sumIntro += t11Baseline[name]
		sumNow += now
		sumSup += sup[name]
		t.AddRow(name, lint.WasteLabel(r.Waste()), r.Doc(),
			strconv.Itoa(t11Baseline[name]), strconv.Itoa(now), strconv.Itoa(sup[name]))
	}
	t.AddRow("total", "", "",
		strconv.Itoa(sumIntro), strconv.Itoa(sumNow), strconv.Itoa(sumSup))
	return Output{Table: t}, nil
}
