package core

// T11: the lab audits its own source. wastevet's rule set runs over the
// whole module and the table maps each rule to the waste mode it guards,
// with three counts per rule: findings at the analyzer's introduction
// (before the repo-wide cleanup landed), unsuppressed findings now, and
// acknowledged //lint:ignore waivers now. A clean tree shows zeros in the
// "now" column; the "at-intro" column preserves how much source-level
// waste the ten-ways mirrors found in a repo that was already trying to
// avoid them.

import (
	"context"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"tenways/internal/lint"
	_ "tenways/internal/lint/flow" // registers the interprocedural rules
	"tenways/internal/report"
)

// t11Baseline records per-rule finding counts from the analyzer's first
// run over the repo, before the cleanup pass. Frozen history, not
// recomputed: the "before" column of the before/after comparison.
var t11Baseline = map[string]int{
	"prealloc":  26,
	"sprintf":   17,
	"atomicpad": 3,
	"chanbatch": 1,
	// Interprocedural flow rules, frozen at their own introduction: the
	// stale-waiver auditor caught two directives whose rules no longer
	// fired, and doubleclose initially flagged two per-iteration channel
	// closes before the analyzer learned the loop-variable exemption.
	"stalewaiver": 2,
	"doubleclose": 2,
}

// The scan parses and type-checks the whole module (~2s); the suite runs
// repeatedly in tests (serial vs parallel byte-identity), so the result is
// computed once per process. Source doesn't change mid-process, so the
// memo also keeps T11 byte-identical across RunAll invocations.
var (
	t11Once sync.Once
	t11Res  *lint.Result
	t11Root string
	t11Err  error
)

func t11Scan() (*lint.Result, error) {
	t11Once.Do(func() {
		l, err := lint.NewLoader()
		if err != nil {
			t11Err = err
			return
		}
		pkgs, err := l.Load(l.Root() + "/...")
		if err != nil {
			t11Err = err
			return
		}
		t11Root = l.Root()
		t11Res, t11Err = lint.Analyze(lint.DefaultConfig(), l.Root(), pkgs)
	})
	return t11Res, t11Err
}

func runT11(ctx context.Context, cfg Config) (Output, error) {
	res, err := t11Scan()
	if err != nil {
		return Output{}, err
	}
	total, sup := res.Counts()
	reg := cfg.metrics()
	reg.Counter("lint.findings").Add(int64(len(res.Findings)))
	reg.Counter("lint.unsuppressed").Add(int64(len(res.Unsuppressed())))
	reg.Counter("lint.files").Add(int64(res.Files))
	reg.Counter("lint.packages").Add(int64(res.Packages))

	t := report.NewTable("T11",
		"wastevet self-audit: rule-to-waste-mode map with finding counts at analyzer introduction vs now",
		"rule", "guards", "enforces", "at-intro", "now", "suppressed")
	var sumIntro, sumNow, sumSup int
	for _, r := range lint.Rules() {
		name := r.Name()
		now := total[name] - sup[name]
		sumIntro += t11Baseline[name]
		sumNow += now
		sumSup += sup[name]
		t.AddRow(name, lint.WasteLabel(r.Waste()), r.Doc(),
			strconv.Itoa(t11Baseline[name]), strconv.Itoa(now), strconv.Itoa(sup[name]))
	}
	t.AddRow("total", "", "",
		strconv.Itoa(sumIntro), strconv.Itoa(sumNow), strconv.Itoa(sumSup))
	return Output{Table: t}, nil
}

// T13: autofix coverage. T11 aggregates per rule; T13 breaks the audit
// down per package and per rule, and records how each at-intro finding was
// resolved: "fix" when wastevet -fix rewrote the source mechanically,
// "hand" when the fix was manual, and "analysis" when the finding was a
// false positive eliminated by refining the analyzer rather than the code.
// The "now" and "fixable" columns come from a live scan, so a clean tree
// shows zeros and any regression shows exactly where it landed.

// t13Resolution records one package's at-intro findings for one rule and
// how they were driven to zero.
type t13Resolution struct {
	pkg, rule string
	atIntro   int
	how       string
}

// t13Baseline is frozen history from the flow layer's introduction: the
// findings the interprocedural rules (and the existing rules, re-run over
// the new analyzer code itself) surfaced, before the self-apply pass.
var t13Baseline = []t13Resolution{
	{"internal/core", "doubleclose", 1, "analysis"},
	{"internal/lint", "sprintf", 1, "hand"},
	{"internal/lint/flow", "prealloc", 2, "fix"},
	{"internal/pdes", "doubleclose", 1, "analysis"},
	{"internal/pdes", "stalewaiver", 2, "fix"},
}

func runT13(ctx context.Context, cfg Config) (Output, error) {
	res, err := t11Scan()
	if err != nil {
		return Output{}, err
	}

	// Live per-(package, rule) counts. Finding.File is module-relative, so
	// its directory is the package path.
	type cell struct{ now, fixable, suppressed int }
	live := map[[2]string]*cell{}
	at := func(pkg, rule string) *cell {
		k := [2]string{pkg, rule}
		if live[k] == nil {
			live[k] = &cell{}
		}
		return live[k]
	}
	for _, f := range res.Findings {
		c := at(path.Dir(filepath.ToSlash(f.File)), f.Rule)
		if f.Suppressed {
			c.suppressed++
			continue
		}
		c.now++
		if f.Fix != nil {
			c.fixable++
		}
	}

	// Row set: the frozen baseline plus any live (package, rule) pair with
	// unsuppressed findings, sorted for byte-identical output.
	rows := map[[2]string]t13Resolution{}
	for _, b := range t13Baseline {
		rows[[2]string{b.pkg, b.rule}] = b
	}
	for k, c := range live {
		if c.now > 0 || c.suppressed > 0 {
			if _, ok := rows[k]; !ok {
				rows[k] = t13Resolution{pkg: k[0], rule: k[1]}
			}
		}
	}
	keys := make([][2]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	// The fix engine's own live verdict: how many edits it would apply and
	// skip if run right now. ApplyFixes only computes contents in memory;
	// nothing is written.
	fixed, err := lint.ApplyFixes(t11Root, res.Findings)
	if err != nil {
		return Output{}, err
	}
	reg := cfg.metrics()
	reg.Counter("lint.fix.applicable").Add(int64(fixed.Applied))
	reg.Counter("lint.fix.skipped").Add(int64(fixed.Skipped))

	t := report.NewTable("T13",
		"wastevet autofix coverage: per-package per-rule findings at flow-layer introduction vs post-fix, with resolution mechanism",
		"package", "rule", "at-intro", "resolved-by", "now", "fixable", "suppressed")
	var sumIntro, sumNow, sumFix, sumSup int
	for _, k := range keys {
		b := rows[k]
		c := at(k[0], k[1])
		sumIntro += b.atIntro
		sumNow += c.now
		sumFix += c.fixable
		sumSup += c.suppressed
		how := b.how
		if how == "" {
			how = "-"
		}
		t.AddRow(b.pkg, b.rule, strconv.Itoa(b.atIntro), how,
			strconv.Itoa(c.now), strconv.Itoa(c.fixable), strconv.Itoa(c.suppressed))
	}
	t.AddRow("total", "", strconv.Itoa(sumIntro), "",
		strconv.Itoa(sumNow), strconv.Itoa(sumFix), strconv.Itoa(sumSup))
	t.AddRow("fix-engine", "applicable edits", strconv.Itoa(fixed.Applied), "",
		"skipped", strconv.Itoa(fixed.Skipped), "")
	return Output{Table: t}, nil
}
