package core

import (
	"context"

	"fmt"

	"tenways/internal/chaos"
	"tenways/internal/netsim"
	"tenways/internal/report"
	"tenways/internal/trace"
)

// The chaos experiments (T8, F22–F25) probe the extrinsic wastes: injected
// noise, stragglers, and faults, plus the remedies the paper's discussion
// points at — slack-bearing synchronisation to absorb noise, dynamic
// rebalancing to route around stragglers, and checkpoint/replay to survive
// failure. All runs are seeded and deterministic.

// runT8 tabulates noise amplification: the same injected per-rank noise
// costs wildly different amounts of makespan depending on the
// synchronisation stack — blocking barriers turn local delays into global
// ones, while slack-bearing stacks absorb part of them.
func runT8(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	p, steps := 16, 40
	if cfg.Quick {
		p, steps = 8, 12
	}
	const compute = 1e-3
	seed := cfg.seed()
	stacks := []chaos.Stack{chaos.NeighborBlocking, chaos.FlatBarrier, chaos.NonBlockingBarrier}
	injectors := []struct {
		name string
		mk   func() chaos.Injector // fresh injector per run (they carry state)
	}{
		{"none", nil},
		{"uniform 10%", func() chaos.Injector { return chaos.NewJitter(chaos.Uniform, 0.1, seed, p) }},
		{"exponential 10%", func() chaos.Injector { return chaos.NewJitter(chaos.Exponential, 0.1, seed, p) }},
		{"bursty 10%", func() chaos.Injector { return chaos.NewJitter(chaos.Bursty, 0.1, seed, p) }},
		{"straggler r3 1.5x", func() chaos.Injector { return chaos.NewStraggler(3, 1.5) }},
	}
	run := func(stack chaos.Stack, mk func() chaos.Injector) (chaos.IdleWaveResult, error) {
		c := chaos.IdleWaveConfig{Ranks: p, Steps: steps, Compute: compute, Words: 16, Stack: stack, Obs: cfg.metrics()}
		if mk != nil {
			c.Chaos = chaos.NewScenario().Add(mk())
		}
		return chaos.RunIdleWave(spec, c)
	}
	headers := []string{"injector"}
	for _, s := range stacks {
		headers = append(headers, s.String(), "ampl")
	}
	tbl := report.NewTable("T8",
		fmt.Sprintf("noise amplification by sync stack (P=%d, %d steps of %s; ampl = extra makespan per second of injected noise)",
			p, steps, report.FormatSeconds(compute)),
		headers...)
	quiet := map[chaos.Stack]float64{}
	for _, inj := range injectors {
		row := []string{inj.name}
		for _, stack := range stacks {
			if err := ctx.Err(); err != nil {
				return Output{}, err
			}
			res, err := run(stack, inj.mk)
			if err != nil {
				return Output{}, err
			}
			if inj.mk == nil {
				quiet[stack] = res.Makespan
				row = append(row, report.FormatSeconds(res.Makespan), "-")
				continue
			}
			// Mean injected seconds per rank, from the Noise attribution.
			injected := res.Breakdown.Of(trace.Noise).Seconds() / float64(p)
			ampl := 0.0
			if injected > 0 {
				ampl = (res.Makespan - quiet[stack]) / injected
			}
			row = append(row, report.FormatSeconds(res.Makespan), report.FormatFactor(ampl))
		}
		tbl.AddRow(row...)
	}
	return Output{Table: tbl}, nil
}

// runF22 plots idle-wave propagation: a single delay spike on rank 0 of a
// blocking halo chain travels through the neighbour dependencies at finite
// speed — one longest-offset hop per step — so longer-range communication
// and lower-diameter topologies accelerate the wave.
func runF22(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	p, steps := 24, 36
	if cfg.Quick {
		p, steps = 8, 16
	}
	const compute, words = 1e-3, 16
	dur := 3 * compute
	variants := []struct {
		name string
		offs []int
		topo netsim.Topology // nil = topology-free LogGP
	}{
		{"logGP d={1}", []int{1}, nil},
		{"logGP d={1,2}", []int{1, 2}, nil},
		{"logGP d={1,4}", []int{1, 4}, nil},
		{"ring d={1,2}", []int{1, 2}, netsim.NewRing(p)},
		{"dragonfly d={1,2}", []int{1, 2}, netsim.NewDragonfly(p, 4)},
	}
	f := report.NewFigure("F22",
		fmt.Sprintf("idle-wave propagation: one %s spike on rank 0, blocking halo chain (P=%d)",
			report.FormatSeconds(dur), p),
		"rank", "wavefront arrival (ms)")
	for r := 0; r < p; r++ {
		f.Xs = append(f.Xs, float64(r))
	}
	for _, v := range variants {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		c := chaos.IdleWaveConfig{
			Ranks: p, Steps: steps, Compute: compute, Words: words,
			Offsets: v.offs, Stack: chaos.NeighborBlocking,
			Obs: cfg.metrics(),
		}
		if v.topo != nil {
			c.Cost = netsim.NewModel(spec.Net, v.topo)
		}
		sc := chaos.NewScenario().Add(chaos.NewSpike(0, 0, dur))
		_, quiet, delta, err := chaos.IdleWaveDelta(spec, c, sc)
		if err != nil {
			return Output{}, err
		}
		times := chaos.ArrivalTimes(quiet, delta, compute/10)
		ys := make([]float64, p)
		for r, t := range times {
			ys[r] = t * 1e3
		}
		f.AddSeries(v.name, ys)
	}
	return Output{Figure: f}, nil
}

// runF23 plots the wave amplitude that survives to the end of the run, per
// rank and synchronisation stack: blocking stacks relay the full spike to
// everyone, the async chain damps it one compute-time per hop, and the
// split-phase barrier shaves one overlapped compute off what the victim's
// delay costs the rest.
func runF23(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	p, steps := 16, 40
	if cfg.Quick {
		p, steps = 8, 24
	}
	const compute, words = 1e-3, 16
	dur := 2.5 * compute
	victim := p - 1 // a leaf of the binomial barrier tree, end of the chain
	stacks := []chaos.Stack{
		chaos.NeighborBlocking, chaos.NeighborAsync,
		chaos.FlatBarrier, chaos.TreeBarrier, chaos.NonBlockingBarrier,
	}
	f := report.NewFigure("F23",
		fmt.Sprintf("idle-wave decay: residual delay after a %s spike on rank %d (P=%d, %d steps)",
			report.FormatSeconds(dur), victim, p, steps),
		"rank", "residual delay (ms)")
	for r := 0; r < p; r++ {
		f.Xs = append(f.Xs, float64(r))
	}
	for _, stack := range stacks {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		sc := chaos.NewScenario().Add(chaos.NewSpike(victim, 0, dur))
		_, _, delta, err := chaos.IdleWaveDelta(spec, chaos.IdleWaveConfig{
			Ranks: p, Steps: steps, Compute: compute, Words: words, Stack: stack,
			Obs: cfg.metrics(),
		}, sc)
		if err != nil {
			return Output{}, err
		}
		res := chaos.ResidualDelay(delta)
		ys := make([]float64, p)
		for r, d := range res {
			ys[r] = d * 1e3
		}
		f.AddSeries(stack.String(), ys)
	}
	return Output{Figure: f}, nil
}

// runF24 plots straggler mitigation: parallel efficiency versus the
// straggler's slowdown factor, static block partitioning against
// over-decomposed self-scheduling. Static inherits the full slowdown; the
// dynamic schedule routes work around the slow rank and degrades only by
// the lost fraction of one worker.
func runF24(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	p, tasks := 16, 256
	if cfg.Quick {
		p, tasks = 8, 64
	}
	const taskSec = 1e-3
	factors := []float64{1, 2, 4, 8, 16}
	if cfg.Quick {
		factors = []float64{1, 4, 16}
	}
	ideal := float64(tasks) / float64(p) * taskSec
	f := report.NewFigure("F24",
		fmt.Sprintf("straggler mitigation: %d tasks on %d ranks, rank %d slowed", tasks, p, p-1),
		"straggler slowdown factor", "parallel efficiency")
	f.Xs = factors
	for _, dynamic := range []bool{false, true} {
		name := "static partition"
		if dynamic {
			name = "self-scheduling (over-decomposed)"
		}
		ys := make([]float64, 0, len(factors))
		for _, factor := range factors {
			c := chaos.StragglerConfig{Ranks: p, Tasks: tasks, TaskSec: taskSec, Dynamic: dynamic, Obs: cfg.metrics()}
			if factor > 1 {
				c.Chaos = chaos.NewScenario().Add(chaos.NewStraggler(p-1, factor))
			}
			res, err := chaos.RunStragglerCampaign(spec, c)
			if err != nil {
				return Output{}, err
			}
			ys = append(ys, ideal/res.Makespan)
		}
		f.AddSeries(name, ys)
	}
	return Output{Figure: f}, nil
}

// runF25 plots the checkpoint-interval trade-off: total campaign time versus
// checkpoint interval with a scripted late rank failure. Checkpointing every
// step pays maximal overhead; checkpointing rarely pays maximal replay; the
// minimum sits in between (the classic optimal-period U-curve), and the
// uncheckpointed run replays the whole prefix.
func runF25(ctx context.Context, cfg Config) (Output, error) {
	spec := cfg.machine()
	p, steps := 8, 48
	if cfg.Quick {
		p, steps = 4, 24
	}
	const stepSec = 1e-3
	ckptSec := 0.5 * stepSec
	failStep := steps - 1 // worst case: the failure lands on the last step
	intervals := []int{1, 2, 4, 8, 16, 24}
	if cfg.Quick {
		intervals = []int{1, 4, 12}
	}
	run := func(interval, fail int) (chaos.CheckpointResult, error) {
		return chaos.RunCheckpointCampaign(spec, chaos.CheckpointConfig{
			Ranks: p, Steps: steps, StepSec: stepSec,
			Interval: interval, CkptSec: ckptSec,
			FailStep: fail, FailRank: p / 2, RestartSec: 4 * stepSec,
			Obs: cfg.metrics(),
		})
	}
	f := report.NewFigure("F25",
		fmt.Sprintf("checkpoint/replay: %d-step campaign on %d ranks, rank %d fails at step %d",
			steps, p, p/2, failStep),
		"checkpoint interval (steps)", "total time (ms)")
	for _, k := range intervals {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		f.Xs = append(f.Xs, float64(k))
	}
	var withFail, noFail, bare []float64
	bareRes, err := run(0, failStep)
	if err != nil {
		return Output{}, err
	}
	for _, k := range intervals {
		if err := ctx.Err(); err != nil {
			return Output{}, err
		}
		res, err := run(k, failStep)
		if err != nil {
			return Output{}, err
		}
		withFail = append(withFail, res.Makespan*1e3)
		clean, err := run(k, -1)
		if err != nil {
			return Output{}, err
		}
		noFail = append(noFail, clean.Makespan*1e3)
		bare = append(bare, bareRes.Makespan*1e3)
	}
	f.AddSeries("with failure", withFail)
	f.AddSeries("failure-free (overhead only)", noFail)
	f.AddSeries("no checkpoints + failure", bare)
	return Output{Figure: f}, nil
}
