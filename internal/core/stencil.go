package core

import (
	"tenways/internal/collective"
	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pgas"
)

// StencilResult is the outcome of one integrated stencil campaign.
type StencilResult struct {
	Seconds   float64
	Joules    float64
	Steps     int
	WireBytes int64
}

// StepsPerJoule returns the campaign's science-per-joule metric.
func (r StencilResult) StepsPerJoule() float64 {
	if r.Joules == 0 {
		return 0
	}
	return float64(r.Steps) / r.Joules
}

// StencilCampaign simulates `steps` sweeps of an n×n Jacobi grid
// row-block-decomposed over p ranks, with the communication and
// synchronisation stack chosen wholesale:
//
//   - wasteful: re-fetch the neighbour's whole block every step (W2),
//     blocking transfers with no overlap (W6), and a flat central barrier
//     after every step (W3).
//   - remedied: boundary rows only, split-phase transfers overlapped with
//     the interior sweep, and no global barrier (neighbour signals carry
//     the dependency).
//
// This is the integrated experiment behind T5, F11 and F12: individual
// wastes compound, so the stacks separate far more than any single mode.
func StencilCampaign(spec *machine.Spec, p, gridN, steps int, wasteful bool) (StencilResult, error) {
	return stencilCampaign(obs.Default(), spec, p, gridN, steps, wasteful)
}

func stencilCampaign(reg *obs.Registry, spec *machine.Spec, p, gridN, steps int, wasteful bool) (StencilResult, error) {
	hm := kernels.HaloModel{N: gridN, P: p}
	words := hm.HaloWords() / 2
	if wasteful {
		words = hm.WastefulWords() / 2
	}
	if words == 0 {
		words = 1
	}
	w := pgas.NewWorld(p, spec, nil, nil)
	w.SetObs(reg)
	w.Alloc("halo", 2*words)
	buf := make([]float64, words)
	makespan, err := w.Run(func(r *pgas.Rank) {
		comm := collective.New(r)
		id := r.ID()
		var synced int64
		for s := 0; s < steps; s++ {
			expect := int64(0)
			var h1, h2 *pgas.Handle
			if id > 0 {
				h1 = r.PutSignal(id-1, "halo", words, buf, "halo")
				expect++
			}
			if id < p-1 {
				h2 = r.PutSignal(id+1, "halo", 0, buf, "halo")
				expect++
			}
			synced += expect
			if wasteful {
				// Block on our own sends, then wait for the neighbours,
				// then compute — nothing overlaps.
				if h1 != nil {
					h1.Wait()
				}
				if h2 != nil {
					h2.Wait()
				}
				r.WaitSignal("halo", synced)
				r.Compute(hm.StepFlopsPerRank(), hm.StepBytesPerRank())
				comm.BarrierCentral()
			} else {
				// Interior sweep overlaps the boundary exchange.
				r.Compute(hm.StepFlopsPerRank(), hm.StepBytesPerRank())
				r.WaitSignal("halo", synced)
			}
		}
	})
	if err != nil {
		return StencilResult{}, err
	}
	return StencilResult{
		Seconds:   makespan,
		Joules:    w.Meter().Total(),
		Steps:     steps,
		WireBytes: w.Stats().BytesSent,
	}, nil
}
