package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"tenways/internal/chaos"
	"tenways/internal/collective"
	"tenways/internal/machine"
	"tenways/internal/pgas"
	"tenways/internal/trace"
	"tenways/internal/workload"
)

func TestLabHasFullSuite(t *testing.T) {
	l := NewLab()
	want := []string{"T1", "T2", "T3", "T4", "T5",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10",
		"F11", "F12", "F13", "F14", "T6", "T7", "F15", "F16", "F17", "F18", "F19", "F20", "F21",
		"T8", "F22", "F23", "F24", "F25", "T9", "F26", "T10", "F27", "T11", "T12", "F28", "F29", "F30", "T13"}
	ids := l.IDs()
	if len(ids) != len(want) {
		t.Fatalf("got %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if _, err := l.Get("T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Get("X9"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	l := NewLab()
	cfg := Config{Quick: true}
	for _, e := range l.Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if out.Table == nil && out.Figure == nil {
				t.Fatal("experiment produced nothing")
			}
			var sb strings.Builder
			if err := out.Render(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), e.ID) {
				t.Fatalf("output missing id:\n%s", sb.String())
			}
			if out.Figure != nil {
				if len(out.Figure.Xs) == 0 || len(out.Figure.Series) == 0 {
					t.Fatal("empty figure")
				}
				for _, s := range out.Figure.Series {
					if len(s.Ys) != len(out.Figure.Xs) {
						t.Fatalf("series %q has %d points, want %d",
							s.Name, len(s.Ys), len(out.Figure.Xs))
					}
				}
			}
		})
	}
}

func TestT1FactorsExceedOne(t *testing.T) {
	out, err := NewLab().Run("T1", Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Table.Rows) != 10 {
		t.Fatalf("T1 rows = %d", len(out.Table.Rows))
	}
	for _, row := range out.Table.Rows {
		tf := row[4]
		if !strings.HasSuffix(tf, "x") {
			t.Fatalf("bad factor cell %q", tf)
		}
	}
}

func TestStencilCampaignRemediedWins(t *testing.T) {
	spec := machine.Petascale2009()
	w, err := StencilCampaign(spec, 8, 512, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	r, err := StencilCampaign(spec, 8, 512, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds >= w.Seconds {
		t.Fatalf("remedied (%g) should beat wasteful (%g)", r.Seconds, w.Seconds)
	}
	if r.Joules >= w.Joules {
		t.Fatalf("remedied (%g J) should use less energy (%g J)", r.Joules, w.Joules)
	}
	if r.WireBytes >= w.WireBytes {
		t.Fatalf("remedied should move fewer bytes: %d vs %d", r.WireBytes, w.WireBytes)
	}
	if r.StepsPerJoule() <= w.StepsPerJoule() {
		t.Fatal("remedied should do more science per joule")
	}
	if (StencilResult{}).StepsPerJoule() != 0 {
		t.Fatal("zero-energy campaign should report 0 steps/J")
	}
}

func TestStencilCampaignSingleRank(t *testing.T) {
	if _, err := StencilCampaign(machine.Laptop2009(), 1, 128, 3, false); err != nil {
		t.Fatal(err)
	}
}

func TestStencilGapLargeAtEveryScale(t *testing.T) {
	// The wasteful stack mixes volume waste (dominant at small P, where
	// blocks are big) and synchronisation waste (dominant at large P), so
	// the gap's two regimes trade off; the robust claim is that the gap
	// stays large everywhere while the remedied stack keeps scaling.
	spec := machine.Petascale2009()
	run := func(p int, wasteful bool) float64 {
		res, err := StencilCampaign(spec, p, 1024, 5, wasteful)
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	for _, p := range []int{4, 16, 64} {
		if gap := run(p, true) / run(p, false); gap < 5 {
			t.Fatalf("P=%d: gap only %.1fx", p, gap)
		}
	}
	if r4, r64 := run(4, false), run(64, false); r64 >= r4/8 {
		t.Fatalf("remedied stack stopped scaling: %g at P=4, %g at P=64", r4, r64)
	}
}

func TestDiagnoseCleanRun(t *testing.T) {
	rec := trace.NewRecorder(4)
	for w := 0; w < 4; w++ {
		rec.Add(w, trace.Compute, time.Second)
	}
	if advice := Diagnose(rec.Breakdown()); len(advice) != 0 {
		t.Fatalf("clean run diagnosed: %+v", advice)
	}
}

func TestDiagnoseSyncWait(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Add(0, trace.Compute, 500*time.Millisecond)
	rec.Add(1, trace.Compute, 500*time.Millisecond)
	rec.Add(0, trace.SyncWait, 400*time.Millisecond)
	rec.Add(1, trace.SyncWait, 400*time.Millisecond)
	advice := Diagnose(rec.Breakdown())
	if len(advice) == 0 || advice[0].ModeID != "W3" {
		t.Fatalf("expected W3, got %+v", advice)
	}
	if advice[0].Severity < 0.3 {
		t.Fatalf("severity = %g", advice[0].Severity)
	}
}

func TestDiagnoseImbalance(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Add(0, trace.Compute, time.Second)
	rec.Add(1, trace.Compute, 100*time.Millisecond)
	found := false
	for _, a := range Diagnose(rec.Breakdown()) {
		if a.ModeID == "W4" {
			found = true
		}
	}
	if !found {
		t.Fatal("imbalanced run not diagnosed as W4")
	}
}

func TestDiagnoseMultipleSortedBySeverity(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Add(0, trace.Compute, 100*time.Millisecond)
	rec.Add(1, trace.Compute, 100*time.Millisecond)
	rec.Add(0, trace.Serial, 300*time.Millisecond)
	rec.Add(1, trace.Serial, 300*time.Millisecond)
	rec.Add(0, trace.CommWait, 150*time.Millisecond)
	rec.Add(1, trace.CommWait, 150*time.Millisecond)
	advice := Diagnose(rec.Breakdown())
	if len(advice) < 2 {
		t.Fatalf("expected >= 2 findings, got %+v", advice)
	}
	for i := 1; i < len(advice); i++ {
		if advice[i].Severity > advice[i-1].Severity {
			t.Fatal("advice not sorted by severity")
		}
	}
	if advice[0].ModeID != "W5" {
		t.Fatalf("dominant waste should be W5, got %s", advice[0].ModeID)
	}
}

func TestDiagnoseIdleAndSteal(t *testing.T) {
	rec := trace.NewRecorder(1)
	rec.Add(0, trace.Compute, 100*time.Millisecond)
	rec.Add(0, trace.Idle, 100*time.Millisecond)
	rec.Add(0, trace.Steal, 100*time.Millisecond)
	ids := map[string]bool{}
	for _, a := range Diagnose(rec.Breakdown()) {
		ids[a.ModeID] = true
	}
	if !ids["W10"] || !ids["W7"] {
		t.Fatalf("expected W10 and W7, got %v", ids)
	}
}

func TestGetCaseInsensitive(t *testing.T) {
	l := NewLab()
	for _, id := range []string{"t8", "f25", "T9", "f26", "t1"} {
		e, err := l.Get(id)
		if err != nil {
			t.Errorf("Get(%q): %v", id, err)
			continue
		}
		if !strings.EqualFold(e.ID, id) {
			t.Errorf("Get(%q) returned %s", id, e.ID)
		}
	}
}

func TestT13ByteIdentical(t *testing.T) {
	// The autofix-coverage table is a self-audit over a fixed tree: two
	// renders in one process must be byte-equal, and the clean tree must
	// show zero current findings and zero applicable edits.
	l := NewLab()
	render := func() string {
		out, err := l.Run("T13", Config{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := out.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	if first != render() {
		t.Fatal("T13 is not byte-identical across runs")
	}
	for _, b := range t13Baseline {
		if !strings.Contains(first, b.pkg) || !strings.Contains(first, b.rule) {
			t.Errorf("T13 table missing baseline row %s/%s:\n%s", b.pkg, b.rule, first)
		}
	}
}

func TestSeedReproducibility(t *testing.T) {
	// Two runs at the same seed must render identical tables; a different
	// seed must change the injected-noise numbers.
	l := NewLab()
	render := func(seed uint64) string {
		out, err := l.Run("T8", Config{Quick: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := out.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render(7) != render(7) {
		t.Fatal("same seed produced different T8 tables")
	}
	if render(7) == render(8) {
		t.Fatal("different seeds produced identical T8 tables")
	}
	if render(0) != render(chaos.DefaultSeed) {
		t.Fatal("seed 0 should select the default seed")
	}
}

func TestDiagnoseOnReportsTunedParameters(t *testing.T) {
	// A run dominated by imbalance (W4) must come back with the tuned chunk
	// size for the diagnosed machine appended to the remedy.
	rec := trace.NewRecorder(2)
	rec.Add(0, trace.Compute, time.Second)
	rec.Add(1, trace.Compute, 100*time.Millisecond)
	m := machine.Petascale2009()
	advice, err := DiagnoseOn(rec.Breakdown(), m, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range advice {
		if a.ModeID != "W4" {
			continue
		}
		found = true
		if !strings.Contains(a.Remedy, "tuned for petascale2009") ||
			!strings.Contains(a.Remedy, "chunk=") {
			t.Fatalf("W4 remedy missing tuned parameter: %q", a.Remedy)
		}
	}
	if !found {
		t.Fatalf("W4 not diagnosed: %+v", advice)
	}
	// Modes without a registered tunable keep their generic remedy.
	rec2 := trace.NewRecorder(2)
	rec2.Add(0, trace.Compute, 500*time.Millisecond)
	rec2.Add(1, trace.Compute, 500*time.Millisecond)
	rec2.Add(0, trace.Serial, 400*time.Millisecond)
	rec2.Add(1, trace.Serial, 400*time.Millisecond)
	advice2, err := DiagnoseOn(rec2.Breakdown(), m, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range advice2 {
		if a.ModeID == "W5" && strings.Contains(a.Remedy, "tuned for") {
			t.Fatalf("W5 has no tunable but got tuned remedy: %q", a.Remedy)
		}
	}
}

func TestConfigDefaultsMachine(t *testing.T) {
	if (Config{}).machine().Name != "petascale2009" {
		t.Fatal("default machine should be petascale2009")
	}
	s := machine.Laptop2009()
	if (Config{Machine: s}).machine() != s {
		t.Fatal("explicit machine not returned")
	}
}

func TestSortCampaignCorrectAndRemediedWins(t *testing.T) {
	spec := machine.Petascale2009()
	w, err := SortCampaign(spec, 8, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	r, err := SortCampaign(spec, 8, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.Keys != 8*512 || r.Keys != 8*512 {
		t.Fatalf("key counts: %d / %d", w.Keys, r.Keys)
	}
	if r.Seconds >= w.Seconds {
		t.Fatalf("remedied sort (%g) should beat wasteful (%g)", r.Seconds, w.Seconds)
	}
	if r.Messages >= w.Messages {
		t.Fatalf("remedied should send fewer messages: %d vs %d", r.Messages, w.Messages)
	}
	if r.KeysPerJoule() <= w.KeysPerJoule() {
		t.Fatal("remedied should sort more keys per joule")
	}
	if (SortResult{}).KeysPerJoule() != 0 {
		t.Fatal("zero-energy sort should report 0 keys/J")
	}
}

func TestCGCampaignShapes(t *testing.T) {
	spec := machine.Petascale2009()
	// s-step must win at scale, where allreduce latency dominates.
	std, err := CGCampaign(spec, 64, 1024, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := CGCampaign(spec, 64, 1024, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Seconds >= std.Seconds {
		t.Fatalf("s-step (%g) should beat standard (%g) at P=64", ca.Seconds, std.Seconds)
	}
	if _, err := CGCampaign(spec, 3, 256, 5, 1); err == nil {
		t.Fatal("non-power-of-two ranks should fail")
	}
	if std.SecondsPerIteration() <= 0 {
		t.Fatal("per-iteration time")
	}
	if (CGCampaignResult{}).SecondsPerIteration() != 0 {
		t.Fatal("zero iterations should report 0")
	}
}

func TestNUMAExperimentShapes(t *testing.T) {
	out, err := NewLab().Run("F20", Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	fig := out.Figure
	// At factor 1 all placements tie; at the largest factor serial-init
	// must be worst and parallel first-touch best.
	last := len(fig.Xs) - 1
	var good, inter, bad float64
	for _, s := range fig.Series {
		switch s.Name {
		case "first-touch-parallel-init":
			good = s.Ys[last]
		case "interleaved":
			inter = s.Ys[last]
		case "first-touch-serial-init":
			bad = s.Ys[last]
		}
	}
	if !(good < inter && good < bad) {
		t.Fatalf("parallel first-touch should win: good=%g inter=%g bad=%g", good, inter, bad)
	}
	// In the latency-additive model serial-init and interleave both run
	// half remote on 2 domains.
	if bad < inter*0.75 || bad > inter*1.25 {
		t.Fatalf("serial-init (%g) should be comparable to interleave (%g) in this model", bad, inter)
	}
}

func TestDiagnoseModeledOversyncRun(t *testing.T) {
	// The unified-plane payoff: Diagnose works on simulated runs. An
	// oversynchronised world must be flagged W3; a latency-bound blocking
	// exchange must be flagged W6.
	spec := machine.Petascale2009()
	w := pgas.NewWorld(16, spec, nil, nil)
	end, err := w.Run(func(r *pgas.Rank) {
		c := collective.New(r)
		for s := 0; s < 20; s++ {
			r.Lapse(1e-6)
			c.BarrierCentral()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range Diagnose(w.Breakdown(end)) {
		if a.ModeID == "W3" {
			found = true
		}
	}
	if !found {
		t.Fatal("oversynced simulated run not diagnosed as W3")
	}

	w2 := pgas.NewWorld(2, spec, nil, nil)
	w2.Alloc("x", 1<<16)
	end2, err := w2.Run(func(r *pgas.Rank) {
		buf := make([]float64, 1<<16)
		for s := 0; s < 5; s++ {
			if r.ID() == 0 {
				r.Put(1, "x", 0, buf) // blocking, nothing overlapped
				r.Lapse(1e-6)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, a := range Diagnose(w2.Breakdown(end2)) {
		if a.ModeID == "W6" {
			found = true
		}
	}
	if !found {
		t.Fatal("blocking-exchange simulated run not diagnosed as W6")
	}
}

func TestBFSCampaignCorrectAndRemediedWins(t *testing.T) {
	spec := machine.Petascale2009()
	g := workload.RMAT(7, 9, 8)
	w, err := BFSCampaign(spec, 8, g, true)
	if err != nil {
		t.Fatal(err)
	}
	r, err := BFSCampaign(spec, 8, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.Levels == 0 || r.Levels != w.Levels {
		t.Fatalf("levels: wasteful %d, remedied %d", w.Levels, r.Levels)
	}
	if r.Seconds >= w.Seconds {
		t.Fatalf("remedied BFS (%g) should beat wasteful (%g)", r.Seconds, w.Seconds)
	}
	if r.TEPS() <= w.TEPS() {
		t.Fatal("remedied should traverse more edges per second")
	}
	if (BFSResult{}).TEPS() != 0 {
		t.Fatal("zero-time TEPS should be 0")
	}
	if _, err := BFSCampaign(spec, 3, g, false); err == nil {
		t.Fatal("non-pow2 remedied BFS should fail")
	}
	if _, err := BFSCampaign(spec, 7, g, true); err == nil {
		t.Fatal("non-dividing p should fail")
	}
}

func TestDiagnoseNoise(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Add(0, trace.Compute, 800*time.Millisecond)
	rec.Add(1, trace.Compute, 800*time.Millisecond)
	rec.Add(0, trace.Noise, 100*time.Millisecond)
	rec.Add(1, trace.Noise, 100*time.Millisecond)
	advice := Diagnose(rec.Breakdown())
	found := false
	for _, a := range advice {
		if a.ModeID == "N1" {
			found = true
			if a.Severity < 0.05 {
				t.Fatalf("noise severity = %g", a.Severity)
			}
		}
	}
	if !found {
		t.Fatalf("expected N1 noise advice, got %+v", advice)
	}
}

// TestDiagnoseAttributesInjectedNoise closes the loop end to end: a chaos
// scenario injected into a pgas run must surface as N1 in Diagnose.
func TestDiagnoseAttributesInjectedNoise(t *testing.T) {
	sc := chaos.NewScenario().Add(chaos.NewJitter(chaos.Exponential, 0.25, 7, 4))
	res, err := chaos.RunIdleWave(machine.Petascale2009(), chaos.IdleWaveConfig{
		Ranks: 4, Steps: 20, Compute: 1e-3, Words: 8, Stack: chaos.NeighborBlocking, Chaos: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Diagnose(res.Breakdown) {
		if a.ModeID == "N1" {
			return
		}
	}
	t.Fatalf("injected jitter not diagnosed: %v, advice %+v", res.Breakdown, Diagnose(res.Breakdown))
}
