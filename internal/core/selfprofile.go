package core

import (
	"context"
	"fmt"
	"time"

	"tenways/internal/obs"
	"tenways/internal/report"
)

// profileIDs is the deterministic sub-suite T10 profiles and F27 scales:
// cheap experiments chosen so every instrumented subsystem shows up — the
// simulation kernel and pgas runtime (T3, F3, F14), the chaos injectors
// and checkpoint machinery (F23, F24, F25), and the autotuner (F26).
var profileIDs = []string{"T3", "F3", "F14", "F23", "F24", "F25", "F26"}

// runT10 runs the profile sub-suite serially, each experiment on its own
// metrics registry, and tabulates the work each one performed: simulator
// events, messages and wire bytes, collective calls, injected noise, tuner
// evaluations, and host wall time. The wall column is measured, so it
// varies run to run; the work columns are deterministic.
func runT10(ctx context.Context, cfg Config) (Output, error) {
	inner := Config{Machine: cfg.Machine, Quick: cfg.Quick, Seed: cfg.Seed}
	start := time.Now()
	results, err := NewLab().RunAll(ctx, inner, RunOptions{Workers: 1, IDs: profileIDs})
	serialWall := time.Since(start)
	if err != nil {
		return Output{}, err
	}
	t := report.NewTable("T10",
		"lab self-profile: work metrics per experiment (wall is measured; the rest is deterministic)",
		"experiment", "wall", "sim events", "virtual s", "messages", "wire bytes",
		"coll ops", "coll bytes", "chaos inj", "tune evals")
	for _, r := range results {
		m := r.Metrics
		t.AddRow(r.ID,
			report.FormatSeconds(r.Wall.Seconds()),
			fmt.Sprintf("%d", m.Counter("sim.events")),
			report.FormatG(m.Gauge("sim.virtual_seconds")),
			fmt.Sprintf("%d", m.Counter("pgas.messages")),
			report.FormatBytes(float64(m.Counter("pgas.bytes_sent"))),
			fmt.Sprintf("%d", m.Counter("collective.ops")),
			report.FormatBytes(float64(m.Counter("collective.bytes"))),
			fmt.Sprintf("%d", m.Counter("chaos.injections")),
			fmt.Sprintf("%d", m.Counter("tune.evaluations")),
		)
	}
	// Footer: the same sub-suite serial vs on an 8-worker pool. The metric
	// totals are identical by construction (the work is deterministic); only
	// the wall time responds to the host's core count.
	total := obs.Snapshot{}
	for _, r := range results {
		total = total.Merge(r.Metrics)
	}
	start = time.Now()
	if _, err := NewLab().RunAll(ctx, inner, RunOptions{Workers: 8, IDs: profileIDs}); err != nil {
		return Output{}, err
	}
	parallelWall := time.Since(start)
	for _, row := range []struct {
		label string
		wall  time.Duration
	}{{"total (1 worker)", serialWall}, {"total (8 workers)", parallelWall}} {
		t.AddRow(row.label,
			report.FormatSeconds(row.wall.Seconds()),
			fmt.Sprintf("%d", total.Counter("sim.events")),
			report.FormatG(total.Gauge("sim.virtual_seconds")),
			fmt.Sprintf("%d", total.Counter("pgas.messages")),
			report.FormatBytes(float64(total.Counter("pgas.bytes_sent"))),
			fmt.Sprintf("%d", total.Counter("collective.ops")),
			report.FormatBytes(float64(total.Counter("collective.bytes"))),
			fmt.Sprintf("%d", total.Counter("chaos.injections")),
			fmt.Sprintf("%d", total.Counter("tune.evaluations")),
		)
	}
	return Output{Table: t}, nil
}

// runF27 measures the parallel runner itself: the profile sub-suite runs
// under increasing worker counts (always in quick mode to keep the repeats
// affordable) and the figure plots measured speedup over the one-worker
// run against the ideal linear line. Host wall time is measured, so this
// figure varies run to run.
func runF27(ctx context.Context, cfg Config) (Output, error) {
	workerCounts := []int{1, 2, 4, 8}
	if cfg.Quick {
		workerCounts = []int{1, 2, 4}
	}
	inner := Config{Machine: cfg.Machine, Quick: true, Seed: cfg.Seed}
	lab := NewLab()
	f := report.NewFigure("F27",
		fmt.Sprintf("parallel runner speedup vs workers (%d-experiment quick sub-suite, measured)", len(profileIDs)),
		"workers", "speedup")
	var serial float64
	var measured, ideal []float64
	for _, wk := range workerCounts {
		start := time.Now()
		if _, err := lab.RunAll(ctx, inner, RunOptions{Workers: wk, IDs: profileIDs}); err != nil {
			return Output{}, err
		}
		wall := time.Since(start).Seconds()
		if wall <= 0 {
			wall = 1e-9
		}
		if wk == 1 {
			serial = wall
		}
		f.Xs = append(f.Xs, float64(wk))
		measured = append(measured, serial/wall)
		ideal = append(ideal, float64(wk))
	}
	f.AddSeries("measured", measured)
	f.AddSeries("ideal", ideal)
	return Output{Figure: f}, nil
}
