package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"tenways/internal/chaos"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pdes"
	"tenways/internal/report"
)

// Config parameterises an experiment run.
type Config struct {
	// Machine is the modeled machine; nil selects Petascale2009.
	Machine *machine.Spec
	// Quick shrinks sweeps for fast runs (tests, -short benches).
	Quick bool
	// Seed drives the chaos experiments' injector streams; 0 selects
	// chaos.DefaultSeed. Two runs at the same seed produce identical
	// tables.
	Seed uint64
	// Obs receives the run's subsystem metrics (sim events, collective
	// bytes, scheduler steals, ...). nil selects the process-wide default
	// registry; RunAll gives every experiment its own so per-experiment
	// snapshots stay attributable under parallel execution.
	Obs *obs.Registry
	// PDESSync selects the partitioned engine's synchronisation discipline
	// for the experiments that run it (F28, F29): conservative windows by
	// default, optimistic Time-Warp when set. F30 tables both regardless.
	// Virtual results are byte-identical either way, so tables stay valid.
	PDESSync pdes.SyncKind
}

func (c Config) machine() *machine.Spec {
	if c.Machine != nil {
		return c.Machine
	}
	return machine.Petascale2009()
}

func (c Config) seed() uint64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return chaos.DefaultSeed
}

// metrics returns the registry experiment code should record into.
func (c Config) metrics() *obs.Registry {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Default()
}

// Output is what an experiment produces: a table, a figure, or both.
type Output struct {
	Table  *report.Table
	Figure *report.Figure
}

// Render writes the output for terminals (the ASCII renderer).
func (o Output) Render(w io.Writer) error {
	return o.RenderWith(w, report.ASCII{})
}

// RenderWith writes the output through the given renderer: the table
// first, then the figure, separated by a blank line.
func (o Output) RenderWith(w io.Writer, r report.Renderer) error {
	if o.Table != nil {
		if err := r.Table(w, o.Table); err != nil {
			return err
		}
	}
	if o.Figure != nil {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := r.Figure(w, o.Figure); err != nil {
			return err
		}
	}
	return nil
}

// Experiment regenerates one table or figure of the evaluation suite.
type Experiment struct {
	ID    string // "T1".."T12", "F1".."F30"
	Title string
	// Measured marks experiments whose cells come from host wall-clock
	// measurement (T10, F27) rather than the deterministic simulation:
	// their numbers legitimately vary between runs, so byte-identity
	// checks and reproducibility tests must skip them.
	Measured bool
	Run      func(ctx context.Context, cfg Config) (Output, error)
}

// Lab is the experiment registry.
type Lab struct {
	byID  map[string]Experiment
	order []string
}

// NewLab returns a lab with the full evaluation suite registered.
func NewLab() *Lab {
	l := &Lab{byID: make(map[string]Experiment)}
	for _, e := range allExperiments() {
		l.register(e)
	}
	return l
}

func (l *Lab) register(e Experiment) {
	if _, dup := l.byID[e.ID]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %q", e.ID))
	}
	l.byID[e.ID] = e
	l.order = append(l.order, e.ID)
}

// Experiments returns all experiments in registration order.
func (l *Lab) Experiments() []Experiment {
	out := make([]Experiment, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, l.byID[id])
	}
	return out
}

// IDs returns the registered experiment IDs in registration order.
func (l *Lab) IDs() []string {
	return append([]string(nil), l.order...)
}

// Get returns the experiment with the given ID, matched
// case-insensitively ("t8" and "T8" name the same experiment).
func (l *Lab) Get(id string) (Experiment, error) {
	if e, ok := l.byID[id]; ok {
		return e, nil
	}
	for _, known := range l.order {
		if strings.EqualFold(known, id) {
			return l.byID[known], nil
		}
	}
	known := append([]string(nil), l.order...)
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (known: %v)", id, known)
}

// Run executes the experiment with the given ID under a background
// context. Use RunContext to bound or cancel the run.
func (l *Lab) Run(id string, cfg Config) (Output, error) {
	return l.RunContext(context.Background(), id, cfg)
}

// RunContext executes the experiment with the given ID under ctx.
func (l *Lab) RunContext(ctx context.Context, id string, cfg Config) (Output, error) {
	e, err := l.Get(id)
	if err != nil {
		return Output{}, err
	}
	return e.Run(ctx, cfg)
}

func allExperiments() []Experiment {
	return []Experiment{
		{ID: "T1", Title: "The ten ways: time & energy waste factors", Run: runT1},
		{ID: "T2", Title: "Machine balance across presets", Run: runT2},
		{ID: "T3", Title: "Collective algorithms: modeled latency", Run: runT3},
		{ID: "T4", Title: "Kernel arithmetic intensity and roofline bounds", Run: runT4},
		{ID: "T5", Title: "Science per joule: stencil steps/J across machines", Run: runT5},
		{ID: "F1", Title: "W1: matmul DRAM traffic and time vs block size", Run: runF1},
		{ID: "F2", Title: "W2: wire traffic vs redundant-transfer factor", Run: runF2},
		{ID: "F3", Title: "W3: barrier-per-step vs neighbour sync vs ranks", Run: runF3},
		{ID: "F4", Title: "W4: efficiency vs skew, static vs dynamic", Run: runF4},
		{ID: "F5", Title: "W5: throughput vs cores, lock vs sharded", Run: runF5},
		{ID: "F6", Title: "W6: overlap win vs compute/communication ratio", Run: runF6},
		{ID: "F7", Title: "W7: transfer time vs message size (aggregation)", Run: runF7},
		{ID: "F8", Title: "W8: rooflines of all machine presets", Run: runF8},
		{ID: "F9", Title: "W9: false-sharing cost vs counter stride", Run: runF9},
		{ID: "F10", Title: "W10: energy vs idle fraction, spin vs block", Run: runF10},
		{ID: "F11", Title: "Integrated strong scaling, wasteful vs remedied", Run: runF11},
		{ID: "F12", Title: "Integrated weak scaling, wasteful vs remedied", Run: runF12},
		{ID: "F13", Title: "Communication-avoiding matmul vs replication", Run: runF13},
		{ID: "F14", Title: "Allreduce algorithms vs rank count", Run: runF14},
		{ID: "T6", Title: "Collective schedules under topology contention", Run: runT6},
		{ID: "T7", Title: "Karp–Flatt serial-fraction analysis of the stencil", Run: runT7},
		{ID: "F15", Title: "DAG speedup vs workers against the work/span bound", Run: runF15},
		{ID: "F16", Title: "Speedup laws: Amdahl vs Gustafson", Run: runF16},
		{ID: "F17", Title: "Prefetcher ablation: latency hidden, energy not", Run: runF17},
		{ID: "F18", Title: "Distributed sample sort, wasteful vs remedied stack", Run: runF18},
		{ID: "F19", Title: "Distributed CG: standard vs communication-avoiding s-step", Run: runF19},
		{ID: "F20", Title: "NUMA placement: first-touch vs interleave vs serial-init", Run: runF20},
		{ID: "F21", Title: "Distributed BFS (Graph500-style), wasteful vs remedied stack", Run: runF21},
		{ID: "T8", Title: "Noise amplification by synchronisation stack", Run: runT8},
		{ID: "F22", Title: "Idle-wave propagation speed vs neighbour offsets and topology", Run: runF22},
		{ID: "F23", Title: "Idle-wave decay under noise-absorbing synchronisation", Run: runF23},
		{ID: "F24", Title: "Straggler mitigation: static vs over-decomposed self-scheduling", Run: runF24},
		{ID: "F25", Title: "Checkpoint/replay under rank failure: interval trade-off", Run: runF25},
		{ID: "T9", Title: "Autotuned remedy parameters: tuned vs default vs oracle", Run: runT9},
		{ID: "F26", Title: "Tuner convergence: best-so-far cost vs evaluations", Run: runF26},
		{ID: "T10", Title: "Lab self-profile: per-experiment work metrics", Run: runT10, Measured: true},
		{ID: "F27", Title: "Parallel runner speedup vs worker count", Run: runF27, Measured: true},
		{ID: "T11", Title: "wastevet self-audit: rule-to-waste-mode map and finding counts", Run: runT11},
		{ID: "T12", Title: "wastelabd self-measurement: request-path policies vs daemon waste modes", Run: runT12},
		{ID: "F28", Title: "Idle-wave propagation at scale: measured vs analytic wave speed (partitioned PDES)", Run: runF28},
		{ID: "F29", Title: "Engine hot path: queue discipline and window barrier, wasteful vs remedied", Run: runF29, Measured: true},
		{ID: "F30", Title: "Optimistic Time-Warp vs conservative windows: committed-event efficiency", Run: runF30, Measured: true},
		{ID: "T13", Title: "wastevet autofix coverage: per-package findings at-intro vs post-fix", Run: runT13},
	}
}
