package core

// Shape tests: every qualitative claim EXPERIMENTS.md makes about a table
// or figure — who wins, what grows, where crossovers fall — is asserted
// here against the full-size (non-Quick) experiment outputs, so the
// documentation cannot drift from the code. These run the complete suite
// and are skipped in -short mode.

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func fmtSscan(s string, f *float64) (int, error) { return fmt.Sscan(s, f) }

func fullFigure(t *testing.T, id string) (*Lab, map[string][]float64, []float64) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-size experiment")
	}
	lab := NewLab()
	out, err := lab.Run(id, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Figure == nil {
		t.Fatalf("%s: no figure", id)
	}
	series := map[string][]float64{}
	for _, s := range out.Figure.Series {
		series[s.Name] = s.Ys
	}
	return lab, series, out.Figure.Xs
}

func monotoneNonIncreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1]*(1+1e-9) {
			return false
		}
	}
	return true
}

func TestShapeF7AggregationMonotone(t *testing.T) {
	_, s, _ := fullFigure(t, "F7")
	secs := s["modeled-seconds"]
	if !monotoneNonIncreasing(secs) {
		t.Fatalf("F7 seconds not monotone: %v", secs)
	}
	// One-word messages must be at least 100x slower than bulk.
	if secs[0] < 100*secs[len(secs)-1] {
		t.Fatalf("aggregation win too small: %g vs %g", secs[0], secs[len(secs)-1])
	}
}

func TestShapeF14RecursiveDoublingWinsAtScale(t *testing.T) {
	_, s, xs := fullFigure(t, "F14")
	last := len(xs) - 1
	rd := s["recursive-doubling"][last]
	if flat := s["flat"][last]; rd >= flat {
		t.Fatalf("P=%g: rd (%g) should beat flat (%g)", xs[last], rd, flat)
	}
	if ring := s["ring"][last]; rd >= ring {
		t.Fatalf("P=%g: rd (%g) should beat ring (%g) at this message size", xs[last], rd, ring)
	}
}

func TestShapeF13InverseSqrtC(t *testing.T) {
	_, s, xs := fullFigure(t, "F13")
	words := s["words-per-proc"]
	for i, c := range xs {
		want := words[0] / math.Sqrt(c)
		if math.Abs(words[i]-want) > 1e-6*want {
			t.Fatalf("c=%g: words %g, want %g (∝1/sqrt(c))", c, words[i], want)
		}
	}
	// Memory grows linearly in c.
	mem := s["memory-GiB"]
	if math.Abs(mem[len(mem)-1]/mem[0]-xs[len(xs)-1]/xs[0]) > 1e-6 {
		t.Fatal("memory not ∝ c")
	}
}

func TestShapeF16GustafsonDominates(t *testing.T) {
	_, s, _ := fullFigure(t, "F16")
	for name, ys := range s {
		if !strings.HasPrefix(name, "gustafson") {
			continue
		}
		am := s["amdahl"+strings.TrimPrefix(name, "gustafson")]
		for i := range ys {
			if ys[i] < am[i]-1e-9 {
				t.Fatalf("%s below its Amdahl curve at index %d", name, i)
			}
		}
	}
}

func TestShapeF15ChainAndFanout(t *testing.T) {
	_, s, xs := fullFigure(t, "F15")
	for name, ys := range s {
		if strings.HasPrefix(name, "chain") {
			for i, y := range ys {
				if math.Abs(y-1) > 1e-9 {
					t.Fatalf("chain speedup at P=%g is %g, want 1", xs[i], y)
				}
			}
		}
		if strings.HasPrefix(name, "fan-out") {
			if last := ys[len(ys)-1]; last < 40 {
				t.Fatalf("fan-out speedup at P=%g only %g", xs[len(xs)-1], last)
			}
		}
	}
}

func TestShapeF10IdleEnergy(t *testing.T) {
	_, s, xs := fullFigure(t, "F10")
	spin := s["spin"]
	block := s["block"]
	prop := s["block-proportional"]
	for i := range xs {
		if spin[i] < block[i]-1e-9 || block[i] < prop[i]-1e-9 {
			t.Fatalf("idle=%g: ordering violated: spin=%g block=%g prop=%g",
				xs[i], spin[i], block[i], prop[i])
		}
	}
	// Spin is flat (always full power); proportional falls with idleness.
	if math.Abs(spin[0]-spin[len(spin)-1]) > 1e-9 {
		t.Fatal("spin energy should not depend on idle fraction")
	}
	if prop[len(prop)-1] >= prop[0] {
		t.Fatal("proportional energy should fall with idleness")
	}
}

func TestShapeF11StrongScaling(t *testing.T) {
	_, s, xs := fullFigure(t, "F11")
	rem := s["remedied-stack"]
	ideal := s["ideal"]
	waste := s["wasteful-stack"]
	for i := range xs {
		p := xs[i]
		if p <= 64 && rem[i] > 2*ideal[i] {
			t.Fatalf("P=%g: remedied %g more than 2x off ideal %g", p, rem[i], ideal[i])
		}
		if p >= 16 && waste[i] < 3*rem[i] {
			t.Fatalf("P=%g: wasteful (%g) should be >=3x remedied (%g)", p, waste[i], rem[i])
		}
	}
}

func TestShapeF3SyncCost(t *testing.T) {
	_, s, xs := fullFigure(t, "F3")
	global := s["global-barrier"]
	nb := s["neighbour-sync"]
	// Global grows with P; neighbour is ~flat after P=8.
	if global[len(global)-1] <= global[0] {
		t.Fatal("global barrier cost should grow with ranks")
	}
	growth := nb[len(nb)-1] / nb[1]
	if growth > 1.5 {
		t.Fatalf("neighbour sync should be ~flat, grew %gx", growth)
	}
	for i := range xs {
		if xs[i] >= 16 && global[i] <= nb[i] {
			t.Fatalf("P=%g: global (%g) should exceed neighbour (%g)", xs[i], global[i], nb[i])
		}
	}
}

func TestShapeF5Serialization(t *testing.T) {
	_, s, xs := fullFigure(t, "F5")
	locked := s["global-lock"]
	sharded := s["sharded"]
	// Locked throughput is flat in cores; sharded scales ~linearly.
	if math.Abs(locked[len(locked)-1]/locked[0]-1) > 0.01 {
		t.Fatal("locked throughput should not scale")
	}
	gain := sharded[len(sharded)-1] / sharded[0]
	wantGain := xs[len(xs)-1] / xs[0]
	if gain < 0.8*wantGain {
		t.Fatalf("sharded should scale ~linearly: gained %gx over %gx cores", gain, wantGain)
	}
}

func TestShapeF2LinearInResendFactor(t *testing.T) {
	_, s, xs := fullFigure(t, "F2")
	wire := s["wire-MiB"]
	for i := range xs {
		want := wire[0] * xs[i] / xs[0]
		if math.Abs(wire[i]-want) > 0.02*want {
			t.Fatalf("factor %g: wire %g, want ~%g (linear)", xs[i], wire[i], want)
		}
	}
}

func TestShapeF17PrefetchEnergyNotSaved(t *testing.T) {
	_, s, xs := fullFigure(t, "F17")
	tOff := s["seconds-no-prefetch"]
	tOn := s["seconds-prefetch"]
	eOff := s["joules-no-prefetch"]
	eOn := s["joules-prefetch"]
	// Sequential (stride 8): prefetch must cut time substantially.
	if tOn[0] > 0.5*tOff[0] {
		t.Fatalf("prefetch too weak on sequential scan: %g vs %g", tOn[0], tOff[0])
	}
	for i := range xs {
		if eOn[i] < eOff[i]-1e-12 {
			t.Fatalf("stride %g: prefetch cannot reduce energy (%g < %g)", xs[i], eOn[i], eOff[i])
		}
	}
	// Large strides defeat a next-line prefetcher and waste fetches.
	last := len(xs) - 1
	if eOn[last] < 1.5*eOff[last] {
		t.Fatalf("defeated prefetcher should waste energy: %g vs %g", eOn[last], eOff[last])
	}
}

func TestShapeF19SStepWinsAtScale(t *testing.T) {
	_, s, xs := fullFigure(t, "F19")
	std := s["standard-cg"]
	ca := s["s-step-cg-s4"]
	last := len(xs) - 1
	if ca[last] >= std[last] {
		t.Fatalf("P=%g: s-step (%g) should beat standard (%g)", xs[last], ca[last], std[last])
	}
}

func TestShapeT5ImprovementEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size experiment")
	}
	out, err := NewLab().Run("T5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, row := range out.Table.Rows {
		if row[1] != "remedied" {
			continue
		}
		cell := strings.TrimSuffix(row[6], "x")
		var f float64
		if _, err := fmtSscan(cell, &f); err != nil {
			t.Fatalf("bad improvement cell %q", row[6])
		}
		if f < 2 {
			t.Fatalf("%s: steps/J improvement only %gx", row[0], f)
		}
		improved++
	}
	if improved != 4 {
		t.Fatalf("expected 4 remedied rows, got %d", improved)
	}
}
