package core

// Shape tests: every qualitative claim EXPERIMENTS.md makes about a table
// or figure — who wins, what grows, where crossovers fall — is asserted
// here against the full-size (non-Quick) experiment outputs, so the
// documentation cannot drift from the code. These run the complete suite
// and are skipped in -short mode.

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"tenways/internal/obs"
)

func fmtSscan(s string, f *float64) (int, error) { return fmt.Sscan(s, f) }

func fullFigure(t *testing.T, id string) (*Lab, map[string][]float64, []float64) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-size experiment")
	}
	lab := NewLab()
	out, err := lab.Run(id, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Figure == nil {
		t.Fatalf("%s: no figure", id)
	}
	series := map[string][]float64{}
	for _, s := range out.Figure.Series {
		series[s.Name] = s.Ys
	}
	return lab, series, out.Figure.Xs
}

func monotoneNonIncreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1]*(1+1e-9) {
			return false
		}
	}
	return true
}

func TestShapeF7AggregationMonotone(t *testing.T) {
	_, s, _ := fullFigure(t, "F7")
	secs := s["modeled-seconds"]
	if !monotoneNonIncreasing(secs) {
		t.Fatalf("F7 seconds not monotone: %v", secs)
	}
	// One-word messages must be at least 100x slower than bulk.
	if secs[0] < 100*secs[len(secs)-1] {
		t.Fatalf("aggregation win too small: %g vs %g", secs[0], secs[len(secs)-1])
	}
}

func TestShapeF14RecursiveDoublingWinsAtScale(t *testing.T) {
	_, s, xs := fullFigure(t, "F14")
	last := len(xs) - 1
	rd := s["recursive-doubling"][last]
	if flat := s["flat"][last]; rd >= flat {
		t.Fatalf("P=%g: rd (%g) should beat flat (%g)", xs[last], rd, flat)
	}
	if ring := s["ring"][last]; rd >= ring {
		t.Fatalf("P=%g: rd (%g) should beat ring (%g) at this message size", xs[last], rd, ring)
	}
}

func TestShapeF13InverseSqrtC(t *testing.T) {
	_, s, xs := fullFigure(t, "F13")
	words := s["words-per-proc"]
	for i, c := range xs {
		want := words[0] / math.Sqrt(c)
		if math.Abs(words[i]-want) > 1e-6*want {
			t.Fatalf("c=%g: words %g, want %g (∝1/sqrt(c))", c, words[i], want)
		}
	}
	// Memory grows linearly in c.
	mem := s["memory-GiB"]
	if math.Abs(mem[len(mem)-1]/mem[0]-xs[len(xs)-1]/xs[0]) > 1e-6 {
		t.Fatal("memory not ∝ c")
	}
}

func TestShapeF16GustafsonDominates(t *testing.T) {
	_, s, _ := fullFigure(t, "F16")
	for name, ys := range s {
		if !strings.HasPrefix(name, "gustafson") {
			continue
		}
		am := s["amdahl"+strings.TrimPrefix(name, "gustafson")]
		for i := range ys {
			if ys[i] < am[i]-1e-9 {
				t.Fatalf("%s below its Amdahl curve at index %d", name, i)
			}
		}
	}
}

func TestShapeF15ChainAndFanout(t *testing.T) {
	_, s, xs := fullFigure(t, "F15")
	for name, ys := range s {
		if strings.HasPrefix(name, "chain") {
			for i, y := range ys {
				if math.Abs(y-1) > 1e-9 {
					t.Fatalf("chain speedup at P=%g is %g, want 1", xs[i], y)
				}
			}
		}
		if strings.HasPrefix(name, "fan-out") {
			if last := ys[len(ys)-1]; last < 40 {
				t.Fatalf("fan-out speedup at P=%g only %g", xs[len(xs)-1], last)
			}
		}
	}
}

func TestShapeF10IdleEnergy(t *testing.T) {
	_, s, xs := fullFigure(t, "F10")
	spin := s["spin"]
	block := s["block"]
	prop := s["block-proportional"]
	for i := range xs {
		if spin[i] < block[i]-1e-9 || block[i] < prop[i]-1e-9 {
			t.Fatalf("idle=%g: ordering violated: spin=%g block=%g prop=%g",
				xs[i], spin[i], block[i], prop[i])
		}
	}
	// Spin is flat (always full power); proportional falls with idleness.
	if math.Abs(spin[0]-spin[len(spin)-1]) > 1e-9 {
		t.Fatal("spin energy should not depend on idle fraction")
	}
	if prop[len(prop)-1] >= prop[0] {
		t.Fatal("proportional energy should fall with idleness")
	}
}

func TestShapeF11StrongScaling(t *testing.T) {
	_, s, xs := fullFigure(t, "F11")
	rem := s["remedied-stack"]
	ideal := s["ideal"]
	waste := s["wasteful-stack"]
	for i := range xs {
		p := xs[i]
		if p <= 64 && rem[i] > 2*ideal[i] {
			t.Fatalf("P=%g: remedied %g more than 2x off ideal %g", p, rem[i], ideal[i])
		}
		if p >= 16 && waste[i] < 3*rem[i] {
			t.Fatalf("P=%g: wasteful (%g) should be >=3x remedied (%g)", p, waste[i], rem[i])
		}
	}
}

func TestShapeF3SyncCost(t *testing.T) {
	_, s, xs := fullFigure(t, "F3")
	global := s["global-barrier"]
	nb := s["neighbour-sync"]
	// Global grows with P; neighbour is ~flat after P=8.
	if global[len(global)-1] <= global[0] {
		t.Fatal("global barrier cost should grow with ranks")
	}
	growth := nb[len(nb)-1] / nb[1]
	if growth > 1.5 {
		t.Fatalf("neighbour sync should be ~flat, grew %gx", growth)
	}
	for i := range xs {
		if xs[i] >= 16 && global[i] <= nb[i] {
			t.Fatalf("P=%g: global (%g) should exceed neighbour (%g)", xs[i], global[i], nb[i])
		}
	}
}

func TestShapeF5Serialization(t *testing.T) {
	_, s, xs := fullFigure(t, "F5")
	locked := s["global-lock"]
	sharded := s["sharded"]
	// Locked throughput is flat in cores; sharded scales ~linearly.
	if math.Abs(locked[len(locked)-1]/locked[0]-1) > 0.01 {
		t.Fatal("locked throughput should not scale")
	}
	gain := sharded[len(sharded)-1] / sharded[0]
	wantGain := xs[len(xs)-1] / xs[0]
	if gain < 0.8*wantGain {
		t.Fatalf("sharded should scale ~linearly: gained %gx over %gx cores", gain, wantGain)
	}
}

func TestShapeF2LinearInResendFactor(t *testing.T) {
	_, s, xs := fullFigure(t, "F2")
	wire := s["wire-MiB"]
	for i := range xs {
		want := wire[0] * xs[i] / xs[0]
		if math.Abs(wire[i]-want) > 0.02*want {
			t.Fatalf("factor %g: wire %g, want ~%g (linear)", xs[i], wire[i], want)
		}
	}
}

func TestShapeF17PrefetchEnergyNotSaved(t *testing.T) {
	_, s, xs := fullFigure(t, "F17")
	tOff := s["seconds-no-prefetch"]
	tOn := s["seconds-prefetch"]
	eOff := s["joules-no-prefetch"]
	eOn := s["joules-prefetch"]
	// Sequential (stride 8): prefetch must cut time substantially.
	if tOn[0] > 0.5*tOff[0] {
		t.Fatalf("prefetch too weak on sequential scan: %g vs %g", tOn[0], tOff[0])
	}
	for i := range xs {
		if eOn[i] < eOff[i]-1e-12 {
			t.Fatalf("stride %g: prefetch cannot reduce energy (%g < %g)", xs[i], eOn[i], eOff[i])
		}
	}
	// Large strides defeat a next-line prefetcher and waste fetches.
	last := len(xs) - 1
	if eOn[last] < 1.5*eOff[last] {
		t.Fatalf("defeated prefetcher should waste energy: %g vs %g", eOn[last], eOff[last])
	}
}

func TestShapeF19SStepWinsAtScale(t *testing.T) {
	_, s, xs := fullFigure(t, "F19")
	std := s["standard-cg"]
	ca := s["s-step-cg-s4"]
	last := len(xs) - 1
	if ca[last] >= std[last] {
		t.Fatalf("P=%g: s-step (%g) should beat standard (%g)", xs[last], ca[last], std[last])
	}
}

func TestShapeT5ImprovementEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size experiment")
	}
	out, err := NewLab().Run("T5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, row := range out.Table.Rows {
		if row[1] != "remedied" {
			continue
		}
		cell := strings.TrimSuffix(row[6], "x")
		var f float64
		if _, err := fmtSscan(cell, &f); err != nil {
			t.Fatalf("bad improvement cell %q", row[6])
		}
		if f < 2 {
			t.Fatalf("%s: steps/J improvement only %gx", row[0], f)
		}
		improved++
	}
	if improved != 4 {
		t.Fatalf("expected 4 remedied rows, got %d", improved)
	}
}

func TestShapeF22WaveFiniteSpeed(t *testing.T) {
	_, s, xs := fullFigure(t, "F22")
	p := len(xs)
	// The wave reaches every rank, monotonically later with distance, and a
	// longer neighbour offset makes it arrive sooner at the far end.
	short := s["logGP d={1}"]
	long := s["logGP d={1,4}"]
	for r := 1; r < p; r++ {
		if short[r] < 0 || long[r] < 0 {
			t.Fatalf("wave never arrived at rank %d: %v / %v", r, short[r], long[r])
		}
		if short[r] < short[r-1] {
			t.Fatalf("d={1} wavefront not monotone at rank %d: %v", r, short)
		}
	}
	if long[p-1] >= short[p-1] {
		t.Fatalf("longer offsets should accelerate the wave: d={1,4} %gms vs d={1} %gms",
			long[p-1], short[p-1])
	}
}

func TestShapeF23NoiseAbsorbingStacksDamp(t *testing.T) {
	_, s, xs := fullFigure(t, "F23")
	p := len(xs)
	victim := p - 1
	flat := s["flat-barrier"]
	tree := s["tree-barrier"]
	async := s["neighbor-async"]
	nb := s["nonblocking-barrier"]
	blocking := s["neighbor-blocking"]
	// Blocking stacks relay the full spike to rank 0; the async chain damps
	// it to nothing; the split-phase barrier keeps everyone but the victim
	// below the blocking-barrier amplitude.
	if async[0] > flat[0]/10 {
		t.Fatalf("async chain did not damp the wave: %g vs flat %g", async[0], flat[0])
	}
	if blocking[0] < 0.9*flat[0] || tree[0] < 0.9*flat[0] {
		t.Fatalf("blocking stacks should relay full amplitude: chain %g, tree %g, flat %g",
			blocking[0], tree[0], flat[0])
	}
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		if nb[r] >= flat[r] {
			t.Fatalf("non-blocking barrier absorbed nothing at rank %d: %g vs %g", r, nb[r], flat[r])
		}
	}
}

func TestShapeF24SelfSchedulingBeatsStatic(t *testing.T) {
	_, s, xs := fullFigure(t, "F24")
	static := s["static partition"]
	dyn := s["self-scheduling (over-decomposed)"]
	last := len(xs) - 1
	// Static efficiency collapses as 1/factor; self-scheduling stays high.
	if static[last] > 0.2 {
		t.Fatalf("static efficiency should collapse under a %gx straggler: %g", xs[last], static[last])
	}
	if dyn[last] < 3*static[last] {
		t.Fatalf("self-scheduling should far outperform static: %g vs %g", dyn[last], static[last])
	}
	if !monotoneNonIncreasing(static) {
		t.Fatalf("static efficiency not monotone in slowdown: %v", static)
	}
}

func TestShapeF25CheckpointUCurve(t *testing.T) {
	_, s, xs := fullFigure(t, "F25")
	fail := s["with failure"]
	clean := s["failure-free (overhead only)"]
	bare := s["no checkpoints + failure"]
	// Overhead-only time falls as checkpoints get rarer.
	if !monotoneNonIncreasing(clean) {
		t.Fatalf("failure-free overhead not monotone: %v", clean)
	}
	// The failure curve is a U: its interior minimum beats both endpoints.
	best, bestI := math.Inf(1), -1
	for i, y := range fail {
		if y < best {
			best, bestI = y, i
		}
	}
	if bestI == 0 || bestI == len(fail)-1 {
		t.Fatalf("no interior optimum: %v (min at %g)", fail, xs[bestI])
	}
	// Any checkpointed run with failure beats replaying the whole campaign.
	for i, y := range fail {
		if y >= bare[i] {
			t.Fatalf("checkpointing at interval %g did not beat no checkpoints: %g vs %g",
				xs[i], y, bare[i])
		}
	}
}

func TestShapeT9TunedBeatsDefaultEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size experiment")
	}
	out, err := NewLab().Run("T9", Config{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := out.Table
	// Columns: tunable, machine, default, tuned, default cost, tuned cost,
	// oracle cost, evals, saving. The tuner must match or beat the
	// hand-picked default on every (tunable, preset) pair.
	if len(tbl.Rows) < 12 {
		t.Fatalf("T9 rows = %d, want >= 12 (tunables x presets)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		var saving float64
		if _, err := fmtSscan(strings.TrimSuffix(row[8], "%"), &saving); err != nil {
			t.Fatalf("bad saving cell %q: %v", row[8], err)
		}
		if saving < -0.05 {
			t.Errorf("%s on %s: tuned loses to default (saving %g%%)", row[0], row[1], saving)
		}
	}
}

func TestShapeF26GoldenConvergesFast(t *testing.T) {
	_, s, xs := fullFigure(t, "F26")
	var grid, golden []float64
	goldenEvals := 0
	for name, ys := range s {
		switch {
		case strings.HasPrefix(name, "grid"):
			grid = ys
		case strings.HasPrefix(name, "golden"):
			golden = ys
			if _, err := fmt.Sscanf(name, "golden (%d evals)", &goldenEvals); err != nil {
				t.Fatalf("bad golden series name %q: %v", name, err)
			}
		}
	}
	if grid == nil || golden == nil {
		t.Fatalf("missing series: have %d", len(s))
	}
	if goldenEvals > 15 {
		t.Errorf("golden-section used %d evaluations, want <= 15", goldenEvals)
	}
	if len(xs) < 30 {
		t.Errorf("grid sweep only %d evaluations; the checkpoint axis should need a full sweep", len(xs))
	}
	last := len(xs) - 1
	if golden[last] > 1.10*grid[last] {
		t.Errorf("golden final %g > 1.10 x grid floor %g", golden[last], grid[last])
	}
	for name, ys := range s {
		if !monotoneNonIncreasing(ys) {
			t.Errorf("%s best-so-far curve not monotone: %v", name, ys)
		}
	}
}

func TestShapeT8BlockingAmplifiesNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size experiment")
	}
	out, err := NewLab().Run("T8", Config{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := out.Table
	// Columns: injector, nb-time, nb-ampl, flat-time, flat-ampl, split-time,
	// split-ampl. For every injector row, the flat barrier's amplification
	// must exceed the neighbour chain's: global synchronisation spreads each
	// rank's noise to all ranks.
	col := map[string]int{}
	for i, h := range tbl.Headers {
		col[h] = i
	}
	parse := func(cell string) float64 {
		var f float64
		if _, err := fmtSscan(strings.TrimSuffix(cell, "x"), &f); err != nil {
			t.Fatalf("bad factor cell %q: %v", cell, err)
		}
		return f
	}
	rows := 0
	for _, row := range tbl.Rows {
		if row[0] == "none" || strings.HasPrefix(row[0], "straggler") {
			continue
		}
		rows++
		nbAmpl := parse(row[2])
		flatAmpl := parse(row[4])
		if flatAmpl <= nbAmpl {
			t.Errorf("%s: flat barrier should amplify more than the neighbour chain: %g vs %g",
				row[0], flatAmpl, nbAmpl)
		}
		if flatAmpl < 1 {
			t.Errorf("%s: flat-barrier amplification below 1: %g", row[0], flatAmpl)
		}
	}
	if rows == 0 {
		t.Fatal("no jitter rows found in T8")
	}
}

// TestShapeT10WorkAttribution asserts the claims EXPERIMENTS.md makes about
// the lab self-profile: the collective sweep dominates wire traffic, the
// analytic experiments perform no simulator work, only the chaos
// experiments inject noise, and only the tuner experiment evaluates.
// Quick mode suffices — the attribution pattern is scale-independent.
func TestShapeT10WorkAttribution(t *testing.T) {
	results, err := NewLab().RunAll(context.Background(), Config{Quick: true},
		RunOptions{Workers: 2, IDs: profileIDs})
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]obs.Snapshot{}
	for _, r := range results {
		m[r.ID] = r.Metrics
	}
	for _, id := range profileIDs {
		if id == "T3" {
			continue
		}
		if m["T3"].Counter("pgas.bytes_sent") < 10*m[id].Counter("pgas.bytes_sent") {
			t.Errorf("T3 should dominate wire bytes: T3=%d, %s=%d",
				m["T3"].Counter("pgas.bytes_sent"), id, m[id].Counter("pgas.bytes_sent"))
		}
	}
	for _, id := range []string{"F3", "F26"} {
		if n := m[id].Counter("sim.events"); n != 0 {
			t.Errorf("%s is analytic but performed %d sim events", id, n)
		}
	}
	for _, id := range profileIDs {
		inj := m[id].Counter("chaos.injections")
		if chaotic := id == "F23" || id == "F24"; chaotic != (inj > 0) {
			t.Errorf("%s: chaos.injections = %d", id, inj)
		}
		evals := m[id].Counter("tune.evaluations")
		if (id == "F26") != (evals > 0) {
			t.Errorf("%s: tune.evaluations = %d", id, evals)
		}
	}
}
