// Package core integrates the tenways library: the Lab experiment registry
// that regenerates every table and figure of the evaluation suite, the
// Diagnose engine that maps a measured trace breakdown to the waste modes
// it exhibits, and the integrated stencil campaign that stacks several
// wastes (and their remedies) into one application — the keynote's call to
// treat the problem end to end rather than optimising components in
// isolation.
package core

import (
	"fmt"
	"sort"

	"tenways/internal/machine"
	"tenways/internal/trace"
	"tenways/internal/tune"
)

// Advice is one matched waste mode with its evidence.
type Advice struct {
	ModeID   string
	Name     string
	Severity float64 // fraction of run wasted, in [0, 1]; higher is worse
	Evidence string
	Remedy   string
}

// Thresholds below which a category is considered measurement noise rather
// than waste. Injected noise gets a lower bar: even a few percent of
// extrinsic jitter is worth calling out, because blocking synchronisation
// amplifies it.
const (
	fractionThreshold  = 0.10
	imbalanceThreshold = 0.20
	noiseThreshold     = 0.05
)

// Diagnose inspects a measured trace breakdown and returns the waste modes
// it exhibits, most severe first. An empty slice means the run looks
// healthy under the trace's categories (cache- and message-level wastes
// need the modeled plane to detect and are not visible in a wall-clock
// trace).
func Diagnose(b trace.Breakdown) []Advice {
	var out []Advice
	if f := b.Fraction(trace.SyncWait); f > fractionThreshold {
		out = append(out, Advice{
			ModeID:   "W3",
			Name:     "over-synchronisation",
			Severity: f,
			Evidence: fmt.Sprintf("%.0f%% of attributed time waiting at synchronisation points", 100*f),
			Remedy:   "replace global barriers with point-to-point or neighbourhood synchronisation",
		})
	}
	if im := b.Imbalance(); im > imbalanceThreshold {
		sev := im / (1 + im) // busiest/mean excess, mapped into [0,1)
		out = append(out, Advice{
			ModeID:   "W4",
			Name:     "load imbalance",
			Severity: sev,
			Evidence: fmt.Sprintf("busiest worker carries %.0f%% more than the mean", 100*im),
			Remedy:   "switch static partitioning to guided self-scheduling or work stealing",
		})
	}
	if f := b.Fraction(trace.Serial); f > fractionThreshold {
		out = append(out, Advice{
			ModeID:   "W5",
			Name:     "serialisation on shared state",
			Severity: f,
			Evidence: fmt.Sprintf("%.0f%% of attributed time in serial sections or critical regions", 100*f),
			Remedy:   "shard the shared state and combine privately accumulated results",
		})
	}
	if f := b.Fraction(trace.CommWait); f > fractionThreshold {
		out = append(out, Advice{
			ModeID:   "W6",
			Name:     "unoverlapped communication",
			Severity: f,
			Evidence: fmt.Sprintf("%.0f%% of attributed time blocked on communication", 100*f),
			Remedy:   "use split-phase operations and overlap transfers with computation; aggregate small messages",
		})
	}
	if f := b.Fraction(trace.Idle); f > fractionThreshold {
		out = append(out, Advice{
			ModeID:   "W10",
			Name:     "idle waste",
			Severity: f,
			Evidence: fmt.Sprintf("%.0f%% of attributed time idle", 100*f),
			Remedy:   "block instead of spinning; on non-proportional hardware, consolidate work to fewer busy cores",
		})
	}
	if f := b.Fraction(trace.Noise); f > noiseThreshold {
		out = append(out, Advice{
			ModeID:   "N1",
			Name:     "extrinsic noise (jitter, stragglers)",
			Severity: f,
			Evidence: fmt.Sprintf("%.0f%% of attributed time stolen by injected or system noise", 100*f),
			Remedy:   "absorb noise with non-blocking collectives and slack-bearing synchronisation; rebalance around stragglers",
		})
	}
	if f := b.Fraction(trace.Steal); f > fractionThreshold {
		out = append(out, Advice{
			ModeID:   "W7",
			Name:     "scheduling overhead",
			Severity: f,
			Evidence: fmt.Sprintf("%.0f%% of attributed time in work-stealing machinery", 100*f),
			Remedy:   "coarsen task granularity (aggregate small units of work)",
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].ModeID < out[j].ModeID
	})
	return out
}

// DiagnoseOn runs Diagnose and then concretises the advice for a specific
// machine: every matched waste mode that has a registered tunable gets the
// tuner's parameter choice for that machine appended to its remedy, so the
// advice reads "coarsen granularity — on this machine, chunk=32" instead
// of leaving the constant to the reader. quick shrinks the tuned problem
// models (tests and -short runs).
func DiagnoseOn(b trace.Breakdown, m *machine.Spec, quick bool) ([]Advice, error) {
	out := Diagnose(b)
	byMode := make(map[string]tune.Tunable)
	for _, tn := range tune.Tunables(quick) {
		byMode[tn.ModeID] = tn
	}
	cache := tune.NewCache()
	for i, a := range out {
		tn, ok := byMode[a.ModeID]
		if !ok {
			continue
		}
		res, err := tn.Tune(m, tune.Options{Cache: cache})
		if err != nil {
			return nil, fmt.Errorf("core: tuning %s for %s: %w", tn.ID, m.Name, err)
		}
		out[i].Remedy = fmt.Sprintf("%s — tuned for %s: %s (%d evaluations)",
			a.Remedy, m.Name, tn.Space.Describe(res.Best.Point), res.Evaluations)
	}
	return out, nil
}
