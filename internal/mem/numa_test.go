package mem

import (
	"testing"

	"tenways/internal/energy"
	"tenways/internal/machine"
)

// numaSpec returns a 2-domain machine with a tiny cache so accesses reach
// DRAM.
func numaSpec() *machine.Spec {
	s := machine.Petascale2009()
	s.Levels = []machine.LevelSpec{
		{Name: "L1", CapacityBytes: 4 * 64, LineBytes: 64, Assoc: 2, LatencyCycles: 2, PJPerByte: 1},
	}
	return s
}

func TestNUMAFirstTouchKeepsOwnPartitionLocal(t *testing.T) {
	s := numaSpec()
	h, err := NewHierarchy(s, 4) // cores 0,1 -> domain 0; cores 2,3 -> domain 1
	if err != nil {
		t.Fatal(err)
	}
	h.EnableNUMA(PlacementFirstTouch)
	// Each core touches its own 64 KiB partition.
	const part = 64 << 10
	for c := 0; c < 4; c++ {
		base := uint64(c * part)
		for a := uint64(0); a < part; a += 64 {
			h.Read(c, base+a, 8)
		}
	}
	st := h.Stats()
	if st.RemoteDRAMBytes != 0 {
		t.Fatalf("first-touch own-partition access should be all local, remote = %d",
			st.RemoteDRAMBytes)
	}
	if st.LocalDRAMBytes == 0 {
		t.Fatal("no local bytes recorded")
	}
}

func TestNUMAFirstTouchSerialInitPathology(t *testing.T) {
	s := numaSpec()
	h, err := NewHierarchy(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.EnableNUMA(PlacementFirstTouch)
	const part = 64 << 10
	// Rank 0 initialises everything (the classic bug): all pages homed in
	// domain 0.
	for a := uint64(0); a < 4*part; a += 64 {
		h.Write(0, a, 8)
	}
	// Now cores 2 and 3 (domain 1) read their partitions: all remote.
	before := h.Stats().RemoteDRAMBytes
	for c := 2; c < 4; c++ {
		base := uint64(c * part)
		for a := uint64(0); a < part; a += 64 {
			h.Read(c, base+a, 8)
		}
	}
	st := h.Stats()
	if st.RemoteDRAMBytes-before == 0 {
		t.Fatal("serial-init pages should be remote for domain-1 cores")
	}
}

func TestNUMAInterleaveHalfRemote(t *testing.T) {
	s := numaSpec()
	h, err := NewHierarchy(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.EnableNUMA(PlacementInterleave)
	for a := uint64(0); a < 1<<20; a += 64 {
		h.Read(0, a, 8)
	}
	st := h.Stats()
	total := st.LocalDRAMBytes + st.RemoteDRAMBytes
	if total == 0 {
		t.Fatal("no classified traffic")
	}
	frac := float64(st.RemoteDRAMBytes) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("interleaved remote fraction = %g, want ~0.5", frac)
	}
}

func TestNUMARemoteCostsMoreTimeAndEnergy(t *testing.T) {
	s := numaSpec()
	run := func(placement Placement, core int) (float64, float64) {
		h, err := NewHierarchy(s, 4)
		if err != nil {
			t.Fatal(err)
		}
		h.EnableNUMA(placement)
		// Home all pages in domain 0 by first touch from core 0 (or
		// interleave), then stream from the chosen core.
		for a := uint64(0); a < 1<<20; a += 64 {
			h.Read(0, a, 8)
		}
		h2 := h // continue on same hierarchy: stream again from `core`
		for a := uint64(0); a < 1<<20; a += 64 {
			h2.Read(core, a, 8)
		}
		m := energy.NewMeter()
		h2.ChargeEnergy(m)
		return h2.Stats().TotalCycles, m.Total()
	}
	localCycles, localJ := run(PlacementFirstTouch, 1)   // same domain as initialiser
	remoteCycles, remoteJ := run(PlacementFirstTouch, 3) // other domain
	if remoteCycles <= localCycles {
		t.Fatalf("remote access should cost more cycles: %g vs %g", remoteCycles, localCycles)
	}
	if remoteJ <= localJ {
		t.Fatalf("remote access should cost more energy: %g vs %g", remoteJ, localJ)
	}
}

func TestNUMANoopOnUMA(t *testing.T) {
	s := machine.Laptop2009() // UMA
	h, err := NewHierarchy(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.EnableNUMA(PlacementInterleave)
	h.Read(0, 0, 8)
	st := h.Stats()
	if st.LocalDRAMBytes != 0 || st.RemoteDRAMBytes != 0 {
		t.Fatal("UMA machine should not classify NUMA traffic")
	}
}
