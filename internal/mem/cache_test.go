package mem

import (
	"testing"
	"testing/quick"

	"tenways/internal/energy"
	"tenways/internal/machine"
)

func newTestHierarchy(t *testing.T, cores int) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(machine.Laptop2009(), cores)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// tiny returns a machine with a minuscule cache so evictions are easy to force.
func tiny() *machine.Spec {
	s := machine.Laptop2009()
	s.Levels = []machine.LevelSpec{
		{Name: "L1", CapacityBytes: 4 * 64, LineBytes: 64, Assoc: 2, LatencyCycles: 1, PJPerByte: 1},
		{Name: "LLC", CapacityBytes: 16 * 64, LineBytes: 64, Assoc: 4, LatencyCycles: 10, PJPerByte: 4, Shared: true},
	}
	return s
}

func TestNewHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(machine.Laptop2009(), 0); err == nil {
		t.Fatal("0 cores should fail")
	}
	if _, err := NewHierarchy(machine.Laptop2009(), 65); err == nil {
		t.Fatal("65 cores should fail")
	}
	s := machine.Laptop2009()
	s.Levels = nil
	if _, err := NewHierarchy(s, 1); err == nil {
		t.Fatal("no levels should fail")
	}
	s2 := machine.Laptop2009()
	s2.Levels[1].LineBytes = 128
	s2.Levels[1].CapacityBytes = 256 << 10
	if _, err := NewHierarchy(s2, 1); err == nil {
		t.Fatal("mixed line sizes should fail")
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := newTestHierarchy(t, 1)
	r1 := h.Read(0, 0, 8)
	if r1.HitLevel != DRAMLevel {
		t.Fatalf("first access should miss to DRAM, got level %d", r1.HitLevel)
	}
	r2 := h.Read(0, 0, 8)
	if r2.HitLevel != 0 {
		t.Fatalf("second access should hit L1, got level %d", r2.HitLevel)
	}
	if r2.Cycles >= r1.Cycles {
		t.Fatalf("hit (%g cyc) should be cheaper than miss (%g cyc)", r2.Cycles, r1.Cycles)
	}
}

func TestAccessSpanningTwoLines(t *testing.T) {
	h := newTestHierarchy(t, 1)
	r := h.Read(0, 60, 8) // crosses the 64-byte boundary
	if r.LinesUsed != 2 {
		t.Fatalf("expected 2 lines, got %d", r.LinesUsed)
	}
}

func TestZeroSizeAccess(t *testing.T) {
	h := newTestHierarchy(t, 1)
	r := h.Read(0, 0, 0)
	if r.LinesUsed != 0 || r.Cycles != 0 {
		t.Fatalf("zero-size access should be free: %+v", r)
	}
}

func TestEvictionOnOverflow(t *testing.T) {
	h, err := NewHierarchy(tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// L1 holds 4 lines (2 sets x 2 ways). Touch 8 distinct lines mapping
	// across sets, then re-touch the first: it must have been evicted from
	// L1 but still hit in the LLC.
	for i := uint64(0); i < 8; i++ {
		h.Read(0, i*64, 8)
	}
	r := h.Read(0, 0, 8)
	if r.HitLevel != 1 {
		t.Fatalf("expected LLC hit after L1 eviction, got level %d", r.HitLevel)
	}
}

func TestDirtyWritebackReachesDRAM(t *testing.T) {
	h, err := NewHierarchy(tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty many distinct lines so evictions cascade through the LLC.
	for i := uint64(0); i < 64; i++ {
		h.Write(0, i*64, 8)
	}
	st := h.Stats()
	if st.WritebackBytes == 0 {
		t.Fatal("expected dirty writebacks to DRAM")
	}
}

func TestStreamingMissRate(t *testing.T) {
	h := newTestHierarchy(t, 1)
	// Stream 1 MiB once: every line is a cold DRAM miss.
	n := 1 << 20
	for a := 0; a < n; a += 8 {
		h.Read(0, uint64(a), 8)
	}
	st := h.Stats()
	wantLines := int64(n / 64)
	if st.DRAMAccesses != wantLines {
		t.Fatalf("DRAM accesses = %d, want %d", st.DRAMAccesses, wantLines)
	}
	// 7 of 8 accesses per line hit L1.
	if st.LevelHits[0] != int64(n/8)-wantLines {
		t.Fatalf("L1 hits = %d, want %d", st.LevelHits[0], int64(n/8)-wantLines)
	}
}

func TestTemporalReuseStaysInCache(t *testing.T) {
	h := newTestHierarchy(t, 1)
	for rep := 0; rep < 10; rep++ {
		for a := 0; a < 16<<10; a += 8 { // 16 KiB working set fits L1
			h.Read(0, uint64(a), 8)
		}
	}
	st := h.Stats()
	if st.DRAMAccesses != int64(16<<10)/64 {
		t.Fatalf("reuse should cost one cold pass of DRAM: %d", st.DRAMAccesses)
	}
}

func TestFalseSharingPingPong(t *testing.T) {
	h := newTestHierarchy(t, 2)
	// Two cores write adjacent words on the same line.
	for i := 0; i < 100; i++ {
		h.Write(0, 0, 8)
		h.Write(1, 8, 8)
	}
	st := h.Stats()
	if st.Invalidations < 150 {
		t.Fatalf("expected heavy invalidation traffic, got %d", st.Invalidations)
	}
	if st.CacheTransfers == 0 {
		t.Fatal("expected cache-to-cache transfers")
	}

	// Padded variant: separate lines — no coherence traffic at all.
	h2 := newTestHierarchy(t, 2)
	for i := 0; i < 100; i++ {
		h2.Write(0, 0, 8)
		h2.Write(1, 64, 8)
	}
	st2 := h2.Stats()
	if st2.Invalidations != 0 || st2.CacheTransfers != 0 {
		t.Fatalf("padded variant should have no coherence traffic: %+v", st2)
	}
	if st2.TotalCycles >= st.TotalCycles {
		t.Fatalf("padded (%g cyc) should be faster than false sharing (%g cyc)",
			st2.TotalCycles, st.TotalCycles)
	}
}

func TestReadOfRemotelyModifiedLine(t *testing.T) {
	h := newTestHierarchy(t, 2)
	h.Write(0, 0, 8)
	st0 := h.Stats()
	h.Read(1, 0, 8)
	st1 := h.Stats()
	if st1.CacheTransfers != st0.CacheTransfers+1 {
		t.Fatalf("read of modified remote line should intervene: %d -> %d",
			st0.CacheTransfers, st1.CacheTransfers)
	}
	// Now both share it; reads from both cores hit privately with no traffic.
	h.Read(0, 0, 8)
	h.Read(1, 0, 8)
	st2 := h.Stats()
	if st2.CacheTransfers != st1.CacheTransfers {
		t.Fatal("shared reads should not cause transfers")
	}
}

func TestSharedReadersNoInvalidationUntilWrite(t *testing.T) {
	h := newTestHierarchy(t, 4)
	for c := 0; c < 4; c++ {
		h.Read(c, 0, 8)
	}
	if st := h.Stats(); st.Invalidations != 0 {
		t.Fatalf("pure read sharing should not invalidate: %d", st.Invalidations)
	}
	h.Write(0, 0, 8)
	if st := h.Stats(); st.Invalidations != 3 {
		t.Fatalf("write to 4-way shared line should invalidate 3 copies, got %d", st.Invalidations)
	}
}

func TestChargeEnergy(t *testing.T) {
	h := newTestHierarchy(t, 1)
	for a := 0; a < 1<<16; a += 8 {
		h.Read(0, uint64(a), 8)
	}
	m := energy.NewMeter()
	h.ChargeEnergy(m)
	b := m.Breakdown()
	if b.TotalJoules <= 0 {
		t.Fatal("expected positive energy")
	}
	if b.Joules(energy.DRAM) <= 0 {
		t.Fatal("expected DRAM energy")
	}
	if b.Joules("cache:L1") <= 0 {
		t.Fatal("expected L1 fill energy")
	}
}

func TestBlockedVsNaiveTrafficShape(t *testing.T) {
	// The W1 essence: repeated passes over an array larger than the LLC
	// re-fetch everything from DRAM, while blocking the passes into
	// cache-sized chunks fetches each byte once.
	n := uint64(8 << 20) // 8 MiB > 3 MiB laptop L3
	const reps = 2
	naive, err := NewHierarchy(machine.Laptop2009(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < reps; rep++ {
		for a := uint64(0); a < n; a += 64 {
			naive.Read(0, a, 8)
		}
	}
	blocked, err := NewHierarchy(machine.Laptop2009(), 1)
	if err != nil {
		t.Fatal(err)
	}
	chunk := uint64(16 << 10) // fits L1
	for base := uint64(0); base < n; base += chunk {
		for rep := 0; rep < reps; rep++ {
			for a := base; a < base+chunk; a += 64 {
				blocked.Read(0, a, 8)
			}
		}
	}
	nb, bb := naive.Stats().DRAMBytes, blocked.Stats().DRAMBytes
	if nb < int64(reps)*int64(n)*9/10 {
		t.Fatalf("naive should stream ~%d bytes from DRAM, got %d", reps*int(n), nb)
	}
	if bb > int64(n)*11/10 {
		t.Fatalf("blocked should fetch each byte ~once (%d), got %d", n, bb)
	}
}

// Property: per level, hits+misses accounting is consistent and cycle count
// is positive for any access pattern; stats never go negative.
func TestHierarchyInvariantsProperty(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		h, err := NewHierarchy(tiny(), 2)
		if err != nil {
			return false
		}
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			core := i % 2
			if w {
				h.Write(core, uint64(a), 4)
			} else {
				h.Read(core, uint64(a), 4)
			}
		}
		st := h.Stats()
		if st.AccessCount != int64(len(addrs)) {
			return false
		}
		if st.TotalCycles < 0 || st.DRAMBytes < 0 || st.CoherenceBytes < 0 {
			return false
		}
		// Every DRAM fill is line-sized.
		if st.DRAMBytes%64 != 0 {
			return false
		}
		// L1 hits + L1 misses == total line-accesses at L1.
		var l1 int64 = st.LevelHits[0] + st.LevelMisses[0]
		return l1 >= int64(len(addrs)) || len(addrs) == 0 || l1 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsIsACopy(t *testing.T) {
	h := newTestHierarchy(t, 1)
	h.Read(0, 0, 8)
	st := h.Stats()
	st.LevelHits[0] = 999999
	if h.Stats().LevelHits[0] == 999999 {
		t.Fatal("Stats leaked internal slice")
	}
}

func TestTimeSec(t *testing.T) {
	h := newTestHierarchy(t, 1)
	h.Read(0, 0, 8)
	if h.TimeSec() <= 0 {
		t.Fatal("expected positive time")
	}
}

func TestPrefetchSequentialStream(t *testing.T) {
	spec := machine.Laptop2009()
	run := func(prefetch bool) Stats {
		h, err := NewHierarchy(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		if prefetch {
			h.EnablePrefetch()
		}
		for a := uint64(0); a < 1<<20; a += 8 {
			h.Read(0, a, 8)
		}
		return h.Stats()
	}
	off := run(false)
	on := run(true)
	if on.TotalCycles >= off.TotalCycles {
		t.Fatalf("prefetch should cut sequential latency: %g vs %g cycles",
			on.TotalCycles, off.TotalCycles)
	}
	// Prefetching hides latency but does not reduce traffic.
	if on.DRAMBytes < off.DRAMBytes {
		t.Fatalf("prefetch should not reduce DRAM traffic: %d vs %d",
			on.DRAMBytes, off.DRAMBytes)
	}
	if on.Prefetches == 0 || on.PrefetchBytes == 0 {
		t.Fatal("prefetch stats not recorded")
	}
	if off.Prefetches != 0 {
		t.Fatal("prefetches recorded with prefetcher off")
	}
}

func TestPrefetchDefeatedByLargeStride(t *testing.T) {
	spec := machine.Laptop2009()
	run := func(prefetch bool) (float64, int64) {
		h, err := NewHierarchy(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		if prefetch {
			h.EnablePrefetch()
		}
		for a := uint64(0); a < 8<<20; a += 256 { // skips 3 of 4 lines
			h.Read(0, a, 8)
		}
		return h.Stats().TotalCycles, h.Stats().DRAMBytes
	}
	offCycles, offBytes := run(false)
	onCycles, onBytes := run(true)
	// A next-line prefetcher gains nothing on stride-4-lines access...
	if onCycles < offCycles*0.9 {
		t.Fatalf("next-line prefetch should not rescue strided access: %g vs %g", onCycles, offCycles)
	}
	// ...but it doubles the DRAM traffic with useless fetches.
	if onBytes < offBytes*3/2 {
		t.Fatalf("defeated prefetcher should waste traffic: %d vs %d", onBytes, offBytes)
	}
}

func TestPrefetchNoSharedLevelFillsPrivate(t *testing.T) {
	spec := machine.Laptop2009()
	spec.Levels = []machine.LevelSpec{
		{Name: "L1", CapacityBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatencyCycles: 4, PJPerByte: 1},
	}
	h, err := NewHierarchy(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.EnablePrefetch()
	for a := uint64(0); a < 1<<14; a += 64 {
		h.Read(0, a, 8)
	}
	if h.Stats().Prefetches == 0 {
		t.Fatal("prefetcher inactive without a shared level")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := newTestHierarchy(t, 1)
	h.Read(0, 0, 8)
	h.ResetStats()
	st := h.Stats()
	if st.AccessCount != 0 || st.DRAMAccesses != 0 || st.TotalCycles != 0 {
		t.Fatalf("stats not cleared: %+v", st)
	}
	// Cache contents survive: the next read is a hit, not a DRAM miss.
	r := h.Read(0, 0, 8)
	if r.HitLevel != 0 {
		t.Fatalf("cache contents lost on ResetStats: level %d", r.HitLevel)
	}
}
