package mem

// NUMA support: when enabled (and the machine spec declares more than one
// domain), every DRAM access is classified local or remote according to
// the accessing core's domain and the line's home domain, with remote
// accesses paying the spec's extra latency; ChargeEnergy bills remote
// bytes at the higher pJ/byte. Two placement policies model the classic
// software choice: page interleaving (half the traffic remote, always) and
// first-touch (whoever touches a page first owns it — local if the
// initialisation matches the compute partition, pathological if rank 0
// initialises everything).

// Placement selects how lines are homed to NUMA domains.
type Placement int

const (
	// PlacementInterleave homes pages round-robin across domains.
	PlacementInterleave Placement = iota
	// PlacementFirstTouch homes a page in the domain of the first core
	// that touches it.
	PlacementFirstTouch
)

// numaPageBytes is the homing granularity (a 4 KiB page).
const numaPageBytes = 4096

// EnableNUMA activates NUMA accounting with the given placement policy.
// It is a no-op if the machine spec declares a uniform memory (<= 1
// domain).
func (h *Hierarchy) EnableNUMA(p Placement) {
	if h.spec.NUMA.Uniform() {
		return
	}
	h.numaOn = true
	h.placement = p
	if h.firstTouch == nil {
		h.firstTouch = make(map[uint64]int)
	}
}

// coreDomain maps a core to its NUMA domain (cores split evenly).
func (h *Hierarchy) coreDomain(core int) int {
	d := h.spec.NUMA.Domains
	perDomain := (h.cores + d - 1) / d
	return core / perDomain
}

// homeDomain returns (and, for first-touch, records) the domain owning the
// page containing addr.
func (h *Hierarchy) homeDomain(core int, lineAddr uint64) int {
	page := lineAddr * h.line / numaPageBytes
	switch h.placement {
	case PlacementFirstTouch:
		if d, ok := h.firstTouch[page]; ok {
			return d
		}
		d := h.coreDomain(core)
		h.firstTouch[page] = d
		return d
	default:
		return int(page % uint64(h.spec.NUMA.Domains))
	}
}

// numaDRAMPenalty classifies one DRAM line access and returns the extra
// latency cycles beyond the local cost (0 when local or NUMA is off).
func (h *Hierarchy) numaDRAMPenalty(core int, lineAddr uint64) float64 {
	if !h.numaOn {
		return 0
	}
	if h.homeDomain(core, lineAddr) == h.coreDomain(core) {
		h.stats.LocalDRAMBytes += int64(h.line)
		return 0
	}
	h.stats.RemoteDRAMBytes += int64(h.line)
	return h.spec.DRAM.LatencyCycles * (h.spec.NUMA.RemoteLatencyFactor - 1)
}
