// Package mem implements a trace-driven multi-level cache hierarchy
// simulator: per-core private levels, shared last-level cache, DRAM, LRU
// replacement, write-back write-allocate, and a MESI-style invalidation
// protocol between cores' private hierarchies so that coherence traffic
// (including false sharing) is observable.
//
// The simulator is functional, not timing-pipelined: each Access returns the
// cycles the access would take and accounts the bytes moved at every level,
// which is exactly the information the W1 (locality) and W9 (false sharing)
// experiments and their energy models need.
package mem

import (
	"fmt"

	"tenways/internal/energy"
	"tenways/internal/machine"
)

// line is one cache line's bookkeeping.
type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// cache is one set-associative cache instance.
type cache struct {
	spec    machine.LevelSpec
	sets    [][]line
	setMask uint64
	tick    uint64 // LRU clock, monotone per cache

	Hits       int64
	Misses     int64
	BytesIn    int64 // bytes filled into this cache
	Writebacks int64 // dirty lines written back out of this cache
}

func newCache(spec machine.LevelSpec) *cache {
	nLines := spec.CapacityBytes / int64(spec.LineBytes)
	nSets := nLines / int64(spec.Assoc)
	c := &cache{spec: spec, setMask: uint64(nSets - 1)}
	if nSets&(nSets-1) != 0 {
		// Non-power-of-two set counts index by modulo; mask stays unused.
		c.setMask = 0
	}
	c.sets = make([][]line, nSets)
	for i := range c.sets {
		c.sets[i] = make([]line, spec.Assoc)
	}
	return c
}

func (c *cache) index(lineAddr uint64) uint64 {
	if c.setMask != 0 {
		return lineAddr & c.setMask
	}
	return lineAddr % uint64(len(c.sets))
}

// lookup probes for the line; on hit it refreshes LRU and returns the way.
func (c *cache) lookup(lineAddr uint64) (*line, bool) {
	set := c.sets[c.index(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			c.tick++
			set[i].lastUse = c.tick
			return &set[i], true
		}
	}
	return nil, false
}

// fill inserts the line, evicting LRU if needed. It returns the evicted
// line's address and whether the victim was dirty (needing writeback);
// evictedValid is false when an empty way was used.
func (c *cache) fill(lineAddr uint64, dirty bool) (evicted uint64, evictedDirty, evictedValid bool) {
	set := c.sets[c.index(lineAddr)]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			evictedValid = false
			goto place
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	evicted = set[victim].tag
	evictedDirty = set[victim].dirty
	evictedValid = true
place:
	c.tick++
	set[victim] = line{tag: lineAddr, valid: true, dirty: dirty, lastUse: c.tick}
	c.BytesIn += int64(c.spec.LineBytes)
	if evictedValid && evictedDirty {
		c.Writebacks++
	}
	return evicted, evictedDirty, evictedValid
}

// invalidate removes the line if present; it returns whether it was present
// and whether it was dirty.
func (c *cache) invalidate(lineAddr uint64) (present, dirty bool) {
	set := c.sets[c.index(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			d := set[i].dirty
			set[i] = line{}
			return true, d
		}
	}
	return false, false
}

// markDirty sets the dirty bit if the line is present.
func (c *cache) markDirty(lineAddr uint64) {
	if l, ok := c.lookup(lineAddr); ok {
		l.dirty = true
	}
}

// clean clears the dirty bit if present (after a coherence downgrade).
func (c *cache) clean(lineAddr uint64) {
	if l, ok := c.lookup(lineAddr); ok {
		l.dirty = false
	}
}

// dirEntry is the directory's view of one line across private hierarchies.
type dirEntry struct {
	sharers  uint64 // bitmask of cores holding the line privately
	owner    int    // core with the modified copy, valid iff modified
	modified bool
}

// Stats aggregates hierarchy activity.
type Stats struct {
	LevelHits       []int64 // per configured level (private levels summed over cores)
	LevelMisses     []int64
	LevelBytesIn    []int64
	DRAMAccesses    int64
	DRAMBytes       int64 // bytes moved to/from DRAM (fills + writebacks)
	Invalidations   int64 // coherence invalidation events
	CacheTransfers  int64 // cache-to-cache interventions
	CoherenceBytes  int64 // bytes moved core-to-core by coherence
	WritebackBytes  int64 // dirty bytes written back to DRAM
	Prefetches      int64 // prefetch fills issued
	PrefetchBytes   int64 // DRAM bytes moved by prefetches (also in DRAMBytes)
	LocalDRAMBytes  int64 // NUMA-local DRAM bytes (when NUMA accounting is on)
	RemoteDRAMBytes int64 // NUMA-remote DRAM bytes
	AccessCount     int64
	TotalCycles     float64
}

// Hierarchy is the full multi-core cache system.
type Hierarchy struct {
	spec    *machine.Spec
	cores   int
	private [][]*cache // [core][privateLevel]
	shared  []*cache   // shared levels in order
	privIdx []int      // indices into spec.Levels for private levels
	shIdx   []int      // indices into spec.Levels for shared levels
	dir     map[uint64]*dirEntry
	stats   Stats
	line    uint64 // line size in bytes (uniform across levels)

	prefetchOn bool
	prefetched map[uint64]bool // lines resident due to an un-consumed prefetch

	numaOn     bool
	placement  Placement
	firstTouch map[uint64]int // page -> home domain, first-touch policy
}

// EnablePrefetch turns on a next-line prefetcher: every demand miss to
// DRAM also fetches the following line into the shared levels, and a
// demand hit on a prefetched line keeps the chain running — the behaviour
// of a simple hardware stream prefetcher. Prefetches hide latency but
// still move bytes: DRAMBytes (and therefore DRAM energy) includes them,
// which is exactly the W1 ablation story (F17).
func (h *Hierarchy) EnablePrefetch() {
	h.prefetchOn = true
	if h.prefetched == nil {
		h.prefetched = make(map[uint64]bool)
	}
}

// NewHierarchy builds the hierarchy for the given machine spec and core
// count. All levels must share one line size (checked). Core count may be
// at most 64 because the coherence directory uses a bitmask.
func NewHierarchy(spec *machine.Spec, cores int) (*Hierarchy, error) {
	if cores < 1 || cores > 64 {
		return nil, fmt.Errorf("mem: cores must be in [1,64], got %d", cores)
	}
	if len(spec.Levels) == 0 {
		return nil, fmt.Errorf("mem: machine %q has no cache levels", spec.Name)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{
		spec:  spec,
		cores: cores,
		dir:   make(map[uint64]*dirEntry),
		line:  uint64(spec.Levels[0].LineBytes),
	}
	for i, l := range spec.Levels {
		if uint64(l.LineBytes) != h.line {
			return nil, fmt.Errorf("mem: level %s line size %d != %d", l.Name, l.LineBytes, h.line)
		}
		if l.Shared {
			h.shIdx = append(h.shIdx, i)
		} else {
			h.privIdx = append(h.privIdx, i)
		}
	}
	h.private = make([][]*cache, cores)
	for c := 0; c < cores; c++ {
		for _, i := range h.privIdx {
			h.private[c] = append(h.private[c], newCache(spec.Levels[i]))
		}
	}
	for _, i := range h.shIdx {
		h.shared = append(h.shared, newCache(spec.Levels[i]))
	}
	h.stats.LevelHits = make([]int64, len(spec.Levels))
	h.stats.LevelMisses = make([]int64, len(spec.Levels))
	h.stats.LevelBytesIn = make([]int64, len(spec.Levels))
	return h, nil
}

// AccessResult describes one (possibly multi-line) access.
type AccessResult struct {
	Cycles    float64
	HitLevel  int // deepest structure consulted: 0..len(levels)-1, or DRAMLevel
	LinesUsed int
}

// DRAMLevel is the HitLevel value meaning the access went to memory.
const DRAMLevel = -1

// Read performs a read by core from addr of the given size.
func (h *Hierarchy) Read(core int, addr uint64, size int) AccessResult {
	return h.access(core, addr, size, false)
}

// Write performs a write by core to addr of the given size.
func (h *Hierarchy) Write(core int, addr uint64, size int) AccessResult {
	return h.access(core, addr, size, true)
}

func (h *Hierarchy) access(core int, addr uint64, size int, write bool) AccessResult {
	if size <= 0 {
		return AccessResult{}
	}
	var res AccessResult
	res.HitLevel = 0
	first := addr / h.line
	last := (addr + uint64(size) - 1) / h.line
	for la := first; la <= last; la++ {
		r := h.accessLine(core, la, write)
		res.Cycles += r.Cycles
		res.LinesUsed++
		// Report the *worst* (deepest) level touched across the lines.
		if r.HitLevel == DRAMLevel || (res.HitLevel != DRAMLevel && r.HitLevel > res.HitLevel) {
			res.HitLevel = r.HitLevel
		}
	}
	h.stats.AccessCount++
	h.stats.TotalCycles += res.Cycles
	return res
}

// accessLine handles one line-granular access with coherence.
func (h *Hierarchy) accessLine(core int, lineAddr uint64, write bool) AccessResult {
	var cycles float64
	levels := h.spec.Levels

	// Coherence first: a write needs exclusive ownership; a read needs the
	// owner's modified copy pushed down. With one core there is no
	// coherence, and skipping the directory makes single-core traces
	// (the W1 blocking sweeps) several times faster.
	var e *dirEntry
	if h.cores > 1 {
		e = h.dir[lineAddr]
	}
	if e != nil {
		if write {
			if e.modified && e.owner != core {
				// Cache-to-cache intervention: fetch the modified copy
				// and invalidate the owner.
				h.invalidateEverywhere(e.owner, lineAddr)
				h.stats.CacheTransfers++
				h.stats.CoherenceBytes += int64(h.line)
				h.stats.Invalidations++
				cycles += h.interventionCycles()
				e.sharers &^= 1 << uint(e.owner)
			}
			// Invalidate all other sharers.
			for c := 0; c < h.cores; c++ {
				if c != core && e.sharers&(1<<uint(c)) != 0 {
					h.invalidateEverywhere(c, lineAddr)
					h.stats.Invalidations++
					e.sharers &^= 1 << uint(c)
				}
			}
			e.modified = true
			e.owner = core
		} else if e.modified && e.owner != core {
			// Read of a remotely modified line: owner downgrades to shared
			// and forwards the data.
			h.cleanEverywhere(e.owner, lineAddr)
			h.stats.CacheTransfers++
			h.stats.CoherenceBytes += int64(h.line)
			cycles += h.interventionCycles()
			e.modified = false
		}
	}

	// Probe private levels nearest-first.
	priv := h.private[core]
	for pi, c := range priv {
		if l, ok := c.lookup(lineAddr); ok {
			c.Hits++
			li := h.privIdx[pi]
			h.stats.LevelHits[li]++
			cycles += levels[li].LatencyCycles
			if write {
				l.dirty = true
				h.noteWriter(core, lineAddr)
			} else {
				h.noteSharer(core, lineAddr)
			}
			// Fill the line into the levels above the hit for next time.
			h.fillPrivate(core, lineAddr, pi-1, write)
			return AccessResult{Cycles: cycles, HitLevel: li}
		}
		c.Misses++
		h.stats.LevelMisses[h.privIdx[pi]]++
		cycles += levels[h.privIdx[pi]].LatencyCycles
	}

	// Probe shared levels.
	for si, c := range h.shared {
		if _, ok := c.lookup(lineAddr); ok {
			c.Hits++
			li := h.shIdx[si]
			h.stats.LevelHits[li]++
			cycles += levels[li].LatencyCycles
			h.fillPrivate(core, lineAddr, len(priv)-1, write)
			if write {
				h.noteWriter(core, lineAddr)
			} else {
				h.noteSharer(core, lineAddr)
			}
			if h.prefetchOn && h.prefetched[lineAddr] {
				delete(h.prefetched, lineAddr)
				h.issuePrefetch(lineAddr + 1)
			}
			return AccessResult{Cycles: cycles, HitLevel: li}
		}
		c.Misses++
		h.stats.LevelMisses[h.shIdx[si]]++
		cycles += levels[h.shIdx[si]].LatencyCycles
	}

	// DRAM.
	h.stats.DRAMAccesses++
	h.stats.DRAMBytes += int64(h.line)
	cycles += h.spec.DRAM.LatencyCycles
	cycles += float64(h.line) / h.spec.DRAM.BytesPerSec * h.spec.ClockHz
	cycles += h.numaDRAMPenalty(core, lineAddr)
	if h.prefetchOn {
		h.issuePrefetch(lineAddr + 1)
	}
	// Fill shared levels deepest-first, then private.
	for si := len(h.shared) - 1; si >= 0; si-- {
		h.fillShared(si, lineAddr)
	}
	h.fillPrivate(core, lineAddr, len(priv)-1, write)
	if write {
		h.noteWriter(core, lineAddr)
	} else {
		h.noteSharer(core, lineAddr)
	}
	return AccessResult{Cycles: cycles, HitLevel: DRAMLevel}
}

// interventionCycles is the cost of a cache-to-cache transfer; we use the
// deepest shared level's latency as the interconnect proxy, or DRAM latency
// if there is no shared cache.
func (h *Hierarchy) interventionCycles() float64 {
	if len(h.shIdx) > 0 {
		return h.spec.Levels[h.shIdx[len(h.shIdx)-1]].LatencyCycles
	}
	return h.spec.DRAM.LatencyCycles
}

// fillPrivate installs the line into core's private levels from `from` up to
// L1 (index 0). Evicted dirty lines are written back toward DRAM.
func (h *Hierarchy) fillPrivate(core int, lineAddr uint64, from int, dirty bool) {
	for pi := from; pi >= 0; pi-- {
		c := h.private[core][pi]
		if _, ok := c.lookup(lineAddr); ok {
			if dirty {
				c.markDirty(lineAddr)
			}
			continue
		}
		evicted, evDirty, evValid := c.fill(lineAddr, dirty)
		h.stats.LevelBytesIn[h.privIdx[pi]] += int64(h.line)
		if evValid {
			h.handlePrivateEviction(core, pi, evicted, evDirty)
		}
	}
}

// handlePrivateEviction processes a line evicted from a private level:
// writeback if dirty, and directory cleanup when the core no longer holds
// the line anywhere privately.
func (h *Hierarchy) handlePrivateEviction(core, fromLevel int, lineAddr uint64, dirty bool) {
	if dirty {
		// Write back into the next private level, else shared, else DRAM.
		if fromLevel+1 < len(h.private[core]) {
			nc := h.private[core][fromLevel+1]
			if _, ok := nc.lookup(lineAddr); ok {
				nc.markDirty(lineAddr)
			} else {
				ev, evD, evV := nc.fill(lineAddr, true)
				h.stats.LevelBytesIn[h.privIdx[fromLevel+1]] += int64(h.line)
				if evV {
					h.handlePrivateEviction(core, fromLevel+1, ev, evD)
				}
			}
		} else if len(h.shared) > 0 {
			sc := h.shared[0]
			if _, ok := sc.lookup(lineAddr); ok {
				sc.markDirty(lineAddr)
			} else {
				h.fillSharedDirty(0, lineAddr)
			}
		} else {
			h.stats.DRAMBytes += int64(h.line)
			h.stats.WritebackBytes += int64(h.line)
		}
	}
	// Directory cleanup: does the core still hold this line privately?
	if h.cores == 1 {
		return
	}
	if !h.coreHolds(core, lineAddr) {
		if e := h.dir[lineAddr]; e != nil {
			e.sharers &^= 1 << uint(core)
			if e.modified && e.owner == core {
				e.modified = false
			}
			if e.sharers == 0 {
				delete(h.dir, lineAddr)
			}
		}
	}
}

func (h *Hierarchy) fillShared(si int, lineAddr uint64) {
	c := h.shared[si]
	if _, ok := c.lookup(lineAddr); ok {
		return
	}
	_, evD, evV := c.fill(lineAddr, false)
	h.stats.LevelBytesIn[h.shIdx[si]] += int64(h.line)
	if evV && evD {
		h.stats.DRAMBytes += int64(h.line)
		h.stats.WritebackBytes += int64(h.line)
	}
}

func (h *Hierarchy) fillSharedDirty(si int, lineAddr uint64) {
	c := h.shared[si]
	_, evD, evV := c.fill(lineAddr, true)
	h.stats.LevelBytesIn[h.shIdx[si]] += int64(h.line)
	if evV && evD {
		h.stats.DRAMBytes += int64(h.line)
		h.stats.WritebackBytes += int64(h.line)
	}
}

// issuePrefetch fetches the line into the shared levels (or the deepest
// private level when the machine has no shared cache) off the critical
// path: no cycles are charged, but the DRAM traffic is.
func (h *Hierarchy) issuePrefetch(lineAddr uint64) {
	// Already resident somewhere shared? Then nothing to do.
	for _, c := range h.shared {
		set := c.sets[c.index(lineAddr)]
		for i := range set {
			if set[i].valid && set[i].tag == lineAddr {
				return
			}
		}
	}
	h.stats.Prefetches++
	h.stats.DRAMBytes += int64(h.line)
	h.stats.PrefetchBytes += int64(h.line)
	if len(h.shared) > 0 {
		for si := len(h.shared) - 1; si >= 0; si-- {
			h.fillShared(si, lineAddr)
		}
	} else {
		// No shared level: fill the deepest private level of core 0.
		pi := len(h.private[0]) - 1
		c := h.private[0][pi]
		if _, ok := c.lookup(lineAddr); !ok {
			ev, evD, evV := c.fill(lineAddr, false)
			h.stats.LevelBytesIn[h.privIdx[pi]] += int64(h.line)
			if evV {
				h.handlePrivateEviction(0, pi, ev, evD)
			}
		}
	}
	h.prefetched[lineAddr] = true
}

func (h *Hierarchy) coreHolds(core int, lineAddr uint64) bool {
	for _, c := range h.private[core] {
		set := c.sets[c.index(lineAddr)]
		for i := range set {
			if set[i].valid && set[i].tag == lineAddr {
				return true
			}
		}
	}
	return false
}

func (h *Hierarchy) invalidateEverywhere(core int, lineAddr uint64) {
	for _, c := range h.private[core] {
		c.invalidate(lineAddr)
	}
}

func (h *Hierarchy) cleanEverywhere(core int, lineAddr uint64) {
	for _, c := range h.private[core] {
		c.clean(lineAddr)
	}
}

func (h *Hierarchy) noteSharer(core int, lineAddr uint64) {
	if h.cores == 1 {
		return
	}
	e := h.dir[lineAddr]
	if e == nil {
		e = &dirEntry{}
		h.dir[lineAddr] = e
	}
	e.sharers |= 1 << uint(core)
}

func (h *Hierarchy) noteWriter(core int, lineAddr uint64) {
	if h.cores == 1 {
		return
	}
	e := h.dir[lineAddr]
	if e == nil {
		e = &dirEntry{}
		h.dir[lineAddr] = e
	}
	e.sharers |= 1 << uint(core)
	e.modified = true
	e.owner = core
}

// ResetStats clears the accumulated statistics, keeping cache contents and
// NUMA homing intact — useful for excluding a warm-up or initialisation
// phase from measurement.
func (h *Hierarchy) ResetStats() {
	st := Stats{
		LevelHits:    make([]int64, len(h.spec.Levels)),
		LevelMisses:  make([]int64, len(h.spec.Levels)),
		LevelBytesIn: make([]int64, len(h.spec.Levels)),
	}
	h.stats = st
}

// Stats returns a copy of the accumulated statistics.
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	s.LevelHits = append([]int64(nil), h.stats.LevelHits...)
	s.LevelMisses = append([]int64(nil), h.stats.LevelMisses...)
	s.LevelBytesIn = append([]int64(nil), h.stats.LevelBytesIn...)
	return s
}

// TimeSec converts the accumulated cycles to seconds on this machine.
func (h *Hierarchy) TimeSec() float64 {
	return h.stats.TotalCycles * h.spec.CycleSec()
}

// ChargeEnergy adds the hierarchy's data-movement energy to the meter:
// per-level fills at the level's pJ/byte, DRAM traffic at DRAM pJ/byte, and
// coherence transfers at the LLC's pJ/byte.
func (h *Hierarchy) ChargeEnergy(m *energy.Meter) {
	for i, l := range h.spec.Levels {
		j := float64(h.stats.LevelBytesIn[i]) * l.PJPerByte * 1e-12
		if j > 0 {
			m.Add("cache:"+l.Name, j)
		}
	}
	if h.stats.DRAMBytes > 0 {
		m.Add(energy.DRAM, float64(h.stats.DRAMBytes)*h.spec.DRAM.PJPerByte*1e-12)
	}
	if h.stats.CoherenceBytes > 0 {
		pj := h.spec.Levels[len(h.spec.Levels)-1].PJPerByte
		m.Add("coherence", float64(h.stats.CoherenceBytes)*pj*1e-12)
	}
	if h.stats.RemoteDRAMBytes > 0 {
		extra := (h.spec.NUMA.RemotePJFactor - 1) * h.spec.DRAM.PJPerByte
		if extra > 0 {
			m.Add("numa-remote", float64(h.stats.RemoteDRAMBytes)*extra*1e-12)
		}
	}
}
