package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.Total() != 10 {
		t.Fatalf("total = %d", h.Total())
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count = %d", i, c)
		}
	}
	if h.BinCenter(0) != 0.5 || h.BinCenter(9) != 9.5 {
		t.Fatalf("bin centers wrong: %g %g", h.BinCenter(0), h.BinCenter(9))
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-100)
	h.Add(100)
	h.Add(math.NaN()) // dropped
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("edge clamping failed: %v", h.Counts)
	}
	if h.Total() != 2 {
		t.Fatalf("NaN counted: %d", h.Total())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Fatalf("median = %g", q)
	}
	if q := h.Quantile(0.99); math.Abs(q-99) > 1.5 {
		t.Fatalf("p99 = %g", q)
	}
	var empty Histogram
	empty.Counts = []int{0}
	empty.Max = 1
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestHistogramQuantileClampsQ(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(5)
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q not clamped")
	}
}

func TestHistogramPanicsOnBadGeometry(t *testing.T) {
	for _, build := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(2, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			build()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(0.5)
	h.Add(0.6)
	h.Add(3.5)
	s := h.String()
	if !strings.Contains(s, "n=3") || !strings.Contains(s, "|") {
		t.Fatalf("string = %q", s)
	}
}

func TestPercentileExact(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if p := Percentile(xs, 0); p != 10 {
		t.Fatalf("p0 = %g", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Fatalf("p100 = %g", p)
	}
	if p := Percentile(xs, 50); p != 30 {
		t.Fatalf("p50 = %g", p)
	}
	if p := Percentile(xs, 25); p != 20 {
		t.Fatalf("p25 = %g", p)
	}
	// Interpolation between ranks.
	if p := Percentile([]float64{0, 10}, 50); p != 5 {
		t.Fatalf("interpolated p50 = %g", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	// Input must not be mutated.
	xs2 := []float64{3, 1, 2}
	Percentile(xs2, 50)
	if xs2[0] != 3 {
		t.Fatal("input mutated")
	}
}

// Property: the histogram quantile matches the exact nearest-rank quantile
// (the same step-function definition) within one bin width.
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []uint8, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(0, 256, 64)
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			h.Add(xs[i])
		}
		q := float64(qRaw%101) / 100
		approx := h.Quantile(q)
		// Nearest-rank reference: the ceil(q·n)-th smallest sample.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		exact := sorted[rank-1]
		binW := 256.0 / 64
		return math.Abs(approx-exact) <= binW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
