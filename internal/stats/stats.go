// Package stats provides the small set of statistics used by the tenways
// experiment harness: summary statistics with confidence intervals, least
// squares fits, and crossover detection between two measured series.
//
// The package is deliberately dependency-free and deterministic; it never
// consults a random source.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	Stddev float64 // sample standard deviation (n-1 denominator)
	Median float64
}

// Summarize computes a Summary over xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min = xs[0]
	s.Max = xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := s.N / 2
	if s.N%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CI95 returns the half-width of an approximate 95% confidence interval for
// the mean, using the normal approximation (1.96 standard errors). For n < 2
// it returns 0.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}

// Fit is a least-squares line y = Slope*x + Intercept with goodness of fit.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// ErrBadFit reports insufficient or degenerate data for a regression.
var ErrBadFit = errors.New("stats: need at least two distinct x values")

// LinearFit computes the ordinary least squares fit of ys on xs.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Fit{}, ErrBadFit
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, ErrBadFit
	}
	f := Fit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy == 0 {
		f.R2 = 1
	} else {
		f.R2 = (sxy * sxy) / (sxx * syy)
	}
	return f, nil
}

// LogLogSlope fits log(y) on log(x) and returns the exponent, i.e. the p in
// y ≈ c·x^p. All values must be positive.
func LogLogSlope(xs, ys []float64) (float64, error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || i >= len(ys) || ys[i] <= 0 {
			return 0, ErrBadFit
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	f, err := LinearFit(lx, ly)
	if err != nil {
		return 0, err
	}
	return f.Slope, nil
}

// Crossover locates the first x at which series b stops being larger than
// series a (i.e. the advantage of a over b disappears). Both series must be
// sampled at the same xs, in increasing x order. It returns the interpolated
// x of the crossing and true, or 0 and false if the series never cross.
func Crossover(xs, a, b []float64) (float64, bool) {
	if len(xs) != len(a) || len(xs) != len(b) || len(xs) == 0 {
		return 0, false
	}
	prev := b[0] - a[0]
	if prev <= 0 {
		return xs[0], true
	}
	for i := 1; i < len(xs); i++ {
		cur := b[i] - a[i]
		if cur <= 0 {
			// Linear interpolation between sample i-1 and i.
			if prev == cur {
				return xs[i], true
			}
			t := prev / (prev - cur)
			return xs[i-1] + t*(xs[i]-xs[i-1]), true
		}
		prev = cur
	}
	return 0, false
}

// GeoMean returns the geometric mean of positive observations; it returns 0
// for an empty sample and NaN when any observation is non-positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Speedup returns base/opt, the conventional "how many times faster" ratio.
// It returns +Inf when opt is zero and base is positive, and NaN when both
// are zero.
func Speedup(base, opt float64) float64 {
	return base / opt
}

// HarmonicMean returns the harmonic mean of positive observations, the right
// mean for rates. Returns 0 for empty input, NaN for non-positive entries.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}
