package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Min, Max); samples outside
// the range are clamped into the edge bins so counts are never lost.
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram creates a histogram with the given bin count over [min, max).
// It panics on a non-positive bin count or an empty range — both are
// programming errors, not data conditions.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if !(max > min) {
		panic("stats: histogram needs max > min")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	i := int(float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Quantile returns the approximate q-quantile (q in [0,1]) as a bin center,
// or NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	cum := 0
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return h.BinCenter(i)
		}
	}
	return h.BinCenter(len(h.Counts) - 1)
}

// String renders a compact sparkline-style view: one character per bin
// scaled to the fullest bin.
func (h *Histogram) String() string {
	levels := []rune(" .:-=+*#%@")
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "[%g,%g) n=%d |", h.Min, h.Max, h.total)
	for _, c := range h.Counts {
		idx := 0
		if max > 0 {
			idx = c * (len(levels) - 1) / max
		}
		b.WriteRune(levels[idx])
	}
	b.WriteString("|")
	return b.String()
}

// Percentile returns the p-th percentile (p in [0,100]) of xs by sorting a
// copy — exact, for small samples where a histogram is overkill. Returns
// NaN on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
