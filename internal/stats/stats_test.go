package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Stddev != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
	if s.CI95() != 0 {
		t.Fatalf("CI of empty sample should be 0")
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %g", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if !almostEqual(s.Stddev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %g", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Fatalf("median = %g", s.Median)
	}
}

func TestSummarizeMedianOdd(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("median = %g, want 5", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 2, 1e-12) || !almostEqual(f.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
	if !almostEqual(f.R2, 1, 1e-12) {
		t.Fatalf("R2 = %g", f.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error on single point")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error on constant x")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	f, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 0, 1e-12) || !almostEqual(f.R2, 1, 1e-12) {
		t.Fatalf("constant-y fit = %+v", f)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 5 x^3
	xs := []float64{1, 2, 4, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * x * x * x
	}
	p, err := LogLogSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, 3, 1e-9) {
		t.Fatalf("exponent = %g, want 3", p)
	}
	if _, err := LogLogSlope([]float64{0, 1}, []float64{1, 1}); err == nil {
		t.Fatal("expected error on non-positive x")
	}
}

func TestCrossover(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	a := []float64{10, 10, 10, 10}
	b := []float64{16, 14, 8, 2} // crosses between x=2 and x=3, at x=2+4/6*1
	x, ok := Crossover(xs, a, b)
	if !ok {
		t.Fatal("expected crossover")
	}
	if !almostEqual(x, 2+4.0/6.0, 1e-9) {
		t.Fatalf("crossover at %g", x)
	}
}

func TestCrossoverNone(t *testing.T) {
	xs := []float64{1, 2, 3}
	a := []float64{1, 1, 1}
	b := []float64{2, 3, 4}
	if _, ok := Crossover(xs, a, b); ok {
		t.Fatal("unexpected crossover")
	}
}

func TestCrossoverImmediate(t *testing.T) {
	xs := []float64{1, 2}
	a := []float64{5, 5}
	b := []float64{4, 3}
	x, ok := Crossover(xs, a, b)
	if !ok || x != 1 {
		t.Fatalf("got %g,%v want 1,true", x, ok)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); !almostEqual(g, 4, 1e-12) {
		t.Fatalf("geomean = %g", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("empty geomean = %g", g)
	}
	if g := GeoMean([]float64{1, -1}); !math.IsNaN(g) {
		t.Fatalf("negative geomean = %g, want NaN", g)
	}
}

func TestHarmonicMean(t *testing.T) {
	if h := HarmonicMean([]float64{1, 2, 4}); !almostEqual(h, 3.0/(1+0.5+0.25), 1e-12) {
		t.Fatalf("harmonic = %g", h)
	}
	if h := HarmonicMean(nil); h != 0 {
		t.Fatalf("empty harmonic = %g", h)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10, 2); s != 5 {
		t.Fatalf("speedup = %g", s)
	}
	if s := Speedup(1, 0); !math.IsInf(s, 1) {
		t.Fatalf("speedup by zero = %g", s)
	}
}

// Property: mean is bounded by min and max, and stddev is non-negative.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a fit of points generated from a line recovers the line.
func TestLinearFitRecoversLineProperty(t *testing.T) {
	f := func(slope, intercept float64, n uint8) bool {
		if math.IsNaN(slope) || math.IsInf(slope, 0) || math.Abs(slope) > 1e6 {
			return true
		}
		if math.IsNaN(intercept) || math.IsInf(intercept, 0) || math.Abs(intercept) > 1e6 {
			return true
		}
		m := int(n%20) + 2
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := 0; i < m; i++ {
			xs[i] = float64(i)
			ys[i] = slope*xs[i] + intercept
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		tol := 1e-6 * (1 + math.Abs(slope) + math.Abs(intercept))
		return almostEqual(fit.Slope, slope, tol) && almostEqual(fit.Intercept, intercept, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
