package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tenways/internal/report"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// fixtureLoader is shared across tests so stdlib packages type-check once.
var fixtureLoader *Loader

func TestMain(m *testing.M) {
	flag.Parse()
	var err error
	fixtureLoader, err = NewLoaderAt(".")
	if err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

// loadFixture loads one rule's fixture package from testdata/src.
func loadFixture(t *testing.T, rule string) []*Package {
	t.Helper()
	pkgs, err := fixtureLoader.Load(filepath.Join("testdata", "src", rule))
	if err != nil {
		t.Fatalf("load fixture %s: %v", rule, err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 3 {
		t.Fatalf("fixture %s: want 1 package with bad/clean/suppressed, got %+v", rule, pkgs)
	}
	return pkgs
}

// TestRuleFixtures runs every rule alone over its fixture package and pins
// the findings against a golden file. Structure is also asserted directly:
// bad.go must trigger, clean.go must not, and every finding in
// suppressed.go must be acknowledged with a reason.
func TestRuleFixtures(t *testing.T) {
	for _, rule := range Rules() {
		name := rule.Name()
		t.Run(name, func(t *testing.T) {
			pkgs := loadFixture(t, name)
			cfg := DefaultConfig()
			cfg.Rules = []string{name}
			res, err := Analyze(cfg, fixtureLoader.Root(), pkgs)
			if err != nil {
				t.Fatal(err)
			}

			var badHits, cleanHits, supUnacked int
			for _, f := range res.Findings {
				if f.Rule != name {
					t.Errorf("finding from foreign rule %q under -rules %s: %s", f.Rule, name, f)
				}
				switch filepath.Base(f.File) {
				case "bad.go":
					badHits++
					if f.Suppressed {
						t.Errorf("bad.go finding unexpectedly suppressed: %s", f)
					}
				case "clean.go":
					cleanHits++
				case "suppressed.go":
					if !f.Suppressed {
						supUnacked++
					} else if f.Reason == "" {
						t.Errorf("suppressed finding has empty reason: %s", f)
					}
				}
			}
			if badHits == 0 {
				t.Error("bad.go triggered no findings")
			}
			if cleanHits != 0 {
				t.Errorf("clean.go triggered %d findings", cleanHits)
			}
			if supUnacked != 0 {
				t.Errorf("suppressed.go has %d unacknowledged findings", supUnacked)
			}

			var b strings.Builder
			for _, f := range res.Findings {
				b.WriteString(f.String())
				b.WriteByte('\n')
			}
			goldenPath := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got := b.String(); got != string(want) {
				t.Errorf("findings differ from golden %s:\ngot:\n%swant:\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestReportByteStable analyzes all fixtures twice through two independent
// loaders and requires byte-identical output from every renderer — the same
// invariant the repo's experiment tables carry (EXPERIMENTS.md).
func TestReportByteStable(t *testing.T) {
	render := func(t *testing.T) []byte {
		t.Helper()
		l, err := NewLoaderAt(".")
		if err != nil {
			t.Fatal(err)
		}
		dirs := make([]string, 0, len(Rules()))
		for _, r := range Rules() {
			dirs = append(dirs, filepath.Join("testdata", "src", r.Name()))
		}
		pkgs, err := l.Load(dirs...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(DefaultConfig(), l.Root(), pkgs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, f := range res.Findings {
			buf.WriteString(f.String())
			buf.WriteByte('\n')
		}
		for _, r := range []report.Renderer{report.ASCII{}, report.Markdown{}, report.CSV{}, report.JSON{}} {
			if err := r.Table(&buf, FindingsTable("LINT", "fixture findings", res.Findings, true)); err != nil {
				t.Fatal(err)
			}
			if err := r.Table(&buf, CatalogTable("LINT", "fixture catalog", res)); err != nil {
				t.Fatal(err)
			}
		}
		buf.WriteString(Summary(res))
		return buf.Bytes()
	}
	a, b := render(t), render(t)
	if !bytes.Equal(a, b) {
		t.Error("two independent runs rendered different bytes")
	}
	if len(a) == 0 {
		t.Error("rendered report is empty")
	}
}

// TestIgnoreWithoutReason builds a synthetic module in a temp dir: a bare
// //lint:ignore directive must become an "ignore" meta-finding and must NOT
// suppress the violation on the next line.
func TestIgnoreWithoutReason(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixturemod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "clock.go"), `package fixturemod

import "time"

func Tick() int64 {
	//lint:ignore wallclock
	return time.Now().UnixNano()
}
`)
	l, err := NewLoaderAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(DefaultConfig(), l.Root(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	var meta, wallclock int
	for _, f := range res.Findings {
		switch f.Rule {
		case "ignore":
			meta++
		case "wallclock":
			wallclock++
			if f.Suppressed {
				t.Errorf("reasonless directive suppressed a finding: %s", f)
			}
		}
	}
	if meta != 1 {
		t.Errorf("got %d ignore meta-findings, want 1", meta)
	}
	if wallclock != 1 {
		t.Errorf("got %d wallclock findings, want 1", wallclock)
	}
}

// TestUnknownRule pins the -rules validation error.
func TestUnknownRule(t *testing.T) {
	_, err := Analyze(Config{Rules: []string{"nosuchrule"}}, "", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown rule") {
		t.Errorf("want unknown-rule error, got %v", err)
	}
}

// TestRuleNamesUnique guards the suppression matcher's assumption that rule
// names are distinct, and that every rule maps to the determinism family or
// a waste mode.
func TestRuleNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range Rules() {
		if seen[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
		if w := r.Waste(); w != "det" && !strings.HasPrefix(w, "W") {
			t.Errorf("rule %s has unrecognised waste tag %q", r.Name(), w)
		}
		if r.Doc() == "" {
			t.Errorf("rule %s has no doc line", r.Name())
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
