package lint

import (
	"fmt"
	"strconv"

	"tenways/internal/report"
)

// FindingsTable renders findings as a suite table: position, rule, the
// waste mode guarded, and the message. Suppressed findings are included
// only when showSuppressed is set, marked in a trailing column.
func FindingsTable(id, caption string, findings []Finding, showSuppressed bool) *report.Table {
	t := report.NewTable(id, caption, "position", "rule", "waste", "message", "suppressed")
	for _, f := range findings {
		if f.Suppressed && !showSuppressed {
			continue
		}
		sup := ""
		if f.Suppressed {
			sup = f.Reason
		}
		t.AddRow(f.Pos(), f.Rule, f.Waste, f.Msg, sup)
	}
	return t
}

// CatalogTable renders the rule catalog with per-rule finding counts from
// res (nil res renders counts as blank). This is the shape the T11
// experiment and wastevet's summary share.
func CatalogTable(id, caption string, res *Result) *report.Table {
	t := report.NewTable(id, caption,
		"rule", "guards", "enforces", "findings", "suppressed")
	var total, sup map[string]int
	if res != nil {
		total, sup = res.Counts()
	}
	for _, r := range Rules() {
		findings, suppressed := "", ""
		if res != nil {
			findings = strconv.Itoa(total[r.Name()] - sup[r.Name()])
			suppressed = strconv.Itoa(sup[r.Name()])
		}
		t.AddRow(r.Name(), WasteLabel(r.Waste()), r.Doc(), findings, suppressed)
	}
	return t
}

// WasteLabel expands a rule's waste tag for table output: "det" becomes
// "determinism", waste-mode IDs pass through.
func WasteLabel(w string) string {
	if w == "det" {
		return "determinism"
	}
	return w
}

// Summary is a one-line human summary of a run.
func Summary(res *Result) string {
	un := len(res.Unsuppressed())
	return fmt.Sprintf("%d findings (%d suppressed) in %d files across %d packages",
		un, len(res.Findings)-un, res.Files, res.Packages)
}
