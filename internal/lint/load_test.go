package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// writeFileIn writes content to dir/sub/name, creating sub first.
func writeFileIn(t *testing.T, dir, sub, name, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, sub, name), content)
}

// TestRuleNamesSorted pins the catalog listing order: the unknown-rule error
// embeds RuleNames(), and a scrambled list makes that error (and -list
// output) unstable across builds.
func TestRuleNamesSorted(t *testing.T) {
	names := RuleNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("RuleNames() not sorted: %v", names)
	}
	_, err := Analyze(Config{Rules: []string{"zzz-nosuch"}}, "", nil)
	if err == nil {
		t.Fatal("want unknown-rule error")
	}
	if !strings.Contains(err.Error(), strings.Join(names, ", ")) {
		t.Errorf("unknown-rule error does not list the sorted catalog:\n%v", err)
	}
}

// TestLoadSkipsBuildTagExcludedFiles: a file constrained to another OS must
// not be parsed into the package — its syntax may not even be valid here,
// and its findings would be noise.
func TestLoadSkipsBuildTagExcludedFiles(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tagmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "portable.go"), "package tagmod\n\nfunc Portable() int { return 1 }\n")
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	writeFile(t, filepath.Join(dir, "other.go"),
		"//go:build "+otherOS+"\n\npackage tagmod\n\nfunc Other() int { return 2 }\n")
	writeFile(t, filepath.Join(dir, "ignored.go"),
		"//go:build ignore\n\npackage main\n\nfunc main() {}\n")
	writeFile(t, filepath.Join(dir, "matching.go"),
		"//go:build "+runtime.GOOS+" && go1.1\n\npackage tagmod\n\nfunc Matching() int { return 3 }\n")

	l, err := NewLoaderAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	var names []string
	for _, f := range pkgs[0].Files {
		names = append(names, filepath.Base(pkgs[0].Fset.Position(f.Pos()).Filename))
	}
	sort.Strings(names)
	want := []string{"matching.go", "portable.go"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("loaded files %v, want %v", names, want)
	}
}

// TestLoadAllExcludedDirIsSkipped: a directory whose every file is excluded
// by build tags must vanish from the load, not surface as an empty package.
func TestLoadAllExcludedDirIsSkipped(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tagmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), "package tagmod\n\nfunc A() {}\n")
	writeFileIn(t, dir, "excluded", "x.go", "//go:build ignore\n\npackage excluded\n\nfunc X() {}\n")

	l, err := NewLoaderAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(filepath.Join(dir, "..."))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "tagmod" {
		t.Fatalf("got %d packages %+v, want just tagmod", len(pkgs), pkgs)
	}
}

// TestLoadSkipsTestdataAndHiddenDirs: the recursive walk must not descend
// into testdata, vendor, or dot/underscore directories — but naming a
// testdata directory explicitly must still load it (the fixture mechanism).
func TestLoadSkipsTestdataAndHiddenDirs(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module walkmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), "package walkmod\n\nfunc A() {}\n")
	for _, sub := range []string{"testdata", "vendor", ".hidden", "_skip"} {
		writeFileIn(t, dir, sub, "x.go", "package x\n\nfunc X() {}\n")
	}

	l, err := NewLoaderAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(filepath.Join(dir, "..."))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "walkmod" {
		t.Fatalf("recursive walk loaded %d packages, want just walkmod", len(pkgs))
	}

	// Explicitly naming the testdata directory still loads it.
	tds, err := l.Load(filepath.Join(dir, "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tds) != 1 || len(tds[0].Files) != 1 {
		t.Fatalf("explicit testdata load got %+v, want the one package", tds)
	}
}

// TestLoadToleratesTypeErrors: a package that does not type-check (unknown
// import, type mismatch) must still load with its AST intact and the
// diagnostics recorded — rules degrade, the analyzer does not crash.
func TestLoadToleratesTypeErrors(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module brokemod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "broken.go"), `package brokemod

import (
	"time"

	"github.com/nosuch/dependency"
)

func Broken() int64 {
	dependency.Use()
	var s string = 42
	_ = s
	return time.Now().UnixNano()
}
`)
	l, err := NewLoaderAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.TypeErrors) == 0 {
		t.Error("expected recorded type errors, got none")
	}
	if p.Types == nil || p.Info == nil {
		t.Error("degraded package lost its (partial) type information")
	}

	// Rules still run over the degraded package: the wallclock read is found.
	res, err := Analyze(Config{Rules: []string{"wallclock"}}, l.Root(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 || res.Findings[0].Rule != "wallclock" {
		t.Errorf("rules did not run over the degraded package: %+v", res.Findings)
	}
}

// TestLoadStubsUnresolvableImports: the module importer degrades missing
// imports to a named stub so checking continues around them.
func TestLoadStubsUnresolvableImports(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module stubmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "uses.go"), `package stubmod

import "stubmod/missing"

func Use() { missing.Call() }
`)
	l, err := NewLoaderAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if pkgs[0].Types == nil {
		t.Error("stubbed import still produced a nil types.Package")
	}
}
