package lint

// The waste-mode mirrors. Each rule is the source-level shadow of one of
// the keynote's ten ways: the pattern wastes cycles, bytes, or cache lines
// in our own Go the same way the modelled demonstrators waste them on the
// modelled machine.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// copylocksRule flags sync primitives passed, returned, or received by
// value: the copy splits the lock's state, so two goroutines serialise on
// different locks while believing they share one (McKenney's classic).
type copylocksRule struct{}

func (copylocksRule) Name() string  { return "copylocks" }
func (copylocksRule) Waste() string { return "W5" }
func (copylocksRule) Doc() string {
	return "sync.Mutex/WaitGroup/Once/Cond must not be copied by value"
}

// syncValueTypes are the sync types that embed state a copy would split.
var syncValueTypes = []string{"Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map"}

func (r copylocksRule) Check(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		check := func(fl *ast.FieldList, kind string) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				if selIsType(p, f, field.Type, "sync", syncValueTypes...) {
					rep.Report(field.Pos(),
						"%s copies a sync primitive by value, splitting its state; take a pointer", kind)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				check(d.Recv, "receiver")
				check(d.Type.Params, "parameter")
				check(d.Type.Results, "result")
			case *ast.FuncLit:
				check(d.Type.Params, "parameter")
				check(d.Type.Results, "result")
			case *ast.RangeStmt:
				// for _, mu := range muslice copies each element.
				if d.Value != nil && selIsType(p, f, rangeElemTypeExpr(d), "sync", syncValueTypes...) {
					rep.Report(d.Value.Pos(),
						"range copies a sync primitive by value, splitting its state; index the slice instead")
				}
			}
			return true
		})
	}
}

// rangeElemTypeExpr is a best-effort AST peek at the element type of a
// ranged composite literal; real slices need type info, which copylocks
// deliberately does not depend on, so this covers only literal ranges.
func rangeElemTypeExpr(rs *ast.RangeStmt) ast.Expr {
	if lit, ok := rs.X.(*ast.CompositeLit); ok {
		if arr, ok := lit.Type.(*ast.ArrayType); ok {
			return arr.Elt
		}
	}
	return nil
}

// preallocRule flags the append-growth pattern: a slice declared empty
// immediately before a loop that appends to it re-moves the backing array
// through the allocator and memory hierarchy at every doubling — the
// in-process version of W1.
type preallocRule struct{}

func (preallocRule) Name() string  { return "prealloc" }
func (preallocRule) Waste() string { return "W1" }
func (preallocRule) Doc() string {
	return "preallocate slices grown by append in the following loop"
}

func (r preallocRule) Check(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i := 1; i < len(block.List); i++ {
				body := loopBody(block.List[i])
				if body == nil {
					continue
				}
				name, declPos, ok := emptySliceDecl(block.List[i-1])
				if !ok {
					continue
				}
				if appendsTo(body, name) {
					rep.ReportFix(declPos, preallocFix(p, block.List[i-1], block.List[i], name),
						"%s grows by append inside the following loop; preallocate with make(..., 0, n) to avoid repeated re-allocation and copying", name)
				}
			}
			return true
		})
	}
}

// emptySliceDecl matches `x := []T{}`, `x := make([]T, 0)`, and
// `var x []T`, returning the declared name.
func emptySliceDecl(stmt ast.Stmt) (string, token.Pos, bool) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if s.Tok != token.DEFINE || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return "", 0, false
		}
		name := identName(s.Lhs[0])
		if name == "" || name == "_" {
			return "", 0, false
		}
		switch rhs := s.Rhs[0].(type) {
		case *ast.CompositeLit:
			if arr, ok := rhs.Type.(*ast.ArrayType); ok && arr.Len == nil && len(rhs.Elts) == 0 {
				return name, s.Pos(), true
			}
		case *ast.CallExpr:
			if identName(rhs.Fun) == "make" && len(rhs.Args) == 2 {
				if arr, ok := rhs.Args[0].(*ast.ArrayType); ok && arr.Len == nil && isZeroLit(rhs.Args[1]) {
					return name, s.Pos(), true
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR || len(gd.Specs) != 1 {
			return "", 0, false
		}
		vs, ok := gd.Specs[0].(*ast.ValueSpec)
		if !ok || len(vs.Names) != 1 || len(vs.Values) != 0 {
			return "", 0, false
		}
		if arr, ok := vs.Type.(*ast.ArrayType); ok && arr.Len == nil {
			return vs.Names[0].Name, s.Pos(), true
		}
	}
	return "", 0, false
}

// preallocFix builds the prealloc remedy when it is mechanical: the loop
// ranges over a plain identifier or selector (not the slice itself, not a
// channel), so the declaration can become make(sliceType, 0, len(ranged)).
func preallocFix(p *Package, decl, loop ast.Stmt, name string) *SuggestedFix {
	rs, ok := loop.(*ast.RangeStmt)
	if !ok {
		return nil
	}
	var ranged string
	switch x := rs.X.(type) {
	case *ast.Ident:
		ranged = x.Name
	case *ast.SelectorExpr:
		ranged = types.ExprString(x)
	default:
		return nil
	}
	if ranged == name || isChanType(p, rs.X) {
		return nil // len() of the target itself or of a channel buffer is wrong
	}
	var sliceType string
	switch s := decl.(type) {
	case *ast.AssignStmt:
		switch rhs := s.Rhs[0].(type) {
		case *ast.CompositeLit:
			sliceType = types.ExprString(rhs.Type)
		case *ast.CallExpr:
			sliceType = types.ExprString(rhs.Args[0])
		}
	case *ast.DeclStmt:
		if vs, ok := s.Decl.(*ast.GenDecl).Specs[0].(*ast.ValueSpec); ok {
			sliceType = types.ExprString(vs.Type)
		}
	}
	if sliceType == "" {
		return nil
	}
	return replaceRange(p, "preallocate the slice to the ranged length",
		decl.Pos(), decl.End(),
		fmt.Sprintf("%s := make(%s, 0, len(%s))", name, sliceType, ranged))
}

// isZeroLit reports whether the expression is the literal 0.
func isZeroLit(expr ast.Expr) bool {
	lit, ok := expr.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// appendsTo reports whether the body contains `name = append(name, ...)`.
func appendsTo(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return !found
		}
		if identName(as.Lhs[0]) != name {
			return !found
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if ok && identName(call.Fun) == "append" && len(call.Args) > 0 && identName(call.Args[0]) == name {
			found = true
		}
		return !found
	})
	return found
}

// sprintfRule flags per-element string formatting in loops outside the
// presentation plane: fmt's reflection-driven path allocates per call,
// a mismatch between formulation and machine (W8) when it sits on a hot
// loop.
type sprintfRule struct{}

func (sprintfRule) Name() string  { return "sprintf" }
func (sprintfRule) Waste() string { return "W8" }
func (sprintfRule) Doc() string {
	return "no fmt.Sprintf in hot loop bodies; hoist it or use strconv"
}

func (r sprintfRule) Check(p *Package, rep *Reporter) {
	if inPlane(p.ImportPath, p.cfg.PresentationPlane) {
		return
	}
	for _, f := range p.Files {
		seen := make(map[token.Pos]bool)
		inspectLoops(f, func(_ ast.Stmt, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := pkgFunc(p, f, call, "fmt", "Sprintf", "Sprint", "Sprintln"); ok && !seen[call.Pos()] {
					seen[call.Pos()] = true
					rep.Report(call.Pos(),
						"fmt.%s in a loop body allocates per element; hoist the formatting or use strconv", name)
				}
				return true
			})
		})
	}
}

// atomicpadRule flags adjacent atomics in one struct: independently
// written atomics on a shared cache line ping-pong the line between cores
// exactly like the W9 demonstrator's packed counters.
type atomicpadRule struct{}

func (atomicpadRule) Name() string  { return "atomicpad" }
func (atomicpadRule) Waste() string { return "W9" }
func (atomicpadRule) Doc() string {
	return "adjacent struct atomics share a cache line; pad between them"
}

// atomicTypes are the sync/atomic value types.
var atomicTypes = []string{
	"Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value",
}

func (r atomicpadRule) Check(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			type slot struct {
				name   string
				atomic bool
				pad    bool
				pos    token.Pos
			}
			slots := make([]slot, 0, len(st.Fields.List))
			for _, field := range st.Fields.List {
				isAtomic := isAtomicType(p, f, field.Type)
				names := field.Names
				if len(names) == 0 {
					slots = append(slots, slot{name: "embedded", atomic: isAtomic, pos: field.Pos()})
					continue
				}
				for _, id := range names {
					slots = append(slots, slot{
						name:   id.Name,
						atomic: isAtomic,
						pad:    id.Name == "_",
						pos:    id.Pos(),
					})
				}
			}
			for i := 1; i < len(slots); i++ {
				if slots[i].atomic && slots[i-1].atomic && !slots[i].pad && !slots[i-1].pad {
					var fix *SuggestedFix
					if p.Fset.Position(slots[i].pos).Line != p.Fset.Position(slots[i-1].pos).Line {
						fix = padFix(p, slots[i].pos)
					}
					rep.ReportFix(slots[i].pos, fix,
						"%s and %s are adjacent atomics on one cache line (false sharing); insert _ [56]byte padding between independently-written atomics", slots[i-1].name, slots[i].name)
				}
			}
			return true
		})
	}
}

// padFix inserts a `_ [56]byte` field line directly above the second atomic,
// copying that line's indentation.
func padFix(p *Package, pos token.Pos) *SuggestedFix {
	tf := p.Fset.File(pos)
	if tf == nil {
		return nil
	}
	src, ok := p.Src[tf.Name()]
	if !ok {
		return nil
	}
	lineStart := tf.Offset(tf.LineStart(tf.Line(pos)))
	indentEnd := lineStart
	for indentEnd < len(src) && (src[indentEnd] == ' ' || src[indentEnd] == '\t') {
		indentEnd++
	}
	return &SuggestedFix{
		Msg: "insert cache-line padding between the atomics",
		Edits: []TextEdit{{
			File:  tf.Name(),
			Start: lineStart,
			End:   lineStart,
			New:   string(src[lineStart:indentEnd]) + "_ [56]byte\n",
		}},
	}
}

// isAtomicType matches atomic.X and arrays of atomic.X.
func isAtomicType(p *Package, f *ast.File, expr ast.Expr) bool {
	if arr, ok := expr.(*ast.ArrayType); ok {
		return isAtomicType(p, f, arr.Elt)
	}
	return selIsType(p, f, expr, "sync/atomic", atomicTypes...)
}

// chanbatchRule flags loops whose whole body is a single channel send: one
// message per element is the in-process form of W7, where aggregation
// turns per-word latency into one bulk transfer.
type chanbatchRule struct{}

func (chanbatchRule) Name() string  { return "chanbatch" }
func (chanbatchRule) Waste() string { return "W7" }
func (chanbatchRule) Doc() string {
	return "loop body is a bare channel send; batch elements into one message"
}

func (r chanbatchRule) Check(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		seen := make(map[token.Pos]bool)
		inspectLoops(f, func(loop ast.Stmt, body *ast.BlockStmt) {
			if len(body.List) != 1 || seen[loop.Pos()] {
				return
			}
			if send, ok := body.List[0].(*ast.SendStmt); ok {
				seen[loop.Pos()] = true
				rep.Report(send.Pos(),
					"loop sends one element per message; aggregate into a slice and send once, or justify the per-element hand-off")
			}
		})
	}
}

// deferloopRule flags defer inside loops: the deferred calls pile up until
// function return, holding resources open and burning memory while idle —
// the W10 pattern of spending energy on work parked, not progressing.
type deferloopRule struct{}

func (deferloopRule) Name() string  { return "deferloop" }
func (deferloopRule) Waste() string { return "W10" }
func (deferloopRule) Doc() string {
	return "no defer inside loops; release resources at the end of each iteration"
}

func (r deferloopRule) Check(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		seen := make(map[token.Pos]bool)
		inspectLoops(f, func(_ ast.Stmt, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncLit:
					// A defer inside a function literal runs at that
					// function's return, not the loop's; out of scope.
					return false
				case *ast.DeferStmt:
					if !seen[d.Pos()] {
						seen[d.Pos()] = true
						rep.Report(d.Pos(),
							"defer inside a loop parks the release until function return; close at the end of the iteration instead")
					}
				}
				return true
			})
		})
	}
}
