package lint

// The determinism family. The lab's contract (README, DESIGN,
// EXPERIMENTS) is that the modelled plane is a pure function of (machine,
// workload, seed): same inputs, byte-identical tables. These rules make
// the contract structural instead of test-enforced: wall clocks, ambient
// PRNGs, map iteration order, and unaccounted goroutines are the four ways
// host nondeterminism leaks into modelled results.

import (
	"go/ast"
	"go/types"
)

// wallclockRule forbids wall-clock reads outside the measured plane.
type wallclockRule struct{}

func (wallclockRule) Name() string  { return "wallclock" }
func (wallclockRule) Waste() string { return "det" }
func (wallclockRule) Doc() string {
	return "no time.Now/Since/Sleep in the modelled plane; virtual time only"
}

// wallclockFuncs are the time functions that read or wait on the host
// clock. time.Duration arithmetic and formatting stay legal everywhere.
var wallclockFuncs = []string{
	"Now", "Since", "Until", "Sleep", "After", "AfterFunc",
	"Tick", "NewTicker", "NewTimer",
}

func (r wallclockRule) Check(p *Package, rep *Reporter) {
	if inPlane(p.ImportPath, p.cfg.MeasuredPlane) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFunc(p, f, call, "time", wallclockFuncs...); ok {
				rep.Report(call.Pos(),
					"time.%s reads the host clock inside the modelled plane; model virtual time or move the measurement to the measured plane", name)
			}
			return true
		})
	}
}

// randseedRule forbids ambient math/rand randomness: the modelled plane
// must not import it at all, and nothing anywhere may use the shared
// package-global source or seed a generator from the clock.
type randseedRule struct{}

func (randseedRule) Name() string  { return "randseed" }
func (randseedRule) Waste() string { return "det" }
func (randseedRule) Doc() string {
	return "no unseeded or time-seeded math/rand; thread an explicit seed (workload.Rand)"
}

// globalRandFuncs draw from math/rand's shared package source.
var globalRandFuncs = []string{
	"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n", "Uint32", "Uint64",
	"Float32", "Float64", "Perm", "Shuffle", "NormFloat64", "ExpFloat64", "Seed",
}

func (r randseedRule) Check(p *Package, rep *Reporter) {
	measured := inPlane(p.ImportPath, p.cfg.MeasuredPlane)
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path := importSpecPath(spec)
			if (path == "math/rand" || path == "math/rand/v2") && !measured {
				rep.Report(spec.Pos(),
					"the modelled plane must draw randomness from a threaded seed (workload.Rand, chaos.DefaultSeed), not %s", path)
			}
		}
		for randName, path := range p.imports[f] {
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			_ = randName
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := pkgFunc(p, f, call, path, globalRandFuncs...); ok {
					rep.Report(call.Pos(),
						"rand.%s uses the shared package-global source; construct a local generator from an explicit seed", name)
				}
				if _, ok := pkgFunc(p, f, call, path, "NewSource", "NewPCG", "NewChaCha8"); ok && containsTimeCall(p, f, call) {
					rep.Report(call.Pos(),
						"time-seeded PRNG changes every run; thread an explicit seed so results reproduce")
				}
				return true
			})
		}
	}
}

// containsTimeCall reports whether the subtree calls into package time.
func containsTimeCall(p *Package, f *ast.File, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && isPkgName(p, f, id, "time") {
					found = true
					return false
				}
			}
			// Method chains like time.Now().UnixNano() keep the receiver
			// call nested, so plain recursion finds them.
		}
		return !found
	})
	return found
}

// importSpecPath returns the unquoted import path of a spec.
func importSpecPath(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}

// maprangeRule flags map iteration that feeds rendered output directly:
// Go randomises map order per run, so every emitting loop must iterate a
// sorted key slice instead.
type maprangeRule struct{}

func (maprangeRule) Name() string  { return "maprange" }
func (maprangeRule) Waste() string { return "det" }
func (maprangeRule) Doc() string {
	return "no map range feeding output sinks; sort the keys first"
}

// outputSinks are method/function names that emit user-visible bytes. The
// set is deliberately about direct emission: building an intermediate
// slice and sorting it before output is the remedy, not a violation.
var outputSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "AddSeries": true,
}

func (r maprangeRule) Check(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		seen := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p, rs.X) {
				return true
			}
			line := p.Fset.Position(rs.Pos()).Line
			if seen[line] {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				var name string
				switch fun := call.Fun.(type) {
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				case *ast.Ident:
					name = fun.Name
				}
				if outputSinks[name] && !seen[line] {
					seen[line] = true
					rep.Report(rs.Pos(),
						"map iteration order is randomised but this loop emits output (%s); range over sorted keys instead", name)
					return false
				}
				return true
			})
			return true
		})
	}
}

// goroutineRule flags fire-and-forget goroutines: a spawn with no context,
// done channel, channel hand-off, or WaitGroup in sight has no shutdown or
// completion path, which is how stray host concurrency leaks into (and
// outlives) a run.
type goroutineRule struct{}

func (goroutineRule) Name() string  { return "goroutine" }
func (goroutineRule) Waste() string { return "det" }
func (goroutineRule) Doc() string {
	return "every goroutine needs a ctx/done/WaitGroup linkage"
}

func (r goroutineRule) Check(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineLinked(p, g) {
				rep.Report(g.Pos(),
					"goroutine has no ctx, done channel, channel hand-off, or WaitGroup; give it a completion path so runs stay accountable")
			}
			return true
		})
	}
}

// goroutineLinked looks for any lifecycle linkage in the go statement:
// channel operations, select, wg.Done/Wait/Add, a context value, or a
// channel-typed argument.
func goroutineLinked(p *Package, g *ast.GoStmt) bool {
	linked := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if linked {
			return false
		}
		switch m := n.(type) {
		case *ast.UnaryExpr:
			if m.Op.String() == "<-" {
				linked = true
			}
		case *ast.SendStmt, *ast.SelectStmt:
			linked = true
		case *ast.CallExpr:
			if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done", "Wait", "Add":
					linked = true
				}
			}
		case *ast.Ident:
			if m.Name == "ctx" || isContextType(p, m) || isChanType(p, m) {
				linked = true
			}
		}
		return !linked
	})
	return linked
}

// isContextType reports whether the expression's static type is
// context.Context.
func isContextType(p *Package, expr ast.Expr) bool {
	t := typeOf(p, expr)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
