package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// registered holds module-level rules added by Register, in registration
// order — the flow package appends its interprocedural rules here from an
// init so every importer of internal/lint/flow sees one catalog.
var registered []Rule

// Register appends rules to the catalog. It is meant to be called from an
// init (internal/lint/flow does); duplicate names panic because the
// suppression matcher keys on them.
func Register(rules ...Rule) {
	names := make(map[string]bool, len(registered)+10)
	for _, r := range Rules() {
		names[r.Name()] = true
	}
	for _, r := range rules {
		if names[r.Name()] {
			panic("lint: duplicate rule registered: " + r.Name())
		}
		names[r.Name()] = true
		registered = append(registered, r)
	}
}

// Rules returns the full catalog in canonical order: the determinism family
// first, then the waste-mode mirrors in keynote order, then the stalewaiver
// auditor, then any registered module rules in registration order.
func Rules() []Rule {
	out := []Rule{
		wallclockRule{},
		randseedRule{},
		maprangeRule{},
		goroutineRule{},
		copylocksRule{},
		preallocRule{},
		sprintfRule{},
		atomicpadRule{},
		chanbatchRule{},
		deferloopRule{},
		stalewaiverRule{},
	}
	return append(out, registered...)
}

// RuleNames returns the catalog's rule names, sorted: the list exists for
// error messages and -list style output, where alphabetical order stays
// scannable as registration grows the catalog.
func RuleNames() []string {
	rules := Rules()
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Name()
	}
	sort.Strings(out)
	return out
}

// ---- shared AST/type helpers ----

// pkgFunc reports whether call invokes pkgPath.name for one of names, using
// type information when present and the file's import table otherwise.
// It returns the matched function name.
func pkgFunc(p *Package, f *ast.File, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !isPkgName(p, f, id, pkgPath) {
		return "", false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return n, true
		}
	}
	return "", false
}

// isPkgName reports whether id names the import of pkgPath in file f.
func isPkgName(p *Package, f *ast.File, id *ast.Ident, pkgPath string) bool {
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path() == pkgPath
			}
			return false
		}
	}
	return p.imports[f][id.Name] == pkgPath
}

// selIsType reports whether the type expression is the selector
// pkgPath.name (e.g. sync.Mutex) in file f, unwrapping parens.
func selIsType(p *Package, f *ast.File, expr ast.Expr, pkgPath string, names ...string) bool {
	for {
		if par, ok := expr.(*ast.ParenExpr); ok {
			expr = par.X
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !isPkgName(p, f, id, pkgPath) {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// typeOf returns the expression's type, or nil when type information is
// missing or invalid.
func typeOf(p *Package, expr ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	t := p.Info.TypeOf(expr)
	if t == nil {
		return nil
	}
	if basic, ok := t.(*types.Basic); ok && basic.Kind() == types.Invalid {
		return nil
	}
	return t
}

// isMapType reports whether the expression's static type is a map,
// unwrapping named types and pointers.
func isMapType(p *Package, expr ast.Expr) bool {
	t := typeOf(p, expr)
	for t != nil {
		switch u := t.Underlying().(type) {
		case *types.Map:
			return true
		case *types.Pointer:
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}

// isChanType reports whether the expression's static type is a channel.
func isChanType(p *Package, expr ast.Expr) bool {
	t := typeOf(p, expr)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// eachFunc visits every function body in the file (declarations and
// literals), handing the body to fn.
func eachFunc(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			if d.Body != nil {
				fn(d.Body)
			}
		}
		return true
	})
}

// loopBody returns the body of a for or range statement, else nil.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// inspectLoops visits every for/range statement in the file.
func inspectLoops(f *ast.File, fn func(loop ast.Stmt, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		if body := loopBody(n); body != nil {
			fn(n.(ast.Stmt), body)
		}
		return true
	})
}

// identName returns the name of an identifier expression, or "".
func identName(expr ast.Expr) string {
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
