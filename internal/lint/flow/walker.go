package flow

// The summary walker: one pass over a function body tracking the ordered
// set of locks held at each statement. It is syntactic dataflow — branches
// save and restore the held set, loops bump a depth counter, deferred
// unlocks pin their lock for the rest of the function, and a body that
// unlocks a mutex it never locked is inferred to hold it on entry (the
// *Locked helper convention).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"tenways/internal/lint"
)

type walker struct {
	a    *Analysis
	p    *lint.Package
	info *funcInfo

	held      []string // ordered: held[i] acquired before held[i+1]
	loopDepth int
	loopStack []ast.Node // enclosing loop statements, innermost last
	spawned   bool       // body runs on a go-spawned goroutine
	litCount  int
	writes    map[ast.Expr]bool
}

// entryHeld infers locks held when the function is entered: any lock whose
// first operation in source order is an unlock must have been acquired by
// the caller.
func (w *walker) entryHeld(body *ast.BlockStmt) []string {
	first := make(map[string]string) // lock key -> "lock" | "unlock"
	order := []string(nil)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, key, ok := w.lockOp(call); ok {
			if _, seen := first[key]; !seen {
				first[key] = op
				order = append(order, key)
			}
		}
		return true
	})
	held := make([]string, 0, len(order))
	for _, key := range order {
		if first[key] == "unlock" {
			held = append(held, key)
		}
	}
	return held
}

// lockOp classifies a call as a mutex operation, returning "lock" or
// "unlock" plus the canonical key of the mutex expression.
func (w *walker) lockOp(call *ast.CallExpr) (op, key string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", "", false
	}
	if w.p.Info != nil {
		// Require the receiver (or the embedded method's actual receiver)
		// to be a sync mutex when types resolved; stay name-based otherwise.
		if t := w.p.Info.TypeOf(sel.X); t != nil {
			if !syncNamed(t, "Mutex", "RWMutex") {
				if !w.selectsSyncMethod(sel, "Mutex", "RWMutex") {
					return "", "", false
				}
				// s.Lock() through an embedded sync.Mutex: canonicalise to the
				// owning type's embedded field ("pkg.T.Mutex") so it groups
				// with field guards and across instances.
				if owner := typeKey(t); owner != "" {
					name := "Mutex"
					if w.selectsSyncMethod(sel, "RWMutex") {
						name = "RWMutex"
					}
					return op, owner + "." + name, true
				}
			}
		}
	}
	k, _ := w.exprKey(sel.X)
	return op, k, true
}

// selectsSyncMethod reports whether sel resolves (possibly through an
// embedded field) to a method of one of the named sync types.
func (w *walker) selectsSyncMethod(sel *ast.SelectorExpr, names ...string) bool {
	s, ok := w.p.Info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return syncNamed(sig.Recv().Type(), names...)
}

// wgOp classifies a call as a WaitGroup operation. Type information is
// required — Add/Done/Wait are too generic to match by name alone.
func (w *walker) wgOpOf(call *ast.CallExpr) (op, key string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || w.p.Info == nil {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return "", "", false
	}
	t := w.p.Info.TypeOf(sel.X)
	if t == nil || !syncNamed(t, "WaitGroup") {
		if !w.selectsSyncMethod(sel, "WaitGroup") {
			return "", "", false
		}
	}
	k, _ := w.exprKey(sel.X)
	return sel.Sel.Name, k, true
}

// keyKind classifies how reliable a canonical key's identity is.
type keyKind int

const (
	// kindTextual keys are rendered source text scoped to one function;
	// they keep intraprocedural tracking working but never group across
	// functions.
	kindTextual keyKind = iota
	// kindLocal keys identify a local variable by its declaration
	// position, so a closure capturing its parent's variable shares the
	// key with the parent.
	kindLocal
	// kindPkgVar keys name a package-level variable.
	kindPkgVar
	// kindField keys name a field of a named type ("pkgpath.Type.field"),
	// object-insensitively: every instance of the type shares the key.
	kindField
)

// stable reports whether a key may be grouped across functions.
func (k keyKind) stable() bool { return k >= kindLocal }

// exprKey canonicalises a lock/channel/WaitGroup expression's identity.
func (w *walker) exprKey(e ast.Expr) (string, keyKind) {
	switch ex := e.(type) {
	case *ast.ParenExpr:
		return w.exprKey(ex.X)
	case *ast.StarExpr:
		return w.exprKey(ex.X)
	case *ast.UnaryExpr:
		if ex.Op == token.AND {
			return w.exprKey(ex.X)
		}
	case *ast.SelectorExpr:
		if w.p.Info != nil {
			if t := w.p.Info.TypeOf(ex.X); t != nil {
				if k := typeKey(t); k != "" {
					return k + "." + ex.Sel.Name, kindField
				}
			}
		}
		base, _ := w.exprKey(ex.X)
		return base + "." + ex.Sel.Name, kindTextual
	case *ast.IndexExpr:
		base, _ := w.exprKey(ex.X)
		return base + "[]", kindTextual
	case *ast.Ident:
		if w.p.Info != nil {
			if obj, ok := w.p.Info.Uses[ex]; ok {
				if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil {
					if v.Parent() == v.Pkg().Scope() {
						return v.Pkg().Path() + "." + v.Name(), kindPkgVar
					}
					// Keyed by declaration site so captures share identity.
					pos := w.p.Fset.Position(v.Pos())
					return "local:" + pos.Filename + ":" + strconv.Itoa(pos.Line) +
						":" + strconv.Itoa(pos.Column) + ":" + v.Name(), kindLocal
				}
			}
		}
		return w.info.key + "$" + ex.Name, kindTextual
	}
	return w.info.key + "$" + types.ExprString(e), kindTextual
}

// ---- statement walk ----

func (w *walker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range st.List {
			w.stmt(inner)
		}
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e)
		}
		for _, e := range st.Lhs {
			w.expr(e)
		}
	case *ast.IncDecStmt:
		w.expr(st.X)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.expr(st.Cond)
		w.branch(st.Body)
		if st.Else != nil {
			saved := w.snapshot()
			w.stmt(st.Else)
			w.restore(saved)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.loopDepth++
		w.loopStack = append(w.loopStack, st)
		w.branch(st.Body)
		w.loopStack = w.loopStack[:len(w.loopStack)-1]
		w.loopDepth--
		if st.Post != nil {
			w.stmt(st.Post)
		}
	case *ast.RangeStmt:
		w.expr(st.X)
		if w.p.Info != nil {
			if t := w.p.Info.TypeOf(st.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					w.info.exitLinked = true // ranging a channel is a join
				}
			}
		}
		w.loopDepth++
		w.loopStack = append(w.loopStack, st)
		w.branch(st.Body)
		w.loopStack = w.loopStack[:len(w.loopStack)-1]
		w.loopDepth--
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		w.clauses(st.Body)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.stmt(st.Assign)
		w.clauses(st.Body)
	case *ast.SelectStmt:
		w.info.exitLinked = true
		w.clauses(st.Body)
	case *ast.SendStmt:
		w.info.exitLinked = true
		w.expr(st.Chan)
		w.expr(st.Value)
	case *ast.GoStmt:
		w.spawn(st)
	case *ast.DeferStmt:
		w.deferred(st.Call)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e)
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

// branch walks a nested block with the held set saved and restored: a lock
// taken inside an if-arm or loop body does not stay held after it.
func (w *walker) branch(body *ast.BlockStmt) {
	saved := w.snapshot()
	w.stmt(body)
	w.restore(saved)
}

// clauses walks each case clause of a switch/select body as a branch.
func (w *walker) clauses(body *ast.BlockStmt) {
	for _, c := range body.List {
		saved := w.snapshot()
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e)
			}
			for _, s := range cc.Body {
				w.stmt(s)
			}
		case *ast.CommClause:
			if cc.Comm != nil {
				w.stmt(cc.Comm)
			}
			for _, s := range cc.Body {
				w.stmt(s)
			}
		}
		w.restore(saved)
	}
}

func (w *walker) snapshot() []string { return append([]string(nil), w.held...) }
func (w *walker) restore(s []string) { w.held = s }

// ---- expression walk ----

func (w *walker) expr(e ast.Expr) {
	switch ex := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(ex)
	case *ast.FuncLit:
		// A stored or passed closure runs later under an unknown lock set.
		w.closure(ex, "fn", nil, w.spawned)
	case *ast.UnaryExpr:
		if ex.Op == token.ARROW {
			w.info.exitLinked = true // channel receive
		}
		w.expr(ex.X)
	case *ast.SelectorExpr:
		w.access(ex)
		w.expr(ex.X)
	case *ast.BinaryExpr:
		w.expr(ex.X)
		w.expr(ex.Y)
	case *ast.ParenExpr:
		w.expr(ex.X)
	case *ast.StarExpr:
		w.expr(ex.X)
	case *ast.IndexExpr:
		w.expr(ex.X)
		w.expr(ex.Index)
	case *ast.IndexListExpr:
		w.expr(ex.X)
	case *ast.SliceExpr:
		w.expr(ex.X)
		w.expr(ex.Low)
		w.expr(ex.High)
		w.expr(ex.Max)
	case *ast.TypeAssertExpr:
		w.expr(ex.X)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(ex.Key)
		w.expr(ex.Value)
	case *ast.Ident:
		if ex.Name == "ctx" {
			w.info.exitLinked = true // context in scope is a cancel path
		}
	}
}

// call handles one call expression: lock/WaitGroup/close/context
// classification first, then callee resolution for the call graph.
func (w *walker) call(call *ast.CallExpr) {
	// close(ch)
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		isBuiltin := true
		if w.p.Info != nil {
			if obj, ok := w.p.Info.Uses[id]; ok {
				_, isBuiltin = obj.(*types.Builtin) // a shadowed close() is a plain call
			}
		}
		if isBuiltin {
			key, kind := w.exprKey(call.Args[0])
			inLoop := w.loopDepth > 0 && !w.perIteration(call.Args[0])
			w.info.closes = append(w.info.closes, closeSite{
				ch: key, resolved: kind.stable(), inLoop: inLoop, pkg: w.p, pos: call.Pos(),
			})
			w.info.exitLinked = true
			w.expr(call.Args[0])
			return
		}
	}
	// Immediately-invoked closure: inline semantics, current locks held.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.closure(lit, "inline", w.snapshot(), w.spawned)
		for _, arg := range call.Args {
			w.expr(arg)
		}
		return
	}
	if op, key, ok := w.lockOp(call); ok {
		sel := call.Fun.(*ast.SelectorExpr)
		if op == "lock" {
			for _, outer := range w.held {
				if outer != key {
					w.info.pairs = append(w.info.pairs, lockPair{outer: outer, inner: key, pkg: w.p, pos: call.Pos()})
				}
			}
			w.info.acquires = append(w.info.acquires, lockSite{key: key, pkg: w.p, pos: call.Pos()})
			w.held = append(w.held, key)
		} else {
			w.release(key)
		}
		w.expr(sel.X)
		return
	}
	if op, key, ok := w.wgOpOf(call); ok {
		sel := call.Fun.(*ast.SelectorExpr)
		_, kind := w.exprKey(sel.X)
		w.info.wgOps[op] = append(w.info.wgOps[op], wgOp{
			wg: key, resolved: kind.stable(), spawned: w.spawned, pkg: w.p, pos: call.Pos(),
		})
		w.info.exitLinked = true
		w.expr(sel.X)
		for _, arg := range call.Args {
			w.expr(arg)
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && w.p.Info != nil {
		if t := w.p.Info.TypeOf(sel.X); t != nil {
			if named := namedOf(t); named != nil && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "context" {
				w.info.exitLinked = true // ctx.Done()
			}
		}
	}
	if callee := w.resolveCallee(call); callee != "" {
		w.info.calls = append(w.info.calls, callSite{
			callee: callee, held: w.snapshot(), pkg: w.p, pos: call.Pos(),
		})
	}
	w.expr(call.Fun)
	for _, arg := range call.Args {
		w.expr(arg)
	}
}

// perIteration reports whether a channel expression denotes a different
// channel on each pass of the innermost enclosing loop: an indexed element,
// or a variable declared inside the loop (a range variable included). Such
// closes are one-per-channel, not double closes.
func (w *walker) perIteration(arg ast.Expr) bool {
	switch a := arg.(type) {
	case *ast.ParenExpr:
		return w.perIteration(a.X)
	case *ast.IndexExpr:
		return true // element identity varies with the index
	case *ast.Ident:
		if w.p.Info == nil || len(w.loopStack) == 0 {
			return false
		}
		obj := w.p.Info.Uses[a]
		if obj == nil {
			return false
		}
		loop := w.loopStack[len(w.loopStack)-1]
		return obj.Pos() >= loop.Pos() && obj.Pos() < loop.End()
	}
	return false
}

// release drops the most recent acquisition of key from the held set.
func (w *walker) release(key string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == key {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// deferred handles a defer: a deferred unlock pins the lock held for the
// rest of the function; anything else is summarized like a plain call.
func (w *walker) deferred(call *ast.CallExpr) {
	if op, _, ok := w.lockOp(call); ok && op == "unlock" {
		return // runs at return; the lock stays held until then
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// Runs at return under an unknown lock set; the closure's own
		// unlock-before-lock inference recovers the usual
		// defer func() { ...; mu.Unlock() }() pattern.
		w.closure(lit, "inline", nil, w.spawned)
		return
	}
	w.call(call)
}

// spawn handles a go statement: the spawned body is summarized as its own
// anonymous function with an empty held set (it runs concurrently), and the
// site records whether any syntactic linkage is visible at the statement.
func (w *walker) spawn(st *ast.GoStmt) {
	linked := false
	for _, arg := range st.Call.Args {
		if w.argLinks(arg) {
			linked = true
		}
		w.expr(arg) // evaluated in the spawning goroutine
	}
	site := spawnSite{linked: linked, pkg: w.p, pos: st.Pos()}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		site.callee = w.closure(lit, "go", nil, true)
	} else {
		site.callee = w.resolveCallee(st.Call)
		w.expr(st.Call.Fun)
	}
	w.info.spawns = append(w.info.spawns, site)
}

// argLinks reports whether a spawn argument is itself a lifecycle link: a
// channel, a context, or a WaitGroup pointer handed to the goroutine.
func (w *walker) argLinks(arg ast.Expr) bool {
	if id, ok := arg.(*ast.Ident); ok && id.Name == "ctx" {
		return true
	}
	if w.p.Info == nil {
		return false
	}
	t := w.p.Info.TypeOf(arg)
	if t == nil {
		return false
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	if named := namedOf(t); named != nil && named.Obj().Pkg() != nil {
		path, name := named.Obj().Pkg().Path(), named.Obj().Name()
		if path == "context" && name == "Context" {
			return true
		}
		if path == "sync" && name == "WaitGroup" {
			return true
		}
	}
	return false
}

// closure summarizes a function literal as an anonymous funcInfo keyed
// under the parent. held seeds the closure's lock context (inline
// invocations pass the current set); the closure's own unlock-first
// inference extends it. Inline closures also become call-graph edges so
// their acquisitions propagate to the parent's callers.
func (w *walker) closure(lit *ast.FuncLit, kind string, held []string, spawned bool) string {
	w.litCount++
	key := w.info.key + "$" + kind + strconv.Itoa(w.litCount)
	info := w.a.newFuncInfo(key, w.p, lit.Pos(), true)
	cw := &walker{a: w.a, p: w.p, info: info, spawned: spawned, writes: collectWrites(lit.Body)}
	cw.held = append(append([]string(nil), held...), cw.entryHeld(lit.Body)...)
	cw.stmt(lit.Body)
	if kind == "inline" {
		w.info.calls = append(w.info.calls, callSite{
			callee: key, held: append([]string(nil), held...), pkg: w.p, pos: lit.Pos(),
		})
	}
	return key
}

// resolveCallee maps a call to the summary key of its target function, or
// "" when the target is not a statically-known named function.
func (w *walker) resolveCallee(call *ast.CallExpr) string {
	if w.p.Info == nil {
		return ""
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := w.p.Info.Uses[id].(*types.Func); ok {
		return typeFuncKey(fn)
	}
	return ""
}

// access records a type-resolved struct field read or write with the locks
// currently held. Fields that are themselves sync primitives are identity,
// not data, and are skipped.
func (w *walker) access(sel *ast.SelectorExpr) {
	if w.p.Info == nil {
		return
	}
	s, ok := w.p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	obj, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	if syncNamed(obj.Type(), "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map") {
		return
	}
	owner := typeKey(s.Recv())
	if owner == "" {
		return
	}
	w.info.accesses = append(w.info.accesses, fieldAccess{
		field:  owner + "." + obj.Name(),
		guards: w.snapshot(),
		write:  w.writes[sel],
		pkg:    w.p,
		pos:    sel.Sel.Pos(),
	})
}
