package flow

// Interprocedural propagation over the call graph. Three facts flow:
//
//   - acquired: the set of locks a function may take, transitively through
//     its callees (monotone union to a fixed point). Feeds lockorder: a
//     call made while holding L to a function whose transitive set holds M
//     is an (L, M) ordering edge at the call site.
//   - alwaysHeld: the locks held at EVERY call site of a function,
//     including what the callers themselves always hold (decreasing
//     intersection from top). Feeds guardedfield: an access with no local
//     guard is still guarded when every path into the function holds the
//     mutex.
//   - linked: whether a spawned goroutine reaches any completion machinery
//     (channel op, select, close, context, WaitGroup) in its body or in
//     anything it calls, to a bounded depth. Feeds goroleak.

import "sort"

// linkDepth bounds the transitive search for a spawned goroutine's exit
// path; real exit machinery sits within a few calls of the spawn.
const linkDepth = 4

// fixpointRounds bounds both dataflow iterations; sets are small and real
// call chains shallow, so the lattices settle long before this.
const fixpointRounds = 12

func (a *Analysis) propagate() {
	a.acquired = make(map[string]map[string]bool, len(a.funcs))
	for _, k := range a.keys {
		set := make(map[string]bool)
		for _, acq := range a.funcs[k].acquires {
			set[acq.key] = true
		}
		a.acquired[k] = set
	}
	for round := 0; round < fixpointRounds; round++ {
		changed := false
		for _, k := range a.keys {
			set := a.acquired[k]
			for _, c := range a.funcs[k].calls {
				for lock := range a.acquired[c.callee] {
					if !set[lock] {
						set[lock] = true
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// alwaysHeld: nil means top (no call site seen yet). Functions without
	// module callers are entry points and resolve to the empty set.
	callers := make(map[string][]callSite)
	for _, k := range a.keys {
		for _, c := range a.funcs[k].calls {
			if _, known := a.funcs[c.callee]; known {
				callers[c.callee] = append(callers[c.callee], callSite{
					callee: k, held: c.held, // callee field reused as the CALLER key
				})
			}
		}
	}
	a.alwaysHeld = make(map[string]map[string]bool, len(a.funcs))
	for _, k := range a.keys {
		if len(callers[k]) == 0 {
			a.alwaysHeld[k] = map[string]bool{}
		}
	}
	for round := 0; round < fixpointRounds; round++ {
		changed := false
		for _, k := range a.keys {
			sites := callers[k]
			if len(sites) == 0 {
				continue
			}
			var meet map[string]bool // nil = top
			for _, site := range sites {
				callerHeld := a.alwaysHeld[site.callee]
				if callerHeld == nil {
					continue // caller still top: contributes everything
				}
				contrib := make(map[string]bool, len(site.held)+len(callerHeld))
				for _, l := range site.held {
					contrib[l] = true
				}
				for l := range callerHeld {
					contrib[l] = true
				}
				if meet == nil {
					meet = contrib
					continue
				}
				for l := range meet {
					if !contrib[l] {
						delete(meet, l)
					}
				}
			}
			if meet == nil {
				continue // every caller still top
			}
			old := a.alwaysHeld[k]
			if old == nil || len(old) != len(meet) {
				a.alwaysHeld[k] = meet
				changed = true
				continue
			}
			for l := range meet {
				if !old[l] {
					a.alwaysHeld[k] = meet
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	// Anything still top sits on an unreachable cycle: no guard knowledge.
	for _, k := range a.keys {
		if a.alwaysHeld[k] == nil {
			a.alwaysHeld[k] = map[string]bool{}
		}
	}
	a.linkMemo = make(map[string]int8, len(a.funcs))
}

// effectiveGuards returns an access's guards plus everything its function
// always holds on entry, sorted.
func (a *Analysis) effectiveGuards(fnKey string, acc fieldAccess) []string {
	set := make(map[string]bool, len(acc.guards)+2)
	for _, g := range acc.guards {
		set[g] = true
	}
	for g := range a.alwaysHeld[fnKey] {
		set[g] = true
	}
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// effectivePairs returns every lock-ordering edge in the module: pairs
// observed directly inside one function plus, for each call made under
// held locks, pairs against everything the callee transitively acquires.
func (a *Analysis) effectivePairs() []lockPair {
	pairs := make([]lockPair, 0, len(a.keys))
	for _, k := range a.keys {
		info := a.funcs[k]
		pairs = append(pairs, info.pairs...)
		for _, c := range info.calls {
			acq := a.acquired[c.callee]
			if len(acq) == 0 || len(c.held) == 0 {
				continue
			}
			inner := make([]string, 0, len(acq))
			for l := range acq {
				inner = append(inner, l)
			}
			sort.Strings(inner)
			for _, outer := range c.held {
				for _, in := range inner {
					if in != outer {
						pairs = append(pairs, lockPair{outer: outer, inner: in, pkg: c.pkg, pos: c.pos})
					}
				}
			}
		}
	}
	return pairs
}

// linked reports whether the function with this key reaches completion
// machinery within linkDepth calls. Unknown callees (stdlib, method
// values) count as linked — the analyzer only flags what it can see.
func (a *Analysis) linked(key string) bool {
	return a.linkedAt(key, linkDepth)
}

func (a *Analysis) linkedAt(key string, depth int) bool {
	if key == "" {
		return true // unresolvable spawn target: assume accountable
	}
	info, ok := a.funcs[key]
	if !ok {
		return true // outside the module: not ours to judge
	}
	if v, memo := a.linkMemo[key]; memo {
		return v > 0
	}
	if info.exitLinked {
		a.linkMemo[key] = 1
		return true
	}
	if depth == 0 {
		return false // don't memoise a depth cutoff
	}
	a.linkMemo[key] = -1 // cycle guard: visiting counts as unlinked
	res := false
	for _, c := range info.calls {
		if _, inModule := a.funcs[c.callee]; !inModule {
			continue // unknown callees don't make a goroutine accountable
		}
		if a.linkedAt(c.callee, depth-1) {
			res = true
			break
		}
	}
	if !res {
		for _, s := range info.spawns {
			if _, inModule := a.funcs[s.callee]; s.callee != "" && !inModule {
				continue
			}
			if s.callee != "" && a.linkedAt(s.callee, depth-1) {
				res = true
				break
			}
		}
	}
	if res {
		a.linkMemo[key] = 1
	} else {
		delete(a.linkMemo, key) // cutoff-tainted negative: recompute next time
	}
	return res
}
