package goroleak

// spin burns a core with no exit machinery anywhere in reach.
func spin() {
	for {
		step()
	}
}

func step() {}

// Start leaks a named goroutine: no join, no context, no channel.
func Start() {
	go spin()
}

// StartInline leaks an anonymous goroutine the same way.
func StartInline() {
	go func() {
		for {
			step()
		}
	}()
}
