package goroleak

// daemon deliberately runs for the whole process lifetime.
func daemon() {
	for {
		tick()
	}
}

func tick() {}

// StartDaemon acknowledges the process-lifetime goroutine.
func StartDaemon() {
	//lint:ignore goroleak fixture: process-lifetime daemon by design
	go daemon()
}
