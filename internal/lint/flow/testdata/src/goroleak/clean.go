package goroleak

// pump owns the channel's send side and closes it when done.
func pump(ch chan int) {
	for i := 0; i < 8; i++ {
		ch <- i
	}
	close(ch)
}

// Run joins through the channel handed to the goroutine.
func Run() int {
	ch := make(chan int)
	go pump(ch)
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// RunNested joins through a done channel closed inside the closure; the
// linkage is found in the spawned body, not at the statement.
func RunNested() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		helper()
	}()
	<-done
}

func helper() {}
