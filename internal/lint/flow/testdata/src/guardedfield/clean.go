package guardedfield

import "sync"

// Gauge is fully disciplined: every post-construction access holds mu.
type Gauge struct {
	mu sync.Mutex
	v  int
}

// NewGauge touches v unguarded, but constructor results are unpublished and
// exempt.
func NewGauge() *Gauge {
	g := &Gauge{}
	g.v = -1
	return g
}

func (g *Gauge) Set(x int) {
	g.mu.Lock()
	g.v = x
	g.mu.Unlock()
}

func (g *Gauge) Get() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}
