package guardedfield

import "sync"

// Meter tolerates one racy monitoring read and says so.
type Meter struct {
	mu    sync.Mutex
	total int
}

func (m *Meter) Observe(d int) {
	m.mu.Lock()
	m.total += d
	m.mu.Unlock()
}

func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total = 0
}

func (m *Meter) Snapshot() int {
	//lint:ignore guardedfield fixture: racy read tolerated for monitoring
	return m.total
}
