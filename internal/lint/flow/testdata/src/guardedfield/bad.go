package guardedfield

import "sync"

// Counter guards n with mu everywhere except Peek.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Set(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = v
}

// Add holds mu and delegates; bump inherits the guard interprocedurally and
// must not be flagged.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump(d)
}

func (c *Counter) bump(d int) {
	c.n += d
}

// Peek reads n with no lock: the one access outside the discipline.
func (c *Counter) Peek() int {
	return c.n
}
