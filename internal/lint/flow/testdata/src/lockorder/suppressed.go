package lockorder

import "sync"

// Cache reverses its lock order deliberately; both directions carry waivers.
type Cache struct {
	amu  sync.Mutex
	bmu  sync.Mutex
	hits int
}

func (c *Cache) Fill() {
	c.amu.Lock()
	defer c.amu.Unlock()
	//lint:ignore lockorder fixture: reversed pair acknowledged
	c.bmu.Lock()
	c.hits++
	c.bmu.Unlock()
}

func (c *Cache) Drain() {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	//lint:ignore lockorder fixture: reversed pair acknowledged
	c.amu.Lock()
	c.hits--
	c.amu.Unlock()
}
