package lockorder

import "sync"

// Store guards data with mu and a secondary index with idx.
type Store struct {
	mu   sync.Mutex
	idx  sync.Mutex
	data map[string]int
}

// Put acquires mu then idx.
func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.Lock()
	s.data[k] = v
	s.idx.Unlock()
}

// Len acquires idx and then, through a helper, mu — the reverse order, a
// deadlock the single-function rules cannot see.
func (s *Store) Len() int {
	s.idx.Lock()
	defer s.idx.Unlock()
	return s.count()
}

func (s *Store) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}
