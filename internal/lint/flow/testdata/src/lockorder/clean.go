package lockorder

import "sync"

// Journal always acquires wmu before fmu, including through helpers.
type Journal struct {
	wmu     sync.Mutex
	fmu     sync.Mutex
	lines   []string
	flushed int
}

// Append acquires wmu then fmu directly.
func (j *Journal) Append(line string) {
	j.wmu.Lock()
	defer j.wmu.Unlock()
	j.lines = append(j.lines, line)
	j.fmu.Lock()
	j.flushed = 0
	j.fmu.Unlock()
}

// Rotate acquires wmu then reaches fmu through a helper — same order.
func (j *Journal) Rotate() {
	j.wmu.Lock()
	defer j.wmu.Unlock()
	j.flush()
}

func (j *Journal) flush() {
	j.fmu.Lock()
	defer j.fmu.Unlock()
	j.flushed = len(j.lines)
	j.lines = j.lines[:0]
}
