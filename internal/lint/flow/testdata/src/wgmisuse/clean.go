package wgmisuse

import "sync"

// Fan is the canonical shape: Add before go, Done in the worker, one Wait.
// The worker closure captures wg, so the ops balance across function
// boundaries.
func Fan(jobs []func()) {
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		job := job
		go func() {
			defer wg.Done()
			job()
		}()
	}
	wg.Wait()
}
