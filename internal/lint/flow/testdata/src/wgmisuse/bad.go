package wgmisuse

import "sync"

// Gather calls Add inside the spawned goroutine: Wait can return before any
// Add lands.
func Gather(jobs []func()) {
	var wg sync.WaitGroup
	for _, job := range jobs {
		job := job
		go func() {
			wg.Add(1)
			defer wg.Done()
			job()
		}()
	}
	wg.Wait()
}

// Await blocks forever: the counter is raised and waited on, but no path
// ever calls Done.
func Await(n int) {
	var pending sync.WaitGroup
	pending.Add(n)
	for i := 0; i < n; i++ {
		go work(i, &pending)
	}
	pending.Wait()
}

func work(int, *sync.WaitGroup) {}
