package wgmisuse

import "sync"

// Pool's Add side lives in generated glue outside this module; the Done-only
// shape is acknowledged.
type Pool struct {
	wg sync.WaitGroup
}

func (p *Pool) Detach() {
	//lint:ignore wgmisuse fixture: Add happens in generated glue outside this module
	p.wg.Done()
}
