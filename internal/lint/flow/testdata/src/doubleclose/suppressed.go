package doubleclose

// Relay keeps a second close on purpose and says why.
type Relay struct {
	done chan struct{}
}

func (r *Relay) Stop() {
	close(r.done)
}

func (r *Relay) Kill() {
	//lint:ignore doubleclose fixture: second close path acknowledged
	close(r.done)
}
