package doubleclose

// Feed's output channel has two closing owners: whichever of Shut and Abort
// runs second panics.
type Feed struct {
	out chan int
}

func (f *Feed) Shut() {
	close(f.out)
}

func (f *Feed) Abort() {
	close(f.out)
}

// Fan closes the done channel inside the loop: the second iteration panics.
func Fan(chans []chan int, done chan struct{}) {
	for range chans {
		close(done)
	}
}
