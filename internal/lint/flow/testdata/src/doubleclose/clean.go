package doubleclose

// Pipe has exactly one closing owner.
type Pipe struct {
	ch chan int
}

func (p *Pipe) Close() {
	close(p.ch)
}

// Drain closes once, after the loop.
func Drain(n int) []int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	out := make([]int, 0, n)
	for v := range ch {
		out = append(out, v)
	}
	return out
}
