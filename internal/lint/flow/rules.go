package flow

// The five flow rules. Each implements lint.ModuleRule on top of the
// propagated Analysis; they are registered into the lint catalog from init,
// so importing this package is what enables them.

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"tenways/internal/lint"
)

func init() {
	lint.Register(
		lockorderRule{}, guardedfieldRule{}, goroleakRule{},
		doublecloseRule{}, wgmisuseRule{},
	)
}

// site pairs a finding location with its package for deterministic sorting.
type site struct {
	pkg *lint.Package
	pos token.Pos
}

func (s site) position() token.Position { return s.pkg.Fset.Position(s.pos) }

// before orders two sites by (file, line, column).
func (s site) before(o site) bool {
	a, b := s.position(), o.position()
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// at renders a site as "file.go:line" for cross-references inside messages;
// only the base name appears so reports stay byte-identical across checkouts.
func (s site) at() string {
	p := s.position()
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// display renders a canonical key for messages: local keys reduce to the
// variable name, package paths to their last element.
func display(key string) string {
	if strings.HasPrefix(key, "local:") {
		if i := strings.LastIndexByte(key, ':'); i >= 0 {
			return key[i+1:]
		}
	}
	return Short(key)
}

// groupable reports whether a key identifies the same object across
// functions: field, package-var, and declaration-site local keys do;
// textual fallback keys (they embed a "$"-suffixed function key) do not.
func groupable(key string) bool {
	return key != "" && !strings.Contains(key, "$")
}

// ---- lockorder ----

type lockorderRule struct{}

func (lockorderRule) Name() string  { return "lockorder" }
func (lockorderRule) Waste() string { return "W5" }
func (lockorderRule) Doc() string {
	return "every pair of locks must be acquired in one global order across the module"
}
func (lockorderRule) Check(p *lint.Package, r *lint.Reporter) {}

func (lockorderRule) CheckModule(pkgs []*lint.Package, r *lint.ModuleReporter) {
	a := AnalyzeModule(pkgs)
	// First site of each ordered (outer, inner) edge, keyed "outer\x00inner".
	first := make(map[string]site)
	for _, p := range a.effectivePairs() {
		if !groupable(p.outer) || !groupable(p.inner) {
			continue
		}
		k := p.outer + "\x00" + p.inner
		s := site{pkg: p.pkg, pos: p.pos}
		if prev, seen := first[k]; !seen || s.before(prev) {
			first[k] = s
		}
	}
	keys := make([]string, 0, len(first))
	for k := range first {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts := strings.SplitN(k, "\x00", 2)
		outer, inner := parts[0], parts[1]
		rev := inner + "\x00" + outer
		revSite, conflict := first[rev]
		if !conflict || k > rev {
			continue // report each conflicting pair once, from the lesser key
		}
		s := first[k]
		r.Report(s.pkg, s.pos,
			"lock %s is acquired while holding %s, but %s acquires them in the reverse order; pick one global lock order",
			display(inner), display(outer), revSite.at())
		r.Report(revSite.pkg, revSite.pos,
			"lock %s is acquired while holding %s, but %s acquires them in the reverse order; pick one global lock order",
			display(outer), display(inner), s.at())
	}
}

// ---- guardedfield ----

type guardedfieldRule struct{}

func (guardedfieldRule) Name() string  { return "guardedfield" }
func (guardedfieldRule) Waste() string { return "W5" }
func (guardedfieldRule) Doc() string {
	return "a field mostly accessed under one mutex must not also be touched without it"
}
func (guardedfieldRule) Check(p *lint.Package, r *lint.Reporter) {}

// guardedMin sets the dominance bar: a guard counts as the field's
// discipline only with at least guardedMin guarded accesses covering at
// least half of all accesses, one of them a write.
const guardedMin = 2

func (guardedfieldRule) CheckModule(pkgs []*lint.Package, r *lint.ModuleReporter) {
	a := AnalyzeModule(pkgs)
	type rec struct {
		acc   fieldAccess
		guard string // dominant sibling guard held at this access ("" = none)
	}
	byField := make(map[string][]rec)
	for _, fnKey := range a.keys {
		info := a.funcs[fnKey]
		for _, acc := range info.accesses {
			owner := acc.field[:strings.LastIndexByte(acc.field, '.')]
			if info.returns[owner] {
				continue // constructor: fields are unpublished until returned
			}
			sibling := ""
			for _, g := range a.effectiveGuards(fnKey, acc) {
				if strings.HasPrefix(g, owner+".") {
					sibling = g
					break
				}
			}
			byField[acc.field] = append(byField[acc.field], rec{acc: acc, guard: sibling})
		}
	}
	fields := make([]string, 0, len(byField))
	for f := range byField {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		recs := byField[f]
		perGuard := make(map[string]int)
		guarded, guardedWrites := 0, 0
		for _, rc := range recs {
			if rc.guard != "" {
				perGuard[rc.guard]++
				guarded++
				if rc.acc.write {
					guardedWrites++
				}
			}
		}
		if guarded < guardedMin || guarded*2 < len(recs) || guardedWrites == 0 || guarded == len(recs) {
			continue
		}
		dominant, best := "", 0
		for g, n := range perGuard {
			if n > best || (n == best && g < dominant) {
				dominant, best = g, n
			}
		}
		bare := make([]rec, 0, len(recs)-guarded)
		for _, rc := range recs {
			if rc.guard == "" {
				bare = append(bare, rc)
			}
		}
		sort.Slice(bare, func(i, j int) bool {
			return site{bare[i].acc.pkg, bare[i].acc.pos}.before(site{bare[j].acc.pkg, bare[j].acc.pos})
		})
		for _, rc := range bare {
			r.Report(rc.acc.pkg, rc.acc.pos,
				"field %s is guarded by %s at %d of %d accesses but not here; hold the lock or waive with the safe-publication argument",
				display(f), display(dominant), guarded, len(recs))
		}
	}
}

// ---- goroleak ----

type goroleakRule struct{}

func (goroleakRule) Name() string  { return "goroleak" }
func (goroleakRule) Waste() string { return "W3" }
func (goroleakRule) Doc() string {
	return "a spawned goroutine needs a join, context, or channel exit path within reach"
}
func (goroleakRule) Check(p *lint.Package, r *lint.Reporter) {}

func (goroleakRule) CheckModule(pkgs []*lint.Package, r *lint.ModuleReporter) {
	a := AnalyzeModule(pkgs)
	for _, fnKey := range a.keys {
		info := a.funcs[fnKey]
		for _, sp := range info.spawns {
			if sp.linked || a.linked(sp.callee) {
				continue
			}
			what := "this goroutine"
			if !strings.Contains(sp.callee, "$") {
				what = display(sp.callee)
			}
			r.Report(sp.pkg, sp.pos,
				"%s has no join, context, or channel exit path here or in anything it calls; hand it a WaitGroup, ctx, or channel so it can stop",
				what)
		}
	}
}

// ---- doubleclose ----

type doublecloseRule struct{}

func (doublecloseRule) Name() string  { return "doubleclose" }
func (doublecloseRule) Waste() string { return "W3" }
func (doublecloseRule) Doc() string {
	return "a channel must be closed exactly once, by one owner, never in a loop"
}
func (doublecloseRule) Check(p *lint.Package, r *lint.Reporter) {}

func (doublecloseRule) CheckModule(pkgs []*lint.Package, r *lint.ModuleReporter) {
	a := AnalyzeModule(pkgs)
	byChan := make(map[string][]closeSite)
	for _, fnKey := range a.keys {
		for _, cs := range a.funcs[fnKey].closes {
			if cs.inLoop {
				r.Report(cs.pkg, cs.pos,
					"close(%s) inside a loop panics on the second iteration; close once after the loop",
					display(cs.ch))
			}
			if cs.resolved && groupable(cs.ch) {
				byChan[cs.ch] = append(byChan[cs.ch], cs)
			}
		}
	}
	chans := make([]string, 0, len(byChan))
	for c := range byChan {
		chans = append(chans, c)
	}
	sort.Strings(chans)
	for _, c := range chans {
		sites := byChan[c]
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool {
			return site{sites[i].pkg, sites[i].pos}.before(site{sites[j].pkg, sites[j].pos})
		})
		owner := site{sites[0].pkg, sites[0].pos}
		for _, cs := range sites[1:] {
			r.Report(cs.pkg, cs.pos,
				"channel %s is already closed at %s; a second close panics — give the channel one closing owner",
				display(c), owner.at())
		}
	}
}

// ---- wgmisuse ----

type wgmisuseRule struct{}

func (wgmisuseRule) Name() string  { return "wgmisuse" }
func (wgmisuseRule) Waste() string { return "W3" }
func (wgmisuseRule) Doc() string {
	return "WaitGroup Add/Done/Wait must balance, with Add on the spawning side"
}
func (wgmisuseRule) Check(p *lint.Package, r *lint.Reporter) {}

func (wgmisuseRule) CheckModule(pkgs []*lint.Package, r *lint.ModuleReporter) {
	a := AnalyzeModule(pkgs)
	type tally struct{ adds, dones, waits []wgOp }
	byWG := make(map[string]*tally)
	for _, fnKey := range a.keys {
		info := a.funcs[fnKey]
		for _, op := range info.wgOps["Add"] {
			if op.spawned {
				r.Report(op.pkg, op.pos,
					"%s.Add inside the spawned goroutine races with Wait; call Add before the go statement",
					display(op.wg))
			}
		}
		for _, name := range []string{"Add", "Done", "Wait"} {
			for _, op := range info.wgOps[name] {
				if !op.resolved || !groupable(op.wg) {
					continue
				}
				t := byWG[op.wg]
				if t == nil {
					t = &tally{}
					byWG[op.wg] = t
				}
				switch name {
				case "Add":
					t.adds = append(t.adds, op)
				case "Done":
					t.dones = append(t.dones, op)
				case "Wait":
					t.waits = append(t.waits, op)
				}
			}
		}
	}
	wgs := make([]string, 0, len(byWG))
	for w := range byWG {
		wgs = append(wgs, w)
	}
	sort.Strings(wgs)
	firstOf := func(ops []wgOp) site {
		best := site{ops[0].pkg, ops[0].pos}
		for _, op := range ops[1:] {
			if s := (site{op.pkg, op.pos}); s.before(best) {
				best = s
			}
		}
		return best
	}
	for _, w := range wgs {
		t := byWG[w]
		if len(t.dones) > 0 && len(t.adds) == 0 {
			s := firstOf(t.dones)
			r.Report(s.pkg, s.pos,
				"%s.Done is called but nothing ever calls Add; the counter goes negative and panics",
				display(w))
		}
		if len(t.adds) > 0 && len(t.waits) > 0 && len(t.dones) == 0 {
			s := firstOf(t.waits)
			r.Report(s.pkg, s.pos,
				"%s.Wait blocks forever: Add is called but no path ever calls Done",
				display(w))
		}
	}
}
