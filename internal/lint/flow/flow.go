// Package flow is the analyzer's interprocedural layer: a call graph over
// the whole module plus one concurrency summary per function — which
// mutexes it acquires and in what order, which struct fields it touches
// under which guard, which goroutines it spawns and whether they have an
// exit path, which channels it closes, and how it moves WaitGroup counts.
//
// The intraprocedural rules in internal/lint see one function at a time, so
// a mutex acquired in Serve and a guarded field touched unlocked in a
// helper three calls away are invisible to them. The summaries here
// propagate: a function's transitive acquire set feeds lock-order pairs at
// every call site, locks held at every caller intersect into guards its
// accesses inherit, and a spawned goroutine counts as joined when anything
// it transitively calls has a channel, context, or WaitGroup exit path.
//
// The analysis is syntactic dataflow, not a CFG: branches merge
// optimistically (a lock taken in an if-arm is held for the statements the
// walker visits inside that arm, not after), deferred unlocks pin the lock
// for the rest of the function, and a function that unlocks a mutex before
// ever locking it is inferred to hold that mutex on entry (the *Locked
// helper convention). Everything is deterministic: maps are only iterated
// through sorted key slices, so two runs over one tree report byte-identical
// findings. Five rules sit on top — lockorder, guardedfield, goroleak,
// doubleclose, wgmisuse — registered into the internal/lint catalog from
// this package's init; importing it (cmd/wastevet, internal/core do) is
// what turns the flow layer on.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tenways/internal/lint"
)

// lockSite is one acquisition of a lock.
type lockSite struct {
	key string
	pkg *lint.Package
	pos token.Pos
}

// lockPair records "inner acquired while outer held" at pos.
type lockPair struct {
	outer, inner string
	pkg          *lint.Package
	pos          token.Pos
}

// callSite is one resolved call to a module function, with the locks held
// at the moment of the call (in acquisition order).
type callSite struct {
	callee string
	held   []string
	pkg    *lint.Package
	pos    token.Pos
}

// fieldAccess is one read or write of a type-resolved struct field.
type fieldAccess struct {
	field  string // "pkgpath.Type.field"
	guards []string
	write  bool
	pkg    *lint.Package
	pos    token.Pos
}

// spawnSite is one go statement.
type spawnSite struct {
	callee string // spawned function's key ("" when unresolved)
	linked bool   // syntactic linkage at the statement itself
	pkg    *lint.Package
	pos    token.Pos
}

// closeSite is one close(ch) on a canonical channel.
type closeSite struct {
	ch       string
	resolved bool // key is type-resolved, comparable across functions
	inLoop   bool
	pkg      *lint.Package
	pos      token.Pos
}

// wgOp is one WaitGroup Add/Done/Wait.
type wgOp struct {
	wg       string
	resolved bool
	spawned  bool // op sits inside a go-spawned closure
	pkg      *lint.Package
	pos      token.Pos
}

// funcInfo is one function's (or spawned/stored closure's) summary.
type funcInfo struct {
	key  string
	pkg  *lint.Package
	pos  token.Pos
	anon bool // closure summary, key suffixed $go/$fn

	acquires []lockSite
	pairs    []lockPair
	calls    []callSite
	accesses []fieldAccess
	spawns   []spawnSite
	closes   []closeSite
	wgOps    map[string][]wgOp // "Add"/"Done"/"Wait"
	// exitLinked marks a body containing any completion machinery of its
	// own: channel ops, select, close, context use, or WaitGroup ops.
	exitLinked bool
	// returns lists named types ("pkgpath.Type") the function returns —
	// constructor results whose fields are unpublished and need no guard.
	returns map[string]bool
}

// Analysis is the module-wide result: summaries plus propagated facts.
type Analysis struct {
	funcs map[string]*funcInfo
	keys  []string // sorted for deterministic iteration

	acquired   map[string]map[string]bool // transitive acquire sets
	alwaysHeld map[string]map[string]bool // locks held at every call site
	linkMemo   map[string]int8            // goroleak transitive linkage
}

// analysisCache memoises the last Analyze: every flow rule's CheckModule
// receives the same package slice within one lint run, and the summary
// pass need not repeat per rule.
var (
	cacheMu   sync.Mutex
	cachePkgs []*lint.Package
	cacheRes  *Analysis
)

// AnalyzeModule builds (or reuses) the interprocedural analysis for pkgs.
func AnalyzeModule(pkgs []*lint.Package) *Analysis {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if cacheRes != nil && len(cachePkgs) == len(pkgs) && (len(pkgs) == 0 || cachePkgs[0] == pkgs[0]) {
		same := true
		for i := range pkgs {
			if cachePkgs[i] != pkgs[i] {
				same = false
				break
			}
		}
		if same {
			return cacheRes
		}
	}
	a := &Analysis{funcs: make(map[string]*funcInfo)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				a.summarize(p, fd)
			}
		}
	}
	a.keys = make([]string, 0, len(a.funcs))
	for k := range a.funcs {
		a.keys = append(a.keys, k)
	}
	sort.Strings(a.keys)
	a.propagate()
	cachePkgs, cacheRes = pkgs, a
	return a
}

// declKey names a top-level function: "pkgpath.Func" or "pkgpath.Type.Method".
func declKey(p *lint.Package, fd *ast.FuncDecl) string {
	if p.Info != nil {
		if obj, ok := p.Info.Defs[fd.Name]; ok {
			if fn, ok := obj.(*types.Func); ok {
				return typeFuncKey(fn)
			}
		}
	}
	key := p.ImportPath + "." + fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if t := recvTypeName(fd.Recv.List[0].Type); t != "" {
			key = p.ImportPath + "." + t + "." + fd.Name.Name
		}
	}
	return key
}

// typeFuncKey names a *types.Func the same way declKey does.
func typeFuncKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// recvTypeName extracts the receiver type identifier syntactically.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// namedOf unwraps pointers to a named type.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeKey renders a named type as "pkgpath.Name" ("" when unnamed).
func typeKey(t types.Type) string {
	named := namedOf(t)
	if named == nil || named.Obj() == nil {
		return ""
	}
	pkg := ""
	if named.Obj().Pkg() != nil {
		pkg = named.Obj().Pkg().Path()
	}
	return pkg + "." + named.Obj().Name()
}

// syncNamed reports whether t is (a pointer to) sync.<name>.
func syncNamed(t types.Type, names ...string) bool {
	named := namedOf(t)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	for _, n := range names {
		if named.Obj().Name() == n {
			return true
		}
	}
	return false
}

// Short renders a canonical key for messages: the full import path shrinks
// to its last element, so "tenways/internal/pdes.Engine.mu" reads
// "pdes.Engine.mu".
func Short(key string) string {
	slash := strings.LastIndexByte(key, '/')
	if slash >= 0 {
		return key[slash+1:]
	}
	return key
}

// summarize walks one declared function into a funcInfo (plus one anonymous
// funcInfo per closure it contains).
func (a *Analysis) summarize(p *lint.Package, fd *ast.FuncDecl) {
	key := declKey(p, fd)
	if _, dup := a.funcs[key]; dup {
		// Same key from a degraded type-check (e.g. two init funcs): number
		// the duplicates so neither summary is lost.
		for i := 2; ; i++ {
			k2 := key + "#" + strconv.Itoa(i)
			if _, dup := a.funcs[k2]; !dup {
				key = k2
				break
			}
		}
	}
	info := a.newFuncInfo(key, p, fd.Pos(), false)
	if fd.Type.Results != nil && p.Info != nil {
		for _, res := range fd.Type.Results.List {
			if t := p.Info.TypeOf(res.Type); t != nil {
				if k := typeKey(t); k != "" {
					info.returns[k] = true
				}
			}
		}
	}
	w := &walker{a: a, p: p, info: info, writes: collectWrites(fd.Body)}
	w.held = w.entryHeld(fd.Body)
	w.stmt(fd.Body)
}

func (a *Analysis) newFuncInfo(key string, p *lint.Package, pos token.Pos, anon bool) *funcInfo {
	info := &funcInfo{
		key: key, pkg: p, pos: pos, anon: anon,
		wgOps:   make(map[string][]wgOp),
		returns: make(map[string]bool),
	}
	a.funcs[key] = info
	return info
}

// collectWrites marks the selector expressions written by assignments,
// inc/dec, and address-taking anywhere in the body.
func collectWrites(body ast.Node) map[ast.Expr]bool {
	writes := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				writes[lhs] = true
			}
		case *ast.IncDecStmt:
			writes[s.X] = true
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				writes[s.X] = true
			}
		}
		return true
	})
	return writes
}
