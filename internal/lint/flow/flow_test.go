package flow

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tenways/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// flowRules are the five rules this package registers; the fixture loop
// iterates this list rather than lint.Rules() so the intraprocedural rules'
// fixtures stay where they live.
var flowRules = []string{"lockorder", "guardedfield", "goroleak", "doubleclose", "wgmisuse"}

// fixtureLoader is shared across tests so stdlib packages type-check once.
var fixtureLoader *lint.Loader

func TestMain(m *testing.M) {
	flag.Parse()
	var err error
	fixtureLoader, err = lint.NewLoaderAt(".")
	if err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

func loadFixture(t *testing.T, rule string) []*lint.Package {
	t.Helper()
	pkgs, err := fixtureLoader.Load(filepath.Join("testdata", "src", rule))
	if err != nil {
		t.Fatalf("load fixture %s: %v", rule, err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 3 {
		t.Fatalf("fixture %s: want 1 package with bad/clean/suppressed, got %+v", rule, pkgs)
	}
	return pkgs
}

// TestRegistered pins the catalog wiring: importing this package must make
// all five flow rules visible to lint.
func TestRegistered(t *testing.T) {
	have := make(map[string]bool)
	for _, n := range lint.RuleNames() {
		have[n] = true
	}
	for _, n := range flowRules {
		if !have[n] {
			t.Errorf("rule %s not registered in the lint catalog", n)
		}
	}
}

// TestFlowRuleFixtures runs each flow rule alone over its fixture package
// and pins the findings against a golden file: bad.go must trigger, clean.go
// must not, suppressed.go findings must carry acknowledged waivers.
func TestFlowRuleFixtures(t *testing.T) {
	for _, name := range flowRules {
		t.Run(name, func(t *testing.T) {
			pkgs := loadFixture(t, name)
			cfg := lint.DefaultConfig()
			cfg.Rules = []string{name}
			res, err := lint.Analyze(cfg, fixtureLoader.Root(), pkgs)
			if err != nil {
				t.Fatal(err)
			}

			var badHits, cleanHits, supUnacked int
			for _, f := range res.Findings {
				if f.Rule != name {
					t.Errorf("finding from foreign rule %q under -rules %s: %s", f.Rule, name, f)
				}
				switch filepath.Base(f.File) {
				case "bad.go":
					badHits++
					if f.Suppressed {
						t.Errorf("bad.go finding unexpectedly suppressed: %s", f)
					}
				case "clean.go":
					cleanHits++
				case "suppressed.go":
					if !f.Suppressed {
						supUnacked++
					} else if f.Reason == "" {
						t.Errorf("suppressed finding has empty reason: %s", f)
					}
				}
			}
			if badHits == 0 {
				t.Error("bad.go triggered no findings")
			}
			if cleanHits != 0 {
				t.Errorf("clean.go triggered %d findings", cleanHits)
			}
			if supUnacked != 0 {
				t.Errorf("suppressed.go has %d unacknowledged findings", supUnacked)
			}

			var b strings.Builder
			for _, f := range res.Findings {
				b.WriteString(f.String())
				b.WriteByte('\n')
			}
			goldenPath := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got := b.String(); got != string(want) {
				t.Errorf("findings differ from golden %s:\ngot:\n%swant:\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestFlowByteStable runs all five flow rules over all fixture packages
// through two independent loaders and requires byte-identical findings —
// the same determinism bar every experiment table in the repo carries.
func TestFlowByteStable(t *testing.T) {
	render := func(t *testing.T) []byte {
		t.Helper()
		l, err := lint.NewLoaderAt(".")
		if err != nil {
			t.Fatal(err)
		}
		dirs := make([]string, 0, len(flowRules))
		for _, n := range flowRules {
			dirs = append(dirs, filepath.Join("testdata", "src", n))
		}
		pkgs, err := l.Load(dirs...)
		if err != nil {
			t.Fatal(err)
		}
		cfg := lint.DefaultConfig()
		cfg.Rules = flowRules
		res, err := lint.Analyze(cfg, l.Root(), pkgs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, f := range res.Findings {
			buf.WriteString(f.String())
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	a, b := render(t), render(t)
	if !bytes.Equal(a, b) {
		t.Errorf("two independent runs rendered different bytes:\n--- a\n%s--- b\n%s", a, b)
	}
	if len(a) == 0 {
		t.Error("flow rules over all fixtures rendered nothing")
	}
}
