package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureModule writes a small module with one fixable finding per fix-aware
// rule: a prealloc growth loop with knowable capacity, adjacent atomics, and
// a stale //lint:ignore directive.
func fixtureModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "grow.go"), `package fixmod

func Grow(xs []int) []int {
	out := []int{}
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
`)
	writeFile(t, filepath.Join(dir, "pad.go"), `package fixmod

import "sync/atomic"

type Stats struct {
	hits   atomic.Int64
	misses atomic.Int64
}
`)
	writeFile(t, filepath.Join(dir, "stale.go"), `package fixmod

//lint:ignore nosuchrule this suppresses nothing at all
func Stale() int {
	return 1
}
`)
	return dir
}

func analyzeDir(t *testing.T, dir string) *Result {
	t.Helper()
	l, err := NewLoaderAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(DefaultConfig(), l.Root(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestApplyFixesEndToEnd runs the whole -fix pipeline on a synthetic module:
// every fixable finding is applied, the re-analyzed tree has no fixable
// findings left, and a second apply changes nothing (idempotency).
func TestApplyFixesEndToEnd(t *testing.T) {
	dir := fixtureModule(t)
	res := analyzeDir(t, dir)
	fixable := res.Fixable()
	if len(fixable) != 3 {
		for _, f := range fixable {
			t.Logf("fixable: %s", f)
		}
		t.Fatalf("got %d fixable findings, want 3 (prealloc, atomicpad, stalewaiver)", len(fixable))
	}

	out, err := ApplyFixes(dir, res.Findings)
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != 3 || out.Skipped != 0 {
		t.Fatalf("applied=%d skipped=%d, want 3/0", out.Applied, out.Skipped)
	}
	if err := WriteFixes(dir, out); err != nil {
		t.Fatal(err)
	}

	grown, err := os.ReadFile(filepath.Join(dir, "grow.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(grown), "out := make([]int, 0, len(xs))") {
		t.Errorf("prealloc fix not applied:\n%s", grown)
	}
	padded, err := os.ReadFile(filepath.Join(dir, "pad.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(padded), "_ [56]byte\n\tmisses") {
		t.Errorf("atomicpad fix not applied:\n%s", padded)
	}
	staled, err := os.ReadFile(filepath.Join(dir, "stale.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(staled), "lint:ignore") {
		t.Errorf("stale directive not deleted:\n%s", staled)
	}

	res2 := analyzeDir(t, dir)
	if left := res2.Fixable(); len(left) != 0 {
		for _, f := range left {
			t.Errorf("fixable finding survived -fix: %s", f)
		}
	}
	out2, err := ApplyFixes(dir, res2.Findings)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Applied != 0 || len(out2.Changed) != 0 {
		t.Errorf("second apply changed files: applied=%d changed=%d", out2.Applied, len(out2.Changed))
	}
}

// TestApplyFixesDeterministic pins byte-identical output across two
// independent analyze+apply runs over the same tree.
func TestApplyFixesDeterministic(t *testing.T) {
	dir := fixtureModule(t)
	run := func() map[string][]byte {
		res := analyzeDir(t, dir)
		out, err := ApplyFixes(dir, res.Findings)
		if err != nil {
			t.Fatal(err)
		}
		return out.Changed
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("changed-file sets differ: %d vs %d", len(a), len(b))
	}
	for f, data := range a {
		if string(b[f]) != string(data) {
			t.Errorf("%s differs between runs", f)
		}
	}
}

// TestApplyFixesSkipsDriftAndOverlap exercises the applier's safety rails
// directly with synthetic edits.
func TestApplyFixesSkipsDriftAndOverlap(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "f.txt"), "abcdef\n")
	mk := func(start, end int, old, new string) Finding {
		return Finding{Rule: "test", Fix: &SuggestedFix{Edits: []TextEdit{
			{File: "f.txt", Start: start, End: end, Old: old, New: new},
		}}}
	}
	out, err := ApplyFixes(dir, []Finding{
		mk(0, 2, "ab", "AB"), // applies
		mk(1, 3, "bc", "XX"), // overlaps the first: skipped
		mk(3, 4, "Q", "Z"),   // drifted (file holds "d"): skipped
		mk(4, 5, "e", "E"),   // applies
		mk(4, 5, "e", "E"),   // identical duplicate: collapsed
		mk(9, 10, "x", "y"),  // out of range: skipped
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != 2 || out.Skipped != 3 {
		t.Fatalf("applied=%d skipped=%d, want 2/3", out.Applied, out.Skipped)
	}
	if got := string(out.Changed["f.txt"]); got != "ABcdEf\n" {
		t.Errorf("result %q, want %q", got, "ABcdEf\n")
	}
	// Suppressed findings must never be applied.
	sup := mk(0, 2, "ab", "AB")
	sup.Suppressed = true
	out2, err := ApplyFixes(dir, []Finding{sup})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Applied != 0 {
		t.Error("suppressed finding's fix was applied")
	}
}

// TestDiffFixes pins the dry-run diff shape: file header with the first
// changed line, old lines prefixed "-", new lines "+".
func TestDiffFixes(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "f.txt"), "one\ntwo\nthree\n")
	out, err := ApplyFixes(dir, []Finding{{Rule: "test", Fix: &SuggestedFix{Edits: []TextEdit{
		{File: "f.txt", Start: 4, End: 7, Old: "two", New: "TWO"},
	}}}})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := DiffFixes(dir, out)
	if err != nil {
		t.Fatal(err)
	}
	want := "--- f.txt:2\n-two\n+TWO\n"
	if diff != want {
		t.Errorf("diff = %q, want %q", diff, want)
	}
}
