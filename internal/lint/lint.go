// Package lint is the lab's waste-mode static analyzer: a dependency-free
// framework on stdlib go/parser, go/ast, and go/types that enforces the two
// invariant families the rest of the repo only tests after the fact.
//
// The determinism rules guard the modelled plane — the packages whose output
// must be byte-identical run to run (EXPERIMENTS.md): no wall-clock reads,
// no unseeded or time-seeded PRNGs, no map iteration feeding rendered
// output, no fire-and-forget goroutines. The waste rules mirror the
// keynote's ten ways at the source level: locks copied by value (W5),
// growth-by-append data re-movement (W1), per-element formatting (W8),
// adjacent atomics sharing a cache line (W9), one-element channel sends
// (W7), deferred work piling up inside loops (W10).
//
// On top of the intraprocedural rules sits internal/lint/flow: a call graph
// over the module plus per-function concurrency summaries, registered into
// this catalog via Register. Flow rules see a mutex acquired in one function
// guard a field touched in another, so the analyzer covers the
// shared-memory failure classes (lock ordering, guarded fields, goroutine
// leaks, close/WaitGroup imbalance) the intraprocedural rules cannot.
//
// A finding can be acknowledged in place with
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line above it; the reason is mandatory and
// the suppression is itself recorded, so wastevet -suppressed and the T11
// experiment can audit what was waved through. A directive that no longer
// suppresses anything is itself a finding (stalewaiver) with an automatic
// fix that deletes it. Findings are sorted and positions are
// module-relative, so reports are byte-stable across runs and checkouts;
// rendering goes through internal/report like every other table in the
// suite, and findings that know their remedy carry a SuggestedFix that
// wastevet -fix applies deterministically.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// TextEdit is one byte-range replacement inside a module file. Old pins the
// bytes the edit expects to replace: an applier must skip the edit when the
// file has drifted, which is what makes repeated -fix runs idempotent.
type TextEdit struct {
	// File is the module-root-relative path, forward slashes.
	File string `json:"file"`
	// Start and End are byte offsets into the file ([Start, End) replaced).
	Start int `json:"start"`
	End   int `json:"end"`
	// Old is the exact text currently occupying [Start, End).
	Old string `json:"old"`
	// New is the replacement text.
	New string `json:"new"`
}

// SuggestedFix is a deterministic remedy for one finding: a set of
// non-overlapping textual edits plus a one-line description.
type SuggestedFix struct {
	Msg   string     `json:"msg"`
	Edits []TextEdit `json:"edits"`
}

// Finding is one rule violation (or suppressed violation) at a position.
type Finding struct {
	// Rule is the reporting rule's name, e.g. "wallclock".
	Rule string `json:"rule"`
	// Waste is the waste mode or invariant the rule guards, e.g. "W9" or
	// "det" for the determinism family.
	Waste string `json:"waste"`
	// File is the module-root-relative path, forward slashes.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Msg says what is wrong and what the remedy is.
	Msg string `json:"msg"`
	// Suppressed marks findings acknowledged by a //lint:ignore directive;
	// Reason carries the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
	// Fix, when non-nil, is a mechanical remedy wastevet -fix can apply.
	Fix *SuggestedFix `json:"fix,omitempty"`
}

// Pos renders the finding's position as file:line:col.
func (f Finding) Pos() string { return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col) }

// String renders the finding as one grep-friendly line.
func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s [%s]", f.Pos(), f.Rule, f.Msg, f.Waste)
	if f.Suppressed {
		s += " (suppressed: " + f.Reason + ")"
	}
	if f.Fix != nil {
		s += " (fixable)"
	}
	return s
}

// Rule is one static check. Rules must be deterministic and must report
// positions only inside the package they were handed.
type Rule interface {
	// Name is the short identifier used by -rules and //lint:ignore.
	Name() string
	// Waste is the waste mode (W1..W10) or invariant family ("det") the
	// rule guards.
	Waste() string
	// Doc is a one-line description of what the rule enforces.
	Doc() string
	// Check inspects one loaded package and reports findings.
	Check(p *Package, r *Reporter)
}

// ModuleRule is a Rule whose analysis spans packages: Analyze calls
// CheckModule once with every loaded package instead of Check per package.
// The flow rules implement this — a lock order is only inconsistent across
// the whole call graph, never inside one package viewed alone.
type ModuleRule interface {
	Rule
	CheckModule(pkgs []*Package, r *ModuleReporter)
}

// Config selects rules and scopes the plane-sensitive ones.
type Config struct {
	// Rules enables a subset by name; nil or empty enables every rule.
	Rules []string
	// MeasuredPlane lists import-path fragments where wall-clock reads and
	// math/rand imports are legitimate: the packages that measure the host
	// rather than model the machine. The determinism rules skip packages
	// whose import path contains any fragment.
	MeasuredPlane []string
	// PresentationPlane lists import-path fragments where per-element
	// formatting is the point (table builders, CLIs, examples); the sprintf
	// rule skips them.
	PresentationPlane []string
}

// DefaultConfig scopes the planes the way the repo is laid out: the
// measured plane (trace, sched, obs, chaos, core, the commands, the
// examples) may read wall clocks; the presentation plane (report, core,
// waste, tune, the commands, the examples) may format per element.
func DefaultConfig() Config {
	return Config{
		MeasuredPlane: []string{
			"internal/trace", "internal/sched", "internal/obs",
			"internal/chaos", "internal/core", "internal/serve",
			"cmd/", "examples/",
		},
		PresentationPlane: []string{
			"internal/report", "internal/core", "internal/waste",
			"internal/tune", "internal/stats", "cmd/", "examples/",
		},
	}
}

// inPlane reports whether the package import path matches any fragment.
func inPlane(path string, fragments []string) bool {
	for _, f := range fragments {
		if strings.Contains(path, f) {
			return true
		}
	}
	return false
}

// enabled returns the selected subset of rules, in catalog order.
func (c Config) enabled() ([]Rule, error) {
	all := Rules()
	if len(c.Rules) == 0 {
		return all, nil
	}
	byName := make(map[string]Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	want := make(map[string]bool, len(c.Rules))
	for _, name := range c.Rules {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)",
				name, strings.Join(RuleNames(), ", "))
		}
		want[name] = true
	}
	out := make([]Rule, 0, len(want))
	for _, r := range all {
		if want[r.Name()] {
			out = append(out, r)
		}
	}
	return out, nil
}

// Reporter accumulates findings for one package under one rule run.
type Reporter struct {
	pkg      *Package
	rule     Rule
	root     string
	findings *[]Finding
}

// Report records a finding at pos. The message should name the remedy, not
// just the problem.
func (r *Reporter) Report(pos token.Pos, format string, args ...interface{}) {
	r.ReportFix(pos, nil, format, args...)
}

// ReportFix records a finding at pos carrying a suggested fix (nil is
// allowed and equivalent to Report).
func (r *Reporter) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...interface{}) {
	p := r.pkg.Fset.Position(pos)
	relFixFiles(r.root, fix)
	*r.findings = append(*r.findings, Finding{
		Rule:  r.rule.Name(),
		Waste: r.rule.Waste(),
		File:  relFile(r.root, p.Filename),
		Line:  p.Line,
		Col:   p.Column,
		Msg:   fmt.Sprintf(format, args...),
		Fix:   fix,
	})
}

// ModuleReporter accumulates findings for a module-level rule run. Unlike
// Reporter it is handed the package per report, since one CheckModule call
// spans them all.
type ModuleReporter struct {
	rule     Rule
	root     string
	findings *[]Finding
}

// Report records a finding at pos inside package p.
func (r *ModuleReporter) Report(p *Package, pos token.Pos, format string, args ...interface{}) {
	r.ReportFix(p, pos, nil, format, args...)
}

// ReportFix records a finding at pos inside package p carrying a suggested
// fix (nil allowed).
func (r *ModuleReporter) ReportFix(p *Package, pos token.Pos, fix *SuggestedFix, format string, args ...interface{}) {
	pp := p.Fset.Position(pos)
	relFixFiles(r.root, fix)
	*r.findings = append(*r.findings, Finding{
		Rule:  r.rule.Name(),
		Waste: r.rule.Waste(),
		File:  relFile(r.root, pp.Filename),
		Line:  pp.Line,
		Col:   pp.Column,
		Msg:   fmt.Sprintf(format, args...),
		Fix:   fix,
	})
}

// relFixFiles relativises a fix's edit paths the way relFile does findings'.
func relFixFiles(root string, fix *SuggestedFix) {
	if fix == nil {
		return
	}
	for i := range fix.Edits {
		fix.Edits[i].File = relFile(root, fix.Edits[i].File)
	}
}

// relFile relativises an absolute filename against the module root.
func relFile(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}

// Result is a completed lint run.
type Result struct {
	// Findings holds every finding, suppressed ones included, sorted by
	// (file, line, col, rule) — a byte-stable order.
	Findings []Finding `json:"findings"`
	Packages int       `json:"packages"`
	Files    int       `json:"files"`
}

// Unsuppressed returns the findings not acknowledged by an ignore
// directive; an empty slice means the tree is clean.
func (res *Result) Unsuppressed() []Finding {
	out := make([]Finding, 0, len(res.Findings))
	for _, f := range res.Findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Fixable returns the unsuppressed findings carrying a suggested fix —
// the work list of wastevet -fix.
func (res *Result) Fixable() []Finding {
	out := make([]Finding, 0, len(res.Findings))
	for _, f := range res.Findings {
		if !f.Suppressed && f.Fix != nil {
			out = append(out, f)
		}
	}
	return out
}

// Counts returns per-rule totals: all findings and the suppressed subset.
func (res *Result) Counts() (total, suppressed map[string]int) {
	total = make(map[string]int)
	suppressed = make(map[string]int)
	for _, f := range res.Findings {
		total[f.Rule]++
		if f.Suppressed {
			suppressed[f.Rule]++
		}
	}
	return total, suppressed
}

// Run loads the packages matching patterns (see Loader.Load) and applies
// the configured rules. It is the one-call entry point cmd/wastevet and the
// T11 experiment share.
func Run(cfg Config, patterns ...string) (*Result, error) {
	l, err := NewLoader()
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	return Analyze(cfg, l.Root(), pkgs)
}

// Analyze applies the configured rules to already-loaded packages. root
// (the module root) relativises finding paths; empty keeps them absolute.
func Analyze(cfg Config, root string, pkgs []*Package) (*Result, error) {
	rules, err := cfg.enabled()
	if err != nil {
		return nil, err
	}
	res := &Result{Packages: len(pkgs)}
	var findings []Finding

	// Directives are indexed up front for the whole load: suppression is
	// applied once after every rule (package-scoped and module-scoped) has
	// reported, and usage is tracked so stalewaiver can name the directives
	// that suppress nothing.
	sup := newSuppressions(pkgs, root, &findings)

	var moduleRules []ModuleRule
	for _, p := range pkgs {
		res.Files += len(p.Files)
		p.cfg = cfg
	}
	for _, rule := range rules {
		if mr, ok := rule.(ModuleRule); ok {
			moduleRules = append(moduleRules, mr)
			continue
		}
		for _, p := range pkgs {
			rule.Check(p, &Reporter{pkg: p, rule: rule, root: root, findings: &findings})
		}
	}
	for _, mr := range moduleRules {
		mr.CheckModule(pkgs, &ModuleReporter{rule: mr, root: root, findings: &findings})
	}
	sup.apply(findings)

	// stalewaiver post-pass: a directive that matched nothing under the
	// rules it could have matched is itself a finding with a delete fix.
	// It runs here rather than as a Rule because it needs the suppression
	// index's usage bits, which exist only after every other rule reported.
	if ruleEnabled(rules, "stalewaiver") {
		enabled := make(map[string]bool, len(rules))
		for _, r := range rules {
			enabled[r.Name()] = true
		}
		start := len(findings)
		sup.reportStale(&findings, enabled)
		// The new findings can themselves be waived (//lint:ignore
		// stalewaiver <reason>), so suppression applies to them too.
		sup.apply(findings[start:])
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	if findings == nil {
		findings = []Finding{} // a clean tree marshals as [], not null
	}
	res.Findings = findings
	return res, nil
}

// ruleEnabled reports whether the enabled set contains a rule by name.
func ruleEnabled(rules []Rule, name string) bool {
	for _, r := range rules {
		if r.Name() == name {
			return true
		}
	}
	return false
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	rule   string
	reason string
	line   int
	file   string // module-relative, matching Finding.File
	pkg    *Package
	pos    token.Pos // comment start
	end    token.Pos // comment end
	used   bool      // matched at least one finding this run
}

// suppressions indexes every package's ignore directives by file and line.
type suppressions struct {
	list  []*directive
	byKey map[string]*directive // "file:line:rule"
	rules map[string]bool       // full catalog names, for unknown-rule staleness
}

// newSuppressions parses every //lint:ignore directive in the packages. A
// directive missing its reason is itself reported as an "ignore" finding —
// undocumented waivers are exactly what the analyzer exists to prevent.
func newSuppressions(pkgs []*Package, root string, findings *[]Finding) *suppressions {
	s := &suppressions{byKey: make(map[string]*directive), rules: make(map[string]bool)}
	for _, r := range Rules() {
		s.rules[r.Name()] = true
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					file := relFile(root, pos.Filename)
					fields := strings.Fields(text)
					if len(fields) < 2 {
						*findings = append(*findings, Finding{
							Rule: "ignore", Waste: "det",
							File: file, Line: pos.Line, Col: pos.Column,
							Msg: "//lint:ignore needs a rule name and a reason: //lint:ignore <rule> <reason>",
						})
						continue
					}
					d := &directive{
						rule:   fields[0],
						reason: strings.Join(fields[1:], " "),
						line:   pos.Line,
						file:   file,
						pkg:    p,
						pos:    c.Pos(),
						end:    c.End(),
					}
					s.list = append(s.list, d)
					// A trailing directive covers its own line; a standalone
					// directive covers the line below. Registering both is
					// harmless and keeps the matcher trivial.
					s.byKey[supKey(file, pos.Line, d.rule)] = d
					s.byKey[supKey(file, pos.Line+1, d.rule)] = d
				}
			}
		}
	}
	return s
}

// apply marks findings covered by a directive as suppressed, in place, and
// marks the matching directives used.
func (s *suppressions) apply(findings []Finding) {
	if len(s.byKey) == 0 {
		return
	}
	for i := range findings {
		f := &findings[i]
		if f.Suppressed || f.Rule == "ignore" {
			continue
		}
		if d, ok := s.byKey[supKey(f.File, f.Line, f.Rule)]; ok {
			f.Suppressed = true
			f.Reason = d.reason
			d.used = true
		}
	}
}

// reportStale emits a stalewaiver finding for every directive that could
// have matched this run but did not: its named rule ran (or names no known
// rule — a typo suppresses nothing forever) and no finding landed under it.
// Directives naming stalewaiver or ignore are never judged — they exist to
// acknowledge the auditor itself.
func (s *suppressions) reportStale(findings *[]Finding, enabled map[string]bool) {
	for _, d := range s.list {
		if d.used || d.rule == "stalewaiver" || d.rule == "ignore" {
			continue
		}
		known := s.rules[d.rule]
		if known && !enabled[d.rule] {
			continue
		}
		why := "the rule reports nothing here any more"
		if !known {
			why = "no such rule exists"
		}
		pos := d.pkg.Fset.Position(d.pos)
		*findings = append(*findings, Finding{
			Rule: "stalewaiver", Waste: "det",
			File: d.file, Line: pos.Line, Col: pos.Column,
			Msg: "//lint:ignore " + d.rule + " suppresses nothing (" + why + "); delete the directive",
			Fix: deleteDirectiveFix(d),
		})
	}
}

// supKey builds the suppression index key without fmt — the analyzer obeys
// its own sprintf rule.
func supKey(file string, line int, rule string) string {
	return file + ":" + strconv.Itoa(line) + ":" + rule
}
