// Package lint is the lab's waste-mode static analyzer: a dependency-free
// framework on stdlib go/parser, go/ast, and go/types that enforces the two
// invariant families the rest of the repo only tests after the fact.
//
// The determinism rules guard the modelled plane — the packages whose output
// must be byte-identical run to run (EXPERIMENTS.md): no wall-clock reads,
// no unseeded or time-seeded PRNGs, no map iteration feeding rendered
// output, no fire-and-forget goroutines. The waste rules mirror the
// keynote's ten ways at the source level: locks copied by value (W5),
// growth-by-append data re-movement (W1), per-element formatting (W8),
// adjacent atomics sharing a cache line (W9), one-element channel sends
// (W7), deferred work piling up inside loops (W10).
//
// A finding can be acknowledged in place with
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line above it; the reason is mandatory and
// the suppression is itself recorded, so wastevet -suppressed and the T11
// experiment can audit what was waved through. Findings are sorted and
// positions are module-relative, so reports are byte-stable across runs and
// checkouts; rendering goes through internal/report like every other table
// in the suite.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one rule violation (or suppressed violation) at a position.
type Finding struct {
	// Rule is the reporting rule's name, e.g. "wallclock".
	Rule string `json:"rule"`
	// Waste is the waste mode or invariant the rule guards, e.g. "W9" or
	// "det" for the determinism family.
	Waste string `json:"waste"`
	// File is the module-root-relative path, forward slashes.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Msg says what is wrong and what the remedy is.
	Msg string `json:"msg"`
	// Suppressed marks findings acknowledged by a //lint:ignore directive;
	// Reason carries the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// Pos renders the finding's position as file:line:col.
func (f Finding) Pos() string { return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col) }

// String renders the finding as one grep-friendly line.
func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s [%s]", f.Pos(), f.Rule, f.Msg, f.Waste)
	if f.Suppressed {
		s += " (suppressed: " + f.Reason + ")"
	}
	return s
}

// Rule is one static check. Rules must be deterministic and must report
// positions only inside the package they were handed.
type Rule interface {
	// Name is the short identifier used by -rules and //lint:ignore.
	Name() string
	// Waste is the waste mode (W1..W10) or invariant family ("det") the
	// rule guards.
	Waste() string
	// Doc is a one-line description of what the rule enforces.
	Doc() string
	// Check inspects one loaded package and reports findings.
	Check(p *Package, r *Reporter)
}

// Config selects rules and scopes the plane-sensitive ones.
type Config struct {
	// Rules enables a subset by name; nil or empty enables every rule.
	Rules []string
	// MeasuredPlane lists import-path fragments where wall-clock reads and
	// math/rand imports are legitimate: the packages that measure the host
	// rather than model the machine. The determinism rules skip packages
	// whose import path contains any fragment.
	MeasuredPlane []string
	// PresentationPlane lists import-path fragments where per-element
	// formatting is the point (table builders, CLIs, examples); the sprintf
	// rule skips them.
	PresentationPlane []string
}

// DefaultConfig scopes the planes the way the repo is laid out: the
// measured plane (trace, sched, obs, chaos, core, the commands, the
// examples) may read wall clocks; the presentation plane (report, core,
// waste, tune, the commands, the examples) may format per element.
func DefaultConfig() Config {
	return Config{
		MeasuredPlane: []string{
			"internal/trace", "internal/sched", "internal/obs",
			"internal/chaos", "internal/core", "internal/serve",
			"cmd/", "examples/",
		},
		PresentationPlane: []string{
			"internal/report", "internal/core", "internal/waste",
			"internal/tune", "internal/stats", "cmd/", "examples/",
		},
	}
}

// inPlane reports whether the package import path matches any fragment.
func inPlane(path string, fragments []string) bool {
	for _, f := range fragments {
		if strings.Contains(path, f) {
			return true
		}
	}
	return false
}

// enabled returns the selected subset of rules, in catalog order.
func (c Config) enabled() ([]Rule, error) {
	all := Rules()
	if len(c.Rules) == 0 {
		return all, nil
	}
	byName := make(map[string]Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	want := make(map[string]bool, len(c.Rules))
	for _, name := range c.Rules {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)",
				name, strings.Join(RuleNames(), ", "))
		}
		want[name] = true
	}
	out := make([]Rule, 0, len(want))
	for _, r := range all {
		if want[r.Name()] {
			out = append(out, r)
		}
	}
	return out, nil
}

// Reporter accumulates findings for one package under one rule run.
type Reporter struct {
	pkg      *Package
	rule     Rule
	root     string
	findings *[]Finding
}

// Report records a finding at pos. The message should name the remedy, not
// just the problem.
func (r *Reporter) Report(pos token.Pos, format string, args ...interface{}) {
	p := r.pkg.Fset.Position(pos)
	file := p.Filename
	if r.root != "" {
		if rel, err := filepath.Rel(r.root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	*r.findings = append(*r.findings, Finding{
		Rule:  r.rule.Name(),
		Waste: r.rule.Waste(),
		File:  filepath.ToSlash(file),
		Line:  p.Line,
		Col:   p.Column,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// Result is a completed lint run.
type Result struct {
	// Findings holds every finding, suppressed ones included, sorted by
	// (file, line, col, rule) — a byte-stable order.
	Findings []Finding `json:"findings"`
	Packages int       `json:"packages"`
	Files    int       `json:"files"`
}

// Unsuppressed returns the findings not acknowledged by an ignore
// directive; an empty slice means the tree is clean.
func (res *Result) Unsuppressed() []Finding {
	out := make([]Finding, 0, len(res.Findings))
	for _, f := range res.Findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Counts returns per-rule totals: all findings and the suppressed subset.
func (res *Result) Counts() (total, suppressed map[string]int) {
	total = make(map[string]int)
	suppressed = make(map[string]int)
	for _, f := range res.Findings {
		total[f.Rule]++
		if f.Suppressed {
			suppressed[f.Rule]++
		}
	}
	return total, suppressed
}

// Run loads the packages matching patterns (see Loader.Load) and applies
// the configured rules. It is the one-call entry point cmd/wastevet and the
// T11 experiment share.
func Run(cfg Config, patterns ...string) (*Result, error) {
	l, err := NewLoader()
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	return Analyze(cfg, l.Root(), pkgs)
}

// Analyze applies the configured rules to already-loaded packages. root
// (the module root) relativises finding paths; empty keeps them absolute.
func Analyze(cfg Config, root string, pkgs []*Package) (*Result, error) {
	rules, err := cfg.enabled()
	if err != nil {
		return nil, err
	}
	res := &Result{Packages: len(pkgs)}
	var findings []Finding
	for _, p := range pkgs {
		res.Files += len(p.Files)
		p.cfg = cfg
		sup := newSuppressions(p, root, &findings)
		for _, rule := range rules {
			rule.Check(p, &Reporter{pkg: p, rule: rule, root: root, findings: &findings})
		}
		sup.apply(findings)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	if findings == nil {
		findings = []Finding{} // a clean tree marshals as [], not null
	}
	res.Findings = findings
	return res, nil
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	rule   string
	reason string
	line   int
	file   string // module-relative, matching Finding.File
}

// suppressions indexes a package's ignore directives by file and line.
type suppressions struct {
	pkg   *Package
	byKey map[string]suppression // "file:line:rule"
}

// newSuppressions parses every //lint:ignore directive in the package. A
// directive missing its reason is itself reported as an "ignore" finding —
// undocumented waivers are exactly what the analyzer exists to prevent.
func newSuppressions(p *Package, root string, findings *[]Finding) *suppressions {
	s := &suppressions{pkg: p, byKey: make(map[string]suppression)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				file := pos.Filename
				if root != "" {
					if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
						file = rel
					}
				}
				file = filepath.ToSlash(file)
				fields := strings.Fields(text)
				if len(fields) < 2 {
					*findings = append(*findings, Finding{
						Rule: "ignore", Waste: "det",
						File: file, Line: pos.Line, Col: pos.Column,
						Msg: "//lint:ignore needs a rule name and a reason: //lint:ignore <rule> <reason>",
					})
					continue
				}
				sup := suppression{
					rule:   fields[0],
					reason: strings.Join(fields[1:], " "),
					line:   pos.Line,
					file:   file,
				}
				// A trailing directive covers its own line; a standalone
				// directive covers the line below. Registering both is
				// harmless and keeps the matcher trivial.
				s.byKey[supKey(file, pos.Line, sup.rule)] = sup
				s.byKey[supKey(file, pos.Line+1, sup.rule)] = sup
			}
		}
	}
	return s
}

// apply marks findings covered by a directive as suppressed, in place.
func (s *suppressions) apply(findings []Finding) {
	if len(s.byKey) == 0 {
		return
	}
	for i := range findings {
		f := &findings[i]
		if f.Suppressed || f.Rule == "ignore" {
			continue
		}
		if sup, ok := s.byKey[supKey(f.File, f.Line, f.Rule)]; ok {
			f.Suppressed = true
			f.Reason = sup.reason
		}
	}
}

// supKey builds the suppression index key without fmt — the analyzer obeys
// its own sprintf rule.
func supKey(file string, line int, rule string) string {
	return file + ":" + strconv.Itoa(line) + ":" + rule
}
