package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed, best-effort type-checked package.
type Package struct {
	// Dir is the absolute directory, ImportPath the module-qualified path
	// (falls back to the directory when outside the module).
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	// Files are the non-test source files, sorted by filename.
	Files []*ast.File
	// Types and Info are best-effort: stdlib imports are checked from
	// GOROOT source and repo imports from the module, but a failed import
	// degrades to a stub rather than failing the load, so rules must treat
	// missing type information as "unknown", not as proof.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check diagnostics (informational only).
	TypeErrors []error
	// Src holds each file's raw bytes, keyed by the absolute filename as
	// recorded in Fset — fix builders slice it to pin the text their edits
	// replace.
	Src map[string][]byte

	cfg     Config
	imports map[*ast.File]map[string]string // local name -> import path
}

// Loader parses and type-checks packages inside one module. It may be used
// for several Load calls; stdlib packages are checked once and cached.
type Loader struct {
	fset    *token.FileSet
	root    string // module root (dir containing go.mod)
	module  string // module path from go.mod
	std     types.Importer
	checked map[string]*Package // by absolute dir
	loading map[string]bool     // import-cycle guard
}

// NewLoader locates the enclosing module from the working directory.
func NewLoader() (*Loader, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	return NewLoaderAt(wd)
}

// NewLoaderAt locates the module enclosing dir.
func NewLoaderAt(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, module, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		checked: make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// Module returns the module path from go.mod.
func (l *Loader) Module() string { return l.module }

// findModule walks up from dir to the first go.mod and parses its module
// path.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(name), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load resolves patterns into package directories and loads each. A
// pattern is a directory, or a directory suffixed "/..." for a recursive
// walk; the walk skips testdata, vendor, and dot/underscore directories
// (naming a testdata directory explicitly still loads it, which is how the
// rule fixtures are checked). Results come back sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			dirSet[abs] = true
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if ok, err := hasGoFiles(path); err != nil {
				return err
			} else if ok {
				dirSet[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, d := range dirs {
		p, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// importPathFor maps a directory to its module-qualified import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

// loadDir parses and type-checks one directory. Returns nil (no error) for
// directories without non-test Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	if p, ok := l.checked[dir]; ok {
		return p, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	src := make(map[string][]byte, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		if !buildTagsMatch(data) {
			continue // excluded by its //go:build constraint on this host
		}
		f, err := parser.ParseFile(l.fset, path, data, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
		src[path] = data
	}
	if len(files) == 0 {
		return nil, nil
	}

	p := &Package{
		Dir:        dir,
		ImportPath: l.importPathFor(dir),
		Fset:       l.fset,
		Files:      files,
		Src:        src,
		imports:    make(map[*ast.File]map[string]string),
	}
	for _, f := range files {
		p.imports[f] = importTable(f)
	}

	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check never hard-fails the load: an unresolved import or a type error
	// in one package must not stop the analyzer, it just thins the type
	// information the rules can lean on.
	p.Types, _ = conf.Check(p.ImportPath, l.fset, files, info)
	p.Info = info
	l.checked[dir] = p
	return p, nil
}

// buildTagsMatch evaluates a file's //go:build constraint (the header lines
// before the package clause) against this host: GOOS, GOARCH, the gc
// toolchain, and every go1.x release tag hold; anything else — "ignore",
// another OS, a custom tag — excludes the file, exactly as `go build`
// would. Files without a constraint always match.
func buildTagsMatch(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if !constraint.IsGoBuild(trimmed) {
				continue
			}
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true // malformed constraints are the parser's problem
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "gc" || strings.HasPrefix(tag, "go1")
			})
		}
		break // first non-comment line ends the header
	}
	return true
}

// moduleImporter resolves repo-internal imports through the Loader and
// everything else through the GOROOT source importer, degrading to an empty
// stub package when either fails.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		dir := filepath.Join(l.root, filepath.FromSlash(rel))
		p, err := l.loadDir(dir)
		if err == nil && p != nil && p.Types != nil {
			return p.Types, nil
		}
		return stubPackage(path), nil
	}
	if pkg, err := l.std.Import(path); err == nil && pkg != nil {
		return pkg, nil
	}
	return stubPackage(path), nil
}

// stubPackage is the degraded form of an unresolvable import: named,
// complete, and empty, so type checking continues around it.
func stubPackage(path string) *types.Package {
	base := path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	p := types.NewPackage(path, base)
	p.MarkComplete()
	return p
}

// importTable maps a file's local import names to import paths. Dot and
// blank imports are omitted.
func importTable(f *ast.File) map[string]string {
	t := make(map[string]string, len(f.Imports))
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		if spec.Name != nil {
			name = spec.Name.Name
			if name == "." || name == "_" {
				continue
			}
		}
		t[name] = path
	}
	return t
}
