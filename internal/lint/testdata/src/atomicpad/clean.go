package atomicpad

import "sync/atomic"

// Clean pads between independently-written counters.
type Clean struct {
	hits   atomic.Uint64
	_      [56]byte
	misses atomic.Uint64
}
