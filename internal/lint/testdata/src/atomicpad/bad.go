package atomicpad

import "sync/atomic"

// Bad packs two independently-written counters onto one cache line.
type Bad struct {
	hits   atomic.Uint64
	misses atomic.Uint64
}
