package atomicpad

import "sync/atomic"

// Suppressed acknowledges deliberately packed counters.
type Suppressed struct {
	hits atomic.Uint64
	//lint:ignore atomicpad fixture: fields written together, never contended
	misses atomic.Uint64
}
