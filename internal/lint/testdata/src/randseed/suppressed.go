package randseed

import (
	//lint:ignore randseed fixture: acknowledged ambient PRNG import
	"math/rand"
)

// Suppressed draws once from the global source, acknowledged.
func Suppressed() int {
	//lint:ignore randseed fixture: acknowledged global-source draw
	return rand.Intn(10)
}
