package randseed

import (
	"math/rand"
	"time"
)

// Bad seeds from the clock and draws from the shared global source.
func Bad() int {
	r := rand.New(rand.NewSource(time.Now().UnixNano()))
	return r.Intn(10) + rand.Intn(10)
}
