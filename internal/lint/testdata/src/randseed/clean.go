package randseed

// Clean threads an explicit seed through a local splitmix step.
func Clean(seed uint64) uint64 {
	seed += 0x9e3779b97f4a7c15
	z := seed
	z ^= z >> 30
	return z
}
