// Package stalewaiver fixtures //lint:ignore directives that suppress
// nothing: leftovers of refactors and plain typos.
package stalewaiver

// Bad carries two waivers with nothing left to waive.
func Bad() int {
	//lint:ignore nosuchrule this rule name never existed (typo)
	x := 1
	//lint:ignore alsonotarule stale waiver kept after a refactor
	return x
}
