package stalewaiver

// Suppressed acknowledges a deliberately-kept stale waiver with a waiver
// for the auditor itself.
func Suppressed() int {
	//lint:ignore stalewaiver fixture: stale directive kept deliberately
	//lint:ignore notarule stale on purpose
	return 2
}
