package stalewaiver

import "time"

// Clean's directive names a real rule: when that rule runs it suppresses
// the finding (used), and when it does not run staleness cannot be judged.
// Either way the auditor stays quiet.
func Clean() int64 {
	//lint:ignore wallclock fixture: acknowledged host-clock read
	return time.Now().UnixNano()
}
