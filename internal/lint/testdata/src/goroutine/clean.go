package goroutine

import "sync"

// Clean links the goroutine to a WaitGroup.
func Clean() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
