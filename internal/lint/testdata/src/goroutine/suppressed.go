package goroutine

// Suppressed acknowledges a fire-and-forget goroutine.
func Suppressed() {
	//lint:ignore goroutine fixture: acknowledged fire-and-forget
	go func() {
		sink++
	}()
}
