package goroutine

var sink int

// Bad fires a goroutine with no completion path.
func Bad() {
	go func() {
		sink++
	}()
}
