package deferloop

import "sync"

// Bad parks every unlock until function return.
func Bad(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock()
		defer mu.Unlock()
	}
}
