package deferloop

// Suppressed acknowledges a bounded loop of deferred cleanups.
func Suppressed(cleanups []func()) {
	for _, c := range cleanups {
		//lint:ignore deferloop fixture: at most two iterations by contract
		defer c()
	}
}
