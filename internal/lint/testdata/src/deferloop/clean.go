package deferloop

import "sync"

// Clean releases at the end of each iteration.
func Clean(mus []*sync.Mutex, f func()) {
	for _, mu := range mus {
		mu.Lock()
		f()
		mu.Unlock()
	}
}
