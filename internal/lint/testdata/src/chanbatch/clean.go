package chanbatch

// Clean aggregates the batch into one hand-off.
func Clean(xs []int, ch chan<- []int) {
	batch := make([]int, len(xs))
	copy(batch, xs)
	ch <- batch
}
