package chanbatch

// Suppressed acknowledges a deliberate per-element hand-off.
func Suppressed(xs []int, ch chan<- int) {
	for _, x := range xs {
		//lint:ignore chanbatch fixture: consumer needs per-element delivery
		ch <- x
	}
}
