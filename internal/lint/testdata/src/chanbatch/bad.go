package chanbatch

// Bad sends one element per message.
func Bad(xs []int, ch chan<- int) {
	for _, x := range xs {
		ch <- x
	}
}
