package copylocks

import "sync"

// Bad takes a mutex by value, splitting its state from the caller's.
func Bad(mu sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}
