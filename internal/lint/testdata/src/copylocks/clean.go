package copylocks

import "sync"

// Clean takes the lock by pointer.
func Clean(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}
