package copylocks

import "sync"

// Suppressed acknowledges one by-value lock.
//
//lint:ignore copylocks fixture: value parameter kept for signature parity
func Suppressed(mu sync.Mutex) {
	_ = mu
}
