package maprange

import (
	"fmt"
	"sort"
)

// Clean sorts the keys before emitting.
func Clean(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
