package maprange

import "fmt"

// Suppressed acknowledges the ordering leak.
func Suppressed(m map[string]int) {
	//lint:ignore maprange fixture: order deliberately unstable
	for k := range m {
		fmt.Println(k)
	}
}
