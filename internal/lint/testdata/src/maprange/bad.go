package maprange

import "fmt"

// Bad emits straight out of map iteration order.
func Bad(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
