package sprintf

import "strconv"

// Clean uses strconv on the hot path.
func Clean(xs []int) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, "x="+strconv.Itoa(x))
	}
	return out
}
