package sprintf

import "fmt"

// Bad formats per element on the hot path.
func Bad(xs []int) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("x=%d", x))
	}
	return out
}
