package sprintf

import "fmt"

// Suppressed acknowledges error-path formatting inside a loop.
func Suppressed(xs []int) {
	for _, x := range xs {
		if x < 0 {
			//lint:ignore sprintf fixture: error path, not per-element work
			panic(fmt.Sprintf("negative input %d", x))
		}
	}
}
