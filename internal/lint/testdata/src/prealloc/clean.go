package prealloc

// Clean preallocates capacity up front.
func Clean(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
