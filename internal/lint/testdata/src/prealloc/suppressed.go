package prealloc

// Suppressed acknowledges growth where matches are expected to be rare.
func Suppressed(xs []int) []int {
	//lint:ignore prealloc fixture: matches are the rare case
	var out []int
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}
