package prealloc

// Bad re-moves the backing array through the allocator at every doubling.
func Bad(n int) []int {
	out := []int{}
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// BadRange grows over a ranged slice, so the capacity is knowable and the
// finding carries a mechanical fix.
func BadRange(xs []string) []string {
	out := []string{}
	for _, x := range xs {
		out = append(out, x+x)
	}
	return out
}
