package prealloc

// Bad re-moves the backing array through the allocator at every doubling.
func Bad(n int) []int {
	out := []int{}
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
