package wallclock

import "time"

// Clean uses only duration arithmetic, which stays legal everywhere.
func Clean(ticks int64) time.Duration {
	return time.Duration(ticks) * time.Microsecond
}
