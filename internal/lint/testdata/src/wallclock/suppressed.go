package wallclock

import "time"

// Suppressed acknowledges one host-clock read.
func Suppressed() int64 {
	//lint:ignore wallclock fixture: acknowledged host-clock read
	return time.Now().UnixNano()
}
