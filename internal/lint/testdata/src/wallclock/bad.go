package wallclock

import "time"

// Bad reads and waits on the host clock inside the modelled plane.
func Bad() int64 {
	t := time.Now()
	time.Sleep(time.Millisecond)
	return t.UnixNano()
}
