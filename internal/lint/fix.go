package lint

// The autofix engine. Rules that know their remedy attach a SuggestedFix
// (byte-range edits pinned to the text they replace); ApplyFixes turns a
// run's fixable findings into new file contents deterministically:
// per-file, edits sorted by offset, overlapping or drifted edits skipped
// rather than guessed at. Pinning Old makes the whole pipeline idempotent —
// a second -fix run finds either no finding (the fix removed it) or an Old
// mismatch (the file moved on) and changes nothing.

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// stalewaiverRule audits the suppression mechanism itself: a //lint:ignore
// directive that no longer suppresses anything is dead weight that hides
// future findings on its line. Check is a no-op — staleness is judged
// inside Analyze after every other enabled rule has reported, because only
// then are the suppression index's usage bits final.
type stalewaiverRule struct{}

func (stalewaiverRule) Name() string  { return "stalewaiver" }
func (stalewaiverRule) Waste() string { return "det" }
func (stalewaiverRule) Doc() string {
	return "//lint:ignore directives must still suppress a finding; delete stale waivers"
}
func (stalewaiverRule) Check(*Package, *Reporter) {}

// deleteDirectiveFix builds the edit that removes a stale directive: the
// whole line when the directive stands alone on it, otherwise just the
// comment and the whitespace joining it to the code it trails. Returns nil
// when the package has no retained source (synthetic loads).
func deleteDirectiveFix(d *directive) *SuggestedFix {
	tf := d.pkg.Fset.File(d.pos)
	if tf == nil {
		return nil
	}
	src, ok := d.pkg.Src[tf.Name()]
	if !ok {
		return nil
	}
	start, end := tf.Offset(d.pos), tf.Offset(d.end)
	line := tf.Line(d.pos)
	lineStart := tf.Offset(tf.LineStart(line))
	delStart, delEnd := start, end
	if strings.TrimSpace(string(src[lineStart:start])) == "" {
		// Standalone directive: remove the full line, newline included.
		delStart = lineStart
		if line < tf.LineCount() {
			delEnd = tf.Offset(tf.LineStart(line + 1))
		} else {
			delEnd = len(src)
		}
	} else {
		// Trailing directive: also eat the spacing before the comment.
		for delStart > lineStart && (src[delStart-1] == ' ' || src[delStart-1] == '\t') {
			delStart--
		}
	}
	return &SuggestedFix{
		Msg: "delete the stale //lint:ignore directive",
		Edits: []TextEdit{{
			File:  d.file,
			Start: delStart,
			End:   delEnd,
			Old:   string(src[delStart:delEnd]),
		}},
	}
}

// replaceRange builds a single-edit fix replacing [pos, end) with newText,
// pinning the current source; nil when the package retains no source bytes
// (synthetic loads) or the range is out of bounds. The edit's File is the
// absolute filename; the reporter relativises it against the module root.
func replaceRange(p *Package, msg string, pos, end token.Pos, newText string) *SuggestedFix {
	tf := p.Fset.File(pos)
	if tf == nil {
		return nil
	}
	src, ok := p.Src[tf.Name()]
	if !ok {
		return nil
	}
	so, eo := tf.Offset(pos), tf.Offset(end)
	if so < 0 || so > eo || eo > len(src) {
		return nil
	}
	return &SuggestedFix{
		Msg: msg,
		Edits: []TextEdit{{
			File:  tf.Name(),
			Start: so,
			End:   eo,
			Old:   string(src[so:eo]),
			New:   newText,
		}},
	}
}

// FixOutcome summarises one ApplyFixes run.
type FixOutcome struct {
	// Changed maps module-relative paths to their post-fix contents; only
	// files with at least one applied edit appear.
	Changed map[string][]byte
	// Applied counts edits written into Changed.
	Applied int
	// Skipped counts edits dropped for overlap or because the file no
	// longer holds the text the edit pinned (Old mismatch).
	Skipped int
}

// ApplyFixes computes the result of applying every suggested fix in
// findings to the files under root. Nothing is written to disk — the caller
// decides (WriteFixes writes, the -fix -n dry run diffs). Identical edits
// from different findings collapse into one; edits overlapping an earlier
// (lower-offset) edit are skipped, as are edits whose pinned Old text no
// longer matches the file. The outcome is a pure function of (root
// contents, findings), so repeated runs are byte-stable.
func ApplyFixes(root string, findings []Finding) (*FixOutcome, error) {
	byFile := make(map[string][]TextEdit)
	for _, f := range findings {
		if f.Suppressed || f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			byFile[e.File] = append(byFile[e.File], e)
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	out := &FixOutcome{Changed: make(map[string][]byte)}
	for _, file := range files {
		edits := byFile[file]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			if edits[i].End != edits[j].End {
				return edits[i].End < edits[j].End
			}
			return edits[i].New < edits[j].New
		})
		src, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(file)))
		if err != nil {
			return nil, fmt.Errorf("lint: fix %s: %w", file, err)
		}
		kept := edits[:0]
		prevEnd := -1
		var prev TextEdit
		for _, e := range edits {
			if len(kept) > 0 && e == prev {
				continue // same edit suggested by two findings
			}
			if e.Start < prevEnd || e.Start > e.End || e.End > len(src) {
				out.Skipped++
				continue
			}
			if string(src[e.Start:e.End]) != e.Old {
				out.Skipped++ // file drifted since analysis; don't guess
				continue
			}
			kept = append(kept, e)
			prev = e
			prevEnd = e.End
		}
		if len(kept) == 0 {
			continue
		}
		// Apply back-to-front so earlier offsets stay valid.
		buf := append([]byte(nil), src...)
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			buf = append(buf[:e.Start], append([]byte(e.New), buf[e.End:]...)...)
		}
		out.Changed[file] = buf
		out.Applied += len(kept)
	}
	return out, nil
}

// WriteFixes applies the outcome to disk, preserving each file's mode.
func WriteFixes(root string, out *FixOutcome) error {
	files := make([]string, 0, len(out.Changed))
	for f := range out.Changed {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		path := filepath.Join(root, filepath.FromSlash(file))
		mode := os.FileMode(0o644)
		if st, err := os.Stat(path); err == nil {
			mode = st.Mode().Perm()
		}
		if err := os.WriteFile(path, out.Changed[file], mode); err != nil {
			return fmt.Errorf("lint: fix %s: %w", file, err)
		}
	}
	return nil
}

// DiffFixes renders the outcome as a minimal line diff against the files
// under root, byte-stable: files sorted, each changed region shown as the
// old lines prefixed "-" and the new lines prefixed "+". This is the
// -fix -n dry run's output.
func DiffFixes(root string, out *FixOutcome) (string, error) {
	files := make([]string, 0, len(out.Changed))
	for f := range out.Changed {
		files = append(files, f)
	}
	sort.Strings(files)
	var b strings.Builder
	for _, file := range files {
		src, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(file)))
		if err != nil {
			return "", fmt.Errorf("lint: diff %s: %w", file, err)
		}
		oldLines := strings.SplitAfter(string(src), "\n")
		newLines := strings.SplitAfter(string(out.Changed[file]), "\n")
		// Trim the common prefix and suffix; what remains is the changed
		// region (one hunk — fixes cluster, and a dry run needs review
		// context, not patch-tool fidelity).
		p := 0
		for p < len(oldLines) && p < len(newLines) && oldLines[p] == newLines[p] {
			p++
		}
		so, sn := len(oldLines), len(newLines)
		for so > p && sn > p && oldLines[so-1] == newLines[sn-1] {
			so--
			sn--
		}
		fmt.Fprintf(&b, "--- %s:%d\n", file, p+1)
		for _, l := range oldLines[p:so] {
			b.WriteString("-" + strings.TrimRight(l, "\n") + "\n")
		}
		for _, l := range newLines[p:sn] {
			b.WriteString("+" + strings.TrimRight(l, "\n") + "\n")
		}
	}
	return b.String(), nil
}
