package lint

// SARIF 2.1.0 output: the interchange format CI annotators and editors
// ingest. One run, one driver (wastevet), the visible rule catalog as rule
// metadata, every finding as a result. Suppressed findings are emitted with
// an inSource suppression carrying the waiver's reason, and findings with a
// SuggestedFix carry the edit as a SARIF fix. Output is deterministic:
// findings arrive sorted from Analyze and the catalog is sorted by name.

import (
	"encoding/json"
	"io"
	"sort"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string         `json:"id"`
	ShortDescription sarifText      `json:"shortDescription"`
	Properties       map[string]any `json:"properties,omitempty"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
	Fixes        []sarifFix         `json:"fixes,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

type sarifFix struct {
	Description     sarifText             `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifact      `json:"artifactLocation"`
	Replacements     []sarifReplacement `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifCharRegion `json:"deletedRegion"`
	InsertedContent sarifText       `json:"insertedContent"`
}

type sarifCharRegion struct {
	CharOffset int `json:"charOffset"`
	CharLength int `json:"charLength"`
}

// WriteSARIF renders the result as a SARIF 2.1.0 document. The rule catalog
// is whatever this binary registered — the flow rules appear when the flow
// package is linked in.
func WriteSARIF(w io.Writer, res *Result) error {
	rules := Rules()
	sort.Slice(rules, func(i, j int) bool { return rules[i].Name() < rules[j].Name() })
	index := make(map[string]int, len(rules))
	srules := make([]sarifRule, len(rules))
	for i, r := range rules {
		index[r.Name()] = i
		srules[i] = sarifRule{
			ID:               r.Name(),
			ShortDescription: sarifText{Text: r.Doc()},
			Properties:       map[string]any{"waste": r.Waste()},
		}
	}

	results := make([]sarifResult, 0, len(res.Findings))
	for _, f := range res.Findings {
		sr := sarifResult{
			RuleID:  f.Rule,
			Level:   "warning",
			Message: sarifText{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		}
		sr.RuleIndex = -1 // the SARIF "not in the catalog" sentinel
		if i, ok := index[f.Rule]; ok {
			sr.RuleIndex = i
		}
		if f.Suppressed {
			sr.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: f.Reason}}
		}
		if f.Fix != nil {
			byFile := make(map[string][]sarifReplacement)
			files := make([]string, 0, len(f.Fix.Edits))
			for _, e := range f.Fix.Edits {
				if _, seen := byFile[e.File]; !seen {
					files = append(files, e.File)
				}
				byFile[e.File] = append(byFile[e.File], sarifReplacement{
					DeletedRegion:   sarifCharRegion{CharOffset: e.Start, CharLength: e.End - e.Start},
					InsertedContent: sarifText{Text: e.New},
				})
			}
			sort.Strings(files)
			fix := sarifFix{Description: sarifText{Text: f.Fix.Msg}}
			for _, file := range files {
				fix.ArtifactChanges = append(fix.ArtifactChanges, sarifArtifactChange{
					ArtifactLocation: sarifArtifact{URI: file},
					Replacements:     byFile[file],
				})
			}
			sr.Fixes = []sarifFix{fix}
		}
		results = append(results, sr)
	}

	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "wastevet", Rules: srules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
