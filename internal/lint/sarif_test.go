package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// sarifResultFixture is a hand-built Result covering the three finding
// shapes SARIF must carry: plain, suppressed-with-reason, and fixable.
func sarifResultFixture() *Result {
	return &Result{
		Findings: []Finding{
			{
				Rule: "wallclock", Waste: "det",
				File: "internal/pdes/engine.go", Line: 10, Col: 5,
				Msg: "time.Now() read in the modelled plane",
			},
			{
				Rule: "goroutine", Waste: "det",
				File: "internal/serve/daemon.go", Line: 20, Col: 2,
				Msg:        "fire-and-forget goroutine",
				Suppressed: true, Reason: "supervisor owns the lifecycle",
			},
			{
				Rule: "prealloc", Waste: "W1",
				File: "internal/cache/shard.go", Line: 30, Col: 2,
				Msg: "out grows by append inside the following loop",
				Fix: &SuggestedFix{
					Msg: "preallocate the slice to the ranged length",
					Edits: []TextEdit{{
						File: "internal/cache/shard.go", Start: 100, End: 112,
						Old: "out := []T{}", New: "out := make([]T, 0, len(xs))",
					}},
				},
			},
		},
		Packages: 3,
		Files:    3,
	}
}

// TestSARIFGolden pins the SARIF document byte-for-byte against a golden
// fixture (regenerate with -update).
func TestSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sarifResultFixture()); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden", "sarif.golden")
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output differs from golden %s:\ngot:\n%s", goldenPath, buf.String())
	}
}

// TestSARIFWellFormed checks the structural invariants independent of the
// golden: valid JSON, catalog-matching ruleIndex, suppression and fix
// carried through.
func TestSARIFWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sarifResultFixture()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID       string `json:"ruleId"`
				RuleIndex    int    `json:"ruleIndex"`
				Suppressions []struct {
					Justification string `json:"justification"`
				} `json:"suppressions"`
				Fixes []struct {
					ArtifactChanges []struct {
						Replacements []struct {
							InsertedContent struct {
								Text string `json:"text"`
							} `json:"insertedContent"`
						} `json:"replacements"`
					} `json:"artifactChanges"`
				} `json:"fixes"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version=%q runs=%d", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "wastevet" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	for _, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("result %s has ruleIndex %d outside the catalog", r.RuleID, r.RuleIndex)
			continue
		}
		if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("result %s indexes rule %s", r.RuleID, got)
		}
	}
	if len(run.Results[1].Suppressions) != 1 ||
		run.Results[1].Suppressions[0].Justification != "supervisor owns the lifecycle" {
		t.Errorf("suppression not carried: %+v", run.Results[1].Suppressions)
	}
	fixes := run.Results[2].Fixes
	if len(fixes) != 1 || len(fixes[0].ArtifactChanges) != 1 ||
		fixes[0].ArtifactChanges[0].Replacements[0].InsertedContent.Text != "out := make([]T, 0, len(xs))" {
		t.Errorf("fix not carried: %+v", fixes)
	}
}
