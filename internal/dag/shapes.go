package dag

import "tenways/internal/workload"

// Chain builds a linear chain of n tasks of the given cost: span == work,
// parallelism 1 — nothing for extra processors to do.
func Chain(n int, cost float64) *DAG {
	d := New()
	prev := -1
	for i := 0; i < n; i++ {
		id := d.AddTask(cost)
		if prev >= 0 {
			// A chain construction cannot fail.
			if err := d.AddDep(prev, id); err != nil {
				panic(err)
			}
		}
		prev = id
	}
	return d
}

// FanOut builds a root, n independent middle tasks, and a join: span is
// three tasks, parallelism ≈ n — the embarrassingly parallel shape.
func FanOut(n int, cost float64) *DAG {
	d := New()
	root := d.AddTask(cost)
	join := -1
	mids := make([]int, n)
	for i := 0; i < n; i++ {
		mids[i] = d.AddTask(cost)
		mustDep(d, root, mids[i])
	}
	join = d.AddTask(cost)
	for _, m := range mids {
		mustDep(d, m, join)
	}
	return d
}

// ForkJoin builds `levels` alternating fork/join levels of the given
// width — the bulk-synchronous shape with a barrier-like join per level.
func ForkJoin(levels, width int, cost float64) *DAG {
	d := New()
	prevJoin := d.AddTask(cost)
	for l := 0; l < levels; l++ {
		join := -1
		mids := make([]int, width)
		for i := 0; i < width; i++ {
			mids[i] = d.AddTask(cost)
			mustDep(d, prevJoin, mids[i])
		}
		join = d.AddTask(cost)
		for _, m := range mids {
			mustDep(d, m, join)
		}
		prevJoin = join
	}
	return d
}

// RandomLayered builds a layered random DAG: `layers` levels of `width`
// tasks with Zipf-skewed costs; each task depends on 1–3 random tasks of
// the previous layer. Deterministic for a given seed.
func RandomLayered(seed uint64, layers, width int, skew float64) *DAG {
	rng := workload.NewRand(seed)
	costs := workload.NewTaskDist(seed).Zipf(layers*width, skew, 1e-3)
	d := New()
	prev := make([]int, 0, width)
	ci := 0
	for l := 0; l < layers; l++ {
		cur := make([]int, width)
		for i := 0; i < width; i++ {
			cur[i] = d.AddTask(costs[ci])
			ci++
			if l > 0 {
				deps := rng.Intn(3) + 1
				for k := 0; k < deps; k++ {
					mustDep(d, prev[rng.Intn(len(prev))], cur[i])
				}
			}
		}
		prev = cur
	}
	return d
}

// mustDep adds a dependency produced by a generator, which by construction
// cannot be invalid.
func mustDep(d *DAG, from, to int) {
	if err := d.AddDep(from, to); err != nil {
		panic(err)
	}
}
