package dag

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChainWorkSpan(t *testing.T) {
	d := Chain(10, 2)
	if d.Work() != 20 {
		t.Fatalf("work = %g", d.Work())
	}
	span, err := d.Span()
	if err != nil {
		t.Fatal(err)
	}
	if span != 20 {
		t.Fatalf("span = %g", span)
	}
	par, err := d.Parallelism()
	if err != nil {
		t.Fatal(err)
	}
	if par != 1 {
		t.Fatalf("chain parallelism = %g", par)
	}
}

func TestFanOutWorkSpan(t *testing.T) {
	d := FanOut(8, 1)
	if d.Work() != 10 { // root + 8 + join
		t.Fatalf("work = %g", d.Work())
	}
	span, err := d.Span()
	if err != nil {
		t.Fatal(err)
	}
	if span != 3 {
		t.Fatalf("span = %g", span)
	}
}

func TestForkJoinSpan(t *testing.T) {
	d := ForkJoin(3, 4, 1)
	// root + 3 levels of (mid + join): span = 1 + 3*2 = 7.
	span, err := d.Span()
	if err != nil {
		t.Fatal(err)
	}
	if span != 7 {
		t.Fatalf("span = %g", span)
	}
	if d.Work() != float64(1+3*(4+1)) {
		t.Fatalf("work = %g", d.Work())
	}
}

func TestAddDepValidation(t *testing.T) {
	d := New()
	a := d.AddTask(1)
	if err := d.AddDep(a, a); err == nil {
		t.Fatal("self edge accepted")
	}
	if err := d.AddDep(a, 99); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if d.AddTask(-5); d.Cost(1) != 0 {
		t.Fatal("negative cost not clamped")
	}
}

func TestCycleDetected(t *testing.T) {
	d := New()
	a := d.AddTask(1)
	b := d.AddTask(1)
	if err := d.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDep(b, a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TopoOrder(); err != ErrCyclic {
		t.Fatalf("expected ErrCyclic, got %v", err)
	}
	if _, err := d.Span(); err == nil {
		t.Fatal("span on cyclic graph should fail")
	}
	if _, err := d.ScheduleGreedy(2); err == nil {
		t.Fatal("schedule on cyclic graph should fail")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	d := RandomLayered(1, 5, 6, 0.8)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, d.N())
	for i, v := range order {
		pos[v] = i
	}
	for v := 0; v < d.N(); v++ {
		for _, s := range d.succ[v] {
			if pos[s] <= pos[v] {
				t.Fatalf("edge %d->%d violated in topo order", v, s)
			}
		}
	}
}

func TestScheduleRespectsDependencies(t *testing.T) {
	d := RandomLayered(7, 6, 8, 1.0)
	s, err := d.ScheduleGreedy(4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < d.N(); v++ {
		for _, nx := range d.succ[v] {
			if s.Start[nx]+1e-12 < s.Start[v]+d.Cost(v) {
				t.Fatalf("task %d starts at %g before dep %d finishes at %g",
					nx, s.Start[nx], v, s.Start[v]+d.Cost(v))
			}
		}
	}
	// No worker runs two tasks at once.
	for a := 0; a < d.N(); a++ {
		for b := a + 1; b < d.N(); b++ {
			if s.Worker[a] != s.Worker[b] {
				continue
			}
			aEnd := s.Start[a] + d.Cost(a)
			bEnd := s.Start[b] + d.Cost(b)
			if s.Start[a] < bEnd-1e-12 && s.Start[b] < aEnd-1e-12 {
				t.Fatalf("tasks %d and %d overlap on worker %d", a, b, s.Worker[a])
			}
		}
	}
}

func TestScheduleBrentBound(t *testing.T) {
	for _, build := range []func() *DAG{
		func() *DAG { return Chain(20, 1e-3) },
		func() *DAG { return FanOut(32, 1e-3) },
		func() *DAG { return ForkJoin(4, 8, 1e-3) },
		func() *DAG { return RandomLayered(3, 8, 8, 1.2) },
	} {
		d := build()
		span, err := d.Span()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 16} {
			s, err := d.ScheduleGreedy(p)
			if err != nil {
				t.Fatal(err)
			}
			bound := d.Work()/float64(p) + span
			if s.Makespan > bound+1e-9 {
				t.Fatalf("p=%d: makespan %g exceeds Brent bound %g", p, s.Makespan, bound)
			}
			if s.Makespan+1e-12 < span {
				t.Fatalf("p=%d: makespan %g below span %g", p, s.Makespan, span)
			}
			if s.Makespan+1e-12 < d.Work()/float64(p) {
				t.Fatalf("p=%d: makespan %g below work/p", p, s.Makespan)
			}
		}
	}
}

func TestChainGainsNothingFromProcessors(t *testing.T) {
	d := Chain(50, 1e-3)
	s1, _ := d.ScheduleGreedy(1)
	s8, _ := d.ScheduleGreedy(8)
	if math.Abs(s1.Makespan-s8.Makespan) > 1e-12 {
		t.Fatalf("chain sped up: %g vs %g", s1.Makespan, s8.Makespan)
	}
}

func TestFanOutScalesToWidth(t *testing.T) {
	d := FanOut(64, 1e-3)
	s1, _ := d.ScheduleGreedy(1)
	s16, _ := d.ScheduleGreedy(16)
	if speedup := s1.Makespan / s16.Makespan; speedup < 8 {
		t.Fatalf("fan-out speedup only %g on 16 workers", speedup)
	}
}

func TestScheduleOnOneWorkerEqualsWork(t *testing.T) {
	d := RandomLayered(9, 4, 4, 0.5)
	s, err := d.ScheduleGreedy(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Makespan-d.Work()) > 1e-9 {
		t.Fatalf("1-worker makespan %g != work %g", s.Makespan, d.Work())
	}
	if e := s.Efficiency(d.Work()); math.Abs(e-1) > 1e-9 {
		t.Fatalf("1-worker efficiency = %g", e)
	}
}

func TestEfficiencyEdgeCases(t *testing.T) {
	if (Schedule{}).Efficiency(10) != 0 {
		t.Fatal("empty schedule efficiency should be 0")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a, _ := RandomLayered(11, 6, 6, 1.0).ScheduleGreedy(4)
	b, _ := RandomLayered(11, 6, 6, 1.0).ScheduleGreedy(4)
	if a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic: %g vs %g", a.Makespan, b.Makespan)
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] || a.Worker[i] != b.Worker[i] {
			t.Fatal("schedules differ")
		}
	}
}

// Property: for random layered DAGs, Brent's bound holds at every p and
// the makespan is monotone non-increasing in p.
func TestBrentBoundProperty(t *testing.T) {
	f := func(seed uint64, layersRaw, widthRaw uint8) bool {
		layers := int(layersRaw)%5 + 1
		width := int(widthRaw)%5 + 1
		d := RandomLayered(seed, layers, width, 1.0)
		span, err := d.Span()
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for _, p := range []int{1, 2, 4, 8} {
			s, err := d.ScheduleGreedy(p)
			if err != nil {
				return false
			}
			if s.Makespan > d.Work()/float64(p)+span+1e-9 {
				return false
			}
			// Greedy list scheduling is not strictly monotone in p in
			// general, but within 2x it must be (both are within Brent).
			if s.Makespan > 2*prev {
				return false
			}
			prev = s.Makespan
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
