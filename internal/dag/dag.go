// Package dag models task graphs with work–span analysis and greedy list
// scheduling. The keynote's load-imbalance and serialisation arguments are
// both special cases of the work–span view: a chain has span == work (no
// parallelism to waste), a flat fan-out has span == one task (everything to
// waste), and real applications sit between. The F15 experiment schedules
// representative shapes and compares the achieved makespan with Brent's
// bound.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// DAG is a directed acyclic graph of weighted tasks. Edges point from
// prerequisite to dependent.
type DAG struct {
	costs []float64
	succ  [][]int
	pred  [][]int
}

// New returns an empty DAG.
func New() *DAG { return &DAG{} }

// AddTask adds a task with the given cost (seconds) and returns its id.
// Negative costs are clamped to 0.
func (d *DAG) AddTask(cost float64) int {
	if cost < 0 {
		cost = 0
	}
	d.costs = append(d.costs, cost)
	d.succ = append(d.succ, nil)
	d.pred = append(d.pred, nil)
	return len(d.costs) - 1
}

// AddDep records that `from` must complete before `to` starts.
func (d *DAG) AddDep(from, to int) error {
	n := len(d.costs)
	if from < 0 || from >= n || to < 0 || to >= n {
		return fmt.Errorf("dag: edge %d->%d out of range [0,%d)", from, to, n)
	}
	if from == to {
		return fmt.Errorf("dag: self edge on %d", from)
	}
	d.succ[from] = append(d.succ[from], to)
	d.pred[to] = append(d.pred[to], from)
	return nil
}

// N returns the task count.
func (d *DAG) N() int { return len(d.costs) }

// Cost returns task id's cost.
func (d *DAG) Cost(id int) float64 { return d.costs[id] }

// ErrCyclic reports that the graph has a cycle.
var ErrCyclic = errors.New("dag: graph is cyclic")

// TopoOrder returns a topological order (Kahn's algorithm, smallest id
// first for determinism) or ErrCyclic.
func (d *DAG) TopoOrder() ([]int, error) {
	n := d.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(d.pred[v])
	}
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, s := range d.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

// Work returns the total task cost T_1.
func (d *DAG) Work() float64 {
	w := 0.0
	for _, c := range d.costs {
		w += c
	}
	return w
}

// Span returns the critical-path cost T_inf, or an error on a cycle.
func (d *DAG) Span() (float64, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return 0, err
	}
	finish := make([]float64, d.N())
	span := 0.0
	for _, v := range order {
		start := 0.0
		for _, p := range d.pred[v] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[v] = start + d.costs[v]
		if finish[v] > span {
			span = finish[v]
		}
	}
	return span, nil
}

// Parallelism returns Work/Span, or an error on a cycle.
func (d *DAG) Parallelism() (float64, error) {
	s, err := d.Span()
	if err != nil {
		return 0, err
	}
	if s == 0 {
		return 0, nil
	}
	return d.Work() / s, nil
}

// Schedule is the result of list-scheduling a DAG on p workers.
type Schedule struct {
	Makespan float64
	Start    []float64 // per task
	Worker   []int     // per task
	Busy     []float64 // per worker
}

// Efficiency returns Work / (p × makespan).
func (s Schedule) Efficiency(work float64) float64 {
	if s.Makespan == 0 || len(s.Busy) == 0 {
		return 0
	}
	return work / (float64(len(s.Busy)) * s.Makespan)
}

// ScheduleGreedy list-schedules the DAG on p workers: whenever a worker is
// free and a task is ready, the earliest-ready task (ties by id) starts on
// the earliest-free worker. The result respects all dependencies and is
// deterministic. Greedy scheduling satisfies Brent's bound
// makespan <= Work/p + Span.
func (d *DAG) ScheduleGreedy(p int) (Schedule, error) {
	if p < 1 {
		p = 1
	}
	if _, err := d.TopoOrder(); err != nil {
		return Schedule{}, err
	}
	n := d.N()
	s := Schedule{
		Start:  make([]float64, n),
		Worker: make([]int, n),
		Busy:   make([]float64, p),
	}
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(d.pred[v])
	}
	free := make([]float64, p)
	finish := make([]float64, n)

	// ready holds runnable tasks; scheduled counts progress.
	type readyTask struct {
		at float64
		id int
	}
	ready := make([]readyTask, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, readyTask{0, v})
		}
	}
	scheduled := 0
	for scheduled < n {
		if len(ready) == 0 {
			return Schedule{}, ErrCyclic
		}
		// Earliest-ready task, ties by id.
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i].at < ready[best].at ||
				(ready[i].at == ready[best].at && ready[i].id < ready[best].id) {
				best = i
			}
		}
		task := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		// Earliest-free worker.
		w := 0
		for i := 1; i < p; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		start := task.at
		if free[w] > start {
			start = free[w]
		}
		s.Start[task.id] = start
		s.Worker[task.id] = w
		end := start + d.costs[task.id]
		free[w] = end
		finish[task.id] = end
		s.Busy[w] += d.costs[task.id]
		if end > s.Makespan {
			s.Makespan = end
		}
		scheduled++
		for _, nx := range d.succ[task.id] {
			indeg[nx]--
			if indeg[nx] == 0 {
				at := 0.0
				for _, pr := range d.pred[nx] {
					if finish[pr] > at {
						at = finish[pr]
					}
				}
				ready = append(ready, readyTask{at, nx})
			}
		}
	}
	return s, nil
}
