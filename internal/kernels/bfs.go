package kernels

import (
	"sync"
	"sync/atomic"

	"tenways/internal/workload"
)

// BFS runs a level-synchronous breadth-first search from src and returns
// the distance of every vertex (-1 if unreachable).
func BFS(g *workload.Graph, src int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int{src}
	for level := 1; len(frontier) > 0; level++ {
		// Seed the next frontier's capacity with the current one's size —
		// the usual growth estimate for level-synchronous BFS.
		next := make([]int, 0, len(frontier))
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if dist[v] == -1 {
					dist[v] = level
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// BFSParallel runs the same level-synchronous BFS with the frontier
// expanded by nw goroutines per level (atomic claim of vertices). The
// per-level barrier is inherent to level synchronisation — the workload
// whose W3 remedy is asynchronous traversal, modelled in the experiments.
func BFSParallel(g *workload.Graph, src, nw int) []int {
	if nw < 1 {
		nw = 1
	}
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int{src}
	for level := int32(1); len(frontier) > 0; level++ {
		nexts := make([][]int, nw)
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for fi := w; fi < len(frontier); fi += nw {
					u := frontier[fi]
					for _, v := range g.Adj[u] {
						if atomic.CompareAndSwapInt32(&dist[v], -1, level) {
							nexts[w] = append(nexts[w], v)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, nx := range nexts {
			frontier = append(frontier, nx...)
		}
	}
	out := make([]int, g.N)
	for i, d := range dist {
		out[i] = int(d)
	}
	return out
}
