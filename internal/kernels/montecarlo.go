package kernels

import (
	"sync"

	"tenways/internal/workload"
)

// MonteCarloPi estimates π with n dart throws using nw workers, each with
// its own PRNG stream (the remedied form: no shared state at all). The
// wasteful forms — a shared locked counter, adjacent per-worker counters on
// one cache line — live in the W5/W9 experiments; this is the kernel they
// are compared against.
func MonteCarloPi(n, nw int, seed uint64) float64 {
	if nw < 1 {
		nw = 1
	}
	counts := make([]int64, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRand(seed + uint64(w)*0x9e37)
			local := int64(0)
			for i := w; i < n; i += nw {
				x := rng.Float64()
				y := rng.Float64()
				if x*x+y*y < 1 {
					local++
				}
			}
			counts[w] = local
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	return 4 * float64(total) / float64(n)
}
