package kernels

import (
	"math"
	"testing"

	"tenways/internal/workload"
)

func TestLaplacian2DStructure(t *testing.T) {
	n := 4
	a := Laplacian2D(n)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Rows != 16 {
		t.Fatalf("rows = %d", a.Rows)
	}
	// Row sums: 0 for interior points is wrong — the Laplacian with
	// Dirichlet boundary has positive row sums on boundary rows; interior
	// row (1,1)..(2,2) of a 4x4 grid has 4 neighbours -> sum 0.
	rowSum := func(r int) float64 {
		s := 0.0
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			s += a.Vals[k]
		}
		return s
	}
	if rowSum(0) != 2 { // corner: 4 - 1 - 1
		t.Fatalf("corner row sum = %g", rowSum(0))
	}
	if rowSum(5) != 0 { // interior (1,1)
		t.Fatalf("interior row sum = %g", rowSum(5))
	}
	// Symmetry.
	dense := make([][]float64, a.Rows)
	for i := range dense {
		dense[i] = make([]float64, a.Cols)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			dense[i][a.ColIdx[k]] = a.Vals[k]
		}
	}
	for i := range dense {
		for j := range dense {
			if dense[i][j] != dense[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestCGSolvesPoisson(t *testing.T) {
	n := 16
	a := Laplacian2D(n)
	dim := n * n
	// Manufactured solution: x* random, b = A x*.
	rng := workload.NewRand(12)
	xStar := make([]float64, dim)
	for i := range xStar {
		xStar[i] = rng.Float64()*2 - 1
	}
	b := make([]float64, dim)
	a.MulVec(xStar, b)

	x := make([]float64, dim)
	res, err := CG(a, b, x, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-xStar[i]) > 1e-6 {
			t.Fatalf("solution wrong at %d: %g vs %g", i, x[i], xStar[i])
		}
	}
	// CG on an SPD system of dimension d converges in <= d iterations;
	// for the Laplacian it should take far fewer.
	if res.Iterations >= dim {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := Laplacian2D(4)
	x := make([]float64, 16)
	res, err := CG(a, make([]float64, 16), x, 1e-8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs should converge immediately: %+v", res)
	}
}

func TestCGResidualMonotoneEnough(t *testing.T) {
	// The residual after maxIter=5 should be larger than after 50 (CG
	// residuals are not strictly monotone but improve over spans).
	n := 12
	a := Laplacian2D(n)
	dim := n * n
	b := make([]float64, dim)
	for i := range b {
		b[i] = 1
	}
	x5 := make([]float64, dim)
	r5, err := CG(a, b, x5, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	x50 := make([]float64, dim)
	r50, err := CG(a, b, x50, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r50.Residual >= r5.Residual {
		t.Fatalf("residual did not improve: %g -> %g", r5.Residual, r50.Residual)
	}
}

func TestCGNotSPDDetected(t *testing.T) {
	// A negative-definite operator must trip the breakdown check.
	a := &workload.CSR{Rows: 2, Cols: 2, RowPtr: []int{0, 1, 2},
		ColIdx: []int{0, 1}, Vals: []float64{-1, -1}}
	x := make([]float64, 2)
	_, err := CG(a, []float64{1, 1}, x, 1e-8, 10)
	if err != ErrNotSPD {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

func TestCGCommModel(t *testing.T) {
	std := CGCommModel{GridN: 1024, P: 16, S: 1}
	ca := CGCommModel{GridN: 1024, P: 16, S: 4}
	if std.AllreducesPerIteration() != 2 {
		t.Fatalf("standard CG allreduces = %g", std.AllreducesPerIteration())
	}
	if ca.AllreducesPerIteration() != 0.5 {
		t.Fatalf("s=4 allreduces = %g", ca.AllreducesPerIteration())
	}
	if ca.FlopsPerIteration() <= std.FlopsPerIteration() {
		t.Fatal("s-step must pay extra local flops")
	}
	if std.HaloWordsPerIteration() != 2048 {
		t.Fatalf("halo words = %d", std.HaloWordsPerIteration())
	}
	if (CGCommModel{GridN: 64, P: 1, S: 1}).HaloWordsPerIteration() != 0 {
		t.Fatal("single rank needs no halo")
	}
	if (CGCommModel{GridN: 64, P: 2, S: 0}).AllreducesPerIteration() != 2 {
		t.Fatal("s=0 should clamp to standard")
	}
}
