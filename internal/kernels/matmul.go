// Package kernels implements the scientific computing kernels the keynote
// draws its examples from — dense and sparse linear algebra, stencils,
// STREAM, FFT, n-body, sorting, graph traversal, Monte Carlo — each in a
// wasteful and a remedied form where the contrast matters, together with
// analytic operation counts (flops, DRAM bytes, communication volume) that
// feed the modeled experiments, and trace-driven variants that drive the
// cache simulator.
package kernels

import (
	"math"

	"tenways/internal/machine"
	"tenways/internal/mem"
	"tenways/internal/sched"
)

// MatMulNaive computes C = A·B for n×n row-major matrices with the classic
// triple loop in ijk order — the no-locality baseline (W1): the B column
// walk strides by n doubles per step.
func MatMulNaive(c, a, b []float64, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// MatMulBlocked computes C = A·B with square cache blocking of the given
// block size — the remedied W1 form: each block triple fits in cache, so
// every element is fetched from DRAM O(n/block) instead of O(n) times.
func MatMulBlocked(c, a, b []float64, n, block int) {
	if block < 1 || block > n {
		block = n
	}
	for i := range c[:n*n] {
		c[i] = 0
	}
	for ii := 0; ii < n; ii += block {
		for kk := 0; kk < n; kk += block {
			for jj := 0; jj < n; jj += block {
				iMax := min(ii+block, n)
				kMax := min(kk+block, n)
				jMax := min(jj+block, n)
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						aik := a[i*n+k]
						ci := c[i*n+jj : i*n+jMax]
						bk := b[k*n+jj : k*n+jMax]
						for j := range ci {
							ci[j] += aik * bk[j]
						}
					}
				}
			}
		}
	}
}

// MatMulParallel computes C = A·B with rows distributed over the pool and
// inner blocking for locality.
func MatMulParallel(p *sched.Pool, c, a, b []float64, n, block int) {
	if block < 1 || block > n {
		block = 64
	}
	p.ForEachChunked(n, block, func(i int) {
		for j := 0; j < n; j++ {
			c[i*n+j] = 0
		}
		for kk := 0; kk < n; kk += block {
			kMax := min(kk+block, n)
			for k := kk; k < kMax; k++ {
				aik := a[i*n+k]
				ci := c[i*n : i*n+n]
				bk := b[k*n : k*n+n]
				for j := range ci {
					ci[j] += aik * bk[j]
				}
			}
		}
	})
}

// MatMulFlops returns the flop count of an n×n matmul (2n³).
func MatMulFlops(n int) float64 { return 2 * float64(n) * float64(n) * float64(n) }

// MatMulTraced replays the address stream of C = A·B (blocked with the
// given block size; block >= n degenerates to naive ijk) against a cache
// hierarchy, without computing values. It is the trace source for the F1
// blocking figure. Matrices are laid out contiguously: A at 0, B at n²·8,
// C at 2n²·8.
func MatMulTraced(h *mem.Hierarchy, n, block int) {
	if block < 1 || block > n {
		block = n
	}
	aBase := uint64(0)
	bBase := uint64(n*n) * 8
	cBase := uint64(2*n*n) * 8
	addr := func(base uint64, i, j int) uint64 { return base + uint64(i*n+j)*8 }
	for ii := 0; ii < n; ii += block {
		for kk := 0; kk < n; kk += block {
			for jj := 0; jj < n; jj += block {
				iMax := min(ii+block, n)
				kMax := min(kk+block, n)
				jMax := min(jj+block, n)
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						h.Read(0, addr(aBase, i, k), 8)
						for j := jj; j < jMax; j++ {
							h.Read(0, addr(bBase, k, j), 8)
							h.Read(0, addr(cBase, i, j), 8)
							h.Write(0, addr(cBase, i, j), 8)
						}
					}
				}
			}
		}
	}
}

// CommAvoidingMatMul models the per-processor communication of parallel
// dense matmul on p processors with replication factor c (the 2.5D
// algorithm; c=1 is SUMMA/Cannon). Returned volumes are in words moved per
// processor; the memory multiplier reports the c× extra storage the
// replication costs — the communication/memory trade-off of
// communication-avoiding algorithms (F13, W2 remedy).
type CommAvoidingMatMul struct {
	N int // matrix dimension
	P int // processors
	C int // replication factor, 1 <= c <= p^(1/3)
}

// WordsPerProc returns the communication volume per processor in words:
// O(n² / sqrt(c·p)), the Ballard–Demmel–Holtz–Schwartz bound shape.
func (m CommAvoidingMatMul) WordsPerProc() float64 {
	n := float64(m.N)
	return 2 * n * n / math.Sqrt(float64(m.C)*float64(m.P))
}

// MessagesPerProc returns the per-processor message count:
// O(sqrt(p/c³)) + log(c).
func (m CommAvoidingMatMul) MessagesPerProc() float64 {
	return math.Sqrt(float64(m.P)/math.Pow(float64(m.C), 3)) + math.Log2(float64(m.C)+1)
}

// MemoryPerProcWords returns per-processor storage in words: 3cn²/p.
func (m CommAvoidingMatMul) MemoryPerProcWords() float64 {
	n := float64(m.N)
	return 3 * float64(m.C) * n * n / float64(m.P)
}

// CommSeconds returns the modeled communication time per processor on the
// machine: the bandwidth term for the moved words plus the latency term
// for the messages. Shared by the F13 figure and the F13 tunable.
func (m CommAvoidingMatMul) CommSeconds(spec *machine.Spec) float64 {
	return 8*m.WordsPerProc()/spec.Net.BytesPerSec + m.MessagesPerProc()*spec.MsgTimeSec(0)
}

// CommJoules returns the modeled communication energy per processor.
func (m CommAvoidingMatMul) CommJoules(spec *machine.Spec) float64 {
	perMsgBytes := 8 * m.WordsPerProc() / m.MessagesPerProc()
	return m.MessagesPerProc() * spec.MsgEnergyJ(perMsgBytes)
}

// MaxReplication returns the largest useful c for p processors: p^(1/3).
func MaxReplication(p int) int {
	c := int(math.Cbrt(float64(p)))
	if c < 1 {
		return 1
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
