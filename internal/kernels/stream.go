package kernels

import "tenways/internal/sched"

// The STREAM kernels: the canonical bandwidth-bound workloads whose
// arithmetic intensity sits far below every machine's ridge point (W8).

// Copy performs b[i] = a[i].
func Copy(b, a []float64) {
	copy(b, a)
}

// Scale performs b[i] = s·a[i].
func Scale(b, a []float64, s float64) {
	for i := range a {
		b[i] = s * a[i]
	}
}

// Add performs c[i] = a[i] + b[i].
func Add(c, a, b []float64) {
	for i := range a {
		c[i] = a[i] + b[i]
	}
}

// Triad performs c[i] = a[i] + s·b[i], the headline STREAM kernel.
func Triad(c, a, b []float64, s float64) {
	for i := range a {
		c[i] = a[i] + s*b[i]
	}
}

// TriadParallel runs Triad with the range split over the pool.
func TriadParallel(p *sched.Pool, c, a, b []float64, s float64) {
	p.ForEachStatic(len(a), func(i int) {
		c[i] = a[i] + s*b[i]
	})
}

// Dot returns Σ a[i]·b[i].
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// TriadFlops returns the flop count of an n-element triad (mul + add).
func TriadFlops(n int) float64 { return 2 * float64(n) }

// TriadBytes returns the DRAM bytes of an n-element triad: read a, read b,
// write c (write-allocate adds a read of c; we count the 3-stream model).
func TriadBytes(n int) float64 { return 24 * float64(n) }

// DotFlops returns the flop count of an n-element dot product.
func DotFlops(n int) float64 { return 2 * float64(n) }

// DotBytes returns the DRAM bytes of an n-element dot product.
func DotBytes(n int) float64 { return 16 * float64(n) }

// SpMVFlops returns the flop count of a CSR SpMV with the given nonzeros.
func SpMVFlops(nnz int) float64 { return 2 * float64(nnz) }

// SpMVBytes returns the streaming bytes of a CSR SpMV: 8B value + 4B index
// per nonzero, plus the row pointer and vectors (dominant term only).
func SpMVBytes(nnz int) float64 { return 12 * float64(nnz) }
