package kernels

import (
	"testing"
	"testing/quick"

	"tenways/internal/machine"
	"tenways/internal/mem"
	"tenways/internal/workload"
)

func TestTransposeCorrect(t *testing.T) {
	n := 17
	src := randMat(4, n)
	for _, block := range []int{1, 4, 8, 17, 64} {
		dst := make([]float64, n*n)
		TransposeBlocked(dst, src, n, block)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dst[j*n+i] != src[i*n+j] {
					t.Fatalf("block %d: (%d,%d) wrong", block, i, j)
				}
			}
		}
	}
	naive := make([]float64, n*n)
	TransposeNaive(naive, src, n)
	blocked := make([]float64, n*n)
	TransposeBlocked(blocked, src, n, 4)
	for i := range naive {
		if naive[i] != blocked[i] {
			t.Fatal("naive and blocked disagree")
		}
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%20 + 1
		rng := workload.NewRand(seed)
		src := make([]float64, n*n)
		for i := range src {
			src[i] = rng.Float64()
		}
		once := make([]float64, n*n)
		twice := make([]float64, n*n)
		TransposeBlocked(once, src, n, 4)
		TransposeBlocked(twice, once, n, 4)
		for i := range src {
			if twice[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeTracedBlockingHelps(t *testing.T) {
	n := 128
	spec := machine.Laptop2009()
	spec.Levels = []machine.LevelSpec{
		{Name: "L1", CapacityBytes: 4 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 4, PJPerByte: 0.6},
		{Name: "LLC", CapacityBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatencyCycles: 14, PJPerByte: 2, Shared: true},
	}
	run := func(block int) int64 {
		h, err := mem.NewHierarchy(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		TransposeTraced(h, n, block)
		return h.Stats().DRAMBytes
	}
	naive := run(n)
	blocked := run(8)
	if blocked >= naive {
		t.Fatalf("blocked transpose traffic %d should be below naive %d", blocked, naive)
	}
	// Blocked should be within 3x of compulsory traffic.
	if float64(blocked) > 3*TransposeBytesIdeal(n) {
		t.Fatalf("blocked traffic %d too far above ideal %g", blocked, TransposeBytesIdeal(n))
	}
}
