package kernels

import (
	"sort"
	"sync"

	"tenways/internal/sched"
	"tenways/internal/workload"
)

// SampleSort sorts xs in place using parallel sample sort: sample splitters,
// partition into p buckets, sort buckets concurrently, concatenate. It is
// the bulk-synchronous sorting workload of the integrated experiments.
func SampleSort(p *sched.Pool, xs []float64, seed uint64) {
	nw := p.Workers()
	if nw == 1 || len(xs) < 4*nw {
		sort.Float64s(xs)
		return
	}
	// Oversample: s·nw random elements, splitters at every s-th.
	const oversample = 16
	rng := workload.NewRand(seed)
	sample := make([]float64, oversample*nw)
	for i := range sample {
		sample[i] = xs[rng.Intn(len(xs))]
	}
	sort.Float64s(sample)
	splitters := make([]float64, nw-1)
	for i := range splitters {
		splitters[i] = sample[(i+1)*oversample]
	}
	// Partition into buckets.
	buckets := make([][]float64, nw)
	for _, x := range xs {
		b := sort.SearchFloat64s(splitters, x)
		buckets[b] = append(buckets[b], x)
	}
	// Sort buckets in parallel and write back.
	offsets := make([]int, nw+1)
	for i, b := range buckets {
		offsets[i+1] = offsets[i] + len(b)
	}
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sort.Float64s(buckets[i])
			copy(xs[offsets[i]:offsets[i+1]], buckets[i])
		}(i)
	}
	wg.Wait()
}

// SortFlopsApprox returns an operation-count proxy for sorting n keys:
// n·log2(n) comparisons.
func SortFlopsApprox(n int) float64 {
	if n < 2 {
		return 0
	}
	lg := 0.0
	for m := n; m > 1; m >>= 1 {
		lg++
	}
	return float64(n) * lg
}
