package kernels

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place iterative radix-2 Cooley–Tukey transform of x.
// len(x) must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("kernels: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j &^= bit
		}
		j |= bit
	}
	// Butterfly stages.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT computes the inverse transform (normalised by 1/n).
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
	return nil
}

// DFTNaive computes the O(n²) reference transform.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

// FFTFlops returns the standard flop count 5·n·log2(n).
func FFTFlops(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}

// FFTBytes returns the streaming bytes per out-of-cache pass: log2(n)
// passes over 16-byte complex values, read+write. A cache-blocked
// (communication-avoiding) FFT does O(log n / log Z) passes instead; the
// two bounds bracket the W1 story for FFT.
func FFTBytes(n int, cacheBytes int64) (naive, blocked float64) {
	passes := math.Log2(float64(n))
	naive = 32 * float64(n) * passes
	zWords := float64(cacheBytes) / 16
	if zWords < 2 {
		zWords = 2
	}
	blockedPasses := math.Ceil(passes / math.Log2(zWords))
	blocked = 32 * float64(n) * blockedPasses
	return naive, blocked
}
