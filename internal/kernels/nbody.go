package kernels

import (
	"math"

	"tenways/internal/sched"
)

// Bodies is a structure-of-arrays particle system in 2-D.
type Bodies struct {
	X, Y   []float64
	VX, VY []float64
	M      []float64
}

// NewBodies allocates n bodies at the given positions with unit mass.
func NewBodies(xs, ys []float64) *Bodies {
	n := len(xs)
	b := &Bodies{
		X:  append([]float64(nil), xs...),
		Y:  append([]float64(nil), ys...),
		VX: make([]float64, n), VY: make([]float64, n),
		M: make([]float64, n),
	}
	for i := range b.M {
		b.M[i] = 1
	}
	return b
}

// N returns the body count.
func (b *Bodies) N() int { return len(b.X) }

const softening = 1e-4

// forceOn accumulates the gravitational acceleration on body i.
func (b *Bodies) forceOn(i int) (ax, ay float64) {
	xi, yi := b.X[i], b.Y[i]
	for j := range b.X {
		if j == i {
			continue
		}
		dx := b.X[j] - xi
		dy := b.Y[j] - yi
		r2 := dx*dx + dy*dy + softening
		inv := 1 / (r2 * math.Sqrt(r2))
		ax += b.M[j] * dx * inv
		ay += b.M[j] * dy * inv
	}
	return ax, ay
}

// Step advances all bodies by dt with direct O(n²) force evaluation.
func (b *Bodies) Step(dt float64) {
	n := b.N()
	ax := make([]float64, n)
	ay := make([]float64, n)
	for i := 0; i < n; i++ {
		ax[i], ay[i] = b.forceOn(i)
	}
	b.integrate(ax, ay, dt)
}

// StepParallel advances all bodies with forces computed over the pool.
// Because per-body cost is uniform for direct n², the interesting
// imbalance case is the clustered-tree variant modelled analytically.
func (b *Bodies) StepParallel(p *sched.Pool, dt float64) {
	n := b.N()
	ax := make([]float64, n)
	ay := make([]float64, n)
	p.ForEachChunked(n, 32, func(i int) {
		ax[i], ay[i] = b.forceOn(i)
	})
	b.integrate(ax, ay, dt)
}

func (b *Bodies) integrate(ax, ay []float64, dt float64) {
	for i := range b.X {
		b.VX[i] += ax[i] * dt
		b.VY[i] += ay[i] * dt
		b.X[i] += b.VX[i] * dt
		b.Y[i] += b.VY[i] * dt
	}
}

// Energy returns the system's kinetic + potential energy (used to check
// the integrator approximately conserves it over short runs).
func (b *Bodies) Energy() float64 {
	e := 0.0
	for i := range b.X {
		e += 0.5 * b.M[i] * (b.VX[i]*b.VX[i] + b.VY[i]*b.VY[i])
		for j := i + 1; j < b.N(); j++ {
			dx := b.X[j] - b.X[i]
			dy := b.Y[j] - b.Y[i]
			r := math.Sqrt(dx*dx + dy*dy + softening)
			e -= b.M[i] * b.M[j] / r
		}
	}
	return e
}

// NBodyFlops returns the flop count of one direct step (≈20 per pair).
func NBodyFlops(n int) float64 { return 20 * float64(n) * float64(n) }

// NBodyIntensity returns the arithmetic intensity of the direct method
// when positions fit in cache: n² interactions over 32n streamed bytes —
// the flop-rich end of the roofline (W8's "good" kernel).
func NBodyIntensity(n int) float64 {
	return NBodyFlops(n) / (32 * float64(n))
}
