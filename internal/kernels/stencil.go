package kernels

import "tenways/internal/sched"

// Jacobi2DStep applies one 5-point Jacobi relaxation sweep on an
// (n+2)×(n+2) grid (one-cell halo), reading src and writing dst interior
// points: dst[i][j] = (src up + down + left + right) / 4.
func Jacobi2DStep(dst, src []float64, n int) {
	w := n + 2
	for i := 1; i <= n; i++ {
		row := i * w
		for j := 1; j <= n; j++ {
			dst[row+j] = 0.25 * (src[row+j-1] + src[row+j+1] + src[row-w+j] + src[row+w+j])
		}
	}
}

// Jacobi2DParallel runs one sweep with rows distributed over the pool.
func Jacobi2DParallel(p *sched.Pool, dst, src []float64, n int) {
	w := n + 2
	p.ForEachChunked(n, 16, func(r int) {
		i := r + 1
		row := i * w
		for j := 1; j <= n; j++ {
			dst[row+j] = 0.25 * (src[row+j-1] + src[row+j+1] + src[row-w+j] + src[row+w+j])
		}
	})
}

// Jacobi2DFlops returns the flop count of one sweep over an n×n interior
// (3 adds + 1 multiply per point).
func Jacobi2DFlops(n int) float64 { return 4 * float64(n) * float64(n) }

// Jacobi2DBytes returns the streaming DRAM bytes of one sweep when the
// grid does not fit in cache: read src once, write dst once.
func Jacobi2DBytes(n int) float64 { return 16 * float64(n+2) * float64(n+2) }

// HaloModel describes the per-step communication of a 1-D row-block
// decomposition of an n×n Jacobi grid over p ranks.
type HaloModel struct {
	N int // interior grid dimension
	P int // ranks
}

// RowsPerRank returns the interior rows owned by one rank (ceiling).
func (h HaloModel) RowsPerRank() int { return (h.N + h.P - 1) / h.P }

// HaloWords returns the words exchanged per rank per step with the
// remedied protocol: one row up, one row down.
func (h HaloModel) HaloWords() int {
	if h.P == 1 {
		return 0
	}
	return 2 * h.N
}

// WastefulWords returns the words exchanged per rank per step by the W2
// anti-pattern that re-fetches the full neighbour block instead of just
// the boundary row.
func (h HaloModel) WastefulWords() int {
	if h.P == 1 {
		return 0
	}
	return 2 * h.N * h.RowsPerRank()
}

// StepFlopsPerRank returns the per-rank flops of one sweep.
func (h HaloModel) StepFlopsPerRank() float64 {
	return 4 * float64(h.RowsPerRank()) * float64(h.N)
}

// StepBytesPerRank returns the per-rank streaming DRAM bytes of one sweep.
func (h HaloModel) StepBytesPerRank() float64 {
	return 16 * float64(h.RowsPerRank()+2) * float64(h.N+2)
}

// Jacobi3DStep applies one 7-point sweep on an (n+2)³ grid.
func Jacobi3DStep(dst, src []float64, n int) {
	w := n + 2
	plane := w * w
	inv6 := 1.0 / 6.0
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			base := i*plane + j*w
			for k := 1; k <= n; k++ {
				c := base + k
				dst[c] = inv6 * (src[c-1] + src[c+1] + src[c-w] + src[c+w] + src[c-plane] + src[c+plane])
			}
		}
	}
}

// Jacobi3DFlops returns the flop count of one 3-D sweep (5 adds + 1 mul).
func Jacobi3DFlops(n int) float64 { return 6 * float64(n) * float64(n) * float64(n) }
