package kernels

import (
	"errors"
	"math"

	"tenways/internal/workload"
)

// Laplacian2D builds the standard 5-point finite-difference Laplacian on
// an n×n grid as a CSR matrix (dimension n², symmetric positive definite) —
// the canonical test operator for iterative solvers.
func Laplacian2D(n int) *workload.CSR {
	dim := n * n
	m := &workload.CSR{Rows: dim, Cols: dim, RowPtr: make([]int, dim+1)}
	idx := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row := idx(i, j)
			add := func(c int, v float64) {
				m.ColIdx = append(m.ColIdx, c)
				m.Vals = append(m.Vals, v)
			}
			// CSR wants ascending column order.
			if i > 0 {
				add(idx(i-1, j), -1)
			}
			if j > 0 {
				add(idx(i, j-1), -1)
			}
			add(row, 4)
			if j < n-1 {
				add(idx(i, j+1), -1)
			}
			if i < n-1 {
				add(idx(i+1, j), -1)
			}
			m.RowPtr[row+1] = len(m.Vals)
		}
	}
	return m
}

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final ||b - Ax|| / ||b||
	Converged  bool
}

// ErrNotSPD reports a breakdown that indicates the operator is not
// symmetric positive definite.
var ErrNotSPD = errors.New("kernels: CG breakdown (operator not SPD?)")

// CG solves A·x = b by the conjugate gradient method, overwriting x
// (initial guess in, solution out). It stops when the relative residual
// drops below tol or after maxIter iterations.
func CG(a *workload.CSR, b, x []float64, tol float64, maxIter int) (CGResult, error) {
	n := a.Rows
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	// r = b - A x
	a.MulVec(x, ap)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	copy(p, r)
	rr := Dot(r, r)
	bNorm := math.Sqrt(Dot(b, b))
	if bNorm == 0 {
		bNorm = 1
	}
	res := CGResult{Residual: math.Sqrt(rr) / bNorm}
	if res.Residual < tol {
		res.Converged = true
		return res, nil
	}
	for it := 0; it < maxIter; it++ {
		a.MulVec(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 {
			return res, ErrNotSPD
		}
		alpha := rr / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := Dot(r, r)
		res.Iterations = it + 1
		res.Residual = math.Sqrt(rrNew) / bNorm
		if res.Residual < tol {
			res.Converged = true
			return res, nil
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	return res, nil
}

// CGCommModel models the communication of one distributed CG iteration on
// p ranks over a 1-D row-block decomposition of a grid Laplacian: a halo
// exchange for the SpMV plus allreduces for the two inner products. The
// s-step (communication-avoiding) variant batches s iterations per
// allreduce round at the price of sExtraFlopsFactor more local work — the
// trade Yelick's communication-avoiding Krylov work makes.
type CGCommModel struct {
	GridN int // Laplacian grid dimension (matrix dim = GridN²)
	P     int
	S     int // s-step blocking factor; 1 = standard CG
}

// AllreducesPerIteration returns the average number of global allreduces
// an iteration costs.
func (m CGCommModel) AllreducesPerIteration() float64 {
	s := m.S
	if s < 1 {
		s = 1
	}
	return 2.0 / float64(s)
}

// HaloWordsPerIteration returns the per-rank halo traffic of one SpMV.
func (m CGCommModel) HaloWordsPerIteration() int {
	if m.P == 1 {
		return 0
	}
	return 2 * m.GridN
}

// FlopsPerIteration returns the per-rank flops of one iteration: SpMV
// (~5 nonzeros per row × 2) plus the vector operations, multiplied by the
// s-step redundancy factor (the extra basis computations cost ≈ 50% more
// local work at moderate s).
func (m CGCommModel) FlopsPerIteration() float64 {
	rows := float64(m.GridN*m.GridN) / float64(m.P)
	base := rows * (2*5 + 10)
	if m.S > 1 {
		base *= 1.5
	}
	return base
}
