package kernels

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"
	"testing/quick"

	"tenways/internal/machine"
	"tenways/internal/mem"
	"tenways/internal/sched"
	"tenways/internal/workload"
)

func randMat(seed uint64, n int) []float64 {
	rng := workload.NewRand(seed)
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.Float64()*2 - 1
	}
	return m
}

func matsEqual(t *testing.T, name string, a, b []float64, tol float64) {
	t.Helper()
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			t.Fatalf("%s: element %d differs: %g vs %g", name, i, a[i], b[i])
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	n := 33 // odd, exercises ragged blocks
	a := randMat(1, n)
	b := randMat(2, n)
	ref := make([]float64, n*n)
	MatMulNaive(ref, a, b, n)

	for _, block := range []int{1, 4, 8, 16, 33, 64} {
		c := make([]float64, n*n)
		MatMulBlocked(c, a, b, n, block)
		matsEqual(t, "blocked", ref, c, 1e-9)
	}
	for _, workers := range []int{1, 4} {
		c := make([]float64, n*n)
		MatMulParallel(sched.NewPool(workers, nil), c, a, b, n, 8)
		matsEqual(t, "parallel", ref, c, 1e-9)
	}
}

func TestMatMulIdentity(t *testing.T) {
	n := 8
	a := randMat(3, n)
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	c := make([]float64, n*n)
	MatMulBlocked(c, a, id, n, 4)
	matsEqual(t, "A*I", a, c, 1e-12)
}

func TestMatMulFlops(t *testing.T) {
	if MatMulFlops(10) != 2000 {
		t.Fatalf("flops = %g", MatMulFlops(10))
	}
}

func TestMatMulTracedBlockingReducesTraffic(t *testing.T) {
	n := 48
	spec := machine.Laptop2009()
	// Shrink caches so n=48 (3 × 18 KiB matrices) exceeds them.
	spec.Levels = []machine.LevelSpec{
		{Name: "L1", CapacityBytes: 4 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 4, PJPerByte: 0.6},
		{Name: "L2", CapacityBytes: 16 << 10, LineBytes: 64, Assoc: 8, LatencyCycles: 12, PJPerByte: 2, Shared: true},
	}
	run := func(block int) int64 {
		h, err := mem.NewHierarchy(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		MatMulTraced(h, n, block)
		return h.Stats().DRAMBytes
	}
	naive := run(n)
	blocked := run(8)
	if blocked >= naive {
		t.Fatalf("blocked traffic %d should be below naive %d", blocked, naive)
	}
	if float64(naive)/float64(blocked) < 2 {
		t.Fatalf("blocking should cut traffic at least 2x, got %.2fx",
			float64(naive)/float64(blocked))
	}
}

func TestCommAvoidingModelShapes(t *testing.T) {
	p := 64
	base := CommAvoidingMatMul{N: 4096, P: p, C: 1}
	// Volume falls like 1/sqrt(c).
	for _, c := range []int{2, 4} {
		m := CommAvoidingMatMul{N: 4096, P: p, C: c}
		wantRatio := math.Sqrt(float64(c))
		gotRatio := base.WordsPerProc() / m.WordsPerProc()
		if math.Abs(gotRatio-wantRatio) > 1e-9 {
			t.Fatalf("c=%d: volume ratio %g, want %g", c, gotRatio, wantRatio)
		}
		if m.MemoryPerProcWords() != float64(c)*base.MemoryPerProcWords() {
			t.Fatalf("c=%d: memory not c×", c)
		}
	}
	if MaxReplication(64) != 4 {
		t.Fatalf("MaxReplication(64) = %d", MaxReplication(64))
	}
	if MaxReplication(1) != 1 {
		t.Fatalf("MaxReplication(1) = %d", MaxReplication(1))
	}
}

func TestJacobi2DStepKnownValues(t *testing.T) {
	n := 2
	w := n + 2
	src := make([]float64, w*w)
	dst := make([]float64, w*w)
	// Hot west boundary at 100.
	for i := 0; i < w; i++ {
		src[i*w] = 100
	}
	Jacobi2DStep(dst, src, n)
	if dst[1*w+1] != 25 { // (100+0+0+0)/4
		t.Fatalf("dst[1][1] = %g, want 25", dst[1*w+1])
	}
	if dst[1*w+2] != 0 {
		t.Fatalf("dst[1][2] = %g, want 0", dst[1*w+2])
	}
}

func TestJacobiParallelMatchesSequential(t *testing.T) {
	n := 31
	w := n + 2
	rng := workload.NewRand(5)
	src := make([]float64, w*w)
	for i := range src {
		src[i] = rng.Float64()
	}
	want := make([]float64, w*w)
	Jacobi2DStep(want, src, n)
	got := make([]float64, w*w)
	Jacobi2DParallel(sched.NewPool(4, nil), got, src, n)
	matsEqual(t, "jacobi", want, got, 0)
}

func TestJacobiConvergesToLaplaceSolution(t *testing.T) {
	// With all boundaries at 1, interior converges to 1.
	n := 8
	w := n + 2
	a := make([]float64, w*w)
	b := make([]float64, w*w)
	setBoundary := func(g []float64) {
		for i := 0; i < w; i++ {
			g[i] = 1
			g[(w-1)*w+i] = 1
			g[i*w] = 1
			g[i*w+w-1] = 1
		}
	}
	setBoundary(a)
	setBoundary(b)
	for it := 0; it < 2000; it++ {
		Jacobi2DStep(b, a, n)
		setBoundary(b)
		a, b = b, a
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if math.Abs(a[i*w+j]-1) > 1e-6 {
				t.Fatalf("interior (%d,%d) = %g, want 1", i, j, a[i*w+j])
			}
		}
	}
}

func TestJacobi3DStep(t *testing.T) {
	n := 3
	w := n + 2
	src := make([]float64, w*w*w)
	dst := make([]float64, w*w*w)
	for i := range src {
		src[i] = 6
	}
	Jacobi3DStep(dst, src, n)
	center := 2*w*w + 2*w + 2
	if dst[center] != 6 {
		t.Fatalf("uniform field should be fixed point: %g", dst[center])
	}
}

func TestHaloModel(t *testing.T) {
	h := HaloModel{N: 1024, P: 16}
	if h.HaloWords() != 2048 {
		t.Fatalf("halo words = %d", h.HaloWords())
	}
	if h.WastefulWords() <= h.HaloWords() {
		t.Fatal("wasteful exchange should exceed halo exchange")
	}
	if (HaloModel{N: 64, P: 1}).HaloWords() != 0 {
		t.Fatal("single rank needs no halo")
	}
	if h.RowsPerRank() != 64 {
		t.Fatalf("rows per rank = %d", h.RowsPerRank())
	}
}

func TestStreamKernels(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	c := make([]float64, 3)
	Triad(c, a, b, 2)
	if c[0] != 9 || c[2] != 15 {
		t.Fatalf("triad = %v", c)
	}
	Add(c, a, b)
	if c[1] != 7 {
		t.Fatalf("add = %v", c)
	}
	Scale(c, a, 3)
	if c[2] != 9 {
		t.Fatalf("scale = %v", c)
	}
	Copy(c, b)
	if c[0] != 4 {
		t.Fatalf("copy = %v", c)
	}
	if Dot(a, b) != 32 {
		t.Fatalf("dot = %g", Dot(a, b))
	}
	got := make([]float64, 3)
	TriadParallel(sched.NewPool(2, nil), got, a, b, 2)
	Triad(c, a, b, 2)
	matsEqual(t, "triad-par", c, got, 0)
}

func TestOpCountsPositive(t *testing.T) {
	if TriadFlops(10) != 20 || TriadBytes(10) != 240 {
		t.Fatal("triad counts")
	}
	if DotFlops(8) != 16 || DotBytes(8) != 128 {
		t.Fatal("dot counts")
	}
	if SpMVFlops(100) != 200 || SpMVBytes(100) != 1200 {
		t.Fatal("spmv counts")
	}
	if Jacobi2DFlops(10) != 400 {
		t.Fatal("jacobi flops")
	}
	if Jacobi3DFlops(10) != 6000 {
		t.Fatal("jacobi3d flops")
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := workload.NewRand(8)
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	want := DFTNaive(x)
	got := append([]complex128(nil), x...)
	if err := FFT(got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if cmplx.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("bin %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := workload.NewRand(9)
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
	}
	orig := append([]complex128(nil), x...)
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 6)); err == nil {
		t.Fatal("expected error")
	}
	if err := FFT(nil); err == nil {
		t.Fatal("expected error on empty")
	}
}

func TestFFTBytesBlockedBelowNaive(t *testing.T) {
	naive, blocked := FFTBytes(1<<20, 3<<20)
	if blocked >= naive {
		t.Fatalf("blocked %g should be below naive %g", blocked, naive)
	}
}

func TestNBodyEnergyApproxConserved(t *testing.T) {
	xs, ys := workload.Particles(4, 24, false)
	b := NewBodies(xs, ys)
	e0 := b.Energy()
	for s := 0; s < 20; s++ {
		b.Step(1e-5)
	}
	e1 := b.Energy()
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.05 {
		t.Fatalf("energy drifted %.2f%%", rel*100)
	}
}

func TestNBodyParallelMatchesSequential(t *testing.T) {
	xs, ys := workload.Particles(6, 40, true)
	a := NewBodies(xs, ys)
	b := NewBodies(xs, ys)
	a.Step(1e-4)
	b.StepParallel(sched.NewPool(4, nil), 1e-4)
	for i := range a.X {
		if math.Abs(a.X[i]-b.X[i]) > 1e-12 || math.Abs(a.Y[i]-b.Y[i]) > 1e-12 {
			t.Fatalf("body %d diverged", i)
		}
	}
}

func TestNBodyIntensityHigh(t *testing.T) {
	if NBodyIntensity(1024) < 100 {
		t.Fatalf("n-body intensity should be high: %g", NBodyIntensity(1024))
	}
}

func TestSampleSortSorts(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 5000} {
		for _, workers := range []int{1, 4} {
			rng := workload.NewRand(uint64(n + workers))
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Float64()*100 - 50
			}
			want := append([]float64(nil), xs...)
			sort.Float64s(want)
			SampleSort(sched.NewPool(workers, nil), xs, 1)
			for i := range want {
				if xs[i] != want[i] {
					t.Fatalf("n=%d workers=%d: mismatch at %d", n, workers, i)
				}
			}
		}
	}
}

func TestSampleSortProperty(t *testing.T) {
	f := func(vals []float64, workersRaw uint8) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) {
				clean = append(clean, v)
			}
		}
		workers := int(workersRaw)%6 + 1
		want := append([]float64(nil), clean...)
		sort.Float64s(want)
		SampleSort(sched.NewPool(workers, nil), clean, 7)
		for i := range want {
			if clean[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSCorrectOnKnownGraph(t *testing.T) {
	// 0 -> 1 -> 2, 0 -> 3; 4 isolated
	g := &workload.Graph{N: 5, Adj: [][]int{{1, 3}, {2}, {}, {}, {}}}
	want := []int{0, 1, 2, 1, -1}
	got := BFS(g, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFS = %v, want %v", got, want)
		}
	}
}

func TestBFSParallelMatchesSequential(t *testing.T) {
	g := workload.RMAT(21, 9, 8)
	want := BFS(g, 0)
	for _, nw := range []int{1, 2, 8} {
		got := BFSParallel(g, 0, nw)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("nw=%d: vertex %d: %d vs %d", nw, i, got[i], want[i])
			}
		}
	}
}

func TestMonteCarloPi(t *testing.T) {
	got := MonteCarloPi(2_000_00, 4, 99)
	if math.Abs(got-math.Pi) > 0.05 {
		t.Fatalf("pi estimate = %g", got)
	}
	// Deterministic for fixed seed and worker count.
	if MonteCarloPi(10000, 3, 5) != MonteCarloPi(10000, 3, 5) {
		t.Fatal("nondeterministic estimate")
	}
}

func TestSortFlopsApprox(t *testing.T) {
	if SortFlopsApprox(1) != 0 {
		t.Fatal("n=1 should be 0")
	}
	if SortFlopsApprox(1024) != 1024*10 {
		t.Fatalf("got %g", SortFlopsApprox(1024))
	}
}
