package kernels

import "tenways/internal/mem"

// TransposeNaive writes dst = srcᵀ for n×n row-major matrices with the
// textbook double loop: one of the two matrices is necessarily walked
// column-wise, touching a new cache line every element once n exceeds the
// cache — the purest W1 kernel after matmul.
func TransposeNaive(dst, src []float64, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst[j*n+i] = src[i*n+j]
		}
	}
}

// TransposeBlocked transposes in block×block tiles so both matrices stay
// cache-resident within a tile.
func TransposeBlocked(dst, src []float64, n, block int) {
	if block < 1 || block > n {
		block = n
	}
	for ii := 0; ii < n; ii += block {
		for jj := 0; jj < n; jj += block {
			iMax := min(ii+block, n)
			jMax := min(jj+block, n)
			for i := ii; i < iMax; i++ {
				for j := jj; j < jMax; j++ {
					dst[j*n+i] = src[i*n+j]
				}
			}
		}
	}
}

// TransposeTraced replays the blocked transpose's address stream against a
// cache hierarchy (block >= n degenerates to naive). Matrices: src at 0,
// dst at n²·8.
func TransposeTraced(h *mem.Hierarchy, n, block int) {
	if block < 1 || block > n {
		block = n
	}
	dstBase := uint64(n*n) * 8
	for ii := 0; ii < n; ii += block {
		for jj := 0; jj < n; jj += block {
			iMax := min(ii+block, n)
			jMax := min(jj+block, n)
			for i := ii; i < iMax; i++ {
				for j := jj; j < jMax; j++ {
					h.Read(0, uint64(i*n+j)*8, 8)
					h.Write(0, dstBase+uint64(j*n+i)*8, 8)
				}
			}
		}
	}
}

// TransposeBytesIdeal returns the compulsory DRAM traffic of an n×n
// transpose: read src once, write dst once.
func TransposeBytesIdeal(n int) float64 { return 16 * float64(n) * float64(n) }
