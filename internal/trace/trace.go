// Package trace attributes measured wall-clock time on the real-goroutine
// execution plane into the categories the keynote says parallel programs
// waste time in: computing, waiting on synchronisation, waiting on
// communication, stealing work, sitting idle, and executing serial
// sections. The core.Diagnose engine turns a trace breakdown into matched
// waste modes.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Category classifies where a worker's time went.
type Category int

// The categories, in presentation order.
const (
	Compute Category = iota
	SyncWait
	CommWait
	Steal
	Serial
	Idle
	Noise
	numCategories
)

// Categories lists all categories in presentation order.
func Categories() []Category {
	return []Category{Compute, SyncWait, CommWait, Steal, Serial, Idle, Noise}
}

// String names the category.
func (c Category) String() string {
	switch c {
	case Compute:
		return "compute"
	case SyncWait:
		return "sync-wait"
	case CommWait:
		return "comm-wait"
	case Steal:
		return "steal"
	case Serial:
		return "serial"
	case Idle:
		return "idle"
	case Noise:
		return "noise"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// workerClock is one worker's per-category nanosecond counters, padded to
// its own cache line so recording does not itself false-share (which would
// be a dark irony in this particular library).
type workerClock struct {
	ns [numCategories]int64
	_  [64 - (numCategories*8)%64]byte
}

// Recorder accumulates per-worker, per-category durations. Methods are safe
// for concurrent use by distinct workers; two goroutines must not share a
// worker index.
type Recorder struct {
	workers []workerClock
	started time.Time
	spanState
}

// NewRecorder creates a recorder for n workers and starts its wall clock.
func NewRecorder(n int) *Recorder {
	return &Recorder{workers: make([]workerClock, n), started: time.Now()}
}

// Workers returns the worker count.
func (r *Recorder) Workers() int { return len(r.workers) }

// Add charges d to the worker's category.
func (r *Recorder) Add(worker int, cat Category, d time.Duration) {
	atomic.AddInt64(&r.workers[worker].ns[cat], int64(d))
}

// Timed runs fn and charges its duration to the worker's category.
func (r *Recorder) Timed(worker int, cat Category, fn func()) {
	t0 := time.Now()
	fn()
	r.Add(worker, cat, time.Since(t0))
}

// Breakdown snapshots the recorder.
func (r *Recorder) Breakdown() Breakdown {
	b := Breakdown{
		Wall:      time.Since(r.started),
		PerWorker: make([]WorkerTimes, len(r.workers)),
	}
	for w := range r.workers {
		for c := Category(0); c < numCategories; c++ {
			d := time.Duration(atomic.LoadInt64(&r.workers[w].ns[c]))
			b.PerWorker[w].ByCategory[c] = d
			b.Total[c] += d
		}
	}
	return b
}

// WorkerTimes is one worker's per-category durations.
type WorkerTimes struct {
	ByCategory [numCategories]time.Duration
}

// Busy returns the worker's productive time (compute + serial).
func (w WorkerTimes) Busy() time.Duration {
	return w.ByCategory[Compute] + w.ByCategory[Serial]
}

// Breakdown is an immutable snapshot of a Recorder.
type Breakdown struct {
	Wall      time.Duration
	Total     [numCategories]time.Duration
	PerWorker []WorkerTimes
}

// Of returns the total time in the category.
func (b Breakdown) Of(cat Category) time.Duration { return b.Total[cat] }

// Sum returns total attributed time across all categories and workers.
func (b Breakdown) Sum() time.Duration {
	var s time.Duration
	for c := Category(0); c < numCategories; c++ {
		s += b.Total[c]
	}
	return s
}

// Fraction returns the category's share of all attributed time, 0 if none.
func (b Breakdown) Fraction(cat Category) float64 {
	s := b.Sum()
	if s == 0 {
		return 0
	}
	return float64(b.Total[cat]) / float64(s)
}

// Imbalance measures load imbalance over workers' busy time: the classic
// max/mean − 1 (0 = perfectly balanced, 1 = the busiest worker has twice
// the mean). Returns 0 when no busy time was recorded.
func (b Breakdown) Imbalance() float64 {
	if len(b.PerWorker) == 0 {
		return 0
	}
	var max, sum time.Duration
	for _, w := range b.PerWorker {
		busy := w.Busy()
		sum += busy
		if busy > max {
			max = busy
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(b.PerWorker))
	return float64(max)/mean - 1
}

// String renders the breakdown compactly, categories sorted by time.
func (b Breakdown) String() string {
	type kv struct {
		c Category
		d time.Duration
	}
	items := make([]kv, 0, len(Categories()))
	for _, c := range Categories() {
		if b.Total[c] > 0 {
			items = append(items, kv{c, b.Total[c]})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].d != items[j].d {
			return items[i].d > items[j].d
		}
		return items[i].c < items[j].c
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "wall=%v", b.Wall.Round(time.Microsecond))
	for _, it := range items {
		fmt.Fprintf(&sb, " %s=%v(%.0f%%)", it.c, it.d.Round(time.Microsecond), 100*b.Fraction(it.c))
	}
	return sb.String()
}
