package trace

import (
	"strings"
	"testing"
	"time"
)

func TestAddIntervalRecordsCounterAndSpan(t *testing.T) {
	r := NewRecorder(2)
	r.EnableSpans(10)
	base := r.started
	r.AddInterval(1, Compute, base.Add(time.Millisecond), base.Add(3*time.Millisecond))
	b := r.Breakdown()
	if b.Of(Compute) != 2*time.Millisecond {
		t.Fatalf("counter = %v", b.Of(Compute))
	}
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	s := spans[0]
	if s.Worker != 1 || s.Cat != Compute {
		t.Fatalf("span = %+v", s)
	}
	if s.Start != time.Millisecond || s.End != 3*time.Millisecond {
		t.Fatalf("span bounds = %v..%v", s.Start, s.End)
	}
	if s.Duration() != 2*time.Millisecond {
		t.Fatalf("duration = %v", s.Duration())
	}
}

func TestAddIntervalSwapsReversedBounds(t *testing.T) {
	r := NewRecorder(1)
	base := r.started
	r.AddInterval(0, SyncWait, base.Add(5*time.Millisecond), base.Add(2*time.Millisecond))
	if got := r.Breakdown().Of(SyncWait); got != 3*time.Millisecond {
		t.Fatalf("reversed interval = %v", got)
	}
}

func TestSpansCapRespected(t *testing.T) {
	r := NewRecorder(1)
	r.EnableSpans(3)
	base := r.started
	for i := 0; i < 10; i++ {
		r.AddInterval(0, Compute, base, base.Add(time.Millisecond))
	}
	if got := len(r.Spans()); got != 3 {
		t.Fatalf("retained %d spans, want 3", got)
	}
	// Counters keep accumulating past the cap.
	if got := r.Breakdown().Of(Compute); got != 10*time.Millisecond {
		t.Fatalf("counter = %v", got)
	}
}

func TestSpansDisabledByDefault(t *testing.T) {
	r := NewRecorder(1)
	r.AddInterval(0, Compute, r.started, r.started.Add(time.Millisecond))
	if len(r.Spans()) != 0 {
		t.Fatal("spans recorded without EnableSpans")
	}
}

func TestSpansSortedByStart(t *testing.T) {
	r := NewRecorder(2)
	r.EnableSpans(10)
	base := r.started
	r.AddInterval(0, Compute, base.Add(5*time.Millisecond), base.Add(6*time.Millisecond))
	r.AddInterval(1, Compute, base.Add(1*time.Millisecond), base.Add(2*time.Millisecond))
	spans := r.Spans()
	if spans[0].Worker != 1 || spans[1].Worker != 0 {
		t.Fatalf("spans not sorted: %+v", spans)
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	r := NewRecorder(1)
	r.EnableSpans(10)
	base := r.started
	r.AddInterval(0, Steal, base.Add(time.Millisecond), base.Add(2*time.Millisecond))
	var sb strings.Builder
	if err := r.WriteTimelineCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "worker,category,start_us,end_us\n") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "0,steal,1000.0,2000.0") {
		t.Fatalf("row missing:\n%s", out)
	}
}

func TestEnableSpansMinimumCap(t *testing.T) {
	r := NewRecorder(1)
	r.EnableSpans(0)
	r.AddInterval(0, Compute, r.started, r.started.Add(time.Millisecond))
	if len(r.Spans()) != 1 {
		t.Fatal("cap of 0 should clamp to 1")
	}
}
