package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestAddIntervalRecordsCounterAndSpan(t *testing.T) {
	r := NewRecorder(2)
	r.EnableSpans(10)
	base := r.started
	r.AddInterval(1, Compute, base.Add(time.Millisecond), base.Add(3*time.Millisecond))
	b := r.Breakdown()
	if b.Of(Compute) != 2*time.Millisecond {
		t.Fatalf("counter = %v", b.Of(Compute))
	}
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	s := spans[0]
	if s.Worker != 1 || s.Cat != Compute {
		t.Fatalf("span = %+v", s)
	}
	if s.Start != time.Millisecond || s.End != 3*time.Millisecond {
		t.Fatalf("span bounds = %v..%v", s.Start, s.End)
	}
	if s.Duration() != 2*time.Millisecond {
		t.Fatalf("duration = %v", s.Duration())
	}
}

func TestAddIntervalSwapsReversedBounds(t *testing.T) {
	r := NewRecorder(1)
	base := r.started
	r.AddInterval(0, SyncWait, base.Add(5*time.Millisecond), base.Add(2*time.Millisecond))
	if got := r.Breakdown().Of(SyncWait); got != 3*time.Millisecond {
		t.Fatalf("reversed interval = %v", got)
	}
}

func TestSpansCapRespected(t *testing.T) {
	r := NewRecorder(1)
	r.EnableSpans(3)
	base := r.started
	for i := 0; i < 10; i++ {
		r.AddInterval(0, Compute, base, base.Add(time.Millisecond))
	}
	if got := len(r.Spans()); got != 3 {
		t.Fatalf("retained %d spans, want 3", got)
	}
	// Counters keep accumulating past the cap.
	if got := r.Breakdown().Of(Compute); got != 10*time.Millisecond {
		t.Fatalf("counter = %v", got)
	}
}

func TestSpansDisabledByDefault(t *testing.T) {
	r := NewRecorder(1)
	r.AddInterval(0, Compute, r.started, r.started.Add(time.Millisecond))
	if len(r.Spans()) != 0 {
		t.Fatal("spans recorded without EnableSpans")
	}
}

func TestSpansSortedByStart(t *testing.T) {
	r := NewRecorder(2)
	r.EnableSpans(10)
	base := r.started
	r.AddInterval(0, Compute, base.Add(5*time.Millisecond), base.Add(6*time.Millisecond))
	r.AddInterval(1, Compute, base.Add(1*time.Millisecond), base.Add(2*time.Millisecond))
	spans := r.Spans()
	if spans[0].Worker != 1 || spans[1].Worker != 0 {
		t.Fatalf("spans not sorted: %+v", spans)
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	r := NewRecorder(1)
	r.EnableSpans(10)
	base := r.started
	r.AddInterval(0, Steal, base.Add(time.Millisecond), base.Add(2*time.Millisecond))
	var sb strings.Builder
	if err := r.WriteTimelineCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "worker,category,start_us,end_us\n") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "0,steal,1000.0,2000.0") {
		t.Fatalf("row missing:\n%s", out)
	}
}

func TestWriteTimelineCSVGanttLayout(t *testing.T) {
	// The CSV is a Gantt chart's input: a fixed 4-column layout and one row
	// per span, sorted by start time regardless of attribution order.
	r := NewRecorder(3)
	r.EnableSpans(10)
	base := r.started
	r.AddInterval(2, SyncWait, base.Add(4*time.Millisecond), base.Add(6*time.Millisecond))
	r.AddInterval(0, Compute, base.Add(1*time.Millisecond), base.Add(3*time.Millisecond))
	r.AddInterval(1, CommWait, base.Add(2*time.Millisecond), base.Add(5*time.Millisecond))
	var sb strings.Builder
	if err := r.WriteTimelineCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(lines), sb.String())
	}
	if lines[0] != "worker,category,start_us,end_us" {
		t.Fatalf("header = %q", lines[0])
	}
	want := []string{
		"0,compute,1000.0,3000.0",
		"1,comm-wait,2000.0,5000.0",
		"2,sync-wait,4000.0,6000.0",
	}
	for i, w := range want {
		if lines[i+1] != w {
			t.Fatalf("row %d = %q, want %q (rows must be sorted by start)", i, lines[i+1], w)
		}
	}
	var prev float64
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 4 {
			t.Fatalf("row %q has %d columns, want 4", line, len(cols))
		}
		var start float64
		if _, err := fmt.Sscan(cols[2], &start); err != nil {
			t.Fatalf("bad start_us in %q: %v", line, err)
		}
		if start < prev {
			t.Fatalf("rows not sorted by start_us:\n%s", sb.String())
		}
		prev = start
	}
}

func TestEnableSpansMinimumCap(t *testing.T) {
	r := NewRecorder(1)
	r.EnableSpans(0)
	r.AddInterval(0, Compute, r.started, r.started.Add(time.Millisecond))
	if len(r.Spans()) != 1 {
		t.Fatal("cap of 0 should clamp to 1")
	}
}
