package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndBreakdown(t *testing.T) {
	r := NewRecorder(2)
	r.Add(0, Compute, 100*time.Millisecond)
	r.Add(0, SyncWait, 50*time.Millisecond)
	r.Add(1, Compute, 200*time.Millisecond)
	b := r.Breakdown()
	if b.Of(Compute) != 300*time.Millisecond {
		t.Fatalf("compute = %v", b.Of(Compute))
	}
	if b.Of(SyncWait) != 50*time.Millisecond {
		t.Fatalf("sync = %v", b.Of(SyncWait))
	}
	if b.Sum() != 350*time.Millisecond {
		t.Fatalf("sum = %v", b.Sum())
	}
}

func TestFraction(t *testing.T) {
	r := NewRecorder(1)
	r.Add(0, Compute, 75*time.Millisecond)
	r.Add(0, SyncWait, 25*time.Millisecond)
	b := r.Breakdown()
	if math.Abs(b.Fraction(SyncWait)-0.25) > 1e-9 {
		t.Fatalf("fraction = %g", b.Fraction(SyncWait))
	}
	var empty Breakdown
	if empty.Fraction(Compute) != 0 {
		t.Fatal("empty fraction should be 0")
	}
}

func TestImbalance(t *testing.T) {
	r := NewRecorder(2)
	r.Add(0, Compute, 300*time.Millisecond)
	r.Add(1, Compute, 100*time.Millisecond)
	b := r.Breakdown()
	// mean=200ms, max=300ms -> 0.5
	if math.Abs(b.Imbalance()-0.5) > 1e-9 {
		t.Fatalf("imbalance = %g", b.Imbalance())
	}
	balanced := NewRecorder(2)
	balanced.Add(0, Compute, 100*time.Millisecond)
	balanced.Add(1, Compute, 100*time.Millisecond)
	if got := balanced.Breakdown().Imbalance(); math.Abs(got) > 1e-9 {
		t.Fatalf("balanced imbalance = %g", got)
	}
	if (Breakdown{}).Imbalance() != 0 {
		t.Fatal("empty imbalance should be 0")
	}
}

func TestImbalanceCountsSerialAsBusy(t *testing.T) {
	r := NewRecorder(2)
	r.Add(0, Serial, 100*time.Millisecond)
	r.Add(1, Compute, 100*time.Millisecond)
	if got := r.Breakdown().Imbalance(); math.Abs(got) > 1e-9 {
		t.Fatalf("imbalance = %g", got)
	}
}

func TestTimedCharges(t *testing.T) {
	r := NewRecorder(1)
	r.Timed(0, Compute, func() { time.Sleep(5 * time.Millisecond) })
	b := r.Breakdown()
	if b.Of(Compute) < 4*time.Millisecond {
		t.Fatalf("timed recorded only %v", b.Of(Compute))
	}
}

func TestConcurrentWorkers(t *testing.T) {
	const n = 8
	r := NewRecorder(n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(w, Compute, time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	b := r.Breakdown()
	if b.Of(Compute) != n*1000*time.Microsecond {
		t.Fatalf("compute = %v", b.Of(Compute))
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		Compute: "compute", SyncWait: "sync-wait", CommWait: "comm-wait",
		Steal: "steal", Serial: "serial", Idle: "idle", Noise: "noise",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if !strings.HasPrefix(Category(99).String(), "category(") {
		t.Error("unknown category string")
	}
	if len(Categories()) != int(numCategories) {
		t.Errorf("Categories() misses entries")
	}
}

// TestCategoriesAllNamed guards the String switch against a category being
// added to Categories() without a name: every listed category must render
// something other than the default "category(N)" fallback, and names must
// be unique.
func TestCategoriesAllNamed(t *testing.T) {
	seen := map[string]Category{}
	for _, c := range Categories() {
		s := c.String()
		if strings.HasPrefix(s, "category(") {
			t.Errorf("category %d has no name (got %q)", c, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("categories %d and %d share the name %q", prev, c, s)
		}
		seen[s] = c
	}
}

func TestBreakdownString(t *testing.T) {
	r := NewRecorder(1)
	r.Add(0, SyncWait, 10*time.Millisecond)
	s := r.Breakdown().String()
	if !strings.Contains(s, "sync-wait") || !strings.Contains(s, "wall=") {
		t.Fatalf("string = %q", s)
	}
}

func TestWallClockAdvances(t *testing.T) {
	r := NewRecorder(1)
	time.Sleep(2 * time.Millisecond)
	if r.Breakdown().Wall < time.Millisecond {
		t.Fatal("wall clock did not advance")
	}
}
