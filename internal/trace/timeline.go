package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one contiguous interval of a worker's time in a category,
// expressed as offsets from the recorder's start.
type Span struct {
	Worker int
	Cat    Category
	Start  time.Duration
	End    time.Duration
}

// Duration returns the span's length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// EnableSpans turns on span recording with a cap on retained spans
// (oldest kept; further spans still update the counters but are not
// retained). Call before the workload starts.
func (r *Recorder) EnableSpans(max int) {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	r.spansOn = true
	if max < 1 {
		max = 1
	}
	r.spanCap = max
}

// AddInterval charges [start, end) to the worker's category, recording a
// span when span recording is enabled. It is the preferred attribution
// call for schedulers, since it preserves the timeline.
func (r *Recorder) AddInterval(worker int, cat Category, start, end time.Time) {
	if end.Before(start) {
		start, end = end, start
	}
	r.Add(worker, cat, end.Sub(start))
	if !r.spansOn {
		return
	}
	r.spanMu.Lock()
	if len(r.spans) < r.spanCap {
		r.spans = append(r.spans, Span{
			Worker: worker,
			Cat:    cat,
			Start:  start.Sub(r.started),
			End:    end.Sub(r.started),
		})
	}
	r.spanMu.Unlock()
}

// Spans returns the retained spans sorted by start time (ties by worker).
func (r *Recorder) Spans() []Span {
	r.spanMu.Lock()
	out := append([]Span(nil), r.spans...)
	r.spanMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// WriteTimelineCSV emits the retained spans as
// "worker,category,start_us,end_us" rows — a Gantt chart's input.
func (r *Recorder) WriteTimelineCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "worker,category,start_us,end_us"); err != nil {
		return err
	}
	for _, s := range r.Spans() {
		_, err := fmt.Fprintf(w, "%d,%s,%.1f,%.1f\n",
			s.Worker, s.Cat,
			float64(s.Start)/float64(time.Microsecond),
			float64(s.End)/float64(time.Microsecond))
		if err != nil {
			return err
		}
	}
	return nil
}

// spanState holds the optional span machinery; it lives in Recorder.
type spanState struct {
	spanMu  sync.Mutex
	spansOn bool
	spanCap int
	spans   []Span
}
