// Package obs is the lab's dependency-free metrics layer: named counters,
// gauges, histograms with fixed log-scale buckets, and timers, grouped in a
// Registry. Every instrument is safe for concurrent use (the parallel lab
// runner executes experiments on a bounded worker pool, and the measured
// plane's pools and jitter goroutines record from real threads), and a
// Registry can be snapshotted at any time into a plain, JSON-serialisable
// Snapshot that merges associatively across registries.
//
// The instrumented hot paths — the sim event loop, the collectives, the
// scheduler pools, the chaos injectors, the tuner — each write to the
// Registry they were handed, defaulting to the process-wide Default()
// registry. core.Lab.RunAll hands every experiment a fresh Registry, so a
// RunResult carries exactly the metric activity of its own experiment even
// when eight of them run at once.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is tolerated but makes the counter a gauge in
// spirit; prefer Gauge for that).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an accumulating float metric (seconds of idle time, joules,
// injected delay). Add accumulates; Set overwrites. Snapshots merge gauges
// by summing, so treat a Gauge as an accumulator when results will be
// aggregated.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates d into the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket layout: fixed base-2 log-scale buckets covering
// [2^histMinExp, 2^histMaxExp). Observations below the range land in the
// first bucket, at or above it in the last. The range spans from well under
// a nanosecond to a few billion, which covers every quantity the lab
// observes (seconds, bytes, events).
const (
	histMinExp  = -31
	histMaxExp  = 33
	histBuckets = histMaxExp - histMinExp // 64
)

// Histogram counts observations into fixed log-scale buckets and tracks
// their sum and count. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	// The bucket array, the sum, and the count are all written on every
	// Observe; without padding they would share cache lines and ping-pong
	// between recording cores — the W9 waste this lab models.
	_       [56]byte
	sumBits atomic.Uint64
	_       [56]byte
	count   atomic.Uint64
}

// bucketOf returns the bucket index for v: floor(log2(v)) clamped to the
// fixed range. Computed with Frexp, not Log, so boundary values bucket
// deterministically on every platform.
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	// Frexp: v = frac * 2^exp with frac in [0.5, 1), so floor(log2(v)) is
	// exp-1 exactly, powers of two included (8 = 0.5 * 2^4 -> exp-1 = 3).
	// A boundary value 2^k therefore lands in the bucket whose half-open
	// range [2^k, 2^(k+1)) starts at it.
	_, exp := math.Frexp(v)
	i := exp - 1 - histMinExp
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketUpperBound returns the exclusive upper bound of bucket i (the "le"
// edge reported in snapshots). The last bucket reports +Inf.
func BucketUpperBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, histMinExp+i+1)
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Timer records durations, in seconds, into a histogram.
type Timer struct {
	h *Histogram
}

// Observe records an already-measured duration in seconds (virtual or
// wall-clock; the lab records simulated makespans too).
func (t *Timer) Observe(seconds float64) { t.h.Observe(seconds) }

// Start begins a wall-clock measurement; the returned stop function records
// the elapsed time and returns it.
func (t *Timer) Start() func() time.Duration {
	t0 := time.Now()
	return func() time.Duration {
		d := time.Since(t0)
		t.h.Observe(d.Seconds())
		return d
	}
}

// Time measures fn's wall-clock duration.
func (t *Timer) Time(fn func()) { stop := t.Start(); fn(); stop() }

// Registry is a named set of instruments. Get-or-create accessors hand out
// stable pointers, so hot paths fetch their instruments once and then touch
// only atomics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	sharded  map[string]*ShardedCounter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		sharded:  make(map[string]*ShardedCounter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var def = NewRegistry()

// Default returns the process-wide registry, the sink for instrumented code
// that was not handed a more specific one.
func Default() *Registry { return def }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Timer returns a timer over the named histogram.
func (r *Registry) Timer(name string) *Timer { return &Timer{h: r.Histogram(name)} }

// names returns the sorted keys of a map, for deterministic iteration.
func names[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
