package obs

import (
	"sync"
	"testing"
)

func TestShardedCounterBasics(t *testing.T) {
	var c ShardedCounter
	if c.Value() != 0 {
		t.Fatal("zero value should read 0")
	}
	c.Inc()
	c.Add(41)
	if v := c.Value(); v != 42 {
		t.Fatalf("Value = %d, want 42", v)
	}
	if c.Slots() < 1 {
		t.Fatal("expected at least one slot after writes")
	}
}

func TestShardedCounterConcurrentSum(t *testing.T) {
	var c ShardedCounter
	const goroutines, perG = 16, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if v := c.Value(); v != goroutines*perG {
		t.Fatalf("Value = %d, want %d (no lost updates)", v, goroutines*perG)
	}
}

func TestRegistryShardedSnapshotFoldsIntoCounters(t *testing.T) {
	r := NewRegistry()
	r.Sharded("serve.requests").Add(7)
	r.Counter("serve.errors").Add(2)
	s := r.Snapshot()
	if got := s.Counter("serve.requests"); got != 7 {
		t.Fatalf("snapshot serve.requests = %d, want 7", got)
	}
	if got := s.Counter("serve.errors"); got != 2 {
		t.Fatalf("snapshot serve.errors = %d, want 2", got)
	}
	// Same instrument handed back on re-request.
	if r.Sharded("serve.requests") != r.Sharded("serve.requests") {
		t.Fatal("Sharded should return a stable pointer")
	}
	// Sharded and plain counters under one name sum rather than shadow.
	r.Counter("both").Add(1)
	r.Sharded("both").Add(2)
	if got := r.Snapshot().Counter("both"); got != 3 {
		t.Fatalf("merged name = %d, want 3", got)
	}
}

func TestShardedSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Sharded("x").Add(5)
	b.Sharded("x").Add(6)
	m := a.Snapshot().Merge(b.Snapshot())
	if got := m.Counter("x"); got != 11 {
		t.Fatalf("merged x = %d, want 11", got)
	}
}

// The benchmark pair the ROADMAP asks for: a single atomic counter vs the
// per-CPU sharded one, incremented from every P at once. The single atomic
// serialises every increment through one cache line (W5/W9 in miniature);
// the sharded counter keeps each P on its own padded line.

func BenchmarkCounterParallel(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("count = %d, want %d", c.Value(), b.N)
	}
}

func BenchmarkShardedCounterParallel(b *testing.B) {
	var c ShardedCounter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("count = %d, want %d", c.Value(), b.N)
	}
}
