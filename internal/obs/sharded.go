package obs

import (
	"sync"
	"sync/atomic"
)

// counterSlot is one shard of a ShardedCounter: a single atomic padded out
// to its own cache line so slots written by different cores never share a
// line (the W9 false-sharing waste this lab models — and, per perfbook's
// per-CPU statistical counters, the remedy the daemon's hot-path counters
// need to stay off the profile).
type counterSlot struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a statistically sharded counter in the style of
// perfbook's per-CPU counters: writers add to a slot that is, with high
// probability, private to their P, so concurrent increments from many
// cores do not ping-pong one cache line the way a single atomic does.
// Reads (Value) sum all slots and are comparatively expensive — exactly
// the read-rarely/write-often trade the daemon's request counters want.
//
// Slot affinity rides on sync.Pool, whose Get prefers a per-P private
// item: a goroutine running on P usually gets the slot last used on P,
// with no unsafe, no runtime linkname, and graceful degradation (a missed
// affinity is still correct, just a shared line for that one add). The
// zero value is ready to use.
type ShardedCounter struct {
	mu    sync.Mutex
	slots []*counterSlot // every slot ever handed out; Value sums these
	pool  sync.Pool
}

// Add adds n to the counter.
func (c *ShardedCounter) Add(n int64) {
	s, _ := c.pool.Get().(*counterSlot)
	if s == nil {
		s = &counterSlot{}
		c.mu.Lock()
		c.slots = append(c.slots, s)
		c.mu.Unlock()
	}
	s.v.Add(n)
	c.pool.Put(s)
}

// Inc adds one.
func (c *ShardedCounter) Inc() { c.Add(1) }

// Value returns the current count: the sum over all slots. The sum is
// per-slot-atomic, not globally atomic — concurrent adds may or may not be
// included, the same guarantee a single atomic read gives a concurrent
// increment.
func (c *ShardedCounter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, s := range c.slots {
		total += s.v.Load()
	}
	return total
}

// Slots returns the number of shards currently backing the counter (it
// grows toward the number of Ps that have written, and can grow past it
// when the GC clears the pool's caches).
func (c *ShardedCounter) Slots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slots)
}

// Sharded returns the named sharded counter, creating it on first use.
// Snapshots fold sharded counters into the same Counters map as plain
// ones, so consumers see one namespace either way; pick Sharded for
// counters written from many goroutines at once (the daemon's request
// path) and Counter for everything else.
func (r *Registry) Sharded(name string) *ShardedCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.sharded[name]
	if !ok {
		c = &ShardedCounter{}
		r.sharded[name] = c
	}
	return c
}
