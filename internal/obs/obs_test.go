package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("get-or-create should return the same counter")
	}
	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(0.25)
	if g.Value() != 1.75 {
		t.Fatalf("gauge = %g, want 1.75", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	// Boundary values must bucket deterministically: 2^k starts the bucket
	// [2^k, 2^(k+1)).
	cases := []struct {
		v    float64
		want int
	}{
		{1, -histMinExp},         // [1, 2)
		{1.999, -histMinExp},     // still [1, 2)
		{2, -histMinExp + 1},     // [2, 4)
		{0.5, -histMinExp - 1},   // [0.5, 1)
		{1e-30, 0},               // underflow clamps to the first bucket
		{0, 0},                   // non-positive clamps too
		{-3, 0},                  //
		{math.NaN(), 0},          //
		{1e300, histBuckets - 1}, // overflow clamps to the last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's lower edge must land in that bucket, and the upper
	// bound must be exclusive.
	for i := 1; i < histBuckets-1; i++ {
		lo := math.Ldexp(1, histMinExp+i)
		if got := bucketOf(lo); got != i {
			t.Fatalf("lower edge of bucket %d (%g) bucketed to %d", i, lo, got)
		}
		if got := bucketOf(BucketUpperBound(i)); got != i+1 {
			t.Fatalf("upper bound of bucket %d bucketed to %d, want %d", i, got, i+1)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []float64{1, 1.5, 3, 1024} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1029.5 {
		t.Fatalf("sum = %g", h.Sum())
	}
	s := r.Snapshot()
	hs, ok := s.Histograms["h"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 4 || hs.Mean() != 1029.5/4 {
		t.Fatalf("snapshot count/mean = %d/%g", hs.Count, hs.Mean())
	}
	// 1 and 1.5 share the [1,2) bucket; 3 and 1024 have their own.
	if len(hs.Buckets) != 3 {
		t.Fatalf("buckets = %+v, want 3 entries", hs.Buckets)
	}
	if hs.Buckets[0].Count != 2 {
		t.Fatalf("first bucket count = %d, want 2", hs.Buckets[0].Count)
	}
}

func TestSnapshotOmitsZeroInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("touched-but-zero")
	r.Gauge("zero")
	r.Histogram("empty")
	s := r.Snapshot()
	if !s.Empty() {
		t.Fatalf("zero-valued instruments leaked into snapshot: %s", s)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("n").Add(3)
	a.Gauge("t").Add(1.5)
	a.Histogram("h").Observe(1)
	a.Histogram("h").Observe(100)

	b := NewRegistry()
	b.Counter("n").Add(4)
	b.Counter("only-b").Inc()
	b.Gauge("t").Add(0.5)
	b.Histogram("h").Observe(1.25)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counter("n") != 7 || m.Counter("only-b") != 1 {
		t.Fatalf("merged counters: %+v", m.Counters)
	}
	if m.Gauge("t") != 2 {
		t.Fatalf("merged gauge = %g", m.Gauge("t"))
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Sum != 102.25 {
		t.Fatalf("merged histogram count/sum = %d/%g", h.Count, h.Sum)
	}
	// 1 and 1.25 share [1,2): merged bucketwise.
	if len(h.Buckets) != 2 || h.Buckets[0].Count != 2 {
		t.Fatalf("merged buckets: %+v", h.Buckets)
	}
	// Merge must not mutate its inputs.
	sa := a.Snapshot()
	if sa.Counter("n") != 3 || sa.Histograms["h"].Count != 2 {
		t.Fatal("merge mutated its receiver's source")
	}
	// Merge with the empty snapshot is identity.
	id := sa.Merge(Snapshot{})
	if id.Counter("n") != 3 || len(id.Histograms["h"].Buckets) != len(sa.Histograms["h"].Buckets) {
		t.Fatal("identity merge changed the snapshot")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("events").Add(42)
	r.Gauge("seconds").Add(0.125)
	r.Histogram("wall").Observe(1e300) // lands in the capped overflow bucket
	s := r.Snapshot()
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("events") != 42 || back.Gauge("seconds") != 0.125 {
		t.Fatalf("round trip lost values: %s", back)
	}
	if back.Histograms["wall"].Count != 1 {
		t.Fatalf("round trip lost histogram: %s", back)
	}
}

func TestTimerObserve(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("t")
	tm.Observe(0.25)
	tm.Time(func() {})
	s := r.Snapshot()
	h := s.Histograms["t"]
	if h.Count != 2 {
		t.Fatalf("timer count = %d", h.Count)
	}
	if h.Sum < 0.25 {
		t.Fatalf("timer sum = %g", h.Sum)
	}
}

// TestConcurrentRecording exercises every instrument from many goroutines;
// run under -race this is the registry's thread-safety proof.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(i%7) + 0.5)
				if i%100 == 0 {
					_ = r.Snapshot() // snapshots race with recording by design
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("c") != workers*per {
		t.Fatalf("counter = %d, want %d", s.Counter("c"), workers*per)
	}
	if s.Gauge("g") != workers*per {
		t.Fatalf("gauge = %g, want %d", s.Gauge("g"), workers*per)
	}
	if s.Histograms["h"].Count != workers*per {
		t.Fatalf("histogram count = %d", s.Histograms["h"].Count)
	}
}
