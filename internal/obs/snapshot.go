package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Bucket is one non-empty histogram bucket: Le is the exclusive upper bound
// of the bucket's value range. The overflow bucket's bound is capped at
// math.MaxFloat64 at snapshot time so the snapshot stays JSON-encodable.
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistSnapshot is a histogram's state at snapshot time: only non-empty
// buckets are kept.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the mean observation, or 0 for an empty histogram.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a registry's state at one instant: plain maps, safe to
// marshal, compare, and merge. Zero-valued instruments are omitted.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. It is safe to call while
// other goroutines keep recording; the result is a per-instrument-atomic
// (not globally atomic) view.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	sharded := make(map[string]*ShardedCounter, len(r.sharded))
	for k, v := range r.sharded {
		sharded[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{}
	for k, c := range counters {
		if v := c.Value(); v != 0 {
			if s.Counters == nil {
				s.Counters = make(map[string]int64)
			}
			s.Counters[k] = v
		}
	}
	// Sharded counters fold into the same namespace: a snapshot consumer
	// should not care how a counter was implemented.
	for k, c := range sharded {
		if v := c.Value(); v != 0 {
			if s.Counters == nil {
				s.Counters = make(map[string]int64)
			}
			s.Counters[k] += v
		}
	}
	for k, g := range gauges {
		if v := g.Value(); v != 0 {
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[k] = v
		}
	}
	for k, h := range hists {
		hs := snapshotHist(h)
		if hs.Count == 0 {
			continue
		}
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistSnapshot)
		}
		s.Histograms[k] = hs
	}
	return s
}

func snapshotHist(h *Histogram) HistSnapshot {
	hs := HistSnapshot{Count: h.Count(), Sum: h.Sum()}
	for i := 0; i < histBuckets; i++ {
		if n := h.counts[i].Load(); n > 0 {
			le := BucketUpperBound(i)
			if math.IsInf(le, 1) {
				le = math.MaxFloat64 // keep the snapshot JSON-encodable
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: n})
		}
	}
	return hs
}

// Empty reports whether the snapshot carries no activity at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Merge returns the associative combination of two snapshots: counters and
// gauges add, histograms add bucketwise. Neither input is mutated.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{}
	if len(s.Counters)+len(o.Counters) > 0 {
		out.Counters = make(map[string]int64, len(s.Counters)+len(o.Counters))
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
		for k, v := range o.Counters {
			out.Counters[k] += v
		}
	}
	if len(s.Gauges)+len(o.Gauges) > 0 {
		out.Gauges = make(map[string]float64, len(s.Gauges)+len(o.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range o.Gauges {
			out.Gauges[k] += v
		}
	}
	if len(s.Histograms)+len(o.Histograms) > 0 {
		out.Histograms = make(map[string]HistSnapshot, len(s.Histograms)+len(o.Histograms))
		for k, v := range s.Histograms {
			out.Histograms[k] = cloneHist(v)
		}
		for k, v := range o.Histograms {
			out.Histograms[k] = mergeHist(out.Histograms[k], v)
		}
	}
	return out
}

func cloneHist(h HistSnapshot) HistSnapshot {
	h.Buckets = append([]Bucket(nil), h.Buckets...)
	return h
}

// mergeHist adds two bucket lists, both sorted by Le, into one.
func mergeHist(a, b HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	i, j := 0, 0
	for i < len(a.Buckets) || j < len(b.Buckets) {
		switch {
		case j >= len(b.Buckets) || (i < len(a.Buckets) && a.Buckets[i].Le < b.Buckets[j].Le):
			out.Buckets = append(out.Buckets, a.Buckets[i])
			i++
		case i >= len(a.Buckets) || b.Buckets[j].Le < a.Buckets[i].Le:
			out.Buckets = append(out.Buckets, b.Buckets[j])
			j++
		default: // equal edges: combine
			out.Buckets = append(out.Buckets, Bucket{Le: a.Buckets[i].Le, Count: a.Buckets[i].Count + b.Buckets[j].Count})
			i++
			j++
		}
	}
	return out
}

// Counter returns a counter's value from the snapshot (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value from the snapshot (0 if absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// String renders the snapshot compactly for logs: sorted "name=value"
// pairs, histograms as count/mean.
func (s Snapshot) String() string {
	parts := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for _, k := range names(s.Counters) {
		parts = append(parts, k+"="+strconv.FormatInt(s.Counters[k], 10))
	}
	for _, k := range names(s.Gauges) {
		parts = append(parts, k+"="+strconv.FormatFloat(s.Gauges[k], 'g', 4, 64))
	}
	for _, k := range names(s.Histograms) {
		h := s.Histograms[k]
		parts = append(parts, k+"=n"+strconv.FormatUint(h.Count, 10)+
			"/mean"+strconv.FormatFloat(h.Mean(), 'g', 4, 64))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
