// Package amdahl implements the classic analytic speedup models the
// keynote's serialisation argument (W5) rests on — Amdahl's law, Gustafson's
// scaled speedup, and the work–span bound — plus the Karp–Flatt metric,
// which recovers the experimentally determined serial fraction from
// measured speedups and so connects the measured plane's numbers back to
// the models.
package amdahl

import (
	"errors"
	"math"
)

// Speedup returns Amdahl's law: the speedup of a program with serial
// fraction f on p processors, 1 / (f + (1-f)/p).
func Speedup(f float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	return 1 / (f + (1-f)/float64(p))
}

// Limit returns Amdahl's asymptotic speedup bound 1/f for serial fraction
// f; +Inf when f is 0.
func Limit(f float64) float64 {
	if f == 0 {
		return math.Inf(1)
	}
	return 1 / f
}

// Gustafson returns the scaled speedup of Gustafson's law: p - f·(p-1),
// the speedup when the parallel part grows with the machine.
func Gustafson(f float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	return float64(p) - f*float64(p-1)
}

// ErrBadMeasurement reports an unusable speedup observation.
var ErrBadMeasurement = errors.New("amdahl: need p >= 2 and speedup in (0, p]")

// KarpFlatt returns the experimentally determined serial fraction
// e = (1/S - 1/p) / (1 - 1/p) from a measured speedup S on p processors.
// A serial fraction that *grows* with p indicates overhead (communication,
// synchronisation) rather than inherent serialisation.
func KarpFlatt(speedup float64, p int) (float64, error) {
	if p < 2 || speedup <= 0 || speedup > float64(p)+1e-9 {
		return 0, ErrBadMeasurement
	}
	pf := float64(p)
	return (1/speedup - 1/pf) / (1 - 1/pf), nil
}

// Efficiency returns speedup/p.
func Efficiency(speedup float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	return speedup / float64(p)
}

// WorkSpan returns the greedy-scheduler bound of Brent's theorem: the
// execution time on p processors of a computation with the given total
// work and critical-path span (both in the same unit), T_p <= work/p + span.
func WorkSpan(work, span float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	return work/float64(p) + span
}

// Parallelism returns work/span, the maximum useful processor count.
func Parallelism(work, span float64) float64 {
	if span == 0 {
		return math.Inf(1)
	}
	return work / span
}

// FitSerialFraction estimates a single serial fraction from several
// (p, speedup) observations by averaging their Karp–Flatt metrics;
// it also reports whether the per-point fractions trend upward (a sign of
// scaling overhead rather than fixed serial work).
func FitSerialFraction(ps []int, speedups []float64) (f float64, growing bool, err error) {
	if len(ps) != len(speedups) || len(ps) == 0 {
		return 0, false, ErrBadMeasurement
	}
	fractions := make([]float64, 0, len(ps))
	for i := range ps {
		kf, err := KarpFlatt(speedups[i], ps[i])
		if err != nil {
			return 0, false, err
		}
		fractions = append(fractions, kf)
	}
	sum := 0.0
	for _, x := range fractions {
		sum += x
	}
	f = sum / float64(len(fractions))
	growing = len(fractions) >= 2 && fractions[len(fractions)-1] > fractions[0]+1e-12
	return f, growing, nil
}
