package amdahl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedupKnownValues(t *testing.T) {
	// f=0.1, p=10: 1/(0.1+0.09) ~ 5.263
	if got := Speedup(0.1, 10); math.Abs(got-1/0.19) > 1e-12 {
		t.Fatalf("speedup = %g", got)
	}
	if got := Speedup(0, 8); got != 8 {
		t.Fatalf("embarrassingly parallel speedup = %g", got)
	}
	if got := Speedup(1, 64); got != 1 {
		t.Fatalf("fully serial speedup = %g", got)
	}
	if got := Speedup(0.5, 0); got != 1 {
		t.Fatalf("p clamped to 1: %g", got)
	}
}

func TestLimit(t *testing.T) {
	if got := Limit(0.05); math.Abs(got-20) > 1e-12 {
		t.Fatalf("limit = %g", got)
	}
	if !math.IsInf(Limit(0), 1) {
		t.Fatal("limit of f=0 should be +Inf")
	}
}

func TestGustafsonVsAmdahl(t *testing.T) {
	// Gustafson's scaled speedup always dominates Amdahl's for p > 1.
	for _, f := range []float64{0.05, 0.2, 0.5} {
		for _, p := range []int{2, 16, 256} {
			if Gustafson(f, p) < Speedup(f, p) {
				t.Fatalf("f=%g p=%d: Gustafson %g < Amdahl %g",
					f, p, Gustafson(f, p), Speedup(f, p))
			}
		}
	}
	if got := Gustafson(0.1, 10); math.Abs(got-(10-0.9)) > 1e-12 {
		t.Fatalf("gustafson = %g", got)
	}
}

func TestKarpFlattInvertsAmdahl(t *testing.T) {
	// The Karp–Flatt metric of an exactly-Amdahl speedup recovers f.
	for _, f := range []float64{0.01, 0.1, 0.3} {
		for _, p := range []int{2, 8, 64} {
			s := Speedup(f, p)
			got, err := KarpFlatt(s, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-f) > 1e-9 {
				t.Fatalf("f=%g p=%d: karp-flatt = %g", f, p, got)
			}
		}
	}
}

func TestKarpFlattRejectsBadInput(t *testing.T) {
	if _, err := KarpFlatt(2, 1); err == nil {
		t.Fatal("p=1 should fail")
	}
	if _, err := KarpFlatt(0, 4); err == nil {
		t.Fatal("zero speedup should fail")
	}
	if _, err := KarpFlatt(9, 4); err == nil {
		t.Fatal("superlinear speedup should fail")
	}
}

func TestEfficiency(t *testing.T) {
	if got := Efficiency(6, 8); got != 0.75 {
		t.Fatalf("efficiency = %g", got)
	}
}

func TestWorkSpan(t *testing.T) {
	// work=100, span=10: T_4 <= 35, T_inf -> 10.
	if got := WorkSpan(100, 10, 4); got != 35 {
		t.Fatalf("T_4 = %g", got)
	}
	if got := WorkSpan(100, 10, 1<<20); math.Abs(got-10) > 0.01 {
		t.Fatalf("T_inf = %g", got)
	}
	if got := Parallelism(100, 10); got != 10 {
		t.Fatalf("parallelism = %g", got)
	}
	if !math.IsInf(Parallelism(100, 0), 1) {
		t.Fatal("zero-span parallelism should be +Inf")
	}
}

func TestFitSerialFraction(t *testing.T) {
	ps := []int{2, 4, 8, 16}
	var speedups []float64
	for _, p := range ps {
		speedups = append(speedups, Speedup(0.2, p))
	}
	f, growing, err := FitSerialFraction(ps, speedups)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.2) > 1e-9 {
		t.Fatalf("fitted f = %g", f)
	}
	if growing {
		t.Fatal("pure Amdahl data should not show growing fraction")
	}
	// Now inject growing overhead: serial fraction 0.1 + overhead ~ p.
	var noisy []float64
	for _, p := range ps {
		eff := 0.05 * float64(p) / 16
		noisy = append(noisy, Speedup(0.1+eff, p))
	}
	_, growing, err = FitSerialFraction(ps, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !growing {
		t.Fatal("overhead-dominated data should show growing fraction")
	}
	if _, _, err := FitSerialFraction(nil, nil); err == nil {
		t.Fatal("empty fit should fail")
	}
	if _, _, err := FitSerialFraction([]int{2}, []float64{3}); err == nil {
		t.Fatal("invalid observation should propagate error")
	}
}

// Property: Amdahl speedup is monotone in p and bounded by both p and 1/f.
func TestSpeedupBoundsProperty(t *testing.T) {
	f := func(fRaw uint8, pRaw uint8) bool {
		frac := float64(fRaw) / 256.0
		p := int(pRaw)%128 + 1
		s := Speedup(frac, p)
		if s > float64(p)+1e-9 {
			return false
		}
		if frac > 0 && s > 1/frac+1e-9 {
			return false
		}
		return Speedup(frac, p+1)+1e-12 >= s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
