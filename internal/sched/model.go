package sched

// PredictChunked models the makespan of ForEachChunked on given per-task
// costs: contiguous chunks of `chunk` tasks are list-scheduled onto the
// earliest-free of p workers, and every grab serialises for grabSec on the
// shared counter (the atomic's coherence round trip). The model exposes
// the granularity trade-off the measured scheduler exhibits: tiny chunks
// serialise on the counter, huge chunks re-create static imbalance. The
// F4-chunk tunable searches this function for the machine's sweet spot.
func PredictChunked(costs []float64, p, chunk int, grabSec float64) float64 {
	if p < 1 {
		p = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	free := make([]float64, p)    // next-free time per worker
	counterFree := 0.0            // the shared counter is a serial resource
	for lo := 0; lo < len(costs); lo += chunk {
		hi := lo + chunk
		if hi > len(costs) {
			hi = len(costs)
		}
		w := 0
		for i := 1; i < p; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		start := free[w]
		if counterFree > start {
			start = counterFree
		}
		counterFree = start + grabSec
		work := 0.0
		for _, c := range costs[lo:hi] {
			work += c
		}
		free[w] = start + grabSec + work
	}
	makespan := 0.0
	for _, f := range free {
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}
