// Package sched is the measured-plane parallel runtime: a fixed worker
// pool, loop schedulers (static, chunked, guided, work stealing), a
// work-stealing task deque, and barrier primitives — the machinery needed
// to demonstrate load imbalance (W4), serialisation (W5), and spin-versus-
// block waiting (W10) on real goroutines with trace attribution.
package sched

import "sync"

// Deque is a double-ended work-stealing queue: the owner pushes and pops at
// the bottom (LIFO, for locality); thieves steal from the top (FIFO, for
// coarse-grained steals). This implementation guards both ends with a
// mutex — correct under any interleaving and fast enough for the
// experiments, which measure scheduling *policy* differences, not deque
// micro-costs.
type Deque struct {
	mu    sync.Mutex
	items []func()
}

// PushBottom adds a task at the owner's end.
func (d *Deque) PushBottom(task func()) {
	d.mu.Lock()
	d.items = append(d.items, task)
	d.mu.Unlock()
}

// PopBottom removes the most recently pushed task (owner end).
func (d *Deque) PopBottom() (func(), bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil, false
	}
	t := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return t, true
}

// Steal removes the oldest task (thief end).
func (d *Deque) Steal() (func(), bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil, false
	}
	t := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	return t, true
}

// Len returns the current task count.
func (d *Deque) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}
