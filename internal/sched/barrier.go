package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Barrier is a reusable sense-reversing barrier for a fixed party count.
// Wait blocks (parking the goroutine) until all parties arrive — the
// energy-frugal waiting discipline.
type Barrier struct {
	parties int
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	sense   bool
}

// NewBarrier creates a barrier for the given number of parties (minimum 1).
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		parties = 1
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties have called Wait for this cycle.
func (b *Barrier) Wait() {
	b.mu.Lock()
	sense := b.sense
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.sense = !b.sense
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for sense == b.sense {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// SpinBarrier is the same sense-reversing barrier with busy-wait arrival —
// lower latency, but every waiting core burns full power (the W10
// anti-pattern on real hardware).
type SpinBarrier struct {
	parties int64
	count   int64
	sense   int64
}

// NewSpinBarrier creates a spin barrier for the given party count.
func NewSpinBarrier(parties int) *SpinBarrier {
	if parties < 1 {
		parties = 1
	}
	return &SpinBarrier{parties: int64(parties)}
}

// Wait spins until all parties have arrived.
func (b *SpinBarrier) Wait() {
	sense := atomic.LoadInt64(&b.sense)
	if atomic.AddInt64(&b.count, 1) == b.parties {
		atomic.StoreInt64(&b.count, 0)
		atomic.StoreInt64(&b.sense, sense+1)
		return
	}
	for atomic.LoadInt64(&b.sense) == sense {
		runtime.Gosched()
	}
}
