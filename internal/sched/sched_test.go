package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"tenways/internal/trace"
)

// checkCoverage runs the scheduler over n items and verifies each index is
// visited exactly once.
func checkCoverage(t *testing.T, n int, run func(body func(i int))) {
	t.Helper()
	counts := make([]int64, n)
	run(func(i int) { atomic.AddInt64(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEachStaticCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 10, 103} {
			p := NewPool(workers, nil)
			checkCoverage(t, n, func(body func(int)) { p.ForEachStatic(n, body) })
		}
	}
}

func TestForEachChunkedCoverage(t *testing.T) {
	for _, chunk := range []int{0, 1, 3, 64} {
		p := NewPool(4, nil)
		checkCoverage(t, 100, func(body func(int)) { p.ForEachChunked(100, chunk, body) })
	}
}

func TestForEachGuidedCoverage(t *testing.T) {
	for _, n := range []int{1, 17, 256} {
		p := NewPool(4, nil)
		checkCoverage(t, n, func(body func(int)) { p.ForEachGuided(n, 1, body) })
	}
}

func TestForEachStealingCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 13, 211} {
			p := NewPool(workers, nil)
			checkCoverage(t, n, func(body func(int)) { p.ForEachStealing(n, 2, body) })
		}
	}
}

func TestRunTasksCoverage(t *testing.T) {
	p := NewPool(4, nil)
	var counts [50]int64
	tasks := make([]func(), 50)
	for i := range tasks {
		i := i
		tasks[i] = func() { atomic.AddInt64(&counts[i], 1) }
	}
	p.RunTasks(tasks)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestPoolMinimumOneWorker(t *testing.T) {
	p := NewPool(0, nil)
	if p.Workers() != 1 {
		t.Fatalf("workers = %d", p.Workers())
	}
}

func TestSchedulersCoverageProperty(t *testing.T) {
	f := func(nRaw, wRaw, grainRaw uint8) bool {
		n := int(nRaw) % 200
		w := int(wRaw)%8 + 1
		grain := int(grainRaw)%8 + 1
		for _, run := range []func(func(int)){
			func(b func(int)) { NewPool(w, nil).ForEachStatic(n, b) },
			func(b func(int)) { NewPool(w, nil).ForEachChunked(n, grain, b) },
			func(b func(int)) { NewPool(w, nil).ForEachGuided(n, grain, b) },
			func(b func(int)) { NewPool(w, nil).ForEachStealing(n, grain, b) },
		} {
			counts := make([]int64, n)
			run(func(i int) { atomic.AddInt64(&counts[i], 1) })
			for _, c := range counts {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStealingBalancesSkewedWork(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	// Skewed: the first 10% of iterations carry 10x the work.
	work := func(i, n int) {
		iters := 2000
		if i < n/10 {
			iters = 20000
		}
		x := 1.0
		for k := 0; k < iters; k++ {
			x = x*1.0000001 + 1e-9
		}
		sinkFloat(x)
	}
	n := 2000
	workers := 4

	recStatic := trace.NewRecorder(workers)
	NewPool(workers, recStatic).ForEachStatic(n, func(i int) { work(i, n) })

	recSteal := trace.NewRecorder(workers)
	NewPool(workers, recSteal).ForEachStealing(n, 8, func(i int) { work(i, n) })

	if is, iw := recStatic.Breakdown().Imbalance(), recSteal.Breakdown().Imbalance(); iw >= is {
		t.Logf("note: stealing imbalance %g vs static %g (timing-dependent)", iw, is)
		if iw > is*1.5 {
			t.Fatalf("stealing much worse than static: %g vs %g", iw, is)
		}
	}
}

var sinkF float64

func sinkFloat(x float64) { sinkF = x }

func TestDequeLIFOOwnerFIFOThief(t *testing.T) {
	d := &Deque{}
	order := []int{}
	for i := 0; i < 3; i++ {
		i := i
		d.PushBottom(func() { order = append(order, i) })
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	// Thief takes the oldest.
	task, ok := d.Steal()
	if !ok {
		t.Fatal("steal failed")
	}
	task()
	// Owner takes the newest.
	task, ok = d.PopBottom()
	if !ok {
		t.Fatal("pop failed")
	}
	task()
	if order[0] != 0 || order[1] != 2 {
		t.Fatalf("order = %v, want [0 2]", order)
	}
}

func TestDequeEmpty(t *testing.T) {
	d := &Deque{}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("pop on empty")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal on empty")
	}
}

func TestDequeConcurrentConservation(t *testing.T) {
	// Owner pushes N tasks while thieves steal; every task must run
	// exactly once.
	const n = 2000
	d := &Deque{}
	var ran int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if task, ok := d.Steal(); ok {
					task()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		d.PushBottom(func() { atomic.AddInt64(&ran, 1) })
		if i%3 == 0 {
			if task, ok := d.PopBottom(); ok {
				task()
			}
		}
	}
	// Drain.
	for {
		task, ok := d.PopBottom()
		if !ok {
			break
		}
		task()
	}
	close(stop)
	wg.Wait()
	// Thieves may hold no un-run tasks: Steal returns the task to the
	// thief which runs it synchronously, so after drain all n ran.
	if got := atomic.LoadInt64(&ran); got != n {
		t.Fatalf("ran %d of %d", got, n)
	}
}

func TestDequePropertySequential(t *testing.T) {
	// Property: any sequence of push/pop/steal conserves tasks.
	f := func(ops []uint8) bool {
		d := &Deque{}
		pushed, popped := 0, 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				d.PushBottom(func() {})
				pushed++
			case 1:
				if _, ok := d.PopBottom(); ok {
					popped++
				}
			case 2:
				if _, ok := d.Steal(); ok {
					popped++
				}
			}
		}
		return d.Len() == pushed-popped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	const parties = 4
	b := NewBarrier(parties)
	var phase int64
	var wg sync.WaitGroup
	errs := make(chan string, parties*10)
	for w := 0; w < parties; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				atomic.AddInt64(&phase, 1)
				b.Wait()
				// After the barrier, all parties of this round arrived.
				if got := atomic.LoadInt64(&phase); got < int64((round+1)*parties) {
					errs <- "barrier released early"
				}
				b.Wait() // second barrier separates rounds
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestSpinBarrierSynchronises(t *testing.T) {
	const parties = 4
	b := NewSpinBarrier(parties)
	var count int64
	var wg sync.WaitGroup
	fail := make(chan struct{}, 1)
	for w := 0; w < parties; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				atomic.AddInt64(&count, 1)
				b.Wait()
				if atomic.LoadInt64(&count) < int64((round+1)*parties) {
					select {
					case fail <- struct{}{}:
					default:
					}
				}
				b.Wait()
			}
		}()
	}
	wg.Wait()
	select {
	case <-fail:
		t.Fatal("spin barrier released early")
	default:
	}
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	done := make(chan struct{})
	go func() {
		b.Wait()
		b.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("single-party barrier blocked")
	}
	NewSpinBarrier(1).Wait() // must not block either
}

func TestRecorderIntegration(t *testing.T) {
	rec := trace.NewRecorder(2)
	p := NewPool(2, rec)
	p.ForEachStatic(100, func(i int) { time.Sleep(10 * time.Microsecond) })
	b := rec.Breakdown()
	if b.Of(trace.Compute) == 0 {
		t.Fatal("no compute time recorded")
	}
}
