package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"tenways/internal/obs"
	"tenways/internal/trace"
)

// Pool executes parallel loops over [0, n) with a fixed number of workers
// under a choice of scheduling policies. An optional trace.Recorder
// attributes each worker's time to compute versus waiting versus stealing.
type Pool struct {
	workers int
	rec     *trace.Recorder
	obs     *obs.Registry
}

// NewPool creates a pool of the given width (minimum 1). rec may be nil.
func NewPool(workers int, rec *trace.Recorder) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers, rec: rec, obs: obs.Default()}
}

// SetObs redirects the pool's scheduling metrics (sched.grabs,
// sched.steals, sched.idle_seconds) to the given registry; nil restores
// the process-wide default.
func (p *Pool) SetObs(reg *obs.Registry) *Pool {
	if reg == nil {
		reg = obs.Default()
	}
	p.obs = reg
	return p
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) add(worker int, cat trace.Category, d time.Duration) {
	if p.rec != nil {
		p.rec.Add(worker, cat, d)
	}
}

// addSince charges [start, now) with span retention when enabled.
func (p *Pool) addSince(worker int, cat trace.Category, start time.Time) {
	if p.rec != nil {
		p.rec.AddInterval(worker, cat, start, time.Now())
	}
}

// ForEachStatic runs body(i) for i in [0, n) under a static block
// partition: worker w gets one contiguous block. This is the wasteful
// choice under skewed per-iteration costs (W4).
func (p *Pool) ForEachStatic(n int, body func(i int)) {
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		lo := w * n / p.workers
		hi := (w + 1) * n / p.workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t0 := time.Now()
			for i := lo; i < hi; i++ {
				body(i)
			}
			p.addSince(w, trace.Compute, t0)
		}(w, lo, hi)
	}
	wg.Wait()
	p.chargeImbalanceIdle()
}

// chargeImbalanceIdle charges each worker's idle-at-the-join time: the gap
// between its own busy time and the busiest worker's, an approximation
// computed from the recorder. Without a recorder it is a no-op.
func (p *Pool) chargeImbalanceIdle() {
	if p.rec == nil {
		return
	}
	b := p.rec.Breakdown()
	var max time.Duration
	for _, w := range b.PerWorker {
		if busy := w.Busy(); busy > max {
			max = busy
		}
	}
	idle := p.obs.Gauge("sched.idle_seconds")
	for w, wt := range b.PerWorker {
		if gap := max - wt.Busy() - wt.ByCategory[trace.Idle]; gap > 0 {
			p.rec.Add(w, trace.Idle, gap)
			idle.Add(gap.Seconds())
		}
	}
}

// ForEachChunked runs body(i) with workers pulling fixed-size chunks from a
// shared counter (dynamic self-scheduling).
func (p *Pool) ForEachChunked(n, chunk int, body func(i int)) {
	if chunk < 1 {
		chunk = 1
	}
	grabs := p.obs.Counter("sched.grabs")
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					break
				}
				grabs.Inc()
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
			p.addSince(w, trace.Compute, t0)
		}(w)
	}
	wg.Wait()
	p.chargeImbalanceIdle()
}

// ForEachGuided runs body(i) under guided self-scheduling: chunk sizes
// decay as remaining/(2·workers), bounded below by minChunk.
func (p *Pool) ForEachGuided(n, minChunk int, body func(i int)) {
	if minChunk < 1 {
		minChunk = 1
	}
	grabs := p.obs.Counter("sched.grabs")
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			for {
				cur := atomic.LoadInt64(&next)
				if int(cur) >= n {
					break
				}
				remaining := n - int(cur)
				chunk := remaining / (2 * p.workers)
				if chunk < minChunk {
					chunk = minChunk
				}
				if !atomic.CompareAndSwapInt64(&next, cur, cur+int64(chunk)) {
					continue
				}
				grabs.Inc()
				lo := int(cur)
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
			p.addSince(w, trace.Compute, t0)
		}(w)
	}
	wg.Wait()
	p.chargeImbalanceIdle()
}

// rangeTask is a stealable iteration range.
type rangeTask struct {
	mu     sync.Mutex
	lo, hi int
}

// grab takes up to k iterations from the bottom, returning an empty range
// when exhausted.
func (r *rangeTask) grab(k int) (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lo >= r.hi {
		return 0, 0
	}
	hi := r.lo + k
	if hi > r.hi {
		hi = r.hi
	}
	lo := r.lo
	r.lo = hi
	return lo, hi
}

// stealHalf takes the upper half of the remaining range.
func (r *rangeTask) stealHalf() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rem := r.hi - r.lo
	if rem <= 1 {
		return 0, 0
	}
	mid := r.lo + rem/2
	lo, hi := mid, r.hi
	r.hi = mid
	return lo, hi
}

// ForEachStealing runs body(i) with per-worker iteration ranges and
// Cilk-style half-range stealing: a worker that exhausts its range steals
// the upper half of a victim's remaining range. grain is the number of
// iterations taken per local grab.
func (p *Pool) ForEachStealing(n, grain int, body func(i int)) {
	if grain < 1 {
		grain = 1
	}
	grabs := p.obs.Counter("sched.grabs")
	steals := p.obs.Counter("sched.steals")
	ranges := make([]*rangeTask, p.workers)
	for w := 0; w < p.workers; w++ {
		ranges[w] = &rangeTask{lo: w * n / p.workers, hi: (w + 1) * n / p.workers}
	}
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			my := ranges[w]
			for {
				lo, hi := my.grab(grain)
				if lo != hi {
					grabs.Inc()
				} else {
					// Steal: scan victims round-robin from w+1.
					tSteal := time.Now()
					stolen := false
					for off := 1; off < p.workers; off++ {
						v := ranges[(w+off)%p.workers]
						if slo, shi := v.stealHalf(); slo != shi {
							my.mu.Lock()
							my.lo, my.hi = slo, shi
							my.mu.Unlock()
							steals.Inc()
							stolen = true
							break
						}
					}
					p.addSince(w, trace.Steal, tSteal)
					if !stolen {
						return
					}
					continue
				}
				t0 := time.Now()
				for i := lo; i < hi; i++ {
					body(i)
				}
				p.addSince(w, trace.Compute, t0)
			}
		}(w)
	}
	wg.Wait()
	p.chargeImbalanceIdle()
}

// RunTasks executes arbitrary tasks under deque-based work stealing: tasks
// are dealt round-robin onto per-worker deques; owners pop LIFO, thieves
// steal FIFO.
func (p *Pool) RunTasks(tasks []func()) {
	grabs := p.obs.Counter("sched.grabs")
	steals := p.obs.Counter("sched.steals")
	deques := make([]*Deque, p.workers)
	for w := range deques {
		deques[w] = &Deque{}
	}
	for i, t := range tasks {
		deques[i%p.workers].PushBottom(t)
	}
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				task, ok := deques[w].PopBottom()
				if ok {
					grabs.Inc()
				} else {
					tSteal := time.Now()
					for off := 1; off < p.workers; off++ {
						if task, ok = deques[(w+off)%p.workers].Steal(); ok {
							steals.Inc()
							break
						}
					}
					p.addSince(w, trace.Steal, tSteal)
					if !ok {
						return
					}
				}
				t0 := time.Now()
				task()
				p.addSince(w, trace.Compute, t0)
			}
		}(w)
	}
	wg.Wait()
	p.chargeImbalanceIdle()
}
