// Package report renders experiment results as aligned ASCII tables,
// markdown tables, and CSV figure series. Every table and figure in the
// tenways evaluation suite goes through this package so that the harness,
// the CLI tools, and EXPERIMENTS.md all print identical rows.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a rectangular result with a caption, column headers, and rows of
// already-formatted cells. Build rows with AddRow and format cells with the
// helpers in this package so numeric styles stay uniform across experiments.
type Table struct {
	ID      string     `json:"id"` // experiment id, e.g. "T1"
	Caption string     `json:"caption"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// NewTable creates an empty table with the given identity and column headers.
func NewTable(id, caption string, headers ...string) *Table {
	return &Table{ID: id, Caption: caption, Headers: headers}
}

// AddRow appends one row. Cells beyond the header count are kept; short rows
// are padded with empty cells at render time.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// NumCols returns the widest row length, at least the header length.
func (t *Table) NumCols() int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

// WriteASCII renders the table with aligned columns to w (the ASCII
// renderer).
func (t *Table) WriteASCII(w io.Writer) error { return ASCII{}.Table(w, t) }

// WriteMarkdown renders the table as a GitHub-flavoured markdown table
// (the Markdown renderer).
func (t *Table) WriteMarkdown(w io.Writer) error { return Markdown{}.Table(w, t) }

// String renders the ASCII form.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteASCII(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named line of a figure: y sampled at the figure's xs.
type Series struct {
	Name string    `json:"name"`
	Ys   []float64 `json:"ys"`
}

// Figure is a set of series over a common x axis, the unit a paper figure
// would plot. It renders as CSV (one column per series) and as an ASCII
// table for terminals.
type Figure struct {
	ID      string    `json:"id"`
	Caption string    `json:"caption"`
	XLabel  string    `json:"xlabel"`
	YLabel  string    `json:"ylabel"`
	Xs      []float64 `json:"xs"`
	Series  []Series  `json:"series"`
}

// NewFigure creates an empty figure.
func NewFigure(id, caption, xlabel, ylabel string) *Figure {
	return &Figure{ID: id, Caption: caption, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a named series; its length must match len(Xs) by render
// time (shorter series render blank cells).
func (f *Figure) AddSeries(name string, ys []float64) {
	f.Series = append(f.Series, Series{Name: name, Ys: ys})
}

// WriteCSV emits "x,<series...>" rows, preceded by a comment header
// carrying the figure identity and axis labels (the CSV renderer).
func (f *Figure) WriteCSV(w io.Writer) error { return CSV{}.Figure(w, f) }

// Table converts the figure to an ASCII table view for terminal output.
func (f *Figure) Table() *Table {
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(f.ID, fmt.Sprintf("%s [y=%s]", f.Caption, f.YLabel), headers...)
	for i, x := range f.Xs {
		cells := []string{FormatG(x)}
		for _, s := range f.Series {
			if i < len(s.Ys) {
				cells = append(cells, FormatG(s.Ys[i]))
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// String renders the ASCII table view.
func (f *Figure) String() string { return f.Table().String() }

// FormatG formats a float compactly: %g limited to 4 significant digits.
func FormatG(x float64) string {
	return strconv.FormatFloat(x, 'g', 4, 64)
}

// FormatSeconds renders a duration given in seconds with an SI prefix.
func FormatSeconds(s float64) string {
	switch {
	case s == 0:
		return "0s"
	case s < 0:
		return "-" + FormatSeconds(-s)
	case s < 1e-6:
		return FormatG(s*1e9) + "ns"
	case s < 1e-3:
		return FormatG(s*1e6) + "us"
	case s < 1:
		return FormatG(s*1e3) + "ms"
	default:
		return FormatG(s) + "s"
	}
}

// FormatJoules renders an energy in joules with an SI prefix.
func FormatJoules(j float64) string {
	switch {
	case j == 0:
		return "0J"
	case j < 0:
		return "-" + FormatJoules(-j)
	case j < 1e-9:
		return FormatG(j*1e12) + "pJ"
	case j < 1e-6:
		return FormatG(j*1e9) + "nJ"
	case j < 1e-3:
		return FormatG(j*1e6) + "uJ"
	case j < 1:
		return FormatG(j*1e3) + "mJ"
	case j < 1e3:
		return FormatG(j) + "J"
	case j < 1e6:
		return FormatG(j/1e3) + "kJ"
	default:
		return FormatG(j/1e6) + "MJ"
	}
}

// FormatBytes renders a byte count with a binary prefix.
func FormatBytes(b float64) string {
	switch {
	case b < 0:
		return "-" + FormatBytes(-b)
	case b < 1024:
		return FormatG(b) + "B"
	case b < 1024*1024:
		return FormatG(b/1024) + "KiB"
	case b < 1024*1024*1024:
		return FormatG(b/(1024*1024)) + "MiB"
	default:
		return FormatG(b/(1024*1024*1024)) + "GiB"
	}
}

// FormatFactor renders a ratio as "N.NNx".
func FormatFactor(f float64) string {
	return strconv.FormatFloat(f, 'f', 2, 64) + "x"
}
