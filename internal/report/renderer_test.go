package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func rendererFixture() (*Table, *Figure) {
	t := NewTable("T1", "a caption", "name", "value")
	t.AddRow("alpha", "1")
	t.AddRow("beta, with comma", "2")
	f := NewFigure("F1", "a figure", "x", "y")
	f.Xs = []float64{1, 2}
	f.AddSeries("s", []float64{10, 20})
	return t, f
}

func TestRendererByName(t *testing.T) {
	for _, name := range Formats() {
		if _, err := RendererByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for alias, want := range map[string]Renderer{
		"ASCII": ASCII{}, "text": ASCII{}, "": ASCII{}, "md": Markdown{}, "Markdown": Markdown{},
	} {
		r, err := RendererByName(alias)
		if err != nil {
			t.Fatalf("%q: %v", alias, err)
		}
		if r != want {
			t.Fatalf("%q resolved to %T", alias, r)
		}
	}
	if _, err := RendererByName("yaml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

// TestRenderersMatchLegacyWriters pins the renderer refactor: the old
// Write* methods and the renderers they now delegate to must emit
// identical bytes.
func TestRenderersMatchLegacyWriters(t *testing.T) {
	tbl, fig := rendererFixture()
	var a, b strings.Builder
	if err := tbl.WriteASCII(&a); err != nil {
		t.Fatal(err)
	}
	if err := (ASCII{}).Table(&b, tbl); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("ASCII mismatch:\n%q\n%q", a.String(), b.String())
	}
	a.Reset()
	b.Reset()
	if err := tbl.WriteMarkdown(&a); err != nil {
		t.Fatal(err)
	}
	if err := (Markdown{}).Table(&b, tbl); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Markdown mismatch")
	}
	a.Reset()
	b.Reset()
	if err := fig.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := (CSV{}).Figure(&b, fig); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("figure CSV mismatch")
	}
}

func TestCSVTableQuotesCells(t *testing.T) {
	tbl, _ := rendererFixture()
	var sb strings.Builder
	if err := (CSV{}).Table(&sb, tbl); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "# T1: a caption\n") {
		t.Fatalf("missing comment header:\n%s", got)
	}
	if !strings.Contains(got, `"beta, with comma"`) {
		t.Fatalf("comma cell not quoted:\n%s", got)
	}
	if !strings.Contains(got, "name,value\n") {
		t.Fatalf("missing header row:\n%s", got)
	}
}

func TestJSONRendererRoundTrips(t *testing.T) {
	tbl, fig := rendererFixture()
	var sb strings.Builder
	if err := (JSON{}).Table(&sb, tbl); err != nil {
		t.Fatal(err)
	}
	var backT Table
	if err := json.Unmarshal([]byte(sb.String()), &backT); err != nil {
		t.Fatal(err)
	}
	if backT.ID != tbl.ID || len(backT.Rows) != len(tbl.Rows) || backT.Rows[1][0] != "beta, with comma" {
		t.Fatalf("table round trip lost data: %+v", backT)
	}
	sb.Reset()
	if err := (JSON{}).Figure(&sb, fig); err != nil {
		t.Fatal(err)
	}
	var backF Figure
	if err := json.Unmarshal([]byte(sb.String()), &backF); err != nil {
		t.Fatal(err)
	}
	if backF.ID != fig.ID || len(backF.Series) != 1 || backF.Series[0].Ys[1] != 20 {
		t.Fatalf("figure round trip lost data: %+v", backF)
	}
	if !strings.HasSuffix(sb.String(), "\n") {
		t.Fatal("JSON output must end with a newline")
	}
}

func TestMarkdownRendererFigure(t *testing.T) {
	_, fig := rendererFixture()
	var sb strings.Builder
	if err := (Markdown{}).Figure(&sb, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| x | s |") {
		t.Fatalf("figure table view missing:\n%s", sb.String())
	}
}
