package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Renderer writes tables and figures in one output format. The four
// built-in renderers — ASCII, Markdown, CSV, JSON — cover the terminal,
// EXPERIMENTS.md, plotting pipelines, and machine consumers; callers pick
// one with RendererByName and hand it to core.Output.RenderWith.
type Renderer interface {
	Table(w io.Writer, t *Table) error
	Figure(w io.Writer, f *Figure) error
}

// RendererByName returns the renderer for a format name: "ascii" (alias
// "text"), "markdown" (alias "md"), "csv", or "json".
func RendererByName(name string) (Renderer, error) {
	switch strings.ToLower(name) {
	case "ascii", "text", "":
		return ASCII{}, nil
	case "markdown", "md":
		return Markdown{}, nil
	case "csv":
		return CSV{}, nil
	case "json":
		return JSON{}, nil
	}
	return nil, fmt.Errorf("report: unknown format %q (known: %s)",
		name, strings.Join(Formats(), ", "))
}

// Formats lists the selectable renderer names in canonical order.
func Formats() []string { return []string{"ascii", "markdown", "csv", "json"} }

// ASCII renders aligned monospace tables for terminals; figures render as
// their table view.
type ASCII struct{}

// Table implements Renderer.
func (ASCII) Table(w io.Writer, t *Table) error {
	cols := t.NumCols()
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	if _, err := fmt.Fprintf(w, "%s: %s\n", t.ID, t.Caption); err != nil {
		return err
	}
	writeRow := func(row []string) error {
		var b strings.Builder
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	rule := make([]string, cols)
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Figure implements Renderer.
func (ASCII) Figure(w io.Writer, f *Figure) error {
	return ASCII{}.Table(w, f.Table())
}

// Markdown renders GitHub-flavoured markdown tables; figures render as
// their table view.
type Markdown struct{}

// Table implements Renderer.
func (Markdown) Table(w io.Writer, t *Table) error {
	cols := t.NumCols()
	if _, err := fmt.Fprintf(w, "**%s: %s**\n\n", t.ID, t.Caption); err != nil {
		return err
	}
	row := func(cells []string) error {
		var b strings.Builder
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(" " + c + " |")
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := row(t.Headers); err != nil {
		return err
	}
	rule := make([]string, cols)
	for i := range rule {
		rule[i] = "---"
	}
	if err := row(rule); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// Figure implements Renderer.
func (Markdown) Figure(w io.Writer, f *Figure) error {
	return Markdown{}.Table(w, f.Table())
}

// CSV renders comma-separated rows: figures in the suite's established
// figure-CSV format (comment header, one column per series), tables with a
// matching comment header and properly quoted cells.
type CSV struct{}

// Table implements Renderer.
func (CSV) Table(w io.Writer, t *Table) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Caption); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	cols := t.NumCols()
	for _, r := range t.Rows {
		row := make([]string, cols)
		copy(row, r)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Figure implements Renderer. The format matches the historical
// Figure.WriteCSV output byte for byte, so plotting pipelines keep working.
func (CSV) Figure(w io.Writer, f *Figure) error {
	if _, err := fmt.Fprintf(w, "# %s: %s (x=%s, y=%s)\n", f.ID, f.Caption, f.XLabel, f.YLabel); err != nil {
		return err
	}
	head := []string{f.XLabel}
	for _, s := range f.Series {
		head = append(head, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(head, ",")); err != nil {
		return err
	}
	for i, x := range f.Xs {
		cells := []string{FormatG(x)}
		for _, s := range f.Series {
			if i < len(s.Ys) {
				cells = append(cells, FormatG(s.Ys[i]))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// JSON renders tables and figures as single indented JSON documents
// followed by a newline, with deterministic key order.
type JSON struct{}

// Table implements Renderer.
func (JSON) Table(w io.Writer, t *Table) error { return writeJSON(w, t) }

// Figure implements Renderer.
func (JSON) Figure(w io.Writer, f *Figure) error { return writeJSON(w, f) }

func writeJSON(w io.Writer, v interface{}) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}
