package report

import (
	"strings"
	"testing"
)

func TestTableASCII(t *testing.T) {
	tb := NewTable("T0", "demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("bb", "22")
	out := tb.String()
	if !strings.Contains(out, "T0: demo") {
		t.Fatalf("missing caption:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // caption, header, rule, two rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns must align: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatalf("missing header: %q", lines[1])
	}
	if got := strings.Index(lines[3], "1"); got != idx {
		t.Fatalf("misaligned column: header at %d, cell at %d\n%s", idx, got, out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("T0", "ragged", "a", "b")
	tb.AddRow("1", "2", "3") // wider than headers
	tb.AddRow("x")           // narrower
	if tb.NumCols() != 3 {
		t.Fatalf("NumCols = %d, want 3", tb.NumCols())
	}
	out := tb.String()
	if !strings.Contains(out, "3") || !strings.Contains(out, "x") {
		t.Fatalf("ragged cells lost:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T9", "md", "h1", "h2")
	tb.AddRow("a", "b")
	var b strings.Builder
	if err := tb.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**T9: md**", "| h1 | h2 |", "| --- | --- |", "| a | b |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("F1", "speed", "n", "t")
	f.Xs = []float64{1, 2}
	f.AddSeries("fast", []float64{0.5, 0.25})
	f.AddSeries("slow", []float64{1})
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if lines[1] != "n,fast,slow" {
		t.Fatalf("header = %q", lines[1])
	}
	if lines[2] != "1,0.5,1" {
		t.Fatalf("row = %q", lines[2])
	}
	if lines[3] != "2,0.25," {
		t.Fatalf("short series row = %q", lines[3])
	}
}

func TestFigureTableView(t *testing.T) {
	f := NewFigure("F2", "cap", "x", "y")
	f.Xs = []float64{10}
	f.AddSeries("s", []float64{3.5})
	out := f.String()
	if !strings.Contains(out, "F2") || !strings.Contains(out, "3.5") {
		t.Fatalf("table view wrong:\n%s", out)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0s"},
		{1.5, "1.5s"},
		{0.002, "2ms"},
		{3e-6, "3us"},
		{4e-9, "4ns"},
		{-0.002, "-2ms"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatJoules(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0J"},
		{2, "2J"},
		{2e-3, "2mJ"},
		{2e-6, "2uJ"},
		{2e-9, "2nJ"},
		{2e-12, "2pJ"},
		{2e3, "2kJ"},
		{2e6, "2MJ"},
	}
	for _, c := range cases {
		if got := FormatJoules(c.in); got != c.want {
			t.Errorf("FormatJoules(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	if got := FormatBytes(512); got != "512B" {
		t.Errorf("got %q", got)
	}
	if got := FormatBytes(2048); got != "2KiB" {
		t.Errorf("got %q", got)
	}
	if got := FormatBytes(3 * 1024 * 1024); got != "3MiB" {
		t.Errorf("got %q", got)
	}
}

func TestFormatFactor(t *testing.T) {
	if got := FormatFactor(2.5); got != "2.50x" {
		t.Errorf("got %q", got)
	}
}
