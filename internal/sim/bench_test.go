package sim

import "testing"

// BenchmarkKernelEvents measures the event kernel's throughput in the
// regimes the laboratory exercises: lone-proc time advancement (the cheap
// path), many procs interleaving through the heap, and condition-variable
// ping-pong (the blocking path every signal and message rides on). The
// Mevents/s metric is the substrate budget that bounds how large the
// simulated campaigns can grow.
func BenchmarkKernelEvents(b *testing.B) {
	b.Run("advance-1proc", func(b *testing.B) {
		k := NewKernel()
		if _, err := k.Run(1, func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(1e-9)
			}
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(k.Events())/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
	b.Run("advance-64proc", func(b *testing.B) {
		k := NewKernel()
		per := b.N/64 + 1
		if _, err := k.Run(64, func(p *Proc) {
			for i := 0; i < per; i++ {
				p.Advance(1e-9)
			}
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(k.Events())/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
	b.Run("cond-pingpong", func(b *testing.B) {
		k := NewKernel()
		ping, pong := k.NewCond(), k.NewCond()
		if _, err := k.Run(2, func(p *Proc) {
			// Proc 0 is scheduled first, so it must be the side that waits
			// first: a Signal with no waiter is lost.
			for i := 0; i < b.N; i++ {
				if p.ID() == 0 {
					p.Wait(ping)
					pong.Signal()
				} else {
					ping.Signal()
					p.Wait(pong)
				}
			}
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(k.Events())/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
}
