package sim

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSingleProcAdvance(t *testing.T) {
	k := NewKernel()
	end, err := k.Run(1, func(p *Proc) {
		p.Advance(1.5)
		p.Advance(0.5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != 2.0 {
		t.Fatalf("end time = %g, want 2", end)
	}
}

func TestAdvanceToPastIsNoop(t *testing.T) {
	k := NewKernel()
	end, err := k.Run(1, func(p *Proc) {
		p.Advance(5)
		p.AdvanceTo(3) // in the past: no-op
		p.AdvanceTo(7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != 7 {
		t.Fatalf("end = %g, want 7", end)
	}
}

func TestNegativeAdvancePanicsIntoError(t *testing.T) {
	k := NewKernel()
	_, err := k.Run(1, func(p *Proc) {
		p.Advance(-1)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected PanicError, got %v", err)
	}
}

func TestZeroProcsRejected(t *testing.T) {
	if _, err := NewKernel().Run(0, func(*Proc) {}); err == nil {
		t.Fatal("expected error for 0 processes")
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []int {
		var order []int
		k := NewKernel()
		_, err := k.Run(3, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Advance(1)
				order = append(order, p.ID())
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	a := run()
	b := run()
	if len(a) != 9 {
		t.Fatalf("expected 9 steps, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order: %v vs %v", a, b)
		}
	}
	// Equal-time events dispatch in schedule order: 0,1,2 each round.
	for r := 0; r < 3; r++ {
		for i := 0; i < 3; i++ {
			if a[r*3+i] != i {
				t.Fatalf("round %d order = %v", r, a[:9])
			}
		}
	}
}

func TestAtClosureRunsAtScheduledTime(t *testing.T) {
	k := NewKernel()
	var fired float64 = -1
	_, err := k.Run(1, func(p *Proc) {
		k.At(2.5, func() { fired = k.Now() })
		p.Advance(5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 2.5 {
		t.Fatalf("closure fired at %g, want 2.5", fired)
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	k := NewKernel()
	var fired float64 = -1
	_, err := k.Run(1, func(p *Proc) {
		p.Advance(3)
		k.At(1, func() { fired = k.Now() })
		p.Advance(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("past closure fired at %g, want 3 (clamped)", fired)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	k := NewKernel()
	c := k.NewCond()
	var woke []float64
	_, err := k.Run(4, func(p *Proc) {
		if p.ID() == 0 {
			p.Advance(10)
			c.Broadcast()
			return
		}
		p.Wait(c)
		woke = append(woke, p.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d procs, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 10 {
			t.Fatalf("woke at %g, want 10", w)
		}
	}
}

func TestCondSignalWakesOneFIFO(t *testing.T) {
	k := NewKernel()
	c := k.NewCond()
	var woke []int
	_, err := k.Run(3, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Advance(1)
			if c.Waiting() != 2 {
				t.Errorf("waiting = %d, want 2", c.Waiting())
			}
			c.Signal()
			p.Advance(1)
			c.Signal()
		default:
			p.Wait(c)
			woke = append(woke, p.ID())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(woke) != 2 || woke[0] != 1 || woke[1] != 2 {
		t.Fatalf("wake order = %v, want [1 2]", woke)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	c := k.NewCond()
	_, err := k.Run(2, func(p *Proc) {
		if p.ID() == 1 {
			p.Wait(c) // never signalled
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if de.Blocked != 1 {
		t.Fatalf("blocked = %d, want 1", de.Blocked)
	}
}

func TestMessagePingPong(t *testing.T) {
	// Two processes exchange "messages" via At-delivered flags; the round
	// trip time must be 2×latency per round.
	const latency = 1e-6
	const rounds = 5
	k := NewKernel()
	conds := [2]*Cond{k.NewCond(), k.NewCond()}
	arrived := [2]int{}
	end, err := k.Run(2, func(p *Proc) {
		me := p.ID()
		other := 1 - me
		for r := 0; r < rounds; r++ {
			if me == 0 {
				k.At(p.Now()+latency, func() {
					arrived[other]++
					conds[other].Broadcast()
				})
				for arrived[me] <= r {
					p.Wait(conds[me])
				}
			} else {
				for arrived[me] <= r {
					p.Wait(conds[me])
				}
				k.At(p.Now()+latency, func() {
					arrived[other]++
					conds[other].Broadcast()
				})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * latency * rounds
	if math.Abs(end-want) > 1e-12 {
		t.Fatalf("end = %g, want %g", end, want)
	}
}

func TestYieldRoundRobinsEqualTimeProcs(t *testing.T) {
	k := NewKernel()
	var order []int
	_, err := k.Run(2, func(p *Proc) {
		for i := 0; i < 2; i++ {
			order = append(order, p.ID())
			p.Yield()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	// Property: for random advance sequences across random process counts,
	// observed times are non-decreasing and the final time equals the max
	// cumulative advance.
	f := func(steps []uint8, nProcsRaw uint8) bool {
		n := int(nProcsRaw%4) + 1
		k := NewKernel()
		last := -1.0
		maxTotal := 0.0
		mono := int32(1)
		_, err := k.Run(n, func(p *Proc) {
			total := 0.0
			for i, s := range steps {
				if i%n != p.ID() {
					continue
				}
				dt := float64(s) / 255.0
				p.Advance(dt)
				total += dt
				if p.Now() < last {
					atomic.StoreInt32(&mono, 0)
				}
				last = p.Now()
			}
			if total > maxTotal {
				maxTotal = total
			}
		})
		if err != nil {
			return false
		}
		return mono == 1 && math.Abs(k.Now()-maxTotal) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsCounter(t *testing.T) {
	k := NewKernel()
	_, err := k.Run(1, func(p *Proc) { p.Advance(1) })
	if err != nil {
		t.Fatal(err)
	}
	if k.Events() < 2 {
		t.Fatalf("events = %d, want >= 2", k.Events())
	}
}
