// Package sim is a deterministic process-based discrete-event simulation
// kernel. Each simulated process runs as its own goroutine written in plain
// sequential Go, but the kernel resumes exactly one at a time, advancing a
// shared virtual clock; simultaneous events are ordered by schedule sequence
// number, so a run is reproducible bit-for-bit regardless of host scheduling.
//
// The kernel provides three primitives, from which the pgas and collective
// packages build a message-passing machine model:
//
//   - Proc.Advance / Proc.AdvanceTo: consume virtual time.
//   - Kernel.At: run a closure at a future virtual time (message delivery).
//   - Cond: block a process until another process or closure wakes it.
package sim

import (
	"container/heap"
	"fmt"

	"tenways/internal/obs"
)

// event is one scheduled occurrence: either a process resumption or a
// kernel-context closure.
type event struct {
	time float64
	seq  uint64
	proc *Proc
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Kernel owns the virtual clock and event queue. A Kernel may be used for
// one Run at a time; create a fresh one per simulation.
type Kernel struct {
	now     float64
	pq      eventHeap
	seq     uint64
	yield   chan *Proc
	nlive   int // procs started and not yet finished
	events  uint64
	metrics *obs.Registry
}

// NewKernel returns an idle kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan *Proc)}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// SetMetrics directs the kernel's event-loop metrics (events dispatched,
// virtual time advanced, final makespan) to the given registry; nil keeps
// the kernel silent. Call before Run.
func (k *Kernel) SetMetrics(reg *obs.Registry) { k.metrics = reg }

// Events returns the number of events dispatched so far.
func (k *Kernel) Events() uint64 { return k.events }

// At schedules fn to run in kernel context at virtual time t. Scheduling in
// the past is clamped to the current time. Safe to call from process
// context or from another At closure.
func (k *Kernel) At(t float64, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.pq, event{time: t, seq: k.seq, fn: fn})
}

// scheduleProc enqueues a process resumption.
func (k *Kernel) scheduleProc(t float64, p *Proc) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.pq, event{time: t, seq: k.seq, proc: p})
}

// Proc is one simulated process. Its methods may only be called from the
// process's own body function.
type Proc struct {
	k        *Kernel
	id       int
	resume   chan struct{}
	finished bool
	err      error
	blocked  bool // waiting on a Cond (not in the event queue)
}

// ID returns the process index in [0, n).
func (p *Proc) ID() int { return p.id }

// Blocked reports whether the process is currently waiting on a Cond (for
// deadlock debugging; only meaningful when inspected from kernel context,
// i.e. an At closure).
func (p *Proc) Blocked() bool { return p.blocked }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.k.now }

// Kernel returns the kernel this process runs under.
func (p *Proc) Kernel() *Kernel { return p.k }

// Advance consumes dt seconds of virtual time. Negative dt is an error in
// the cost model and panics.
func (p *Proc) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: negative advance %g", dt))
	}
	p.k.scheduleProc(p.k.now+dt, p)
	p.yieldToKernel()
}

// AdvanceTo advances the clock to t if t is in the future; otherwise it is
// a no-op (the process does not yield).
func (p *Proc) AdvanceTo(t float64) {
	if t <= p.k.now {
		return
	}
	p.k.scheduleProc(t, p)
	p.yieldToKernel()
}

// Yield reschedules the process at the current time, letting other
// ready processes run first.
func (p *Proc) Yield() {
	p.k.scheduleProc(p.k.now, p)
	p.yieldToKernel()
}

func (p *Proc) yieldToKernel() {
	p.k.yield <- p
	<-p.resume
}

// Cond is a simulation-time condition variable: processes Wait on it and
// are woken, in FIFO order, by Signal or Broadcast.
type Cond struct {
	k       *Kernel
	waiting []*Proc
}

// NewCond creates a condition variable bound to the kernel.
func (k *Kernel) NewCond() *Cond { return &Cond{k: k} }

// Wait blocks the process until the cond is signalled. The process is not
// in the event queue while waiting; a never-signalled cond deadlocks, which
// Run reports as an error.
func (p *Proc) Wait(c *Cond) {
	c.waiting = append(c.waiting, p)
	p.blocked = true
	p.yieldToKernel()
	p.blocked = false
}

// Broadcast wakes all waiting processes at the current virtual time.
func (c *Cond) Broadcast() {
	for _, p := range c.waiting {
		c.k.scheduleProc(c.k.now, p)
	}
	c.waiting = c.waiting[:0]
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiting) == 0 {
		return
	}
	p := c.waiting[0]
	c.waiting = c.waiting[1:]
	c.k.scheduleProc(c.k.now, p)
}

// Waiting returns how many processes are blocked on the cond.
func (c *Cond) Waiting() int { return len(c.waiting) }

// DeadlockError reports that the event queue drained while processes were
// still blocked.
type DeadlockError struct {
	Blocked int
	Time    float64
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%g with %d blocked processes", e.Time, e.Blocked)
}

// PanicError wraps a panic raised inside a process body.
type PanicError struct {
	ProcID int
	Value  interface{}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %d panicked: %v", e.ProcID, e.Value)
}

// Run starts n processes executing body and drives the simulation until all
// finish or no event remains. It returns the final virtual time and the
// first error (deadlock or process panic).
func (k *Kernel) Run(n int, body func(p *Proc)) (float64, error) {
	if n < 1 {
		return k.now, fmt.Errorf("sim: need at least one process, got %d", n)
	}
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		p := &Proc{k: k, id: i, resume: make(chan struct{})}
		procs[i] = p
		k.nlive++
		go func() {
			<-p.resume
			defer func() {
				if r := recover(); r != nil {
					p.err = &PanicError{ProcID: p.id, Value: r}
				}
				p.finished = true
				k.yield <- p
			}()
			body(p)
		}()
		k.scheduleProc(0, p)
	}

	var firstErr error
	for k.pq.Len() > 0 {
		ev := heap.Pop(&k.pq).(event)
		k.now = ev.time
		k.events++
		if ev.fn != nil {
			ev.fn()
			continue
		}
		p := ev.proc
		if p.finished {
			continue
		}
		p.resume <- struct{}{}
		<-k.yield
		if p.finished {
			k.nlive--
			if p.err != nil && firstErr == nil {
				firstErr = p.err
			}
		}
	}
	k.flushMetrics()
	if firstErr != nil {
		return k.now, firstErr
	}
	if k.nlive > 0 {
		// Deadlocked process goroutines remain parked on their resume
		// channels for the life of the program; a deadlock is always a
		// bug in the simulated program, so callers treat it as fatal.
		return k.now, &DeadlockError{Blocked: k.nlive, Time: k.now}
	}
	return k.now, nil
}

// RunEvents drives the event queue without starting any processes: only
// closures scheduled with At run. It is the kernel's closure-only mode,
// used by event-shaped workloads (pdes.RunOnSim) that never block and so
// need no process goroutines. Calling it while processes from Run are live
// is an error.
func (k *Kernel) RunEvents() (float64, error) {
	if k.nlive > 0 {
		return k.now, fmt.Errorf("sim: RunEvents called with %d live processes; use Run", k.nlive)
	}
	for k.pq.Len() > 0 {
		ev := heap.Pop(&k.pq).(event)
		k.now = ev.time
		k.events++
		if ev.fn != nil {
			ev.fn()
		}
	}
	k.flushMetrics()
	return k.now, nil
}

// flushMetrics records the run's event-loop totals once, at the end, so the
// loop itself stays atomic-free.
func (k *Kernel) flushMetrics() {
	if reg := k.metrics; reg != nil {
		reg.Counter("sim.events").Add(int64(k.events))
		reg.Counter("sim.runs").Inc()
		reg.Gauge("sim.virtual_seconds").Add(k.now)
		reg.Histogram("sim.makespan_seconds").Observe(k.now)
	}
}
