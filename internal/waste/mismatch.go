package waste

import (
	"fmt"

	"tenways/internal/machine"
	"tenways/internal/roofline"
)

// MismatchRun models executing `flops` total flops at the given arithmetic
// intensity on one node: time from the roofline bound, energy from flops
// plus the implied DRAM traffic plus static power. Shared by RunW8 and the
// F8 roofline figure's derived rows.
func MismatchRun(spec *machine.Spec, flops, intensity float64) Result {
	secs := roofline.TimeSec(spec, flops, intensity)
	bytes := flops / intensity
	j := spec.FlopEnergyJ(flops) + spec.DRAMEnergyJ(bytes) +
		spec.BusyEnergyJ(secs)*float64(spec.CoresPerNode)
	return Result{
		Seconds: secs,
		Joules:  j,
		Detail:  fmt.Sprintf("AI=%.3g flops/byte (%s bound)", intensity, roofline.Classify(spec, "", intensity).Bound),
	}
}

// RunW8 contrasts a streaming low-intensity formulation (triad-class,
// AI = 1/12) with a blocked high-intensity formulation (AI = 8) of the
// same 10¹⁰-flop computation. On every preset the low-AI form sits far
// below the ridge point and pays for it in both time and DRAM energy.
func RunW8(spec *machine.Spec) (Outcome, error) {
	const flops = 1e10
	return Outcome{
		Wasteful: MismatchRun(spec, flops, 1.0/12),
		Remedied: MismatchRun(spec, flops, 8),
	}, nil
}
