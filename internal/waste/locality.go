package waste

import (
	"fmt"

	"tenways/internal/energy"
	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/mem"
	"tenways/internal/report"
)

// w1MatrixN is the matmul dimension of the W1 demonstrator: three n×n
// float64 matrices must exceed the shrunken demonstration cache.
const w1MatrixN = 96

// w1Spec shrinks the machine's caches so the demonstrator matrices spill,
// keeping the trace short enough to simulate quickly while preserving the
// capacity-miss behaviour of a full-size problem.
func w1Spec(spec *machine.Spec) *machine.Spec {
	s := *spec
	s.Levels = []machine.LevelSpec{
		{Name: "L1", CapacityBytes: 8 << 10, LineBytes: 64, Assoc: 4,
			LatencyCycles: 4, PJPerByte: 0.6},
		{Name: "L2", CapacityBytes: 32 << 10, LineBytes: 64, Assoc: 8,
			LatencyCycles: 14, PJPerByte: 2, Shared: true},
	}
	return &s
}

// MatmulLocality runs the traced matmul at the given block size and
// returns the modeled time, energy, and DRAM traffic. It is shared by
// RunW1 and the F1 blocking-sweep figure.
func MatmulLocality(spec *machine.Spec, n, block int) (Result, int64, error) {
	s := w1Spec(spec)
	h, err := mem.NewHierarchy(s, 1)
	if err != nil {
		return Result{}, 0, err
	}
	kernels.MatMulTraced(h, n, block)
	m := energy.NewMeter()
	h.ChargeEnergy(m)
	flops := kernels.MatMulFlops(n)
	m.Add(energy.Flops, s.FlopEnergyJ(flops))
	secs := h.TimeSec() + s.FlopTimeSec(flops)
	m.Add(energy.Static, s.BusyEnergyJ(secs))
	dram := h.Stats().DRAMBytes
	return Result{
		Seconds: secs,
		Joules:  m.Total(),
		Detail:  fmt.Sprintf("DRAM traffic %s", report.FormatBytes(float64(dram))),
	}, dram, nil
}

// RunW1 contrasts naive and cache-blocked matmul through the cache
// simulator.
func RunW1(spec *machine.Spec) (Outcome, error) {
	naive, _, err := MatmulLocality(spec, w1MatrixN, w1MatrixN)
	if err != nil {
		return Outcome{}, err
	}
	blocked, _, err := MatmulLocality(spec, w1MatrixN, 8)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Wasteful: naive, Remedied: blocked}, nil
}

// FalseSharing replays iters rounds of per-core counter increments on
// `cores` cores with the given stride in bytes between counters (8 =
// packed on one line, >= line size = padded), returning modeled time,
// energy, and the invalidation count. Shared by RunW9 and figure F9.
func FalseSharing(spec *machine.Spec, cores, iters, strideBytes int) (Result, int64, error) {
	h, err := mem.NewHierarchy(spec, cores)
	if err != nil {
		return Result{}, 0, err
	}
	for it := 0; it < iters; it++ {
		for c := 0; c < cores; c++ {
			addr := uint64(c * strideBytes)
			h.Read(c, addr, 8)
			h.Write(c, addr, 8)
		}
	}
	m := energy.NewMeter()
	h.ChargeEnergy(m)
	flops := float64(iters * cores) // one add per increment
	m.Add(energy.Flops, spec.FlopEnergyJ(flops))
	secs := h.TimeSec() + spec.FlopTimeSec(flops)
	m.Add(energy.Static, spec.BusyEnergyJ(secs))
	inv := h.Stats().Invalidations
	return Result{
		Seconds: secs,
		Joules:  m.Total(),
		Detail:  fmt.Sprintf("%d invalidations", inv),
	}, inv, nil
}

// RunW9 contrasts packed and padded per-core counters.
func RunW9(spec *machine.Spec) (Outcome, error) {
	cores := spec.CoresPerNode
	if cores > 16 {
		cores = 16
	}
	if cores < 2 {
		cores = 2
	}
	const iters = 3000
	packed, _, err := FalseSharing(spec, cores, iters, 8)
	if err != nil {
		return Outcome{}, err
	}
	padded, _, err := FalseSharing(spec, cores, iters, spec.LineBytes()*2)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Wasteful: packed, Remedied: padded}, nil
}
