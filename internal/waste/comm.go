package waste

import (
	"fmt"

	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/pgas"
	"tenways/internal/report"
)

// HaloExchange simulates `steps` sweeps of a 1-D block-decomposed Jacobi
// grid on p ranks, exchanging `words` float64s with each neighbour per
// step, and returns the modeled makespan, energy, and wire bytes. It is
// shared by RunW2 (words = full block vs boundary row) and figure F2.
func HaloExchange(spec *machine.Spec, p, gridN, steps, words int) (Result, int64, error) {
	w := pgas.NewWorld(p, spec, nil, nil)
	w.Alloc("halo", 2*words)
	hm := kernels.HaloModel{N: gridN, P: p}
	buf := make([]float64, words)
	makespan, err := w.Run(func(r *pgas.Rank) {
		id := r.ID()
		for s := 0; s < steps; s++ {
			expect := int64(0)
			if id > 0 {
				r.PutSignal(id-1, "halo", words, buf, "halo")
				expect++
			}
			if id < p-1 {
				r.PutSignal(id+1, "halo", 0, buf, "halo")
				expect++
			}
			r.WaitSignal("halo", int64(s)*expect+expect)
			r.Compute(hm.StepFlopsPerRank(), hm.StepBytesPerRank())
		}
	})
	if err != nil {
		return Result{}, 0, err
	}
	bytes := w.Stats().BytesSent
	return Result{
		Seconds: makespan,
		Joules:  w.Meter().Total(),
		Detail:  fmt.Sprintf("%s on the wire", report.FormatBytes(float64(bytes))),
	}, bytes, nil
}

// RunW2 contrasts re-fetching the neighbour's whole block every step with
// exchanging only the boundary row.
func RunW2(spec *machine.Spec) (Outcome, error) {
	const (
		p     = 16
		gridN = 1024
		steps = 20
	)
	hm := kernels.HaloModel{N: gridN, P: p}
	wasteful, _, err := HaloExchange(spec, p, gridN, steps, hm.WastefulWords()/2)
	if err != nil {
		return Outcome{}, err
	}
	remedied, _, err := HaloExchange(spec, p, gridN, steps, hm.HaloWords()/2)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Wasteful: wasteful, Remedied: remedied}, nil
}

// OverlapExchange simulates `steps` rounds in which each of p ranks sends
// `words` float64s around a ring and computes for computeFlops flops. With
// overlap=false the send blocks before computing; with overlap=true the
// send is split-phase and computation hides the transfer. Shared by RunW6
// and figure F6.
func OverlapExchange(spec *machine.Spec, p, steps, words int, computeFlops float64, overlap bool) (Result, error) {
	w := pgas.NewWorld(p, spec, nil, nil)
	w.Alloc("ring", words)
	buf := make([]float64, words)
	makespan, err := w.Run(func(r *pgas.Rank) {
		right := (r.ID() + 1) % p
		for s := 0; s < steps; s++ {
			h := r.PutSignal(right, "ring", 0, buf, "ring")
			if overlap {
				r.Compute(computeFlops, 0)
				h.Wait()
			} else {
				h.Wait()
				r.Compute(computeFlops, 0)
			}
			r.WaitSignal("ring", int64(s+1))
		}
	})
	if err != nil {
		return Result{}, err
	}
	style := "blocking"
	if overlap {
		style = "split-phase"
	}
	return Result{
		Seconds: makespan,
		Joules:  w.Meter().Total(),
		Detail:  fmt.Sprintf("%s, %d msgs", style, w.Stats().Messages),
	}, nil
}

// RunW6 contrasts blocking exchange-then-compute with overlapped
// split-phase exchange, sized so communication and computation are
// comparable (the regime where overlap pays most).
func RunW6(spec *machine.Spec) (Outcome, error) {
	const (
		p     = 16
		steps = 50
	)
	words := 4096
	msgTime := spec.MsgTimeSec(float64(8 * words))
	computeFlops := msgTime * spec.PeakFlopsPerCore() // compute ≈ comm
	wasteful, err := OverlapExchange(spec, p, steps, words, computeFlops, false)
	if err != nil {
		return Outcome{}, err
	}
	remedied, err := OverlapExchange(spec, p, steps, words, computeFlops, true)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Wasteful: wasteful, Remedied: remedied}, nil
}

// BulkTransfer moves `words` float64s from rank 0 to rank 1 in messages of
// msgWords each (pipelined split-phase issues), returning the modeled
// completion. Shared by RunW7 and figure F7.
func BulkTransfer(spec *machine.Spec, words, msgWords int) (Result, error) {
	w := pgas.NewWorld(2, spec, nil, nil)
	w.Alloc("bulk", words)
	makespan, err := w.Run(func(r *pgas.Rank) {
		if r.ID() != 0 {
			nMsgs := (words + msgWords - 1) / msgWords
			r.WaitSignal("bulk", int64(nMsgs))
			return
		}
		buf := make([]float64, msgWords)
		var last *pgas.Handle
		for off := 0; off < words; off += msgWords {
			n := msgWords
			if off+n > words {
				n = words - off
			}
			last = r.PutSignal(1, "bulk", off, buf[:n], "bulk")
		}
		last.Wait()
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Seconds: makespan,
		Joules:  w.Meter().Total(),
		Detail:  fmt.Sprintf("%d messages", w.Stats().Messages),
	}, nil
}

// RunW7 contrasts one-word messages with a single aggregated transfer.
func RunW7(spec *machine.Spec) (Outcome, error) {
	const words = 8192
	wasteful, err := BulkTransfer(spec, words, 1)
	if err != nil {
		return Outcome{}, err
	}
	remedied, err := BulkTransfer(spec, words, words)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Wasteful: wasteful, Remedied: remedied}, nil
}
