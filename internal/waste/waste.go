// Package waste implements the ten ways to waste a parallel computer as
// executable demonstrators. Each Mode pairs a wasteful implementation with
// its remedied counterpart; running a mode on a machine spec yields both
// variants' modeled time and energy, from which the T1 summary table's
// waste factors are computed.
//
// Demonstrators run on the modeled plane (cache simulator, PGAS/DES
// runtime, analytic cost models) so the numbers are deterministic and
// reflect the machine spec rather than the host. The measured-plane
// counterparts for W4/W5/W9/W10 live in the bench harness.
package waste

import (
	"fmt"

	"tenways/internal/machine"
)

// Result is one variant's modeled cost.
type Result struct {
	Seconds float64
	Joules  float64
	Detail  string // human-readable note, e.g. bytes moved or messages sent
}

// Outcome pairs the two variants of one demonstrator.
type Outcome struct {
	Wasteful Result
	Remedied Result
}

// TimeFactor returns wasteful/remedied time — how many times slower the
// wasteful variant is.
func (o Outcome) TimeFactor() float64 { return o.Wasteful.Seconds / o.Remedied.Seconds }

// EnergyFactor returns wasteful/remedied energy.
func (o Outcome) EnergyFactor() float64 { return o.Wasteful.Joules / o.Remedied.Joules }

// Mode is one of the ten ways.
type Mode struct {
	ID           string // "W1".."W10"
	Name         string
	AbstractHook string // the sentence of the keynote abstract it reifies
	Wasteful     string // what the wasteful variant does
	Remedy       string // what the remedied variant does
	Run          func(spec *machine.Spec) (Outcome, error)
}

// Modes returns the ten ways in canonical order.
func Modes() []Mode {
	return []Mode{
		{
			ID:           "W1",
			Name:         "re-move data through the memory hierarchy",
			AbstractHook: "software often moves data up and down the memory hierarchy ... multiple times",
			Wasteful:     "naive triple-loop matmul streaming operands from DRAM every pass",
			Remedy:       "cache-blocked matmul fetching each element O(n/b) fewer times",
			Run:          RunW1,
		},
		{
			ID:           "W2",
			Name:         "send the same data across the network more than once",
			AbstractHook: "or across a network multiple times",
			Wasteful:     "halo exchange that re-fetches the neighbour's whole block every step",
			Remedy:       "exchange only the boundary rows each step",
			Run:          RunW2,
		},
		{
			ID:           "W3",
			Name:         "over-synchronise",
			AbstractHook: "waste time and therefore energy waiting for ... synchronization",
			Wasteful:     "global barrier after every substep",
			Remedy:       "point-to-point neighbour signals only",
			Run:          RunW3,
		},
		{
			ID:           "W4",
			Name:         "leave cores idle through load imbalance",
			AbstractHook: "waste time and therefore energy waiting",
			Wasteful:     "static block partition of power-law task costs",
			Remedy:       "dynamic self-scheduling (greedy list scheduling)",
			Run:          RunW4,
		},
		{
			ID:           "W5",
			Name:         "serialise on shared state",
			AbstractHook: "waiting for ... interactions with ... other systems",
			Wasteful:     "every update funnels through one global lock",
			Remedy:       "sharded private state combined once at the end",
			Run:          RunW5,
		},
		{
			ID:           "W6",
			Name:         "wait on latency instead of overlapping",
			AbstractHook: "waste time and therefore energy waiting for communication",
			Wasteful:     "blocking exchange, then compute",
			Remedy:       "split-phase communication overlapped with compute",
			Run:          RunW6,
		},
		{
			ID:           "W7",
			Name:         "send many small messages",
			AbstractHook: "waiting for communication",
			Wasteful:     "one message per element",
			Remedy:       "aggregate into one bulk transfer",
			Run:          RunW7,
		},
		{
			ID:           "W8",
			Name:         "mismatch the algorithm to the machine balance",
			AbstractHook: "a design that is poorly matched to the computational requirements will end up being inefficient",
			Wasteful:     "low-intensity streaming formulation far below the ridge point",
			Remedy:       "high-intensity blocked formulation of the same computation",
			Run:          RunW8,
		},
		{
			ID:           "W9",
			Name:         "ping-pong cache lines between cores",
			AbstractHook: "moves data up and down the memory hierarchy ... multiple times",
			Wasteful:     "per-core counters packed on one cache line (false sharing)",
			Remedy:       "pad each counter to its own line",
			Run:          RunW9,
		},
		{
			ID:           "W10",
			Name:         "burn energy while idle",
			AbstractHook: "interactions with users or other systems ... how much science can be done per Joule",
			Wasteful:     "spin-wait at full power on a non-proportional machine",
			Remedy:       "blocking wait on an energy-proportional machine",
			Run:          RunW10,
		},
	}
}

// ByID returns the mode with the given ID, or an error.
func ByID(id string) (Mode, error) {
	for _, m := range Modes() {
		if m.ID == id {
			return m, nil
		}
	}
	return Mode{}, fmt.Errorf("waste: unknown mode %q", id)
}
