package waste

import (
	"fmt"

	"tenways/internal/collective"
	"tenways/internal/machine"
	"tenways/internal/pgas"
)

// OversyncSweep simulates `steps`×`substeps` compute phases on p ranks
// with deterministic per-rank jitter, synchronising each substep either
// with a global dissemination barrier (wasteful) or with nearest-neighbour
// signals (remedied). Shared by RunW3 and figure F3.
func OversyncSweep(spec *machine.Spec, p, steps, substeps int, global bool) (Result, error) {
	w := pgas.NewWorld(p, spec, nil, nil)
	base := 2e-5 // seconds of compute per substep
	makespan, err := w.Run(func(r *pgas.Rank) {
		c := collective.New(r)
		id := r.ID()
		jitter := 1 + float64(id%7)/20
		sync := int64(0)
		for s := 0; s < steps*substeps; s++ {
			r.Lapse(base * jitter)
			if global {
				c.BarrierDissemination()
				continue
			}
			expect := int64(0)
			if id > 0 {
				r.Signal(id-1, "nb")
				expect++
			}
			if id < p-1 {
				r.Signal(id+1, "nb")
				expect++
			}
			sync += expect
			r.WaitSignal("nb", sync)
		}
	})
	if err != nil {
		return Result{}, err
	}
	style := "neighbour sync"
	if global {
		style = "global barrier"
	}
	return Result{
		Seconds: makespan,
		Joules:  w.Meter().Total(),
		Detail:  fmt.Sprintf("%s, %d msgs", style, w.Stats().Messages+w.Stats().Signals),
	}, nil
}

// RunW3 contrasts a global barrier per substep with neighbour-only
// synchronisation on 64 ranks.
func RunW3(spec *machine.Spec) (Outcome, error) {
	const (
		p        = 64
		steps    = 10
		substeps = 4
	)
	wasteful, err := OversyncSweep(spec, p, steps, substeps, true)
	if err != nil {
		return Outcome{}, err
	}
	remedied, err := OversyncSweep(spec, p, steps, substeps, false)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Wasteful: wasteful, Remedied: remedied}, nil
}

// Serialization models N updates applied by p cores. Locked: every update
// acquires one global lock, so updates serialise and each acquisition
// ping-pongs the lock's cache line between cores (one coherence transfer).
// Sharded: each core updates a private accumulator and the p partials are
// combined once. Shared by RunW5 and figure F5's modeled series.
func Serialization(spec *machine.Spec, p, updates int, locked bool) Result {
	flopsPerUpdate := 10.0
	tUpdate := spec.FlopTimeSec(flopsPerUpdate)
	// Lock handoff between cores costs a coherence line transfer; we use
	// the deepest cache's latency as the transfer time, as the cache
	// simulator does.
	tLock := spec.CycleSec() * spec.Levels[len(spec.Levels)-1].LatencyCycles
	var makespan, busyPer float64
	if locked {
		// The critical section serialises everything.
		makespan = float64(updates) * (tUpdate + tLock)
		busyPer = makespan / float64(p) // each core holds the lock 1/p of the time
	} else {
		perCore := (float64(updates)/float64(p))*tUpdate + float64(p)*tUpdate
		makespan = perCore
		busyPer = perCore
	}
	j := 0.0
	for c := 0; c < p; c++ {
		j += spec.BusyEnergyJ(busyPer) + spec.IdleEnergyJ(makespan-busyPer)
	}
	j += spec.FlopEnergyJ(flopsPerUpdate * float64(updates))
	style := "sharded"
	if locked {
		style = "global lock"
	}
	return Result{
		Seconds: makespan,
		Joules:  j,
		Detail:  fmt.Sprintf("%s, %d cores", style, p),
	}
}

// RunW5 contrasts a global lock with sharded accumulation on one node.
func RunW5(spec *machine.Spec) (Outcome, error) {
	p := spec.CoresPerNode
	if p < 2 {
		p = 2
	}
	const updates = 1 << 20
	return Outcome{
		Wasteful: Serialization(spec, p, updates, true),
		Remedied: Serialization(spec, p, updates, false),
	}, nil
}
