package waste

import (
	"fmt"

	"tenways/internal/machine"
)

// IdleEnergy models a core that alternates busySec of useful work with
// waitSec of waiting on an external system (I/O, a user, another service),
// for rounds repetitions. spin selects busy-waiting (full power while
// waiting) versus blocking (idle power). Shared by RunW10 and figure F10.
func IdleEnergy(spec *machine.Spec, busySec, waitSec float64, rounds int, spin bool) Result {
	total := float64(rounds) * (busySec + waitSec)
	busy := float64(rounds) * busySec
	wait := float64(rounds) * waitSec
	var j float64
	if spin {
		j = spec.BusyEnergyJ(busy + wait)
	} else {
		j = spec.BusyEnergyJ(busy) + spec.IdleEnergyJ(wait)
	}
	style := "blocked"
	if spin {
		style = "spinning"
	}
	return Result{
		Seconds: total,
		Joules:  j,
		Detail:  fmt.Sprintf("%s through %.0f%% idle", style, 100*wait/total),
	}
}

// RunW10 contrasts spin-waiting on the machine as configured with blocked
// waiting on its energy-proportional variant, for a 10%-duty-cycle
// workload (compute 1 ms, wait 9 ms, 100 rounds). Wall time is identical
// by construction; the whole factor is energy — the keynote's "per Joule"
// point in its purest form.
func RunW10(spec *machine.Spec) (Outcome, error) {
	const (
		busy   = 1e-3
		wait   = 9e-3
		rounds = 100
	)
	prop := spec.WithProportionalPower(0.1)
	return Outcome{
		Wasteful: IdleEnergy(spec, busy, wait, rounds, true),
		Remedied: IdleEnergy(prop, busy, wait, rounds, false),
	}, nil
}
