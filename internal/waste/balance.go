package waste

import (
	"fmt"

	"tenways/internal/machine"
	"tenways/internal/workload"
)

// StaticMakespan partitions task costs (seconds) into p contiguous blocks
// and returns the makespan and per-worker busy times — the wasteful W4
// schedule.
func StaticMakespan(costs []float64, p int) (makespan float64, busy []float64) {
	busy = make([]float64, p)
	n := len(costs)
	for w := 0; w < p; w++ {
		lo := w * n / p
		hi := (w + 1) * n / p
		for _, c := range costs[lo:hi] {
			busy[w] += c
		}
		if busy[w] > makespan {
			makespan = busy[w]
		}
	}
	return makespan, busy
}

// DynamicMakespan list-schedules the tasks in order onto the earliest-free
// worker — the behaviour of a central task queue or work stealing — and
// returns the makespan and per-worker busy times.
func DynamicMakespan(costs []float64, p int) (makespan float64, busy []float64) {
	busy = make([]float64, p)
	free := make([]float64, p) // next-free time per worker
	for _, c := range costs {
		w := 0
		for i := 1; i < p; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		free[w] += c
		busy[w] += c
	}
	for _, f := range free {
		if f > makespan {
			makespan = f
		}
	}
	return makespan, busy
}

// scheduleEnergy converts a schedule into joules on the machine: busy time
// at busy watts, the rest of the makespan at idle watts, per worker.
func scheduleEnergy(spec *machine.Spec, makespan float64, busy []float64) float64 {
	j := 0.0
	for _, b := range busy {
		j += spec.BusyEnergyJ(b) + spec.IdleEnergyJ(makespan-b)
	}
	return j
}

// Imbalance runs the W4 demonstrator at the given Zipf skew exponent on p
// workers, returning both schedules. Costs are sorted heavy-first — the
// layout of real applications whose expensive iterations cluster spatially
// (refined mesh regions, dense matrix rows) — so a static block partition
// hands one worker the giants. Shared by RunW4 and figure F4.
func Imbalance(spec *machine.Spec, p int, skew float64) (Outcome, error) {
	const nTasks = 4096
	meanSec := 1e-4
	costs := workload.NewTaskDist(2009).ZipfSorted(nTasks, skew, meanSec)

	mkS, busyS := StaticMakespan(costs, p)
	mkD, busyD := DynamicMakespan(costs, p)
	ideal := 0.0
	for _, c := range costs {
		ideal += c
	}
	ideal /= float64(p)
	return Outcome{
		Wasteful: Result{
			Seconds: mkS,
			Joules:  scheduleEnergy(spec, mkS, busyS),
			Detail:  fmt.Sprintf("static, %.0f%% efficiency", 100*ideal/mkS),
		},
		Remedied: Result{
			Seconds: mkD,
			Joules:  scheduleEnergy(spec, mkD, busyD),
			Detail:  fmt.Sprintf("dynamic, %.0f%% efficiency", 100*ideal/mkD),
		},
	}, nil
}

// RunW4 contrasts static and dynamic scheduling of heavily skewed tasks on
// one node's worth of cores.
func RunW4(spec *machine.Spec) (Outcome, error) {
	p := spec.CoresPerNode
	if p < 2 {
		p = 2
	}
	if p > 64 {
		p = 64
	}
	return Imbalance(spec, p, 1.4)
}
