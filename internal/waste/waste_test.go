package waste

import (
	"testing"

	"tenways/internal/machine"
)

func spec() *machine.Spec { return machine.Petascale2009() }

func TestAllModesWastefulLoses(t *testing.T) {
	// The paper's thesis in one test: on a 2009 petascale machine, every
	// one of the ten ways costs real time or energy, and its remedy wins.
	for _, m := range Modes() {
		m := m
		t.Run(m.ID, func(t *testing.T) {
			out, err := m.Run(spec())
			if err != nil {
				t.Fatal(err)
			}
			if out.Wasteful.Seconds <= 0 || out.Remedied.Seconds <= 0 {
				t.Fatalf("non-positive times: %+v", out)
			}
			if out.Wasteful.Joules <= 0 || out.Remedied.Joules <= 0 {
				t.Fatalf("non-positive energy: %+v", out)
			}
			// W10 trades no time, only energy; every other mode loses time.
			if m.ID != "W10" && out.TimeFactor() <= 1 {
				t.Errorf("%s: wasteful should be slower, factor %.3f", m.ID, out.TimeFactor())
			}
			if out.EnergyFactor() <= 1 {
				t.Errorf("%s: wasteful should burn more energy, factor %.3f", m.ID, out.EnergyFactor())
			}
		})
	}
}

func TestModesRegistry(t *testing.T) {
	ms := Modes()
	if len(ms) != 10 {
		t.Fatalf("expected 10 modes, got %d", len(ms))
	}
	for i, m := range ms {
		want := "W" + itoa(i+1)
		if m.ID != want {
			t.Errorf("mode %d ID = %q, want %q", i, m.ID, want)
		}
		if m.Name == "" || m.AbstractHook == "" || m.Wasteful == "" || m.Remedy == "" || m.Run == nil {
			t.Errorf("%s: incomplete descriptor", m.ID)
		}
	}
	if _, err := ByID("W7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("W11"); err == nil {
		t.Fatal("expected error for W11")
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestW1BlockSweepMonotoneTraffic(t *testing.T) {
	// Bigger working blocks than cache -> more traffic than small blocks.
	_, small, err := MatmulLocality(spec(), 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, large, err := MatmulLocality(spec(), 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if small >= large {
		t.Fatalf("block 8 traffic %d should be below naive %d", small, large)
	}
}

func TestW2BytesScaleWithWords(t *testing.T) {
	_, bSmall, err := HaloExchange(spec(), 4, 256, 5, 256)
	if err != nil {
		t.Fatal(err)
	}
	_, bBig, err := HaloExchange(spec(), 4, 256, 5, 2560)
	if err != nil {
		t.Fatal(err)
	}
	if bBig <= bSmall {
		t.Fatalf("more words should move more bytes: %d vs %d", bBig, bSmall)
	}
}

func TestW3BarrierCostGrowsWithRanks(t *testing.T) {
	small, err := OversyncSweep(spec(), 8, 5, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	big, err := OversyncSweep(spec(), 64, 5, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if big.Seconds <= small.Seconds {
		t.Fatalf("global sync should cost more at scale: %g vs %g", big.Seconds, small.Seconds)
	}
}

func TestW4SkewKnob(t *testing.T) {
	flat, err := Imbalance(spec(), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Imbalance(spec(), 8, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if skewed.TimeFactor() <= flat.TimeFactor() {
		t.Fatalf("higher skew should widen the static/dynamic gap: %g vs %g",
			skewed.TimeFactor(), flat.TimeFactor())
	}
	// With no skew, static is nearly optimal.
	if flat.TimeFactor() > 1.05 {
		t.Fatalf("uniform tasks should not benefit from stealing: %g", flat.TimeFactor())
	}
}

func TestW4DynamicNeverWorseThanStaticOnSkew(t *testing.T) {
	for _, s := range []float64{0.4, 0.8, 1.2, 1.6} {
		out, err := Imbalance(spec(), 16, s)
		if err != nil {
			t.Fatal(err)
		}
		if out.TimeFactor() < 0.999 {
			t.Fatalf("skew %g: dynamic slower than static (factor %g)", s, out.TimeFactor())
		}
	}
}

func TestW5LockScalesWithUpdatesNotCores(t *testing.T) {
	a := Serialization(spec(), 4, 1000, true)
	b := Serialization(spec(), 32, 1000, true)
	// Locked makespan is ~independent of core count.
	if b.Seconds < a.Seconds*0.99 {
		t.Fatalf("locked time should not improve with cores: %g vs %g", b.Seconds, a.Seconds)
	}
	sh4 := Serialization(spec(), 4, 1000, false)
	sh32 := Serialization(spec(), 32, 1000, false)
	if sh32.Seconds >= sh4.Seconds {
		t.Fatalf("sharded should scale: %g vs %g", sh32.Seconds, sh4.Seconds)
	}
}

func TestW6OverlapBounded(t *testing.T) {
	// Overlap can at best hide the smaller of comm and compute: the
	// remedied time must be at least max(comm, compute) per step.
	out, err := RunW6(spec())
	if err != nil {
		t.Fatal(err)
	}
	if out.TimeFactor() > 2.05 {
		t.Fatalf("overlap cannot beat 2x with comm==compute, got %g", out.TimeFactor())
	}
	if out.TimeFactor() < 1.2 {
		t.Fatalf("overlap should recover a sizeable fraction, got %g", out.TimeFactor())
	}
}

func TestW7CrossoverDirection(t *testing.T) {
	// Mid-size messages land between the extremes.
	one, err := BulkTransfer(spec(), 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := BulkTransfer(spec(), 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := BulkTransfer(spec(), 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !(bulk.Seconds < mid.Seconds && mid.Seconds < one.Seconds) {
		t.Fatalf("aggregation ordering violated: %g %g %g", one.Seconds, mid.Seconds, bulk.Seconds)
	}
}

func TestW8FactorsLargerOnExascale(t *testing.T) {
	// The mismatch penalty grows as machines get more flop-rich: the
	// keynote's warning about future machines.
	p2009, err := RunW8(machine.Petascale2009())
	if err != nil {
		t.Fatal(err)
	}
	exa, err := RunW8(machine.Exascale())
	if err != nil {
		t.Fatal(err)
	}
	if exa.TimeFactor() <= p2009.TimeFactor() {
		t.Fatalf("mismatch should hurt more at exascale: %g vs %g",
			exa.TimeFactor(), p2009.TimeFactor())
	}
}

func TestW9InvalidationsVanishWithPadding(t *testing.T) {
	_, invPacked, err := FalseSharing(spec(), 4, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	if invPacked == 0 {
		t.Fatal("packed counters should invalidate")
	}
	_, invPadded, err := FalseSharing(spec(), 4, 500, 128)
	if err != nil {
		t.Fatal(err)
	}
	if invPadded != 0 {
		t.Fatalf("padded counters should not invalidate, got %d", invPadded)
	}
}

func TestW10EnergyOnlyWaste(t *testing.T) {
	out, err := RunW10(spec())
	if err != nil {
		t.Fatal(err)
	}
	if out.TimeFactor() != 1 {
		t.Fatalf("W10 should not change wall time, factor %g", out.TimeFactor())
	}
	if out.EnergyFactor() < 3 {
		t.Fatalf("spin on non-proportional hardware should waste >3x energy, got %g", out.EnergyFactor())
	}
}

func TestW10DutyCycleShape(t *testing.T) {
	// The more idle the workload, the bigger the spin penalty.
	lowIdle := IdleEnergy(spec(), 9e-3, 1e-3, 10, true).Joules /
		IdleEnergy(spec(), 9e-3, 1e-3, 10, false).Joules
	highIdle := IdleEnergy(spec(), 1e-3, 9e-3, 10, true).Joules /
		IdleEnergy(spec(), 1e-3, 9e-3, 10, false).Joules
	if highIdle <= lowIdle {
		t.Fatalf("penalty should grow with idleness: %g vs %g", highIdle, lowIdle)
	}
}

func TestOutcomeFactors(t *testing.T) {
	o := Outcome{
		Wasteful: Result{Seconds: 10, Joules: 100},
		Remedied: Result{Seconds: 2, Joules: 20},
	}
	if o.TimeFactor() != 5 || o.EnergyFactor() != 5 {
		t.Fatalf("factors = %g, %g", o.TimeFactor(), o.EnergyFactor())
	}
}

func TestAllModesRunOnLaptop(t *testing.T) {
	// The demonstrators must be robust to a small machine (2 cores, UMA,
	// weak network), not just the default petascale node.
	laptop := machine.Laptop2009()
	for _, m := range Modes() {
		out, err := m.Run(laptop)
		if err != nil {
			t.Fatalf("%s on laptop: %v", m.ID, err)
		}
		if out.EnergyFactor() <= 1 {
			t.Errorf("%s on laptop: energy factor %.3f", m.ID, out.EnergyFactor())
		}
	}
}
