package collective

import (
	"fmt"
	"strconv"
)

// AlltoallPersonalized performs the all-to-all personalised exchange: rank
// i's data[j] is delivered to rank j, and the call returns what this rank
// received, indexed by source (out[me] is this rank's own block, copied).
// Block sizes may differ arbitrarily: a one-word count header precedes
// each block, as in MPI_Alltoallv implementations.
//
// Two variants: chunkWords <= 0 sends each block as one bulk message (the
// remedied form); chunkWords > 0 splits every block into messages of at
// most chunkWords words — the W7 anti-pattern, used by the wasteful sort
// campaign. In chunked mode, chunks of unequal size can be delivered out
// of order (smaller messages overtake larger ones on the modeled network),
// so the payload must be order-insensitive within a block — true for the
// sort campaign, which re-sorts received keys anyway.
func (c *Comm) AlltoallPersonalized(data [][]float64, chunkWords int) [][]float64 {
	c.ops.Inc()
	r := c.r
	n := r.N()
	if len(data) != n {
		panic(fmt.Sprintf("collective: alltoall needs %d blocks, got %d", n, len(data)))
	}
	me := r.ID()
	out := make([][]float64, n)
	out[me] = append([]float64(nil), data[me]...)
	// Send phase: all sends are fire-and-forget, so no deadlock regardless
	// of ordering. A count header goes first on its own box.
	for off := 1; off < n; off++ {
		dst := (me + off) % n
		block := data[dst]
		c.send(dst, "a2a.cnt."+strconv.Itoa(me), []float64{float64(len(block))})
		if len(block) == 0 {
			continue
		}
		box := "a2a." + strconv.Itoa(me)
		if chunkWords <= 0 || chunkWords >= len(block) {
			c.send(dst, box, block)
			continue
		}
		for lo := 0; lo < len(block); lo += chunkWords {
			hi := lo + chunkWords
			if hi > len(block) {
				hi = len(block)
			}
			c.send(dst, box, block[lo:hi])
		}
	}
	// Receive phase: header first, then accumulate until complete.
	for off := 1; off < n; off++ {
		src := (me + off) % n
		hdr := r.Recv("a2a.cnt." + strconv.Itoa(src))
		want := int(hdr[0])
		buf := make([]float64, 0, want)
		box := "a2a." + strconv.Itoa(src)
		for len(buf) < want {
			buf = append(buf, r.Recv(box)...)
		}
		out[src] = buf
	}
	return out
}
