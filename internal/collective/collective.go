// Package collective implements classic collective-communication
// algorithms — barriers, broadcasts, and allreduces — on top of the pgas
// runtime, in several variants each, so the experiments can compare their
// scaling (T3, F14) and demonstrate the over-synchronisation waste (W3).
//
// Every rank of a world must call the same collective the same number of
// times, passing the Comm it created at startup. Barriers are built on
// pgas signal counters; the data-carrying collectives on pgas mailboxes,
// which copy at delivery time and so need no buffer management. One
// constraint inherited from the network model's per-sender FIFO-by-size
// ordering: repeated calls to the same vector collective on one world must
// use the same vector length (all the experiments do).
package collective

import (
	"fmt"
	"math/bits"
	"strconv"

	"tenways/internal/obs"
	"tenways/internal/pgas"
)

// Op is a binary reduction operator; it must be associative and commutative
// for the tree algorithms to equal the flat reference.
type Op func(a, b float64) float64

// Sum is the addition operator.
func Sum(a, b float64) float64 { return a + b }

// Max is the maximum operator.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Comm is one rank's collective context. Create exactly one per rank at the
// start of the rank body.
type Comm struct {
	r      *pgas.Rank
	counts map[string]int64 // consumed-signal thresholds per flag

	// Hot-path instruments, fetched once from the world's registry: ops
	// counts collective invocations, bytes the payload this rank injected
	// into collectives (signals count as 8 bytes like the pgas runtime's).
	ops   *obs.Counter
	bytes *obs.Counter
}

// New creates the rank's collective context.
func New(r *pgas.Rank) *Comm {
	reg := r.World().Obs()
	return &Comm{
		r:      r,
		counts: make(map[string]int64),
		ops:    reg.Counter("collective.ops"),
		bytes:  reg.Counter("collective.bytes"),
	}
}

// send is pgas.Rank.Send with byte accounting.
func (c *Comm) send(dst int, box string, vals []float64) {
	c.bytes.Add(int64(8 * len(vals)))
	c.r.Send(dst, box, vals)
}

// signal is pgas.Rank.Signal with byte accounting (signals are 8-byte
// messages in the runtime's cost model).
func (c *Comm) signal(dst int, flag string) {
	c.bytes.Add(8)
	c.r.Signal(dst, flag)
}

// Rank returns the underlying pgas rank.
func (c *Comm) Rank() *pgas.Rank { return c.r }

// waitMore blocks until k further signals beyond all previously consumed
// ones have arrived on flag.
func (c *Comm) waitMore(flag string, k int64) {
	c.counts[flag] += k
	c.r.WaitSignal(flag, c.counts[flag])
}

// waitSync is waitMore inside a Sync section: the blocked time is
// attributed to sync-wait rather than comm-wait. Barriers use it.
func (c *Comm) waitSync(flag string, k int64) {
	c.r.Sync(func() { c.waitMore(flag, k) })
}

// BarrierCentral is the naive barrier: everyone signals rank 0; rank 0
// signals everyone back. O(P) serialised messages at the root.
func (c *Comm) BarrierCentral() {
	c.ops.Inc()
	r := c.r
	n := r.N()
	if n == 1 {
		return
	}
	if r.ID() == 0 {
		c.waitSync("bar.c.up", int64(n-1))
		for d := 1; d < n; d++ {
			c.signal(d, "bar.c.down")
		}
	} else {
		c.signal(0, "bar.c.up")
		c.waitSync("bar.c.down", 1)
	}
}

// BarrierDissemination is the O(log P) dissemination barrier: in round k,
// rank i signals rank (i+2^k) mod P and waits for the symmetric signal.
func (c *Comm) BarrierDissemination() {
	c.ops.Inc()
	r := c.r
	n := r.N()
	for k, dist := 0, 1; dist < n; k, dist = k+1, dist*2 {
		flag := "bar.d." + strconv.Itoa(k)
		c.signal((r.ID()+dist)%n, flag)
		c.waitSync(flag, 1)
	}
}

// BarrierTree is a binomial combine-then-broadcast barrier: O(log P) depth
// with half the messages of dissemination.
func (c *Comm) BarrierTree() {
	c.ops.Inc()
	r := c.r
	n := r.N()
	if n == 1 {
		return
	}
	id := r.ID()
	if nch := len(children(id, n)); nch > 0 {
		c.waitSync("bar.t.up", int64(nch))
	}
	if id != 0 {
		c.signal(parent(id), "bar.t.up")
		c.waitSync("bar.t.down", 1)
	}
	for _, ch := range children(id, n) {
		c.signal(ch, "bar.t.down")
	}
}

// BarrierBegin posts this rank's arrival at a split-phase tree barrier and
// returns immediately (after send overhead at most): the MPI_Ibarrier
// pattern. Leaves propagate their arrival up the binomial tree at once;
// internal ranks combine children in BarrierEnd. Work done between
// BarrierBegin and BarrierEnd overlaps the barrier, which is what lets a
// non-blocking barrier absorb injected noise instead of relaying it — the
// chaos idle-wave experiments' remedied stack. Begin/End pairs must not
// overlap on one rank; successive epochs are fine.
func (c *Comm) BarrierBegin() {
	c.ops.Inc()
	r := c.r
	n := r.N()
	if n == 1 {
		return
	}
	id := r.ID()
	if id != 0 && len(children(id, n)) == 0 {
		c.signal(parent(id), "bar.nb.up")
	}
}

// BarrierEnd completes the split-phase barrier begun by the matching
// BarrierBegin, blocking (as sync-wait) until every rank's arrival has been
// combined and the release has propagated back down the tree.
func (c *Comm) BarrierEnd() {
	c.ops.Inc()
	r := c.r
	n := r.N()
	if n == 1 {
		return
	}
	id := r.ID()
	ch := children(id, n)
	if len(ch) > 0 {
		c.waitSync("bar.nb.up", int64(len(ch)))
		if id != 0 {
			c.signal(parent(id), "bar.nb.up")
		}
	}
	if id != 0 {
		c.waitSync("bar.nb.down", 1)
	}
	for _, d := range ch {
		c.signal(d, "bar.nb.down")
	}
}

// parent returns the binomial-tree parent of a non-zero vrank: the vrank
// with its highest set bit cleared.
func parent(vr int) int {
	return vr &^ (1 << (bits.Len(uint(vr)) - 1))
}

// children returns the binomial-tree children of vr on an n-rank tree:
// vr | 1<<k for every k above vr's highest set bit, while < n.
func children(vr, n int) []int {
	var out []int
	start := 0
	if vr != 0 {
		start = bits.Len(uint(vr))
	}
	for k := start; ; k++ {
		ch := vr | 1<<k
		if ch >= n {
			break
		}
		out = append(out, ch)
	}
	return out
}

// BroadcastFlat sends x from rank 0 to everyone with P−1 direct sends.
// All ranks return the broadcast vector.
func (c *Comm) BroadcastFlat(x []float64) []float64 {
	c.ops.Inc()
	r := c.r
	n := r.N()
	if r.ID() == 0 {
		for d := 1; d < n; d++ {
			c.send(d, "bc.flat", x)
		}
		return append([]float64(nil), x...)
	}
	return r.Recv("bc.flat")
}

// BroadcastTree broadcasts from rank 0 down a binomial tree: O(log P)
// depth versus the flat variant's O(P) serialisation at the root.
func (c *Comm) BroadcastTree(x []float64) []float64 {
	c.ops.Inc()
	r := c.r
	var data []float64
	if r.ID() == 0 {
		data = append([]float64(nil), x...)
	} else {
		data = r.Recv("bc.tree")
	}
	for _, ch := range children(r.ID(), r.N()) {
		c.send(ch, "bc.tree", data)
	}
	return data
}

// AllreduceFlat is the naive allreduce: everyone sends its vector to rank
// 0, which combines and broadcasts. O(P) messages serialised at the root.
func (c *Comm) AllreduceFlat(x []float64, op Op) []float64 {
	c.ops.Inc()
	r := c.r
	n := r.N()
	m := len(x)
	if n == 1 {
		return append([]float64(nil), x...)
	}
	if r.ID() == 0 {
		acc := append([]float64(nil), x...)
		for src := 1; src < n; src++ {
			in := r.Recv("ar.flat.up")
			for i := 0; i < m; i++ {
				acc[i] = op(acc[i], in[i])
			}
		}
		r.Compute(float64((n-1)*m), float64(8*n*m)) // combining cost
		for d := 1; d < n; d++ {
			c.send(d, "ar.flat.down", acc)
		}
		return acc
	}
	c.send(0, "ar.flat.up", x)
	return r.Recv("ar.flat.down")
}

// AllreduceRecursiveDoubling runs the O(log P) recursive-doubling
// allreduce: each round exchanges full vectors with the rank at XOR
// distance 2^k. The rank count must be a power of two.
func (c *Comm) AllreduceRecursiveDoubling(x []float64, op Op) ([]float64, error) {
	c.ops.Inc()
	r := c.r
	n := r.N()
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("collective: recursive doubling needs power-of-two ranks, got %d", n)
	}
	m := len(x)
	acc := append([]float64(nil), x...)
	for k, dist := 0, 1; dist < n; k, dist = k+1, dist*2 {
		partner := r.ID() ^ dist
		box := "ar.rd." + strconv.Itoa(k)
		c.send(partner, box, acc)
		in := r.Recv(box)
		for i := 0; i < m; i++ {
			acc[i] = op(acc[i], in[i])
		}
		r.Compute(float64(m), float64(16*m))
	}
	return acc, nil
}

// AllreduceRing runs the bandwidth-optimal ring allreduce: a reduce-scatter
// of n−1 chunk steps followed by an allgather of n−1 chunk steps, sending
// only 2·m·(n−1)/n elements per rank in total. Works for any rank count.
func (c *Comm) AllreduceRing(x []float64, op Op) []float64 {
	c.ops.Inc()
	r := c.r
	n := r.N()
	m := len(x)
	if n == 1 {
		return append([]float64(nil), x...)
	}
	acc := append([]float64(nil), x...)
	id := r.ID()
	right := (id + 1) % n
	// Reduce-scatter: after n−1 steps, rank i owns the full reduction of
	// chunk (i+1) mod n.
	for s := 0; s < n-1; s++ {
		sendChunk := (id - s + n) % n
		recvChunk := (id - s - 1 + n) % n
		lo, hi := chunkRange(m, n, sendChunk)
		box := "ar.ring." + strconv.Itoa(s)
		c.send(right, box, acc[lo:hi])
		in := r.Recv(box)
		rlo, rhi := chunkRange(m, n, recvChunk)
		for i := rlo; i < rhi; i++ {
			acc[i] = op(acc[i], in[i-rlo])
		}
		r.Compute(float64(rhi-rlo), float64(16*(rhi-rlo)))
	}
	// Allgather: circulate the completed chunks.
	for s := 0; s < n-1; s++ {
		sendChunk := (id - s + 1 + n) % n
		recvChunk := (id - s + n) % n
		lo, hi := chunkRange(m, n, sendChunk)
		box := "ar.ring.g" + strconv.Itoa(s)
		c.send(right, box, acc[lo:hi])
		in := r.Recv(box)
		rlo, _ := chunkRange(m, n, recvChunk)
		copy(acc[rlo:], in)
	}
	return acc
}

// AllreduceAlgorithms lists the selectable allreduce implementations in
// canonical order — the enumerated axis the T3 tunable searches.
func AllreduceAlgorithms() []string { return []string{"flat", "rdouble", "ring"} }

// AllreduceByName dispatches an allreduce by algorithm name ("flat",
// "rdouble", "ring"), so algorithm selection can be a tuned parameter
// rather than a call-site constant.
func (c *Comm) AllreduceByName(alg string, x []float64, op Op) ([]float64, error) {
	switch alg {
	case "flat":
		return c.AllreduceFlat(x, op), nil
	case "rdouble":
		return c.AllreduceRecursiveDoubling(x, op)
	case "ring":
		return c.AllreduceRing(x, op), nil
	}
	return nil, fmt.Errorf("collective: unknown allreduce algorithm %q (known: %v)",
		alg, AllreduceAlgorithms())
}

// chunkRange partitions m elements into n nearly equal chunks and returns
// chunk i's half-open range.
func chunkRange(m, n, i int) (lo, hi int) {
	base := m / n
	rem := m % n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
