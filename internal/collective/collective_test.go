package collective

import (
	"math"
	"testing"
	"testing/quick"

	"tenways/internal/machine"
	"tenways/internal/pgas"
)

func spec() *machine.Spec { return machine.Petascale2009() }

// runWorld runs body on n ranks and returns the makespan.
func runWorld(t *testing.T, n int, body func(c *Comm)) float64 {
	t.Helper()
	w := pgas.NewWorld(n, spec(), nil, nil)
	end, err := w.Run(func(r *pgas.Rank) { body(New(r)) })
	if err != nil {
		t.Fatal(err)
	}
	return end
}

func TestBarriersComplete(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16} {
		for name, bar := range map[string]func(*Comm){
			"central":       (*Comm).BarrierCentral,
			"dissemination": (*Comm).BarrierDissemination,
			"tree":          (*Comm).BarrierTree,
		} {
			end := runWorld(t, n, func(c *Comm) {
				bar(c)
				bar(c) // repeated use must not interfere
			})
			if n > 1 && end <= 0 {
				t.Errorf("%s barrier on %d ranks took no time", name, n)
			}
		}
	}
}

func TestBarrierOrderingGuarantee(t *testing.T) {
	// No rank may exit the barrier before every rank has entered it.
	for name, bar := range map[string]func(*Comm){
		"central":       (*Comm).BarrierCentral,
		"dissemination": (*Comm).BarrierDissemination,
		"tree":          (*Comm).BarrierTree,
	} {
		n := 8
		enter := make([]float64, n)
		exit := make([]float64, n)
		runWorld(t, n, func(c *Comm) {
			// Stagger arrivals.
			c.Rank().Lapse(float64(c.Rank().ID()) * 1e-5)
			enter[c.Rank().ID()] = c.Rank().Now()
			bar(c)
			exit[c.Rank().ID()] = c.Rank().Now()
		})
		maxEnter := 0.0
		for _, e := range enter {
			if e > maxEnter {
				maxEnter = e
			}
		}
		for i, x := range exit {
			if x < maxEnter {
				t.Errorf("%s: rank %d exited at %g before last entry %g", name, i, x, maxEnter)
			}
		}
	}
}

func TestBarrierScalingShapes(t *testing.T) {
	// Central barrier is O(P) at the root; tree/dissemination are O(log P).
	central := map[int]float64{}
	dissem := map[int]float64{}
	for _, n := range []int{8, 64} {
		central[n] = runWorld(t, n, (*Comm).BarrierCentral)
		dissem[n] = runWorld(t, n, (*Comm).BarrierDissemination)
	}
	growthCentral := central[64] / central[8]
	growthDissem := dissem[64] / dissem[8]
	if growthCentral <= growthDissem {
		t.Errorf("central should grow faster: central %gx, dissemination %gx",
			growthCentral, growthDissem)
	}
	if dissem[64] >= central[64] {
		t.Errorf("dissemination (%g) should beat central (%g) at P=64",
			dissem[64], central[64])
	}
}

func TestBroadcastVariantsDeliver(t *testing.T) {
	want := []float64{3, 1, 4, 1, 5}
	for name, bc := range map[string]func(*Comm, []float64) []float64{
		"flat": (*Comm).BroadcastFlat,
		"tree": (*Comm).BroadcastTree,
	} {
		for _, n := range []int{1, 2, 5, 8} {
			got := make([][]float64, n)
			runWorld(t, n, func(c *Comm) {
				var x []float64
				if c.Rank().ID() == 0 {
					x = want
				} else {
					x = make([]float64, len(want))
				}
				got[c.Rank().ID()] = bc(c, x)
			})
			for rank, g := range got {
				for i := range want {
					if g[i] != want[i] {
						t.Fatalf("%s n=%d rank %d: got %v", name, n, rank, g)
					}
				}
			}
		}
	}
}

func TestBroadcastTreeBeatsFlatAtScale(t *testing.T) {
	n := 64
	x := make([]float64, 256)
	flat := runWorld(t, n, func(c *Comm) { c.BroadcastFlat(x) })
	tree := runWorld(t, n, func(c *Comm) { c.BroadcastTree(x) })
	if tree >= flat {
		t.Errorf("tree bcast (%g) should beat flat (%g) at P=%d", tree, flat, n)
	}
}

func allreduceRef(n, m int) []float64 {
	// Reference: rank r contributes x[i] = r + i.
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		for r := 0; r < n; r++ {
			out[i] += float64(r + i)
		}
	}
	return out
}

func rankVector(r, m int) []float64 {
	x := make([]float64, m)
	for i := range x {
		x[i] = float64(r + i)
	}
	return x
}

func TestAllreduceVariantsCorrect(t *testing.T) {
	const m = 17
	for _, n := range []int{1, 2, 4, 8} {
		want := allreduceRef(n, m)
		check := func(name string, got [][]float64) {
			for rank, g := range got {
				if g == nil {
					t.Fatalf("%s n=%d rank %d: nil result", name, n, rank)
				}
				for i := range want {
					if math.Abs(g[i]-want[i]) > 1e-9 {
						t.Fatalf("%s n=%d rank %d elem %d: got %g want %g",
							name, n, rank, i, g[i], want[i])
					}
				}
			}
		}

		flat := make([][]float64, n)
		runWorld(t, n, func(c *Comm) {
			flat[c.Rank().ID()] = c.AllreduceFlat(rankVector(c.Rank().ID(), m), Sum)
		})
		check("flat", flat)

		rd := make([][]float64, n)
		runWorld(t, n, func(c *Comm) {
			out, err := c.AllreduceRecursiveDoubling(rankVector(c.Rank().ID(), m), Sum)
			if err != nil {
				t.Error(err)
			}
			rd[c.Rank().ID()] = out
		})
		check("recursive-doubling", rd)

		ring := make([][]float64, n)
		runWorld(t, n, func(c *Comm) {
			ring[c.Rank().ID()] = c.AllreduceRing(rankVector(c.Rank().ID(), m), Sum)
		})
		check("ring", ring)
	}
}

func TestAllreduceRingOddRanks(t *testing.T) {
	const m = 10
	for _, n := range []int{3, 5, 7} {
		want := allreduceRef(n, m)
		got := make([][]float64, n)
		runWorld(t, n, func(c *Comm) {
			got[c.Rank().ID()] = c.AllreduceRing(rankVector(c.Rank().ID(), m), Sum)
		})
		for rank := range got {
			for i := range want {
				if math.Abs(got[rank][i]-want[i]) > 1e-9 {
					t.Fatalf("n=%d rank %d: got %v want %v", n, rank, got[rank], want)
				}
			}
		}
	}
}

func TestRecursiveDoublingRejectsNonPow2(t *testing.T) {
	errs := make([]error, 3)
	runWorld(t, 3, func(c *Comm) {
		_, errs[c.Rank().ID()] = c.AllreduceRecursiveDoubling([]float64{1}, Sum)
	})
	for _, err := range errs {
		if err == nil {
			t.Fatal("expected error on 3 ranks")
		}
	}
}

func TestAllreduceMaxOp(t *testing.T) {
	n, m := 4, 3
	got := make([][]float64, n)
	runWorld(t, n, func(c *Comm) {
		out, err := c.AllreduceRecursiveDoubling(rankVector(c.Rank().ID(), m), Max)
		if err != nil {
			t.Error(err)
		}
		got[c.Rank().ID()] = out
	})
	for rank := range got {
		for i := 0; i < m; i++ {
			if got[rank][i] != float64(n-1+i) {
				t.Fatalf("rank %d: got %v", rank, got[rank])
			}
		}
	}
}

func TestAllreduceScalingShapes(t *testing.T) {
	// Small vectors: recursive doubling (log P latency) beats flat (P
	// latency at root) at scale.
	m := 8
	n := 64
	x := make([]float64, m)
	flat := runWorld(t, n, func(c *Comm) { c.AllreduceFlat(x, Sum) })
	rd := runWorld(t, n, func(c *Comm) {
		if _, err := c.AllreduceRecursiveDoubling(x, Sum); err != nil {
			t.Error(err)
		}
	})
	if rd >= flat {
		t.Errorf("recursive doubling (%g) should beat flat (%g) for small vectors", rd, flat)
	}

	// Large vectors: ring moves 2m(n−1)/n per rank versus rd's m·log2(n),
	// so ring wins on bandwidth.
	big := make([]float64, 1<<16)
	rdBig := runWorld(t, n, func(c *Comm) {
		if _, err := c.AllreduceRecursiveDoubling(big, Sum); err != nil {
			t.Error(err)
		}
	})
	ringBig := runWorld(t, n, func(c *Comm) { c.AllreduceRing(big, Sum) })
	if ringBig >= rdBig {
		t.Errorf("ring (%g) should beat recursive doubling (%g) for large vectors", ringBig, rdBig)
	}
}

func TestRepeatedCollectivesIndependent(t *testing.T) {
	// Two identical allreduces must each produce the correct result.
	n, m := 8, 5
	want := allreduceRef(n, m)
	got1 := make([][]float64, n)
	got2 := make([][]float64, n)
	runWorld(t, n, func(c *Comm) {
		id := c.Rank().ID()
		got1[id] = c.AllreduceRing(rankVector(id, m), Sum)
		got2[id] = c.AllreduceRing(rankVector(id, m), Sum)
	})
	for rank := 0; rank < n; rank++ {
		for i := range want {
			if math.Abs(got1[rank][i]-want[i]) > 1e-9 || math.Abs(got2[rank][i]-want[i]) > 1e-9 {
				t.Fatalf("rank %d: %v / %v want %v", rank, got1[rank], got2[rank], want)
			}
		}
	}
}

func TestChunkRange(t *testing.T) {
	// Chunks must tile [0,m) exactly.
	for _, tc := range []struct{ m, n int }{{10, 3}, {7, 7}, {5, 8}, {16, 4}, {1, 1}} {
		prev := 0
		for i := 0; i < tc.n; i++ {
			lo, hi := chunkRange(tc.m, tc.n, i)
			if lo != prev {
				t.Fatalf("m=%d n=%d chunk %d: lo=%d want %d", tc.m, tc.n, i, lo, prev)
			}
			if hi < lo {
				t.Fatalf("m=%d n=%d chunk %d: hi<lo", tc.m, tc.n, i)
			}
			prev = hi
		}
		if prev != tc.m {
			t.Fatalf("m=%d n=%d: chunks cover %d", tc.m, tc.n, prev)
		}
	}
}

func TestChunkRangeProperty(t *testing.T) {
	f := func(mRaw, nRaw uint8) bool {
		m := int(mRaw)
		n := int(nRaw)%16 + 1
		prev := 0
		for i := 0; i < n; i++ {
			lo, hi := chunkRange(m, n, i)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialTreeStructure(t *testing.T) {
	// Every non-root has exactly one parent, and the children relation is
	// the inverse of the parent relation.
	n := 23
	for v := 1; v < n; v++ {
		p := parent(v)
		if p < 0 || p >= v {
			t.Fatalf("parent(%d) = %d", v, p)
		}
		found := false
		for _, ch := range children(p, n) {
			if ch == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("%d not among children(%d,%d) = %v", v, p, n, children(p, n))
		}
	}
	// Total children = n-1.
	total := 0
	for v := 0; v < n; v++ {
		total += len(children(v, n))
	}
	if total != n-1 {
		t.Fatalf("total children = %d, want %d", total, n-1)
	}
}

func TestCollectivesSingleRank(t *testing.T) {
	// Every collective must degrade gracefully to a no-op-ish single-rank
	// form.
	runWorld(t, 1, func(c *Comm) {
		c.BarrierCentral()
		c.BarrierDissemination()
		c.BarrierTree()
		if got := c.BroadcastFlat([]float64{7}); got[0] != 7 {
			t.Errorf("bcast flat: %v", got)
		}
		if got := c.BroadcastTree([]float64{7}); got[0] != 7 {
			t.Errorf("bcast tree: %v", got)
		}
		if got := c.AllreduceFlat([]float64{7}, Sum); got[0] != 7 {
			t.Errorf("allreduce flat: %v", got)
		}
		if got, err := c.AllreduceRecursiveDoubling([]float64{7}, Sum); err != nil || got[0] != 7 {
			t.Errorf("allreduce rd: %v %v", got, err)
		}
		if got := c.AllreduceRing([]float64{7}, Sum); got[0] != 7 {
			t.Errorf("allreduce ring: %v", got)
		}
		if got := c.AlltoallPersonalized([][]float64{{7}}, 0); got[0][0] != 7 {
			t.Errorf("alltoall: %v", got)
		}
	})
}

func TestAlltoallWrongBlockCountPanics(t *testing.T) {
	w := pgas.NewWorld(2, spec(), nil, nil)
	_, err := w.Run(func(r *pgas.Rank) {
		New(r).AlltoallPersonalized([][]float64{{1}}, 0) // needs 2 blocks
	})
	if err == nil {
		t.Fatal("expected error from panic")
	}
}

func TestSplitPhaseBarrierComplete(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16} {
		end := runWorld(t, n, func(c *Comm) {
			for e := 0; e < 3; e++ { // repeated epochs must not interfere
				c.BarrierBegin()
				c.Rank().Lapse(1e-5)
				c.BarrierEnd()
			}
		})
		if end <= 0 {
			t.Errorf("split-phase barrier on %d ranks took no time", n)
		}
	}
}

func TestSplitPhaseBarrierOrderingGuarantee(t *testing.T) {
	// No rank may pass BarrierEnd before every rank has called BarrierBegin.
	n := 8
	enter := make([]float64, n)
	exit := make([]float64, n)
	runWorld(t, n, func(c *Comm) {
		c.Rank().Lapse(float64(c.Rank().ID()) * 1e-5) // stagger arrivals
		enter[c.Rank().ID()] = c.Rank().Now()
		c.BarrierBegin()
		c.BarrierEnd()
		exit[c.Rank().ID()] = c.Rank().Now()
	})
	maxEnter := 0.0
	for _, e := range enter {
		if e > maxEnter {
			maxEnter = e
		}
	}
	for i, x := range exit {
		if x < maxEnter {
			t.Errorf("rank %d passed BarrierEnd at %g before last BarrierBegin at %g", i, x, maxEnter)
		}
	}
}

func TestSplitPhaseBarrierOverlapsLeafCompute(t *testing.T) {
	// A slow leaf's compute placed between Begin and End overlaps the
	// barrier: the run must be faster than with the blocking tree barrier
	// around the same compute.
	const n, work, slow = 8, 1e-4, 1e-3
	leaf := n - 1 // rank 7 is a leaf of the 8-rank binomial tree
	body := func(split bool) float64 {
		return runWorld(t, n, func(c *Comm) {
			d := work
			if c.Rank().ID() == leaf {
				d = slow
			}
			for s := 0; s < 4; s++ {
				if split {
					c.BarrierBegin()
					c.Rank().Lapse(d)
					c.BarrierEnd()
				} else {
					c.Rank().Lapse(d)
					c.BarrierTree()
				}
			}
		})
	}
	blocking := body(false)
	overlapped := body(true)
	if overlapped >= blocking {
		t.Errorf("split-phase (%g) not faster than blocking (%g)", overlapped, blocking)
	}
}
