package collective

import (
	"sort"
	"testing"

	"tenways/internal/pgas"
)

// buildBlocks makes rank me's outgoing data: block for dst j holds values
// encoding (me, j) so receipt can be verified, with size (me+j+1) to
// exercise asymmetric lengths.
func buildBlocks(me, n int) [][]float64 {
	out := make([][]float64, n)
	for j := 0; j < n; j++ {
		size := me + j + 1
		b := make([]float64, size)
		for k := range b {
			b[k] = float64(me*1000 + j)
		}
		out[j] = b
	}
	return out
}

func TestAlltoallPersonalizedDelivers(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for _, chunk := range []int{0, 2} {
			got := make([][][]float64, n)
			w := pgas.NewWorld(n, spec(), nil, nil)
			_, err := w.Run(func(r *pgas.Rank) {
				c := New(r)
				got[r.ID()] = c.AlltoallPersonalized(buildBlocks(r.ID(), n), chunk)
			})
			if err != nil {
				t.Fatal(err)
			}
			for me := 0; me < n; me++ {
				for src := 0; src < n; src++ {
					block := got[me][src]
					wantLen := src + me + 1
					if len(block) != wantLen {
						t.Fatalf("n=%d chunk=%d: rank %d block from %d has %d elems, want %d",
							n, chunk, me, src, len(block), wantLen)
					}
					for _, v := range block {
						if v != float64(src*1000+me) {
							t.Fatalf("n=%d chunk=%d: rank %d got value %g from %d",
								n, chunk, me, v, src)
						}
					}
				}
			}
		}
	}
}

func TestAlltoallEmptyBlocks(t *testing.T) {
	n := 4
	got := make([][][]float64, n)
	w := pgas.NewWorld(n, spec(), nil, nil)
	_, err := w.Run(func(r *pgas.Rank) {
		blocks := make([][]float64, n)
		for j := range blocks {
			if j%2 == 0 {
				blocks[j] = []float64{float64(r.ID())}
			} // odd destinations get empty blocks
		}
		got[r.ID()] = New(r).AlltoallPersonalized(blocks, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for me := 0; me < n; me++ {
		for src := 0; src < n; src++ {
			want := 0
			if me%2 == 0 {
				want = 1
			}
			if len(got[me][src]) != want {
				t.Fatalf("rank %d from %d: %d elems, want %d", me, src, len(got[me][src]), want)
			}
		}
	}
}

func TestAlltoallChunkedSlowerThanBulk(t *testing.T) {
	n := 8
	blockLen := 512
	run := func(chunk int) float64 {
		w := pgas.NewWorld(n, spec(), nil, nil)
		end, err := w.Run(func(r *pgas.Rank) {
			blocks := make([][]float64, n)
			for j := range blocks {
				blocks[j] = make([]float64, blockLen)
			}
			New(r).AlltoallPersonalized(blocks, chunk)
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	bulk := run(0)
	chunked := run(4)
	if chunked <= bulk {
		t.Fatalf("chunked alltoall (%g) should be slower than bulk (%g)", chunked, bulk)
	}
}

func TestAlltoallAsSortExchange(t *testing.T) {
	// End-to-end integration: a tiny distributed sample sort. Each rank
	// partitions its keys by splitter and alltoalls them; afterwards every
	// key on rank i is < every key on rank i+1.
	n := 4
	perRank := 64
	results := make([][]float64, n)
	w := pgas.NewWorld(n, spec(), nil, nil)
	_, err := w.Run(func(r *pgas.Rank) {
		c := New(r)
		me := r.ID()
		// Deterministic pseudo-random keys in [0, 1).
		keys := make([]float64, perRank)
		for k := range keys {
			keys[k] = float64((me*perRank+k)*2654435761%1000003) / 1000003
		}
		// Uniform splitters.
		blocks := make([][]float64, n)
		for _, key := range keys {
			d := int(key * float64(n))
			if d >= n {
				d = n - 1
			}
			blocks[d] = append(blocks[d], key)
		}
		recv := c.AlltoallPersonalized(blocks, 0)
		var mine []float64
		for _, b := range recv {
			mine = append(mine, b...)
		}
		sort.Float64s(mine)
		results[me] = mine
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	var last float64 = -1
	for i := 0; i < n; i++ {
		for _, v := range results[i] {
			if v < last {
				t.Fatalf("global order violated at rank %d", i)
			}
			last = v
			total++
		}
	}
	if total != n*perRank {
		t.Fatalf("lost keys: %d of %d", total, n*perRank)
	}
}
