// Package machine defines the parameterised abstract machine model used by
// every modeled experiment in tenways: core counts and clock rates, a cache
// hierarchy, DRAM, an interconnect in the LogGP style, and — central to the
// keynote's argument — energy constants for computing and for moving data at
// each level of the hierarchy.
//
// Absolute constants in the presets are era-plausible ballparks drawn from
// the 2008 DARPA exascale study and 2009-class hardware; the experiments
// depend on the *ratios* (bytes/flop balance, α versus β, pJ/byte versus
// pJ/flop, idle versus busy power), which these presets encode faithfully.
// All constants are plain struct fields so a user can build custom machines.
package machine

import (
	"errors"
	"fmt"
)

// LevelSpec describes one cache level.
type LevelSpec struct {
	Name          string  // "L1", "L2", ...
	CapacityBytes int64   // total capacity of one instance of this level
	LineBytes     int     // cache line size
	Assoc         int     // set associativity
	LatencyCycles float64 // access latency in core cycles
	PJPerByte     float64 // energy to move one byte into this level
	Shared        bool    // true if shared by all cores of a node (LLC)
}

// DRAMSpec describes node-local main memory.
type DRAMSpec struct {
	LatencyCycles float64 // access latency in core cycles
	BytesPerSec   float64 // sustained node bandwidth
	PJPerByte     float64 // energy per byte moved from DRAM
}

// NetSpec describes the internode interconnect in LogGP terms.
type NetSpec struct {
	AlphaSec     float64 // end-to-end latency per message (L + hardware α)
	OverheadSec  float64 // software overhead per message at each end (o)
	BytesPerSec  float64 // per-link bandwidth (1/G per byte)
	PJPerByte    float64 // energy per byte on the wire
	PJPerMessage float64 // fixed per-message energy (NIC, protocol)
}

// PowerSpec describes the static/dynamic power behaviour of one core, used
// for the idle-energy (W10) experiments.
type PowerSpec struct {
	BusyWatts float64 // power of a core doing useful work
	IdleWatts float64 // power of a core that is stalled or spinning
}

// NUMASpec describes non-uniform memory access within a node: cores are
// split evenly over Domains, and touching memory homed in another domain
// costs extra latency and energy. Domains <= 1 means uniform memory.
type NUMASpec struct {
	Domains             int
	RemoteLatencyFactor float64 // multiplier on DRAM latency for remote accesses
	RemotePJFactor      float64 // multiplier on DRAM pJ/byte for remote accesses
}

// Uniform reports whether the spec describes a UMA node.
func (n NUMASpec) Uniform() bool { return n.Domains <= 1 }

// Spec is a complete machine description.
type Spec struct {
	Name              string
	Nodes             int
	CoresPerNode      int
	ClockHz           float64
	FlopsPerCoreCycle float64 // peak flops issued per core per cycle
	PJPerFlop         float64
	Levels            []LevelSpec // ordered nearest-first (L1 first)
	DRAM              DRAMSpec
	NUMA              NUMASpec
	Net               NetSpec
	Power             PowerSpec
}

// Validate reports the first structural problem with the spec, or nil.
func (s *Spec) Validate() error {
	switch {
	case s.Nodes < 1:
		return errors.New("machine: Nodes must be >= 1")
	case s.CoresPerNode < 1:
		return errors.New("machine: CoresPerNode must be >= 1")
	case s.ClockHz <= 0:
		return errors.New("machine: ClockHz must be positive")
	case s.FlopsPerCoreCycle <= 0:
		return errors.New("machine: FlopsPerCoreCycle must be positive")
	case s.DRAM.BytesPerSec <= 0:
		return errors.New("machine: DRAM.BytesPerSec must be positive")
	}
	for i, l := range s.Levels {
		if l.LineBytes <= 0 || l.CapacityBytes <= 0 || l.Assoc <= 0 {
			return fmt.Errorf("machine: level %d (%s) has non-positive geometry", i, l.Name)
		}
		if l.CapacityBytes%int64(l.LineBytes) != 0 {
			return fmt.Errorf("machine: level %d (%s) capacity not a multiple of line size", i, l.Name)
		}
		sets := l.CapacityBytes / int64(l.LineBytes) / int64(l.Assoc)
		if sets == 0 {
			return fmt.Errorf("machine: level %d (%s) has zero sets", i, l.Name)
		}
	}
	if s.Nodes > 1 && s.Net.BytesPerSec <= 0 {
		return errors.New("machine: multi-node spec needs Net.BytesPerSec > 0")
	}
	return nil
}

// TotalCores returns Nodes × CoresPerNode.
func (s *Spec) TotalCores() int { return s.Nodes * s.CoresPerNode }

// CycleSec returns the duration of one core cycle in seconds.
func (s *Spec) CycleSec() float64 { return 1 / s.ClockHz }

// PeakFlopsPerCore returns the peak flop rate of one core in flop/s.
func (s *Spec) PeakFlopsPerCore() float64 { return s.ClockHz * s.FlopsPerCoreCycle }

// PeakFlopsPerNode returns the peak flop rate of a node in flop/s.
func (s *Spec) PeakFlopsPerNode() float64 {
	return s.PeakFlopsPerCore() * float64(s.CoresPerNode)
}

// PeakFlops returns the machine-wide peak flop rate in flop/s.
func (s *Spec) PeakFlops() float64 { return s.PeakFlopsPerNode() * float64(s.Nodes) }

// MachineBalance returns the node's DRAM bytes/flop balance — the central
// ratio of the roofline model. Low balance means algorithms need high
// arithmetic intensity to avoid being bandwidth bound.
func (s *Spec) MachineBalance() float64 {
	return s.DRAM.BytesPerSec / s.PeakFlopsPerNode()
}

// RidgeIntensity returns the arithmetic intensity (flops/byte) at the
// roofline ridge point: kernels below it are bandwidth bound on this machine.
func (s *Spec) RidgeIntensity() float64 {
	return s.PeakFlopsPerNode() / s.DRAM.BytesPerSec
}

// FlopTimeSec returns the time for a core to execute n flops at peak issue.
func (s *Spec) FlopTimeSec(n float64) float64 {
	return n / s.PeakFlopsPerCore()
}

// FlopEnergyJ returns the dynamic energy of n flops.
func (s *Spec) FlopEnergyJ(n float64) float64 { return n * s.PJPerFlop * 1e-12 }

// DRAMTimeSec returns the time to stream `bytes` from DRAM: one latency plus
// the bandwidth term. Callers modelling many independent accesses should call
// this per access or use the cache simulator instead.
func (s *Spec) DRAMTimeSec(bytes float64) float64 {
	return s.DRAM.LatencyCycles*s.CycleSec() + bytes/s.DRAM.BytesPerSec
}

// DRAMEnergyJ returns the energy of moving `bytes` from DRAM.
func (s *Spec) DRAMEnergyJ(bytes float64) float64 { return bytes * s.DRAM.PJPerByte * 1e-12 }

// MsgTimeSec returns the LogGP end-to-end time of one message of the given
// size: α + 2o + bytes/bandwidth.
func (s *Spec) MsgTimeSec(bytes float64) float64 {
	return s.Net.AlphaSec + 2*s.Net.OverheadSec + bytes/s.Net.BytesPerSec
}

// MsgEnergyJ returns the energy of one message of the given size.
func (s *Spec) MsgEnergyJ(bytes float64) float64 {
	return (s.Net.PJPerMessage + bytes*s.Net.PJPerByte) * 1e-12
}

// HalfBandwidthBytes returns the message size n½ at which half of peak
// network bandwidth is achieved — the classic aggregation knee: messages much
// smaller than n½ are α-dominated.
func (s *Spec) HalfBandwidthBytes() float64 {
	return (s.Net.AlphaSec + 2*s.Net.OverheadSec) * s.Net.BytesPerSec
}

// IdleEnergyJ returns the energy a core burns while idle for d seconds.
func (s *Spec) IdleEnergyJ(d float64) float64 { return d * s.Power.IdleWatts }

// BusyEnergyJ returns the energy a core burns while busy for d seconds.
func (s *Spec) BusyEnergyJ(d float64) float64 { return d * s.Power.BusyWatts }

// WithNodes returns a copy of the spec scaled to n nodes.
func (s *Spec) WithNodes(n int) *Spec {
	c := *s
	c.Levels = append([]LevelSpec(nil), s.Levels...)
	c.Nodes = n
	return &c
}

// WithProportionalPower returns a copy whose idle power is the given
// fraction of busy power — the energy-proportionality ablation knob.
func (s *Spec) WithProportionalPower(idleFraction float64) *Spec {
	c := *s
	c.Levels = append([]LevelSpec(nil), s.Levels...)
	c.Power.IdleWatts = idleFraction * c.Power.BusyWatts
	return &c
}

// LineBytes returns the line size of the first cache level, or 64 if the
// machine has no cache levels configured.
func (s *Spec) LineBytes() int {
	if len(s.Levels) > 0 {
		return s.Levels[0].LineBytes
	}
	return 64
}
