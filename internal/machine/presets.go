package machine

// The presets below encode three machine classes the keynote contrasts, plus
// an energy-proportional variant. Constants are era-plausible first-order
// numbers (2008 DARPA exascale study ballpark); every experiment's
// conclusion rests on their ratios, which are the ratios the talk cites:
// DRAM access costs ~1000× a register access in energy, network bytes cost
// more still, and 2009 machines idle at more than half of peak power.

// Laptop2009 models a 2009 dual-core laptop: the "software developers in
// general have not [worried about efficiency]" baseline.
func Laptop2009() *Spec {
	return &Spec{
		Name:              "laptop2009",
		Nodes:             1,
		CoresPerNode:      2,
		ClockHz:           2.5e9,
		FlopsPerCoreCycle: 4, // 128-bit SSE: 2 DP mul + 2 DP add
		PJPerFlop:         100,
		Levels: []LevelSpec{
			{Name: "L1", CapacityBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatencyCycles: 4, PJPerByte: 0.6},
			{Name: "L2", CapacityBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyCycles: 12, PJPerByte: 2},
			{Name: "L3", CapacityBytes: 3 << 20, LineBytes: 64, Assoc: 12, LatencyCycles: 36, PJPerByte: 8, Shared: true},
		},
		DRAM: DRAMSpec{LatencyCycles: 200, BytesPerSec: 8.5e9, PJPerByte: 150},
		// A laptop has no interconnect; keep a loopback-like model so
		// single-node specs can still run message-based demonstrators.
		Net:   NetSpec{AlphaSec: 2e-6, OverheadSec: 5e-7, BytesPerSec: 1e9, PJPerByte: 500, PJPerMessage: 50000},
		Power: PowerSpec{BusyWatts: 12, IdleWatts: 7}, // ~60% of peak when idle
	}
}

// Petascale2009 models one rack-scale slice of a 2009 petascale system
// (Cray XT5 class): 8-core 2.3 GHz nodes, ~25 GB/s local DRAM, a ~6 µs / 2
// GB/s torus interconnect. Default 1024 nodes; use WithNodes to rescale.
func Petascale2009() *Spec {
	return &Spec{
		Name:              "petascale2009",
		Nodes:             1024,
		CoresPerNode:      8,
		ClockHz:           2.3e9,
		FlopsPerCoreCycle: 4,
		PJPerFlop:         120,
		Levels: []LevelSpec{
			{Name: "L1", CapacityBytes: 64 << 10, LineBytes: 64, Assoc: 2, LatencyCycles: 3, PJPerByte: 0.8},
			{Name: "L2", CapacityBytes: 512 << 10, LineBytes: 64, Assoc: 16, LatencyCycles: 15, PJPerByte: 2.5},
			{Name: "L3", CapacityBytes: 6 << 20, LineBytes: 64, Assoc: 48, LatencyCycles: 40, PJPerByte: 10, Shared: true},
		},
		DRAM:  DRAMSpec{LatencyCycles: 230, BytesPerSec: 25.6e9, PJPerByte: 170},
		NUMA:  NUMASpec{Domains: 2, RemoteLatencyFactor: 1.7, RemotePJFactor: 1.5},
		Net:   NetSpec{AlphaSec: 6e-6, OverheadSec: 1e-6, BytesPerSec: 2e9, PJPerByte: 800, PJPerMessage: 200000},
		Power: PowerSpec{BusyWatts: 20, IdleWatts: 12},
	}
}

// Exascale models the 2008 exascale study's projected node: very many slow,
// efficient cores, ~10 pJ/flop, and a memory system whose relative cost of
// moving a byte — versus computing on it — is far worse than in 2009. This
// is the machine the keynote says software must be rewritten for.
func Exascale() *Spec {
	return &Spec{
		Name:              "exascale",
		Nodes:             4096,
		CoresPerNode:      1024,
		ClockHz:           1e9,
		FlopsPerCoreCycle: 2,
		PJPerFlop:         10,
		Levels: []LevelSpec{
			{Name: "L1", CapacityBytes: 32 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 2, PJPerByte: 0.3},
			{Name: "L2", CapacityBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyCycles: 10, PJPerByte: 1.2},
			{Name: "LLC", CapacityBytes: 64 << 20, LineBytes: 64, Assoc: 16, LatencyCycles: 50, PJPerByte: 5, Shared: true},
		},
		// Stacked-DRAM-class bandwidth, but pJ/byte still dwarfs pJ/flop.
		DRAM:  DRAMSpec{LatencyCycles: 100, BytesPerSec: 400e9, PJPerByte: 30},
		Net:   NetSpec{AlphaSec: 5e-7, OverheadSec: 1e-7, BytesPerSec: 100e9, PJPerByte: 60, PJPerMessage: 20000},
		Power: PowerSpec{BusyWatts: 0.05, IdleWatts: 0.005}, // near-proportional by necessity
	}
}

// EnergyProportional returns the 2009 petascale node with an aggressive
// 10%-of-busy idle power, the ablation the keynote's "per Joule" argument
// asks for.
func EnergyProportional() *Spec {
	s := Petascale2009().WithProportionalPower(0.1)
	s.Name = "petascale2009-proportional"
	return s
}

// Presets returns all built-in machines, in a stable presentation order.
func Presets() []*Spec {
	return []*Spec{Laptop2009(), Petascale2009(), EnergyProportional(), Exascale()}
}

// Preset returns the named preset, or nil if unknown.
func Preset(name string) *Spec {
	for _, s := range Presets() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
