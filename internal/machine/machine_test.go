package machine

import (
	"math"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, s := range Presets() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := Laptop2009()
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero nodes", func(s *Spec) { s.Nodes = 0 }},
		{"zero cores", func(s *Spec) { s.CoresPerNode = 0 }},
		{"zero clock", func(s *Spec) { s.ClockHz = 0 }},
		{"zero issue", func(s *Spec) { s.FlopsPerCoreCycle = 0 }},
		{"zero dram bw", func(s *Spec) { s.DRAM.BytesPerSec = 0 }},
		{"bad line", func(s *Spec) { s.Levels[0].LineBytes = 0 }},
		{"capacity not multiple", func(s *Spec) { s.Levels[0].CapacityBytes = 100 }},
		{"zero sets", func(s *Spec) { s.Levels[0].Assoc = 1 << 20 }},
		{"multi-node no net", func(s *Spec) { s.Nodes = 2; s.Net.BytesPerSec = 0 }},
	}
	for _, c := range cases {
		s := *base
		s.Levels = append([]LevelSpec(nil), base.Levels...)
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDerivedRates(t *testing.T) {
	s := Laptop2009()
	if got, want := s.PeakFlopsPerCore(), 10e9; got != want {
		t.Errorf("PeakFlopsPerCore = %g, want %g", got, want)
	}
	if got, want := s.PeakFlopsPerNode(), 20e9; got != want {
		t.Errorf("PeakFlopsPerNode = %g, want %g", got, want)
	}
	if got, want := s.TotalCores(), 2; got != want {
		t.Errorf("TotalCores = %d, want %d", got, want)
	}
	if got := s.MachineBalance(); math.Abs(got-8.5e9/20e9) > 1e-12 {
		t.Errorf("MachineBalance = %g", got)
	}
	if got := s.RidgeIntensity(); math.Abs(got*s.MachineBalance()-1) > 1e-12 {
		t.Errorf("ridge * balance != 1: %g", got*s.MachineBalance())
	}
}

func TestCostFunctions(t *testing.T) {
	s := Petascale2009()
	if got := s.FlopTimeSec(s.PeakFlopsPerCore()); math.Abs(got-1) > 1e-12 {
		t.Errorf("one second of flops took %g s", got)
	}
	if got := s.FlopEnergyJ(1e12); math.Abs(got-120) > 1e-9 {
		t.Errorf("1e12 flops = %g J, want 120", got)
	}
	// Message time must be monotone in size and bounded below by alpha.
	t1 := s.MsgTimeSec(8)
	t2 := s.MsgTimeSec(1 << 20)
	if t1 >= t2 {
		t.Errorf("message time not monotone: %g >= %g", t1, t2)
	}
	if t1 < s.Net.AlphaSec {
		t.Errorf("message time below alpha: %g", t1)
	}
	// Half-bandwidth point: a message of n½ bytes spends equal time in
	// latency and bandwidth terms.
	n := s.HalfBandwidthBytes()
	lat := s.Net.AlphaSec + 2*s.Net.OverheadSec
	if math.Abs(n/s.Net.BytesPerSec-lat) > 1e-15 {
		t.Errorf("half-bandwidth identity violated")
	}
	if e := s.MsgEnergyJ(0); e != s.Net.PJPerMessage*1e-12 {
		t.Errorf("zero-byte message energy = %g", e)
	}
}

func TestDRAMTimeHasLatencyAndBandwidthTerms(t *testing.T) {
	s := Laptop2009()
	small := s.DRAMTimeSec(64)
	if small <= s.DRAM.LatencyCycles*s.CycleSec()*0.99 {
		t.Errorf("small access faster than latency: %g", small)
	}
	big := s.DRAMTimeSec(1e9)
	if math.Abs(big-1e9/s.DRAM.BytesPerSec) > 0.01*big {
		t.Errorf("large streaming not bandwidth dominated: %g", big)
	}
}

func TestWithNodesDeepCopies(t *testing.T) {
	a := Petascale2009()
	b := a.WithNodes(16)
	if b.Nodes != 16 || a.Nodes == 16 {
		t.Fatalf("WithNodes: a=%d b=%d", a.Nodes, b.Nodes)
	}
	b.Levels[0].LineBytes = 128
	if a.Levels[0].LineBytes == 128 {
		t.Fatal("WithNodes shares Levels slice")
	}
}

func TestWithProportionalPower(t *testing.T) {
	a := Petascale2009()
	b := a.WithProportionalPower(0.1)
	if math.Abs(b.Power.IdleWatts-0.1*a.Power.BusyWatts) > 1e-12 {
		t.Fatalf("idle watts = %g", b.Power.IdleWatts)
	}
	if a.Power.IdleWatts == b.Power.IdleWatts {
		t.Fatal("original mutated")
	}
}

func TestPresetLookup(t *testing.T) {
	if Preset("laptop2009") == nil {
		t.Fatal("laptop2009 missing")
	}
	if Preset("nope") != nil {
		t.Fatal("unknown preset should be nil")
	}
	seen := map[string]bool{}
	for _, s := range Presets() {
		if seen[s.Name] {
			t.Fatalf("duplicate preset name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestKeynoteRatiosHold(t *testing.T) {
	// The argument of the talk: moving a byte from DRAM costs much more
	// energy than a flop, and the gap widens toward exascale.
	for _, s := range []*Spec{Laptop2009(), Petascale2009(), Exascale()} {
		bytesVsFlop := s.DRAM.PJPerByte * 8 / s.PJPerFlop // per 64-bit word
		if bytesVsFlop < 2 {
			t.Errorf("%s: DRAM word should cost more than a flop (ratio %g)", s.Name, bytesVsFlop)
		}
	}
	r2009 := Petascale2009().DRAM.PJPerByte * 8 / Petascale2009().PJPerFlop
	rExa := Exascale().DRAM.PJPerByte * 8 / Exascale().PJPerFlop
	if rExa <= r2009 {
		t.Errorf("data movement should be relatively more expensive at exascale: 2009=%g exa=%g", r2009, rExa)
	}
	// 2009 machines are not energy proportional; exascale must be closer.
	p2009 := Petascale2009().Power.IdleWatts / Petascale2009().Power.BusyWatts
	pExa := Exascale().Power.IdleWatts / Exascale().Power.BusyWatts
	if p2009 < 0.5 {
		t.Errorf("2009 idle fraction should be >= 0.5, got %g", p2009)
	}
	if pExa >= p2009 {
		t.Errorf("exascale should be more proportional: %g vs %g", pExa, p2009)
	}
}

func TestLineBytesFallback(t *testing.T) {
	s := &Spec{Nodes: 1, CoresPerNode: 1, ClockHz: 1e9, FlopsPerCoreCycle: 1,
		DRAM: DRAMSpec{BytesPerSec: 1e9}}
	if s.LineBytes() != 64 {
		t.Fatalf("fallback line size = %d", s.LineBytes())
	}
	if Laptop2009().LineBytes() != 64 {
		t.Fatalf("laptop line size = %d", Laptop2009().LineBytes())
	}
}

func TestIdleBusyEnergy(t *testing.T) {
	s := Petascale2009()
	if e := s.IdleEnergyJ(2); math.Abs(e-2*s.Power.IdleWatts) > 1e-12 {
		t.Errorf("idle energy = %g", e)
	}
	if e := s.BusyEnergyJ(2); math.Abs(e-2*s.Power.BusyWatts) > 1e-12 {
		t.Errorf("busy energy = %g", e)
	}
}

func TestNUMASpecUniform(t *testing.T) {
	if !(NUMASpec{}).Uniform() || !(NUMASpec{Domains: 1}).Uniform() {
		t.Fatal("0/1 domains should be uniform")
	}
	if (NUMASpec{Domains: 2}).Uniform() {
		t.Fatal("2 domains is not uniform")
	}
	if machine := Petascale2009(); machine.NUMA.Uniform() {
		t.Fatal("petascale preset should be NUMA")
	}
	if machine := Laptop2009(); !machine.NUMA.Uniform() {
		t.Fatal("laptop preset should be UMA")
	}
}
