// Package workload provides the deterministic generators behind every
// experiment's inputs: a seedable splitmix64 PRNG (so runs are reproducible
// without touching math/rand global state), skewed task-cost distributions
// for the load-imbalance experiments, sparse matrices, R-MAT graphs, and
// particle distributions.
package workload

import "math"

// Rand is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; distinct seeds give independent streams.
type Rand struct {
	state uint64
}

// NewRand returns a generator with the given seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate (Box–Muller).
func (r *Rand) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponential variate with mean 1.
func (r *Rand) Exp() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Rand) Shuffle(xs []float64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
