package workload

import (
	"fmt"
	"math"
	"sort"
)

// TaskDist generates per-task cost vectors for the imbalance experiments.
type TaskDist struct {
	rng *Rand
}

// NewTaskDist creates a distribution source with the given seed.
func NewTaskDist(seed uint64) *TaskDist { return &TaskDist{rng: NewRand(seed)} }

// Uniform returns n task costs all equal to mean.
func (d *TaskDist) Uniform(n int, mean float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean
	}
	return out
}

// Zipf returns n task costs following a Zipf-like power law with exponent
// s >= 0 (s = 0 is uniform), scaled so the mean equals mean. Costs are
// assigned in random order so static blocks still see skew.
func (d *TaskDist) Zipf(n int, s, mean float64) []float64 {
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		out[i] = 1 / math.Pow(float64(i+1), s)
		sum += out[i]
	}
	scale := mean * float64(n) / sum
	for i := range out {
		out[i] *= scale
	}
	d.rng.Shuffle(out)
	return out
}

// ZipfSorted is Zipf with the heavy tasks first — the adversarial layout
// for a static block partition (worker 0 gets all the giants).
func (d *TaskDist) ZipfSorted(n int, s, mean float64) []float64 {
	out := d.Zipf(n, s, mean)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Bimodal returns n costs where fraction heavyFrac of tasks cost
// heavyCost and the rest cost lightCost, shuffled.
func (d *TaskDist) Bimodal(n int, heavyFrac, lightCost, heavyCost float64) []float64 {
	out := make([]float64, n)
	heavy := int(heavyFrac * float64(n))
	for i := range out {
		if i < heavy {
			out[i] = heavyCost
		} else {
			out[i] = lightCost
		}
	}
	d.rng.Shuffle(out)
	return out
}

// Skew summarises a cost vector's imbalance potential: max/mean.
func Skew(costs []float64) float64 {
	if len(costs) == 0 {
		return 0
	}
	max, sum := costs[0], 0.0
	for _, c := range costs {
		sum += c
		if c > max {
			max = c
		}
	}
	return max / (sum / float64(len(costs)))
}

// CSR is a sparse matrix in compressed sparse row form.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Vals       []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Vals) }

// MulVec computes y = A·x.
func (m *CSR) MulVec(x, y []float64) {
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

// Validate checks structural invariants.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("workload: RowPtr length %d != rows+1 %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != len(m.Vals) {
		return fmt.Errorf("workload: RowPtr endpoints invalid")
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("workload: RowPtr not monotone at row %d", i)
		}
	}
	if len(m.ColIdx) != len(m.Vals) {
		return fmt.Errorf("workload: ColIdx/Vals length mismatch")
	}
	for _, c := range m.ColIdx {
		if c < 0 || c >= m.Cols {
			return fmt.Errorf("workload: column index %d out of range", c)
		}
	}
	return nil
}

// RandomCSR builds an n×n sparse matrix with ~nnzPerRow uniform nonzeros
// per row (duplicates collapsed), values in (0, 1].
func RandomCSR(seed uint64, n, nnzPerRow int) *CSR {
	rng := NewRand(seed)
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		seen := map[int]bool{}
		for k := 0; k < nnzPerRow; k++ {
			c := rng.Intn(n)
			if seen[c] {
				continue
			}
			seen[c] = true
		}
		cols := make([]int, 0, len(seen))
		for c := range seen {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		for _, c := range cols {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, rng.Float64()/2+0.5)
		}
		m.RowPtr[i+1] = len(m.Vals)
	}
	return m
}

// PowerLawCSR builds an n×n matrix whose row lengths follow a power law —
// the row-skew input for imbalance-under-SpMV experiments. Row i (after a
// deterministic shuffle) has about maxRow/(rank^s) nonzeros.
func PowerLawCSR(seed uint64, n, maxRow int, s float64) *CSR {
	rng := NewRand(seed)
	lengths := make([]int, n)
	for i := range lengths {
		l := int(float64(maxRow) / math.Pow(float64(i+1), s))
		if l < 1 {
			l = 1
		}
		lengths[i] = l
	}
	// Shuffle so heavy rows are scattered.
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		lengths[i], lengths[j] = lengths[j], lengths[i]
	}
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		seen := map[int]bool{}
		for len(seen) < lengths[i] && len(seen) < n {
			seen[rng.Intn(n)] = true
		}
		cols := make([]int, 0, len(seen))
		for c := range seen {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		for _, c := range cols {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, 1)
		}
		m.RowPtr[i+1] = len(m.Vals)
	}
	return m
}

// Graph is an adjacency-list graph.
type Graph struct {
	N   int
	Adj [][]int
}

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int {
	e := 0
	for _, a := range g.Adj {
		e += len(a)
	}
	return e
}

// RMAT generates a scale-free directed graph with 2^scale vertices and
// about edgeFactor·2^scale edges using the R-MAT recursive quadrant method
// (a=0.57, b=c=0.19), the Graph500 workload. Self-loops and duplicate
// edges are removed.
func RMAT(seed uint64, scale, edgeFactor int) *Graph {
	rng := NewRand(seed)
	n := 1 << scale
	type edge struct{ u, v int }
	seen := map[edge]bool{}
	g := &Graph{N: n, Adj: make([][]int, n)}
	target := edgeFactor * n
	for len(seen) < target {
		u, v := 0, 0
		for bit := n / 2; bit >= 1; bit /= 2 {
			p := rng.Float64()
			switch {
			case p < 0.57:
				// top-left: no bits set
			case p < 0.76:
				v += bit
			case p < 0.95:
				u += bit
			default:
				u += bit
				v += bit
			}
		}
		if u == v {
			continue
		}
		e := edge{u, v}
		if seen[e] {
			continue
		}
		seen[e] = true
		g.Adj[u] = append(g.Adj[u], v)
	}
	for _, a := range g.Adj {
		sort.Ints(a)
	}
	return g
}

// UniformGraph generates an Erdős–Rényi-style directed graph with n
// vertices and about deg out-edges per vertex.
func UniformGraph(seed uint64, n, deg int) *Graph {
	rng := NewRand(seed)
	g := &Graph{N: n, Adj: make([][]int, n)}
	for u := 0; u < n; u++ {
		seen := map[int]bool{}
		for len(seen) < deg {
			v := rng.Intn(n)
			if v != u {
				seen[v] = true
			}
		}
		for v := range seen {
			g.Adj[u] = append(g.Adj[u], v)
		}
		sort.Ints(g.Adj[u])
	}
	return g
}

// Particles returns n 2-D positions. clustered=false gives a uniform box
// [0,1)²; clustered=true concentrates 80% of particles in a 0.1-wide
// corner blob — the adversarial input for spatially partitioned n-body.
func Particles(seed uint64, n int, clustered bool) (xs, ys []float64) {
	rng := NewRand(seed)
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		if clustered && i < n*8/10 {
			xs[i] = rng.Float64() * 0.1
			ys[i] = rng.Float64() * 0.1
		} else {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
	}
	return xs, ys
}
