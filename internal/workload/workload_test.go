package workload

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds too correlated: %d collisions", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRand(11)
	n := 20000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %g", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(13)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.05 {
		t.Fatalf("exp mean = %g", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfMeanAndSkew(t *testing.T) {
	d := NewTaskDist(5)
	costs := d.Zipf(1000, 1.2, 10)
	sum := 0.0
	for _, c := range costs {
		if c <= 0 {
			t.Fatal("non-positive cost")
		}
		sum += c
	}
	if mean := sum / 1000; math.Abs(mean-10) > 1e-9 {
		t.Fatalf("mean = %g, want 10", mean)
	}
	if Skew(costs) < 5 {
		t.Fatalf("zipf s=1.2 should be heavily skewed, skew = %g", Skew(costs))
	}
	uniform := d.Uniform(1000, 10)
	if Skew(uniform) != 1 {
		t.Fatalf("uniform skew = %g", Skew(uniform))
	}
}

func TestZipfSkewIncreasesWithS(t *testing.T) {
	d := NewTaskDist(5)
	s0 := Skew(d.Zipf(500, 0, 1))
	s1 := Skew(d.Zipf(500, 0.8, 1))
	s2 := Skew(d.Zipf(500, 1.6, 1))
	if !(s0 <= s1 && s1 < s2) {
		t.Fatalf("skew not increasing: %g %g %g", s0, s1, s2)
	}
}

func TestZipfSortedDescending(t *testing.T) {
	d := NewTaskDist(9)
	costs := d.ZipfSorted(100, 1, 5)
	for i := 1; i < len(costs); i++ {
		if costs[i] > costs[i-1] {
			t.Fatal("not descending")
		}
	}
}

func TestBimodal(t *testing.T) {
	d := NewTaskDist(1)
	costs := d.Bimodal(100, 0.1, 1, 50)
	heavy := 0
	for _, c := range costs {
		switch c {
		case 1:
		case 50:
			heavy++
		default:
			t.Fatalf("unexpected cost %g", c)
		}
	}
	if heavy != 10 {
		t.Fatalf("heavy count = %d", heavy)
	}
}

func TestSkewEmpty(t *testing.T) {
	if Skew(nil) != 0 {
		t.Fatal("empty skew should be 0")
	}
}

func TestRandomCSRValid(t *testing.T) {
	m := RandomCSR(7, 100, 8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() == 0 || m.NNZ() > 100*8 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
}

func TestCSRMulVec(t *testing.T) {
	// [[1 2][0 3]] * [1 1] = [3 3]
	m := &CSR{Rows: 2, Cols: 2, RowPtr: []int{0, 2, 3},
		ColIdx: []int{0, 1, 1}, Vals: []float64{1, 2, 3}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1}, y)
	if y[0] != 3 || y[1] != 3 {
		t.Fatalf("y = %v", y)
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	m := RandomCSR(7, 10, 3)
	m.ColIdx[0] = 99
	if m.Validate() == nil {
		t.Fatal("expected error on bad column")
	}
	m2 := RandomCSR(7, 10, 3)
	m2.RowPtr[5] = m2.RowPtr[6] + 1
	if m2.Validate() == nil {
		t.Fatal("expected error on non-monotone RowPtr")
	}
}

func TestPowerLawCSRSkew(t *testing.T) {
	m := PowerLawCSR(3, 200, 100, 1.0)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	rowLens := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		rowLens[i] = float64(m.RowPtr[i+1] - m.RowPtr[i])
	}
	if Skew(rowLens) < 3 {
		t.Fatalf("power-law rows should be skewed, skew = %g", Skew(rowLens))
	}
}

func TestRMATProperties(t *testing.T) {
	g := RMAT(17, 8, 8) // 256 vertices, ~2048 edges
	if g.N != 256 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() != 8*256 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 8*256)
	}
	// Scale-free shape: max out-degree far above mean.
	max := 0
	for u, a := range g.Adj {
		for i := 1; i < len(a); i++ {
			if a[i] == a[i-1] {
				t.Fatalf("duplicate edge at %d", u)
			}
		}
		for _, v := range a {
			if v == u {
				t.Fatalf("self loop at %d", u)
			}
			if v < 0 || v >= g.N {
				t.Fatalf("edge out of range")
			}
		}
		if len(a) > max {
			max = len(a)
		}
	}
	if max < 3*8 {
		t.Fatalf("RMAT max degree %d not skewed vs mean 8", max)
	}
}

func TestUniformGraph(t *testing.T) {
	g := UniformGraph(5, 64, 4)
	for u, a := range g.Adj {
		if len(a) != 4 {
			t.Fatalf("vertex %d degree %d", u, len(a))
		}
		for _, v := range a {
			if v == u {
				t.Fatal("self loop")
			}
		}
	}
}

func TestParticles(t *testing.T) {
	xs, ys := Particles(9, 1000, false)
	if len(xs) != 1000 || len(ys) != 1000 {
		t.Fatal("wrong length")
	}
	for i := range xs {
		if xs[i] < 0 || xs[i] >= 1 || ys[i] < 0 || ys[i] >= 1 {
			t.Fatal("out of box")
		}
	}
	cx, cy := Particles(9, 1000, true)
	inCorner := 0
	for i := range cx {
		if cx[i] < 0.1 && cy[i] < 0.1 {
			inCorner++
		}
	}
	if inCorner < 750 {
		t.Fatalf("clustered particles not clustered: %d in corner", inCorner)
	}
}

// Property: CSR generators always produce structurally valid matrices.
func TestCSRGeneratorsValidProperty(t *testing.T) {
	f := func(seed uint64, nRaw, nnzRaw uint8) bool {
		n := int(nRaw)%64 + 1
		nnz := int(nnzRaw)%8 + 1
		if RandomCSR(seed, n, nnz).Validate() != nil {
			return false
		}
		return PowerLawCSR(seed, n, nnz*4, 0.8).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleConserves(t *testing.T) {
	r := NewRand(2)
	xs := []float64{1, 2, 3, 4, 5}
	sum := 15.0
	r.Shuffle(xs)
	got := 0.0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatal("shuffle lost elements")
	}
}

func TestRMATDeterministic(t *testing.T) {
	// Byte-identical across invocations: the generator must not leak map
	// iteration order or any other per-process nondeterminism into the
	// graph, because distributed campaigns partition it by rank and replay
	// it across runs.
	render := func(g *Graph) string {
		var b strings.Builder
		fmt.Fprintf(&b, "n=%d e=%d\n", g.N, g.NumEdges())
		for u, adj := range g.Adj {
			fmt.Fprintf(&b, "%d:%v\n", u, adj)
		}
		return b.String()
	}
	a := render(RMAT(2009, 8, 8))
	bb := render(RMAT(2009, 8, 8))
	if a != bb {
		t.Fatal("RMAT(2009, 8, 8) differs between invocations")
	}
	if c := render(RMAT(2010, 8, 8)); c == a {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	g := RMAT(7, 9, 8)
	max, sum := 0, 0
	for _, adj := range g.Adj {
		if len(adj) > max {
			max = len(adj)
		}
		sum += len(adj)
	}
	mean := float64(sum) / float64(g.N)
	if float64(max) < 4*mean {
		t.Fatalf("R-MAT should be skewed: max degree %d vs mean %.1f", max, mean)
	}
}
