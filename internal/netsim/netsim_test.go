package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"tenways/internal/machine"
)

func testSpec() machine.NetSpec {
	return machine.NetSpec{
		AlphaSec: 4e-6, OverheadSec: 1e-6, BytesPerSec: 2e9,
		PJPerByte: 800, PJPerMessage: 200000,
	}
}

func allTopos(n int) []Topology {
	return []Topology{
		NewFullyConnected(n),
		NewRing(n),
		NewTorus2D(4, n/4),
		NewFatTree2(n, 4),
		NewDragonfly(n, 4),
	}
}

func TestPathEndpoints(t *testing.T) {
	for _, topo := range allTopos(16) {
		for s := 0; s < topo.Nodes(); s++ {
			if p := topo.Path(s, s); len(p) != 0 {
				t.Errorf("%s: self path not empty", topo.Name())
			}
		}
		if p := topo.Path(0, topo.Nodes()-1); len(p) == 0 {
			t.Errorf("%s: distinct nodes need a non-empty path", topo.Name())
		}
	}
}

func TestPathLinkIDsInRange(t *testing.T) {
	for _, topo := range allTopos(16) {
		for s := 0; s < topo.Nodes(); s++ {
			for d := 0; d < topo.Nodes(); d++ {
				for _, l := range topo.Path(s, d) {
					if l < 0 || l >= topo.NumLinks() {
						t.Fatalf("%s: link %d out of range [0,%d)", topo.Name(), l, topo.NumLinks())
					}
				}
			}
		}
	}
}

func TestRingMinimalRouting(t *testing.T) {
	r := NewRing(8)
	if got := len(r.Path(0, 1)); got != 1 {
		t.Errorf("0->1 hops = %d", got)
	}
	if got := len(r.Path(0, 7)); got != 1 {
		t.Errorf("0->7 should go counter-clockwise, hops = %d", got)
	}
	if got := len(r.Path(0, 4)); got != 4 {
		t.Errorf("antipodal hops = %d, want 4", got)
	}
	// Distance is symmetric on a bidirectional ring.
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if len(r.Path(s, d)) != len(r.Path(d, s)) {
				t.Fatalf("asymmetric distance %d<->%d", s, d)
			}
		}
	}
}

func TestTorusRouting(t *testing.T) {
	to := NewTorus2D(4, 4)
	if got := len(to.Path(0, 5)); got != 2 { // one X hop + one Y hop
		t.Errorf("0->5 hops = %d, want 2", got)
	}
	// Max distance on a 4x4 torus is 2+2.
	max := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if h := len(to.Path(s, d)); h > max {
				max = h
			}
		}
	}
	if max != 4 {
		t.Errorf("diameter = %d, want 4", max)
	}
}

func TestTorusWrapAround(t *testing.T) {
	to := NewTorus2D(4, 4)
	// Column 0 to column 3 should wrap: 1 hop, not 3.
	if got := len(to.Path(0, 3)); got != 1 {
		t.Errorf("wrap path hops = %d, want 1", got)
	}
}

func TestFatTreeRouting(t *testing.T) {
	ft := NewFatTree2(16, 4)
	if got := len(ft.Path(0, 1)); got != 2 { // same leaf
		t.Errorf("intra-leaf hops = %d, want 2", got)
	}
	if got := len(ft.Path(0, 15)); got != 4 { // via root
		t.Errorf("inter-leaf hops = %d, want 4", got)
	}
}

func TestAverageHopsOrdering(t *testing.T) {
	n := 16
	fc := AverageHops(NewFullyConnected(n))
	ring := AverageHops(NewRing(n))
	torus := AverageHops(NewTorus2D(4, 4))
	if !(fc < torus && torus < ring) {
		t.Errorf("expected fc < torus < ring, got %g %g %g", fc, torus, ring)
	}
	if AverageHops(NewRing(1)) != 0 {
		t.Error("single node average hops should be 0")
	}
}

func TestMsgTimeComponents(t *testing.T) {
	m := NewModel(testSpec(), NewFullyConnected(4))
	// One hop: alpha + 2o + bytes/bw.
	want := 4e-6 + 2e-6 + 1000/2e9
	if got := m.MsgTime(0, 1, 1000); math.Abs(got-want) > 1e-15 {
		t.Errorf("MsgTime = %g, want %g", got, want)
	}
	// Local message: only software overhead.
	if got := m.MsgTime(2, 2, 1000); got != 2e-6 {
		t.Errorf("local MsgTime = %g", got)
	}
}

func TestMsgTimeGrowsWithHops(t *testing.T) {
	m := NewModel(testSpec(), NewRing(16))
	near := m.MsgTime(0, 1, 64)
	far := m.MsgTime(0, 8, 64)
	if far <= near {
		t.Errorf("far (%g) should cost more than near (%g)", far, near)
	}
}

func TestMsgEnergyScalesWithHops(t *testing.T) {
	m := NewModel(testSpec(), NewRing(16))
	e1 := m.MsgEnergy(0, 1, 1024)
	e4 := m.MsgEnergy(0, 4, 1024)
	if e4 <= e1 {
		t.Errorf("4-hop energy (%g) should exceed 1-hop (%g)", e4, e1)
	}
	if m.MsgEnergy(3, 3, 1024) != 0 {
		t.Error("local transfer should cost no network energy")
	}
}

func TestMakespanContention(t *testing.T) {
	spec := testSpec()
	// On a ring, all-to-one funnels through the target's two links and
	// must be slower than the same volume spread on a fully connected net.
	ring := NewModel(spec, NewRing(8))
	fc := NewModel(spec, NewFullyConnected(8))
	var ts []Transfer
	for s := 1; s < 8; s++ {
		ts = append(ts, Transfer{Src: s, Dst: 0, Bytes: 1 << 20})
	}
	if ring.Makespan(ts) <= fc.Makespan(ts) {
		t.Errorf("ring makespan %g should exceed fully-connected %g",
			ring.Makespan(ts), fc.Makespan(ts))
	}
	if fc.Makespan(nil) != 0 {
		t.Error("empty batch should take no time")
	}
}

func TestMakespanAtLeastSingleTransfer(t *testing.T) {
	m := NewModel(testSpec(), NewTorus2D(4, 4))
	ts := []Transfer{{Src: 0, Dst: 15, Bytes: 4096}}
	if m.Makespan(ts) < m.MsgTime(0, 15, 4096) {
		t.Error("makespan below single uncongested transfer")
	}
}

func TestTotalLinkBytes(t *testing.T) {
	m := NewModel(testSpec(), NewRing(8))
	ts := []Transfer{{Src: 0, Dst: 2, Bytes: 100}} // 2 hops
	if got := m.TotalLinkBytes(ts); got != 200 {
		t.Errorf("link bytes = %g, want 200", got)
	}
}

func TestBatchEnergyAdds(t *testing.T) {
	m := NewModel(testSpec(), NewFullyConnected(4))
	ts := []Transfer{{0, 1, 100}, {1, 2, 100}}
	single := m.MsgEnergy(0, 1, 100)
	if got := m.BatchEnergy(ts); math.Abs(got-2*single) > 1e-18 {
		t.Errorf("batch energy = %g, want %g", got, 2*single)
	}
}

// Property: for every topology, every path's links are valid and a message
// between distinct nodes takes at least alpha.
func TestTopologyPathProperty(t *testing.T) {
	f := func(srcRaw, dstRaw uint8, which uint8) bool {
		n := 16
		topo := allTopos(n)[int(which)%5]
		s := int(srcRaw) % n
		d := int(dstRaw) % n
		p := topo.Path(s, d)
		if s == d {
			return len(p) == 0
		}
		if len(p) == 0 {
			return false
		}
		for _, l := range p {
			if l < 0 || l >= topo.NumLinks() {
				return false
			}
		}
		m := NewModel(testSpec(), topo)
		return m.MsgTime(s, d, 1) >= testSpec().AlphaSec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDragonflyRouting(t *testing.T) {
	d := NewDragonfly(16, 4)
	if got := len(d.Path(0, 1)); got != 2 { // same group
		t.Errorf("intra-group hops = %d, want 2", got)
	}
	if got := len(d.Path(0, 15)); got != 3 { // via one global link
		t.Errorf("inter-group hops = %d, want 3", got)
	}
	for s := 0; s < 16; s++ {
		for dst := 0; dst < 16; dst++ {
			for _, l := range d.Path(s, dst) {
				if l < 0 || l >= d.NumLinks() {
					t.Fatalf("link %d out of range", l)
				}
			}
		}
	}
}

func TestDragonflyGlobalLinkIsBottleneck(t *testing.T) {
	// Adversarial traffic: every node of group 0 sends into group 1, so
	// all four transfers share the one 0->1 global link; spreading the
	// same four transfers over four distinct destination groups uses four
	// different global links and finishes faster.
	spec := testSpec()
	d := NewModel(spec, NewDragonfly(16, 4))
	var adversarial, spread []Transfer
	for i := 0; i < 4; i++ {
		adversarial = append(adversarial, Transfer{Src: i, Dst: 4 + i, Bytes: 1 << 20})
		spread = append(spread, Transfer{Src: i, Dst: (i + 1) * 4, Bytes: 1 << 20})
	}
	if d.Makespan(adversarial) <= d.Makespan(spread) {
		t.Fatalf("adversarial (%g) should exceed spread (%g)",
			d.Makespan(adversarial), d.Makespan(spread))
	}
}

func TestConstructorClamps(t *testing.T) {
	if NewFatTree2(8, 0).Radix != 2 {
		t.Fatal("fat tree radix not clamped")
	}
	if NewDragonfly(8, 1).GroupSize != 2 {
		t.Fatal("dragonfly group size not clamped")
	}
}

func TestDragonflyAverageHopsBetweenFCAndRing(t *testing.T) {
	n := 16
	fc := AverageHops(NewFullyConnected(n))
	df := AverageHops(NewDragonfly(n, 4))
	ring := AverageHops(NewRing(n))
	if !(fc < df && df < ring) {
		t.Fatalf("expected fc < dragonfly < ring: %g %g %g", fc, df, ring)
	}
}
