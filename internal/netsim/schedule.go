package netsim

// This file builds round-structured communication schedules for the
// contention experiments (T6): unlike the DES plane, which charges each
// message its uncongested LogGP cost, these schedules are evaluated with
// the Makespan bound, so algorithms that funnel traffic through few links
// pay for it. Each schedule is a sequence of rounds; messages within a
// round are concurrent, rounds are separated by a synchronisation.

import "math/bits"

// AlltoallOneShot returns the naive all-to-all personalised exchange: all
// p·(p−1) messages of the given size injected at once.
func AlltoallOneShot(p int, bytes float64) [][]Transfer {
	round := make([]Transfer, 0, p*(p-1))
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s != d {
				round = append(round, Transfer{Src: s, Dst: d, Bytes: bytes})
			}
		}
	}
	return [][]Transfer{round}
}

// AlltoallPairwise returns the pairwise-exchange all-to-all: p−1 rounds; in
// round r, rank i exchanges with rank i XOR r when p is a power of two,
// else with (i+r) mod p. Each round is a perfect matching (for the XOR
// form), spreading load evenly over links.
func AlltoallPairwise(p int, bytes float64) [][]Transfer {
	rounds := make([][]Transfer, 0, p-1)
	pow2 := p&(p-1) == 0
	for r := 1; r < p; r++ {
		round := make([]Transfer, 0, p)
		for i := 0; i < p; i++ {
			var partner int
			if pow2 {
				partner = i ^ r
			} else {
				partner = (i + r) % p
			}
			if partner != i {
				round = append(round, Transfer{Src: i, Dst: partner, Bytes: bytes})
			}
		}
		rounds = append(rounds, round)
	}
	return rounds
}

// AllgatherRing returns the ring allgather: p−1 rounds in which every rank
// forwards one block to its right neighbour — only nearest-neighbour links
// are ever used, the topology-friendly schedule.
func AllgatherRing(p int, bytes float64) [][]Transfer {
	rounds := make([][]Transfer, 0, p-1)
	for r := 0; r < p-1; r++ {
		round := make([]Transfer, 0, p)
		for i := 0; i < p; i++ {
			round = append(round, Transfer{Src: i, Dst: (i + 1) % p, Bytes: bytes})
		}
		rounds = append(rounds, round)
	}
	return rounds
}

// BroadcastBinomialRounds returns the binomial broadcast as rounds: in
// round k, every rank that already has the data sends to the rank at
// distance 2^k.
func BroadcastBinomialRounds(p int, bytes float64) [][]Transfer {
	rounds := make([][]Transfer, 0, bits.Len(uint(p-1)))
	for dist := 1; dist < p; dist *= 2 {
		round := make([]Transfer, 0, dist)
		for src := 0; src < dist && src < p; src++ {
			dst := src + dist
			if dst < p {
				round = append(round, Transfer{Src: src, Dst: dst, Bytes: bytes})
			}
		}
		rounds = append(rounds, round)
	}
	return rounds
}

// ScheduleCost evaluates a round schedule on the model: the sum over
// rounds of each round's congested makespan, plus a per-round
// synchronisation charge of one zero-byte message latency.
func (m *Model) ScheduleCost(rounds [][]Transfer) float64 {
	total := 0.0
	syncCost := m.Spec.AlphaSec + 2*m.Spec.OverheadSec
	for _, r := range rounds {
		total += m.Makespan(r) + syncCost
	}
	return total
}

// ScheduleBytes returns the total link bytes a schedule moves.
func (m *Model) ScheduleBytes(rounds [][]Transfer) float64 {
	total := 0.0
	for _, r := range rounds {
		total += m.TotalLinkBytes(r)
	}
	return total
}
