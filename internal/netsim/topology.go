// Package netsim models the interconnect: LogGP-style per-message costs on
// top of explicit topologies (fully connected, ring, 2-D torus, two-level
// fat tree) with per-link contention accounting. The pgas runtime uses it
// as its message cost model; the collective and topology experiments use
// its Makespan bound to compare algorithms under congestion.
package netsim

import "fmt"

// Topology maps ranks to routes. Links are identified by small dense
// integers so per-link load can be accumulated in a slice.
type Topology interface {
	// Name identifies the topology for tables.
	Name() string
	// Nodes returns the number of endpoints.
	Nodes() int
	// Path returns the directed link IDs traversed from src to dst.
	// An empty path means src == dst (a local transfer).
	Path(src, dst int) []int
	// NumLinks returns the number of directed links.
	NumLinks() int
}

// FullyConnected gives every ordered pair its own dedicated link — the
// no-contention ideal (also a reasonable stand-in for a full-bisection
// fat tree at low load).
type FullyConnected struct{ N int }

// NewFullyConnected returns a fully connected topology over n nodes.
func NewFullyConnected(n int) *FullyConnected { return &FullyConnected{N: n} }

func (t *FullyConnected) Name() string { return "fully-connected" }
func (t *FullyConnected) Nodes() int   { return t.N }
func (t *FullyConnected) NumLinks() int {
	return t.N * t.N
}
func (t *FullyConnected) Path(src, dst int) []int {
	if src == dst {
		return nil
	}
	return []int{src*t.N + dst}
}

// Ring is a bidirectional ring; minimal routing picks the shorter way.
type Ring struct{ N int }

// NewRing returns a bidirectional ring over n nodes.
func NewRing(n int) *Ring { return &Ring{N: n} }

func (t *Ring) Name() string { return "ring" }
func (t *Ring) Nodes() int   { return t.N }

// NumLinks: each node has a clockwise (2i) and counter-clockwise (2i+1) link.
func (t *Ring) NumLinks() int { return 2 * t.N }

func (t *Ring) Path(src, dst int) []int {
	if src == dst {
		return nil
	}
	cw := (dst - src + t.N) % t.N
	var path []int
	if cw <= t.N-cw {
		for i := 0; i < cw; i++ {
			path = append(path, 2*((src+i)%t.N))
		}
	} else {
		ccw := t.N - cw
		for i := 0; i < ccw; i++ {
			path = append(path, 2*((src-i+t.N)%t.N)+1)
		}
	}
	return path
}

// Torus2D is a 2-D torus with dimension-order (X then Y) minimal routing.
type Torus2D struct{ Rows, Cols int }

// NewTorus2D returns a rows×cols torus.
func NewTorus2D(rows, cols int) *Torus2D { return &Torus2D{Rows: rows, Cols: cols} }

func (t *Torus2D) Name() string { return fmt.Sprintf("torus-%dx%d", t.Rows, t.Cols) }
func (t *Torus2D) Nodes() int   { return t.Rows * t.Cols }

// Each node has 4 directed links: +x, -x, +y, -y.
func (t *Torus2D) NumLinks() int { return 4 * t.Nodes() }

func (t *Torus2D) linkID(node, dir int) int { return node*4 + dir }

func (t *Torus2D) Path(src, dst int) []int {
	if src == dst {
		return nil
	}
	sr, sc := src/t.Cols, src%t.Cols
	dr, dc := dst/t.Cols, dst%t.Cols
	path := make([]int, 0, t.Cols/2+t.Rows/2)
	// X dimension (columns) first.
	for sc != dc {
		right := (dc - sc + t.Cols) % t.Cols
		if right <= t.Cols-right {
			path = append(path, t.linkID(sr*t.Cols+sc, 0))
			sc = (sc + 1) % t.Cols
		} else {
			path = append(path, t.linkID(sr*t.Cols+sc, 1))
			sc = (sc - 1 + t.Cols) % t.Cols
		}
	}
	for sr != dr {
		down := (dr - sr + t.Rows) % t.Rows
		if down <= t.Rows-down {
			path = append(path, t.linkID(sr*t.Cols+sc, 2))
			sr = (sr + 1) % t.Rows
		} else {
			path = append(path, t.linkID(sr*t.Cols+sc, 3))
			sr = (sr - 1 + t.Rows) % t.Rows
		}
	}
	return path
}

// FatTree2 is a two-level fat tree: nodes attach to leaf switches of the
// given radix; leaf switches attach to one root. Up/down links at each
// level are distinct; the root is the bisection bottleneck unless the
// transfer stays within a leaf.
type FatTree2 struct {
	N     int // nodes
	Radix int // nodes per leaf switch
}

// NewFatTree2 returns a two-level fat tree over n nodes with the given
// leaf radix (clamped to at least 2).
func NewFatTree2(n, radix int) *FatTree2 {
	if radix < 2 {
		radix = 2
	}
	return &FatTree2{N: n, Radix: radix}
}

func (t *FatTree2) Name() string { return fmt.Sprintf("fattree-r%d", t.Radix) }
func (t *FatTree2) Nodes() int   { return t.N }

func (t *FatTree2) leaves() int { return (t.N + t.Radix - 1) / t.Radix }

// Links: node-up (i), node-down (N+i), leaf-up (2N+l), leaf-down (2N+L+l).
func (t *FatTree2) NumLinks() int { return 2*t.N + 2*t.leaves() }

func (t *FatTree2) Path(src, dst int) []int {
	if src == dst {
		return nil
	}
	ls, ld := src/t.Radix, dst/t.Radix
	if ls == ld {
		// Up to the leaf switch and back down.
		return []int{src, t.N + dst}
	}
	// Up to leaf, up to root, down to leaf, down to node.
	return []int{src, 2*t.N + ls, 2*t.N + t.leaves() + ld, t.N + dst}
}

// Dragonfly is a one-level dragonfly: nodes attach to group routers of the
// given size; every pair of groups shares exactly one global link, the
// bottleneck that adversarial (group-to-group) traffic saturates.
type Dragonfly struct {
	N         int
	GroupSize int
}

// NewDragonfly returns a dragonfly over n nodes with groups of the given
// size (clamped to at least 2).
func NewDragonfly(n, groupSize int) *Dragonfly {
	if groupSize < 2 {
		groupSize = 2
	}
	return &Dragonfly{N: n, GroupSize: groupSize}
}

func (t *Dragonfly) Name() string { return fmt.Sprintf("dragonfly-g%d", t.GroupSize) }
func (t *Dragonfly) Nodes() int   { return t.N }

func (t *Dragonfly) groups() int { return (t.N + t.GroupSize - 1) / t.GroupSize }

// Links: node-up (i), node-down (N+i), global (2N + gs·G + gd).
func (t *Dragonfly) NumLinks() int { return 2*t.N + t.groups()*t.groups() }

func (t *Dragonfly) Path(src, dst int) []int {
	if src == dst {
		return nil
	}
	gs, gd := src/t.GroupSize, dst/t.GroupSize
	if gs == gd {
		return []int{src, t.N + dst}
	}
	return []int{src, 2*t.N + gs*t.groups() + gd, t.N + dst}
}

// Hops returns the number of directed links on the route from src to dst —
// len(t.Path(src, dst)) without materialising the path. The built-in
// topologies get closed forms (the million-rank pdes workloads call this
// per message, so it must not allocate); unknown implementations fall back
// to Path.
func Hops(t Topology, src, dst int) int {
	if src == dst {
		return 0
	}
	switch tt := t.(type) {
	case *FullyConnected:
		return 1
	case *Ring:
		cw := (dst - src + tt.N) % tt.N
		if ccw := tt.N - cw; ccw < cw {
			return ccw
		}
		return cw
	case *Torus2D:
		sr, sc := src/tt.Cols, src%tt.Cols
		dr, dc := dst/tt.Cols, dst%tt.Cols
		dx := (dc - sc + tt.Cols) % tt.Cols
		if back := tt.Cols - dx; back < dx {
			dx = back
		}
		dy := (dr - sr + tt.Rows) % tt.Rows
		if back := tt.Rows - dy; back < dy {
			dy = back
		}
		return dx + dy
	case *FatTree2:
		if src/tt.Radix == dst/tt.Radix {
			return 2
		}
		return 4
	case *Dragonfly:
		if src/tt.GroupSize == dst/tt.GroupSize {
			return 2
		}
		return 3
	}
	return len(t.Path(src, dst))
}

// AverageHops returns the mean path length over all ordered pairs, a
// summary statistic used in topology tables.
func AverageHops(t Topology) float64 {
	n := t.Nodes()
	if n < 2 {
		return 0
	}
	total := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			total += len(t.Path(s, d))
		}
	}
	return float64(total) / float64(n*(n-1))
}
