package netsim

import "testing"

// TestHopsMatchesPath pins the closed forms to the routed paths over every
// pair, on instances that hit uneven leaf/group boundaries and both ring
// parities.
func TestHopsMatchesPath(t *testing.T) {
	topos := []Topology{
		NewFullyConnected(7),
		NewRing(9),
		NewRing(10),
		NewTorus2D(4, 5),
		NewTorus2D(3, 3),
		NewFatTree2(13, 4),
		NewDragonfly(11, 3),
	}
	for _, tp := range topos {
		n := tp.Nodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if got, want := Hops(tp, s, d), len(tp.Path(s, d)); got != want {
					t.Errorf("%s: Hops(%d,%d) = %d, len(Path) = %d", tp.Name(), s, d, got, want)
				}
			}
		}
	}
}
