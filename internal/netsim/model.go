package netsim

import (
	"tenways/internal/machine"
)

// Model combines a LogGP parameterisation with a topology. The per-message
// time of a single uncongested transfer is
//
//	α + 2o + (hops-1)·perHop + bytes/bandwidth
//
// and the Makespan bound adds link contention: concurrent transfers that
// share a link serialise on it.
type Model struct {
	Spec      machine.NetSpec
	Topo      Topology
	PerHopSec float64 // extra latency per hop beyond the first
}

// NewModel builds a model from a machine's network spec and a topology.
// The per-hop latency defaults to a quarter of α, a typical router-delay
// share of end-to-end latency.
func NewModel(spec machine.NetSpec, topo Topology) *Model {
	return &Model{Spec: spec, Topo: topo, PerHopSec: spec.AlphaSec / 4}
}

// MsgTime returns the uncongested time of one src→dst message.
// Local (src == dst) transfers cost only the software overhead.
func (m *Model) MsgTime(src, dst int, bytes float64) float64 {
	hops := len(m.Topo.Path(src, dst))
	if hops == 0 {
		return 2 * m.Spec.OverheadSec
	}
	return m.Spec.AlphaSec + 2*m.Spec.OverheadSec +
		float64(hops-1)*m.PerHopSec + bytes/m.Spec.BytesPerSec
}

// MsgEnergy returns the energy of one message: the fixed per-message cost
// plus per-byte wire energy multiplied by the hop count (each hop re-drives
// the bytes over a link).
func (m *Model) MsgEnergy(src, dst int, bytes float64) float64 {
	hops := len(m.Topo.Path(src, dst))
	if hops == 0 {
		return 0
	}
	return (m.Spec.PJPerMessage + bytes*m.Spec.PJPerByte*float64(hops)) * 1e-12
}

// Transfer is one message for batch congestion analysis.
type Transfer struct {
	Src, Dst int
	Bytes    float64
}

// Makespan returns a lower-bound completion time for the batch of
// concurrent transfers: the larger of (a) the most-loaded link's
// serialisation time and (b) the longest single transfer's uncongested
// time. This is the standard "max of bandwidth bound and latency bound"
// congestion model.
func (m *Model) Makespan(ts []Transfer) float64 {
	if len(ts) == 0 {
		return 0
	}
	load := make([]float64, m.Topo.NumLinks())
	latBound := 0.0
	for _, t := range ts {
		p := m.Topo.Path(t.Src, t.Dst)
		for _, l := range p {
			load[l] += t.Bytes
		}
		if u := m.MsgTime(t.Src, t.Dst, t.Bytes); u > latBound {
			latBound = u
		}
	}
	bwBound := 0.0
	for _, b := range load {
		if t := b / m.Spec.BytesPerSec; t > bwBound {
			bwBound = t
		}
	}
	if bwBound > latBound {
		return bwBound
	}
	return latBound
}

// BatchEnergy returns the total energy of a batch of transfers.
func (m *Model) BatchEnergy(ts []Transfer) float64 {
	e := 0.0
	for _, t := range ts {
		e += m.MsgEnergy(t.Src, t.Dst, t.Bytes)
	}
	return e
}

// TotalLinkBytes returns the sum over links of bytes carried — the "wire
// traffic" volume metric used in communication-avoidance figures.
func (m *Model) TotalLinkBytes(ts []Transfer) float64 {
	total := 0.0
	for _, t := range ts {
		total += t.Bytes * float64(len(m.Topo.Path(t.Src, t.Dst)))
	}
	return total
}
