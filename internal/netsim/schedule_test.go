package netsim

import (
	"testing"
)

func countMsgs(rounds [][]Transfer) int {
	n := 0
	for _, r := range rounds {
		n += len(r)
	}
	return n
}

func TestAlltoallMessageCounts(t *testing.T) {
	for _, p := range []int{2, 4, 8, 7} {
		one := AlltoallOneShot(p, 64)
		pw := AlltoallPairwise(p, 64)
		if countMsgs(one) != p*(p-1) {
			t.Fatalf("one-shot p=%d: %d msgs", p, countMsgs(one))
		}
		if countMsgs(pw) != p*(p-1) {
			t.Fatalf("pairwise p=%d: %d msgs", p, countMsgs(pw))
		}
		if len(pw) != p-1 {
			t.Fatalf("pairwise p=%d: %d rounds", p, len(pw))
		}
	}
}

func TestAlltoallCoversAllPairs(t *testing.T) {
	for _, p := range []int{4, 8, 6} {
		seen := map[[2]int]int{}
		for _, r := range AlltoallPairwise(p, 1) {
			for _, tr := range r {
				seen[[2]int{tr.Src, tr.Dst}]++
			}
		}
		for s := 0; s < p; s++ {
			for d := 0; d < p; d++ {
				if s == d {
					continue
				}
				if seen[[2]int{s, d}] != 1 {
					t.Fatalf("p=%d: pair (%d,%d) sent %d times", p, s, d, seen[[2]int{s, d}])
				}
			}
		}
	}
}

func TestPairwiseRoundsAreMatchingsOnPow2(t *testing.T) {
	for _, r := range AlltoallPairwise(8, 1) {
		srcs := map[int]bool{}
		dsts := map[int]bool{}
		for _, tr := range r {
			if srcs[tr.Src] || dsts[tr.Dst] {
				t.Fatalf("round is not a matching: %+v", r)
			}
			srcs[tr.Src] = true
			dsts[tr.Dst] = true
		}
	}
}

func TestAllgatherRingUsesOnlyNeighbours(t *testing.T) {
	ring := NewRing(8)
	for _, r := range AllgatherRing(8, 1) {
		for _, tr := range r {
			if len(ring.Path(tr.Src, tr.Dst)) != 1 {
				t.Fatalf("non-neighbour transfer %d->%d", tr.Src, tr.Dst)
			}
		}
	}
	if countMsgs(AllgatherRing(8, 1)) != 8*7 {
		t.Fatal("ring allgather message count")
	}
}

func TestBroadcastBinomialReachesAll(t *testing.T) {
	for _, p := range []int{2, 5, 8, 16} {
		has := map[int]bool{0: true}
		for _, r := range BroadcastBinomialRounds(p, 1) {
			for _, tr := range r {
				if !has[tr.Src] {
					t.Fatalf("p=%d: rank %d sends before receiving", p, tr.Src)
				}
			}
			for _, tr := range r {
				has[tr.Dst] = true
			}
		}
		if len(has) != p {
			t.Fatalf("p=%d: broadcast reached %d ranks", p, len(has))
		}
	}
}

func TestScheduleCostContentionOrdering(t *testing.T) {
	spec := testSpec()
	// On a ring, the one-shot alltoall saturates long paths; pairwise
	// rounds spread them; ring allgather is friendliest per byte moved.
	ringModel := NewModel(spec, NewRing(16))
	one := ringModel.ScheduleCost(AlltoallOneShot(16, 1<<16))
	pw := ringModel.ScheduleCost(AlltoallPairwise(16, 1<<16))
	if one <= 0 || pw <= 0 {
		t.Fatal("non-positive costs")
	}
	// On a fully connected network the one-shot version wins (no
	// contention, no round syncs); on the ring it must lose its lead.
	fcModel := NewModel(spec, NewFullyConnected(16))
	oneFC := fcModel.ScheduleCost(AlltoallOneShot(16, 1<<16))
	pwFC := fcModel.ScheduleCost(AlltoallPairwise(16, 1<<16))
	if oneFC >= pwFC {
		t.Fatalf("fully connected: one-shot %g should beat pairwise %g", oneFC, pwFC)
	}
	ratioRing := one / pw
	ratioFC := oneFC / pwFC
	if ratioRing <= ratioFC {
		t.Fatalf("contention should penalise one-shot more on the ring: %g vs %g",
			ratioRing, ratioFC)
	}
}

func TestScheduleBytes(t *testing.T) {
	m := NewModel(testSpec(), NewFullyConnected(4))
	rounds := AlltoallPairwise(4, 100)
	// 12 messages x 100 bytes x 1 hop.
	if got := m.ScheduleBytes(rounds); got != 1200 {
		t.Fatalf("schedule bytes = %g", got)
	}
}

func TestScheduleCostEmptyRounds(t *testing.T) {
	m := NewModel(testSpec(), NewRing(4))
	if m.ScheduleCost(nil) != 0 {
		t.Fatal("empty schedule should cost 0")
	}
}
