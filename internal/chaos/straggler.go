package chaos

import (
	"fmt"

	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pgas"
	"tenways/internal/trace"
)

// StragglerConfig parameterises the straggler-mitigation campaign: Tasks
// equal-cost tasks of TaskSec busy seconds each, executed on Ranks ranks
// under one of two decompositions:
//
//   - static: every rank owns Tasks/Ranks tasks up front. A straggler
//     stretches its whole block — the makespan inherits the full slowdown.
//   - dynamic (over-decomposition with rebalance): rank 0 coordinates; the
//     remaining ranks pull one task at a time over the network, so a
//     straggler naturally receives fewer tasks and the rest rebalance
//     around it.
type StragglerConfig struct {
	Ranks   int
	Tasks   int
	TaskSec float64
	Dynamic bool
	Chaos   *Scenario
	Obs     *obs.Registry // nil = process-wide default registry
}

// StragglerResult is the campaign outcome.
type StragglerResult struct {
	Makespan  float64
	TasksDone []int // per-rank tasks completed
	Breakdown trace.Breakdown
}

// RunStragglerCampaign executes the campaign on the machine.
func RunStragglerCampaign(spec *machine.Spec, cfg StragglerConfig) (StragglerResult, error) {
	p := cfg.Ranks
	if p < 2 {
		return StragglerResult{}, fmt.Errorf("chaos: straggler campaign needs ≥2 ranks, got %d", p)
	}
	if cfg.Tasks < 1 || cfg.TaskSec <= 0 {
		return StragglerResult{}, fmt.Errorf("chaos: straggler campaign needs tasks and a positive task cost")
	}
	w := pgas.NewWorld(p, spec, nil, nil)
	if cfg.Obs != nil {
		w.SetObs(cfg.Obs)
	}
	if cfg.Chaos != nil {
		cfg.Chaos.Arm(w)
	}
	done := make([]int, p)
	var makespan float64
	var err error
	if !cfg.Dynamic {
		makespan, err = w.Run(func(r *pgas.Rank) {
			id := r.ID()
			lo := id * cfg.Tasks / p
			hi := (id + 1) * cfg.Tasks / p
			for t := lo; t < hi; t++ {
				r.Lapse(cfg.TaskSec)
				done[id]++
			}
		})
	} else {
		makespan, err = w.Run(func(r *pgas.Rank) {
			id := r.ID()
			if id == 0 {
				// Coordinator: grant tasks one at a time until the pool is
				// drained, then send every worker a stop token.
				for granted, stopped := 0, 0; stopped < p-1; {
					req := r.Recv("req")
					worker := int(req[0])
					if granted < cfg.Tasks {
						granted++
						r.Send(worker, "task", []float64{1})
					} else {
						stopped++
						r.Send(worker, "task", []float64{-1})
					}
				}
				return
			}
			for {
				r.Send(0, "req", []float64{float64(id)})
				if grant := r.Recv("task"); grant[0] < 0 {
					return
				}
				r.Lapse(cfg.TaskSec)
				done[id]++
			}
		})
	}
	if err != nil {
		return StragglerResult{}, err
	}
	return StragglerResult{
		Makespan:  makespan,
		TasksDone: done,
		Breakdown: w.Breakdown(makespan),
	}, nil
}
