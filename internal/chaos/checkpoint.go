package chaos

import (
	"fmt"

	"tenways/internal/collective"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pgas"
	"tenways/internal/trace"
)

// CheckpointConfig parameterises the checkpoint/replay campaign: a
// barrier-synchronised iterative kernel of Steps steps of StepSec busy
// seconds each, writing a coordinated checkpoint (CkptSec per rank) every
// Interval steps (0 disables checkpointing). A scripted failure kills
// FailRank as it executes step FailStep (−1 for a failure-free run): the
// step's work is lost, the rank pays RestartSec of down-time while the
// others wait at the barrier, and every rank rolls back to the last
// committed checkpoint and replays from there. Sweeping Interval traces the
// classic checkpoint-period trade-off: short intervals buy cheap recovery
// with constant overhead, long intervals gamble on replay.
type CheckpointConfig struct {
	Ranks      int
	Steps      int
	StepSec    float64
	Interval   int
	CkptSec    float64
	FailStep   int
	FailRank   int
	RestartSec float64
	Obs        *obs.Registry // nil = process-wide default registry
}

// CheckpointResult is the campaign outcome.
type CheckpointResult struct {
	Makespan    float64
	Checkpoints int // coordinated checkpoints committed
	ReplaySteps int // steps re-executed after the rollback
	Breakdown   trace.Breakdown
}

// RunCheckpointCampaign executes the campaign on the machine.
func RunCheckpointCampaign(spec *machine.Spec, cfg CheckpointConfig) (CheckpointResult, error) {
	p := cfg.Ranks
	if p < 2 || cfg.Steps < 1 || cfg.StepSec <= 0 {
		return CheckpointResult{}, fmt.Errorf("chaos: checkpoint campaign needs ≥2 ranks, ≥1 step and a positive step cost")
	}
	if cfg.FailStep >= cfg.Steps {
		return CheckpointResult{}, fmt.Errorf("chaos: failure step %d outside the %d-step run", cfg.FailStep, cfg.Steps)
	}
	if cfg.FailStep >= 0 && (cfg.FailRank < 0 || cfg.FailRank >= p) {
		return CheckpointResult{}, fmt.Errorf("chaos: failing rank %d outside world of %d", cfg.FailRank, p)
	}
	w := pgas.NewWorld(p, spec, nil, nil)
	if cfg.Obs != nil {
		w.SetObs(cfg.Obs)
	}
	var checkpoints, replay int
	makespan, err := w.Run(func(r *pgas.Rank) {
		id := r.ID()
		comm := collective.New(r)
		s, lastCkpt := 0, 0
		failed := false
		for s < cfg.Steps {
			r.Lapse(cfg.StepSec)
			if !failed && s == cfg.FailStep {
				// The step's work dies with the rank. The survivors discover
				// the failure at the barrier and wait out the restart, then
				// everyone resumes from the last committed checkpoint.
				failed = true
				if id == cfg.FailRank {
					r.Idle(cfg.RestartSec)
				}
				comm.BarrierTree()
				if id == 0 {
					replay = s - lastCkpt + 1
				}
				s = lastCkpt
				continue
			}
			comm.BarrierTree()
			s++
			if cfg.Interval > 0 && s%cfg.Interval == 0 && s < cfg.Steps {
				r.Lapse(cfg.CkptSec)
				comm.BarrierTree() // commit is coordinated
				lastCkpt = s
				if id == 0 {
					checkpoints++
				}
			}
		}
	})
	if err != nil {
		return CheckpointResult{}, err
	}
	reg := w.Obs()
	reg.Counter("chaos.checkpoints").Add(int64(checkpoints))
	reg.Counter("chaos.replay_steps").Add(int64(replay))
	return CheckpointResult{
		Makespan:    makespan,
		Checkpoints: checkpoints,
		ReplaySteps: replay,
		Breakdown:   w.Breakdown(makespan),
	}, nil
}
