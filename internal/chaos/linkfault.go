package chaos

import (
	"fmt"

	"tenways/internal/pgas"
)

// LinkFault wraps a pgas cost model and degrades or fails transfers during
// a virtual-time window: transient congestion (Slowdown of a few), a dead
// link or NIC (a large Slowdown standing in for timeout-and-retransmit),
// or a failed rank (every message to or from it pays the penalty). It is
// bound to the world's clock by Scenario.Arm (or Bind directly), because a
// cost model is built before the world that owns the clock exists; until
// bound it behaves as the inner model.
//
// Messages already in flight are not recalled: the fault applies to
// transfers issued while the window is open, which is how a cost-model
// plane can express faults without rewriting the event kernel.
type LinkFault struct {
	inner    pgas.CostModel
	clock    func() float64
	From, To float64 // window; To = 0 means until the end of the run
	Slowdown float64 // MsgTime multiplier while the window is open, ≥ 1
	affected func(src, dst int) bool
	desc     string
}

// NewLinkFault degrades the directed link src→dst (and dst→src) by the
// slowdown factor during [from, to).
func NewLinkFault(inner pgas.CostModel, src, dst int, from, to, slowdown float64) *LinkFault {
	return &LinkFault{
		inner: inner, From: from, To: to, Slowdown: slowdown,
		affected: func(s, d int) bool {
			return (s == src && d == dst) || (s == dst && d == src)
		},
		desc: fmt.Sprintf("link-%d<->%d", src, dst),
	}
}

// NewRankFault degrades every message to or from the rank — a failing NIC
// or a rank that must be reached via recovery paths — by the slowdown
// factor during [from, to).
func NewRankFault(inner pgas.CostModel, rank int, from, to, slowdown float64) *LinkFault {
	return &LinkFault{
		inner: inner, From: from, To: to, Slowdown: slowdown,
		affected: func(s, d int) bool { return s == rank || d == rank },
		desc:     fmt.Sprintf("rank-%d", rank),
	}
}

// Name identifies the fault for tables.
func (f *LinkFault) Name() string {
	return fmt.Sprintf("fault-%s-%.0fx", f.desc, f.Slowdown)
}

// Bind attaches the world's clock; Scenario.Arm calls this.
func (f *LinkFault) Bind(clock func() float64) { f.clock = clock }

func (f *LinkFault) open() bool {
	if f.clock == nil {
		return false
	}
	now := f.clock()
	return now >= f.From && (f.To == 0 || now < f.To)
}

// MsgTime implements pgas.CostModel.
func (f *LinkFault) MsgTime(src, dst int, bytes float64) float64 {
	t := f.inner.MsgTime(src, dst, bytes)
	if f.open() && f.affected(src, dst) && f.Slowdown > 1 {
		t *= f.Slowdown
	}
	return t
}

// MsgEnergy implements pgas.CostModel. Retransmissions re-drive the wire,
// so energy scales with the same factor as time.
func (f *LinkFault) MsgEnergy(src, dst int, bytes float64) float64 {
	e := f.inner.MsgEnergy(src, dst, bytes)
	if f.open() && f.affected(src, dst) && f.Slowdown > 1 {
		e *= f.Slowdown
	}
	return e
}
