package chaos

import (
	"math"
	"strings"
	"testing"
	"time"

	"tenways/internal/machine"
	"tenways/internal/pgas"
	"tenways/internal/trace"
)

func spec() *machine.Spec { return machine.Petascale2009() }

func durSecs(d time.Duration) float64 { return float64(d) / float64(time.Second) }

func TestJitterDeterministic(t *testing.T) {
	for _, dist := range []Dist{Uniform, Exponential, Bursty} {
		a := NewJitter(dist, 0.1, 42, 8)
		b := NewJitter(dist, 0.1, 42, 8)
		for i := 0; i < 200; i++ {
			rank := i % 8
			da := a.Delay(rank, float64(i), 0.01)
			db := b.Delay(rank, float64(i), 0.01)
			if da != db {
				t.Fatalf("%v: call %d diverged: %v vs %v", dist, i, da, db)
			}
			if da < 0 {
				t.Fatalf("%v: negative delay %v", dist, da)
			}
		}
	}
}

func TestJitterMeanRoughlyFrac(t *testing.T) {
	const frac, d, n = 0.1, 0.01, 20000
	for _, dist := range []Dist{Uniform, Exponential, Bursty} {
		j := NewJitter(dist, frac, 7, 1)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += j.Delay(0, 0, d)
		}
		mean := sum / n
		if mean < 0.5*frac*d || mean > 1.5*frac*d {
			t.Errorf("%v: mean delay %v, want ≈ %v", dist, mean, frac*d)
		}
	}
}

func TestStragglerWindow(t *testing.T) {
	s := &Straggler{Rank: 2, Factor: 3, From: 1, To: 2}
	if got := s.Delay(1, 1.5, 0.1); got != 0 {
		t.Errorf("wrong rank injected %v", got)
	}
	if got := s.Delay(2, 0.5, 0.1); got != 0 {
		t.Errorf("before window injected %v", got)
	}
	if got := s.Delay(2, 2.0, 0.1); got != 0 {
		t.Errorf("after window injected %v", got)
	}
	if got := s.Delay(2, 1.5, 0.1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("in window: got %v, want 0.2", got)
	}
	forever := NewStraggler(0, 2)
	if got := forever.Delay(0, 1e9, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("permanent straggler: got %v, want 1", got)
	}
}

func TestSpikeFiresOnce(t *testing.T) {
	s := NewSpike(3, 1.0, 0.5)
	if got := s.Delay(3, 0.5, 0.1); got != 0 {
		t.Errorf("fired before At: %v", got)
	}
	if got := s.Delay(3, 1.2, 0.1); got != 0.5 {
		t.Errorf("first firing: got %v, want 0.5", got)
	}
	if got := s.Delay(3, 2.0, 0.1); got != 0 {
		t.Errorf("fired twice: %v", got)
	}
}

// TestScenarioRunDeterministic runs the same seeded chaos campaign twice and
// requires bit-identical makespans and breakdowns.
func TestScenarioRunDeterministic(t *testing.T) {
	run := func() (float64, trace.Breakdown) {
		sc := NewScenario().Add(NewJitter(Exponential, 0.2, 99, 8))
		res, err := RunIdleWave(spec(), IdleWaveConfig{
			Ranks: 8, Steps: 20, Compute: 1e-3, Words: 8,
			Stack: NeighborBlocking, Chaos: sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan, res.Breakdown
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 {
		t.Fatalf("makespans differ: %v vs %v", m1, m2)
	}
	for _, c := range trace.Categories() {
		if b1.Of(c) != b2.Of(c) {
			t.Fatalf("%v differs: %v vs %v", c, b1.Of(c), b2.Of(c))
		}
	}
}

// TestEmptyScenarioIsQuiet checks chaos is strictly opt-in: arming an empty
// scenario leaves a run bit-identical to one with no scenario at all.
func TestEmptyScenarioIsQuiet(t *testing.T) {
	cfg := IdleWaveConfig{Ranks: 4, Steps: 10, Compute: 1e-3, Words: 4, Stack: NeighborBlocking}
	plain, err := RunIdleWave(spec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = NewScenario()
	armed, err := RunIdleWave(spec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != armed.Makespan {
		t.Fatalf("empty scenario changed makespan: %v vs %v", plain.Makespan, armed.Makespan)
	}
	if armed.Breakdown.Of(trace.Noise) != 0 {
		t.Fatalf("empty scenario charged noise: %v", armed.Breakdown.Of(trace.Noise))
	}
}

// TestIdleWavePropagatesAtFiniteSpeed injects one spike at rank 0 of a
// blocking halo chain and checks the wavefront reaches rank r at step ≈ r:
// one neighbour offset per step, full amplitude.
func TestIdleWavePropagatesAtFiniteSpeed(t *testing.T) {
	const p, steps, compute, dur = 12, 24, 1e-3, 3e-3
	sc := NewScenario().Add(NewSpike(0, 0, dur))
	_, _, delta, err := IdleWaveDelta(spec(), IdleWaveConfig{
		Ranks: p, Steps: steps, Compute: compute, Words: 4, Stack: NeighborBlocking,
	}, sc)
	if err != nil {
		t.Fatal(err)
	}
	arrive := ArrivalSteps(delta, compute/10)
	for r := 1; r < p; r++ {
		if arrive[r] < 0 {
			t.Fatalf("wave never reached rank %d: %v", r, arrive)
		}
		if arrive[r] < arrive[r-1] {
			t.Fatalf("wavefront not monotone: %v", arrive)
		}
	}
	// Finite speed: the far end must be hit strictly later than the near end.
	if arrive[p-1] <= arrive[1] {
		t.Fatalf("wave arrived instantaneously: %v", arrive)
	}
	// Undamped: the full spike survives to the last rank's last step.
	res := ResidualDelay(delta)
	if res[p-1] < 0.9*dur {
		t.Fatalf("blocking chain damped the wave: residual %v, want ≈ %v", res[p-1], dur)
	}
}

// TestIdleWaveDecaysUnderSlack checks the remedies: the async neighbour
// stack damps the wave hop by hop, and the non-blocking barrier absorbs
// part of the spike, while blocking barriers relay it globally at full
// amplitude. The spike hits the last rank — a leaf of the binomial tree,
// where the split-phase barrier's compute/barrier overlap operates.
func TestIdleWaveDecaysUnderSlack(t *testing.T) {
	const p, steps, compute, dur = 8, 32, 1e-3, 2.5e-3
	victim := p - 1
	residual := func(stack Stack) []float64 {
		sc := NewScenario().Add(NewSpike(victim, 0, dur))
		_, _, delta, err := IdleWaveDelta(spec(), IdleWaveConfig{
			Ranks: p, Steps: steps, Compute: compute, Words: 4, Stack: stack,
		}, sc)
		if err != nil {
			t.Fatal(err)
		}
		return ResidualDelay(delta)
	}
	async := residual(NeighborAsync)
	// One compute-time of slack per hop: by ⌈dur/compute⌉+1 hops from the
	// victim the wave is fully absorbed.
	if async[0] > compute/10 {
		t.Errorf("async chain did not absorb the wave: residual %v", async[0])
	}
	flat := residual(FlatBarrier)
	nb := residual(NonBlockingBarrier)
	for r := 0; r < p; r++ {
		if flat[r] < 0.9*dur {
			t.Errorf("flat barrier damped the wave at rank %d: %v", r, flat[r])
		}
		if r == victim {
			continue // the victim itself keeps its delay under any stack
		}
		// The split-phase barrier overlaps one step's compute with the
		// leaf victim's delay, shaving that much off what everyone else
		// inherits.
		if nb[r] > flat[r]-0.9*compute {
			t.Errorf("non-blocking barrier absorbed nothing at rank %d: %v vs flat %v", r, nb[r], flat[r])
		}
	}
}

func TestLinkFaultWindow(t *testing.T) {
	inner := pgas.SimpleCost{Spec: spec()}
	f := NewLinkFault(inner, 1, 2, 10, 20, 8)
	base := inner.MsgTime(1, 2, 1024)
	if got := f.MsgTime(1, 2, 1024); got != base {
		t.Fatalf("unbound fault altered cost: %v vs %v", got, base)
	}
	now := 0.0
	f.Bind(func() float64 { return now })
	if got := f.MsgTime(1, 2, 1024); got != base {
		t.Fatalf("fault open before window: %v", got)
	}
	now = 15
	if got := f.MsgTime(1, 2, 1024); math.Abs(got-8*base) > 1e-15*base {
		t.Fatalf("open fault: got %v, want %v", got, 8*base)
	}
	if got := f.MsgTime(2, 1, 1024); math.Abs(got-8*base) > 1e-15*base {
		t.Fatalf("reverse direction not degraded: %v", got)
	}
	if got := f.MsgTime(0, 3, 1024); got != base {
		t.Fatalf("unrelated link degraded: %v", got)
	}
	now = 25
	if got := f.MsgTime(1, 2, 1024); got != base {
		t.Fatalf("fault open after window: %v", got)
	}

	rf := NewRankFault(inner, 3, 0, 0, 4)
	rf.Bind(func() float64 { return 5 })
	if got := rf.MsgTime(3, 0, 64); math.Abs(got-4*inner.MsgTime(3, 0, 64)) > 1e-18 {
		t.Fatalf("rank fault outbound: %v", got)
	}
	if got := rf.MsgTime(0, 3, 64); math.Abs(got-4*inner.MsgTime(0, 3, 64)) > 1e-18 {
		t.Fatalf("rank fault inbound: %v", got)
	}
	if got := rf.MsgTime(1, 2, 64); got != inner.MsgTime(1, 2, 64) {
		t.Fatalf("rank fault hit bystanders: %v", got)
	}
}

func TestLinkFaultStretchesRun(t *testing.T) {
	inner := pgas.SimpleCost{Spec: spec()}
	quiet, err := RunIdleWave(spec(), IdleWaveConfig{
		Ranks: 4, Steps: 10, Compute: 1e-4, Words: 512, Stack: NeighborBlocking,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := NewLinkFault(inner, 1, 2, 0, 0, 50)
	faulty, err := RunIdleWave(spec(), IdleWaveConfig{
		Ranks: 4, Steps: 10, Compute: 1e-4, Words: 512, Stack: NeighborBlocking,
		Cost: f, Chaos: NewScenario().AddLinkFault(f),
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Makespan <= quiet.Makespan {
		t.Fatalf("link fault did not stretch the run: %v vs %v", faulty.Makespan, quiet.Makespan)
	}
}

func TestStragglerCampaignRebalances(t *testing.T) {
	const p, tasks, tsec, factor = 8, 128, 1e-3, 8.0
	run := func(dynamic bool) StragglerResult {
		sc := NewScenario().Add(NewStraggler(p-1, factor))
		res, err := RunStragglerCampaign(spec(), StragglerConfig{
			Ranks: p, Tasks: tasks, TaskSec: tsec, Dynamic: dynamic, Chaos: sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(false)
	dyn := run(true)
	// Static inherits the straggler's full slowdown; self-scheduling routes
	// work around it.
	if dyn.Makespan >= static.Makespan/2 {
		t.Fatalf("rebalance did not help: dynamic %v vs static %v", dyn.Makespan, static.Makespan)
	}
	if static.Makespan < 0.9*factor*float64(tasks)/p*tsec {
		t.Fatalf("static makespan %v did not inherit the slowdown", static.Makespan)
	}
	// The straggler completed fewer tasks than healthy workers under
	// self-scheduling.
	healthyMin := dyn.TasksDone[1]
	for r := 2; r < p-1; r++ {
		if dyn.TasksDone[r] < healthyMin {
			healthyMin = dyn.TasksDone[r]
		}
	}
	if dyn.TasksDone[p-1] >= healthyMin {
		t.Errorf("straggler got as much work as healthy ranks: %v", dyn.TasksDone)
	}
	total := 0
	for _, n := range dyn.TasksDone {
		total += n
	}
	if total != tasks {
		t.Fatalf("dynamic run completed %d of %d tasks", total, tasks)
	}
	// Injected stall is attributed to Noise.
	if dyn.Breakdown.Of(trace.Noise) <= 0 {
		t.Errorf("no noise attributed: %v", dyn.Breakdown)
	}
}

func TestCheckpointReplayTradeoff(t *testing.T) {
	const p, steps, stepSec = 4, 32, 1e-3
	run := func(interval, failStep int) CheckpointResult {
		res, err := RunCheckpointCampaign(spec(), CheckpointConfig{
			Ranks: p, Steps: steps, StepSec: stepSec,
			Interval: interval, CkptSec: 0.3 * stepSec,
			FailStep: failStep, FailRank: 1, RestartSec: 2 * stepSec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(0, -1)
	if clean.Checkpoints != 0 || clean.ReplaySteps != 0 {
		t.Fatalf("clean run checkpointed/replayed: %+v", clean)
	}
	// Failure without checkpointing replays the whole prefix.
	bare := run(0, 23)
	if bare.ReplaySteps != 24 {
		t.Fatalf("uncheckpointed replay = %d, want 24", bare.ReplaySteps)
	}
	// Checkpointing every 8 steps bounds replay to the interval.
	ck := run(8, 23)
	if ck.ReplaySteps != 8 {
		t.Fatalf("checkpointed replay = %d, want 8", ck.ReplaySteps)
	}
	if ck.Checkpoints == 0 {
		t.Fatal("no checkpoints committed")
	}
	if ck.Makespan >= bare.Makespan {
		t.Fatalf("checkpointing did not pay off: %v vs %v", ck.Makespan, bare.Makespan)
	}
	if clean.Makespan >= bare.Makespan {
		t.Fatalf("failure was free: clean %v vs failed %v", clean.Makespan, bare.Makespan)
	}
	// Every-step checkpointing minimises replay but pays constant overhead.
	eager := run(1, 23)
	if eager.ReplaySteps != 1 {
		t.Fatalf("eager replay = %d, want 1", eager.ReplaySteps)
	}
	if eager.Makespan <= ck.Makespan {
		t.Fatalf("checkpoint overhead vanished: eager %v vs every-8 %v", eager.Makespan, ck.Makespan)
	}
}

func TestHostJitterSmoke(t *testing.T) {
	rec := trace.NewRecorder(2)
	h := NewHostJitter(2, 0.5, 2*time.Millisecond, rec)
	h.Start()
	h.Start() // idempotent
	time.Sleep(20 * time.Millisecond)
	h.Stop()
	h.Stop() // idempotent
	if h.Burned() <= 0 {
		t.Fatal("host jitter burned no CPU")
	}
	b := rec.Breakdown()
	if b.Of(trace.Noise) <= 0 {
		t.Fatalf("burn not charged to noise: %v", b)
	}
}

func TestDistAndStackNames(t *testing.T) {
	for _, d := range []Dist{Uniform, Exponential, Bursty} {
		if name := d.String(); name == "" || strings.HasPrefix(name, "dist(") {
			t.Errorf("unnamed dist %d: %q", d, name)
		}
	}
	stacks := []Stack{NeighborBlocking, NeighborAsync, FlatBarrier, TreeBarrier, NonBlockingBarrier}
	seen := map[string]bool{}
	for _, s := range stacks {
		name := s.String()
		if seen[name] {
			t.Errorf("duplicate stack name %q", name)
		}
		seen[name] = true
	}
}
