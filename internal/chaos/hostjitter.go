package chaos

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tenways/internal/trace"
)

// HostJitter is the measured-plane injector: real goroutines that burn CPU
// in a duty cycle alongside a sched.Pool run, perturbing it the way OS
// noise perturbs an HPC node. Unlike the simulated injectors it is not
// deterministic — it exists so the measured experiments can observe how the
// pool's schedulers absorb genuine interference. Burn time is charged to
// the trace.Noise category when a recorder is attached.
type HostJitter struct {
	workers int
	duty    float64
	period  time.Duration
	rec     *trace.Recorder

	stop    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	_       [56]byte     // keep burned off started's cache line (W9)
	burned  atomic.Int64 // total burn nanoseconds across jitter workers
}

// NewHostJitter creates workers jitter goroutines that each spin for
// duty·period out of every period. rec may be nil; when set, each jitter
// goroutine charges its burn time as Noise against worker index
// i mod rec.Workers() — the pool workers sharing those cores.
func NewHostJitter(workers int, duty float64, period time.Duration, rec *trace.Recorder) *HostJitter {
	if workers < 1 {
		workers = 1
	}
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	if period <= 0 {
		period = time.Millisecond
	}
	return &HostJitter{workers: workers, duty: duty, period: period, rec: rec, stop: make(chan struct{})}
}

// Start launches the jitter goroutines. Safe to call once.
func (h *HostJitter) Start() {
	if !h.started.CompareAndSwap(false, true) {
		return
	}
	burn := time.Duration(h.duty * float64(h.period))
	idle := h.period - burn
	for i := 0; i < h.workers; i++ {
		h.wg.Add(1)
		go func(i int) {
			defer h.wg.Done()
			for {
				select {
				case <-h.stop:
					return
				default:
				}
				t0 := time.Now()
				for time.Since(t0) < burn {
					// Busy spin; yield occasionally so GOMAXPROCS=1 hosts
					// still make progress.
					runtime.Gosched()
				}
				spun := time.Since(t0)
				h.burned.Add(int64(spun))
				if h.rec != nil {
					h.rec.Add(i%h.rec.Workers(), trace.Noise, spun)
				}
				if idle > 0 {
					select {
					case <-h.stop:
						return
					case <-time.After(idle):
					}
				}
			}
		}(i)
	}
}

// Stop terminates the jitter goroutines and waits for them to exit. Safe to
// call multiple times.
func (h *HostJitter) Stop() {
	if !h.started.CompareAndSwap(true, false) {
		return
	}
	close(h.stop)
	h.wg.Wait()
}

// Burned returns the total CPU time the jitter goroutines have spun so far.
func (h *HostJitter) Burned() time.Duration { return time.Duration(h.burned.Load()) }
