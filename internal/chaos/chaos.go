// Package chaos is the fault- and noise-injection subsystem: it makes the
// otherwise perfectly quiet laboratory misbehave the way real machines do.
// Every run in the rest of the suite models only *intrinsic* waiting
// (imbalance, latency, synchronisation); chaos adds the *extrinsic* kind —
// OS jitter, stragglers, delay spikes, degraded and failed links — as
// pluggable injectors that hook the pgas runtime's Perturber interface and
// wrap its cost models.
//
// All simulated-plane injectors are seeded and deterministic: each rank
// draws from its own splitmix64 stream, so a fixed seed reproduces a chaos
// run bit-for-bit regardless of host scheduling, and injected time is
// attributed to the trace.Noise category so core.Diagnose can call it out.
// The package also carries the remedied side — idle-wave experiments with
// noise-absorbing synchronisation (idlewave.go), over-decomposition with
// rebalancing for stragglers (straggler.go), and checkpoint/replay for rank
// failure (checkpoint.go) — plus real-time jitter goroutines for the
// measured plane (hostjitter.go).
package chaos

import (
	"fmt"

	"tenways/internal/obs"
	"tenways/internal/pgas"
	"tenways/internal/workload"
)

// DefaultSeed is the scenario seed the evaluation suite uses when the
// caller does not pick one (core.Config.Seed, wastelab -seed): the year of
// the keynote. A fixed seed keeps every chaos run bit-reproducible.
const DefaultSeed uint64 = 2009

// Dist selects the shape of a jitter injector's delay distribution.
type Dist int

// The jitter distributions.
const (
	// Uniform draws delays uniformly in [0, 2·mean): benign, short-tailed
	// noise in the style of scattered OS housekeeping.
	Uniform Dist = iota
	// Exponential draws delays with the given mean: the memoryless model
	// of interrupt-style noise used in the idle-wave literature.
	Exponential
	// Bursty injects rarely (one busy period in ten) but ten times as
	// hard: daemon wakeups and page-cache flushes rather than ticks.
	Bursty
)

// String names the distribution.
func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Exponential:
		return "exponential"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// Injector perturbs a simulated run: after a rank spends d busy seconds
// ending at virtual time now, Delay returns the extra seconds stolen from
// it. Implementations must be deterministic given their seed and the
// per-rank call sequence (the kernel serialises each rank's calls, so
// per-rank state needs no locking).
type Injector interface {
	Name() string
	Delay(rank int, now, d float64) float64
}

// Jitter injects per-rank compute jitter: every busy period is stretched by
// a random delay whose expectation is frac of the period, drawn from the
// chosen distribution on the rank's own seeded stream.
type Jitter struct {
	dist Dist
	frac float64
	rngs []*workload.Rand
}

// NewJitter creates a jitter injector for worlds of up to ranks ranks with
// expected injected time frac·(busy time), per-rank streams derived from
// seed.
func NewJitter(dist Dist, frac float64, seed uint64, ranks int) *Jitter {
	j := &Jitter{dist: dist, frac: frac, rngs: make([]*workload.Rand, ranks)}
	for i := range j.rngs {
		// splitmix64 gives independent streams for consecutive seeds.
		j.rngs[i] = workload.NewRand(seed + uint64(i)*0x9e3779b97f4a7c15)
	}
	return j
}

// Name implements Injector.
func (j *Jitter) Name() string { return fmt.Sprintf("jitter-%s-%.0f%%", j.dist, 100*j.frac) }

// Delay implements Injector.
func (j *Jitter) Delay(rank int, now, d float64) float64 {
	if rank >= len(j.rngs) || j.frac <= 0 || d <= 0 {
		return 0
	}
	rng := j.rngs[rank]
	mean := j.frac * d
	switch j.dist {
	case Exponential:
		return mean * rng.Exp()
	case Bursty:
		// One period in ten is hit, ten times as hard: same mean, heavy
		// bursts — the distribution idle waves are most sensitive to.
		if rng.Float64() < 0.1 {
			return 10 * mean
		}
		return 0
	default: // Uniform
		return 2 * mean * rng.Float64()
	}
}

// Straggler slows one rank down by a constant factor within a virtual-time
// window: each busy period of d seconds is followed by (Factor−1)·d of
// injected stall, so the rank behaves as if its clock were divided.
type Straggler struct {
	Rank   int
	Factor float64 // ≥ 1; 2 means the rank runs at half speed
	From   float64 // window start (virtual seconds)
	To     float64 // window end; 0 means forever
}

// NewStraggler creates a permanent straggler injector.
func NewStraggler(rank int, factor float64) *Straggler {
	return &Straggler{Rank: rank, Factor: factor}
}

// Name implements Injector.
func (s *Straggler) Name() string { return fmt.Sprintf("straggler-r%d-%.1fx", s.Rank, s.Factor) }

// Delay implements Injector.
func (s *Straggler) Delay(rank int, now, d float64) float64 {
	if rank != s.Rank || s.Factor <= 1 || d <= 0 {
		return 0
	}
	if now < s.From || (s.To > 0 && now >= s.To) {
		return 0
	}
	return (s.Factor - 1) * d
}

// Spike injects a single delay of Duration seconds into Rank's first busy
// period that completes at or after virtual time At — the one-shot
// perturbation whose propagation through communication dependencies is the
// idle wave. The zero time (At = 0) fires on the rank's first busy period.
type Spike struct {
	Rank     int
	At       float64
	Duration float64
	fired    bool
}

// NewSpike creates a one-shot delay spike.
func NewSpike(rank int, at, duration float64) *Spike {
	return &Spike{Rank: rank, At: at, Duration: duration}
}

// Name implements Injector.
func (s *Spike) Name() string {
	return fmt.Sprintf("spike-r%d@%gs+%gs", s.Rank, s.At, s.Duration)
}

// Delay implements Injector.
func (s *Spike) Delay(rank int, now, d float64) float64 {
	if s.fired || rank != s.Rank || now < s.At {
		return 0
	}
	s.fired = true
	return s.Duration
}

// Scenario composes injectors into one pgas.Perturber and carries the
// non-Perturber fault machinery (link faults) that must be bound to the
// world's clock. A zero/empty scenario injects nothing.
type Scenario struct {
	injectors []Injector
	faults    []*LinkFault

	// Injection instruments, bound at Arm time from the world's registry so
	// the hot Perturber path avoids registry lookups.
	injections *obs.Counter
	injected   *obs.Gauge
}

// NewScenario returns an empty scenario.
func NewScenario() *Scenario { return &Scenario{} }

// Add appends an injector and returns the scenario for chaining.
func (s *Scenario) Add(in Injector) *Scenario {
	s.injectors = append(s.injectors, in)
	return s
}

// AddLinkFault registers a link fault so Arm can bind it to the world's
// clock. The fault's cost model must separately be passed to
// pgas.NewWorld; see LinkFault.
func (s *Scenario) AddLinkFault(f *LinkFault) *Scenario {
	s.faults = append(s.faults, f)
	return s
}

// Injectors returns the registered injectors.
func (s *Scenario) Injectors() []Injector { return s.injectors }

// ComputeDelay implements pgas.Perturber by summing the injectors' delays.
func (s *Scenario) ComputeDelay(rank int, now, d float64) float64 {
	total := 0.0
	for _, in := range s.injectors {
		total += in.Delay(rank, now, d)
	}
	if total > 0 && s.injections != nil {
		s.injections.Inc()
		s.injected.Add(total)
	}
	return total
}

// Arm hooks the scenario into a world: the injectors become the world's
// perturber and every registered link fault is bound to the world's clock.
// A scenario with no injectors leaves the perturber unset so the run stays
// byte-identical to an unperturbed one.
func (s *Scenario) Arm(w *pgas.World) {
	if len(s.injectors) > 0 {
		reg := w.Obs()
		s.injections = reg.Counter("chaos.injections")
		s.injected = reg.Gauge("chaos.injected_seconds")
		w.SetPerturber(s)
	}
	for _, f := range s.faults {
		f.Bind(w.Now)
	}
}
