package chaos

import (
	"fmt"

	"tenways/internal/collective"
	"tenways/internal/machine"
	"tenways/internal/obs"
	"tenways/internal/pgas"
	"tenways/internal/trace"
)

// Stack selects the synchronisation structure of an idle-wave run — the
// experimental variable the Afzal/Hager/Wellein papers show governs how an
// injected delay propagates and decays.
type Stack int

// The synchronisation stacks.
const (
	// NeighborBlocking is bulk-synchronous halo exchange: each step ends
	// by waiting for the current step's neighbour messages. A delay
	// propagates one neighbour offset per step, undamped.
	NeighborBlocking Stack = iota
	// NeighborAsync is split-phase halo exchange with a one-step window:
	// step s waits only for step s−1's messages, so each hop of the wave
	// is damped by one step's compute worth of slack.
	NeighborAsync
	// FlatBarrier ends every step with the central flat barrier: a delay
	// reaches every rank within one step at full amplitude.
	FlatBarrier
	// TreeBarrier ends every step with the binomial-tree barrier: cheaper
	// than flat, but still blocking — the wave is still global and
	// undamped.
	TreeBarrier
	// NonBlockingBarrier brackets each step's compute in a split-phase
	// tree barrier (BarrierBegin before the compute, BarrierEnd after):
	// the compute overlaps the barrier, absorbing up to one step's
	// compute worth of injected delay. Like real MPI non-blocking
	// collectives, progress is made only at the call sites, so the
	// overlap benefits the tree's leaf ranks; internal ranks combine in
	// BarrierEnd and still relay what they receive late.
	NonBlockingBarrier
)

// String names the stack.
func (s Stack) String() string {
	switch s {
	case NeighborBlocking:
		return "neighbor-blocking"
	case NeighborAsync:
		return "neighbor-async"
	case FlatBarrier:
		return "flat-barrier"
	case TreeBarrier:
		return "tree-barrier"
	case NonBlockingBarrier:
		return "nonblocking-barrier"
	default:
		return fmt.Sprintf("stack(%d)", int(s))
	}
}

// IdleWaveConfig parameterises one idle-wave run: an iterative kernel of
// Steps steps on Ranks ranks, each step Compute seconds of busy time
// followed by the chosen synchronisation stack. Neighbour stacks exchange
// Words-word messages with the ranks at ±each offset (open chain, no
// wrap-around, like the idle-wave papers' setups); long offsets are how
// long-range communication accelerates the wave.
type IdleWaveConfig struct {
	Ranks   int
	Steps   int
	Compute float64
	Words   int
	Offsets []int // neighbour offsets for the neighbour stacks; default {1}
	Stack   Stack
	Cost    pgas.CostModel // nil = topology-free LogGP
	Chaos   *Scenario      // nil = quiet run
	Obs     *obs.Registry  // nil = process-wide default registry
}

func (c IdleWaveConfig) offsets() []int {
	if len(c.Offsets) == 0 {
		return []int{1}
	}
	return c.Offsets
}

// IdleWaveResult is one run's outcome: per-rank, per-step finish times in
// virtual seconds, plus the makespan and the world's attribution breakdown
// (which carries injected time in the Noise category).
type IdleWaveResult struct {
	Makespan  float64
	Finish    [][]float64 // [rank][step]
	Breakdown trace.Breakdown
}

// RunIdleWave executes one idle-wave experiment on the machine.
func RunIdleWave(spec *machine.Spec, cfg IdleWaveConfig) (IdleWaveResult, error) {
	p, steps := cfg.Ranks, cfg.Steps
	if p < 2 || steps < 1 {
		return IdleWaveResult{}, fmt.Errorf("chaos: idle wave needs ≥2 ranks and ≥1 step, got %d/%d", p, steps)
	}
	words := cfg.Words
	if words < 1 {
		words = 1
	}
	offs := cfg.offsets()
	w := pgas.NewWorld(p, spec, cfg.Cost, nil)
	if cfg.Obs != nil {
		w.SetObs(cfg.Obs)
	}
	// One slot per (offset, direction) so concurrent puts never overlap.
	w.Alloc("halo", 2*len(offs)*words)
	if cfg.Chaos != nil {
		cfg.Chaos.Arm(w)
	}
	finish := make([][]float64, p)
	for i := range finish {
		finish[i] = make([]float64, steps)
	}
	buf := make([]float64, words)
	makespan, err := w.Run(func(r *pgas.Rank) {
		id := r.ID()
		comm := collective.New(r)
		// nbrs is how many messages this rank both sends and receives per
		// step (offsets are symmetric on an open chain).
		nbrs := 0
		for _, off := range offs {
			if id-off >= 0 {
				nbrs++
			}
			if id+off < p {
				nbrs++
			}
		}
		exchange := func(step int) {
			for oi, off := range offs {
				if id-off >= 0 {
					r.PutSignal(id-off, "halo", (2*oi+1)*words, buf, "halo")
				}
				if id+off < p {
					r.PutSignal(id+off, "halo", 2*oi*words, buf, "halo")
				}
			}
		}
		var expected int64
		for s := 0; s < steps; s++ {
			switch cfg.Stack {
			case NeighborBlocking:
				r.Lapse(cfg.Compute)
				exchange(s)
				expected += int64(nbrs)
				r.WaitSignal("halo", expected)
			case NeighborAsync:
				r.Lapse(cfg.Compute)
				exchange(s)
				// Wait only for the previous step's halo: one step of
				// slack absorbs injected delay hop by hop.
				r.WaitSignal("halo", expected)
				expected += int64(nbrs)
			case FlatBarrier:
				r.Lapse(cfg.Compute)
				comm.BarrierCentral()
			case TreeBarrier:
				r.Lapse(cfg.Compute)
				comm.BarrierTree()
			case NonBlockingBarrier:
				comm.BarrierBegin()
				r.Lapse(cfg.Compute)
				comm.BarrierEnd()
			default:
				//lint:ignore sprintf unreachable default arm: panic message formatting, not per-element work
				panic(fmt.Sprintf("chaos: unknown stack %d", cfg.Stack))
			}
			finish[id][s] = r.Now()
		}
	})
	if err != nil {
		return IdleWaveResult{}, err
	}
	return IdleWaveResult{Makespan: makespan, Finish: finish, Breakdown: w.Breakdown(makespan)}, nil
}

// IdleWaveDelta runs the configuration twice — quiet, then with the given
// scenario — and returns the noisy run, the quiet run, and the per-rank,
// per-step finish-time deltas (noisy − quiet, ≥ 0 up to float noise).
func IdleWaveDelta(spec *machine.Spec, cfg IdleWaveConfig, sc *Scenario) (noisy, quiet IdleWaveResult, delta [][]float64, err error) {
	base := cfg
	base.Chaos = nil
	quiet, err = RunIdleWave(spec, base)
	if err != nil {
		return
	}
	pert := cfg
	pert.Chaos = sc
	noisy, err = RunIdleWave(spec, pert)
	if err != nil {
		return
	}
	delta = make([][]float64, len(quiet.Finish))
	for i := range delta {
		delta[i] = make([]float64, len(quiet.Finish[i]))
		for s := range delta[i] {
			delta[i][s] = noisy.Finish[i][s] - quiet.Finish[i][s]
		}
	}
	return
}

// ArrivalSteps extracts the wavefront: for each rank, the first step whose
// finish-time delta exceeds threshold seconds, or −1 if the wave never
// arrives. The injected rank itself reports the injection step.
func ArrivalSteps(delta [][]float64, threshold float64) []int {
	out := make([]int, len(delta))
	for r, row := range delta {
		out[r] = -1
		for s, d := range row {
			if d > threshold {
				out[r] = s
				break
			}
		}
	}
	return out
}

// ArrivalTimes extracts, for each rank, the quiet-run virtual time at which
// the wavefront (first delta over threshold) arrives, or −1 if it never
// does — the seconds-domain view whose slope is the propagation speed.
func ArrivalTimes(quiet IdleWaveResult, delta [][]float64, threshold float64) []float64 {
	out := make([]float64, len(delta))
	for r, row := range delta {
		out[r] = -1
		for s, d := range row {
			if d > threshold {
				out[r] = quiet.Finish[r][s]
				break
			}
		}
	}
	return out
}

// ResidualDelay returns each rank's final finish-time delta — the wave
// amplitude that survived to the end of the run.
func ResidualDelay(delta [][]float64) []float64 {
	out := make([]float64, len(delta))
	for r, row := range delta {
		out[r] = row[len(row)-1]
	}
	return out
}
