package cache

import (
	"strconv"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int](8, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	c.Put("a", 3) // overwrite
	if v, _ := c.Get("a"); v != 3 {
		t.Fatalf("Get(a) after overwrite = %d, want 3", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUBoundAndEvictionOrder(t *testing.T) {
	c := New[int](3, 1) // one shard, three entries
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Touch a so b becomes the LRU.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should survive", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (bounded)", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestBoundHoldsUnderChurn(t *testing.T) {
	c := New[int](64, 8)
	for i := 0; i < 10_000; i++ {
		c.Put("k"+strconv.Itoa(i), i)
	}
	if c.Len() > c.Cap() {
		t.Fatalf("Len %d exceeds Cap %d", c.Len(), c.Cap())
	}
}

func TestGenerationBumpInvalidates(t *testing.T) {
	c := New[int](8, 2)
	c.Put("a", 1)
	c.Bump()
	if _, ok := c.Get("a"); ok {
		t.Fatal("pre-bump entry should miss")
	}
	st := c.Stats()
	if st.Stale != 1 {
		t.Fatalf("Stale = %d, want 1", st.Stale)
	}
	// The stale entry was reclaimed by the touching Get.
	if c.Len() != 0 {
		t.Fatalf("Len = %d after stale reclaim, want 0", c.Len())
	}
	c.Put("a", 2)
	if v, ok := c.Get("a"); !ok || v != 2 {
		t.Fatalf("post-bump Put/Get = %d, %v; want 2, true", v, ok)
	}
}

func TestStaleEvictedBeforeLive(t *testing.T) {
	c := New[int](2, 1)
	c.Put("old", 1)
	c.Bump()
	c.Put("live1", 2)
	c.Put("live2", 3) // shard full: must evict "old" (stale), not live1
	if _, ok := c.Get("live1"); !ok {
		t.Fatal("live1 evicted while a stale entry was resident")
	}
	if _, ok := c.Get("live2"); !ok {
		t.Fatal("live2 missing")
	}
}

func TestStats(t *testing.T) {
	c := New[int](8, 2)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("nope")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("Stats = %+v, want 2 hits / 1 miss", st)
	}
	if r := st.HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("HitRatio = %g, want 2/3", r)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New[int](0, 0)
	if c.Cap() < DefaultCapacity {
		t.Fatalf("Cap = %d, want >= %d", c.Cap(), DefaultCapacity)
	}
	if len(c.shards) != DefaultShards {
		t.Fatalf("shards = %d, want %d", len(c.shards), DefaultShards)
	}
}

// TestConcurrentChurn exercises the sharded paths under -race: readers,
// writers, and generation bumps against a small bound.
func TestConcurrentChurn(t *testing.T) {
	c := New[int](128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := "k" + strconv.Itoa((g*31+i)%500)
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
				if g == 0 && i%1000 == 999 {
					c.Bump()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Cap() {
		t.Fatalf("Len %d exceeds Cap %d after churn", c.Len(), c.Cap())
	}
}
