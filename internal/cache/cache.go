// Package cache is the lab's shared result cache: sharded to keep
// concurrent daemon traffic off a single lock (our own W5 remedy),
// LRU-bounded per shard so a long-running process cannot grow without
// limit (the unboundedness the original tune.Cache had), and
// generation-keyed so a whole cache can be invalidated in O(1) — bumping
// the generation makes every older entry a miss that is reclaimed lazily
// as it is touched or evicted.
//
// The cache is generic over its value type: internal/tune stores modeled
// Cost pairs, internal/serve stores completed experiment outputs, and the
// T12 load simulator exercises this exact implementation single-threaded
// in virtual time, where its behaviour is deterministic.
package cache

import (
	"sync"
	"sync/atomic"
)

// Default sizing when New is handed zeros: large enough that tuning runs
// and test suites never evict mid-run, small enough to bound a daemon.
const (
	DefaultCapacity = 4096
	DefaultShards   = 16
)

// entry is one cached value on its shard's LRU list (most recent at head).
type entry[V any] struct {
	key        string
	gen        uint64
	val        V
	prev, next *entry[V]
}

// shard is one lock domain: a map index plus an intrusive LRU list.
type shard[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	head    *entry[V] // most recently used
	tail    *entry[V] // least recently used, evicted first
	cap     int
	// Stats are kept per shard, under the shard lock, so the hot path
	// never touches a shared counter; Stats() aggregates on demand.
	hits, misses, evictions, stale int64
}

// Cache is a sharded, LRU-bounded, generation-keyed key/value cache.
// All methods are safe for concurrent use.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64
	gen    atomic.Uint64
}

// New returns a cache bounded to capacity entries spread over the given
// shard count. Non-positive arguments select DefaultCapacity and
// DefaultShards; the shard count is rounded up to a power of two and a
// shard always holds at least one entry.
func New[V any](capacity, shards int) *Cache[V] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry[V], perShard)
		c.shards[i].cap = perShard
	}
	return c
}

// fnv1a hashes the key for shard selection (FNV-1a, 64-bit).
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache[V]) shardOf(key string) *shard[V] {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached value for key, if present under the current
// generation. A value stored before the last Bump counts as a miss and is
// reclaimed on the spot.
func (c *Cache[V]) Get(key string) (V, bool) {
	gen := c.gen.Load()
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		var zero V
		return zero, false
	}
	if e.gen != gen {
		s.remove(e)
		s.misses++
		s.stale++
		var zero V
		return zero, false
	}
	s.moveToFront(e)
	s.hits++
	return e.val, true
}

// Put stores the value for key under the current generation, evicting the
// shard's least recently used entry if the shard is full.
func (c *Cache[V]) Put(key string, v V) {
	gen := c.gen.Load()
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		e.val = v
		e.gen = gen
		s.moveToFront(e)
		return
	}
	if len(s.entries) >= s.cap {
		// Prefer evicting a stale-generation entry over a live one.
		victim := s.tail
		for e := s.tail; e != nil; e = e.prev {
			if e.gen != gen {
				victim = e
				break
			}
		}
		if victim != nil {
			s.remove(victim)
			s.evictions++
		}
	}
	e := &entry[V]{key: key, gen: gen, val: v}
	s.entries[key] = e
	s.pushFront(e)
}

// Bump advances the generation, logically emptying the cache in O(1):
// every existing entry becomes a miss and is reclaimed lazily.
func (c *Cache[V]) Bump() { c.gen.Add(1) }

// Generation returns the current generation number.
func (c *Cache[V]) Generation() uint64 { return c.gen.Load() }

// Len returns the number of resident entries, stale generations included
// (they leave as they are touched or evicted).
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Cap returns the total entry bound across all shards.
func (c *Cache[V]) Cap() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].cap
	}
	return n
}

// Stats is an aggregated view of the cache's activity since creation.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Stale counts misses caused by a generation bump rather than absence.
	Stale      int64  `json:"stale"`
	Len        int    `json:"len"`
	Cap        int    `json:"cap"`
	Generation uint64 `json:"generation"`
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats aggregates the per-shard counters.
func (c *Cache[V]) Stats() Stats {
	st := Stats{Generation: c.gen.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Stale += s.stale
		st.Len += len(s.entries)
		st.Cap += s.cap
		s.mu.Unlock()
	}
	return st
}

// ---- intrusive LRU list (shard lock held) ----

func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[V]) moveToFront(e *entry[V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *shard[V]) remove(e *entry[V]) {
	s.unlink(e)
	delete(s.entries, e.key)
}
