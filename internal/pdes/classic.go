package pdes

import (
	"fmt"

	"tenways/internal/obs"
	"tenways/internal/sim"
)

// simSched adapts the classic single-heap sim.Kernel to the Sched
// interface, so any pdes.Workload also runs on the old engine — the
// cross-check used by the determinism tests and the fallback when a
// workload cannot promise lookahead-sized message delays.
type simSched struct {
	k    *sim.Kernel
	w    Workload
	look float64
	seq  []uint32
	src  int32
}

func (s *simSched) Now() float64       { return s.k.Now() }
func (s *simSched) Rank() int          { return int(s.src) }
func (s *simSched) Lookahead() float64 { return s.look }

func (s *simSched) At(dst int, t float64, kind, step int32, data float64) {
	if dst < 0 || dst >= len(s.seq) {
		panic(fmt.Sprintf("pdes: rank %d scheduled event on rank %d, outside [0, %d)", s.src, dst, len(s.seq)))
	}
	src := s.src
	s.seq[src]++
	ev := Event{Time: t, Data: data, Src: src, Dst: int32(dst), Seq: s.seq[src], Kind: kind, Step: step}
	s.k.At(t, func() {
		s.src = ev.Dst
		s.w.Handle(s, ev)
	})
}

// RunOnSim executes the workload on a fresh sim.Kernel. The kernel orders
// simultaneous events by insertion sequence rather than by (Time, Src,
// Seq), so a workload whose same-timestamp handlers do not commute may
// diverge from the partitioned engine; the idle-wave workloads commute and
// produce identical results on both. lookahead is only echoed through
// Sched.Lookahead — the single heap needs no windowing.
func RunOnSim(w Workload, lookahead float64, reg *obs.Registry) (virtualTime float64, events uint64, err error) {
	n := w.Ranks()
	if n < 1 {
		return 0, 0, fmt.Errorf("pdes: workload has %d ranks, need at least 1", n)
	}
	k := sim.NewKernel()
	k.SetMetrics(reg)
	s := &simSched{k: k, w: w, look: lookahead, seq: make([]uint32, n)}
	for r := 0; r < n; r++ {
		s.src = int32(r)
		w.Init(s, r)
	}
	vt, err := k.RunEvents()
	return vt, k.Events(), err
}
