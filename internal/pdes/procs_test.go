package pdes

import (
	"errors"
	"strings"
	"testing"
)

// TestProcsPingPongDeterministicAcrossConfigs stresses the crossing path:
// every rank ping-pongs with its mirror rank (cross-partition for almost all
// pairs), with per-round varying delays, and the per-rank accumulators must
// match the serial run exactly at every configuration. Run under -race this
// also exercises the worker/proc handoff discipline.
func TestProcsPingPongDeterministicAcrossConfigs(t *testing.T) {
	const n = 64
	const rounds = 15
	const look = 1e-6

	run := func(cfg Config) ([]float64, Result) {
		t.Helper()
		sums := make([]float64, n)
		cfg.Lookahead = look
		res, err := RunProcs(n, cfg, func(p *Proc) {
			partner := n - 1 - p.ID()
			acc := 0.0
			for i := 0; i < rounds; i++ {
				p.Send(partner, look*float64(1+i%3), float64(p.ID()*rounds+i))
				m := p.Recv()
				acc += m.Data + m.Time*1e6
				p.Advance(look / 3)
			}
			sums[p.ID()] = acc
		})
		if err != nil {
			t.Fatalf("parts=%d workers=%d: %v", cfg.Partitions, cfg.Workers, err)
		}
		return sums, res
	}

	base, bres := run(Config{Partitions: 1, Workers: 1})
	for _, cfg := range []Config{
		{Partitions: 2, Workers: 2},
		{Partitions: 4, Workers: 4},
		{Partitions: 8, Workers: 3},
		{Partitions: 64, Workers: 8},
	} {
		sums, res := run(cfg)
		if res.Events != bres.Events || res.VirtualTime != bres.VirtualTime {
			t.Errorf("parts=%d workers=%d: (%d events, t=%g), baseline (%d, t=%g)",
				cfg.Partitions, cfg.Workers, res.Events, res.VirtualTime, bres.Events, bres.VirtualTime)
		}
		for r := range sums {
			if sums[r] != base[r] {
				t.Fatalf("parts=%d workers=%d: rank %d sum %g, baseline %g", cfg.Partitions, cfg.Workers, r, sums[r], base[r])
			}
		}
	}
	if bres.Events == 0 {
		t.Fatal("ping-pong processed no events")
	}
}

// TestProcsResumeLadderFrontierAtBoundaries targets the ladder's
// binary-search run insertion behind the merge frontier: zero-delay
// Advance resumes schedule self events at exactly the popped time, which
// land behind the frontier mid-merge, while adjacent ranks ping-pong
// across partition boundaries so the resumes interleave with cross
// arrivals. Tiny bucket widths force constant respreads; the per-rank
// ledgers must still match the serial run at every partition count.
func TestProcsResumeLadderFrontierAtBoundaries(t *testing.T) {
	const n = 48
	const rounds = 12
	const look = 1e-6

	run := func(cfg Config) ([]float64, Result) {
		t.Helper()
		ledger := make([]float64, n)
		cfg.Lookahead = look
		cfg.Queue = QueueLadder
		res, err := RunProcs(n, cfg, func(p *Proc) {
			// Neighbour pairing (0<->1, 2<->3, ...) keeps traffic on
			// partition boundaries whenever the partition size is odd.
			partner := p.ID() ^ 1
			acc := 0.0
			for i := 0; i < rounds; i++ {
				p.Send(partner, look*float64(1+i%2), float64(i))
				// A burst of zero-delay resumes: each lands at p.Now()
				// exactly, behind the ladder's merge frontier.
				for k := 0; k <= i%3; k++ {
					p.Advance(0)
					acc += p.Now() * 1e6
				}
				m := p.Recv()
				acc += m.Data*7 + m.Time*1e6
				p.Advance(look / 4)
			}
			ledger[p.ID()] = acc
		})
		if err != nil {
			t.Fatalf("parts=%d width=%g: %v", cfg.Partitions, cfg.BucketWidth, err)
		}
		return ledger, res
	}

	base, bres := run(Config{Partitions: 1, Workers: 1})
	if bres.Events == 0 {
		t.Fatal("frontier ping-pong processed no events")
	}
	for _, cfg := range []Config{
		{Partitions: 3, Workers: 1, BucketWidth: look / 128}, // odd size: pairs straddle boundaries
		{Partitions: 5, Workers: 2, BucketWidth: look / 128},
		{Partitions: 16, Workers: 4, BucketWidth: look / 16},
		{Partitions: 48, Workers: 8, BucketWidth: look * 1e4}, // every pair cross, one giant bucket
	} {
		ledger, res := run(cfg)
		if res.Events != bres.Events || res.VirtualTime != bres.VirtualTime {
			t.Errorf("parts=%d width=%g: (%d events, t=%g), baseline (%d, t=%g)",
				cfg.Partitions, cfg.BucketWidth, res.Events, res.VirtualTime, bres.Events, bres.VirtualTime)
		}
		for r := range ledger {
			if ledger[r] != base[r] {
				t.Fatalf("parts=%d width=%g: rank %d ledger %g, baseline %g",
					cfg.Partitions, cfg.BucketWidth, r, ledger[r], base[r])
			}
		}
	}
}

// TestProcsOptimisticRejected: the procs adapter hides rank state inside
// goroutine stacks, which no checkpoint can capture, so the optimistic
// engine must refuse it with the typed capability error.
func TestProcsOptimisticRejected(t *testing.T) {
	_, err := RunProcs(4, Config{Partitions: 2, Lookahead: 1e-6, Sync: SyncOptimistic}, func(p *Proc) {})
	if !errors.Is(err, ErrNotStateful) {
		t.Fatalf("got %v, want ErrNotStateful", err)
	}
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("capability rejection %v should wrap ErrConfig", err)
	}
}

// TestProcsMessageOrder: simultaneous arrivals deliver in (Time, Src, Seq)
// order no matter how the senders are partitioned.
func TestProcsMessageOrder(t *testing.T) {
	for _, parts := range []int{1, 3} {
		var first, second Msg
		_, err := RunProcs(3, Config{Partitions: parts, Lookahead: 1e-6}, func(p *Proc) {
			switch p.ID() {
			case 0, 2:
				p.Send(1, 1e-6, float64(10+p.ID()))
			case 1:
				first = p.Recv()
				second = p.Recv()
			}
		})
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if first.From != 0 || second.From != 2 {
			t.Errorf("parts=%d: delivery order %d,%d, want 0,2", parts, first.From, second.From)
		}
		if first.Data != 10 || second.Data != 12 {
			t.Errorf("parts=%d: payloads %g,%g, want 10,12", parts, first.Data, second.Data)
		}
	}
}

func TestProcsDeadlockDetected(t *testing.T) {
	_, err := RunProcs(4, Config{Partitions: 2, Lookahead: 1e-6}, func(p *Proc) {
		if p.ID() == 0 {
			p.Recv() // nobody writes to rank 0
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("got %v, want a deadlock error", err)
	}
}

func TestProcsPanicPropagates(t *testing.T) {
	_, err := RunProcs(4, Config{Partitions: 2, Lookahead: 1e-6}, func(p *Proc) {
		if p.ID() == 2 {
			panic("boom")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "proc 2 panicked: boom") {
		t.Fatalf("got %v, want the proc panic", err)
	}
}

func TestProcsLookaheadViolation(t *testing.T) {
	const look = 1e-6
	_, err := RunProcs(2, Config{Partitions: 2, Lookahead: look}, func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, look/2, 1)
		} else {
			p.Recv()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "lookahead violation") {
		t.Fatalf("got %v, want a lookahead violation", err)
	}
}

func TestProcsAdvanceAndPending(t *testing.T) {
	var pending int
	var now float64
	_, err := RunProcs(2, Config{Partitions: 1, Lookahead: 1e-6}, func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 1e-6, 1)
			p.Send(1, 2e-6, 2)
			return
		}
		p.Advance(5e-6) // both messages land while rank 1 computes
		pending = p.Pending()
		now = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if pending != 2 {
		t.Errorf("pending = %d, want 2", pending)
	}
	if now != 5e-6 {
		t.Errorf("now = %g, want 5e-6", now)
	}
}
