package pdes

import (
	"errors"
	"testing"
)

// statelessProbe is a Workload without the StatefulWorkload capability —
// the optimistic engine must refuse it with a typed error.
type statelessProbe struct{ n int }

func (w *statelessProbe) Ranks() int { return w.n }
func (w *statelessProbe) Init(s Sched, rank int) {
	s.At(rank, 1e-6, 1, 0, 0)
}
func (w *statelessProbe) Handle(Sched, Event) {}

func TestOptimisticRejectsStatelessWorkload(t *testing.T) {
	_, err := Run(&statelessProbe{n: 4}, Config{Partitions: 2, Lookahead: 1e-6, Sync: SyncOptimistic})
	if !errors.Is(err, ErrNotStateful) {
		t.Fatalf("got %v, want ErrNotStateful", err)
	}
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("capability rejection %v should wrap ErrConfig for the daemon's 400 mapping", err)
	}
	// The identical workload runs fine conservatively.
	if _, err := Run(&statelessProbe{n: 4}, Config{Partitions: 2, Lookahead: 1e-6}); err != nil {
		t.Fatalf("conservative run of the same workload failed: %v", err)
	}
}

// TestTimeWarpMatchesConservative is the tentpole's headline contract on
// the real workload: a spiked idle wave under the optimistic engine
// commits byte-identical results to the conservative engine while actually
// speculating — rollbacks observed, efficiency below 1, checkpoints taken.
func TestTimeWarpMatchesConservative(t *testing.T) {
	const n, steps = 512, 8
	const c = 50e-6
	mk := func() *IdleWave {
		return mustWave(t, n, steps, c, 8*c, []int{1, 4}, []float64{2e-6, 3e-6})
	}

	base := mk()
	bres, err := Run(base, testCfgCons(Config{Partitions: 1, Workers: 1, Lookahead: base.MinDelay()}))
	if err != nil {
		t.Fatalf("conservative baseline: %v", err)
	}

	for _, cfg := range []Config{
		{Partitions: 2, Workers: 1},
		{Partitions: 8, Workers: 4},
		{Partitions: 8, Workers: 4, Queue: QueueHeap},
		{Partitions: 8, Workers: 4, Barrier: BarrierChan},
		{Partitions: 8, Workers: 4, CheckpointInterval: 1},
		{Partitions: 8, Workers: 4, CheckpointInterval: 5},
		{Partitions: 8, Workers: 4, CheckpointInterval: 4096},
		{Partitions: 5, Workers: 3, BucketWidth: 1e-6},
	} {
		w := mk()
		cfg.Sync = SyncOptimistic
		cfg.Lookahead = w.MinDelay()
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatalf("optimistic %+v: %v", cfg, err)
		}
		if res.Events != bres.Events || res.VirtualTime != bres.VirtualTime {
			t.Errorf("optimistic parts=%d interval=%d: committed %d events / vt %g, conservative %d / %g",
				cfg.Partitions, cfg.CheckpointInterval, res.Events, res.VirtualTime, bres.Events, bres.VirtualTime)
		}
		for r := 0; r < n; r++ {
			if w.Arrival(r) != base.Arrival(r) {
				t.Fatalf("optimistic parts=%d interval=%d: rank %d arrival %g, conservative %g",
					cfg.Partitions, cfg.CheckpointInterval, r, w.Arrival(r), base.Arrival(r))
			}
		}
		if res.Checkpoints == 0 {
			t.Errorf("optimistic parts=%d: no checkpoint segments opened", cfg.Partitions)
		}
		if res.Executed < res.Events {
			t.Errorf("optimistic parts=%d: executed %d < committed %d", cfg.Partitions, res.Executed, res.Events)
		}
		if cfg.Partitions > 1 {
			if res.Rollbacks == 0 || res.RolledBack == 0 {
				t.Errorf("optimistic parts=%d: no rollbacks observed (%d episodes, %d undone) — speculation never ran ahead",
					cfg.Partitions, res.Rollbacks, res.RolledBack)
			}
			if eff := res.Efficiency(); eff >= 1 {
				t.Errorf("optimistic parts=%d: efficiency %g, want < 1 with rollbacks", cfg.Partitions, eff)
			}
		}
	}

	// Conservative results report no speculation and unit efficiency.
	if bres.Executed != 0 || bres.Rollbacks != 0 || bres.Efficiency() != 1 {
		t.Errorf("conservative result carries speculation counters: %+v", bres)
	}
}

// TestTimeWarpRepairsSubLookahead: the emission the conservative gate
// rejects (TestLookaheadViolationReported) is legal under optimism — the
// cross event lands as a straggler and rollback repairs the schedule
// instead of reporting an error.
func TestTimeWarpRepairsSubLookahead(t *testing.T) {
	const look = 1e-6
	serial := &crossEmit{n: 2, at: look, delay: look / 2}
	sres, err := Run(serial, Config{Partitions: 1, Workers: 1, Lookahead: look})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	opt := &crossEmit{n: 2, at: look, delay: look / 2}
	ores, err := Run(opt, Config{Partitions: 2, Workers: 1, Lookahead: look, Sync: SyncOptimistic})
	if err != nil {
		t.Fatalf("optimistic run rejected the sub-lookahead cross emission: %v", err)
	}
	if ores.Events != sres.Events || ores.VirtualTime != sres.VirtualTime {
		t.Errorf("optimistic committed %d events / vt %g, serial %d / %g",
			ores.Events, ores.VirtualTime, sres.Events, sres.VirtualTime)
	}
}
