package pdes

import (
	"math"
	"runtime"
	"sync/atomic"
)

// senseBarrier is the window hand-off for multi-worker runs under
// Config.BarrierSense: a sense-reversing barrier with an inline min-reduce,
// replacing the chan-broadcast + report-channel pair (two channel
// operations per worker per window — send/recv futex traffic the paper
// would file under synchronisation waste) with one atomic publish and one
// bounded spin per worker per window.
//
// Protocol, per window w (epoch e = w+1 so the zero value means "idle"):
//
//	coordinator: wend = ...; epoch.Store(e)        // release: publishes wend
//	worker i:    spin until epoch.Load() == e      // acquire
//	             run partitions; slots[i].min/fail = ...
//	             slots[i].done.Store(e)            // release: publishes slot
//	coordinator: for each i: spin until done == e  // acquire
//	             fold slots[i].min into gmin        // inline min-reduce
//
// Go's atomics give the release/acquire ordering, so the plain wend and
// slot fields are race-free. Each worker slot sits on its own cache line
// (W9 territory: a shared line would ping-pong between the publishing
// worker and the spinning coordinator). Spins yield to the scheduler after
// a short burst so the barrier also works oversubscribed (GOMAXPROCS <
// workers), just slower.
type senseBarrier struct {
	wend  float64 // window end; written by coordinator before epoch.Store
	stop  bool    // shutdown flag; written by coordinator before epoch.Store
	epoch atomic.Uint32
	_     [44]byte // keep worker slots off the coordinator's publish line
	slots []wslot
}

// wslot is one worker's publish slot, padded to a cache line.
type wslot struct {
	min  float64 // worker's min lower bound over its partitions this window
	fail bool    // any partition failed
	done atomic.Uint32
	_    [44]byte
}

func newSenseBarrier(workers int) *senseBarrier {
	return &senseBarrier{slots: make([]wslot, workers)}
}

// issue opens window epoch e with the given window end.
func (b *senseBarrier) issue(e uint32, wend float64) {
	b.wend = wend
	b.epoch.Store(e)
}

// shutdown releases the workers one last time with the stop flag set.
func (b *senseBarrier) shutdown(e uint32) {
	b.stop = true
	b.epoch.Store(e)
}

// await blocks worker-side until epoch e opens; ok is false on shutdown.
func (b *senseBarrier) await(e uint32) (wend float64, ok bool) {
	spinWait(&b.epoch, e)
	return b.wend, !b.stop
}

// publish posts worker wi's window reduction — the one atomic store on the
// worker's window exit path.
func (b *senseBarrier) publish(wi int, e uint32, min float64, fail bool) {
	s := &b.slots[wi]
	s.min = min
	s.fail = fail
	s.done.Store(e)
}

// collect folds every worker's slot for epoch e — the coordinator-side
// inline min-reduce that replaces the report channel.
func (b *senseBarrier) collect(e uint32) (gmin float64, failed bool) {
	gmin = math.Inf(1)
	for i := range b.slots {
		s := &b.slots[i]
		spinWait(&s.done, e)
		if s.min < gmin {
			gmin = s.min
		}
		if s.fail {
			failed = true
		}
	}
	return gmin, failed
}

// spinWait hot-spins briefly, then yields between probes so a spinning
// party cannot starve the worker it is waiting on when cores are scarce.
func spinWait(v *atomic.Uint32, target uint32) {
	for spins := 0; v.Load() != target; spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
}
