package pdes

import (
	"fmt"
	"math"
)

// This file is the optimistic (Time Warp) half of the engine: per-partition
// speculative execution past the window bound, sparse periodic state
// checkpoints, rollback on straggler arrival with coast-forward replay,
// anti-message cancellation riding the same parity-buffered delivery
// discipline as the positive chunk chains, and fossil collection at every
// GVT advance. GVT itself is the number the conservative engine already
// computes — the sense-reversing barrier's inline min-reduce (or its chan
// and serial twins) folds queue heads and in-flight cross minima into gmin,
// and each window hands every partition wend = gvt + lookahead. Everything
// below wend - lookahead is committed history; everything at or above it is
// provisional and undoable.
//
// Determinism: committed results are byte-identical to the conservative
// engine because rollback restores both workload state (StatefulWorkload
// snapshots) and the per-source emission counters, so re-execution
// regenerates exactly the events the first execution produced — stale
// copies meet their annihilation tokens by full value match, and the
// committed log ends up in the same (Time, Src, Seq) order the
// conservative engine processes.

const (
	// defaultCheckpointInterval is the events-per-segment default when
	// Config.CheckpointInterval is unset; tunable F30-interval searches
	// the knob.
	defaultCheckpointInterval = 64

	// twSpecWindows bounds optimism: a partition speculates at most this
	// many lookahead windows past the committed bound, so a straggler can
	// only ever unwind a bounded horizon and rollback cascades stay tame.
	twSpecWindows = 8
)

// twSeg is one checkpoint segment: the sparse state needed to rewind to
// the segment's start. Snapshots are taken copy-on-first-touch — a rank
// appears in saved only if one of its events executed inside the segment —
// together with the rank's emission counter, so both state and event keys
// rewind in lockstep.
type twSeg struct {
	startPos int // log index where the segment begins
	saved    map[int32]any
	savedSeq map[int32]uint32
}

// twEmit records one speculative emission so rollback can cancel it: the
// emitting handler's log position, the destination partition, and the full
// event value (the anti-message payload).
type twEmit struct {
	ev  Event
	pos int
	dst int32
}

// twPart is one partition's Time-Warp state.
type twPart struct {
	sw StatefulWorkload

	active   bool // false until Init completes (Init emissions are committed)
	coasting bool // replaying committed history: suppress emissions, keep seq side effects

	interval int     // events per checkpoint segment
	log      []Event // processed events since the fossil line, in pop order (Time-nondecreasing)
	segs     []twSeg // checkpoint segments over log
	out      []twEmit
	// cancel is the annihilation multiset: full event value -> pending
	// token count. Keying by the whole Event (not just the (Time, Src,
	// Seq) identity) means a rolled-back emission cancels exactly the
	// stale copy it produced even if replay regenerates a same-key event
	// with different payload.
	cancel map[Event]int32
	// committedT is the timestamp of the newest fossil-collected event —
	// what lastT rewinds to when a rollback empties the whole log.
	committedT float64

	executed    uint64 // handler invocations, including replays and aborted speculation
	rollbacks   uint64
	undone      uint64 // log entries rolled back
	antis       uint64 // anti-messages sent cross-partition
	annihilated uint64 // positive/anti pairs destroyed at pop
	checkpoints uint64 // segments opened
}

func newTwPart(sw StatefulWorkload, interval int) *twPart {
	return &twPart{
		sw:         sw,
		interval:   interval,
		cancel:     make(map[Event]int32),
		committedT: math.Inf(-1),
	}
}

// runWindowTW is runWindow's optimistic twin. The same contract — drain the
// opposite parity, process, report the partition's lower bound on future
// work — but processing runs past wend up to a bounded speculation horizon,
// after first repairing any stragglers or anti-messages the drain surfaced.
func (e *engine) runWindowTW(d int, wend float64, window int) (lmin float64, failed bool) {
	lmin = math.Inf(1)
	ps := &e.parts[d]
	tw := ps.tw
	defer func() {
		if r := recover(); r != nil {
			if ps.err == nil {
				ps.err = fmt.Errorf("pdes: partition %d handler panicked: %v", d, r)
			}
			failed = true
		}
	}()
	if ps.err != nil {
		return lmin, true
	}

	// Fossil collection: wend - lookahead is this round's GVT (the
	// barrier fold's gmin); history strictly below it can never be rolled
	// back again, so release whole checkpoint segments and their
	// snapshots.
	tw.fossil(wend - e.look)

	wp := window & 1
	ps.crossMin = math.Inf(1)
	s := &ps.sched
	s.parity = wp
	s.wend = wend

	// Drain anti-messages before positives: a rollback emitted in the
	// same round as its victims lands both in the same parity, and the
	// token must be banked before the stale positive is pushed.
	rbTime := math.Inf(1)
	for sp := 0; sp < e.p; sp++ {
		slot := &e.antis[1-wp][sp*e.p+d]
		for _, av := range *slot {
			if av.Time <= ps.lastT && av.Time < rbTime {
				rbTime = av.Time
			}
			tw.cancel[av]++
		}
		*slot = (*slot)[:0]
	}
	q := ps.q
	for sp := 0; sp < e.p; sp++ {
		bt := &e.bufs[1-wp][sp*e.p+d]
		for c := bt.head; c != nil; {
			for i := 0; i < c.n; i++ {
				ev := c.ev[i]
				if ev.Time <= ps.lastT && ev.Time < rbTime {
					rbTime = ev.Time
				}
				q.push(ev)
			}
			nx := c.next
			ps.arena.put(c)
			c = nx
		}
		bt.head, bt.tail = nil, nil
	}

	// One rollback to the minimum trigger repairs every straggler and
	// secondary (anti-past) arrival at once.
	if !math.IsInf(rbTime, 1) {
		e.rollbackTW(ps, rbTime)
	}

	specEnd := wend + twSpecWindows*e.look
	processed := uint64(0)
	for {
		t, ok := q.peek()
		if !ok || t >= specEnd {
			break
		}
		ev := q.pop()
		if nt := tw.cancel[ev]; nt > 0 {
			if nt == 1 {
				delete(tw.cancel, ev)
			} else {
				tw.cancel[ev] = nt - 1
			}
			tw.annihilated++
			continue
		}
		if len(tw.segs) == 0 || len(tw.log)-tw.segs[len(tw.segs)-1].startPos >= tw.interval {
			tw.newSeg(len(tw.log))
		}
		seg := &tw.segs[len(tw.segs)-1]
		if _, saved := seg.saved[ev.Dst]; !saved {
			seg.saved[ev.Dst] = tw.sw.Snapshot(int(ev.Dst))
			seg.savedSeq[ev.Dst] = e.seq[ev.Dst]
		}
		s.now = ev.Time
		s.src = ev.Dst
		ps.lastT = ev.Time
		aborted := e.handleSpec(s, ev, wend)
		if ps.err != nil && ev.Time >= wend {
			// An error raised on speculative input is as provisional as
			// the state that provoked it; discard it with the speculation.
			ps.err = nil
			aborted = true
		}
		if aborted {
			// The handler panicked or failed on speculative input — a
			// state the committed schedule may never reach (e.g. a halo
			// from a partition several steps ahead popping before the
			// straggler that orders it). Undo everything at or after the
			// event, requeue it, and stop speculating: the conservative
			// prefix below wend always completes, so GVT still advances
			// and the event re-executes once its missing past has
			// arrived. A panic below wend is committed territory and is
			// re-raised into the recovery above instead.
			e.rollbackTW(ps, ev.Time)
			q.push(ev)
			break
		}
		tw.log = append(tw.log, ev)
		ps.events++
		processed++
		if ps.err != nil {
			failed = true
			break
		}
	}
	if processed == 0 {
		ps.stalls++
	}
	if m := ps.crossMin; m < lmin {
		lmin = m
	}
	if t, ok := q.peek(); ok && t < lmin {
		lmin = t
	}
	return lmin, failed
}

// handleSpec runs one handler, converting a panic on speculative input
// (ev.Time >= wend) into a reported abort; panics in committed territory
// propagate to runWindowTW's recovery like the conservative engine's.
func (e *engine) handleSpec(s *partSched, ev Event, wend float64) (aborted bool) {
	s.ps.tw.executed++
	defer func() {
		if r := recover(); r != nil {
			if ev.Time < wend {
				panic(r)
			}
			aborted = true
		}
	}()
	e.w.Handle(s, ev)
	return false
}

func (tw *twPart) newSeg(pos int) {
	tw.segs = append(tw.segs, twSeg{
		startPos: pos,
		saved:    make(map[int32]any),
		savedSeq: make(map[int32]uint32),
	})
	tw.checkpoints++
}

// rollbackTW rewinds partition ps so that every processed event with
// Time >= t is undone: workload state and emission counters are restored
// from checkpoints, the segment prefix is replayed (coast-forward, with
// emissions suppressed), undone events return to the queue, and every
// emission of an undone handler is cancelled — a token into the local
// annihilation multiset for same-partition sends, an anti-message through
// the parity buffers for cross-partition ones. Undoing by timestamp rather
// than by full key over-rolls equal-time neighbours, which is safe (replay
// is deterministic and duplicates annihilate) where under-rolling would
// not be: the log is only Time-nondecreasing, not key-sorted, because a
// handler may legally emit an equal-time event with a smaller key.
func (e *engine) rollbackTW(ps *partState, t float64) {
	tw := ps.tw
	lo, hi := 0, len(tw.log)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tw.log[mid].Time < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	undoFrom := lo
	if n := len(tw.log) - undoFrom; n > 0 {
		tw.rollbacks++
		tw.undone += uint64(n)
		ps.events -= uint64(n)
	}

	// Cancel emissions of undone handlers (reverse scan: out is
	// pos-nondecreasing).
	for i := len(tw.out) - 1; i >= 0 && tw.out[i].pos >= undoFrom; i-- {
		em := tw.out[i]
		if int(em.dst) == ps.sched.part {
			tw.cancel[em.ev]++
		} else {
			slot := &e.antis[ps.sched.parity][ps.sched.part*e.p+int(em.dst)]
			*slot = append(*slot, em.ev)
			tw.antis++
			if em.ev.Time < ps.crossMin {
				// The anti-message holds GVT down exactly like a positive
				// in flight, so the receiver repairs before time passes it.
				ps.crossMin = em.ev.Time
			}
		}
		tw.out = tw.out[:i]
	}

	if len(tw.segs) == 0 {
		// Nothing processed since the fossil line: no state to restore.
		ps.lastT = tw.committedT
		return
	}

	// Restore snapshots newest-first down to the segment containing
	// undoFrom: older segments overwrite newer ones, so each touched rank
	// ends at its oldest (deepest) saved state — the state at that
	// segment's start.
	si := len(tw.segs) - 1
	for si > 0 && tw.segs[si].startPos > undoFrom {
		si--
	}
	for j := len(tw.segs) - 1; j >= si; j-- {
		seg := &tw.segs[j]
		for r, snap := range seg.saved {
			tw.sw.Restore(int(r), snap)
			e.seq[r] = seg.savedSeq[r]
		}
	}

	// Coast forward: replay the committed prefix of the segment to carry
	// state from the checkpoint to the rollback point. Emissions are
	// suppressed (the originals are still in flight or logged) but the
	// emission counters advance, so the later live replay regenerates
	// identical keys.
	if start := tw.segs[si].startPos; start < undoFrom {
		s := &ps.sched
		savedNow, savedSrc := s.now, s.src
		tw.coasting = true
		for i := start; i < undoFrom; i++ {
			ev := tw.log[i]
			s.now = ev.Time
			s.src = ev.Dst
			tw.executed++
			e.w.Handle(s, ev)
		}
		tw.coasting = false
		s.now, s.src = savedNow, savedSrc
	}

	// Undone events go back in the queue to re-execute in repaired order.
	// They were popped in (Time, Src, Seq) order, so the log suffix is
	// already sorted and pushSorted merges it in one pass — per-event
	// pushes would each memmove the ladder's run tail, quadratic in the
	// rollback depth (a measured 180x wall blowup at 64k-rank F30 scale).
	ps.q.pushSorted(tw.log[undoFrom:])
	tw.log = tw.log[:undoFrom]
	tw.segs = tw.segs[:si+1]
	if undoFrom > 0 {
		ps.lastT = tw.log[undoFrom-1].Time
	} else {
		ps.lastT = tw.committedT
	}
}

// fossil commits history strictly below gvt: whole checkpoint segments
// whose events can never be rolled back again are dropped, their snapshots
// released, and the emission records rebased. Only segment-granular
// prefixes are released so the segment containing the commit horizon stays
// intact for future rollbacks.
func (tw *twPart) fossil(gvt float64) {
	if len(tw.segs) < 2 {
		return
	}
	lo, hi := 0, len(tw.log)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tw.log[mid].Time < gvt {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first provisional entry; keep its segment whole.
	si := len(tw.segs) - 1
	for si > 0 && tw.segs[si].startPos > lo {
		si--
	}
	cut := tw.segs[si].startPos
	if cut == 0 {
		return
	}
	tw.committedT = tw.log[cut-1].Time
	tw.log = append(tw.log[:0], tw.log[cut:]...)
	tw.segs = append(tw.segs[:0], tw.segs[si:]...)
	for i := range tw.segs {
		tw.segs[i].startPos -= cut
	}
	kept := tw.out[:0]
	for _, em := range tw.out {
		if em.pos >= cut {
			em.pos -= cut
			kept = append(kept, em)
		}
	}
	tw.out = kept
}
