package pdes

import (
	"fmt"
)

// RunProcs runs sim.Proc-style sequential rank programs on the partitioned
// engine: one goroutine per rank, resumed one at a time per partition, so
// existing process-shaped workloads scale across partitions without being
// rewritten as event handlers. Cross-rank Send delays must be at least the
// configured lookahead; Advance (a self-event) may use any non-negative
// duration.
//
// The goroutine-per-rank model costs real memory per rank — use it for
// workloads up to the tens of thousands of ranks and the raw Workload
// interface for the million-rank regime.
func RunProcs(n int, cfg Config, body func(p *Proc)) (Result, error) {
	w := &procsWorkload{n: n, body: body, procs: make([]*Proc, n)}
	res, err := Run(w, cfg)
	if err != nil {
		return res, err
	}
	for _, pr := range w.procs {
		if pr.err != nil {
			return res, pr.err
		}
	}
	blocked := 0
	for _, pr := range w.procs {
		if !pr.finished {
			blocked++
		}
	}
	if blocked > 0 {
		// Parked goroutines persist for the life of the program, exactly
		// like a deadlocked sim.Kernel run; a deadlock is a bug in the
		// simulated program, so callers treat it as fatal.
		return res, fmt.Errorf("pdes: deadlock at t=%g with %d of %d procs blocked in Recv", res.VirtualTime, blocked, n)
	}
	return res, nil
}

// Msg is one message delivered to a Proc.
type Msg struct {
	From int     // sending rank
	Time float64 // arrival time
	Data float64
}

// Proc is one simulated process on the partitioned engine. Its methods may
// only be called from the process's own body function.
type Proc struct {
	s        Sched
	id       int
	now      float64
	resume   chan struct{}
	yield    chan struct{}
	mail     []Msg
	waiting  bool
	finished bool
	err      error
}

// ID returns the process's rank in [0, n).
func (p *Proc) ID() int { return p.id }

// Now returns the process's current virtual time.
func (p *Proc) Now() float64 { return p.now }

// Lookahead returns the engine's window length — the minimum legal
// cross-rank Send delay.
func (p *Proc) Lookahead() float64 { return p.s.Lookahead() }

// Advance consumes dt seconds of virtual time.
func (p *Proc) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("pdes: negative advance %g", dt))
	}
	p.s.At(p.id, p.now+dt, kindResume, 0, 0)
	p.pause()
}

// Send delivers data to rank dst after the given delay. Sends to ranks in
// other partitions need delay >= Lookahead; the engine reports a violation
// as a run error. Send does not block or advance time.
func (p *Proc) Send(dst int, delay, data float64) {
	p.s.At(dst, p.now+delay, kindMsg, 0, data)
}

// Recv returns the next undelivered message, blocking in virtual time until
// one arrives. Messages are delivered in global (Time, Src, Seq) order.
func (p *Proc) Recv() Msg {
	for len(p.mail) == 0 {
		p.waiting = true
		p.pause()
		p.waiting = false
	}
	m := p.mail[0]
	p.mail = p.mail[1:]
	return m
}

// Pending returns how many delivered messages wait in the mailbox.
func (p *Proc) Pending() int { return len(p.mail) }

// pause hands control back to the partition worker and parks until the
// next resume. The channel pair orders all memory operations between the
// worker and the proc goroutine, so only one of them touches engine state
// at a time.
func (p *Proc) pause() {
	p.yield <- struct{}{}
	<-p.resume
}

// Event kinds used by the procs adapter.
const (
	kindResume int32 = -1
	kindMsg    int32 = -2
)

type procsWorkload struct {
	n     int
	body  func(p *Proc)
	procs []*Proc
}

func (w *procsWorkload) Ranks() int { return w.n }

func (w *procsWorkload) Init(s Sched, rank int) {
	pr := &Proc{id: rank, resume: make(chan struct{}), yield: make(chan struct{})}
	w.procs[rank] = pr
	go func() {
		<-pr.resume
		defer func() {
			if r := recover(); r != nil {
				pr.err = fmt.Errorf("pdes: proc %d panicked: %v", pr.id, r)
			}
			pr.finished = true
			pr.yield <- struct{}{}
		}()
		w.body(pr)
	}()
	s.At(rank, 0, kindResume, 0, 0)
}

func (w *procsWorkload) Handle(s Sched, ev Event) {
	pr := w.procs[ev.Dst]
	switch ev.Kind {
	case kindResume:
		w.enter(s, pr, ev.Time)
	case kindMsg:
		pr.mail = append(pr.mail, Msg{From: int(ev.Src), Time: ev.Time, Data: ev.Data})
		if pr.waiting {
			w.enter(s, pr, ev.Time)
		}
	default:
		panic(fmt.Sprintf("pdes: procs adapter got foreign event kind %d", ev.Kind))
	}
}

// enter resumes the proc at virtual time t and parks the worker until the
// proc yields (by blocking in Advance/Recv, or by finishing).
func (w *procsWorkload) enter(s Sched, pr *Proc, t float64) {
	if pr.finished {
		return
	}
	pr.s = s
	pr.now = t
	pr.resume <- struct{}{}
	<-pr.yield
}
