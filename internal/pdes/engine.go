package pdes

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// engine is the per-run state: one queue, one arena, and one Sched per
// partition, plus per-partition counters summed at the end so the window
// loop itself is atomic-free.
type engine struct {
	w    Workload
	n    int // ranks
	p    int // partitions
	look float64

	// seq holds the per-source emission counters. seq[r] is only ever
	// touched by the worker owning r's partition (handlers run on the rank
	// they target, and an event's Src is the handling rank), so the values
	// a rank's events carry do not depend on the partitioning.
	seq   []uint32
	parts []partState

	// bufs[parity][sp*p+dp] buffers events crossing from partition sp to
	// partition dp as a chunk chain. A window writes parity w&1 and drains
	// the opposite parity, so delivery into one partition's queue never
	// races with another partition still filling its own outgoing batches.
	// Chunks drain back into the receiving partition's arena.
	bufs [2][]batch

	// antis[parity][sp*p+dp] carries anti-messages (full Event values to
	// annihilate) under SyncOptimistic, with the same owner-exclusive
	// parity discipline as bufs: rollback in window w appends to parity
	// w&1, the receiver drains the opposite parity before the positives,
	// and resets the slot it drained. Nil under SyncConservative.
	antis [2][][]Event

	// Serial-path window bookkeeping (multi-worker paths track the window
	// index per worker and count windows in the coordinator loop).
	window  int
	windows uint64
}

// partState gathers everything one partition's worker touches in the hot
// loop. The trailing pad keeps neighbouring partitions' counters off each
// other's cache lines — without it the per-window counter writes of
// adjacent partitions false-share (the paper's W9 in our own engine).
type partState struct {
	q     evQueue
	sched partSched
	arena arena
	tw    *twPart // Time-Warp state; nil under SyncConservative

	crossMin float64 // min timestamp buffered cross-partition this window
	lastT    float64 // timestamp of the partition's last processed event
	events   uint64
	stalls   uint64
	xev      uint64
	xbatch   uint64
	err      error

	_ [64]byte
}

func (e *engine) part(rank int) int {
	return int(int64(rank) * int64(e.p) / int64(e.n))
}

// partSched is the partitioned engine's Sched. One per partition; its
// rank/time fields are set before each Init or Handle call.
type partSched struct {
	eng    *engine
	ps     *partState
	part   int
	parity int
	wend   float64 // current window end; 0 during Init (no lookahead gate)
	now    float64
	src    int32
}

func (s *partSched) Now() float64       { return s.now }
func (s *partSched) Rank() int          { return int(s.src) }
func (s *partSched) Lookahead() float64 { return s.eng.look }

func (s *partSched) fail(err error) {
	if s.ps.err == nil {
		s.ps.err = err
	}
}

func (s *partSched) At(dst int, t float64, kind, step int32, data float64) {
	e := s.eng
	if dst < 0 || dst >= e.n {
		s.fail(fmt.Errorf("pdes: rank %d scheduled event on rank %d, outside [0, %d)", s.src, dst, e.n))
		return
	}
	if t < s.now {
		t = s.now
	}
	e.seq[s.src]++
	ev := Event{Time: t, Data: data, Src: s.src, Dst: int32(dst), Seq: e.seq[s.src], Kind: kind, Step: step}
	dp := e.part(dst)
	if tw := s.ps.tw; tw != nil && tw.active {
		if tw.coasting {
			// Coast-forward replay: the original emission (or its
			// anti-message) is already in flight; only the seq side effect
			// is wanted so re-execution regenerates identical keys.
			return
		}
		tw.out = append(tw.out, twEmit{pos: len(tw.log), dst: int32(dp), ev: ev})
	}
	if dp == s.part {
		s.ps.q.push(ev)
		return
	}
	if s.wend > 0 && t < s.wend && s.ps.tw == nil {
		// The conservative engine rejects a cross-partition event inside
		// the current window; the optimistic engine accepts it and repairs
		// with a rollback if it arrives in the receiver's past.
		s.fail(fmt.Errorf(
			"pdes: lookahead violation: rank %d -> rank %d at t=%g lands inside the window ending at %g; cross-rank messages need delay >= lookahead (%g)",
			s.src, dst, t, s.wend, e.look))
		return
	}
	bt := &e.bufs[s.parity][s.part*e.p+dp]
	if bt.head == nil {
		s.ps.xbatch++
	}
	bt.add(ev, &s.ps.arena)
	s.ps.xev++
	if t < s.ps.crossMin {
		s.ps.crossMin = t
	}
}

// newEngine builds the per-run state for n ranks over p partitions. The
// caller has validated n, p, and cfg.Lookahead.
func newEngine(w Workload, n, p int, cfg Config) *engine {
	e := &engine{
		w: w, n: n, p: p, look: cfg.Lookahead,
		seq:   make([]uint32, n),
		parts: make([]partState, p),
	}
	e.bufs[0] = make([]batch, p*p)
	e.bufs[1] = make([]batch, p*p)
	width := cfg.BucketWidth
	if width <= 0 {
		width = cfg.Lookahead / 4
	}
	for d := 0; d < p; d++ {
		ps := &e.parts[d]
		if cfg.Queue == QueueHeap {
			ps.q = &binHeap{h: make([]Event, 0, 2*n/p+4)}
		} else {
			ps.q = newLadder(width)
		}
		ps.sched = partSched{eng: e, ps: ps, part: d}
		ps.crossMin = math.Inf(1)
		ps.lastT = math.Inf(-1)
	}
	if cfg.Sync == SyncOptimistic {
		sw := w.(StatefulWorkload) // Run rejected non-stateful workloads
		interval := cfg.CheckpointInterval
		if interval <= 0 {
			interval = defaultCheckpointInterval
		}
		e.antis[0] = make([][]Event, p*p)
		e.antis[1] = make([][]Event, p*p)
		for d := 0; d < p; d++ {
			e.parts[d].tw = newTwPart(sw, interval)
		}
	}
	return e
}

// seed runs Init for every rank serially, in rank order: emissions land in
// the queues or in the parity-1 batches that window 0 delivers, so they may
// target any rank at any non-negative time.
func (e *engine) seed() error {
	is := partSched{eng: e, parity: 1}
	for r := 0; r < e.n; r++ {
		d := e.part(r)
		is.part = d
		is.ps = &e.parts[d]
		is.src = int32(r)
		is.now = 0
		e.w.Init(&is, r)
	}
	return e.firstError()
}

// initialMin computes the first GVT lower bound after seeding.
func (e *engine) initialMin() float64 {
	gmin := math.Inf(1)
	for d := range e.parts {
		ps := &e.parts[d]
		if t, ok := ps.q.peek(); ok && t < gmin {
			gmin = t
		}
		if ps.crossMin < gmin {
			gmin = ps.crossMin
		}
	}
	return gmin
}

// windowEnd advances gmin by one lookahead, degrading to one-ULP steps if
// the lookahead underflows against a large virtual time.
func windowEnd(gmin, look float64) float64 {
	wend := gmin + look
	if wend <= gmin {
		wend = math.Nextafter(gmin, math.Inf(1))
	}
	return wend
}

// runWindow advances one partition through one window [gvt, wend): deliver
// the chunk chains the previous window buffered for it, then process every
// pending event timestamped before wend. It returns the partition's lower
// bound on future work (min of queue head and freshly buffered cross
// events) and whether the partition has failed.
func (e *engine) runWindow(d int, wend float64, window int) (lmin float64, failed bool) {
	if e.parts[d].tw != nil {
		return e.runWindowTW(d, wend, window)
	}
	lmin = math.Inf(1)
	ps := &e.parts[d]
	defer func() {
		if r := recover(); r != nil {
			if ps.err == nil {
				ps.err = fmt.Errorf("pdes: partition %d handler panicked: %v", d, r)
			}
			failed = true
		}
	}()
	if ps.err != nil {
		return lmin, true
	}
	wp := window & 1
	q := ps.q
	for sp := 0; sp < e.p; sp++ {
		bt := &e.bufs[1-wp][sp*e.p+d]
		for c := bt.head; c != nil; {
			for i := 0; i < c.n; i++ {
				q.push(c.ev[i])
			}
			nx := c.next
			ps.arena.put(c)
			c = nx
		}
		bt.head, bt.tail = nil, nil
	}
	ps.crossMin = math.Inf(1)
	s := &ps.sched
	s.parity = wp
	s.wend = wend
	processed := uint64(0)
	for {
		t, ok := q.peek()
		if !ok || t >= wend {
			break
		}
		ev := q.pop()
		s.now = ev.Time
		s.src = ev.Dst
		ps.lastT = ev.Time
		e.w.Handle(s, ev)
		processed++
		if ps.err != nil {
			failed = true
			break
		}
	}
	ps.events += processed
	if processed == 0 {
		ps.stalls++
	}
	if m := ps.crossMin; m < lmin {
		lmin = m
	}
	if t, ok := q.peek(); ok && t < lmin {
		lmin = t
	}
	return lmin, failed
}

// stepWindow runs one window across every partition inline — the serial
// fast path (no goroutines, no barrier) used when the resolved worker
// count is 1. Returns the next GVT lower bound and whether any partition
// failed.
func (e *engine) stepWindow(gmin float64) (float64, bool) {
	wend := windowEnd(gmin, e.look)
	next := math.Inf(1)
	failed := false
	for d := 0; d < e.p; d++ {
		lmin, f := e.runWindow(d, wend, e.window)
		if lmin < next {
			next = lmin
		}
		if f {
			failed = true
		}
	}
	e.window++
	e.windows++
	return next, failed
}

// workerReport is one worker's per-window reduction over its partitions
// (chan-barrier path).
type workerReport struct {
	min  float64
	fail bool
}

// runChan is the wasteful multi-worker window loop F29 tables: persistent
// strided workers, a chan broadcast of the window end, and a report
// channel reduced by the coordinator — two channel operations per worker
// per window.
func (e *engine) runChan(nw int, gmin float64) {
	start := make([]chan float64, nw)
	reports := make(chan workerReport, nw)
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		start[wi] = make(chan float64, 1)
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			window := 0
			for wend := range start[wi] {
				rep := workerReport{min: math.Inf(1)}
				for d := wi; d < e.p; d += nw {
					lmin, failed := e.runWindow(d, wend, window)
					if lmin < rep.min {
						rep.min = lmin
					}
					if failed {
						rep.fail = true
					}
				}
				window++
				reports <- rep
			}
		}(wi)
	}
	failed := false
	for !failed && !math.IsInf(gmin, 1) {
		wend := windowEnd(gmin, e.look)
		for _, ch := range start {
			//lint:ignore chanbatch window broadcast: exactly one value per worker per window, nothing to batch
			ch <- wend
		}
		gmin = math.Inf(1)
		for range start {
			rep := <-reports
			if rep.min < gmin {
				gmin = rep.min
			}
			if rep.fail {
				failed = true
			}
		}
		e.windows++
	}
	for _, ch := range start {
		close(ch)
	}
	wg.Wait()
}

// runSense is the remedied multi-worker window loop: a padded
// sense-reversing barrier with the GVT min-reduce inlined into the
// coordinator's collect — one atomic publish and one bounded spin per
// worker per window.
func (e *engine) runSense(nw int, gmin float64) {
	bar := newSenseBarrier(nw)
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for ep := uint32(1); ; ep++ {
				wend, ok := bar.await(ep)
				if !ok {
					return
				}
				min := math.Inf(1)
				fail := false
				for d := wi; d < e.p; d += nw {
					lmin, f := e.runWindow(d, wend, int(ep-1))
					if lmin < min {
						min = lmin
					}
					if f {
						fail = true
					}
				}
				bar.publish(wi, ep, min, fail)
			}
		}(wi)
	}
	ep := uint32(0)
	failed := false
	for !failed && !math.IsInf(gmin, 1) {
		ep++
		bar.issue(ep, windowEnd(gmin, e.look))
		gmin, failed = bar.collect(ep)
		e.windows++
	}
	bar.shutdown(ep + 1)
	wg.Wait()
}

// Run executes the workload to completion and returns the run summary. The
// first failing partition's error (lookahead violation, bad destination, or
// a recovered handler panic) is returned; partitions are scanned in index
// order so the reported error does not depend on worker scheduling.
func Run(w Workload, cfg Config) (Result, error) {
	n := w.Ranks()
	if n < 1 {
		return Result{}, fmt.Errorf("pdes: workload has %d ranks, need at least 1", n)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Sync == SyncOptimistic {
		if _, ok := w.(StatefulWorkload); !ok {
			return Result{}, fmt.Errorf("%w: %T does not implement StatefulWorkload (Snapshot/Restore), required for optimistic rollback", ErrNotStateful, w)
		}
	}
	p := cfg.Partitions
	if p <= 0 {
		p = 8
	}
	if p > n {
		p = n
	}
	nw := cfg.Workers
	if nw <= 0 {
		// More workers than cores only adds scheduling churn: every worker
		// must finish every window, so the default caps at the machine.
		// Any worker count produces identical results.
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > p {
		nw = p
	}
	if nw < 1 {
		nw = 1
	}

	e := newEngine(w, n, p, cfg)
	if err := e.seed(); err != nil {
		return Result{}, err
	}
	// Init emissions are committed ground truth: only events emitted after
	// this point can be rolled back, so only now do the schedulers start
	// recording the emission log.
	for d := 0; d < p; d++ {
		if tw := e.parts[d].tw; tw != nil {
			tw.active = true
		}
	}
	gmin := e.initialMin()

	switch {
	case nw == 1:
		failed := false
		for !failed && !math.IsInf(gmin, 1) {
			gmin, failed = e.stepWindow(gmin)
		}
	case cfg.Barrier == BarrierChan:
		e.runChan(nw, gmin)
	default:
		e.runSense(nw, gmin)
	}

	res := Result{Windows: e.windows, Partitions: p, Workers: nw}
	var chunkAllocs, respreads, annihilated uint64
	ladders := false
	for d := 0; d < p; d++ {
		ps := &e.parts[d]
		res.Events += ps.events
		res.Stalls += ps.stalls
		res.CrossEvents += ps.xev
		res.CrossBatches += ps.xbatch
		if ps.lastT > res.VirtualTime {
			res.VirtualTime = ps.lastT
		}
		chunkAllocs += ps.arena.allocs
		if lq, ok := ps.q.(*ladder); ok {
			ladders = true
			respreads += lq.respreads
		}
		if tw := ps.tw; tw != nil {
			res.Executed += tw.executed
			res.Rollbacks += tw.rollbacks
			res.RolledBack += tw.undone
			res.AntiMessages += tw.antis
			res.Checkpoints += tw.checkpoints
			annihilated += tw.annihilated
		}
	}
	if reg := cfg.Obs; reg != nil {
		reg.Counter("pdes.runs").Inc()
		reg.Counter("pdes.events").Add(int64(res.Events))
		reg.Counter("pdes.windows").Add(int64(res.Windows))
		reg.Counter("pdes.window_stalls").Add(int64(res.Stalls))
		reg.Counter("pdes.cross_events").Add(int64(res.CrossEvents))
		reg.Counter("pdes.cross_batches").Add(int64(res.CrossBatches))
		reg.Counter("pdes.chunk_allocs").Add(int64(chunkAllocs))
		reg.Gauge("pdes.virtual_seconds").Add(res.VirtualTime)
		if ladders {
			reg.Counter("pdes.ladder_respreads").Add(int64(respreads))
		}
		if cfg.Sync == SyncOptimistic {
			reg.Counter("pdes.tw_executed").Add(int64(res.Executed))
			reg.Counter("pdes.tw_rollbacks").Add(int64(res.Rollbacks))
			reg.Counter("pdes.tw_rolled_back").Add(int64(res.RolledBack))
			reg.Counter("pdes.tw_antis").Add(int64(res.AntiMessages))
			reg.Counter("pdes.tw_annihilated").Add(int64(annihilated))
			reg.Counter("pdes.tw_checkpoints").Add(int64(res.Checkpoints))
		}
		if res.CrossBatches > 0 {
			reg.Histogram("pdes.batch_events").Observe(float64(res.CrossEvents) / float64(res.CrossBatches))
		}
	}
	return res, e.firstError()
}

// firstError returns the lowest-indexed partition's error, deterministic
// regardless of which worker hit it first.
func (e *engine) firstError() error {
	for d := range e.parts {
		if err := e.parts[d].err; err != nil {
			return err
		}
	}
	return nil
}
