package pdes

import (
	"fmt"
	"math"
	"sync"
)

// engine is the per-run state: one heap, one cross-partition batch row, and
// one Sched per partition, plus per-partition counters summed at the end so
// the window loop itself is atomic-free.
type engine struct {
	w    Workload
	n    int // ranks
	p    int // partitions
	look float64

	// seq holds the per-source emission counters. seq[r] is only ever
	// touched by the worker owning r's partition (handlers run on the rank
	// they target, and an event's Src is the handling rank), so the values
	// a rank's events carry do not depend on the partitioning.
	seq   []uint32
	heaps [][]Event
	// bufs[parity][src][dst] buffers events crossing from partition src to
	// partition dst. A window writes parity w&1 and drains the opposite
	// parity, so delivery into one partition's heap never races with
	// another partition still filling its own outgoing batches. Slabs are
	// truncated, not freed, after delivery.
	bufs   [2][][][]Event
	scheds []partSched

	// Per-partition accumulators, indexed by partition; each is written
	// only by the partition's current worker.
	crossMin []float64 // min timestamp buffered cross-partition this window
	lastT    []float64 // timestamp of the partition's last processed event
	events   []uint64
	stalls   []uint64
	xev      []uint64
	xbatch   []uint64
	errs     []error
}

func (e *engine) part(rank int) int {
	return int(int64(rank) * int64(e.p) / int64(e.n))
}

// partSched is the partitioned engine's Sched. One per partition; its
// rank/time fields are set before each Init or Handle call.
type partSched struct {
	eng    *engine
	part   int
	parity int
	wend   float64 // current window end; 0 during Init (no lookahead gate)
	now    float64
	src    int32
}

func (s *partSched) Now() float64       { return s.now }
func (s *partSched) Rank() int          { return int(s.src) }
func (s *partSched) Lookahead() float64 { return s.eng.look }

func (s *partSched) fail(err error) {
	if s.eng.errs[s.part] == nil {
		s.eng.errs[s.part] = err
	}
}

func (s *partSched) At(dst int, t float64, kind, step int32, data float64) {
	e := s.eng
	if dst < 0 || dst >= e.n {
		s.fail(fmt.Errorf("pdes: rank %d scheduled event on rank %d, outside [0, %d)", s.src, dst, e.n))
		return
	}
	if t < s.now {
		t = s.now
	}
	e.seq[s.src]++
	ev := Event{Time: t, Data: data, Src: s.src, Dst: int32(dst), Seq: e.seq[s.src], Kind: kind, Step: step}
	dp := e.part(dst)
	if dp == s.part {
		heapPush(&e.heaps[dp], ev)
		return
	}
	if s.wend > 0 && t < s.wend {
		s.fail(fmt.Errorf(
			"pdes: lookahead violation: rank %d -> rank %d at t=%g lands inside the window ending at %g; cross-rank messages need delay >= lookahead (%g)",
			s.src, dst, t, s.wend, e.look))
		return
	}
	buf := &e.bufs[s.parity][s.part][dp]
	if len(*buf) == 0 {
		e.xbatch[s.part]++
	}
	*buf = append(*buf, ev)
	e.xev[s.part]++
	if t < e.crossMin[s.part] {
		e.crossMin[s.part] = t
	}
}

// runWindow advances one partition through one window [gvt, wend): deliver
// the batches the previous window buffered for it, then process every
// pending event timestamped before wend. It returns the partition's lower
// bound on future work (min of heap head and freshly buffered cross events)
// and whether the partition has failed.
func (e *engine) runWindow(d int, wend float64, window int) (lmin float64, failed bool) {
	lmin = math.Inf(1)
	defer func() {
		if r := recover(); r != nil {
			if e.errs[d] == nil {
				e.errs[d] = fmt.Errorf("pdes: partition %d handler panicked: %v", d, r)
			}
			failed = true
		}
	}()
	if e.errs[d] != nil {
		return lmin, true
	}
	wp := window & 1
	h := &e.heaps[d]
	for sp := 0; sp < e.p; sp++ {
		buf := e.bufs[1-wp][sp][d]
		if len(buf) == 0 {
			continue
		}
		for i := range buf {
			heapPush(h, buf[i])
		}
		e.bufs[1-wp][sp][d] = buf[:0]
	}
	e.crossMin[d] = math.Inf(1)
	s := &e.scheds[d]
	s.parity = wp
	s.wend = wend
	processed := uint64(0)
	for len(*h) > 0 && (*h)[0].Time < wend {
		ev := heapPop(h)
		s.now = ev.Time
		s.src = ev.Dst
		e.lastT[d] = ev.Time
		e.w.Handle(s, ev)
		processed++
		if e.errs[d] != nil {
			failed = true
			break
		}
	}
	e.events[d] += processed
	if processed == 0 {
		e.stalls[d]++
	}
	if m := e.crossMin[d]; m < lmin {
		lmin = m
	}
	if len(*h) > 0 && (*h)[0].Time < lmin {
		lmin = (*h)[0].Time
	}
	return lmin, failed
}

// workerReport is one worker's per-window reduction over its partitions.
type workerReport struct {
	min  float64
	fail bool
}

// Run executes the workload to completion and returns the run summary. The
// first failing partition's error (lookahead violation, bad destination, or
// a recovered handler panic) is returned; partitions are scanned in index
// order so the reported error does not depend on worker scheduling.
func Run(w Workload, cfg Config) (Result, error) {
	n := w.Ranks()
	if n < 1 {
		return Result{}, fmt.Errorf("pdes: workload has %d ranks, need at least 1", n)
	}
	if cfg.Lookahead <= 0 {
		return Result{}, ErrLookahead
	}
	p := cfg.Partitions
	if p <= 0 {
		p = 8
	}
	if p > n {
		p = n
	}
	if p > maxPartitions {
		p = maxPartitions
	}
	nw := cfg.Workers
	if nw <= 0 {
		nw = p
	}
	if nw > p {
		nw = p
	}

	e := &engine{
		w: w, n: n, p: p, look: cfg.Lookahead,
		seq:      make([]uint32, n),
		heaps:    make([][]Event, p),
		scheds:   make([]partSched, p),
		crossMin: make([]float64, p),
		lastT:    make([]float64, p),
		events:   make([]uint64, p),
		stalls:   make([]uint64, p),
		xev:      make([]uint64, p),
		xbatch:   make([]uint64, p),
		errs:     make([]error, p),
	}
	for par := 0; par < 2; par++ {
		e.bufs[par] = make([][][]Event, p)
		for sp := 0; sp < p; sp++ {
			e.bufs[par][sp] = make([][]Event, p)
		}
	}
	for d := 0; d < p; d++ {
		e.heaps[d] = make([]Event, 0, 2*n/p+4)
		e.scheds[d] = partSched{eng: e, part: d}
		e.crossMin[d] = math.Inf(1)
		e.lastT[d] = math.Inf(-1)
	}

	// Seed the ranks serially, in rank order: Init emissions land in the
	// heaps or in the parity-1 batches that window 0 delivers, so they may
	// target any rank at any non-negative time.
	is := partSched{eng: e, parity: 1}
	for r := 0; r < n; r++ {
		is.part = e.part(r)
		is.src = int32(r)
		is.now = 0
		w.Init(&is, r)
	}
	if err := e.firstError(); err != nil {
		return Result{}, err
	}

	gmin := math.Inf(1)
	for d := 0; d < p; d++ {
		if len(e.heaps[d]) > 0 && e.heaps[d][0].Time < gmin {
			gmin = e.heaps[d][0].Time
		}
		if e.crossMin[d] < gmin {
			gmin = e.crossMin[d]
		}
	}

	// Persistent workers, one per stride of partitions: each window the
	// coordinator broadcasts the window end, workers drain + process their
	// partitions, and the per-partition lower bounds reduce to the next
	// global virtual time.
	start := make([]chan float64, nw)
	reports := make(chan workerReport, nw)
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		start[wi] = make(chan float64, 1)
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			window := 0
			for wend := range start[wi] {
				rep := workerReport{min: math.Inf(1)}
				for d := wi; d < e.p; d += nw {
					lmin, failed := e.runWindow(d, wend, window)
					if lmin < rep.min {
						rep.min = lmin
					}
					if failed {
						rep.fail = true
					}
				}
				window++
				reports <- rep
			}
		}(wi)
	}

	var windows uint64
	failed := false
	for !failed && !math.IsInf(gmin, 1) {
		wend := gmin + e.look
		if wend <= gmin {
			// Lookahead underflowed against a large virtual time; still
			// make progress one event-timestamp at a time.
			wend = math.Nextafter(gmin, math.Inf(1))
		}
		for _, ch := range start {
			//lint:ignore chanbatch window broadcast: exactly one value per worker per window, nothing to batch
			ch <- wend
		}
		gmin = math.Inf(1)
		for range start {
			rep := <-reports
			if rep.min < gmin {
				gmin = rep.min
			}
			if rep.fail {
				failed = true
			}
		}
		windows++
	}
	for _, ch := range start {
		//lint:ignore chanbatch shutdown broadcast: one close per worker
		close(ch)
	}
	wg.Wait()

	res := Result{Windows: windows, Partitions: p, Workers: nw}
	for d := 0; d < p; d++ {
		res.Events += e.events[d]
		res.Stalls += e.stalls[d]
		res.CrossEvents += e.xev[d]
		res.CrossBatches += e.xbatch[d]
		if e.lastT[d] > res.VirtualTime {
			res.VirtualTime = e.lastT[d]
		}
	}
	if reg := cfg.Obs; reg != nil {
		reg.Counter("pdes.runs").Inc()
		reg.Counter("pdes.events").Add(int64(res.Events))
		reg.Counter("pdes.windows").Add(int64(res.Windows))
		reg.Counter("pdes.window_stalls").Add(int64(res.Stalls))
		reg.Counter("pdes.cross_events").Add(int64(res.CrossEvents))
		reg.Counter("pdes.cross_batches").Add(int64(res.CrossBatches))
		reg.Gauge("pdes.virtual_seconds").Add(res.VirtualTime)
		if res.CrossBatches > 0 {
			reg.Histogram("pdes.batch_events").Observe(float64(res.CrossEvents) / float64(res.CrossBatches))
		}
	}
	return res, e.firstError()
}

// firstError returns the lowest-indexed partition's error, deterministic
// regardless of which worker hit it first.
func (e *engine) firstError() error {
	for _, err := range e.errs {
		if err != nil {
			return err
		}
	}
	return nil
}
