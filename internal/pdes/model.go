package pdes

import "math"

// CostModel is the engine's own analytic wall-clock model — W7 turned on
// ourselves. Processing cost scales with the per-partition heap depth's
// log; synchronisation cost scales with the window count and the
// per-window per-partition batch bookkeeping. The partition count and
// lookahead that minimise it are machine-dependent, which is exactly why
// they are registered as internal/tune tunables (T9 covers them with the
// rest of the remedy parameters).
type CostModel struct {
	Events  int     // total events the run will process
	Ranks   int     // simulated ranks
	Horizon float64 // virtual seconds the run spans
	// EventSec is the per-event pop+handle base cost; the heap factor
	// log2(depth) multiplies it.
	EventSec float64
	// BarrierSec is the fixed per-window coordination cost (GVT reduction
	// and worker wakeup).
	BarrierSec float64
	// PartSec is the per-partition per-window cost (batch delivery scan
	// and window bookkeeping).
	PartSec float64
	// BucketSec is the ladder queue's per-bucket advance cost (frontier
	// scan, slab swap, sort setup) — only LadderWall uses it.
	BucketSec float64
}

// Wall estimates the wall-clock seconds for a run split into parts
// partitions on cores cores with the given lookahead window. The shape is
// convex in parts: more partitions shrink each heap and add concurrency up
// to the core count, then only add per-window scan cost; a narrower window
// multiplies the synchronisation term.
func (m CostModel) Wall(parts, cores int, lookahead float64) float64 {
	if parts < 1 {
		parts = 1
	}
	if cores < 1 {
		cores = 1
	}
	if lookahead <= 0 || m.Horizon <= 0 {
		return math.Inf(1)
	}
	conc := parts
	if conc > cores {
		conc = cores
	}
	// ~3 pending events per rank is the halo-workload steady state.
	depth := 3*float64(m.Ranks)/float64(parts) + 2
	work := float64(m.Events) * m.EventSec * math.Log2(depth) / float64(conc)
	windows := math.Ceil(m.Horizon / lookahead)
	sync := windows * (m.BarrierSec + m.PartSec*float64(parts))
	return work + sync
}

// LadderWall estimates wall-clock seconds for the same run under the
// ladder queue with the given bucket width (virtual seconds). Per-event
// cost pays the log of the per-bucket occupancy instead of the partition
// depth — the ladder's whole point — while each bucket advance costs
// BucketSec, so the curve is a U in the width: wide buckets degenerate
// toward one big sorted heap, narrow buckets pay the frontier scan per
// handful of events. Tunable F29-bucket searches this knob; it is unimodal
// along the width axis, so golden-section applies.
func (m CostModel) LadderWall(parts, cores int, lookahead, bucket float64) float64 {
	if parts < 1 {
		parts = 1
	}
	if cores < 1 {
		cores = 1
	}
	if lookahead <= 0 || bucket <= 0 || m.Horizon <= 0 {
		return math.Inf(1)
	}
	conc := parts
	if conc > cores {
		conc = cores
	}
	// Events per partition landing in one bucket of virtual time.
	occ := float64(m.Events) / float64(parts) * bucket / m.Horizon
	work := float64(m.Events) * m.EventSec * math.Log2(occ+2) / float64(conc)
	advances := m.Horizon / bucket * float64(parts)
	scan := advances * m.BucketSec / float64(conc)
	windows := math.Ceil(m.Horizon / lookahead)
	sync := windows * (m.BarrierSec + m.PartSec*float64(parts))
	return work + scan + sync
}
