package pdes

import "math"

// CostModel is the engine's own analytic wall-clock model — W7 turned on
// ourselves. Processing cost scales with the per-partition heap depth's
// log; synchronisation cost scales with the window count and the
// per-window per-partition batch bookkeeping. The partition count and
// lookahead that minimise it are machine-dependent, which is exactly why
// they are registered as internal/tune tunables (T9 covers them with the
// rest of the remedy parameters).
type CostModel struct {
	Events  int     // total events the run will process
	Ranks   int     // simulated ranks
	Horizon float64 // virtual seconds the run spans
	// EventSec is the per-event pop+handle base cost; the heap factor
	// log2(depth) multiplies it.
	EventSec float64
	// BarrierSec is the fixed per-window coordination cost (GVT reduction
	// and worker wakeup).
	BarrierSec float64
	// PartSec is the per-partition per-window cost (batch delivery scan
	// and window bookkeeping).
	PartSec float64
	// BucketSec is the ladder queue's per-bucket advance cost (frontier
	// scan, slab swap, sort setup) — only LadderWall uses it.
	BucketSec float64
	// SnapSec is the per-rank Snapshot/Restore copy cost — only
	// TimeWarpWall uses it.
	SnapSec float64
}

// Wall estimates the wall-clock seconds for a run split into parts
// partitions on cores cores with the given lookahead window. The shape is
// convex in parts: more partitions shrink each heap and add concurrency up
// to the core count, then only add per-window scan cost; a narrower window
// multiplies the synchronisation term.
func (m CostModel) Wall(parts, cores int, lookahead float64) float64 {
	if parts < 1 {
		parts = 1
	}
	if cores < 1 {
		cores = 1
	}
	if lookahead <= 0 || m.Horizon <= 0 {
		return math.Inf(1)
	}
	conc := parts
	if conc > cores {
		conc = cores
	}
	// ~3 pending events per rank is the halo-workload steady state.
	depth := 3*float64(m.Ranks)/float64(parts) + 2
	work := float64(m.Events) * m.EventSec * math.Log2(depth) / float64(conc)
	windows := math.Ceil(m.Horizon / lookahead)
	sync := windows * (m.BarrierSec + m.PartSec*float64(parts))
	return work + sync
}

// LadderWall estimates wall-clock seconds for the same run under the
// ladder queue with the given bucket width (virtual seconds). Per-event
// cost pays the log of the per-bucket occupancy instead of the partition
// depth — the ladder's whole point — while each bucket advance costs
// BucketSec, so the curve is a U in the width: wide buckets degenerate
// toward one big sorted heap, narrow buckets pay the frontier scan per
// handful of events. Tunable F29-bucket searches this knob; it is unimodal
// along the width axis, so golden-section applies.
func (m CostModel) LadderWall(parts, cores int, lookahead, bucket float64) float64 {
	if parts < 1 {
		parts = 1
	}
	if cores < 1 {
		cores = 1
	}
	if lookahead <= 0 || bucket <= 0 || m.Horizon <= 0 {
		return math.Inf(1)
	}
	conc := parts
	if conc > cores {
		conc = cores
	}
	// Events per partition landing in one bucket of virtual time.
	occ := float64(m.Events) / float64(parts) * bucket / m.Horizon
	work := float64(m.Events) * m.EventSec * math.Log2(occ+2) / float64(conc)
	advances := m.Horizon / bucket * float64(parts)
	scan := advances * m.BucketSec / float64(conc)
	windows := math.Ceil(m.Horizon / lookahead)
	sync := windows * (m.BarrierSec + m.PartSec*float64(parts))
	return work + scan + sync
}

// TimeWarpWall estimates wall-clock seconds for the optimistic engine as a
// function of the checkpoint interval (events per segment). On top of the
// conservative Wall, speculation pays two interval-dependent costs pulling
// in opposite directions:
//
//   - checkpointing: every segment snapshots the ranks it touches, so the
//     save cost scales with Events/interval — dense segments (interval 1)
//     snapshot before every event, huge intervals amortise it away;
//   - coast-forward: a rollback rewinds to a segment start and replays on
//     average interval/2 committed events before reaching the straggler,
//     so the replay cost scales with rollbacks*interval.
//
// The sum is a U in the interval — the same shape F25's checkpoint spacing
// tunable walks — so golden-section applies; tunable F30-interval searches
// it. rollbackFrac is the observed rollback density (rollback episodes per
// committed event), the workload/partitioning property the model cannot
// know a priori; F30 reports it as 1 - efficiency's companion.
func (m CostModel) TimeWarpWall(parts, cores, interval int, lookahead, rollbackFrac float64) float64 {
	if interval < 1 || rollbackFrac < 0 {
		return math.Inf(1)
	}
	base := m.Wall(parts, cores, lookahead)
	if math.IsInf(base, 1) {
		return base
	}
	conc := parts
	if conc > cores {
		conc = cores
	}
	if conc > 1 {
		// Speculation overlaps the straggler wait: partitions that would
		// have idled at the window barrier run ahead instead, so the
		// conservative sync term partially converts to useful work.
		base -= 0.5 * math.Ceil(m.Horizon/lookahead) * m.BarrierSec
	}
	// Ranks touched per segment saturate at the partition's rank count;
	// each segment also pays a fixed setup cost (the snapshot maps) worth
	// a few rank copies, which is what makes interval 1 ruinous.
	touched := math.Min(float64(interval), float64(m.Ranks)/float64(parts))
	segments := float64(m.Events) / float64(interval)
	save := segments * (4 + touched) * m.SnapSec / float64(conc)
	rollbacks := rollbackFrac * float64(m.Events)
	replay := rollbacks * (float64(interval)/2*m.EventSec + touched*m.SnapSec) / float64(conc)
	return base + save + replay
}
