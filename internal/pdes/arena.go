package pdes

// Cross-partition batches are chains of fixed-capacity chunks drawn from
// per-partition free lists, so steady-state windows recycle the same slabs
// instead of growing append slices: an emitting partition draws chunks from
// its own free list, and the receiving partition returns drained chunks to
// its own — chunks migrate along communication flows, and under any
// roughly symmetric traffic pattern (halo exchange, the idle wave) every
// free list reaches a steady population and the window loop stops
// allocating entirely (gated by TestWindowLoopSteadyStateZeroAlloc).
//
// No locks, no atomics: a free list is only ever touched by the single
// worker currently running its partition, and the double-buffered batch
// parity guarantees the drain of a (src,dst) chain never overlaps the fill
// of the same chain.

// chunkEvents is the chunk capacity; at 40 bytes per Event a chunk is a
// ~10KB slab — big enough that chain-link overhead vanishes, small enough
// that sparse (src,dst) pairs don't strand much memory.
const chunkEvents = 256

// chunk is one fixed-capacity slab in a batch chain or a free list.
type chunk struct {
	next *chunk
	n    int
	ev   [chunkEvents]Event
}

// batch is the chunk chain for one (src partition, dst partition, parity):
// events in emission order, delivered in order and re-heapified by the
// receiver.
type batch struct {
	head, tail *chunk
}

// add appends ev, drawing a fresh chunk from the arena when the tail is
// full (or the chain is empty).
func (b *batch) add(ev Event, a *arena) {
	c := b.tail
	if c == nil || c.n == chunkEvents {
		c = a.get()
		if b.tail == nil {
			b.head = c
		} else {
			b.tail.next = c
		}
		b.tail = c
	}
	c.ev[c.n] = ev
	c.n++
}

// arena is one partition's chunk free list. Owner-exclusive: no
// synchronisation (see the package comment above).
type arena struct {
	free   *chunk
	allocs uint64 // chunks allocated fresh (free list empty) — cold-path count
}

func (a *arena) get() *chunk {
	c := a.free
	if c == nil {
		a.allocs++
		return new(chunk)
	}
	a.free = c.next
	c.next = nil
	return c
}

func (a *arena) put(c *chunk) {
	c.n = 0
	c.next = a.free
	a.free = c
}
