package pdes

import (
	"errors"
	"flag"
	"math"
	"strings"
	"testing"
)

var (
	flagQueue   = flag.String("pdes-queue", "", `override Config.Queue in package tests ("heap" or "ladder")`)
	flagBarrier = flag.String("pdes-barrier", "", `override Config.Barrier in package tests ("chan" or "sense")`)
)

// testCfg applies the package test flags so CI can re-run the whole
// determinism suite under either queue discipline and barrier kind:
//
//	go test -race ./internal/pdes -args -pdes-queue=heap -pdes-barrier=chan
func testCfg(cfg Config) Config {
	switch *flagQueue {
	case "heap":
		cfg.Queue = QueueHeap
	case "ladder":
		cfg.Queue = QueueLadder
	}
	switch *flagBarrier {
	case "chan":
		cfg.Barrier = BarrierChan
	case "sense":
		cfg.Barrier = BarrierSense
	}
	return cfg
}

func mustWave(t *testing.T, n, steps int, compute, spike float64, offsets []int, delays []float64) *IdleWave {
	t.Helper()
	w, err := NewIdleWave(n, steps, compute, spike, offsets, delays)
	if err != nil {
		t.Fatalf("NewIdleWave: %v", err)
	}
	return w
}

// TestIdleWaveDeterministicAcrossConfigs is the engine's core contract: the
// same workload produces byte-identical virtual results at any partition and
// worker count, including counts that do not divide the rank count.
func TestIdleWaveDeterministicAcrossConfigs(t *testing.T) {
	const n, steps = 512, 10
	const c = 50e-6
	mk := func() *IdleWave {
		return mustWave(t, n, steps, c, 3*c, []int{1, 4}, []float64{2e-6, 3e-6})
	}

	base := mk()
	bres, err := Run(base, testCfg(Config{Partitions: 1, Workers: 1, Lookahead: base.MinDelay()}))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if bres.Events == 0 || bres.VirtualTime <= 0 {
		t.Fatalf("baseline produced no work: %+v", bres)
	}

	configs := []Config{
		{Partitions: 2, Workers: 1},
		{Partitions: 4, Workers: 2},
		{Partitions: 8, Workers: 8},
		{Partitions: 5, Workers: 3}, // does not divide 512
		{Partitions: 64, Workers: 4},
		{Partitions: 1 << 20, Workers: 0}, // clamped to min(n, maxPartitions)
	}
	for _, cfg := range configs {
		w := mk()
		cfg.Lookahead = w.MinDelay()
		res, err := Run(w, testCfg(cfg))
		if err != nil {
			t.Fatalf("run %d/%d: %v", cfg.Partitions, cfg.Workers, err)
		}
		if res.Events != bres.Events {
			t.Errorf("parts=%d workers=%d: %d events, baseline %d", cfg.Partitions, cfg.Workers, res.Events, bres.Events)
		}
		if res.VirtualTime != bres.VirtualTime {
			t.Errorf("parts=%d workers=%d: virtual time %g, baseline %g", cfg.Partitions, cfg.Workers, res.VirtualTime, bres.VirtualTime)
		}
		for r := 0; r < n; r++ {
			if w.Arrival(r) != base.Arrival(r) {
				t.Fatalf("parts=%d workers=%d: rank %d arrival %g, baseline %g", cfg.Partitions, cfg.Workers, r, w.Arrival(r), base.Arrival(r))
			}
		}
	}

	if bres.Partitions != 1 || bres.Workers != 1 {
		t.Errorf("baseline resolved to %d/%d, want 1/1", bres.Partitions, bres.Workers)
	}
}

// TestIdleWaveMatchesClassicKernel cross-checks the partitioned engine
// against the single-heap sim.Kernel on the same workload.
func TestIdleWaveMatchesClassicKernel(t *testing.T) {
	const n, steps = 256, 8
	const c = 50e-6
	offsets, delays := []int{1, 3}, []float64{2e-6, 4e-6}

	pw := mustWave(t, n, steps, c, 3*c, offsets, delays)
	pres, err := Run(pw, testCfg(Config{Partitions: 8, Workers: 4, Lookahead: pw.MinDelay()}))
	if err != nil {
		t.Fatalf("partitioned run: %v", err)
	}

	sw := mustWave(t, n, steps, c, 3*c, offsets, delays)
	svt, sev, err := RunOnSim(sw, sw.MinDelay(), nil)
	if err != nil {
		t.Fatalf("classic run: %v", err)
	}

	if pres.VirtualTime != svt {
		t.Errorf("virtual time: partitioned %g, classic %g", pres.VirtualTime, svt)
	}
	if pres.Events != sev {
		t.Errorf("events: partitioned %d, classic %d", pres.Events, sev)
	}
	for r := 0; r < n; r++ {
		if pw.Arrival(r) != sw.Arrival(r) {
			t.Fatalf("rank %d arrival: partitioned %g, classic %g", r, pw.Arrival(r), sw.Arrival(r))
		}
	}
}

// TestIdleWaveSpeedMatchesAnalytic checks the physics: the measured wave
// speed from the linear fit tracks d_max/(c+delta_max).
func TestIdleWaveSpeedMatchesAnalytic(t *testing.T) {
	const n, steps = 2048, 12
	const c = 50e-6
	w := mustWave(t, n, steps, c, 3*c, []int{1}, []float64{2e-6})
	if _, err := Run(w, testCfg(Config{Partitions: 8, Lookahead: w.MinDelay()})); err != nil {
		t.Fatalf("run: %v", err)
	}
	speed, fit, perturbed, err := w.WaveSpeed()
	if err != nil {
		t.Fatalf("WaveSpeed: %v", err)
	}
	analytic := w.AnalyticSpeed()
	if ratio := speed / analytic; math.Abs(ratio-1) > 0.1 {
		t.Errorf("measured speed %g vs analytic %g (ratio %.3f), want within 10%%", speed, analytic, ratio)
	}
	if fit.R2 < 0.98 {
		t.Errorf("fit R2 = %g, want >= 0.98", fit.R2)
	}
	// The spike perturbs roughly one longest-offset hop per step.
	if perturbed < steps || perturbed > 4*steps {
		t.Errorf("perturbed %d ranks, expected on the order of %d", perturbed, steps)
	}
}

// TestIdleWaveQuietStaysOnSchedule: with no spike every rank holds the
// lockstep cadence, no arrival is recorded, and the run ends at the exact
// analytic makespan.
func TestIdleWaveQuietStaysOnSchedule(t *testing.T) {
	const n, steps = 128, 6
	const c = 50e-6
	w := mustWave(t, n, steps, c, 0, []int{1, 2}, []float64{2e-6, 3e-6})
	res, err := Run(w, testCfg(Config{Partitions: 4, Lookahead: w.MinDelay()}))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for r := 0; r < n; r++ {
		if w.Arrival(r) >= 0 {
			t.Fatalf("quiet run recorded an arrival on rank %d at %g", r, w.Arrival(r))
		}
	}
	if _, _, _, err := w.WaveSpeed(); err == nil {
		t.Error("WaveSpeed succeeded on a quiet run, want an error")
	}
	// Last event: the step-(steps-1) halos land at steps*cadence.
	want := float64(steps) * w.cadence()
	if math.Abs(res.VirtualTime-want) > 1e-9*want {
		t.Errorf("virtual time %g, want %g", res.VirtualTime, want)
	}
	// Per step: one compute completion per rank plus 2*(n-d) halos per offset.
	halos := uint64(0)
	for _, d := range w.Offsets {
		halos += uint64(2 * (n - d))
	}
	if want := uint64(steps) * (n + halos); res.Events != want {
		t.Errorf("events %d, want %d", res.Events, want)
	}
}

// crossEmit schedules one self event on rank 0, whose handler emits to the
// far rank with a configurable delay — the probe for the lookahead gate.
type crossEmit struct {
	n     int
	at    float64
	delay float64
}

func (w *crossEmit) Ranks() int { return w.n }
func (w *crossEmit) Init(s Sched, rank int) {
	if rank == 0 {
		s.At(0, w.at, 1, 0, 0)
	}
}
func (w *crossEmit) Handle(s Sched, ev Event) {
	if ev.Kind == 1 {
		s.At(w.n-1, ev.Time+w.delay, 2, 0, 0)
	}
}

func TestLookaheadViolationReported(t *testing.T) {
	const look = 1e-6
	w := &crossEmit{n: 2, at: look, delay: look / 2}
	_, err := Run(w, testCfg(Config{Partitions: 2, Lookahead: look}))
	if err == nil || !strings.Contains(err.Error(), "lookahead violation") {
		t.Fatalf("got %v, want a lookahead violation", err)
	}

	// The same emission with delay >= lookahead is legal.
	ok := &crossEmit{n: 2, at: look, delay: look}
	if _, err := Run(ok, testCfg(Config{Partitions: 2, Lookahead: look})); err != nil {
		t.Fatalf("legal delay rejected: %v", err)
	}

	// And on a single partition nothing crosses, so no gate applies.
	if _, err := Run(&crossEmit{n: 2, at: look, delay: look / 2}, testCfg(Config{Partitions: 1, Lookahead: look})); err != nil {
		t.Fatalf("single-partition run rejected: %v", err)
	}
}

type badDst struct{ n int }

func (w *badDst) Ranks() int { return w.n }
func (w *badDst) Init(s Sched, rank int) {
	if rank == 0 {
		s.At(w.n+3, 0, 1, 0, 0)
	}
}
func (w *badDst) Handle(Sched, Event) {}

func TestBadDestinationReported(t *testing.T) {
	_, err := Run(&badDst{n: 4}, testCfg(Config{Partitions: 2, Lookahead: 1e-6}))
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("got %v, want an out-of-range destination error", err)
	}
}

type panicky struct{ n int }

func (w *panicky) Ranks() int { return w.n }
func (w *panicky) Init(s Sched, rank int) {
	s.At(rank, 1e-6, 1, 0, 0)
}
func (w *panicky) Handle(s Sched, ev Event) {
	if ev.Dst == 1 {
		panic("boom")
	}
}

func TestHandlerPanicRecovered(t *testing.T) {
	_, err := Run(&panicky{n: 4}, testCfg(Config{Partitions: 4, Lookahead: 1e-6}))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("got %v, want the recovered handler panic", err)
	}
}

func TestConfigErrors(t *testing.T) {
	w := mustWave(t, 4, 1, 1e-6, 0, []int{1}, []float64{1e-6})
	if _, err := Run(w, Config{}); !errors.Is(err, ErrLookahead) {
		t.Errorf("zero lookahead: got %v, want ErrLookahead", err)
	}
	if _, err := Run(w, Config{Lookahead: -1}); !errors.Is(err, ErrLookahead) {
		t.Errorf("negative lookahead: got %v, want ErrLookahead", err)
	}
}

func TestCostModelShape(t *testing.T) {
	m := CostModel{
		Events: 1 << 22, Ranks: 1 << 20, Horizon: 1e-3,
		EventSec: 100e-9, BarrierSec: 5e-6, PartSec: 2e-6,
	}
	const cores = 8
	const look = 2e-6

	if m.Wall(1, cores, look) <= m.Wall(cores, cores, look) {
		t.Error("one partition should cost more than one per core")
	}
	if m.Wall(8, cores, look/8) <= m.Wall(8, cores, look) {
		t.Error("a narrower window should cost more")
	}
	if !math.IsInf(m.Wall(8, cores, 0), 1) {
		t.Error("zero lookahead should cost +Inf")
	}

	// Unimodal over a doubling grid: once the curve turns up it stays up —
	// required by the golden-section tuner that owns these knobs.
	prev := math.Inf(1)
	rising := false
	for parts := 1; parts <= 1024; parts *= 2 {
		wall := m.Wall(parts, cores, look)
		if wall > prev {
			rising = true
		} else if rising {
			t.Fatalf("cost model not unimodal: dips again at parts=%d", parts)
		}
		prev = wall
	}
}

func TestLadderCostModelShape(t *testing.T) {
	m := CostModel{
		Events: 1 << 22, Ranks: 1 << 20, Horizon: 1e-3,
		EventSec: 100e-9, BarrierSec: 5e-6, PartSec: 2e-6, BucketSec: 1e-6,
	}
	const cores = 8
	const look = 2e-6

	if !math.IsInf(m.LadderWall(8, cores, look, 0), 1) {
		t.Error("zero bucket width should cost +Inf")
	}
	// The ladder at any sane width beats the heap model: that is the
	// tentpole's claim in model form.
	if m.LadderWall(8, cores, look, look/4) >= m.Wall(8, cores, look) {
		t.Error("ladder model should beat the heap model at the default width")
	}

	// Unimodal in the bucket width over a doubling grid — required by the
	// golden-section tuner owning F29-bucket.
	prev := math.Inf(1)
	rising := false
	for div := 1; div <= 1<<12; div *= 2 {
		wall := m.LadderWall(8, cores, look, look/float64(div))
		if wall > prev {
			rising = true
		} else if rising {
			t.Fatalf("ladder cost model not unimodal: dips again at divisor=%d", div)
		}
		prev = wall
	}
}
